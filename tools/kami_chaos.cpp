// kami_chaos: the serving layer's chaos campaign (src/serve/chaos.hpp) as a
// CLI.
//
//   kami_chaos [--points N] [--seed S] [--threads W] [--json out.json]
//              [--flight out.json]
//   kami_chaos --smoke [--json out.json]     small fixed campaign for CI
//   kami_chaos --soak [...]                  shared-server sequential soak
//   kami_chaos --fleet [...]                 multi-device FleetServer campaign
//
// Every request is traced into a flight recorder (typed-error traces are
// always retained; ok traces ride a bounded ring). --flight writes the
// recorder dump (kami.obs.flight JSON, readable by kami_trace); when the
// campaign finds contract violations and no --flight path was given, the
// dump is auto-written to kami_chaos_flight.json so the evidence survives.
// The --json run report carries a per-shape-class `slo` section
// (kami.obs.run v2) with latency percentiles and deadline attainment.
//
// Each point serves a randomized GEMM request under randomized adversity
// (injected transient/permanent faults, allocation failures, cycle deadlines,
// execution modes) and checks the resilience contract: bit-correct result or
// typed error — never a crash, hang, or silent corruption; deadline aborts
// replay deterministically. Exit status is nonzero when any point violates
// the contract.
//
// The default campaign gives every point a fresh server (order-independent,
// so it fans out across --threads workers with a bit-identical report).
// --soak keeps the original shared-server mode: points run sequentially and
// interact through the server's circuit breakers.
//
// --fleet runs the FleetServer campaign instead (src/serve/fleet_chaos.hpp):
// each point serves through a fresh four-device fleet under seeded blackouts,
// router-misprediction skew, and queue-overflow storms, checking the fleet
// contract (bit-correct-or-typed, no request lost, failover bit-identity,
// probe recovery, deterministic replay) on top of the serving contract.
// Replay a fleet violation with: kami_chaos --fleet --seed <s> --points 1.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/chaos.hpp"
#include "serve/fleet_chaos.hpp"
#include "serve/slo.hpp"
#include "util/table.hpp"

namespace {

using kami::TablePrinter;

int usage() {
  std::cerr << "usage:\n"
            << "  kami_chaos [--points N] [--seed S] [--threads W] [--json out.json]\n"
            << "             [--flight out.json]\n"
            << "  kami_chaos --smoke [--json out.json] [--flight out.json]\n"
            << "  kami_chaos --soak [--points N] [--seed S] [--json out.json]\n"
            << "  kami_chaos --fleet [--points N] [--seed S] [--threads W]\n"
            << "             [--json out.json] [--flight out.json]\n";
  return 2;
}

void write_report(const kami::obs::RunReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw kami::PreconditionError("cannot open " + path + " for writing");
  report.write_json(os);
  std::cout << "wrote " << path << "\n";
}

TablePrinter count_table(const std::map<std::string, std::size_t>& counts) {
  TablePrinter table({"key", "points"});
  for (const auto& [key, count] : counts) table.add_row({key, std::to_string(count)});
  return table;
}

void write_flight(const kami::obs::FlightRecorder& flight, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw kami::PreconditionError("cannot open " + path + " for writing");
  flight.dump(os);
  std::cout << "wrote flight recorder dump " << path << " (" << flight.size()
            << " traces, " << flight.error_count() << " errors)\n";
}

int run(std::uint64_t seed, std::size_t points, int threads, bool soak,
        const std::string& json_path, const std::string& flight_path) {
  // The recorder and SLO tracker are always on: the whole point of a flight
  // recorder is that the evidence already exists when a violation appears.
  const auto flight = std::make_shared<kami::obs::FlightRecorder>();
  const auto slo = std::make_shared<kami::serve::SloTracker>();
  const kami::serve::ChaosReport rep =
      soak ? kami::serve::run_chaos(seed, points, flight, slo)
           : kami::serve::run_campaign(seed, points, threads, flight, slo);

  TablePrinter rungs = count_table(rep.by_rung);
  rungs.print(std::cout, "served by rung");
  if (!rep.by_code.empty()) {
    TablePrinter codes = count_table(rep.by_code);
    codes.print(std::cout, "typed errors by code");
  }
  TablePrinter faults = count_table(rep.by_fault);
  faults.print(std::cout, "injected faults");

  TablePrinter violations({"seed", "point", "detail"});
  for (const auto& v : rep.violations)
    violations.add_row({std::to_string(v.seed), v.point, v.detail});
  if (!rep.violations.empty()) violations.print(std::cout, "contract violations");

  if (!json_path.empty()) {
    kami::obs::RunReport report("kami_chaos");
    report.set_meta("base_seed", std::to_string(seed));
    report.set_meta("mode", soak ? "soak" : "campaign");
    report.set_meta("threads", std::to_string(threads));
    report.set_meta("ran", std::to_string(rep.ran));
    report.set_meta("served_ok", std::to_string(rep.served_ok));
    report.set_meta("typed_errors", std::to_string(rep.typed_errors));
    report.set_meta("deadline_replays", std::to_string(rep.deadline_replays));
    report.set_meta("violations", std::to_string(rep.violations.size()));
    report.add_table("served by rung", rungs);
    report.add_table("injected faults", faults);
    report.add_table("contract violations", violations);
    report.set_metrics(kami::obs::MetricRegistry::global());
    report.set_slo(slo->to_json());
    write_report(report, json_path);
  }

  if (!flight_path.empty()) {
    write_flight(*flight, flight_path);
  } else if (!rep.clean()) {
    // Violations with no dump destination: auto-dump so the traces that
    // explain the failure are not lost with the process.
    write_flight(*flight, "kami_chaos_flight.json");
  }

  std::cout << (rep.clean() ? "OK" : "FAILED") << " (ran " << rep.ran << ", served "
            << rep.served_ok << ", typed errors " << rep.typed_errors
            << ", deadline replays " << rep.deadline_replays << ", violations "
            << rep.violations.size() << ")\n"
            << "replay any seed with: kami_chaos --seed <s> --points 1\n";
  return rep.clean() ? 0 : 1;
}

int run_fleet(std::uint64_t seed, std::size_t points, int threads,
              const std::string& json_path, const std::string& flight_path) {
  const auto flight = std::make_shared<kami::obs::FlightRecorder>();
  const auto slo = std::make_shared<kami::serve::SloTracker>();
  const kami::serve::FleetChaosReport rep =
      kami::serve::run_fleet_campaign(seed, points, threads, flight, slo);

  TablePrinter rungs = count_table(rep.by_rung);
  rungs.print(std::cout, "served by rung");
  if (!rep.by_code.empty()) {
    TablePrinter codes = count_table(rep.by_code);
    codes.print(std::cout, "typed errors by code");
  }
  TablePrinter devices = count_table(rep.by_device);
  devices.print(std::cout, "served by device");
  TablePrinter faults = count_table(rep.by_fault);
  faults.print(std::cout, "injected faults");

  TablePrinter violations({"seed", "point", "detail"});
  for (const auto& v : rep.violations)
    violations.add_row({std::to_string(v.seed), v.point, v.detail});
  if (!rep.violations.empty()) violations.print(std::cout, "contract violations");

  if (!json_path.empty()) {
    kami::obs::RunReport report("kami_chaos");
    report.set_meta("base_seed", std::to_string(seed));
    report.set_meta("mode", "fleet");
    report.set_meta("threads", std::to_string(threads));
    report.set_meta("ran", std::to_string(rep.ran));
    report.set_meta("served_ok", std::to_string(rep.served_ok));
    report.set_meta("typed_errors", std::to_string(rep.typed_errors));
    report.set_meta("failovers", std::to_string(rep.failovers));
    report.set_meta("hedged", std::to_string(rep.hedged));
    report.set_meta("storm_requests", std::to_string(rep.storm_requests));
    report.set_meta("storm_rejected", std::to_string(rep.storm_rejected));
    report.set_meta("violations", std::to_string(rep.violations.size()));
    report.add_table("served by rung", rungs);
    report.add_table("served by device", devices);
    report.add_table("injected faults", faults);
    report.add_table("contract violations", violations);
    report.set_metrics(kami::obs::MetricRegistry::global());
    report.set_slo(slo->to_json());
    write_report(report, json_path);
  }

  if (!flight_path.empty()) {
    write_flight(*flight, flight_path);
  } else if (!rep.clean()) {
    write_flight(*flight, "kami_chaos_fleet_flight.json");
  }

  std::cout << (rep.clean() ? "OK" : "FAILED") << " (ran " << rep.ran << ", served "
            << rep.served_ok << ", typed errors " << rep.typed_errors << ", failovers "
            << rep.failovers << ", hedged " << rep.hedged << ", storm "
            << rep.storm_requests << " (" << rep.storm_rejected
            << " rejected), violations " << rep.violations.size() << ")\n"
            << "replay any seed with: kami_chaos --fleet --seed <s> --points 1\n";
  return rep.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::uint64_t seed = 1;
  std::size_t points = 500;
  int threads = 0;  // 0 = defer to KAMI_THREADS
  bool soak = false;
  bool fleet = false;
  std::string json_path;
  std::string flight_path;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--points" && i + 1 < args.size()) points = std::stoul(args[++i]);
      else if (args[i] == "--seed" && i + 1 < args.size()) seed = std::stoull(args[++i]);
      else if (args[i] == "--threads" && i + 1 < args.size()) threads = std::stoi(args[++i]);
      else if (args[i] == "--json" && i + 1 < args.size()) json_path = args[++i];
      else if (args[i] == "--flight" && i + 1 < args.size()) flight_path = args[++i];
      else if (args[i] == "--smoke") points = 60;
      else if (args[i] == "--soak") soak = true;
      else if (args[i] == "--fleet") fleet = true;
      else return usage();
    }
    if (fleet && soak) return usage();
    if (fleet) return run_fleet(seed, points, threads, json_path, flight_path);
    return run(seed, points, threads, soak, json_path, flight_path);
  } catch (const std::exception& e) {
    std::cerr << "kami_chaos: " << e.what() << "\n";
    return 1;
  }
}
