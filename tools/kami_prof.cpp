// kami_prof: load an exported kami.obs.run JSON file and report on it.
//
//   kami_prof report <run.json>            print tables (verbatim), breakdowns,
//                                          metrics, regions, and utilization
//   kami_prof diff <a.json> <b.json> [--tolerance <pct>]
//                                          numeric deltas between two runs;
//                                          with --tolerance, exit nonzero when
//                                          any numeric delta exceeds <pct>
//                                          percent (non-numeric diffs always
//                                          count as out of tolerance)
//   kami_prof validate <run.json> [--expect-fig15]
//                                          schema check; nonzero exit on failure
//
// Tables are stored in the report as the exact cell strings the bench binary
// printed, so `report` reproduces the original console tables byte for byte.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

namespace {

using kami::TablePrinter;
using kami::obs::Json;
using kami::obs::RunReport;

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw kami::PreconditionError("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

RunReport load_run(const std::string& path) {
  return RunReport::from_json(Json::parse(read_file(path)));
}

/// Parse a table cell as a number; false for "-", "overflow", text cells.
bool cell_number(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  *out = v;
  return true;
}

void print_region_tree(const Json& node, int depth) {
  const std::string name = node.at("name").as_string();
  if (!name.empty() || depth > 0) {
    std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << name << ": total "
              << kami::obs::json_number(node.at("total_cycles").as_number()) << " cyc, self "
              << kami::obs::json_number(node.at("self_cycles").as_number()) << " cyc, x"
              << kami::obs::json_number(node.at("count").as_number()) << "\n";
  }
  if (const Json* children = node.find("children")) {
    for (const auto& ch : children->as_array()) print_region_tree(ch, depth + 1);
  }
}

void cmd_report(const RunReport& run) {
  std::cout << "run: " << run.name() << "\n";
  for (const auto& [k, v] : run.meta()) std::cout << "  " << k << ": " << v << "\n";
  std::cout << "\n";

  for (const auto& t : run.tables()) {
    TablePrinter printer(t.headers);
    for (const auto& row : t.rows) printer.add_row(row);
    printer.print(std::cout, t.title);
    std::cout << "\n";
  }

  if (!run.breakdowns().empty()) {
    std::cout << "== Cycle breakdowns ==\n";
    for (const auto& b : run.breakdowns()) {
      std::cout << "  " << b.name << ":";
      for (const auto& [cat, cycles] : b.categories)
        std::cout << " " << cat << "=" << kami::obs::json_number(cycles);
      std::cout << "\n";
    }
    std::cout << "\n";
  }

  const Json& metrics = run.metrics();
  if (metrics.is_object()) {
    std::cout << "== Metrics ==\n";
    for (const char* section : {"counters", "gauges"}) {
      if (const Json* values = metrics.find(section)) {
        for (const auto& [name, v] : values->as_object())
          std::cout << "  " << name << " = " << kami::obs::json_number(v.as_number())
                    << "\n";
      }
    }
    if (const Json* hists = metrics.find("histograms")) {
      for (const auto& [name, h] : hists->as_object()) {
        std::cout << "  " << name << ": n=" << kami::obs::json_number(h.at("count").as_number())
                  << " mean="
                  << kami::obs::json_number(h.at("count").as_number() > 0
                                                ? h.at("sum").as_number() /
                                                      h.at("count").as_number()
                                                : 0.0)
                  << " p50=" << kami::obs::json_number(h.at("p50").as_number())
                  << " p99=" << kami::obs::json_number(h.at("p99").as_number()) << "\n";
      }
    }
    std::cout << "\n";
  }

  if (run.regions().is_object()) {
    std::cout << "== Regions (total/self cycles) ==\n";
    print_region_tree(run.regions(), -1);
    std::cout << "\n";
  }

  if (run.utilization()) {
    const auto& u = *run.utilization();
    std::cout << "== Utilization (wall " << kami::obs::json_number(u.wall_cycles)
              << " cycles) ==\n";
    for (std::size_t r = 0; r < u.resources.size(); ++r) {
      const double busy = u.busy_cycles(r);
      const double pct = u.wall_cycles > 0.0 ? 100.0 * busy / u.wall_cycles : 0.0;
      std::cout << "  " << u.resources[r] << ": busy "
                << kami::obs::json_number(std::round(busy)) << " cyc ("
                << kami::fmt_double(pct, 1) << "%)\n";
    }
  }
}

/// Relative delta in percent; infinite when the baseline is zero and the
/// values differ (any change from zero blows every finite tolerance).
double pct_delta(double va, double vb) {
  if (va == vb) return 0.0;
  if (va == 0.0) return std::numeric_limits<double>::infinity();
  return 100.0 * std::abs(vb - va) / std::abs(va);
}

/// `tolerance` < 0: plain reporting diff (always exit 0). >= 0: regression
/// gate — numeric deltas within tolerance percent are reported but allowed;
/// out-of-tolerance numeric deltas and every structural or non-numeric
/// difference fail the diff.
int cmd_diff(const RunReport& a, const RunReport& b, double tolerance) {
  const bool gating = tolerance >= 0.0;
  int differences = 0;
  int out_of_tolerance = 0;
  /// Account one numeric pair; returns the suffix to print after the delta.
  const auto check_numeric = [&](double va, double vb) -> const char* {
    if (!gating) return "";
    if (pct_delta(va, vb) <= tolerance) return "  [within tolerance]";
    ++out_of_tolerance;
    return "  [OUT OF TOLERANCE]";
  };
  const auto check_non_numeric = [&] {
    if (gating) ++out_of_tolerance;
  };
  for (const auto& ta : a.tables()) {
    const kami::obs::ReportTable* tb = nullptr;
    for (const auto& t : b.tables())
      if (t.title == ta.title) {
        tb = &t;
        break;
      }
    if (tb == nullptr) {
      std::cout << "only in " << a.name() << ": table \"" << ta.title << "\"\n";
      ++differences;
      check_non_numeric();
      continue;
    }
    if (ta.rows.size() != tb->rows.size() || ta.headers != tb->headers) {
      std::cout << "table \"" << ta.title << "\": shape differs (" << ta.rows.size()
                << " vs " << tb->rows.size() << " rows)\n";
      ++differences;
      check_non_numeric();
      continue;
    }
    for (std::size_t r = 0; r < ta.rows.size(); ++r) {
      for (std::size_t c = 0; c < ta.rows[r].size() && c < tb->rows[r].size(); ++c) {
        const std::string& ca = ta.rows[r][c];
        const std::string& cb = tb->rows[r][c];
        if (ca == cb) continue;
        ++differences;
        double va = 0.0, vb = 0.0;
        const bool numeric = cell_number(ca, &va) && cell_number(cb, &vb);
        std::cout << "table \"" << ta.title << "\" row " << r << " [" << ta.headers[c]
                  << "]: " << ca << " -> " << cb;
        if (numeric && va != 0.0)
          std::cout << "  (" << kami::fmt_double(100.0 * (vb - va) / va, 1) << "%)";
        if (numeric) std::cout << check_numeric(va, vb);
        else check_non_numeric();
        std::cout << "\n";
      }
    }
  }
  for (const auto& t : b.tables()) {
    bool found = false;
    for (const auto& ta : a.tables()) found = found || ta.title == t.title;
    if (!found) {
      std::cout << "only in " << b.name() << ": table \"" << t.title << "\"\n";
      ++differences;
      check_non_numeric();
    }
  }

  for (const auto& ba : a.breakdowns()) {
    const auto* bb = b.find_breakdown(ba.name);
    if (bb == nullptr) continue;
    for (const auto& [cat, va] : ba.categories) {
      const double* vb = bb->find(cat);
      if (vb != nullptr && *vb != va) {
        ++differences;
        std::cout << "breakdown " << ba.name << " [" << cat
                  << "]: " << kami::obs::json_number(va) << " -> "
                  << kami::obs::json_number(*vb) << check_numeric(va, *vb) << "\n";
      }
    }
  }

  const auto counters_of = [](const RunReport& run) {
    std::vector<std::pair<std::string, double>> out;
    if (const Json* c = run.metrics().find("counters"))
      for (const auto& [name, v] : c->as_object()) out.emplace_back(name, v.as_number());
    return out;
  };
  const auto cb = counters_of(b);
  for (const auto& [name, va] : counters_of(a)) {
    for (const auto& [nb, vb] : cb) {
      if (nb == name && va != vb) {
        ++differences;
        std::cout << "counter " << name << ": " << kami::obs::json_number(va) << " -> "
                  << kami::obs::json_number(vb) << check_numeric(va, vb) << "\n";
      }
    }
  }

  if (differences == 0) std::cout << "runs are identical\n";
  else std::cout << differences << " difference(s)\n";
  if (gating) {
    if (out_of_tolerance > 0) {
      std::cout << out_of_tolerance << " difference(s) out of tolerance ("
                << kami::fmt_double(tolerance, 2) << "%)\n";
      return 1;
    }
    std::cout << "all differences within tolerance ("
              << kami::fmt_double(tolerance, 2) << "%)\n";
  }
  return 0;
}

int cmd_validate(const std::string& path, bool expect_fig15) {
  const RunReport run = load_run(path);  // throws SchemaError on bad schema
  std::cout << path << ": valid " << kami::obs::kRunSchemaName << " v"
            << kami::obs::kRunSchemaVersion << " (name: " << run.name() << ", "
            << run.tables().size() << " tables, " << run.breakdowns().size()
            << " breakdowns)\n";
  if (!expect_fig15) return 0;

  if (run.breakdowns().empty()) {
    std::cerr << "error: expected Fig 15 breakdowns, found none\n";
    return 1;
  }
  for (const char* cat :
       {"smem_comm", "gmem", "reg_copy", "compute", "sync_wait", "measured_total"}) {
    for (const auto& b : run.breakdowns()) {
      if (b.find(cat) == nullptr) {
        std::cerr << "error: breakdown \"" << b.name << "\" lacks category \"" << cat
                  << "\"\n";
        return 1;
      }
    }
  }
  bool fig15_table = false;
  for (const auto& t : run.tables())
    fig15_table = fig15_table || t.title.find("Fig 15") != std::string::npos;
  if (!fig15_table) {
    std::cerr << "error: no table titled like Fig 15\n";
    return 1;
  }
  std::cout << "Fig 15 categories present in all " << run.breakdowns().size()
            << " breakdowns\n";
  return 0;
}

int usage() {
  std::cerr << "usage: kami_prof report <run.json>\n"
               "       kami_prof diff <a.json> <b.json> [--tolerance <pct>]\n"
               "       kami_prof validate <run.json> [--expect-fig15]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "report") {
      cmd_report(load_run(argv[2]));
      return 0;
    }
    if (cmd == "diff") {
      if (argc < 4) return usage();
      double tolerance = -1.0;  // negative = reporting mode, never gates
      for (int i = 4; i < argc; ++i) {
        if (std::string(argv[i]) == "--tolerance" && i + 1 < argc)
          tolerance = std::stod(argv[++i]);
        else
          return usage();
      }
      return cmd_diff(load_run(argv[2]), load_run(argv[3]), tolerance);
    }
    if (cmd == "validate") {
      bool expect_fig15 = false;
      for (int i = 3; i < argc; ++i)
        if (std::string(argv[i]) == "--expect-fig15") expect_fig15 = true;
      return cmd_validate(argv[2], expect_fig15);
    }
  } catch (const std::exception& e) {
    std::cerr << "kami_prof: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
