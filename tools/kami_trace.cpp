// kami_trace: inspect flight-recorder dumps (kami.obs.flight JSON).
//
//   kami_trace report <flight.json> [--request ID] [--code CODE]
//       print each trace's span tree (canonical text form); filter by
//       request id and/or by the root span's typed error code
//   kami_trace chrome <flight.json> [-o out.json]
//       export the traces as Chrome trace-event JSON (chrome://tracing,
//       Perfetto) — one named track per request
//   kami_trace validate <flight.json>
//       schema + span-tree invariant check; nonzero exit on failure
//
// Span times are simulated cycles (the serving layer's deterministic
// logical clock), so two dumps of the same workload diff byte-for-byte.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/trace_span.hpp"

namespace {

using kami::obs::FlightRecorder;
using kami::obs::Json;
using kami::obs::RequestTrace;

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw kami::PreconditionError("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::vector<RequestTrace> load_traces(const std::string& path) {
  return FlightRecorder::traces_from_json(Json::parse(read_file(path)));
}

const std::string* root_code(const RequestTrace& t) {
  return t.root() != nullptr ? t.root()->find_attr("code") : nullptr;
}

std::vector<RequestTrace> filter_traces(std::vector<RequestTrace> traces,
                                        const std::string& request,
                                        const std::string& code) {
  std::vector<RequestTrace> out;
  for (RequestTrace& t : traces) {
    if (!request.empty() && t.request_id != request) continue;
    if (!code.empty()) {
      const std::string* c = root_code(t);
      if (c == nullptr || *c != code) continue;
    }
    out.push_back(std::move(t));
  }
  return out;
}

int cmd_report(const std::vector<RequestTrace>& traces) {
  for (const RequestTrace& t : traces) std::cout << t.canonical_text();
  std::cout << traces.size() << " trace(s)\n";
  return 0;
}

int cmd_chrome(const std::vector<RequestTrace>& traces, const std::string& out_path) {
  if (out_path.empty()) {
    kami::obs::dump_chrome_traces(std::cout, traces);
    std::cout << "\n";
    return 0;
  }
  std::ofstream os(out_path);
  if (!os) throw kami::PreconditionError("cannot open " + out_path + " for writing");
  kami::obs::dump_chrome_traces(os, traces);
  os << "\n";
  std::cout << "wrote " << out_path << " (" << traces.size() << " traces)\n";
  return 0;
}

int cmd_validate(const std::string& path) {
  // traces_from_json + RequestTrace::from_json enforce the schema and the
  // span-tree invariants (ids in open order, parents before children,
  // intervals well-formed); any violation throws SchemaError.
  const std::vector<RequestTrace> traces = load_traces(path);
  std::size_t errors = 0;
  for (const RequestTrace& t : traces)
    if (t.is_error()) ++errors;
  std::cout << path << ": valid " << kami::obs::kFlightSchemaName << " v"
            << kami::obs::kFlightSchemaVersion << " (" << traces.size()
            << " traces, " << errors << " typed errors)\n";
  return 0;
}

int usage() {
  std::cerr << "usage: kami_trace report <flight.json> [--request ID] [--code CODE]\n"
               "       kami_trace chrome <flight.json> [-o out.json]\n"
               "       kami_trace validate <flight.json>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  std::string request, code, out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--request" && i + 1 < argc) request = argv[++i];
    else if (arg == "--code" && i + 1 < argc) code = argv[++i];
    else if (arg == "-o" && i + 1 < argc) out_path = argv[++i];
    else return usage();
  }
  try {
    if (cmd == "report")
      return cmd_report(filter_traces(load_traces(path), request, code));
    if (cmd == "chrome")
      return cmd_chrome(filter_traces(load_traces(path), request, code), out_path);
    if (cmd == "validate") return cmd_validate(path);
  } catch (const std::exception& e) {
    std::cerr << "kami_trace: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
