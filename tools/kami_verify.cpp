// kami_verify: the differential correctness harness (src/verify) as a CLI.
//
//   kami_verify --smoke [--json out.json]  curated cross-mode/reference points
//                                          + invariant-layer self-test; exports
//                                          a kami.obs.run report with --json
//   kami_verify fuzz [--seed S] [--iters N] [--threads W] [--json out.json]
//                                          randomized points seeded S, S+1, ...
//   kami_verify repro <seed>               replay exactly one fuzz iteration
//   kami_verify corpus <file>...           run point-per-line regression files
//                                          (tests/verify/corpus/*.txt)
//   kami_verify model [--seed S] [--iters N] [--threads W] [--json out.json]
//                    [--corpus file...]    analytic-model divergence check:
//                                          self-calibrated closed-form
//                                          prediction vs TimingOnly simulation
//                                          (typed ModelDivergence on failure);
//                                          fuzz seeds share random_point, so
//                                          `model --seed S --iters 1` replays
//                                          one iteration
//
// Exit status is nonzero when any point fails; skipped points (infeasible or
// unsupported configurations that every mode rejects identically) pass.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "verify/differential.hpp"
#include "verify/model_check.hpp"

namespace {

using kami::TablePrinter;
using kami::verify::CheckPoint;
using kami::verify::CheckResult;

int usage() {
  std::cerr << "usage:\n"
            << "  kami_verify --smoke [--json out.json]\n"
            << "  kami_verify fuzz [--seed S] [--iters N] [--threads W] [--json out.json]\n"
            << "  kami_verify repro <seed>\n"
            << "  kami_verify corpus <file>...\n"
            << "  kami_verify model [--seed S] [--iters N] [--threads W]"
               " [--json out.json] [--corpus file...]\n";
  return 2;
}

void write_report(const kami::obs::RunReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw kami::PreconditionError("cannot open " + path + " for writing");
  report.write_json(os);
  std::cout << "wrote " << path << "\n";
}

const char* status_name(const CheckResult& r) {
  return !r.ok ? "FAIL" : (r.skipped ? "skip" : "pass");
}

/// Run a list of points through `check` (the differential checker by
/// default), print the verdict table, return the failure count.
std::size_t run_points(const std::string& title, const std::vector<CheckPoint>& points,
                       TablePrinter& table,
                       CheckResult (*check)(const CheckPoint&) = kami::verify::check_point) {
  std::size_t failures = 0;
  for (const CheckPoint& p : points) {
    CheckResult r;
    try {
      r = check(p);
    } catch (const std::exception& e) {
      r = CheckResult{false, false, std::string("exception: ") + e.what()};
    }
    if (!r.ok) ++failures;
    table.add_row({kami::verify::to_string(p), status_name(r), r.detail});
  }
  table.print(std::cout, title);
  return failures;
}

std::vector<CheckPoint> load_corpus(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw kami::PreconditionError("cannot open " + path);
  std::vector<CheckPoint> points;
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    points.push_back(kami::verify::point_from_string(line));
  }
  return points;
}

int cmd_smoke(const std::string& json_path) {
  TablePrinter table({"point", "status", "detail"});
  std::size_t failures = run_points("kami_verify --smoke", kami::verify::smoke_points(), table);

  const std::string selftest = kami::verify::invariant_selftest();
  std::cout << "invariant self-test: " << (selftest.empty() ? "pass" : selftest) << "\n";
  if (!selftest.empty()) ++failures;

  if (!json_path.empty()) {
    kami::obs::RunReport report("kami_verify");
    report.set_meta("mode", "smoke");
    report.set_meta("points", std::to_string(kami::verify::smoke_points().size()));
    report.set_meta("failures", std::to_string(failures));
    report.set_meta("invariant_selftest", selftest.empty() ? "pass" : selftest);
    report.add_table("kami_verify --smoke", table);
    report.set_metrics(kami::obs::MetricRegistry::global());
    write_report(report, json_path);
  }
  std::cout << (failures == 0 ? "OK" : "FAILED") << " (" << kami::verify::smoke_points().size()
            << " points, " << failures << " failures)\n";
  return failures == 0 ? 0 : 1;
}

int cmd_fuzz(std::uint64_t seed, std::size_t iters, int threads,
             const std::string& json_path) {
  const kami::verify::FuzzReport rep = kami::verify::run_fuzz(seed, iters, threads);
  TablePrinter table({"seed", "detail"});
  for (const auto& f : rep.failures) table.add_row({std::to_string(f.seed), f.detail});
  if (!rep.failures.empty()) table.print(std::cout, "fuzz failures");

  if (!json_path.empty()) {
    kami::obs::RunReport report("kami_verify");
    report.set_meta("mode", "fuzz");
    report.set_meta("base_seed", std::to_string(seed));
    report.set_meta("threads", std::to_string(threads));
    report.set_meta("ran", std::to_string(rep.ran));
    report.set_meta("passed", std::to_string(rep.passed));
    report.set_meta("skipped", std::to_string(rep.skipped));
    report.set_meta("failures", std::to_string(rep.failures.size()));
    report.add_table("fuzz failures", table);
    report.set_metrics(kami::obs::MetricRegistry::global());
    write_report(report, json_path);
  }
  std::cout << (rep.failures.empty() ? "OK" : "FAILED") << " (ran " << rep.ran
            << ", passed " << rep.passed << ", skipped " << rep.skipped << ", failed "
            << rep.failures.size() << ")\n"
            << "replay any failure with: kami_verify repro <seed>\n";
  return rep.failures.empty() ? 0 : 1;
}

int cmd_repro(std::uint64_t seed) {
  const CheckPoint p = kami::verify::random_point(seed);
  std::cout << "seed " << seed << " -> " << kami::verify::to_string(p) << "\n";
  const CheckResult r = kami::verify::check_point(p);
  std::cout << status_name(r);
  if (!r.detail.empty()) std::cout << ": " << r.detail;
  std::cout << "\n";
  return r.ok ? 0 : 1;
}

int cmd_corpus(const std::vector<std::string>& files) {
  std::size_t failures = 0;
  for (const std::string& path : files) {
    TablePrinter table({"point", "status", "detail"});
    failures += run_points(path, load_corpus(path), table);
  }
  std::cout << (failures == 0 ? "OK" : "FAILED") << " (" << failures << " failures)\n";
  return failures == 0 ? 0 : 1;
}

int cmd_model(std::uint64_t seed, std::size_t iters, int threads,
              const std::string& json_path, const std::vector<std::string>& corpus) {
  // Curated corpus points first (the fuzz corpus shares the point grammar, so
  // the same regression files exercise both checkers), then the fuzz sweep.
  std::size_t corpus_failures = 0;
  std::size_t corpus_points = 0;
  for (const std::string& path : corpus) {
    const std::vector<CheckPoint> points = load_corpus(path);
    corpus_points += points.size();
    TablePrinter table({"point", "status", "detail"});
    corpus_failures +=
        run_points("model: " + path, points, table, kami::verify::check_model_point);
  }

  const kami::verify::FuzzReport rep =
      kami::verify::run_model_fuzz(seed, iters, threads);
  TablePrinter table({"seed", "detail"});
  for (const auto& f : rep.failures) table.add_row({std::to_string(f.seed), f.detail});
  if (!rep.failures.empty()) table.print(std::cout, "model divergences");

  const std::size_t failures = corpus_failures + rep.failures.size();
  if (!json_path.empty()) {
    kami::obs::RunReport report("kami_verify");
    report.set_meta("mode", "model");
    report.set_meta("base_seed", std::to_string(seed));
    report.set_meta("threads", std::to_string(threads));
    report.set_meta("ran", std::to_string(rep.ran + corpus_points));
    report.set_meta("passed", std::to_string(rep.passed));
    report.set_meta("skipped", std::to_string(rep.skipped));
    report.set_meta("failures", std::to_string(failures));
    report.add_table("model divergences", table);
    report.set_metrics(kami::obs::MetricRegistry::global());
    write_report(report, json_path);
  }
  std::cout << (failures == 0 ? "OK" : "FAILED") << " (fuzz ran " << rep.ran
            << ", passed " << rep.passed << ", skipped " << rep.skipped << ", corpus "
            << corpus_points << ", failed " << failures << ")\n"
            << "replay any fuzz divergence with: kami_verify model --seed <seed>"
               " --iters 1\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "--smoke" || args[0] == "smoke") {
      std::string json_path;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json" && i + 1 < args.size()) json_path = args[++i];
        else return usage();
      }
      return cmd_smoke(json_path);
    }
    if (args[0] == "fuzz") {
      std::uint64_t seed = 1;
      std::size_t iters = 25;
      int threads = 0;  // 0 = defer to KAMI_THREADS
      std::string json_path;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--seed" && i + 1 < args.size()) seed = std::stoull(args[++i]);
        else if (args[i] == "--iters" && i + 1 < args.size())
          iters = std::stoul(args[++i]);
        else if (args[i] == "--threads" && i + 1 < args.size())
          threads = std::stoi(args[++i]);
        else if (args[i] == "--json" && i + 1 < args.size()) json_path = args[++i];
        else return usage();
      }
      return cmd_fuzz(seed, iters, threads, json_path);
    }
    if (args[0] == "repro") {
      if (args.size() != 2) return usage();
      return cmd_repro(std::stoull(args[1]));
    }
    if (args[0] == "corpus") {
      if (args.size() < 2) return usage();
      return cmd_corpus({args.begin() + 1, args.end()});
    }
    if (args[0] == "model") {
      std::uint64_t seed = 1;
      std::size_t iters = 15;
      int threads = 0;  // 0 = defer to KAMI_THREADS
      std::string json_path;
      std::vector<std::string> corpus;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--seed" && i + 1 < args.size()) seed = std::stoull(args[++i]);
        else if (args[i] == "--iters" && i + 1 < args.size())
          iters = std::stoul(args[++i]);
        else if (args[i] == "--threads" && i + 1 < args.size())
          threads = std::stoi(args[++i]);
        else if (args[i] == "--json" && i + 1 < args.size()) json_path = args[++i];
        else if (args[i] == "--corpus") {
          while (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0)
            corpus.push_back(args[++i]);
        } else return usage();
      }
      return cmd_model(seed, iters, threads, json_path, corpus);
    }
  } catch (const std::exception& e) {
    std::cerr << "kami_verify: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
