// Block-sparse attention with KAMI's SpMM (§3.1 motivates small-scale GEMM
// with "transformer models with block-sparse attention").
//
// A local-window attention mask keeps only score blocks near the diagonal.
// The masked score matrix is stored block-sparse (16x16 tiles, the KAMI
// default), and the attention output O = S_sparse x V is one SpMM per head.
#include <cmath>
#include <iostream>

#include "baselines/reference.hpp"
#include "sparse/spmm.hpp"
#include "util/table.hpp"

namespace {

using namespace kami;

// Softmax-normalized scores inside the local window, zero outside.
Matrix<fp16_t> windowed_scores(std::size_t seq, std::size_t window, Rng& rng) {
  Matrix<double> logits(seq, seq);
  for (std::size_t i = 0; i < seq; ++i)
    for (std::size_t j = 0; j < seq; ++j) {
      const bool keep = (i / 16 >= j / 16 ? i / 16 - j / 16 : j / 16 - i / 16) * 16 <
                        window;  // block-granular window
      logits(i, j) = keep ? rng.uniform(-2.0, 2.0) : -1e30;
    }
  Matrix<fp16_t> scores(seq, seq);
  for (std::size_t i = 0; i < seq; ++i) {
    double mx = -1e30;
    for (std::size_t j = 0; j < seq; ++j) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (std::size_t j = 0; j < seq; ++j) denom += std::exp(logits(i, j) - mx);
    for (std::size_t j = 0; j < seq; ++j)
      scores(i, j) = fp16_t{static_cast<float>(std::exp(logits(i, j) - mx) / denom)};
  }
  return scores;
}

}  // namespace

int main() {
  const auto& dev = sim::gh200();
  constexpr std::size_t kSeq = 128;     // sequence length
  constexpr std::size_t kHead = 64;     // head dimension
  constexpr std::size_t kWindow = 48;   // local attention window

  Rng rng(7);
  const auto S_dense = windowed_scores(kSeq, kWindow, rng);
  const auto S = sparse::BlockSparseMatrix<fp16_t>::from_dense(S_dense, 16,
                                                               sparse::BlockOrder::RowMajor);
  const auto V = random_matrix<fp16_t>(kSeq, kHead, rng);

  const auto out = sparse::spmm_1d(dev, S, V);

  // Verify against the dense product.
  const auto ref = baselines::reference_gemm(S_dense, V);
  const double err = max_abs_diff(out.C, ref);

  TablePrinter t({"metric", "value"});
  t.add_row({"sequence x head", std::to_string(kSeq) + " x " + std::to_string(kHead)});
  t.add_row({"mask block density",
             fmt_double(100.0 * S.block_density(), 1) + "% of 16x16 tiles"});
  t.add_row({"useful GFLOP", fmt_double(out.useful_flops / 1e9, 4)});
  t.add_row({"block cycles", fmt_double(out.profile.latency, 0)});
  t.add_row({"max |SpMM - dense|", fmt_double(err, 6)});
  t.print(std::cout, "Block-sparse attention O = S x V via KAMI SpMM");

  if (err != 0.0) {
    std::cerr << "SpMM deviated from the dense reference\n";
    return 1;
  }
  std::cout << "\nSpMM skipped " << fmt_double(100.0 * (1.0 - S.block_density()), 1)
            << "% of score tiles while matching the dense result bit-for-bit.\n";
  return 0;
}
