// Batched GEMM in a block-Jacobi setting (§3.1 motivates KAMI with
// "block-wise scientific solvers" and batched workloads).
//
// A block-diagonal preconditioner application needs, for every diagonal
// block D_i, an approximate inverse applied to a panel X_i. We use the
// Newton-Schulz iteration V <- V (2I - D V), which is nothing but a stream
// of small GEMMs — exactly KAMI's batched workload. The example builds a
// batch of diagonally dominant blocks, runs two Newton-Schulz sweeps with
// the batched driver, and reports the preconditioner quality ||I - D V||.
#include <iostream>
#include <vector>

#include "core/batched.hpp"
#include "util/table.hpp"

namespace {

using namespace kami;

Matrix<double> identity(std::size_t n) {
  Matrix<double> I(n, n);
  for (std::size_t i = 0; i < n; ++i) I(i, i) = 1.0;
  return I;
}

Matrix<double> diag_dominant(std::size_t n, Rng& rng) {
  auto D = random_matrix<double>(n, n, rng, -0.2, 0.2);
  for (std::size_t i = 0; i < n; ++i) D(i, i) = 1.0 + rng.uniform(0.0, 0.5);
  return D;
}

double residual_norm(const Matrix<double>& D, const Matrix<double>& V) {
  // max |I - D V| entry.
  double worst = 0.0;
  for (std::size_t i = 0; i < D.rows(); ++i)
    for (std::size_t j = 0; j < D.cols(); ++j) {
      double acc = (i == j) ? 1.0 : 0.0;
      for (std::size_t k = 0; k < D.cols(); ++k) acc -= D(i, k) * V(k, j);
      worst = std::max(worst, std::abs(acc));
    }
  return worst;
}

}  // namespace

int main() {
  const auto& dev = sim::gh200();
  constexpr std::size_t kBlock = 32;
  constexpr std::size_t kBatch = 8;

  Rng rng(2024);
  std::vector<Matrix<double>> D, V;
  for (std::size_t b = 0; b < kBatch; ++b) {
    D.push_back(diag_dominant(kBlock, rng));
    // Newton-Schulz seed: V0 = D^T / (||D||_1 ||D||_inf) ~ use scaled identity.
    Matrix<double> v0 = identity(kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) v0(i, i) = 0.5;
    V.push_back(std::move(v0));
  }

  double before = 0.0;
  for (std::size_t b = 0; b < kBatch; ++b)
    before = std::max(before, residual_norm(D[b], V[b]));

  double seconds = 0.0;
  for (int sweep = 0; sweep < 4; ++sweep) {
    // DV = D x V (batched)
    auto dv = core::kami_batched_gemm<double>(dev, D, V);
    seconds += dv.seconds;
    // R = 2I - DV  (host-side AXPY; the GEMMs are the GPU work)
    std::vector<Matrix<double>> R;
    for (std::size_t b = 0; b < kBatch; ++b) {
      Matrix<double> r(kBlock, kBlock);
      for (std::size_t i = 0; i < kBlock; ++i)
        for (std::size_t j = 0; j < kBlock; ++j)
          r(i, j) = (i == j ? 2.0 : 0.0) - dv.C[b](i, j);
      R.push_back(std::move(r));
    }
    // V = V x R (batched)
    auto vr = core::kami_batched_gemm<double>(dev, V, R);
    seconds += vr.seconds;
    V = std::move(vr.C);
  }

  double after = 0.0;
  for (std::size_t b = 0; b < kBatch; ++b)
    after = std::max(after, residual_norm(D[b], V[b]));

  kami::TablePrinter t({"metric", "value"});
  t.add_row({"batch", std::to_string(kBatch) + " blocks of " + std::to_string(kBlock) +
                          "x" + std::to_string(kBlock) + " FP64"});
  t.add_row({"||I - D V|| before", kami::fmt_double(before, 4)});
  t.add_row({"||I - D V|| after 4 sweeps", kami::fmt_double(after, 6)});
  t.add_row({"simulated GPU time", kami::fmt_double(seconds * 1e6, 2) + " us"});
  t.print(std::cout, "Block-Jacobi preconditioner via KAMI batched GEMM");

  if (!(after < before * 0.1)) {
    std::cerr << "Newton-Schulz did not converge as expected\n";
    return 1;
  }
  std::cout << "\nPreconditioner blocks converged using only batched KAMI GEMMs.\n";
  return 0;
}
