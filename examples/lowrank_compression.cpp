// Low-rank GEMM (§5.3): approximate a smooth kernel matrix by rank-k
// factors and multiply with KAMI's low-rank driver.
//
// The dense matrix G(i, j) = 1 / (1 + |i - j|/32) is numerically low-rank.
// We build rank-k factors by ACA-style cross approximation (pick k pivot
// columns/rows), then compare G x X computed densely against U x (V x X)
// computed with two thin KAMI GEMMs — fewer flops and fewer cycles.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/lowrank.hpp"
#include "util/table.hpp"

namespace {

using namespace kami;

Matrix<fp16_t> kernel_matrix(std::size_t n) {
  Matrix<fp16_t> g(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double d = i > j ? static_cast<double>(i - j) : static_cast<double>(j - i);
      g(i, j) = fp16_t{static_cast<float>(1.0 / (1.0 + d / 32.0))};
    }
  return g;
}

// Cross (skeleton) approximation with k evenly spaced pivots:
// G ~= U * V with U = G(:, P) and V = G(P, P)^-1 G(P, :). For this smooth
// kernel, evenly spaced pivots and a Gauss-Jordan solve suffice.
void cross_approx(const Matrix<fp16_t>& G, std::size_t k, Matrix<fp16_t>& U,
                  Matrix<fp16_t>& V) {
  const std::size_t n = G.rows();
  std::vector<std::size_t> piv(k);
  for (std::size_t t = 0; t < k; ++t) piv[t] = t * n / k + n / (2 * k);

  // Core = G(P, P), solve Core * V = G(P, :) in double.
  std::vector<double> core(k * k);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      core[a * k + b] = static_cast<double>(static_cast<float>(G(piv[a], piv[b])));
  Matrix<double> rhs(k, n);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t j = 0; j < n; ++j)
      rhs(a, j) = static_cast<double>(static_cast<float>(G(piv[a], j)));
  // Gauss-Jordan with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t best = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(core[r * k + col]) > std::abs(core[best * k + col])) best = r;
    for (std::size_t c = 0; c < k; ++c) std::swap(core[col * k + c], core[best * k + c]);
    for (std::size_t j = 0; j < n; ++j) std::swap(rhs(col, j), rhs(best, j));
    const double d = core[col * k + col];
    for (std::size_t c = 0; c < k; ++c) core[col * k + c] /= d;
    for (std::size_t j = 0; j < n; ++j) rhs(col, j) /= d;
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = core[r * k + col];
      for (std::size_t c = 0; c < k; ++c) core[r * k + c] -= f * core[col * k + c];
      for (std::size_t j = 0; j < n; ++j) rhs(r, j) -= f * rhs(col, j);
    }
  }

  U = Matrix<fp16_t>(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < k; ++t) U(i, t) = G(i, piv[t]);
  V = Matrix<fp16_t>(k, n);
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t j = 0; j < n; ++j) V(t, j) = fp16_t{static_cast<float>(rhs(t, j))};
}

}  // namespace

int main() {
  const auto& dev = sim::gh200();
  constexpr std::size_t kN = 128;
  constexpr std::size_t kRank = 16;

  const auto G = kernel_matrix(kN);
  Matrix<fp16_t> U, V;
  cross_approx(G, kRank, U, V);

  Rng rng(5);
  const auto X = random_matrix<fp16_t>(kN, kN, rng);

  // Dense path: G x X with KAMI-1D.
  const auto dense = gemm(Algo::OneD, dev, G, X);
  // Low-rank path: W = V x X (a short-and-wide GEMM), then the thin-k
  // product U x W through the low-rank driver.
  const auto w = gemm(Algo::OneD, dev, V, X);
  const auto lowrank = core::lowrank_gemm(dev, U, w.C);

  // Approximation quality of the low-rank product.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = 0; j < kN; ++j) {
      const double a = static_cast<double>(static_cast<float>(dense.C(i, j)));
      const double b = static_cast<double>(static_cast<float>(lowrank.C(i, j)));
      num += (a - b) * (a - b);
      den += a * a;
    }
  const double rel_fro = std::sqrt(num / den);

  const double dense_cycles = dense.profile.latency;
  const double lr_cycles = w.profile.latency + lowrank.profile.latency;

  TablePrinter t({"metric", "dense G*X", "rank-16 U*(V*X)"});
  t.add_row({"flops", fmt_double(2.0 * kN * kN * kN / 1e6, 2) + " Mflop",
             fmt_double(2.0 * 2 * kN * kN * kRank / 1e6, 2) + " Mflop"});
  t.add_row({"block cycles", fmt_double(dense_cycles, 0), fmt_double(lr_cycles, 0)});
  t.add_row({"speedup", "1.00x", fmt_double(dense_cycles / lr_cycles, 2) + "x"});
  t.print(std::cout, "Low-rank kernel-matrix multiply via KAMI (FP16, GH200)");
  std::cout << "  relative Frobenius error of the rank-" << kRank
            << " product: " << fmt_double(rel_fro, 4) << "\n";

  if (rel_fro > 0.05 || lr_cycles >= dense_cycles) {
    std::cerr << "low-rank path should be accurate and faster\n";
    return 1;
  }
  std::cout << "\nRank-16 factorization cut cycles by " << fmt_double(dense_cycles / lr_cycles, 2)
            << "x at <5% error — the Fig 11 use case.\n";
  return 0;
}
