// Quickstart: multiply two small FP16 matrices with each KAMI algorithm on
// the simulated GH200 and inspect the cycle profile.
//
//   $ ./quickstart
#include <iostream>

#include "baselines/reference.hpp"
#include "core/kami.hpp"
#include "sim/throughput.hpp"
#include "util/table.hpp"

int main() {
  using namespace kami;

  // 1. Pick a device model (Table 3 of the paper).
  const auto& dev = sim::gh200();
  std::cout << "device: " << dev.name << " (" << dev.api << "), "
            << dev.peak_fp16_tflops << " peak FP16 TFLOPS\n\n";

  // 2. Build inputs. Values are quantized into the storage precision.
  Rng rng(42);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);

  // 3. Run the three communication-avoiding algorithms.
  TablePrinter table({"algorithm", "warps", "spill ratio", "block cycles",
                      "smem KiB", "regs/thread", "device TFLOPS"});
  for (Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    const auto r = gemm(algo, dev, A, B);

    // 4. Every kernel is numerically exact w.r.t. the rounding model.
    const auto ref = baselines::reference_gemm(A, B);
    const double err = max_abs_diff(r.C, ref);
    if (err > 1e-2) {
      std::cerr << "unexpected numerical error " << err << "\n";
      return 1;
    }

    table.add_row({algo_name(algo), std::to_string(r.warps),
                   fmt_double(r.smem_ratio * 100, 0) + "%",
                   fmt_double(r.profile.latency, 0),
                   fmt_double(static_cast<double>(r.profile.smem_bytes) / 1024.0, 1),
                   fmt_double(static_cast<double>(r.profile.reg_bytes_per_warp) / 128.0, 0),
                   fmt_double(sim::throughput_tflops(dev, r.profile, 16384), 1)});
  }
  table.print(std::cout, "KAMI block-level GEMM, 64x64 FP16");

  std::cout << "\nAll three algorithms verified against the reference rounding model.\n";
  return 0;
}
