// Execution-trace example: record the op-level timeline of one KAMI-1D
// block and emit it in Chrome's about://tracing JSON format, plus a textual
// per-phase summary — the simulator's equivalent of an Nsight timeline.
//
//   $ ./trace_timeline > kami_1d_64.trace.json   # open in chrome://tracing
#include <fstream>
#include <iostream>
#include <map>

#include "core/kami.hpp"
#include "util/table.hpp"

int main() {
  using namespace kami;
  const auto& dev = sim::gh200();

  Rng rng(11);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  opt.record_trace = true;
  const auto r = gemm(Algo::OneD, dev, A, B, opt);

  const char* path = "kami_1d_64.trace.json";
  {
    std::ofstream out(path);
    r.trace->dump_chrome_trace(out);
  }

  // Per-kind summary.
  std::map<sim::OpKind, std::pair<int, double>> agg;  // kind -> (count, cycles)
  for (const auto& ev : r.trace->events()) {
    agg[ev.kind].first += 1;
    agg[ev.kind].second += ev.end - ev.start;
  }
  TablePrinter t({"op kind", "events", "warp-cycles", "amount (B or flops)"});
  for (const auto& [kind, stats] : agg) {
    t.add_row({sim::op_kind_name(kind), std::to_string(stats.first),
               fmt_double(stats.second, 0), fmt_double(r.trace->total_amount(kind), 0)});
  }
  t.print(std::cout, "KAMI-1D 64x64 FP16 on GH200: op-level timeline summary");

  std::cout << "\nblock latency: " << fmt_double(r.profile.latency, 0)
            << " cycles across " << r.trace->size() << " events\n"
            << "Chrome trace written to " << path
            << " (open chrome://tracing and load it)\n";
  return 0;
}
