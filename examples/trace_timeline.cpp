// Execution-trace example: record the op-level timeline AND the phase
// (region) tree of one KAMI-1D block, then emit:
//   * an enriched Chrome/Perfetto trace (op events per warp + named phase
//     tracks) — the simulator's equivalent of an Nsight timeline;
//   * the kernel -> phase self/total-cycle tree;
//   * warp-cycles per op kind attributed to the innermost phase.
//
//   $ ./trace_timeline          # writes kami_1d_64.trace.json
//   # open https://ui.perfetto.dev (or chrome://tracing) and load the file
#include <fstream>
#include <iostream>
#include <map>

#include "core/kami.hpp"
#include "obs/trace_analysis.hpp"
#include "util/table.hpp"

namespace {

void print_region_tree(const kami::obs::RegionNode& node, int depth) {
  using kami::fmt_double;
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name
            << ": total " << fmt_double(node.total_cycles, 0) << " cycles, self "
            << fmt_double(node.self_cycles(), 0) << " (x" << node.count << ")\n";
  for (const auto& ch : node.children) print_region_tree(*ch, depth + 1);
}

}  // namespace

int main() {
  using namespace kami;
  const auto& dev = sim::gh200();

  Rng rng(11);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  opt.record_trace = true;
  opt.record_regions = true;
  const auto r = gemm(Algo::OneD, dev, A, B, opt);

  const char* path = "kami_1d_64.trace.json";
  {
    std::ofstream out(path);
    obs::dump_chrome_trace_with_regions(out, *r.trace, r.regions.get(),
                                        "kami_1d 64x64 fp16");
  }

  // Per-kind summary.
  std::map<sim::OpKind, std::pair<int, double>> agg;  // kind -> (count, cycles)
  for (const auto& ev : r.trace->events()) {
    agg[ev.kind].first += 1;
    agg[ev.kind].second += ev.end - ev.start;
  }
  TablePrinter t({"op kind", "events", "warp-cycles", "amount (B or flops)"});
  for (const auto& [kind, stats] : agg) {
    t.add_row({sim::op_kind_name(kind), std::to_string(stats.first),
               fmt_double(stats.second, 0), fmt_double(r.trace->total_amount(kind), 0)});
  }
  t.print(std::cout, "KAMI-1D 64x64 FP16 on GH200: op-level timeline summary");

  std::cout << "\nPhase tree (simulated cycles):\n";
  for (const auto& ch : r.regions->root().children) print_region_tree(*ch, 0);

  // kernel -> phase -> op-kind: warp-cycles per op attributed to the
  // innermost region whose interval contains the op's issue time.
  TablePrinter po({"phase", "op kind", "warp-cycles"});
  for (const auto& rb : obs::region_op_breakdown(*r.trace, *r.regions))
    for (const auto& [kind, cycles] : rb.op_cycles)
      po.add_row({rb.path, kind, fmt_double(cycles, 0)});
  std::cout << "\n";
  po.print(std::cout, "Warp-cycles per phase and op kind");

  std::cout << "\nblock latency: " << fmt_double(r.profile.latency, 0)
            << " cycles across " << r.trace->size() << " events\n"
            << "Chrome trace written to " << path
            << " (open https://ui.perfetto.dev and load it)\n";
  return 0;
}
