#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace kami::exec {

int default_workers() {
  static const int cached = [] {
    const char* env = std::getenv("KAMI_THREADS");
    if (env == nullptr || *env == '\0') return 1;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') return 1;
    return static_cast<int>(std::clamp<long>(v, 1, kMaxWorkers));
  }();
  return cached;
}

int resolve_workers(int requested) {
  if (requested <= 0) return default_workers();
  return std::min(requested, kMaxWorkers);
}

const ExecutionEngine& ExecutionEngine::global() {
  static ExecutionEngine engine(0);
  return engine;
}

namespace {

// One parallel_for invocation. Stripe s owns indices s, s + stripes,
// s + 2*stripes, ... — a participant pops its own stripe from the back and
// steals from other stripes' front. The caller-side std::function is
// borrowed by raw pointer: a participant only dereferences it after winning
// a task index, and the caller cannot leave run_region until `remaining`
// hits zero, so the borrow is always live when used.
struct Region {
  struct Stripe {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  const std::function<void(std::size_t)>* task = nullptr;
  std::deque<Stripe> stripes;
  std::atomic<int> next_stripe{1};  // the caller is stripe 0
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  bool try_pop_own(int s, std::size_t& out) {
    Stripe& st = stripes[static_cast<std::size_t>(s)];
    std::lock_guard lock(st.mu);
    if (st.tasks.empty()) return false;
    out = st.tasks.back();
    st.tasks.pop_back();
    return true;
  }

  bool try_steal(int thief, std::size_t& out) {
    const int n = static_cast<int>(stripes.size());
    for (int d = 1; d < n; ++d) {
      Stripe& st = stripes[static_cast<std::size_t>((thief + d) % n)];
      std::lock_guard lock(st.mu);
      if (!st.tasks.empty()) {
        out = st.tasks.front();
        st.tasks.pop_front();
        return true;
      }
    }
    return false;
  }

  void participate(int stripe_id) {
    std::size_t i = 0;
    while (try_pop_own(stripe_id, i) || try_steal(stripe_id, i)) {
      (*task)(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Notify under the lock so the waiter can't miss the wake between
        // its predicate check and its wait.
        std::lock_guard lock(done_mu);
        done_cv.notify_all();
      }
    }
  }

  void wait_done() {
    std::unique_lock lock(done_mu);
    done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  }
};

// Process-wide pool of persistent helper threads. Threads are spawned
// lazily when a region wants more participants than are idle, up to
// kMaxWorkers, and parked on a condition variable between regions. The
// static instance joins everything at exit — no detached threads, no
// intentional leaks (the asan preset runs with leak checking on).
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void enlist(const std::shared_ptr<Region>& region, int helpers) {
    if (helpers <= 0) return;
    {
      std::lock_guard lock(mu_);
      for (int i = 0; i < helpers; ++i) pending_.push_back(region);
      const std::size_t deficit =
          pending_.size() > idle_ ? pending_.size() - idle_ : 0;
      for (std::size_t i = 0;
           i < deficit && threads_.size() < static_cast<std::size_t>(kMaxWorkers);
           ++i) {
        threads_.emplace_back([this] { worker_loop(); });
      }
    }
    cv_.notify_all();
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock lock(mu_);
        ++idle_;
        cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
        --idle_;
        if (pending_.empty()) return;  // shutdown with no work left
        region = std::move(pending_.front());
        pending_.pop_front();
      }
      const int stripe = region->next_stripe.fetch_add(1, std::memory_order_relaxed);
      if (stripe < static_cast<int>(region->stripes.size())) {
        region->participate(stripe);
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::deque<std::shared_ptr<Region>> pending_;
  std::size_t idle_ = 0;
  bool shutdown_ = false;
};

}  // namespace

void ExecutionEngine::run_region(std::size_t n,
                                 const std::function<void(std::size_t)>& task) const {
  const auto region = std::make_shared<Region>();
  region->task = &task;
  const int stripes =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(workers_), n));
  region->stripes.resize(static_cast<std::size_t>(stripes));
  for (std::size_t i = 0; i < n; ++i) {
    region->stripes[i % static_cast<std::size_t>(stripes)].tasks.push_back(i);
  }
  region->remaining.store(n, std::memory_order_relaxed);
  WorkerPool::instance().enlist(region, stripes - 1);
  region->participate(0);
  region->wait_done();
}

}  // namespace kami::exec
