// BoundedTaskQueue: the backpressure primitive behind GemmServer's async
// request path. A fixed-capacity FIFO of thunks: producers never block —
// a full (or closed) queue refuses the push so the caller can surface a
// typed resource_exhausted instead of stalling the submitter; consumers
// park on a condition variable until work arrives or the queue closes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "util/require.hpp"

namespace kami::exec {

class BoundedTaskQueue {
 public:
  explicit BoundedTaskQueue(std::size_t capacity) : capacity_(capacity) {
    KAMI_REQUIRE(capacity > 0, "task queue capacity must be positive");
  }

  /// Enqueue without blocking. Returns false — and does not take the task —
  /// when the queue is full or closed.
  bool try_push(std::function<void()> task) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || tasks_.size() >= capacity_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeue the oldest task, blocking while the queue is open but empty.
  /// Returns false only once the queue is closed AND drained.
  bool pop_blocking(std::function<void()>& out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty()) return false;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  /// Non-blocking dequeue: pop the oldest task if one is queued, else return
  /// false immediately (open or closed). The FleetServer's manual-drain mode
  /// uses this to run queued work inline in a deterministic device order.
  bool try_pop(std::function<void()>& out) {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  /// Refuse all future pushes and wake every parked consumer. Tasks already
  /// queued stay poppable so a draining shutdown completes them.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return tasks_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
};

}  // namespace kami::exec
