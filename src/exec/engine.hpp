// ExecutionEngine: a work-stealing thread-pool for the repo's fan-out
// workloads (batched GEMM entries, autotune candidate sweeps, chaos campaign
// points, differential fuzz points, async serving requests).
//
// Design constraints, in order:
//   * deterministic — results land in pre-sized slots indexed by input
//     order, per-task metric shards are merged back in task-index order, and
//     the lowest-index exception is the one that propagates, so output is
//     bit-identical to the serial loop for every worker count >= 2 and for
//     every exec mode (see DESIGN §10 for the exact contract, including the
//     one documented last-ulp caveat for fractional counters vs workers=1);
//   * workers == 1 IS the serial path — no shards, no snapshotting, no pool,
//     byte-for-byte the pre-engine control flow;
//   * safe to nest — a task may call parallel_for again; the nested caller
//     always drains its own stripes, so progress never depends on a free
//     pool thread.
//
// Scheduling: each parallel region stripes its indices round-robin across
// min(workers, n) mutexed deques. The calling thread participates as
// stripe 0; persistent pool threads attach as the remaining stripes. A
// participant pops its own stripe from the back and, when empty, steals from
// other stripes' front — classic work-stealing, so a stripe that drew the
// slow tasks sheds them to idle participants.
//
// Shared state audit (what makes fn safe to run concurrently): ProfileCache
// is mutex-guarded with copy-out lookups; MetricRegistry counters/gauges are
// relaxed atomics and each task additionally publishes into its own shard
// via obs::MetricRegistry::current(); verify::fault_hooks() is thread-local
// and the engine re-installs the submitting thread's hooks in every task.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "verify/invariants.hpp"

namespace kami::exec {

/// Hard cap on workers. Oversubscription past the core count is allowed
/// (and benchmarked), but runaway KAMI_THREADS values are clamped here.
inline constexpr int kMaxWorkers = 64;

/// Worker count from the KAMI_THREADS environment variable, clamped to
/// [1, kMaxWorkers]; 1 (serial) when unset or unparsable. Read once and
/// cached for the process lifetime.
int default_workers();

/// Map a caller-requested worker count to an effective one: <= 0 defers to
/// default_workers() (the env knob), anything else clamps to kMaxWorkers.
int resolve_workers(int requested);

class ExecutionEngine {
 public:
  /// `workers` <= 0 defers to KAMI_THREADS (default 1 == serial).
  explicit ExecutionEngine(int workers = 0) : workers_(resolve_workers(workers)) {}

  int workers() const noexcept { return workers_; }

  /// Run fn(0) .. fn(n-1), distributed across workers. Blocks until every
  /// index has run. Each task sees the submitting thread's FaultHooks and
  /// publishes metrics into a per-task shard; shards are merged back into
  /// the submitter's MetricRegistry::current() in index order. If any
  /// indices throw, the shards of tasks past the lowest failing index are
  /// discarded and that lowest-index exception is rethrown — exactly the
  /// state a serial loop would have left behind.
  ///
  /// Span propagation: when the submitting thread has an active tracer
  /// (obs::current_tracer()), every task gets its own shard TraceBuilder
  /// rooted at a "task[i]" span that starts at the parent's clock; shards
  /// are grafted back under the parent's innermost open span in task-index
  /// order and the parent clock advances once, by the maximum shard clock —
  /// tasks are concurrent, so the region costs its critical path. The
  /// serial path builds the identical shard structure, so a traced region
  /// is bit-identical at every worker count. On an exception, shards up to
  /// and including the lowest failing index are grafted (mirroring the
  /// metric-shard contract) before the rethrow.
  template <class Fn>
  void parallel_for(std::size_t n, Fn&& fn) const {
    if (n == 0) return;
    obs::TraceBuilder* tracer = obs::current_tracer();
    if (workers_ <= 1 || n == 1) {
      if (tracer == nullptr) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
      }
      const double start = tracer->clock();
      double max_clock = start;
      for (std::size_t i = 0; i < n; ++i) {
        obs::TraceBuilder shard("shard", "task[" + std::to_string(i) + "]", start);
        std::exception_ptr error;
        {
          obs::ScopedTracer scoped(&shard);
          try {
            fn(i);
          } catch (...) {
            error = std::current_exception();
          }
        }
        max_clock = std::max(max_clock, shard.clock());
        tracer->graft(shard.finish());
        if (error) {
          tracer->advance(max_clock - start);
          std::rethrow_exception(error);
        }
      }
      tracer->advance(max_clock - start);
      return;
    }
    obs::MetricRegistry& parent = obs::MetricRegistry::current();
    const verify::FaultHooks hooks = verify::fault_hooks();
    // deque, not vector: MetricRegistry holds a mutex and is immovable.
    std::deque<obs::MetricRegistry> shards(n);
    std::deque<obs::TraceBuilder> trace_shards;
    const double start = tracer != nullptr ? tracer->clock() : 0.0;
    if (tracer != nullptr)
      for (std::size_t i = 0; i < n; ++i)
        trace_shards.emplace_back("shard", "task[" + std::to_string(i) + "]", start);
    std::vector<std::exception_ptr> errors(n);
    const auto task = [&](std::size_t i) {
      verify::ScopedFault fault(hooks);
      obs::ScopedMetricShard shard(shards[i]);
      obs::ScopedTracer scoped(tracer != nullptr ? &trace_shards[i] : nullptr);
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    };
    run_region(n, task);
    double max_clock = start;
    for (std::size_t i = 0; i < n; ++i) {
      parent.merge_from(shards[i]);
      if (tracer != nullptr) {
        max_clock = std::max(max_clock, trace_shards[i].clock());
        tracer->graft(trace_shards[i].finish());
      }
      if (errors[i]) {
        if (tracer != nullptr) tracer->advance(max_clock - start);
        std::rethrow_exception(errors[i]);
      }
    }
    if (tracer != nullptr) tracer->advance(max_clock - start);
  }

  /// parallel_for that collects fn(i) into a pre-sized vector slot i.
  /// T must be default-constructible and move-assignable.
  template <class T, class Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) const {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Engine configured purely by KAMI_THREADS.
  static const ExecutionEngine& global();

 private:
  /// Scheduling core (engine.cpp): stripes indices, enlists pool threads,
  /// participates from the calling thread, blocks until all tasks ran.
  /// `task` must not throw (parallel_for wraps exceptions per index).
  void run_region(std::size_t n, const std::function<void(std::size_t)>& task) const;

  int workers_;
};

}  // namespace kami::exec
