#include "verify/differential.hpp"

#include <cstring>
#include <iomanip>
#include <optional>
#include <sstream>

#include "baselines/reference.hpp"
#include "exec/engine.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace kami::verify {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

// Device names contain spaces ("RTX 5090"); specs are whitespace-tokenized.
std::string encode_name(std::string s) {
  for (char& c : s)
    if (c == ' ') c = '_';
  return s;
}
std::string decode_name(std::string s) {
  for (char& c : s)
    if (c == '_') c = ' ';
  return s;
}

constexpr Precision kPrecisions[] = {Precision::FP64, Precision::FP32,
                                     Precision::TF32, Precision::FP16,
                                     Precision::BF16, Precision::FP8E4M3};

Precision precision_from_token(const std::string& tok) {
  for (const Precision p : kPrecisions)
    if (tok == precision_name(p)) return p;
  throw PreconditionError("unknown precision token: " + tok);
}

const char* algo_token(core::Algo a) {
  switch (a) {
    case core::Algo::OneD: return "1d";
    case core::Algo::TwoD: return "2d";
    case core::Algo::ThreeD: return "3d";
  }
  return "?";
}

core::Algo algo_from_token(const std::string& tok) {
  if (tok == "1d") return core::Algo::OneD;
  if (tok == "2d") return core::Algo::TwoD;
  if (tok == "3d") return core::Algo::ThreeD;
  throw PreconditionError("unknown algo token: " + tok);
}

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

/// Relative tolerance (scaled by k, the reduction length) for KAMI-3D vs the
/// FP64 reference; matches tests/core/kami_correctness_test.cpp.
double reference_tolerance(Precision p) {
  switch (p) {
    case Precision::FP64: return 1e-12;
    case Precision::FP32: return 1e-5;
    case Precision::TF32: return 1e-2;
    case Precision::FP16: return 1e-2;
    case Precision::BF16: return 1e-1;
    case Precision::FP8E4M3: return 8e-2;
  }
  return 1e-2;
}

template <Scalar T>
CheckResult check_impl(const CheckPoint& p) {
  const sim::DeviceSpec& dev = sim::device_by_name(p.device);
  if (!dev.supports(num_traits<T>::precision))
    return {true, true,
            std::string(precision_name(num_traits<T>::precision)) +
                " not supported on " + dev.name};

  Rng rng(p.data_seed);
  const Matrix<T> A = random_matrix<T>(p.m, p.k, rng);
  const Matrix<T> B = random_matrix<T>(p.k, p.n, rng);

  core::GemmOptions full = p.options;
  full.mode = sim::ExecMode::Full;
  full.record_trace = false;
  full.record_regions = false;
  core::GemmOptions timing = full;
  timing.mode = sim::ExecMode::TimingOnly;
  core::GemmOptions numeric = full;
  numeric.mode = sim::ExecMode::NumericsOnly;

  std::optional<core::GemmResult<T>> f;
  try {
    f.emplace(kami::gemm(p.algo, dev, A, B, full));
  } catch (const InvariantViolation&) {
    throw;  // always a simulator bug, never an infeasible point
  } catch (const PreconditionError& e) {
    // Infeasible point. Feasibility must be mode-independent: TimingOnly
    // sees the same planner and allocators and must reject it too.
    try {
      (void)kami::gemm(p.algo, dev, A, B, timing);
    } catch (const InvariantViolation&) {
      throw;
    } catch (const PreconditionError&) {
      return {true, true, std::string("infeasible: ") + e.what()};
    }
    return {false, false,
            std::string("Full rejected the point but TimingOnly accepted it (Full: ") +
                e.what() + ")"};
  }

  const auto t = kami::gemm(p.algo, dev, A, B, timing);
  if (const std::string d = profile_diff(f->profile, t.profile); !d.empty())
    return {false, false, "TimingOnly profile diverges from Full: " + d};
  if (t.warps != f->warps || t.smem_ratio != f->smem_ratio)
    return {false, false, "TimingOnly resolved a different plan than Full"};

  const auto nres = kami::gemm(p.algo, dev, A, B, numeric);
  if (!bits_equal(nres.C, f->C))
    return {false, false,
            "NumericsOnly result diverges from Full (max |delta| = " +
                fmt(max_abs_diff(nres.C, f->C)) + ")"};

  if (p.algo == core::Algo::ThreeD) {
    const Matrix<double> ref = baselines::reference_gemm_fp64(A, B);
    const double bound =
        reference_tolerance(num_traits<T>::precision) * static_cast<double>(p.k);
    const double err = max_abs_diff(f->C, ref);
    if (!(err <= bound))
      return {false, false,
              "KAMI-3D deviates from the FP64 reference: max |delta| = " + fmt(err) +
                  " > " + fmt(bound)};
  } else {
    const Matrix<T> ref = baselines::reference_gemm(A, B);
    if (!bits_equal(f->C, ref))
      return {false, false,
              std::string(algo_name(p.algo)) +
                  " must match the reference bit-for-bit (max |delta| = " +
                  fmt(max_abs_diff(f->C, ref)) + ")"};
  }
  return {true, false, ""};
}

}  // namespace

std::string to_string(const CheckPoint& p) {
  std::ostringstream os;
  os << "device=" << encode_name(p.device) << " prec=" << precision_name(p.precision)
     << " algo=" << algo_token(p.algo) << " m=" << p.m << " n=" << p.n << " k=" << p.k
     << " warps=" << p.options.warps << " smem_ratio=" << fmt(p.options.smem_ratio)
     << " slice_pref=" << p.options.slice_pref
     << " io=" << (p.options.charge_global_io ? 1 : 0)
     << " theta_r=" << fmt(p.options.theta_r) << " theta_w=" << fmt(p.options.theta_w)
     << " seed=" << p.data_seed;
  return os.str();
}

CheckPoint point_from_string(const std::string& line) {
  CheckPoint p;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    KAMI_REQUIRE(eq != std::string::npos,
                 "check-point token must be key=value, got: " + tok);
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "device") {
      p.device = decode_name(val);
    } else if (key == "prec") {
      p.precision = precision_from_token(val);
    } else if (key == "algo") {
      p.algo = algo_from_token(val);
    } else if (key == "m") {
      p.m = std::stoul(val);
    } else if (key == "n") {
      p.n = std::stoul(val);
    } else if (key == "k") {
      p.k = std::stoul(val);
    } else if (key == "warps") {
      p.options.warps = std::stoi(val);
    } else if (key == "smem_ratio") {
      p.options.smem_ratio = std::stod(val);
    } else if (key == "slice_pref") {
      p.options.slice_pref = std::stoul(val);
    } else if (key == "io") {
      p.options.charge_global_io = val != "0";
    } else if (key == "theta_r") {
      p.options.theta_r = std::stod(val);
    } else if (key == "theta_w") {
      p.options.theta_w = std::stod(val);
    } else if (key == "seed") {
      p.data_seed = std::stoull(val);
    } else {
      throw PreconditionError("unknown check-point key: " + key);
    }
  }
  return p;
}

std::string profile_diff(const sim::KernelProfile& a, const sim::KernelProfile& b) {
  std::ostringstream os;
  const auto field = [&os](const char* name, double x, double y) {
    if (x != y) os << name << ": " << fmt(x) << " vs " << fmt(y) << "; ";
  };
  field("latency", a.latency, b.latency);
  field("tc_busy", a.tc_busy, b.tc_busy);
  field("smem_busy", a.smem_busy, b.smem_busy);
  field("gmem_busy", a.gmem_busy, b.gmem_busy);
  field("vector_busy", a.vector_busy, b.vector_busy);
  field("useful_flops", a.useful_flops, b.useful_flops);
  field("reg_bytes_per_warp", static_cast<double>(a.reg_bytes_per_warp),
        static_cast<double>(b.reg_bytes_per_warp));
  field("smem_bytes", static_cast<double>(a.smem_bytes),
        static_cast<double>(b.smem_bytes));
  field("num_warps", a.num_warps, b.num_warps);
  field("breakdown.smem_comm", a.mean_breakdown.smem_comm, b.mean_breakdown.smem_comm);
  field("breakdown.gmem", a.mean_breakdown.gmem, b.mean_breakdown.gmem);
  field("breakdown.reg_copy", a.mean_breakdown.reg_copy, b.mean_breakdown.reg_copy);
  field("breakdown.compute", a.mean_breakdown.compute, b.mean_breakdown.compute);
  field("breakdown.sync_wait", a.mean_breakdown.sync_wait, b.mean_breakdown.sync_wait);
  return os.str();
}

CheckResult check_point(const CheckPoint& p) {
  switch (p.precision) {
    case Precision::FP64: return check_impl<double>(p);
    case Precision::FP32: return check_impl<float>(p);
    case Precision::TF32: return check_impl<tf32_t>(p);
    case Precision::FP16: return check_impl<fp16_t>(p);
    case Precision::BF16: return check_impl<bf16_t>(p);
    case Precision::FP8E4M3: return check_impl<fp8_e4m3_t>(p);
  }
  throw PreconditionError("unknown precision in check point");
}

CheckPoint random_point(std::uint64_t seed) {
  Rng rng(seed);
  CheckPoint p;
  p.data_seed = seed * 0x9e3779b97f4a7c15ull + 1;

  static constexpr const char* kDevices[] = {"GH200", "RTX 5090", "7900 XTX",
                                             "Max 1100"};
  p.device = kDevices[rng.uniform_index(4)];
  const sim::DeviceSpec& dev = sim::device_by_name(p.device);

  p.precision = kPrecisions[rng.uniform_index(6)];
  for (int tries = 0; tries < 8 && !dev.supports(p.precision); ++tries)
    p.precision = kPrecisions[rng.uniform_index(6)];
  if (!dev.supports(p.precision)) p.precision = Precision::FP16;

  static constexpr core::Algo kAlgos[] = {core::Algo::OneD, core::Algo::TwoD,
                                          core::Algo::ThreeD};
  p.algo = kAlgos[rng.uniform_index(3)];

  // Multiples of 16 keep shapes MMA-aligned; infeasible combinations (e.g.
  // 27 warps with a dimension not divisible by 3) exercise the consistent-
  // rejection path rather than being avoided.
  static constexpr std::size_t kDims[] = {16, 32, 48, 64, 96};
  p.m = kDims[rng.uniform_index(5)];
  p.n = kDims[rng.uniform_index(5)];
  p.k = kDims[rng.uniform_index(5)];

  if (rng.bernoulli(0.4)) {
    switch (p.algo) {
      case core::Algo::OneD: {
        static constexpr int kW[] = {2, 4, 8, 16};
        p.options.warps = kW[rng.uniform_index(4)];
        break;
      }
      case core::Algo::TwoD: p.options.warps = rng.bernoulli(0.5) ? 4 : 16; break;
      case core::Algo::ThreeD: p.options.warps = rng.bernoulli(0.5) ? 8 : 27; break;
    }
  }
  if (rng.bernoulli(0.3)) {
    static constexpr double kRatios[] = {0.0, 0.25, 0.5, 0.75, 0.875};
    p.options.smem_ratio = kRatios[rng.uniform_index(5)];
  }
  if (rng.bernoulli(0.2)) p.options.slice_pref = 8;
  p.options.charge_global_io = rng.bernoulli(0.25);
  static constexpr double kThetas[] = {1.0, 1.0, 0.5, 0.25};
  p.options.theta_r = kThetas[rng.uniform_index(4)];
  p.options.theta_w = kThetas[rng.uniform_index(4)];
  return p;
}

const std::vector<CheckPoint>& smoke_points() {
  static const std::vector<CheckPoint> points = [] {
    std::vector<CheckPoint> ps;
    const auto add = [&ps](const char* device, Precision prec, core::Algo algo,
                           std::size_t m, std::size_t n, std::size_t k,
                           core::GemmOptions opt = {}) {
      ps.push_back(CheckPoint{device, prec, algo, m, n, k, opt, 101});
    };
    core::GemmOptions io;
    io.charge_global_io = true;
    core::GemmOptions conflict;
    conflict.theta_r = 0.5;
    conflict.theta_w = 0.5;
    core::GemmOptions spill;
    spill.smem_ratio = 0.5;
    core::GemmOptions warps8;
    warps8.warps = 8;
    core::GemmOptions warps27;
    warps27.warps = 27;

    add("GH200", Precision::FP16, core::Algo::OneD, 64, 64, 64);
    add("GH200", Precision::FP16, core::Algo::TwoD, 64, 64, 64);
    add("GH200", Precision::FP16, core::Algo::ThreeD, 48, 48, 48);
    add("GH200", Precision::FP64, core::Algo::OneD, 64, 64, 64, warps8);
    add("GH200", Precision::FP8E4M3, core::Algo::OneD, 64, 64, 64);
    add("GH200", Precision::FP16, core::Algo::OneD, 64, 64, 128, spill);
    add("GH200", Precision::FP16, core::Algo::OneD, 64, 64, 64, io);
    add("GH200", Precision::FP16, core::Algo::TwoD, 32, 32, 32, conflict);
    add("RTX 5090", Precision::BF16, core::Algo::OneD, 64, 64, 64);
    add("7900 XTX", Precision::FP16, core::Algo::TwoD, 32, 32, 32);
    add("Max 1100", Precision::FP16, core::Algo::OneD, 32, 32, 32);
    // RTX 5090 has no FP64 tensor path: must skip, not fail.
    add("RTX 5090", Precision::FP64, core::Algo::OneD, 64, 64, 64);
    // Deliberately infeasible (27 warps need dimensions divisible by 3):
    // exercises the consistent-rejection branch of the checker.
    add("GH200", Precision::FP16, core::Algo::ThreeD, 64, 64, 64, warps27);
    return ps;
  }();
  return points;
}

FuzzReport run_fuzz(std::uint64_t base_seed, std::size_t iters, int workers) {
  // Fuzz points are seeded independently, so they fan out across the
  // execution engine; each point's outcome lands in its seed-indexed slot
  // and the report is folded serially, making the report (including
  // failure order) bit-identical for every worker count.
  const exec::ExecutionEngine engine(workers);
  struct Outcome {
    CheckResult result;
    std::string spec;
  };
  const auto outcomes = engine.parallel_map<Outcome>(iters, [&](std::size_t i) {
    const CheckPoint p = random_point(base_seed + i);
    Outcome o;
    o.spec = to_string(p);
    try {
      o.result = check_point(p);
    } catch (const std::exception& e) {
      o.result = CheckResult{false, false, std::string("exception: ") + e.what()};
    }
    return o;
  });

  FuzzReport rep;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    ++rep.ran;
    if (!o.result.ok)
      rep.failures.push_back({base_seed + i, o.result.detail + " [" + o.spec + "]"});
    else if (o.result.skipped)
      ++rep.skipped;
    else
      ++rep.passed;
  }
  return rep;
}

std::string invariant_selftest() {
#if KAMI_CHECK_INVARIANTS
  const sim::DeviceSpec& dev = sim::gh200();
  Rng rng(7);
  const Matrix<fp16_t> A = random_matrix<fp16_t>(32, 32, rng);
  const Matrix<fp16_t> B = random_matrix<fp16_t>(32, 32, rng);
  {
    FaultHooks fault;
    fault.warp_advance_skew = -1e9;  // rewinds every warp op's end time
    const ScopedFault guard(fault);
    try {
      (void)kami::gemm(core::Algo::OneD, dev, A, B);
      return "clock-rewind fault was not caught by the invariant layer";
    } catch (const InvariantViolation&) {
    }
  }
  {
    FaultHooks fault;
    fault.port_busy_skew = 1e6;  // double-charges the port busy counter
    const ScopedFault guard(fault);
    try {
      (void)kami::gemm(core::Algo::OneD, dev, A, B);
      return "port double-charge fault was not caught by the invariant layer";
    } catch (const InvariantViolation&) {
    }
  }
  try {
    (void)kami::gemm(core::Algo::OneD, dev, A, B);
  } catch (const std::exception& e) {
    return std::string("fault-free run failed after fault injection: ") + e.what();
  }
  return "";
#else
  return "";  // invariants compiled out; nothing to test
#endif
}

}  // namespace kami::verify
