// Simulator invariant checking (always compiled, unlike KAMI_ASSERT).
//
// The cycle model's credibility rests on a handful of structural invariants:
// warp clocks only move forward, resource timelines never charge more busy
// cycles than they reserve, register files never exceed capacity, and trace
// events are well-formed and issued in order. KAMI_INVARIANT enforces them in
// every build type (the default Release build compiles KAMI_ASSERT out, which
// is exactly when a cycle-accounting bug would go unnoticed); define
// KAMI_CHECK_INVARIANTS=0 to compile the checks out of the hot paths.
//
// FaultHooks is the test-only back door: kami_verify and the verify tests
// inject accounting faults through it to prove the invariant layer actually
// fires (see invariant_selftest in verify/differential.hpp).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

#include "util/require.hpp"

#ifndef KAMI_CHECK_INVARIANTS
#define KAMI_CHECK_INVARIANTS 1
#endif

namespace kami::verify {

/// Thrown when a simulator-internal consistency condition fails. Deliberately
/// NOT a PreconditionError: callers treat PreconditionError as "infeasible
/// configuration", while an InvariantViolation always means a simulator bug
/// (or an injected fault) and must never be swallowed by feasibility logic.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void invariant_failed(const char* expr, const std::string& msg,
                                          const std::source_location loc) {
  std::string what = std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                     ": simulator invariant violated: " + expr;
  if (!msg.empty()) what += " (" + msg + ")";
  throw InvariantViolation(what);
}

}  // namespace detail

/// Test-only fault injection into the cycle-accounting hot paths. All fields
/// are zero/disarmed in normal operation; tests set them through ScopedFault
/// to verify that the invariant layer catches the corresponding class of bug,
/// and the serving layer's chaos campaign (src/serve/chaos.hpp) uses them as
/// its transient-fault source.
struct FaultHooks {
  /// Added to every warp op's end time before the clock-monotonicity check;
  /// a negative value emulates an op that rewinds the warp clock.
  double warp_advance_skew = 0.0;
  /// Added to the occupancy a PortTimeline charges to its busy counter (but
  /// not to its reservation), emulating double-charged port cycles.
  double port_busy_skew = 0.0;
  /// How many more *runs* the skews above stay live: negative = every run
  /// (a permanent fault, the pre-existing behavior), 0 = disarmed, positive =
  /// a transient fault that clears after that many failing runs. The retry
  /// loop in serve::GemmServer decrements a positive count each time it
  /// catches an injected InvariantViolation, modeling a fault that goes away
  /// when the request is retried.
  int armed_runs = -1;
  /// When >= 0, the countdown-th register-file allocation from now throws
  /// RegisterOverflow ("injected allocation failure") and the hook disarms
  /// itself (one-shot). Emulates a transient allocation failure that a
  /// degradation rung or retry can recover from.
  long long alloc_fail_countdown = -1;
};

/// The per-thread hook block (shared across translation units). Thread-local
/// so concurrent simulations under the execution engine can't observe (or
/// consume) each other's armed faults; the engine snapshots the submitting
/// thread's hooks and re-installs them in each worker via ScopedFault, so a
/// fault armed around a parallel_for applies to every task exactly as it
/// would to every iteration of the serial loop.
inline FaultHooks& fault_hooks() {
  thread_local FaultHooks hooks;
  return hooks;
}

/// Is any cycle-accounting skew currently live? The serving layer uses this
/// to tell an injected (and therefore retryable) InvariantViolation from a
/// genuine simulator bug: a violation with no armed fault source is always
/// classified as an internal invariant failure.
inline bool faults_armed() {
  const FaultHooks& h = fault_hooks();
  return h.armed_runs != 0 &&
         (h.warp_advance_skew != 0.0 || h.port_busy_skew != 0.0);
}

/// RAII fault injection: installs `hooks` for the enclosing scope and always
/// restores the previous state, including when an InvariantViolation unwinds.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultHooks& hooks) : saved_(fault_hooks()) {
    fault_hooks() = hooks;
  }
  ~ScopedFault() { fault_hooks() = saved_; }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultHooks saved_;
};

}  // namespace kami::verify

#if KAMI_CHECK_INVARIANTS
#define KAMI_INVARIANT(expr, ...)                                                   \
  do {                                                                              \
    if (!(expr)) [[unlikely]] {                                                     \
      ::kami::verify::detail::invariant_failed(#expr, ::std::string{__VA_ARGS__},   \
                                               ::std::source_location::current());  \
    }                                                                               \
  } while (false)
/// Value pass-through that applies the named FaultHooks skew while the hooks
/// are armed (identity when invariant checking — and with it fault
/// injection — is compiled out, and while armed_runs == 0).
#define KAMI_FAULT_SKEW(field, value)                                               \
  ((value) + (::kami::verify::fault_hooks().armed_runs != 0                         \
                  ? ::kami::verify::fault_hooks().field                             \
                  : 0.0))
#else
#define KAMI_INVARIANT(expr, ...) ((void)0)
#define KAMI_FAULT_SKEW(field, value) (value)
#endif
