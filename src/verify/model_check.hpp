// Model-divergence checking: the analytic-planner half of kami_verify.
//
// The calibrated closed forms (model::Predictor) claim that simulated block
// latency is the raw formula value times a per-bucket scale, within a
// per-bucket band. check_model_point() puts one configuration's claim on
// trial with no help from ambient state: it calibrates a *fresh* predictor on
// a deterministic grid of cube shapes (holding the point's own shape out),
// predicts the holdout, simulates it once in TimingOnly, and asserts the two
// agree within the calibrated tolerance. Disagreement is a typed
// model::ModelDivergence, reported as a CheckResult failure — the same
// replayable contract as the differential checker (`kami_verify model`,
// `kami_verify repro <seed>` via the shared point grammar).
#pragma once

#include <cstdint>

#include "verify/differential.hpp"

namespace kami::verify {

/// Formula-vs-simulator divergence check for one point. Self-calibrating and
/// hermetic: uses a local ProfileCache and Predictor, never the globals.
/// Skips (ok, skipped) for unsupported precisions, infeasible configurations,
/// and points whose calibration grid leaves the bucket uncalibrated.
CheckResult check_model_point(const CheckPoint& p);

/// Fuzz iterations seeded base_seed, base_seed+1, ... through
/// check_model_point (the same seed -> point generator as run_fuzz, so a
/// failing seed replays under either checker). Bit-identical report at every
/// worker count.
FuzzReport run_model_fuzz(std::uint64_t base_seed, std::size_t iters, int workers = 1);

}  // namespace kami::verify
