// Differential correctness checking (the kami_verify engine).
//
// A CheckPoint is one randomized-or-curated configuration: (device,
// precision, algo, shape, tuning options, data seed). check_point() runs it
// through the three execution modes and the reference rounding model and
// asserts the PR-2 mode-equivalence contract:
//
//   * Full vs TimingOnly  — bit-identical KernelProfile (and resolved plan);
//   * Full vs NumericsOnly — bit-identical result matrix C;
//   * Full vs reference    — bit-exact for KAMI-1D/2D (sequential-k order),
//     precision-aware tolerance vs the FP64 reference for KAMI-3D (which
//     re-associates the k-reduction across layers);
//   * infeasible points    — every timed mode must reject them identically.
//
// Points serialize to one-line `key=value` specs (to_string/point_from_string)
// so a fuzz failure is replayable with `kami_verify repro <seed>` and curated
// regressions live as text files under tests/verify/corpus/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/kami.hpp"
#include "sim/device.hpp"
#include "sim/throughput.hpp"

namespace kami::verify {

/// One differential-check configuration. The options' mode/record flags are
/// ignored: check_point forces each mode itself.
struct CheckPoint {
  std::string device = "GH200";
  Precision precision = Precision::FP16;
  core::Algo algo = core::Algo::OneD;
  std::size_t m = 64, n = 64, k = 64;
  core::GemmOptions options;
  std::uint64_t data_seed = 1;
};

/// One-line `key=value` spec (spaces in device names become '_').
std::string to_string(const CheckPoint& p);

/// Parse a spec produced by to_string (unknown keys throw PreconditionError).
CheckPoint point_from_string(const std::string& line);

struct CheckResult {
  bool ok = true;
  bool skipped = false;  ///< infeasible or unsupported, rejected consistently
  std::string detail;    ///< failure description or skip reason
};

/// Run the full differential check for one point.
CheckResult check_point(const CheckPoint& p);

/// Deterministic seed -> point generation (the fuzzer's generator; `repro
/// <seed>` rebuilds the exact point the failing iteration used).
CheckPoint random_point(std::uint64_t seed);

/// The curated smoke suite: 1D/2D/3D across devices and precisions, spill
/// and bank-conflict variants, plus a deliberately infeasible point that
/// exercises the consistent-rejection path.
const std::vector<CheckPoint>& smoke_points();

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string detail;
};

struct FuzzReport {
  std::size_t ran = 0;
  std::size_t passed = 0;
  std::size_t skipped = 0;
  std::vector<FuzzFailure> failures;
};

/// Check iterations seeded base_seed, base_seed+1, ... (one point each).
/// `workers` fans the points out across the execution engine (0 = defer to
/// KAMI_THREADS, 1 = serial); the report — counts, failure order, details —
/// is bit-identical for every worker count.
FuzzReport run_fuzz(std::uint64_t base_seed, std::size_t iters, int workers = 1);

/// Self-test of the invariant layer: injects cycle-accounting faults through
/// verify::FaultHooks and confirms the simulator throws InvariantViolation,
/// then confirms a clean run passes. Returns "" on success, else a
/// description of what failed (always "" when KAMI_CHECK_INVARIANTS=0).
std::string invariant_selftest();

/// "" when every profile field is identical, else "field: a vs b" list.
std::string profile_diff(const sim::KernelProfile& a, const sim::KernelProfile& b);

}  // namespace kami::verify
