#include "verify/model_check.hpp"

#include <sstream>

#include "core/analytic_planner.hpp"
#include "core/profile_cache.hpp"
#include "exec/engine.hpp"

namespace kami::verify {
namespace {

/// The calibration grid: cube shapes spanning the tier the fuzz generator
/// draws from (16..96) plus one extrapolation point above it. Cubes keep the
/// grid small while still exercising every shape-dependent formula term
/// (m, n and k all vary together).
constexpr std::size_t kCalibrationDims[] = {16, 32, 48, 64, 96, 128};

template <Scalar T>
CheckResult model_check_impl(const CheckPoint& p) {
  const sim::DeviceSpec& dev = sim::device_by_name(p.device);
  if (!dev.supports(num_traits<T>::precision))
    return {true, true,
            std::string(precision_name(num_traits<T>::precision)) +
                " not supported on " + dev.name};

  // Resolve the plan first: an infeasible point has no latency to predict,
  // and plan_gemm rejects it exactly as the kernel would.
  core::Plan plan;
  try {
    plan = core::plan_gemm(p.algo, dev, num_traits<T>::precision, p.m, p.n, p.k,
                           p.options);
  } catch (const PreconditionError& e) {
    return {true, true, std::string("infeasible: ") + e.what()};
  }

  // The closed forms only claim shapes that divide the precision's MMA tile;
  // the predictor refuses ragged shapes (domain gate), so there is nothing to
  // check against — the planner always simulates them.
  const sim::MmaShape tile = dev.mma_shape(num_traits<T>::precision);
  if (p.m % static_cast<std::size_t>(tile.m) != 0 ||
      p.n % static_cast<std::size_t>(tile.n) != 0 ||
      p.k % static_cast<std::size_t>(tile.k) != 0) {
    std::ostringstream os;
    os << "ragged shape outside the analytic model's domain (MMA tile m" << tile.m
       << "n" << tile.n << "k" << tile.k << ")";
    return {true, true, os.str()};
  }

  // Hermetic calibration: simulate the grid (holding the point's own shape
  // out) into a local cache, then harvest it into a local predictor. Grid
  // shapes the options make infeasible are simply absent from the fit.
  core::ProfileCache cache;
  model::Predictor predictor;
  for (const std::size_t s : kCalibrationDims) {
    if (s == p.m && s == p.n && s == p.k) continue;  // holdout
    try {
      (void)core::timing_profile<T>(cache, p.algo, dev, s, s, s, p.options);
    } catch (const PreconditionError&) {
      continue;
    }
  }
  const std::size_t fed = core::calibrate_from_cache(predictor, cache);

  const model::Prediction prediction =
      predictor.predict(dev, p.algo, num_traits<T>::precision, p.m, p.n, p.k, plan.p,
                        core::predict_options(p.options));
  if (!prediction.calibrated) {
    std::ostringstream os;
    os << "bucket uncalibrated after grid (" << fed << " of "
       << predictor.config().min_samples << " needed observations)";
    return {true, true, os.str()};
  }

  const core::CachedProfile actual =
      core::timing_profile<T>(cache, p.algo, dev, p.m, p.n, p.k, p.options);
  try {
    model::Predictor::require_within_band(prediction, actual.profile.latency,
                                          predictor.config(),
                                          "model check [" + to_string(p) + "]");
  } catch (const model::ModelDivergence& e) {
    return {false, false, e.what()};
  }
  return {true, false, ""};
}

}  // namespace

CheckResult check_model_point(const CheckPoint& p) {
  switch (p.precision) {
    case Precision::FP64: return model_check_impl<double>(p);
    case Precision::FP32: return model_check_impl<float>(p);
    case Precision::TF32: return model_check_impl<tf32_t>(p);
    case Precision::FP16: return model_check_impl<fp16_t>(p);
    case Precision::BF16: return model_check_impl<bf16_t>(p);
    case Precision::FP8E4M3: return model_check_impl<fp8_e4m3_t>(p);
  }
  throw PreconditionError("unknown precision in check point");
}

FuzzReport run_model_fuzz(std::uint64_t base_seed, std::size_t iters, int workers) {
  // Same fan-out/fold shape as run_fuzz: outcomes land in seed-indexed slots
  // and fold serially, so the report is bit-identical at every worker count.
  const exec::ExecutionEngine engine(workers);
  struct Outcome {
    CheckResult result;
    std::string spec;
  };
  const auto outcomes = engine.parallel_map<Outcome>(iters, [&](std::size_t i) {
    const CheckPoint p = random_point(base_seed + i);
    Outcome o;
    o.spec = to_string(p);
    try {
      o.result = check_model_point(p);
    } catch (const std::exception& e) {
      o.result = CheckResult{false, false, std::string("exception: ") + e.what()};
    }
    return o;
  });

  FuzzReport rep;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    ++rep.ran;
    if (!o.result.ok)
      rep.failures.push_back({base_seed + i, o.result.detail + " [" + o.spec + "]"});
    else if (o.result.skipped)
      ++rep.skipped;
    else
      ++rep.passed;
  }
  return rep;
}

}  // namespace kami::verify
