// Theoretical register-usage model (§4.7, Fig 14, §5.6.1).
//
// Counts the register bytes one warp must hold for each algorithm: its
// resident A_i and B_i submatrices at storage width, the staging Recv
// buffers, and its C_i accumulator at the MMA accumulate width (FP32 for
// FP16/TF32/FP8, FP64 for FP64 — "two 32-bit registers per element", §4.7).
// Reported as 32-bit registers per thread, the unit Fig 14 plots. Measured
// usage (the simulator's high-water mark) is lower because implementations
// reuse buffers across stages, mirroring the compiler-reuse gap the paper
// observes (65-77 % of theory).
#pragma once

#include <cstddef>

#include "types/float_formats.hpp"

namespace kami::model {

enum class Algo { OneD, TwoD, ThreeD };

struct RegisterUsage {
  double bytes_a = 0.0;
  double bytes_b = 0.0;
  double bytes_c = 0.0;     ///< accumulator width
  double bytes_recv = 0.0;  ///< staging buffers for incoming broadcasts
  double total_bytes() const noexcept { return bytes_a + bytes_b + bytes_c + bytes_recv; }

  /// 32-bit registers per thread for a 32-thread warp.
  double regs_per_thread() const noexcept { return total_bytes() / 4.0 / 32.0; }
};

/// Bytes of the accumulator element for a storage precision.
std::size_t accumulator_bytes(Precision p) noexcept;

RegisterUsage register_usage(Algo algo, Precision prec, std::size_t m, std::size_t n,
                             std::size_t k, int p);

}  // namespace kami::model
