#include "model/cost_model.hpp"

#include <cmath>

#include "util/require.hpp"

namespace kami::model {

namespace {

int isqrt_exact(int p) {
  const int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  KAMI_REQUIRE(r * r == p, "2D algorithm requires p to be a perfect square");
  return r;
}

int icbrt_exact(int p) {
  const int r = static_cast<int>(std::lround(std::cbrt(static_cast<double>(p))));
  KAMI_REQUIRE(r * r * r == p, "3D algorithm requires p to be a perfect cube");
  return r;
}

void validate(const Params& q) {
  KAMI_REQUIRE(q.m > 0 && q.n > 0 && q.k > 0);
  KAMI_REQUIRE(q.p >= 1);
  KAMI_REQUIRE(q.se > 0.0 && q.B_sm > 0.0 && q.O_tc > 0.0 && q.n_tc >= 1);
  KAMI_REQUIRE(q.theta_r > 0.0 && q.theta_r <= 1.0);
  KAMI_REQUIRE(q.theta_w > 0.0 && q.theta_w <= 1.0);
}

}  // namespace

Params Params::from_device(const sim::DeviceSpec& dev, Precision prec, std::size_t m,
                           std::size_t n, std::size_t k, int p) {
  Params q;
  q.m = m;
  q.n = n;
  q.k = k;
  q.p = p;
  q.se = static_cast<double>(element_bytes(prec));
  q.L_sm = dev.smem_latency_cycles;
  q.B_sm = dev.smem_bytes_per_cycle();
  q.O_tc = dev.ops_per_cycle_per_tc(prec);
  q.n_tc = dev.tensor_cores_per_sm;
  return q;
}

double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
}

Cost cost_1d(const Params& q) {
  validate(q);
  const double p = static_cast<double>(q.p);
  const double m = static_cast<double>(q.m);
  const double n = static_cast<double>(q.n);
  const double k = static_cast<double>(q.k);

  Cost c;
  c.stages = q.p;
  // Formula (1): one warp writes B_z (k/p x n), p-1 warps read it, p stages.
  c.V_cm = k * n * q.se;
  // Formula (2).
  c.T_cm = q.L_sm + k * n * q.se / (q.theta_w * p * q.B_sm) +
           (p - 1.0) * k * n * q.se / (q.theta_r * p * q.B_sm);
  // Formula (3).
  c.T_cp = 2.0 * m * n * k / (p * p * q.O_tc);
  // Formula (4), expanded total.
  c.comm_cycles = q.L_sm * p + k * n * q.se / (q.theta_w * q.B_sm) +
                  (p - 1.0) * k * n * q.se / (q.theta_r * q.B_sm);
  c.compute_cycles = 2.0 * m * n * k / (static_cast<double>(q.n_tc) * q.O_tc);
  c.T_all = c.comm_cycles + c.compute_cycles;
  return c;
}

Cost cost_2d(const Params& q) {
  validate(q);
  const double rp = static_cast<double>(isqrt_exact(q.p));
  const double m = static_cast<double>(q.m);
  const double n = static_cast<double>(q.n);
  const double k = static_cast<double>(q.k);

  Cost c;
  c.stages = static_cast<int>(rp);
  // Formula (5).
  c.V_cm = (m * k + k * n) * q.se;
  // Formula (6).
  c.T_cm = q.L_sm + (m * k + n * k) * q.se / (q.theta_w * rp * q.B_sm) +
           (rp - 1.0) * (m * k + n * k) * q.se / (q.theta_r * rp * q.B_sm);
  // Per-stage compute: each warp multiplies (m/sqrt(p) x k/sqrt(p)) by
  // (k/sqrt(p) x n/sqrt(p)) — the printed middle form of (7) has a typo;
  // this is the expression consistent with (8) and the worked example.
  c.T_cp = 2.0 * m * n * k / (rp * rp * rp * q.O_tc);
  // Formula (8), expanded total.
  c.comm_cycles = q.L_sm * rp + (m * k + n * k) * q.se / (q.theta_w * q.B_sm) +
                  (rp - 1.0) * (m * k + n * k) * q.se / (q.theta_r * q.B_sm);
  c.compute_cycles = 2.0 * m * n * k / (static_cast<double>(q.n_tc) * q.O_tc);
  c.T_all = c.comm_cycles + c.compute_cycles;
  return c;
}

Cost cost_3d(const Params& q) {
  validate(q);
  const double cp = static_cast<double>(icbrt_exact(q.p));
  const double m = static_cast<double>(q.m);
  const double n = static_cast<double>(q.n);
  const double k = static_cast<double>(q.k);

  Cost c;
  c.stages = static_cast<int>(cp);
  // Formula (9).
  c.V_cm = (m * k + k * n) * q.se;
  // Formula (10).
  c.T_cm = q.L_sm + (m * k + n * k) * q.se / (q.theta_w * cp * q.B_sm) +
           (cp - 1.0) * (m * k + n * k) * q.se / (q.theta_r * cp * q.B_sm);
  // Formula (11).
  c.T_cp = 2.0 * m * n * k / (static_cast<double>(q.p) * q.O_tc);
  // Formula (12), expanded total (matches the worked example: 68 cycles).
  c.comm_cycles = q.L_sm * cp + (m * k + n * k) * q.se / (q.theta_w * q.B_sm) +
                  (cp - 1.0) * (m * k + n * k) * q.se / (q.theta_r * q.B_sm);
  c.compute_cycles = 2.0 * m * n * k / (static_cast<double>(q.n_tc) * q.O_tc);
  c.T_all = c.comm_cycles + c.compute_cycles;
  return c;
}

}  // namespace kami::model
