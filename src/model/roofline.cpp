#include "model/roofline.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace kami::model {

double gemm_arithmetic_intensity(std::size_t m, std::size_t n, std::size_t k,
                                 Precision prec) {
  KAMI_REQUIRE(m > 0 && n > 0 && k > 0);
  const double md = static_cast<double>(m), nd = static_cast<double>(n),
               kd = static_cast<double>(k);
  const double bytes = (md * kd + kd * nd + md * nd) *
                       static_cast<double>(element_bytes(prec));
  return 2.0 * md * nd * kd / bytes;
}

double device_gmem_bytes_per_second(const sim::DeviceSpec& dev) {
  return dev.gmem_bytes_per_cycle_per_sm * static_cast<double>(dev.num_sms) *
         dev.boost_clock_ghz * 1e9;
}

double roofline_tflops(const sim::DeviceSpec& dev, Precision prec,
                       double arithmetic_intensity) {
  KAMI_REQUIRE(arithmetic_intensity > 0.0);
  const double mem_bound = arithmetic_intensity * device_gmem_bytes_per_second(dev) / 1e12;
  return std::min(dev.peak_tflops(prec), mem_bound);
}

}  // namespace kami::model
