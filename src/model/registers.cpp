#include "model/registers.hpp"

#include <cmath>

#include "util/require.hpp"

namespace kami::model {

std::size_t accumulator_bytes(Precision p) noexcept {
  return p == Precision::FP64 ? 8u : 4u;
}

RegisterUsage register_usage(Algo algo, Precision prec, std::size_t m, std::size_t n,
                             std::size_t k, int p) {
  KAMI_REQUIRE(p >= 1);
  const double se = static_cast<double>(element_bytes(prec));
  const double sa = static_cast<double>(accumulator_bytes(prec));
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double pd = static_cast<double>(p);

  RegisterUsage u;
  switch (algo) {
    case Algo::OneD: {
      // A_i: (m/p x k); B: ceil(stripes/p) resident 16-wide stripes per
      // warp (the broadcast granularity, §4.7); C_i: (m/p x n);
      // BRecv: one stripe.
      const double sw = static_cast<double>(k < 16 ? k : 16);
      const double stripes = kd / sw;
      const double q = std::ceil(stripes / pd);
      u.bytes_a = md / pd * kd * se;
      u.bytes_b = q * sw * nd * se;
      u.bytes_c = md / pd * nd * sa;
      u.bytes_recv = sw * nd * se;
      break;
    }
    case Algo::TwoD: {
      const double rp = std::sqrt(pd);
      KAMI_REQUIRE(std::lround(rp) * std::lround(rp) == p,
                   "2D algorithm requires a perfect-square warp count");
      // A_i: (m/rp x k/rp); B_i: (k/rp x n/rp); C_i: (m/rp x n/rp);
      // Recv: one A tile + one B tile.
      u.bytes_a = md / rp * kd / rp * se;
      u.bytes_b = kd / rp * nd / rp * se;
      u.bytes_c = md / rp * nd / rp * sa;
      u.bytes_recv = u.bytes_a + u.bytes_b;
      break;
    }
    case Algo::ThreeD: {
      const double cp = std::cbrt(pd);
      const long c = std::lround(cp);
      KAMI_REQUIRE(c * c * c == p, "3D algorithm requires a perfect-cube warp count");
      u.bytes_a = md / cp * kd / cp * se;
      u.bytes_b = kd / cp * nd / cp * se;
      u.bytes_c = md / cp * nd / cp * sa;
      u.bytes_recv = u.bytes_a + u.bytes_b;
      // Inter-layer reduction scratch: one (m/c x <=16) accumulator chunk.
      const double chunk = nd / cp < 16.0 ? nd / cp : 16.0;
      u.bytes_recv += md / cp * chunk * sa;
      break;
    }
  }
  return u;
}

}  // namespace kami::model
