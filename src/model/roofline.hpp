// Roofline model (Fig 3): attainable TFLOPS as a function of arithmetic
// intensity against the device's peak compute and memory-bandwidth ceilings.
#pragma once

#include <cstddef>

#include "sim/device.hpp"
#include "types/float_formats.hpp"

namespace kami::model {

/// Arithmetic intensity of an m x n x k GEMM reading A, B and writing C
/// once from global memory: 2mnk / ((mk + kn + mn) * s_e) flops/byte.
double gemm_arithmetic_intensity(std::size_t m, std::size_t n, std::size_t k,
                                 Precision prec);

/// Device global-memory bandwidth in bytes/s (aggregated over SMs).
double device_gmem_bytes_per_second(const sim::DeviceSpec& dev);

/// min(peak, AI * BW): the classic roofline ceiling in TFLOPS.
double roofline_tflops(const sim::DeviceSpec& dev, Precision prec,
                       double arithmetic_intensity);

}  // namespace kami::model
