#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/require.hpp"

namespace kami::model {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

double Predictor::analytic_cycles(const sim::DeviceSpec& dev, Algo algo,
                                  Precision prec, std::size_t m, std::size_t n,
                                  std::size_t k, int p, const PredictOptions& opt) {
  Params q = Params::from_device(dev, prec, m, n, k, p);
  q.theta_r = opt.theta_r;
  q.theta_w = opt.theta_w;
  Cost c;
  switch (algo) {
    case Algo::OneD: c = cost_1d(q); break;
    case Algo::TwoD: c = cost_2d(q); break;
    case Algo::ThreeD: c = cost_3d(q); break;
  }
  // The closed forms have no global-memory term; an IO-charged run's extra
  // cycles land entirely in the bucket's fitted residual.
  return c.T_all;
}

void Predictor::observe(const Observation& obs) {
  KAMI_REQUIRE(obs.simulated_cycles > 0.0,
               "observation carries no timing signal (simulated_cycles <= 0)");
  const sim::DeviceSpec& dev = sim::device_by_name(obs.device);
  const double analytic = analytic_cycles(dev, obs.algo, obs.precision, obs.m, obs.n,
                                          obs.k, obs.p, obs.options);
  KAMI_REQUIRE(analytic > 0.0, "analytic cost must be positive");
  const double log_ratio = std::log(obs.simulated_cycles / analytic);

  const BucketKey key{obs.device, obs.algo, obs.precision, obs.p,
                      obs.options.charge_global_io};
  const std::scoped_lock lock(mu_);
  Bucket& b = buckets_[key];
  if (b.count == 0) {
    b.log_min = log_ratio;
    b.log_max = log_ratio;
  } else {
    b.log_min = std::min(b.log_min, log_ratio);
    b.log_max = std::max(b.log_max, log_ratio);
  }
  b.log_sum += log_ratio;
  ++b.count;
}

void Predictor::bucket_fit_locked(const Bucket& b, double* scale, double* band,
                                  bool* calibrated, bool* confident) const {
  if (b.count == 0) {
    *scale = 1.0;
    *band = 0.0;
    *calibrated = false;
    *confident = false;
    return;
  }
  const double mean_log = b.log_sum / static_cast<double>(b.count);
  *scale = std::exp(mean_log);
  // Worst observed multiplicative deviation from the fitted scale, padded so
  // the band also covers shapes between the calibration points.
  const double up = std::exp(b.log_max - mean_log) - 1.0;
  const double down = 1.0 - std::exp(b.log_min - mean_log);
  *band = std::max(cfg_.band_floor, cfg_.band_pad * std::max(up, down));
  *calibrated = b.count >= cfg_.min_samples;
  *confident = *calibrated && *band <= cfg_.trust_rel_error;
}

Prediction Predictor::predict(const sim::DeviceSpec& dev, Algo algo, Precision prec,
                              std::size_t m, std::size_t n, std::size_t k, int p,
                              const PredictOptions& opt) const {
  Prediction out;
  out.analytic_cycles = analytic_cycles(dev, algo, prec, m, n, k, p, opt);

  const BucketKey key{dev.name, algo, prec, p, opt.charge_global_io};
  {
    const std::scoped_lock lock(mu_);
    const auto it = buckets_.find(key);
    if (it != buckets_.end()) {
      bucket_fit_locked(it->second, &out.scale, &out.rel_band, &out.calibrated,
                        &out.confident);
      out.samples = it->second.count;
    }
  }
  // Domain gate: the closed forms assume perfect MMA tiling, and the
  // simulator charges ragged shapes for remainder slices the formulas never
  // see (observed up to ~20x beyond the fitted residual). A shape that does
  // not divide the precision's MMA tile is outside the calibrated envelope,
  // so the fit must not claim it.
  const sim::MmaShape tile = dev.mma_shape(prec);
  if (m % static_cast<std::size_t>(tile.m) != 0 ||
      n % static_cast<std::size_t>(tile.n) != 0 ||
      k % static_cast<std::size_t>(tile.k) != 0) {
    out.calibrated = false;
    out.confident = false;
  }
  // An uncalibrated bucket predicts the raw formula (scale 1): still the
  // right relative ranking within an algorithm, just not trustworthy in
  // absolute terms — which is exactly what `confident == false` says.
  // `scale` reports the correction actually applied, so it stays 1 too.
  if (!out.calibrated) out.scale = 1.0;
  out.cycles = out.analytic_cycles * out.scale;
  return out;
}

void Predictor::require_within_band(const Prediction& pred, double actual_cycles,
                                    const PredictorConfig& cfg,
                                    const std::string& context) {
  KAMI_REQUIRE(actual_cycles > 0.0, "actual latency must be positive");
  const double tolerance = pred.calibrated ? pred.rel_band : cfg.trust_rel_error;
  const double rel_error = std::abs(actual_cycles - pred.cycles) / actual_cycles;
  if (rel_error > tolerance)
    throw ModelDivergence(context + ": formula-vs-simulator divergence " +
                          fmt(rel_error * 100.0) + "% exceeds the calibrated " +
                          fmt(tolerance * 100.0) + "% tolerance (predicted " +
                          fmt(pred.cycles) + " cycles, simulated " +
                          fmt(actual_cycles) + ", scale " + fmt(pred.scale) + " over " +
                          std::to_string(pred.samples) + " samples)");
}

std::vector<Predictor::BucketStats> Predictor::bucket_stats() const {
  const std::scoped_lock lock(mu_);
  std::vector<BucketStats> out;
  out.reserve(buckets_.size());
  for (const auto& [key, b] : buckets_) {
    BucketStats s;
    s.device = key.device;
    s.algo = key.algo;
    s.precision = key.precision;
    s.p = key.p;
    s.charge_global_io = key.charge_global_io;
    s.samples = b.count;
    bool calibrated = false;
    bucket_fit_locked(b, &s.scale, &s.rel_band, &calibrated, &s.confident);
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t Predictor::bucket_count() const {
  const std::scoped_lock lock(mu_);
  return buckets_.size();
}

std::size_t Predictor::observation_count() const {
  const std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, b] : buckets_) total += b.count;
  return total;
}

void Predictor::reset() {
  const std::scoped_lock lock(mu_);
  buckets_.clear();
}

Predictor& Predictor::global() {
  static Predictor predictor;
  return predictor;
}

}  // namespace kami::model
