// The paper's Section 4 analytic cost model, in GPU clock cycles.
//
// Implements formulas (1)-(12): communication volume V_cm, per-stage
// communication cost T_cm, per-stage computation cost T_cp and the total
// T_all for the 1D, 2D and 3D algorithms. We use the *expanded* totals
// ((4), (8), (12)) as authoritative: they are self-consistent and match all
// three worked examples in the paper, whereas the compact per-stage forms
// contain two typos (see DESIGN.md, "Known internal inconsistencies").
#pragma once

#include <cstddef>

#include "sim/device.hpp"
#include "types/float_formats.hpp"

namespace kami::model {

/// Inputs of the cost model (Table 2's symbols).
struct Params {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  int p = 1;               ///< number of warps
  double se = 0.0;         ///< element size in bytes
  double L_sm = 0.0;       ///< shared-memory latency (cycles)
  double B_sm = 0.0;       ///< shared-memory bandwidth (bytes/cycle)
  double theta_r = 1.0;    ///< read bank-conflict factor, (0,1]
  double theta_w = 1.0;    ///< write bank-conflict factor, (0,1]
  double O_tc = 0.0;       ///< tensor-core ops per cycle
  int n_tc = 1;            ///< tensor cores per SM

  /// Populate hardware constants from a device spec for a given precision.
  static Params from_device(const sim::DeviceSpec& dev, Precision prec, std::size_t m,
                            std::size_t n, std::size_t k, int p);
};

struct Cost {
  double V_cm = 0.0;   ///< total communication volume, bytes
  double T_cm = 0.0;   ///< per-stage communication cycles
  double T_cp = 0.0;   ///< per-stage per-warp computation cycles
  double T_all = 0.0;  ///< total cycles (expanded form)
  int stages = 0;

  /// Split of T_all used by the Fig 15 theoretical bars.
  double comm_cycles = 0.0;     ///< L_sm*stages + write + read terms
  double compute_cycles = 0.0;  ///< 2mnk / (n_tc * O_tc)
};

Cost cost_1d(const Params& q);  ///< formulas (1)-(4)
Cost cost_2d(const Params& q);  ///< formulas (5)-(8)
Cost cost_3d(const Params& q);  ///< formulas (9)-(12)

/// Convenience: 2*m*n*k.
double gemm_flops(std::size_t m, std::size_t n, std::size_t k);

}  // namespace kami::model
