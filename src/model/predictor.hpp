// Calibrated analytic latency predictor (the fast-path planner's brain).
//
// The paper's expanded closed forms ((4), (8), (12) — cost_model.hpp) predict
// block latency from (device, algo, precision, shape, warps, bank-conflict
// factors) at ~zero cost. The cycle simulator reproduces those formulas plus
// second-order effects the closed forms ignore (sync latency, per-transfer
// instruction overhead, register-spill traffic, global-IO charging), so the
// simulated latency is consistently a modest, *systematic* multiple of the
// formula value. Predictor exploits that: it fits one multiplicative residual
// correction per (device, algo, precision, warp count, global-IO) bucket
// against simulated profiles (harvested from the ProfileCache or fed
// directly), and carries a
// dispersion-based confidence band that decides when the corrected formula is
// trustworthy and when a caller must fall back to a TimingOnly simulation.
//
// The fit is deliberately order-independent: a bucket keeps the count, the
// sum and the min/max of log(simulated / analytic), so the scale (geometric
// mean ratio) and the band (worst observed deviation from that scale, padded)
// are identical no matter what order observations arrive in. That keeps every
// consumer deterministic — the autotuner feeds outcomes in candidate order,
// but even out-of-order feeding (a warm serving fleet) converges to the same
// state.
//
// Thread safety: all methods lock an internal mutex; predict() is copy-out.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/cost_model.hpp"
#include "model/registers.hpp"
#include "sim/device.hpp"
#include "types/float_formats.hpp"

namespace kami::model {

/// Timing knobs that reach the analytic formulas (the subset of the planner's
/// options the closed forms can see). Defaults match GemmOptions defaults.
struct PredictOptions {
  bool charge_global_io = false;  ///< splits the calibration bucket: the
                                  ///< formula has no global-memory term, so
                                  ///< IO-charged profiles carry a different
                                  ///< systematic residual
  double theta_r = 1.0;
  double theta_w = 1.0;
};

/// One simulated data point the predictor calibrates against.
struct Observation {
  std::string device;
  Algo algo = Algo::OneD;
  Precision precision = Precision::FP16;
  std::size_t m = 0, n = 0, k = 0;
  int p = 1;  ///< planner-resolved warp count (never 0)
  PredictOptions options;
  double simulated_cycles = 0.0;  ///< KernelProfile::latency
};

/// The answer to "how many cycles will this block take?".
struct Prediction {
  double cycles = 0.0;           ///< corrected estimate: analytic * scale
  double analytic_cycles = 0.0;  ///< raw expanded-form T_all (uncorrected)
  double scale = 1.0;            ///< residual correction applied
  double rel_band = 0.0;         ///< calibrated relative-error bound (padded)
  std::size_t samples = 0;       ///< observations in this bucket
  bool calibrated = false;       ///< bucket has >= PredictorConfig::min_samples
  bool confident = false;        ///< calibrated && rel_band <= trust_rel_error
};

struct PredictorConfig {
  /// Observations a bucket needs before its scale/band are meaningful.
  std::size_t min_samples = 3;
  /// A bucket whose padded band is wider than this is not trusted: callers
  /// should fall back to a TimingOnly simulation.
  double trust_rel_error = 0.35;
  /// Safety multiplier over the worst observed deviation from the fitted
  /// scale — the band must hold for shapes *between* the calibration points.
  double band_pad = 2.0;
  /// The band never claims to be tighter than this (guards against a
  /// calibration set whose residuals happen to be identical).
  double band_floor = 0.02;
};

/// Typed failure for formula-vs-simulator disagreement beyond the calibrated
/// tolerance (the verify subsystem's model-divergence check raises this).
class ModelDivergence : public std::runtime_error {
 public:
  explicit ModelDivergence(const std::string& what) : std::runtime_error(what) {}
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig cfg = {}) : cfg_(cfg) {}

  const PredictorConfig& config() const noexcept { return cfg_; }

  /// Raw expanded-form T_all for one block — formula (4), (8) or (12) — with
  /// no residual correction. Throws PreconditionError when p does not fit the
  /// algorithm (non-square p for 2D, non-cube for 3D) or the device lacks the
  /// precision's tensor path.
  static double analytic_cycles(const sim::DeviceSpec& dev, Algo algo, Precision prec,
                                std::size_t m, std::size_t n, std::size_t k, int p,
                                const PredictOptions& opt = {});

  /// Fold one simulated profile into its bucket. Observations with
  /// non-positive simulated latency are rejected (PreconditionError): a
  /// latency-free profile (e.g. NumericsOnly) carries no timing signal.
  void observe(const Observation& obs);

  /// Corrected prediction plus the bucket's confidence state. Never
  /// simulates; never returns NaN. Throws exactly when analytic_cycles does.
  /// Shapes that do not divide the precision's MMA tile are outside the
  /// model's domain (the closed forms assume perfect tiling) and come back
  /// uncalibrated regardless of the bucket's state.
  Prediction predict(const sim::DeviceSpec& dev, Algo algo, Precision prec,
                     std::size_t m, std::size_t n, std::size_t k, int p,
                     const PredictOptions& opt = {}) const;

  /// Throw ModelDivergence when |actual - prediction| exceeds the
  /// calibrated tolerance: rel_band for a calibrated bucket, else
  /// trust_rel_error. `context` prefixes the exception message.
  static void require_within_band(const Prediction& pred, double actual_cycles,
                                  const PredictorConfig& cfg,
                                  const std::string& context);

  /// Calibration state of one bucket, for reports and the bench tables.
  struct BucketStats {
    std::string device;
    Algo algo = Algo::OneD;
    Precision precision = Precision::FP16;
    int p = 1;
    bool charge_global_io = false;
    std::size_t samples = 0;
    double scale = 1.0;
    double rel_band = 0.0;
    bool confident = false;
  };
  /// Key-ordered snapshot of every bucket.
  std::vector<BucketStats> bucket_stats() const;

  std::size_t bucket_count() const;
  std::size_t observation_count() const;
  void reset();

  /// The process-wide predictor the library-level consumers (autotune, the
  /// serving layer) share.
  static Predictor& global();

 private:
  /// Order-independent residual statistics over log(simulated / analytic).
  struct Bucket {
    std::size_t count = 0;
    double log_sum = 0.0;
    double log_min = 0.0;
    double log_max = 0.0;
  };
  struct BucketKey {
    std::string device;
    Algo algo = Algo::OneD;
    Precision precision = Precision::FP16;
    // The warp count splits the bucket: the second-order overheads the
    // formula ignores (sync, per-transfer instruction cost) scale with the
    // warp grid, so p=2 and p=16 carry visibly different residuals.
    int p = 1;
    bool charge_global_io = false;
    friend auto operator<=>(const BucketKey&, const BucketKey&) = default;
  };

  /// scale / band / confidence for one bucket (0-sample buckets allowed).
  void bucket_fit_locked(const Bucket& b, double* scale, double* band,
                         bool* calibrated, bool* confident) const;

  PredictorConfig cfg_;
  mutable std::mutex mu_;
  std::map<BucketKey, Bucket> buckets_;
};

}  // namespace kami::model
