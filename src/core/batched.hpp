// Batched GEMM driver (§5.4).
//
// KAMI's batched interface mirrors cuBLAS/MAGMA batched GEMM: a vector of
// independent small products, one thread block per matrix, each block
// running the KAMI block-level kernel with its global loads/stores charged
// (in the batched setting every matrix really is fetched from global
// memory, which is why §5.4's absolute numbers sit below the block-level
// ones). Matrix shapes may vary within a batch.
//
// Two entry points:
//  * kami_batched_gemm    — computes every product (tests, applications);
//  * kami_batched_perf    — cost extrapolation for large batches: one block
//    per distinct shape is simulated and the paper's launch setup added.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/kami.hpp"
#include "core/numeric_path.hpp"
#include "core/profile_cache.hpp"
#include "exec/engine.hpp"

namespace kami::core {

inline constexpr double kKamiBatchSetupSeconds = 1e-6;

template <Scalar T>
struct BatchedResult {
  std::vector<Matrix<T>> C;
  double seconds = 0.0;
  double tflops = 0.0;
};

/// Extrapolated throughput for `batch` identical (m, n, k) blocks.
struct BatchedPerf {
  double seconds = 0.0;
  double tflops = 0.0;
  sim::KernelProfile per_block;
};

template <Scalar T>
BatchedPerf kami_batched_perf(const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                              std::size_t k, std::size_t batch, Algo algo = Algo::OneD,
                              GemmOptions opt = {}) {
  KAMI_REQUIRE(batch >= 1, "perf extrapolation needs at least one block, got batch=0");
  opt.charge_global_io = true;
  // Only the cycle profile is consumed, so one TimingOnly simulation —
  // served by the profile cache across sweep points — replaces the old
  // full run on random operands.
  const CachedProfile prof =
      timing_profile<T>(ProfileCache::global(), algo, dev, m, n, k, opt);

  BatchedPerf perf;
  perf.per_block = prof.profile;
  const double interval = sim::steady_interval_cycles(dev, prof.profile);
  const double waves =
      std::ceil(static_cast<double>(batch) / static_cast<double>(dev.num_sms));
  perf.seconds = waves * interval / (dev.boost_clock_ghz * 1e9) + kKamiBatchSetupSeconds;
  perf.tflops =
      prof.profile.useful_flops * static_cast<double>(batch) / perf.seconds / 1e12;
  return perf;
}

/// Full-value batched execution; shapes may vary per entry.
template <Scalar T>
BatchedResult<T> kami_batched_gemm(const sim::DeviceSpec& dev,
                                   std::span<const Matrix<T>> As,
                                   std::span<const Matrix<T>> Bs,
                                   Algo algo = Algo::OneD, GemmOptions opt = {}) {
  KAMI_REQUIRE(As.size() == Bs.size(),
               "batch lists must have equal length, got " + std::to_string(As.size()) +
                   " A matrices and " + std::to_string(Bs.size()) + " B matrices");
  // An empty batch is a well-defined no-op (no products, only launch setup),
  // identically in every execution mode — not an error.
  if (As.empty()) return BatchedResult<T>{{}, kKamiBatchSetupSeconds, 0.0};
  opt.charge_global_io = true;

  // Entries are independent: fan out across the execution engine
  // (GemmOptions::threads / KAMI_THREADS; 1 == the historical serial loop).
  // Results land in pre-sized slots indexed by entry, so the output is
  // bit-identical for every worker count.
  const exec::ExecutionEngine engine(opt.threads);

  BatchedResult<T> out;
  // Blocks are independent; identical shapes share one simulated profile.
  std::map<std::array<std::size_t, 3>, sim::KernelProfile> shape_profiles;
  double total_flops = 0.0;

  if (opt.mode == sim::ExecMode::Full && !opt.record_trace && !opt.record_regions) {
    // Fast path: one TimingOnly simulation per distinct shape (served by
    // the profile cache across calls), then every entry's values run the
    // NumericsOnly path. Results and profiles are bit-identical to the
    // per-entry Full loop (tested).
    //
    // Profile phase: distinct shapes in first-appearance order, so an
    // infeasible shape surfaces the same exception the per-entry loop
    // would have hit first.
    std::vector<std::array<std::size_t, 3>> distinct;
    for (std::size_t i = 0; i < As.size(); ++i) {
      const std::array<std::size_t, 3> key{As[i].rows(), Bs[i].cols(), As[i].cols()};
      if (shape_profiles.emplace(key, sim::KernelProfile{}).second)
        distinct.push_back(key);
    }
    const auto profiles = engine.parallel_map<sim::KernelProfile>(
        distinct.size(), [&](std::size_t j) {
          const auto& key = distinct[j];
          return timing_profile<T>(ProfileCache::global(), algo, dev, key[0], key[1],
                                   key[2], opt)
              .profile;
        });
    // The plan is also per-shape: cache the 3D layer split (1D/2D reduce in
    // one chain, layers = 1) so the numeric phase below never re-enters the
    // planner — per-entry planning was ~40% of small-shape batch time.
    std::map<std::array<std::size_t, 3>, std::size_t> shape_layers;
    for (std::size_t j = 0; j < distinct.size(); ++j) {
      shape_profiles[distinct[j]] = profiles[j];
      std::size_t layers = 1;
      if (algo == Algo::ThreeD) {
        const auto& key = distinct[j];
        layers = static_cast<std::size_t>(
            plan_gemm(algo, dev, num_traits<T>::precision, key[0], key[1], key[2], opt)
                .grid);
      }
      shape_layers[distinct[j]] = layers;
    }

    // Numerics phase: every entry's values through the NumericsOnly kernel,
    // straight into the output slot (no GemmResult plumbing, no planner).
    out.C = engine.parallel_map<Matrix<T>>(As.size(), [&](std::size_t i) {
      KAMI_REQUIRE(Bs[i].rows() == As[i].cols(), "inner dimensions must agree");
      const std::size_t m = As[i].rows(), n = Bs[i].cols(), k = As[i].cols();
      Matrix<T> C(m, n);
      numeric_gemm_into(As[i].data(), Bs[i].data(), C.data(), m, n, k,
                        shape_layers.at({m, n, k}));
      return C;
    });
    for (std::size_t i = 0; i < As.size(); ++i)
      total_flops +=
          shape_profiles[{As[i].rows(), Bs[i].cols(), As[i].cols()}].useful_flops;
  } else {
    auto results = engine.parallel_map<GemmResult<T>>(As.size(), [&](std::size_t i) {
      return gemm(algo, dev, As[i], Bs[i], opt);
    });
    out.C.reserve(As.size());
    for (std::size_t i = 0; i < As.size(); ++i) {
      shape_profiles[{As[i].rows(), Bs[i].cols(), As[i].cols()}] = results[i].profile;
      total_flops += results[i].profile.useful_flops;
      out.C.push_back(std::move(results[i].C));
    }
  }

  // Completion time: blocks spread round-robin over SMs (the same wave model
  // as kami_batched_perf — for `batch` identical shapes the most-loaded SM
  // carries ceil(batch / num_sms) blocks, i.e. one interval per wave). The
  // batch can never finish before the longest single block's steady interval,
  // so small batches no longer divide one block's time across idle SMs.
  std::vector<double> sm_load(static_cast<std::size_t>(dev.num_sms), 0.0);
  double completion = 0.0;
  for (std::size_t i = 0; i < As.size(); ++i) {
    const auto& prof = shape_profiles[{As[i].rows(), Bs[i].cols(), As[i].cols()}];
    const double interval = sim::steady_interval_cycles(dev, prof);
    double& load = sm_load[i % sm_load.size()];
    load += interval;
    completion = std::max({completion, interval, load});
  }
  out.seconds = std::max(completion, sim::Cycles{1.0}) / (dev.boost_clock_ghz * 1e9) +
                kKamiBatchSetupSeconds;
  out.tflops = total_flops / out.seconds / 1e12;
  return out;
}

/// cuBLAS-style strided-batched interface: operands stacked row-wise in two
/// tall matrices (batch*m x k and batch*k x n); returns the stacked
/// batch*m x n product. Interface parity with cublasGemmStridedBatched
/// (§5.4: "KAMI's batched interface is consistent with cuBLAS and MAGMA").
template <Scalar T>
Matrix<T> kami_gemm_strided_batched(const sim::DeviceSpec& dev, const Matrix<T>& Astack,
                                    const Matrix<T>& Bstack, std::size_t batch,
                                    Algo algo = Algo::OneD, GemmOptions opt = {}) {
  KAMI_REQUIRE(batch >= 1, "strided batch must be non-empty, got batch=0 (stacked "
                           "operands cannot define a block shape)");
  KAMI_REQUIRE(Astack.rows() % batch == 0 && Bstack.rows() % batch == 0,
               "stacked operand heights must be multiples of the batch size: A is " +
                   std::to_string(Astack.rows()) + " rows, B is " +
                   std::to_string(Bstack.rows()) + " rows, batch=" +
                   std::to_string(batch));
  const std::size_t m = Astack.rows() / batch;
  const std::size_t k = Astack.cols();
  const std::size_t n = Bstack.cols();
  KAMI_REQUIRE(Bstack.rows() / batch == k,
               "inner dimensions must agree: A blocks are " + std::to_string(m) + "x" +
                   std::to_string(k) + " but B blocks are " +
                   std::to_string(Bstack.rows() / batch) + "x" + std::to_string(n));

  if (opt.mode == sim::ExecMode::Full && !opt.record_trace && !opt.record_regions) {
    // Zero-copy fast path: every block shares one (m, n, k), so one cached
    // TimingOnly simulation establishes feasibility (surfacing the same
    // planner exception the staged path would), and the numeric kernel runs
    // directly on the stacked storage — row-major contiguous blocks mean no
    // stack/unstack copies and no per-block Matrix allocations at all.
    GemmOptions probe = opt;
    probe.charge_global_io = true;
    timing_profile<T>(ProfileCache::global(), algo, dev, m, n, k, probe);
    std::size_t layers = 1;
    if (algo == Algo::ThreeD)
      layers = static_cast<std::size_t>(
          plan_gemm(algo, dev, num_traits<T>::precision, m, n, k, probe).grid);

    Matrix<T> Cstack(batch * m, n);
    const exec::ExecutionEngine engine(opt.threads);
    engine.parallel_for(batch, [&](std::size_t b) {
      numeric_gemm_into(Astack.data() + b * m * k, Bstack.data() + b * k * n,
                        Cstack.data() + b * m * n, m, n, k, layers);
    });
    return Cstack;
  }

  // Matrices are row-major and contiguous, so each stacked block is one
  // contiguous range: stack/unstack are single bulk copies per matrix.
  std::vector<Matrix<T>> As, Bs;
  As.reserve(batch);
  Bs.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    Matrix<T> a(m, k), bb(k, n);
    std::copy_n(Astack.data() + b * m * k, m * k, a.data());
    std::copy_n(Bstack.data() + b * k * n, k * n, bb.data());
    As.push_back(std::move(a));
    Bs.push_back(std::move(bb));
  }
  const auto result = kami_batched_gemm<T>(dev, As, Bs, algo, opt);

  Matrix<T> Cstack(batch * m, n);
  for (std::size_t b = 0; b < batch; ++b)
    std::copy_n(result.C[b].data(), m * n, Cstack.data() + b * m * n);
  return Cstack;
}

}  // namespace kami::core
