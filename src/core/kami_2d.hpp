// KAMI-2D (Algorithm 2).
//
// p warps form a sqrt(p) x sqrt(p) grid; warp (r, c) holds A's block (r, c)
// of size (m/sqrt(p) x k/sqrt(p)) and B's block (r, c) of size
// (k/sqrt(p) x n/sqrt(p)). The multiplication runs in sqrt(p) SUMMA-style
// stages: at stage z the z-th grid *column* broadcasts its A blocks along
// each row and the z-th grid *row* broadcasts its B blocks along each
// column, all through shared memory; every warp then multiplies its
// received pair and accumulates C(r, c).
#pragma once

#include <vector>

#include "core/gemm.hpp"
#include "core/numeric_path.hpp"
#include "core/planner.hpp"
#include "core/sliced_operand.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::core {

template <Scalar T>
GemmResult<T> kami_2d_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                           const Matrix<T>& B, const GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");

  const Plan plan = plan_gemm(Algo::TwoD, dev, num_traits<T>::precision, m, n, k, opt);

  // NumericsOnly: SUMMA stages cover k in ascending order, so each element
  // is one sequential-k chain — same as the plain numeric path.
  if (opt.mode == sim::ExecMode::NumericsOnly)
    return {numeric_gemm(A, B), {}, plan.p, plan.smem_ratio, nullptr, nullptr};

  const auto p = static_cast<std::size_t>(plan.p);
  const auto q = static_cast<std::size_t>(plan.grid);
  const std::size_t mb = m / q, nb = n / q, kb = k / q;
  const std::size_t slices = kb / plan.slice_w;

  sim::ThreadBlock blk(dev, plan.p, opt.mode);
  blk.set_deadline(opt.deadline_cycles);
  if (opt.record_trace) blk.enable_trace();

  std::shared_ptr<obs::RegionProfiler> regions;
  if (opt.record_regions)
    regions = std::make_shared<obs::RegionProfiler>([&blk] { return blk.cycles(); });
  obs::RegionProfiler* rp = regions.get();

  const auto row_of = [&](std::size_t id) { return id / q; };
  const auto col_of = [&](std::size_t id) { return id % q; };

  std::vector<SlicedOperand<T>> Aop, Bop;
  std::vector<sim::Fragment<Acc>> Ci;
  std::vector<sim::Fragment<T>> ARecv, BRecv;
  Aop.reserve(p);
  Bop.reserve(p);
  Ci.reserve(p);
  ARecv.reserve(p);
  BRecv.reserve(p);

  obs::ScopedRegion r_kernel(rp, "kami_2d");
  {
    obs::ScopedRegion r_setup(rp, "setup");
    blk.phase([&](sim::Warp& w) {
      w.set_gmem_charging(opt.charge_global_io);
      const auto i = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(i), c = col_of(i);
      Aop.emplace_back(w, blk.smem(), plan.a, A, r * mb, c * kb);
      Bop.emplace_back(w, blk.smem(), plan.b, B, r * kb, c * nb);
      Ci.emplace_back(w.regs(), mb, nb);
      ARecv.emplace_back(w.regs(), plan.a.slice_rows(), plan.a.slice_cols());
      BRecv.emplace_back(w.regs(), plan.b.slice_rows(), plan.b.slice_cols());
    });
    blk.sync();
  }

  // One A buffer per grid row and one B buffer per grid column.
  std::vector<sim::SmemTile<T>> SmA, SmB;
  for (std::size_t g = 0; g < q; ++g) {
    SmA.push_back(blk.smem().alloc<T>(plan.a.slice_rows(), plan.a.slice_cols()));
    SmB.push_back(blk.smem().alloc<T>(plan.b.slice_rows(), plan.b.slice_cols()));
  }

  for (std::size_t z = 0; z < q; ++z) {
    for (std::size_t s = 0; s < slices; ++s) {
      const bool a_res = plan.a.is_resident(s);
      const bool b_res = plan.b.is_resident(s);

      // Write phase (lines 5-10): column-z warps publish A, row-z warps
      // publish B; owners also stage their own copies (Reg2Reg).
      obs::ScopedRegion r_w(rp, "broadcast_write");
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        const std::size_t r = row_of(i), c = col_of(i);
        if (c == z) {
          if (a_res) w.store_smem(SmA[r], Aop[i].resident_slice(s), opt.theta_w);
          Aop[i].fetch_slice(w, s, ARecv[i], opt.theta_r);
        }
        if (r == z) {
          if (b_res) w.store_smem(SmB[c], Bop[i].resident_slice(s), opt.theta_w);
          Bop[i].fetch_slice(w, s, BRecv[i], opt.theta_r);
        }
      });
      blk.sync();
      r_w.close();

      // Read phase (lines 12-15).
      obs::ScopedRegion r_r(rp, "broadcast_read");
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        const std::size_t r = row_of(i), c = col_of(i);
        if (c != z) {
          const std::size_t owner = r * q + z;
          if (a_res) {
            w.load_smem(ARecv[i], SmA[r], opt.theta_r);
          } else {
            w.load_smem(ARecv[i], Aop[owner].spilled_slice(s), opt.theta_r);
          }
        }
        if (r != z) {
          const std::size_t owner = z * q + c;
          if (b_res) {
            w.load_smem(BRecv[i], SmB[c], opt.theta_r);
          } else {
            w.load_smem(BRecv[i], Bop[owner].spilled_slice(s), opt.theta_r);
          }
        }
      });
      blk.sync();
      r_r.close();

      // Compute phase (line 17).
      obs::ScopedRegion r_c(rp, "compute");
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        w.mma(Ci[i], ARecv[i].view(), BRecv[i].view());
      });
      blk.sync();
    }
  }

  GemmResult<T> out{Matrix<T>(m, n), {}, plan.p, plan.smem_ratio, nullptr, nullptr};
  {
    obs::ScopedRegion r(rp, "writeback");
    blk.phase([&](sim::Warp& w) {
      const auto i = static_cast<std::size_t>(w.id());
      w.store_global_narrowed(out.C, Ci[i], row_of(i) * mb, col_of(i) * nb);
    });
    blk.sync();
  }
  r_kernel.close();

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  if (opt.record_trace) out.trace = blk.take_trace();
  if (regions) {
    regions->freeze();
    out.regions = regions;
  }
  return out;
}

}  // namespace kami::core
