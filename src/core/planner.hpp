// Launch planning: choose the warp count and spill ratio for a GEMM before
// any simulation happens, by computing the per-warp register demand of each
// candidate configuration against the device's register file.
#pragma once

#include <cstddef>

#include "core/gemm.hpp"
#include "core/sliced_operand.hpp"
#include "sim/device.hpp"

namespace kami::core {

struct Plan {
  Algo algo = Algo::OneD;
  int p = 0;                  ///< warps
  int grid = 0;               ///< sqrt(p) for 2D, cbrt(p) for 3D, p for 1D
  double smem_ratio = 0.0;
  std::size_t slice_w = 0;    ///< shared k-slice width for A and B
  SliceLayout a;              ///< per-warp A operand layout
  SliceLayout b;              ///< per-warp B operand layout
  /// 3D only: process C in column chunks of this width (0 = whole tile).
  /// The fallback for shapes whose per-warp accumulator block exceeds the
  /// register file (e.g. FP64 at order 128): A/B re-broadcast per chunk in
  /// exchange for a bounded C footprint.
  std::size_t n_chunk = 0;
  std::size_t reg_demand_bytes = 0;  ///< predicted per-warp register bytes
};

/// Per-warp register demand of a candidate plan (operands + accumulator +
/// receive/scratch slices); what the planner compares to the register file.
std::size_t register_demand_bytes(const Plan& plan, Precision prec, std::size_t m,
                                  std::size_t n, std::size_t k);

/// Resolve a launch plan. Throws sim::RegisterOverflow when no candidate
/// configuration fits, and PreconditionError for indivisible shapes.
Plan plan_gemm(Algo algo, const sim::DeviceSpec& dev, Precision prec, std::size_t m,
               std::size_t n, std::size_t k, const GemmOptions& opt);

}  // namespace kami::core
