#include "core/analytic_planner.hpp"

#include <algorithm>

#include "sim/throughput.hpp"

namespace kami::core {

const char* plan_source_name(PlanSource s) noexcept {
  switch (s) {
    case PlanSource::Cache: return "cache";
    case PlanSource::Analytic: return "analytic";
    case PlanSource::Simulated: return "simulated";
    case PlanSource::Unplanned: return "unplanned";
  }
  return "?";
}

model::PredictOptions predict_options(const GemmOptions& opt) {
  model::PredictOptions po;
  po.charge_global_io = opt.charge_global_io;
  po.theta_r = opt.theta_r;
  po.theta_w = opt.theta_w;
  return po;
}

model::Observation observation_from(const ProfileKey& key, const CachedProfile& value) {
  model::Observation o;
  o.device = key.device;
  o.algo = key.algo;
  o.precision = key.precision;
  o.m = key.m;
  o.n = key.n;
  o.k = key.k;
  o.p = key.warps;
  o.options.charge_global_io = key.charge_global_io;
  o.options.theta_r = key.theta_r;
  o.options.theta_w = key.theta_w;
  o.simulated_cycles = value.profile.latency;
  return o;
}

std::size_t calibrate_from_cache(model::Predictor& pred, const ProfileCache& cache) {
  std::size_t fed = 0;
  for (const auto& [key, value] : cache.snapshot()) {
    if (value.profile.latency <= 0.0) continue;  // no timing signal
    pred.observe(observation_from(key, value));
    ++fed;
  }
  return fed;
}

PlanEstimate estimate_plan(const ProfileCache& cache, const model::Predictor& pred,
                           Algo algo, const sim::DeviceSpec& dev, Precision prec,
                           std::size_t m, std::size_t n, std::size_t k,
                           const GemmOptions& opt) {
  auto& metrics = obs::MetricRegistry::current();
  PlanEstimate est;
  est.plan = plan_gemm(algo, dev, prec, m, n, k, opt);
  est.prediction = pred.predict(dev, algo, prec, m, n, k, est.plan.p,
                                predict_options(opt));

  const ProfileKey key = ProfileKey::make(algo, dev, prec, m, n, k, opt, est.plan);
  if (std::optional<CachedProfile> hit = cache.try_get(key)) {
    est.source = PlanSource::Cache;
    est.cycles = hit->profile.latency;
    est.profile = std::move(hit);
    metrics.counter("model.cache_hits").increment();
    return est;
  }
  // The corrected formula is the estimate either way; `source` records
  // whether the calibration says it can be trusted.
  est.cycles = est.prediction.cycles;
  if (est.prediction.confident) {
    est.source = PlanSource::Analytic;
    metrics.counter("model.predictions").increment();
  } else {
    est.source = PlanSource::Unplanned;
  }
  return est;
}

double predicted_tflops(const sim::DeviceSpec& dev, Precision prec, const Plan& plan,
                        std::size_t m, std::size_t n, std::size_t k,
                        const model::Prediction& prediction, const GemmOptions& opt,
                        std::size_t blocks) {
  model::Params q = model::Params::from_device(dev, prec, m, n, k, plan.p);
  q.theta_r = opt.theta_r;
  q.theta_w = opt.theta_w;
  model::Cost cost;
  switch (plan.algo) {
    case Algo::OneD: cost = model::cost_1d(q); break;
    case Algo::TwoD: cost = model::cost_2d(q); break;
    case Algo::ThreeD: cost = model::cost_3d(q); break;
  }

  // A synthetic profile from the closed forms: the corrected latency, the
  // compute-port and smem-port busy terms, and the plan's resource demands —
  // enough for resident_blocks_per_sm / steady_interval_cycles to treat it
  // exactly like a simulated profile. smem_bytes is left 0 (not occupancy-
  // binding for the register-resident KAMI kernels).
  sim::KernelProfile prof;
  prof.latency = std::max(prediction.cycles, 1.0);
  prof.tc_busy = cost.compute_cycles * static_cast<double>(dev.tensor_cores_per_sm);
  prof.smem_busy =
      std::max(0.0, cost.comm_cycles -
                        q.L_sm * static_cast<double>(std::max(cost.stages, 1)));
  prof.useful_flops = model::gemm_flops(m, n, k);
  prof.num_warps = plan.p;
  prof.reg_bytes_per_warp = plan.reg_demand_bytes;
  return sim::throughput_tflops(dev, prof, blocks);
}

}  // namespace kami::core
