#include "core/planner.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/register_file.hpp"
#include "util/require.hpp"

namespace kami::core {

namespace {

constexpr std::array<double, 5> kRatioPresets{0.0, 0.25, 0.5, 0.75, 0.875};

int grid_of(Algo algo, int p) {
  switch (algo) {
    case Algo::OneD: return p;
    case Algo::TwoD: {
      const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
      KAMI_REQUIRE(q * q == p, "2D algorithm requires a perfect-square warp count, got p=" +
                                   std::to_string(p));
      return q;
    }
    case Algo::ThreeD: {
      const int c = static_cast<int>(std::lround(std::cbrt(static_cast<double>(p))));
      KAMI_REQUIRE(c * c * c == p, "3D algorithm requires a perfect-cube warp count, got p=" +
                                       std::to_string(p));
      return c;
    }
  }
  return 0;
}

bool shape_divisible(Algo algo, std::size_t m, std::size_t n, std::size_t k, int p) {
  const auto g = static_cast<std::size_t>(grid_of(algo, p));
  switch (algo) {
    case Algo::OneD: return m % g == 0;  // B stripes decouple k from p
    case Algo::TwoD:
    case Algo::ThreeD: return m % g == 0 && n % g == 0 && k % g == 0;
  }
  return false;
}

/// Build the candidate plan for (algo, p, ratio); layouts only, no demand.
Plan make_candidate(Algo algo, std::size_t m, std::size_t n, std::size_t k, int p,
                    double ratio, std::size_t slice_pref) {
  Plan plan;
  plan.algo = algo;
  plan.p = p;
  plan.grid = grid_of(algo, p);
  plan.smem_ratio = ratio;
  const auto g = static_cast<std::size_t>(plan.grid);
  switch (algo) {
    case Algo::OneD: {
      // A_i: (m/p x k) column-sliced over its FULL k extent (§4.7: the
      // k-slices span the whole operand, so the spill fraction applies
      // globally and stages whose slice is spilled stream it from shared
      // memory). B is split into k/slice_w broadcast stripes assigned
      // contiguously to warps; the per-warp B layout below is the worst
      // case (ceil(stripes/p) stripes).
      plan.slice_w = pick_slice_width(k, slice_pref);
      const std::size_t stripes = k / plan.slice_w;
      const std::size_t q = (stripes + g - 1) / g;
      plan.a = SliceLayout::make(m / g, k, SliceAxis::Cols, plan.slice_w, 0, ratio);
      plan.b = SliceLayout::make(q * plan.slice_w, n, SliceAxis::Rows, plan.slice_w, 0,
                                 ratio);
      break;
    }
    case Algo::TwoD:
    case Algo::ThreeD: {
      const std::size_t chunk = k / g;
      plan.slice_w = pick_slice_width(chunk, slice_pref);
      plan.a = SliceLayout::make(m / g, chunk, SliceAxis::Cols, plan.slice_w, 0, ratio);
      plan.b = SliceLayout::make(chunk, n / g, SliceAxis::Rows, plan.slice_w, 0, ratio);
      break;
    }
  }
  return plan;
}

/// Shared-memory footprint of a candidate: every owner's spill region plus
/// the broadcast/staging tiles. Candidates whose spills exceed the device's
/// shared memory are rejected (e.g. 3D FP64 at order 128, where A + B alone
/// are 256 KiB — beyond GH200's combined on-chip capacity in this layout).
std::size_t smem_demand_bytes(const Plan& plan, Precision prec, std::size_t m,
                              std::size_t n) {
  const std::size_t se = element_bytes(prec);
  const std::size_t sa = model::accumulator_bytes(prec);
  const auto g = static_cast<std::size_t>(plan.grid);
  switch (plan.algo) {
    case Algo::OneD: {
      // Every warp spills its A portion; B owners spill theirs; one
      // broadcast tile.
      return static_cast<std::size_t>(plan.p) * plan.a.smem_bytes(se) +
             static_cast<std::size_t>(plan.p) * plan.b.smem_bytes(se) +
             plan.b.slice_elems() * se;
    }
    case Algo::TwoD: {
      return static_cast<std::size_t>(plan.p) *
                 (plan.a.smem_bytes(se) + plan.b.smem_bytes(se)) +
             g * (plan.a.slice_elems() + plan.b.slice_elems()) * se;
    }
    case Algo::ThreeD: {
      const std::size_t nc = plan.n_chunk == 0 ? n / g : plan.n_chunk;
      const std::size_t red_cols = nc < 16 ? nc : 16;
      return g * g * (plan.a.smem_bytes(se) + plan.b.smem_bytes(se)) +
             g * g * (plan.a.slice_elems() * se + plan.b.slice_rows() * nc * se) +
             g * g * (m / g) * red_cols * sa;
    }
  }
  return 0;
}

}  // namespace

std::size_t register_demand_bytes(const Plan& plan, Precision prec, std::size_t m,
                                  std::size_t n, std::size_t k) {
  (void)k;
  const std::size_t se = element_bytes(prec);
  const std::size_t sa = model::accumulator_bytes(prec);
  const auto g = static_cast<std::size_t>(plan.grid);

  std::size_t bytes = plan.a.reg_bytes(se) + plan.b.reg_bytes(se);
  switch (plan.algo) {
    case Algo::OneD:
      bytes += (m / g) * n * sa;                         // C_i accumulator
      bytes += plan.b.slice_elems() * se;                // BRecv slice
      if (plan.smem_ratio > 0.0) bytes += plan.a.slice_elems() * se;  // A fetch scratch
      break;
    case Algo::TwoD:
      bytes += (m / g) * (n / g) * sa;                   // C_i
      bytes += plan.a.slice_elems() * se;                // ARecv
      bytes += plan.b.slice_elems() * se;                // BRecv
      break;
    case Algo::ThreeD: {
      const std::size_t nc = plan.n_chunk == 0 ? n / g : plan.n_chunk;
      bytes += (m / g) * nc * sa;                        // partial C (chunked)
      bytes += plan.a.slice_elems() * se;                // ARecv
      bytes += plan.b.slice_rows() * nc * se;            // BRecv (chunk columns)
      // Reduction scratch chunk (m/c x <=16 columns at accumulator width).
      bytes += (m / g) * (nc < 16 ? nc : 16) * sa;
      break;
    }
  }
  return bytes;
}

Plan plan_gemm(Algo algo, const sim::DeviceSpec& dev, Precision prec, std::size_t m,
               std::size_t n, std::size_t k, const GemmOptions& opt) {
  KAMI_REQUIRE(m > 0 && n > 0 && k > 0,
               "matrix dimensions must be positive, got m=" + std::to_string(m) +
                   " n=" + std::to_string(n) + " k=" + std::to_string(k));
  KAMI_REQUIRE(dev.supports(prec),
               std::string(precision_name(prec)) + " not supported on " + dev.name);

  std::vector<int> warp_candidates;
  if (opt.warps > 0) {
    warp_candidates.push_back(opt.warps);
  } else {
    switch (algo) {
      case Algo::OneD: warp_candidates = {4, 8, 16, 2}; break;
      case Algo::TwoD: warp_candidates = {4, 16}; break;
      case Algo::ThreeD: warp_candidates = {8, 27}; break;
    }
  }

  std::vector<double> ratio_candidates;
  if (opt.smem_ratio >= 0.0) {
    ratio_candidates.push_back(opt.smem_ratio);
  } else {
    ratio_candidates.assign(kRatioPresets.begin(), kRatioPresets.end());
  }

  // Wide elements can make even one broadcast stripe too large for the
  // receive buffer; narrower slices trade a few extra stages for registers.
  std::vector<std::size_t> slice_prefs{opt.slice_pref};
  for (std::size_t s = opt.slice_pref / 2; s >= 4; s /= 2) slice_prefs.push_back(s);

  const std::size_t capacity = dev.reg_bytes_per_warp();
  std::string last_error =
      opt.warps > 0
          ? "warp count p=" + std::to_string(opt.warps) +
                " does not divide the problem shape (1D needs m % grid == 0; "
                "2D/3D need m, n, k % grid == 0)"
          : "no warp candidate divides the problem shape (1D needs m % grid == 0; "
            "2D/3D need m, n, k % grid == 0)";
  std::vector<std::size_t> chunk_candidates{0};
  if (algo == Algo::ThreeD) chunk_candidates.push_back(16);

  // Planner decisions are part of the observability contract: how many
  // candidate (p, ratio, slice) configurations were examined and why the
  // losers were rejected.
  auto& metrics = obs::MetricRegistry::current();
  obs::Counter& tried = metrics.counter("planner.candidates_tried");
  obs::Counter& rejected_regs = metrics.counter("planner.candidates_rejected_registers");
  obs::Counter& rejected_smem = metrics.counter("planner.candidates_rejected_smem");
  metrics.counter("planner.plans_requested").increment();

  for (int p : warp_candidates) {
    if (!shape_divisible(algo, m, n, k, p)) continue;
    for (std::size_t nchunk : chunk_candidates) {
      if (nchunk != 0 && (n / static_cast<std::size_t>(grid_of(algo, p))) % nchunk != 0)
        continue;
      for (std::size_t pref : slice_prefs) {
        for (double ratio : ratio_candidates) {
          Plan plan = make_candidate(algo, m, n, k, p, ratio, pref);
          plan.n_chunk = nchunk;
          plan.reg_demand_bytes = register_demand_bytes(plan, prec, m, n, k);
          const std::size_t smem_need = smem_demand_bytes(plan, prec, m, n);
          tried.increment();
          if (plan.reg_demand_bytes <= capacity &&
              smem_need <= dev.smem_bytes_per_block) {
            metrics.histogram("planner.reg_demand_bytes")
                .observe(static_cast<double>(plan.reg_demand_bytes));
            return plan;
          }
          if (plan.reg_demand_bytes > capacity) {
            rejected_regs.increment();
            last_error = "register demand " + std::to_string(plan.reg_demand_bytes) +
                         " B exceeds the " + std::to_string(capacity) +
                         " B register file (p=" + std::to_string(p) +
                         ", ratio=" + std::to_string(ratio) + ")";
          } else {
            rejected_smem.increment();
            last_error = "spill footprint " + std::to_string(smem_need) +
                         " B exceeds the " + std::to_string(dev.smem_bytes_per_block) +
                         " B shared memory (p=" + std::to_string(p) +
                         ", ratio=" + std::to_string(ratio) + ")";
          }
        }
      }
    }
  }
  metrics.counter("planner.infeasible").increment();
  // Name the request alongside the failed constraint so callers (and chaos
  // logs) can reproduce the rejection without a debugger.
  const char* algo_tag = algo == Algo::OneD ? "1d" : (algo == Algo::TwoD ? "2d" : "3d");
  throw sim::RegisterOverflow(
      "no feasible launch plan for algo=" + std::string(algo_tag) + " prec=" +
      precision_name(prec) + " m=" + std::to_string(m) + " n=" + std::to_string(n) +
      " k=" + std::to_string(k) + " on " + dev.name + ": " + last_error);
}

}  // namespace kami::core
