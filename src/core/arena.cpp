#include "core/arena.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace kami::core {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  KAMI_REQUIRE(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two, got " + std::to_string(align));
  // Try the active chunk, then any later retained chunk, then map a new one.
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        // Live accounting counts the aligned footprint actually consumed
        // (alignment padding included), so high-water matches real usage.
        live_bytes_ += (aligned - c.used) + bytes;
        c.used = aligned + bytes;
        total_allocated_ += bytes;
        high_water_bytes_ = std::max(high_water_bytes_, live_bytes_);
        return c.data.get() + aligned;
      }
      if (active_ + 1 < chunks_.size()) {
        ++active_;
        continue;
      }
    }
    // Grow: double the last chunk size until the (aligned) request fits.
    std::size_t want = chunks_.empty() ? kMinChunkBytes : chunks_.back().size * 2;
    want = std::max(want, bytes + align);
    Chunk c;
    c.data = std::make_unique<std::byte[]>(want);
    c.size = want;
    chunks_.push_back(std::move(c));
    active_ = chunks_.size() - 1;
    ++chunks_mapped_;
  }
}

std::size_t Arena::capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

void Arena::rewind(const Mark& m) {
  KAMI_REQUIRE(m.chunk < chunks_.size() || (m.chunk == 0 && chunks_.empty()),
               "arena mark does not belong to this arena");
  for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  if (m.chunk < chunks_.size()) chunks_[m.chunk].used = m.used;
  active_ = m.chunk;
  live_bytes_ = m.live;
  if (live_bytes_ == 0) trim();
}

void Arena::trim() {
  // Outermost scope closed: shed capacity beyond the retain cap, largest
  // (most recently mapped) chunks first, so a one-off giant shape doesn't
  // pin its peak memory on this thread forever.
  std::size_t total = capacity_bytes();
  while (!chunks_.empty() && total > retain_bytes_) {
    total -= chunks_.back().size;
    chunks_.pop_back();
  }
  active_ = 0;
}

Arena& Arena::tls() {
  thread_local Arena arena;
  return arena;
}

ArenaScope::~ArenaScope() {
  const auto scope_bytes =
      static_cast<double>(arena_.total_allocated_bytes() - allocated_before_);
  const auto high_water = static_cast<double>(arena_.high_water_bytes());
  arena_.rewind(mark_);
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("arena.bytes_allocated").add(scope_bytes);
  metrics.gauge("arena.high_water_bytes").set_max(high_water);
}

}  // namespace kami::core
