// The NumericsOnly fast path: C = A x B in the kernels' exact rounding
// model, with the cycle simulator bypassed entirely.
//
// Why this is bit-identical to the simulated kernels:
//   * Every KAMI kernel accumulates each C element as a single sequential
//     chain in accumulator precision over ascending k (1D stripes, 2D
//     stages, and each 3D layer all cover k in order), then narrows once
//     at writeback. Shared-memory and fragment transits copy bits
//     unchanged, so only the arithmetic chain matters.
//   * KAMI-3D re-associates across its `c` depth layers: layer l computes
//     the partial sum over its k-segment, and layers are reduced in order
//     ((S0 + S1) + S2)... in accumulator precision. `layers` replicates
//     exactly that association; 1D/2D use layers = 1.
//   * Both the simulated mma and this loop accumulate with the same
//     `acc += to_acc(a) * to_acc(b)` expression, so any FP contraction the
//     compiler applies is applied identically.
//
// Host cost: m*k + k*n decodes (instead of 2*m*n*k) plus a vectorizable
// ikj product — this is what makes batched repeats and best_gemm cheap.
#pragma once

#include <algorithm>
#include <vector>

#include "types/matrix.hpp"

namespace kami::core {

/// k-tile width for the accumulate loops: a tile of B rows
/// (kNumericKTile x n accumulators) stays cache-resident while every row of
/// C sweeps it, instead of streaming the whole k extent per C row. Tiling
/// only regroups the i/k loop nest — each (i, j) element still accumulates
/// over ascending k, so results are bit-identical (differential-tested).
inline constexpr std::size_t kNumericKTile = 64;

template <Scalar T>
Matrix<T> numeric_gemm(const Matrix<T>& A, const Matrix<T>& B, std::size_t layers = 1) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  KAMI_REQUIRE(layers >= 1 && k % layers == 0, "layers must evenly split k");

  // Scratch reuse: batched drivers call this once per entry, so the decode
  // and accumulator buffers are thread_local (one set per engine worker,
  // never shared) and grow to the high-water shape instead of allocating
  // three buffers per call. All of Af/Bf is overwritten below and Cacc is
  // re-zeroed by assign(), so stale contents can never leak between calls.
  thread_local std::vector<Acc> Af, Bf, Cacc, Pacc;
  Af.resize(m * k);
  Bf.resize(k * n);
  const T* a = A.data();
  const T* b = B.data();
  for (std::size_t i = 0; i < m * k; ++i) Af[i] = num_traits<T>::to_acc(a[i]);
  for (std::size_t i = 0; i < k * n; ++i) Bf[i] = num_traits<T>::to_acc(b[i]);

  Cacc.assign(m * n, Acc{});
  if (layers > 1) Pacc.resize(m * n);
  // Hoist the buffer bases out of the loops: the vectors are thread_local,
  // so .data() inside the nest would re-resolve the TLS address per access.
  const Acc* af = Af.data();
  const Acc* bf = Bf.data();
  const std::size_t kb = k / layers;
  for (std::size_t l = 0; l < layers; ++l) {
    Acc* dst = l == 0 ? Cacc.data() : Pacc.data();
    if (l > 0) std::fill(Pacc.begin(), Pacc.end(), Acc{});
    const std::size_t k0 = l * kb;
    for (std::size_t kt = k0; kt < k0 + kb; kt += kNumericKTile) {
      const std::size_t kend = std::min(kt + kNumericKTile, k0 + kb);
      for (std::size_t i = 0; i < m; ++i) {
        const Acc* arow = af + i * k;
        Acc* crow = dst + i * n;
        for (std::size_t kk = kt; kk < kend; ++kk) {
          const Acc av = arow[kk];
          const Acc* brow = bf + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
    if (l > 0)
      for (std::size_t e = 0; e < m * n; ++e) Cacc[e] += Pacc[e];
  }

  Matrix<T> C(m, n);
  T* c = C.data();
  for (std::size_t e = 0; e < m * n; ++e) c[e] = num_traits<T>::from_acc(Cacc[e]);
  return C;
}

}  // namespace kami::core
