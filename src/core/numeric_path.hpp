// The NumericsOnly fast path: C = A x B in the kernels' exact rounding
// model, with the cycle simulator bypassed entirely.
//
// Why this is bit-identical to the simulated kernels:
//   * Every KAMI kernel accumulates each C element as a single sequential
//     chain in accumulator precision over ascending k (1D stripes, 2D
//     stages, and each 3D layer all cover k in order), then narrows once
//     at writeback. Shared-memory and fragment transits copy bits
//     unchanged, so only the arithmetic chain matters.
//   * KAMI-3D re-associates across its `c` depth layers: layer l computes
//     the partial sum over its k-segment, and layers are reduced in order
//     ((S0 + S1) + S2)... in accumulator precision. `layers` replicates
//     exactly that association; 1D/2D use layers = 1.
//   * Both the simulated mma and this loop accumulate with the same
//     `acc += to_acc(a) * to_acc(b)` expression, so any FP contraction the
//     compiler applies is applied identically.
//
// Why the SIMD kernel is bit-identical to the scalar one (KAMI_NO_SIMD):
//   * The inner product is vectorized over j — C columns — and each vector
//     lane carries exactly one (i, j) accumulator through the k extent in
//     ascending order. Lanes never exchange or re-associate values, so each
//     lane performs the same single-rounded multiply-add sequence the scalar
//     loop performs, and the j-tail that doesn't fill a vector runs the same
//     chain in scalar registers. Vector width, register blocking, and tail
//     handling therefore cannot change any bit of any C element (the
//     differential harness and the KAMI_NO_SIMD CI job pin this).
//
// Host cost: m*k + k*n table-driven decodes (instead of 2*m*n*k scalar
// conversions), a vectorized ikj product, and one narrowing per C element.
// Scratch comes from the thread's Arena (core/arena.hpp): one bump
// allocation per buffer, rewound after every call, capacity capped by the
// arena's retain limit — the old thread_local vectors pinned the high-water
// shape forever on long-lived serving threads.
#pragma once

#include <algorithm>
#include <cstring>

#include "core/arena.hpp"
#include "types/decode_tables.hpp"
#include "types/matrix.hpp"

namespace kami::core {

/// k-tile width for the accumulate loops: a tile of B rows
/// (kNumericKTile x n accumulators) stays cache-resident while every row of
/// C sweeps it, instead of streaming the whole k extent per C row. Tiling
/// only regroups the i/k loop nest — each (i, j) element still accumulates
/// over ascending k, so results are bit-identical (differential-tested).
inline constexpr std::size_t kNumericKTile = 64;

namespace detail {

#if !defined(KAMI_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define KAMI_NUMERIC_SIMD 1

template <typename Acc>
struct SimdVec;
template <>
struct SimdVec<float> {
  typedef float type __attribute__((vector_size(32)));
};
template <>
struct SimdVec<double> {
  typedef double type __attribute__((vector_size(32)));
};

template <typename Acc>
inline constexpr std::size_t kSimdWidth =
    sizeof(typename SimdVec<Acc>::type) / sizeof(Acc);

/// Broadcast by lane assignment (not `v + x`, which would quietly turn -0.0
/// into +0.0 and flip downstream product signs).
template <typename Acc>
inline typename SimdVec<Acc>::type simd_splat(Acc x) noexcept {
  typename SimdVec<Acc>::type v{};
  for (std::size_t l = 0; l < kSimdWidth<Acc>; ++l) v[l] = x;
  return v;
}
#endif

/// crow[j] += sum_{kk in [kt, kend)} arow[kk] * bf[kk*n + j], accumulated in
/// ascending kk per element. The SIMD form register-blocks two vectors of C
/// columns across the whole k-tile (C is loaded/stored once per tile instead
/// of once per kk); every lane still runs the scalar chain.
template <typename Acc>
inline void accumulate_row_tile(Acc* __restrict__ crow, const Acc* __restrict__ arow,
                                const Acc* __restrict__ bf, std::size_t kt,
                                std::size_t kend, std::size_t n) {
#ifdef KAMI_NUMERIC_SIMD
  using V = typename SimdVec<Acc>::type;
  constexpr std::size_t W = kSimdWidth<Acc>;
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    V c0, c1;
    std::memcpy(&c0, crow + j, sizeof(V));
    std::memcpy(&c1, crow + j + W, sizeof(V));
    for (std::size_t kk = kt; kk < kend; ++kk) {
      const V av = simd_splat(arow[kk]);
      const Acc* brow = bf + kk * n + j;
      V b0, b1;
      std::memcpy(&b0, brow, sizeof(V));
      std::memcpy(&b1, brow + W, sizeof(V));
      c0 += av * b0;
      c1 += av * b1;
    }
    std::memcpy(crow + j, &c0, sizeof(V));
    std::memcpy(crow + j + W, &c1, sizeof(V));
  }
  if (j + W <= n) {
    V c0;
    std::memcpy(&c0, crow + j, sizeof(V));
    for (std::size_t kk = kt; kk < kend; ++kk) {
      const V av = simd_splat(arow[kk]);
      V b0;
      std::memcpy(&b0, bf + kk * n + j, sizeof(V));
      c0 += av * b0;
    }
    std::memcpy(crow + j, &c0, sizeof(V));
    j += W;
  }
  for (; j < n; ++j) {
    Acc cj = crow[j];
    for (std::size_t kk = kt; kk < kend; ++kk) cj += arow[kk] * bf[kk * n + j];
    crow[j] = cj;
  }
#else
  // Scalar fallback (KAMI_NO_SIMD or non-GNU compiler): the original loop
  // nest. The compiler may still auto-vectorize it — that is fine, because
  // the per-element chains above are what define the result bits.
  for (std::size_t kk = kt; kk < kend; ++kk) {
    const Acc av = arow[kk];
    const Acc* brow = bf + kk * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
  }
#endif
}

}  // namespace detail

/// Width (in accumulator lanes) of the explicit SIMD kernel, 1 when the
/// scalar fallback is compiled in. Exported so benchmarks can stamp the
/// SIMD configuration into their run-report meta.
template <typename Acc>
inline constexpr std::size_t numeric_simd_lanes =
#ifdef KAMI_NUMERIC_SIMD
    detail::kSimdWidth<Acc>;
#else
    1;
#endif

inline const char* numeric_simd_name() noexcept {
#ifdef KAMI_NUMERIC_SIMD
  return "vector-ext-32B";
#else
  return "scalar";
#endif
}

/// C = A x B into a caller-provided row-major buffer (no allocation beyond
/// arena scratch). `a` is m x k, `b` is k x n, `c` is m x n.
template <Scalar T>
void numeric_gemm_into(const T* a, const T* b, T* c, std::size_t m, std::size_t n,
                       std::size_t k, std::size_t layers = 1) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(layers >= 1 && k % layers == 0, "layers must evenly split k");

  Arena& arena = Arena::tls();
  ArenaScope scope(arena);
  Acc* Af = arena.alloc<Acc>(m * k);
  Acc* Bf = arena.alloc<Acc>(k * n);
  Acc* Cacc = arena.alloc<Acc>(m * n);
  Acc* Pacc = layers > 1 ? arena.alloc<Acc>(m * n) : nullptr;

  types::decode_span(a, Af, m * k);
  types::decode_span(b, Bf, k * n);
  std::fill_n(Cacc, m * n, Acc{});

  const std::size_t kb = k / layers;
  for (std::size_t l = 0; l < layers; ++l) {
    Acc* dst = l == 0 ? Cacc : Pacc;
    if (l > 0) std::fill_n(Pacc, m * n, Acc{});
    const std::size_t k0 = l * kb;
    for (std::size_t kt = k0; kt < k0 + kb; kt += kNumericKTile) {
      const std::size_t kend = std::min(kt + kNumericKTile, k0 + kb);
      for (std::size_t i = 0; i < m; ++i)
        detail::accumulate_row_tile(dst + i * n, Af + i * k, Bf, kt, kend, n);
    }
    if (l > 0)
      for (std::size_t e = 0; e < m * n; ++e) Cacc[e] += Pacc[e];
  }

  types::encode_span(Cacc, c, m * n);
}

template <Scalar T>
Matrix<T> numeric_gemm(const Matrix<T>& A, const Matrix<T>& B, std::size_t layers = 1) {
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  Matrix<T> C(m, n);
  numeric_gemm_into(A.data(), B.data(), C.data(), m, n, k, layers);
  return C;
}

}  // namespace kami::core
