// The NumericsOnly fast path: C = A x B in the kernels' exact rounding
// model, with the cycle simulator bypassed entirely.
//
// Why this is bit-identical to the simulated kernels:
//   * Every KAMI kernel accumulates each C element as a single sequential
//     chain in accumulator precision over ascending k (1D stripes, 2D
//     stages, and each 3D layer all cover k in order), then narrows once
//     at writeback. Shared-memory and fragment transits copy bits
//     unchanged, so only the arithmetic chain matters.
//   * KAMI-3D re-associates across its `c` depth layers: layer l computes
//     the partial sum over its k-segment, and layers are reduced in order
//     ((S0 + S1) + S2)... in accumulator precision. `layers` replicates
//     exactly that association; 1D/2D use layers = 1.
//   * Both the simulated mma and this loop accumulate with the same
//     `acc += to_acc(a) * to_acc(b)` expression, so any FP contraction the
//     compiler applies is applied identically.
//
// Why the SIMD kernel is bit-identical to the scalar one (KAMI_NO_SIMD):
//   * The inner product is vectorized over j — C columns — and each vector
//     lane carries exactly one (i, j) accumulator through the k extent in
//     ascending order. Lanes never exchange or re-associate values, so each
//     lane performs the same single-rounded multiply-add sequence the scalar
//     loop performs, and the j-tail that doesn't fill a vector runs the same
//     chain in scalar registers. Vector width, register blocking, and tail
//     handling therefore cannot change any bit of any C element (the
//     differential harness and the KAMI_NO_SIMD CI job pin this).
//
// Host cost: m*k + k*n table-driven decodes (instead of 2*m*n*k scalar
// conversions), a vectorized ikj product, and one narrowing per C element.
// Scratch comes from the thread's Arena (core/arena.hpp): one bump
// allocation per buffer, rewound after every call, capacity capped by the
// arena's retain limit — the old thread_local vectors pinned the high-water
// shape forever on long-lived serving threads.
#pragma once

#include <algorithm>
#include <cstring>

#include "core/arena.hpp"
#include "core/vector_kernels.hpp"
#include "types/decode_tables.hpp"
#include "types/matrix.hpp"

namespace kami::core {

// The SIMD machinery itself (SimdVec, accumulate_row_tile, kNumericKTile,
// numeric_simd_lanes/name) lives in core/vector_kernels.hpp so the Full-mode
// simulator data plane (sim/warp.hpp) runs the exact same kernels.

/// C = A x B into a caller-provided row-major buffer (no allocation beyond
/// arena scratch). `a` is m x k, `b` is k x n, `c` is m x n.
template <Scalar T>
void numeric_gemm_into(const T* a, const T* b, T* c, std::size_t m, std::size_t n,
                       std::size_t k, std::size_t layers = 1) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(layers >= 1 && k % layers == 0, "layers must evenly split k");

  Arena& arena = Arena::tls();
  ArenaScope scope(arena);
  Acc* Af = arena.alloc<Acc>(m * k);
  Acc* Bf = arena.alloc<Acc>(k * n);
  Acc* Cacc = arena.alloc<Acc>(m * n);
  Acc* Pacc = layers > 1 ? arena.alloc<Acc>(m * n) : nullptr;

  types::decode_span(a, Af, m * k);
  types::decode_span(b, Bf, k * n);
  std::fill_n(Cacc, m * n, Acc{});

  const std::size_t kb = k / layers;
  for (std::size_t l = 0; l < layers; ++l) {
    Acc* dst = l == 0 ? Cacc : Pacc;
    if (l > 0) std::fill_n(Pacc, m * n, Acc{});
    const std::size_t k0 = l * kb;
    for (std::size_t kt = k0; kt < k0 + kb; kt += kNumericKTile) {
      const std::size_t kend = std::min(kt + kNumericKTile, k0 + kb);
      for (std::size_t i = 0; i < m; ++i)
        detail::accumulate_row_tile(dst + i * n, Af + i * k, Bf, kt, kend, n);
    }
    if (l > 0)
      for (std::size_t e = 0; e < m * n; ++e) Cacc[e] += Pacc[e];
  }

  types::encode_span(Cacc, c, m * n);
}

template <Scalar T>
Matrix<T> numeric_gemm(const Matrix<T>& A, const Matrix<T>& B, std::size_t layers = 1) {
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  Matrix<T> C(m, n);
  numeric_gemm_into(A.data(), B.data(), C.data(), m, n, k, layers);
  return C;
}

}  // namespace kami::core
