// Auto-tuning (§4.7: "we preset ratios in our implementation and allow user
// tuning to balance generality and specialization").
//
// The simulator makes exhaustive tuning cheap: autotune_gemm simulates every
// candidate (algorithm, warp count, spill ratio) for a shape and returns the
// configuration with the highest device throughput under the paper's
// 16384-block launch. best_gemm runs the winner on real data.
#pragma once

#include <optional>
#include <vector>

#include "core/kami.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

struct TuneCandidate {
  Algo algo = Algo::OneD;
  int warps = 0;           ///< 0 = planner default
  double smem_ratio = -1;  ///< <0 = planner default
};

struct TuneResult {
  TuneCandidate config;
  double tflops = 0.0;
  sim::KernelProfile profile;
  int evaluated = 0;  ///< candidates that ran (infeasible ones are skipped)
};

/// The default candidate grid: every algorithm at its natural warp counts,
/// planner-chosen spill ratio plus the Fig 10 presets.
std::vector<TuneCandidate> default_candidates();

template <Scalar T>
TuneResult autotune_gemm(const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                         std::size_t k, std::size_t blocks = 16384,
                         const std::vector<TuneCandidate>& candidates =
                             default_candidates()) {
  KAMI_REQUIRE(m > 0 && n > 0 && k > 0);
  Rng rng(m * 131 + n * 17 + k);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);

  auto& metrics = obs::MetricRegistry::global();
  metrics.counter("autotune.runs").increment();
  obs::Counter& evaluated = metrics.counter("autotune.candidates_evaluated");
  obs::Counter& infeasible = metrics.counter("autotune.candidates_infeasible");

  TuneResult best;
  for (const auto& cand : candidates) {
    GemmOptions opt;
    opt.warps = cand.warps;
    opt.smem_ratio = cand.smem_ratio;
    try {
      const auto r = gemm(cand.algo, dev, A, B, opt);
      const double t = sim::throughput_tflops(dev, r.profile, blocks);
      ++best.evaluated;
      evaluated.increment();
      metrics.histogram("autotune.candidate_tflops").observe(t);
      if (t > best.tflops) {
        best.tflops = t;
        best.config = cand;
        best.profile = r.profile;
      }
    } catch (const PreconditionError&) {
      // Candidate infeasible for this shape (grid mismatch or registers).
      infeasible.increment();
    }
  }
  KAMI_REQUIRE(best.evaluated > 0, "no feasible configuration for this shape");
  return best;
}

/// Tune, then run the winning configuration on the given operands.
template <Scalar T>
GemmResult<T> best_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                        const Matrix<T>& B, std::size_t blocks = 16384) {
  const auto tuned =
      autotune_gemm<T>(dev, A.rows(), B.cols(), A.cols(), blocks);
  GemmOptions opt;
  opt.warps = tuned.config.warps;
  opt.smem_ratio = tuned.config.smem_ratio;
  return gemm(tuned.config.algo, dev, A, B, opt);
}

}  // namespace kami::core
