// Auto-tuning (§4.7: "we preset ratios in our implementation and allow user
// tuning to balance generality and specialization").
//
// The simulator makes exhaustive tuning cheap: autotune_gemm evaluates every
// candidate (algorithm, warp count, spill ratio) in TimingOnly mode through
// the ProfileCache — no operands are generated and no arithmetic runs, and
// repeated tuning of the same shape is a pure cache hit — then returns the
// configuration with the highest device throughput under the paper's
// 16384-block launch. best_gemm runs the winner's numerics exactly once and
// reuses the tuned profile.
#pragma once

#include <optional>
#include <vector>

#include "core/kami.hpp"
#include "core/profile_cache.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

struct TuneCandidate {
  Algo algo = Algo::OneD;
  int warps = 0;           ///< 0 = planner default
  double smem_ratio = -1;  ///< <0 = planner default
};

struct TuneResult {
  TuneCandidate config;
  double tflops = 0.0;
  sim::KernelProfile profile;
  int warps = 0;           ///< the p the winner actually used
  double smem_ratio = 0.0; ///< the spill ratio the winner actually used
  int evaluated = 0;  ///< candidates that ran (infeasible ones are skipped)
};

/// The default candidate grid: every algorithm at its natural warp counts,
/// planner-chosen spill ratio plus the Fig 10 presets.
std::vector<TuneCandidate> default_candidates();

template <Scalar T>
TuneResult autotune_gemm(const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                         std::size_t k, std::size_t blocks = 16384,
                         const std::vector<TuneCandidate>& candidates =
                             default_candidates(),
                         int threads = 0) {
  KAMI_REQUIRE(m > 0 && n > 0 && k > 0,
               "matrix dimensions must be positive, got m=" + std::to_string(m) +
                   " n=" + std::to_string(n) + " k=" + std::to_string(k));
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("autotune.runs").increment();
  obs::Counter& evaluated = metrics.counter("autotune.candidates_evaluated");
  obs::Counter& infeasible = metrics.counter("autotune.candidates_infeasible");
  ProfileCache& cache = ProfileCache::global();

  // Candidates are independent TimingOnly simulations: sweep them across
  // the execution engine (threads=0 defers to KAMI_THREADS; 1 == the
  // historical serial sweep), then fold the outcomes serially in candidate
  // order so metric updates and winner selection are identical for every
  // worker count.
  struct Outcome {
    bool feasible = false;
    double tflops = 0.0;
    sim::KernelProfile profile;
    int warps = 0;
    double smem_ratio = 0.0;
  };
  const exec::ExecutionEngine engine(threads);
  const auto outcomes =
      engine.parallel_map<Outcome>(candidates.size(), [&](std::size_t i) {
        const TuneCandidate& cand = candidates[i];
        GemmOptions opt;
        opt.warps = cand.warps;
        opt.smem_ratio = cand.smem_ratio;
        Outcome o;
        try {
          // TimingOnly through the cache: no operands, no arithmetic.
          // Infeasible configurations throw here exactly as a Full run would.
          const CachedProfile prof =
              timing_profile<T>(cache, cand.algo, dev, m, n, k, opt);
          o.feasible = true;
          o.tflops = sim::throughput_tflops(dev, prof.profile, blocks);
          o.profile = prof.profile;
          o.warps = prof.warps;
          o.smem_ratio = prof.smem_ratio;
        } catch (const PreconditionError&) {
          // Candidate infeasible for this shape (grid mismatch or registers).
        }
        return o;
      });

  TuneResult best;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    if (!o.feasible) {
      infeasible.increment();
      continue;
    }
    ++best.evaluated;
    evaluated.increment();
    metrics.histogram("autotune.candidate_tflops").observe(o.tflops);
    if (o.tflops > best.tflops) {
      best.tflops = o.tflops;
      best.config = candidates[i];
      best.profile = o.profile;
      best.warps = o.warps;
      best.smem_ratio = o.smem_ratio;
    }
  }
  KAMI_REQUIRE(best.evaluated > 0,
               "no feasible configuration for m=" + std::to_string(m) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k) + " on " + dev.name +
                   " (" + std::to_string(candidates.size()) + " candidates tried)");
  return best;
}

/// Tune, then run the winning configuration on the given operands. Tuning
/// already produced the winner's profile, so the operands run through the
/// NumericsOnly fast path — the numerics execute exactly once.
template <Scalar T>
GemmResult<T> best_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                        const Matrix<T>& B, std::size_t blocks = 16384,
                        int threads = 0) {
  const auto tuned = autotune_gemm<T>(dev, A.rows(), B.cols(), A.cols(), blocks,
                                      default_candidates(), threads);
  GemmOptions opt;
  opt.warps = tuned.config.warps;
  opt.smem_ratio = tuned.config.smem_ratio;
  opt.mode = sim::ExecMode::NumericsOnly;
  GemmResult<T> r = gemm(tuned.config.algo, dev, A, B, opt);
  r.profile = tuned.profile;
  return r;
}

}  // namespace kami::core
