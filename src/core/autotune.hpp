// Auto-tuning (§4.7: "we preset ratios in our implementation and allow user
// tuning to balance generality and specialization").
//
// The simulator makes exhaustive tuning cheap, and the calibrated analytic
// model makes it cheaper still. autotune_gemm runs in two passes:
//
//   1. Analytic prescreen (serial, deterministic): every candidate's plan is
//      resolved and ranked by the throughput the closed-form cost model
//      predicts for it (core/analytic_planner.hpp). Candidates whose
//      calibration bucket is confident and that rank below the policy's
//      top-K are pruned — their simulation never runs. Planner-default
//      candidates, cache-resident candidates (a hit costs nothing) and
//      low-confidence predictions are always simulated, so a cold predictor
//      degrades to the historical exhaustive sweep and the winner is always
//      chosen among *simulated* outcomes.
//   2. TimingOnly sweep of the survivors across the execution engine, then a
//      serial fold in candidate order — metric updates, winner selection and
//      the predictor feedback (every fresh simulation becomes a calibration
//      observation) are identical for every worker count.
//
// best_gemm runs the winner's numerics exactly once and reuses the tuned
// profile.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "core/analytic_planner.hpp"
#include "core/kami.hpp"
#include "core/profile_cache.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

struct TuneCandidate {
  Algo algo = Algo::OneD;
  int warps = 0;           ///< 0 = planner default
  double smem_ratio = -1;  ///< <0 = planner default
};

struct TuneResult {
  TuneCandidate config;
  double tflops = 0.0;
  sim::KernelProfile profile;
  int warps = 0;           ///< the p the winner actually used
  double smem_ratio = 0.0; ///< the spill ratio the winner actually used
  int evaluated = 0;  ///< candidates that ran (infeasible ones are skipped)
  int pruned = 0;     ///< feasible candidates the analytic prescreen skipped
};

/// One candidate's simulated outcome (infeasible candidates stay !feasible).
struct TuneOutcome {
  bool feasible = false;
  double tflops = 0.0;
  sim::KernelProfile profile;
  int warps = 0;
  double smem_ratio = 0.0;
};

/// How aggressively the analytic prescreen prunes.
struct TunePolicy {
  /// false = the historical exhaustive sweep (every feasible candidate is
  /// simulated; the predictor still learns from the outcomes).
  bool prescreen = true;
  /// Confidently-predicted candidates to keep simulating, ranked by
  /// predicted device throughput. Planner defaults, cache hits and
  /// low-confidence candidates are simulated on top of this quota.
  int top_k = 8;
};

/// The default candidate grid: every algorithm at its natural warp counts,
/// planner-chosen spill ratio plus the Fig 10 presets.
std::vector<TuneCandidate> default_candidates();

/// Index of the winning outcome: highest throughput among feasible ones, the
/// first feasible candidate winning ties; -1 when none is feasible. The
/// winner is tracked by index rather than compared against a sentinel
/// `best.tflops = 0.0` — the old strict `>` against that sentinel could never
/// select a feasible candidate whose reported throughput was 0, returning a
/// default-constructed result despite passing the evaluated-count guard.
int select_winner(const std::vector<TuneOutcome>& outcomes);

template <Scalar T>
TuneResult autotune_gemm(const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                         std::size_t k, std::size_t blocks = 16384,
                         const std::vector<TuneCandidate>& candidates =
                             default_candidates(),
                         int threads = 0, const TunePolicy& policy = {}) {
  KAMI_REQUIRE(m > 0 && n > 0 && k > 0,
               "matrix dimensions must be positive, got m=" + std::to_string(m) +
                   " n=" + std::to_string(n) + " k=" + std::to_string(k));
  constexpr Precision prec = num_traits<T>::precision;
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("autotune.runs").increment();
  obs::Counter& evaluated = metrics.counter("autotune.candidates_evaluated");
  obs::Counter& infeasible = metrics.counter("autotune.candidates_infeasible");
  obs::Counter& pruned_ctr = metrics.counter("autotune.candidates_pruned");
  ProfileCache& cache = ProfileCache::global();
  model::Predictor& predictor = model::Predictor::global();

  // -- phase 1: serial analytic prescreen. Resolving the plan answers
  // feasibility without simulating; the predictor ranks what's left.
  struct Screen {
    bool planned = false;  ///< plan_gemm accepted the candidate
    bool simulate = false;
    bool cached = false;
    Plan plan;
    GemmOptions opt;
    model::Prediction prediction;
    double predicted_tflops = 0.0;
  };
  std::vector<Screen> screens(candidates.size());
  // (index, predicted tflops) of confident non-default candidates — the only
  // ones the prescreen is allowed to prune.
  std::vector<std::pair<std::size_t, double>> prunable;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const TuneCandidate& cand = candidates[i];
    Screen& s = screens[i];
    s.opt.warps = cand.warps;
    s.opt.smem_ratio = cand.smem_ratio;
    try {
      s.plan = plan_gemm(cand.algo, dev, prec, m, n, k, s.opt);
    } catch (const PreconditionError&) {
      continue;  // infeasible for this shape (grid mismatch or registers)
    }
    s.planned = true;
    const ProfileKey key =
        ProfileKey::make(cand.algo, dev, prec, m, n, k, s.opt, s.plan);
    s.cached = cache.try_get(key).has_value();
    s.prediction = predictor.predict(dev, cand.algo, prec, m, n, k, s.plan.p,
                                     predict_options(s.opt));
    s.predicted_tflops = predicted_tflops(dev, prec, s.plan, m, n, k, s.prediction,
                                          s.opt, blocks);
    const bool planner_default = cand.warps == 0 && cand.smem_ratio < 0.0;
    if (policy.prescreen && s.prediction.confident && !s.cached && !planner_default)
      prunable.emplace_back(i, s.predicted_tflops);
    else
      s.simulate = true;
  }
  // Keep the top-K predicted candidates; everything below the cut is pruned.
  // Stable ranking: throughput descending, candidate order breaking ties.
  std::stable_sort(prunable.begin(), prunable.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t r = 0; r < prunable.size(); ++r)
    if (r < static_cast<std::size_t>(std::max(policy.top_k, 0)))
      screens[prunable[r].first].simulate = true;

  // -- phase 2: sweep the survivors across the execution engine (threads=0
  // defers to KAMI_THREADS; 1 == the historical serial sweep).
  const exec::ExecutionEngine engine(threads);
  const auto outcomes =
      engine.parallel_map<TuneOutcome>(candidates.size(), [&](std::size_t i) {
        TuneOutcome o;
        if (!screens[i].planned || !screens[i].simulate) return o;
        try {
          // TimingOnly through the cache: no operands, no arithmetic.
          const CachedProfile prof = timing_profile<T>(
              cache, candidates[i].algo, dev, m, n, k, screens[i].opt);
          o.feasible = true;
          o.tflops = sim::throughput_tflops(dev, prof.profile, blocks);
          o.profile = prof.profile;
          o.warps = prof.warps;
          o.smem_ratio = prof.smem_ratio;
        } catch (const PreconditionError&) {
          // The simulation can still reject what the planner accepted (e.g.
          // an injected allocation fault); count it with the infeasible ones.
        }
        return o;
      });

  // -- phase 3: serial fold in candidate order — counters, the winner, and
  // the predictor feedback are bit-identical for every worker count.
  TuneResult best;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (screens[i].planned && !screens[i].simulate) {
      ++best.pruned;
      pruned_ctr.increment();
      metrics.counter("model.predictions").increment();
      continue;
    }
    const TuneOutcome& o = outcomes[i];
    if (!o.feasible) {
      infeasible.increment();
      continue;
    }
    ++best.evaluated;
    evaluated.increment();
    metrics.histogram("autotune.candidate_tflops").observe(o.tflops);
    if (screens[i].prediction.calibrated && o.profile.latency > 0.0)
      metrics.histogram("model.prediction_error_pct")
          .observe(100.0 * std::abs(o.profile.latency - screens[i].prediction.cycles) /
                   o.profile.latency);
    if (!screens[i].cached && o.profile.latency > 0.0) {
      model::Observation obs;
      obs.device = dev.name;
      obs.algo = candidates[i].algo;
      obs.precision = prec;
      obs.m = m;
      obs.n = n;
      obs.k = k;
      obs.p = screens[i].plan.p;
      obs.options = predict_options(screens[i].opt);
      obs.simulated_cycles = o.profile.latency;
      predictor.observe(obs);
    }
  }
  const int winner = select_winner(outcomes);
  KAMI_REQUIRE(best.evaluated > 0 && winner >= 0,
               "no feasible configuration for m=" + std::to_string(m) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k) + " on " + dev.name +
                   " (" + std::to_string(candidates.size()) + " candidates tried)");
  const TuneOutcome& w = outcomes[static_cast<std::size_t>(winner)];
  best.config = candidates[static_cast<std::size_t>(winner)];
  best.tflops = w.tflops;
  best.profile = w.profile;
  best.warps = w.warps;
  best.smem_ratio = w.smem_ratio;
  return best;
}

/// Tune, then run the winning configuration on the given operands. Tuning
/// already produced the winner's profile, so the operands run through the
/// NumericsOnly fast path — the numerics execute exactly once.
template <Scalar T>
GemmResult<T> best_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                        const Matrix<T>& B, std::size_t blocks = 16384,
                        int threads = 0) {
  const auto tuned = autotune_gemm<T>(dev, A.rows(), B.cols(), A.cols(), blocks,
                                      default_candidates(), threads);
  GemmOptions opt;
  opt.warps = tuned.config.warps;
  opt.smem_ratio = tuned.config.smem_ratio;
  opt.mode = sim::ExecMode::NumericsOnly;
  GemmResult<T> r = gemm(tuned.config.algo, dev, A, B, opt);
  r.profile = tuned.profile;
  return r;
}

}  // namespace kami::core
