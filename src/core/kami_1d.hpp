// KAMI-1D (Algorithm 1).
//
// p warps; warp i holds the row stripe A_i (m/p x k) in registers and
// accumulates C_i (m/p x n). B is partitioned into k-stripes of the MMA
// slice width (16 by default, §4.7); stripes are assigned contiguously to
// warps, and the multiplication proceeds stripe by stripe: the owner
// broadcasts its stripe through shared memory (Reg2SMem), every other warp
// reads it (SMem2Reg) — serialized on the shared-memory port, which is what
// formula (2)'s (p-1)/p read term models — and all warps multiply the
// matching k-slice of A_i with the received stripe on the tensor cores.
// Only B is communicated; A never moves between warps.
//
// Decoupling the stripe count from the warp count generalizes Algorithm 1
// (where each of the p warps owns exactly one stripe) to any k — in
// particular the low-rank shapes of §5.3, where k = 16 yields a single
// broadcast stripe regardless of p. When S = p stripes the two forms are
// identical, and so are the costs.
//
// The §4.7 register/shared-memory cooperation composes naturally: spilled
// slices of A stream from the warp's private spill region at use, and
// spilled stripes of B are read directly from the owner's spill region
// instead of being re-broadcast.
#pragma once

#include <optional>
#include <vector>

#include "core/gemm.hpp"
#include "core/numeric_path.hpp"
#include "core/planner.hpp"
#include "core/sliced_operand.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::core {

template <Scalar T>
GemmResult<T> kami_1d_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                           const Matrix<T>& B, const GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");

  const Plan plan = plan_gemm(Algo::OneD, dev, num_traits<T>::precision, m, n, k, opt);

  // NumericsOnly: the 1D accumulation order equals the plain sequential-k
  // chain (see core/numeric_path.hpp), so skip the simulator entirely.
  if (opt.mode == sim::ExecMode::NumericsOnly)
    return {numeric_gemm(A, B), {}, plan.p, plan.smem_ratio, nullptr, nullptr};

  const auto p = static_cast<std::size_t>(plan.p);
  const std::size_t row_chunk = m / p;            // rows of A_i / C_i
  const std::size_t sw = plan.slice_w;            // stripe width along k
  const std::size_t stripes = k / sw;             // broadcast stages
  const std::size_t q = (stripes + p - 1) / p;    // stripes per owner warp

  sim::ThreadBlock blk(dev, plan.p, opt.mode);
  blk.set_deadline(opt.deadline_cycles);
  if (opt.record_trace) blk.enable_trace();

  // Optional phase profile keyed to the block's simulated clock. The
  // profiler is frozen (clock detached) before `blk` goes out of scope.
  std::shared_ptr<obs::RegionProfiler> regions;
  if (opt.record_regions)
    regions = std::make_shared<obs::RegionProfiler>([&blk] { return blk.cycles(); });
  obs::RegionProfiler* rp = regions.get();

  // Per-warp state, indexed by warp id (phases run warps in id order).
  std::vector<SlicedOperand<T>> Aop;
  std::vector<std::optional<SlicedOperand<T>>> Bop(p);
  std::vector<SliceLayout> b_layout(p);
  std::vector<sim::Fragment<Acc>> Ci;
  std::vector<sim::Fragment<T>> BRecv;
  std::vector<sim::Fragment<T>> Ascratch;  // only used when A spills
  Aop.reserve(p);
  Ci.reserve(p);
  BRecv.reserve(p);
  const bool a_spills = plan.a.spilled_slices_total() > 0;
  if (a_spills) Ascratch.reserve(p);

  obs::ScopedRegion r_kernel(rp, "kami_1d");
  {
    obs::ScopedRegion r_setup(rp, "setup");
    blk.phase([&](sim::Warp& w) {
      w.set_gmem_charging(opt.charge_global_io);
      const auto i = static_cast<std::size_t>(w.id());
      Aop.emplace_back(w, blk.smem(), plan.a, A, i * row_chunk, 0);
      const std::size_t first = i * q;
      const std::size_t count = first >= stripes
                                    ? 0
                                    : ((first + q <= stripes) ? q : stripes - first);
      if (count > 0) {
        b_layout[i] = SliceLayout::make(count * sw, n, SliceAxis::Rows, sw, 0,
                                        plan.smem_ratio);
        Bop[i].emplace(w, blk.smem(), b_layout[i], B, first * sw, 0);
      }
      Ci.emplace_back(w.regs(), row_chunk, n);
      BRecv.emplace_back(w.regs(), sw, n);
      if (a_spills) Ascratch.emplace_back(w.regs(), plan.a.slice_rows(), plan.a.slice_cols());
    });
    blk.sync();
  }

  // One broadcast buffer, reused across stages (Algorithm 1's SmB).
  auto SmB = blk.smem().alloc<T>(sw, n);

  for (std::size_t z = 0; z < stripes; ++z) {
    const std::size_t owner = z / q;
    const std::size_t ls = z - owner * q;  // slice index within the owner
    const bool resident = b_layout[owner].is_resident(ls);

    // Write phase: the owner publishes its resident slice (lines 6-7);
    // spilled slices are already in its shared-memory region.
    {
      obs::ScopedRegion r(rp, "broadcast_write");
      blk.phase([&](sim::Warp& w) {
        if (static_cast<std::size_t>(w.id()) != owner) return;
        if (resident) w.store_smem(SmB, Bop[owner]->resident_slice(ls), opt.theta_w);
        Bop[owner]->fetch_slice(w, ls, BRecv[owner], opt.theta_r);  // own copy (line 7)
      });
      blk.sync();
    }

    // Read phase: everyone else pulls the slice (line 10), serialized on
    // the shared-memory port.
    {
      obs::ScopedRegion r(rp, "broadcast_read");
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        if (i == owner) return;
        if (resident) {
          w.load_smem(BRecv[i], SmB, opt.theta_r);
        } else {
          w.load_smem(BRecv[i], Bop[owner]->spilled_slice(ls), opt.theta_r);
        }
      });
      blk.sync();
    }

    // Compute phase (line 12): Ci += A_i[:, stripe z] x BRecv.
    {
      obs::ScopedRegion r(rp, "compute");
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        if (plan.a.is_resident(z)) {
          w.mma(Ci[i], Aop[i].resident_slice(z), BRecv[i].view());
        } else {
          w.load_smem(Ascratch[i], Aop[i].spilled_slice(z), opt.theta_r);
          w.mma(Ci[i], Ascratch[i].view(), BRecv[i].view());
        }
      });
      blk.sync();
    }
  }

  // Line 13: write back C, narrowed to the storage precision.
  GemmResult<T> out{Matrix<T>(m, n), {}, plan.p, plan.smem_ratio, nullptr, nullptr};
  {
    obs::ScopedRegion r(rp, "writeback");
    blk.phase([&](sim::Warp& w) {
      const auto i = static_cast<std::size_t>(w.id());
      w.store_global_narrowed(out.C, Ci[i], i * row_chunk, 0);
    });
    blk.sync();
  }
  r_kernel.close();

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  if (opt.record_trace) out.trace = blk.take_trace();
  if (regions) {
    regions->freeze();
    out.regions = regions;
  }
  return out;
}

}  // namespace kami::core
