// Common options and result types for KAMI's block-level GEMM kernels.
#pragma once

#include <cstddef>
#include <memory>

#include "model/registers.hpp"
#include "obs/region.hpp"
#include "sim/exec_mode.hpp"
#include "sim/throughput.hpp"
#include "types/matrix.hpp"

namespace kami::core {

/// Algorithm selector; identical to the analytic model's tag.
using Algo = model::Algo;

struct GemmOptions {
  /// Number of warps p. 0 = auto: the smallest legal warp count whose
  /// register demand fits at some spill ratio (1D/2D try 4, 8/16; 3D tries
  /// 8, then 27).
  int warps = 0;

  /// Fraction of A/B k-slices spilled to shared memory (§4.7, Fig 10).
  /// Negative = auto: the smallest preset in {0, .25, .5, .75, .875} that
  /// fits the register file.
  double smem_ratio = -1.0;

  /// Preferred k-slice width; 16 matches the MMA granularity (§4.7).
  std::size_t slice_pref = 16;

  /// Charge global-memory loads/stores. Block-level experiments keep data
  /// on chip across kernel iterations (Fig 3 caption) and leave this off;
  /// batched drivers turn it on.
  bool charge_global_io = false;

  /// Bank-conflict factors (Table 2); KAMI's layouts are conflict-free.
  double theta_r = 1.0;
  double theta_w = 1.0;

  /// What the kernel executes (sim/exec_mode.hpp). TimingOnly skips all
  /// element arithmetic but produces the exact profile Full would;
  /// NumericsOnly computes the exact C Full would and leaves the profile
  /// zero. Trace/region recording require a timed mode.
  sim::ExecMode mode = sim::ExecMode::Full;

  /// Record an op-level timeline (sim/trace.hpp) into GemmResult::trace.
  bool record_trace = false;

  /// Record a hierarchical phase profile (obs/region.hpp) keyed to simulated
  /// cycles into GemmResult::regions.
  bool record_regions = false;

  /// Worker threads for fan-out drivers (batched entries, autotune
  /// candidates) run through exec::ExecutionEngine. 0 = defer to the
  /// KAMI_THREADS environment variable (default 1 == serial); a single
  /// kernel simulation is always single-threaded regardless. Excluded from
  /// the ProfileKey like deadline_cycles: the worker count never changes
  /// what is computed, only how the independent pieces are scheduled.
  int threads = 0;

  /// Simulated-cycle budget for the whole kernel (0 = unlimited). The op
  /// that pushes any warp's clock past the budget throws
  /// sim::DeadlineExceeded at a deterministic point — the serving layer's
  /// watchdog against runaway simulations. Only timed modes can trip it
  /// (NumericsOnly never advances a clock), and it is excluded from the
  /// ProfileKey: a run that finishes under its deadline has exactly the
  /// profile an unbounded run would.
  double deadline_cycles = 0.0;
};

template <Scalar T>
struct GemmResult {
  Matrix<T> C;
  sim::KernelProfile profile;
  int warps = 0;           ///< the p actually used
  double smem_ratio = 0.0; ///< the spill ratio actually used
  std::shared_ptr<sim::Trace> trace;  ///< set when GemmOptions::record_trace
  /// Frozen phase tree; set when GemmOptions::record_regions.
  std::shared_ptr<obs::RegionProfiler> regions;
};

}  // namespace kami::core
