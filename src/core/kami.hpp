// KAMI public API.
//
//   #include "core/kami.hpp"
//
//   auto& dev = kami::sim::gh200();
//   kami::Matrix<kami::fp16_t> A = ..., B = ...;
//   auto r = kami::gemm(kami::Algo::OneD, dev, A, B);
//   // r.C is the product; r.profile carries cycles & resource occupancy.
//
// The three block-level algorithms (Section 4.3-4.5), runtime-dispatched.
// Batched and low-rank drivers live in core/batched.hpp and core/lowrank.hpp;
// sparse kernels in sparse/.
#pragma once

#include <string>

#include "core/gemm.hpp"
#include "core/kami_1d.hpp"
#include "core/kami_2d.hpp"
#include "core/kami_3d.hpp"

namespace kami {

using core::Algo;
using core::GemmOptions;
using core::GemmResult;

/// Block-level C = A x B with the selected CA algorithm.
template <Scalar T>
GemmResult<T> gemm(Algo algo, const sim::DeviceSpec& dev, const Matrix<T>& A,
                   const Matrix<T>& B, const GemmOptions& opt = {}) {
  switch (algo) {
    case Algo::OneD: return core::kami_1d_gemm(dev, A, B, opt);
    case Algo::TwoD: return core::kami_2d_gemm(dev, A, B, opt);
    case Algo::ThreeD: return core::kami_3d_gemm(dev, A, B, opt);
  }
  throw PreconditionError("unknown algorithm: " +
                          std::to_string(static_cast<int>(algo)) +
                          " is not one of Algo::OneD(0)/TwoD(1)/ThreeD(2)");
}

const char* algo_name(Algo algo) noexcept;

}  // namespace kami
