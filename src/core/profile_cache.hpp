// ProfileCache: memoized TimingOnly kernel profiles.
//
// A block's cycle profile depends only on (device, precision, shape, algo,
// tuning options) — never on operand values — so one TimingOnly simulation
// per distinct key serves every later consumer: autotune candidates,
// batched sweep points, and the bench binaries' repeated shapes. The cache
// is a small LRU keyed by that fingerprint and instrumented with
// profile_cache.{hits,misses,inserts,evictions} counters plus a size gauge.
//
// Keys are canonicalized through the planner: the key stores the *resolved*
// warp count, spill ratio, slice width and 3D chunk, so an auto request
// (warps=0 / smem_ratio<0) and an explicit request that the planner maps to
// the same configuration share one entry — profile_cache.inserts counts
// distinct plans, not distinct request spellings.
//
// All public methods lock an internal mutex and find() copies the entry out,
// so the cache is safe for concurrent drivers and a result can never be
// invalidated by a later insert()/clear().
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/kami.hpp"
#include "core/planner.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

/// Everything that can change a kernel's cycle profile. Options fields that
/// only affect reporting (record_trace/record_regions/mode) are excluded, as
/// is deadline_cycles: a run that finishes under its deadline produces
/// exactly the profile an unbounded run would, and a run that does not never
/// reaches insert() below. Tuning fields are stored planner-resolved (see
/// ProfileKey::make).
struct ProfileKey {
  std::string device;
  Precision precision = Precision::FP16;
  Algo algo = Algo::OneD;
  std::size_t m = 0, n = 0, k = 0;
  int warps = 0;             ///< planner-resolved warp count p (never 0)
  double smem_ratio = 0.0;   ///< planner-resolved spill ratio (never negative)
  std::size_t slice_w = 0;   ///< planner-resolved k-slice width
  std::size_t n_chunk = 0;   ///< planner-resolved 3D C-chunk width (0 = whole)
  bool charge_global_io = false;
  double theta_r = 1.0;
  double theta_w = 1.0;

  friend auto operator<=>(const ProfileKey&, const ProfileKey&) = default;

  /// Build the canonical key for a request: tuning fields come from the
  /// resolved `plan`, timing knobs the planner does not see (global-IO
  /// charging, bank-conflict factors) from the request itself.
  static ProfileKey make(Algo algo, const sim::DeviceSpec& dev, Precision prec,
                         std::size_t m, std::size_t n, std::size_t k,
                         const GemmOptions& opt, const Plan& plan) {
    return ProfileKey{dev.name,     prec,
                      algo,         m,
                      n,            k,
                      plan.p,       plan.smem_ratio,
                      plan.slice_w, plan.n_chunk,
                      opt.charge_global_io,
                      opt.theta_r,  opt.theta_w};
  }
};

/// A cached simulation outcome: the profile plus the resolved tuning
/// parameters (the planner's answers for warps=0 / smem_ratio<0 requests).
struct CachedProfile {
  sim::KernelProfile profile;
  int warps = 0;
  double smem_ratio = 0.0;
};

class ProfileCache {
 public:
  explicit ProfileCache(std::size_t capacity = 4096);

  /// Lookup; counts a hit or miss, promotes hits to most-recently-used.
  /// Copy-out: the returned value stays valid across later insert()/clear().
  std::optional<CachedProfile> find(const ProfileKey& key);

  /// Insert (or overwrite) an entry, evicting the least-recently-used entry
  /// when at capacity.
  void insert(const ProfileKey& key, const CachedProfile& value);

  /// Copy-out peek for observers (the serving layer's plan estimate, the
  /// analytic planner's fast path): no hit/miss counters, no LRU promotion —
  /// find() semantics are unchanged. This replaces the old `contains()`:
  /// a presence check followed by a later lookup was a TOCTOU under
  /// concurrent eviction, whereas one locked copy-out can never observe an
  /// entry that a racing insert()/clear() then invalidates.
  std::optional<CachedProfile> try_get(const ProfileKey& key) const;

  /// Key-ordered snapshot of every entry (the predictor's calibration
  /// harvest). Copy-out, like every other accessor.
  std::vector<std::pair<ProfileKey, CachedProfile>> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

  /// The process-wide cache the library-level consumers share.
  static ProfileCache& global();

 private:
  using Entry = std::pair<ProfileKey, CachedProfile>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<ProfileKey, std::list<Entry>::iterator> index_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Gauge& size_gauge_;
};

/// Cycle profile of (algo, dev, m, n, k, opt), served from `cache` or
/// produced by one TimingOnly simulation on zero-filled operands (values
/// cannot affect timing). Throws PreconditionError for infeasible
/// configurations, exactly as the Full kernel would.
///
/// Exception safety: the simulation runs to completion *before* insert(), so
/// a run that throws mid-execution (planner rejection, injected fault,
/// deadline abort) leaves the cache untouched — there is no partial or
/// poisoned entry to serve later callers (regression-tested in
/// tests/core/profile_cache_test.cpp).
template <Scalar T>
CachedProfile timing_profile(ProfileCache& cache, Algo algo, const sim::DeviceSpec& dev,
                             std::size_t m, std::size_t n, std::size_t k,
                             GemmOptions opt = {}) {
  opt.mode = sim::ExecMode::TimingOnly;
  opt.record_trace = false;
  opt.record_regions = false;
  // Resolve the plan first: the canonical key dedups requests that map to the
  // same configuration, and infeasible requests throw here — before the cache
  // is touched — exactly as the kernel itself would.
  const Plan plan = plan_gemm(algo, dev, num_traits<T>::precision, m, n, k, opt);
  const ProfileKey key =
      ProfileKey::make(algo, dev, num_traits<T>::precision, m, n, k, opt, plan);
  if (std::optional<CachedProfile> hit = cache.find(key)) return *hit;
  const Matrix<T> A(m, k), B(k, n);
  const GemmResult<T> r = kami::gemm(algo, dev, A, B, opt);
  const CachedProfile entry{r.profile, r.warps, r.smem_ratio};
  cache.insert(key, entry);
  return entry;
}

}  // namespace kami::core
