// ProfileCache: memoized TimingOnly kernel profiles.
//
// A block's cycle profile depends only on (device, precision, shape, algo,
// tuning options) — never on operand values — so one TimingOnly simulation
// per distinct key serves every later consumer: autotune candidates,
// batched sweep points, and the bench binaries' repeated shapes. The cache
// is a small LRU keyed by that fingerprint and instrumented with
// profile_cache.{hits,misses,inserts,evictions} counters plus a size gauge.
#pragma once

#include <cstddef>
#include <list>
#include <map>

#include "core/kami.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

/// Everything that can change a kernel's cycle profile. Options fields that
/// only affect reporting (record_trace/record_regions/mode) are excluded.
struct ProfileKey {
  std::string device;
  Precision precision = Precision::FP16;
  Algo algo = Algo::OneD;
  std::size_t m = 0, n = 0, k = 0;
  int warps = 0;              ///< as requested (0 = auto)
  double smem_ratio = -1.0;   ///< as requested (negative = auto)
  std::size_t slice_pref = 16;
  bool charge_global_io = false;
  double theta_r = 1.0;
  double theta_w = 1.0;

  friend auto operator<=>(const ProfileKey&, const ProfileKey&) = default;

  static ProfileKey make(Algo algo, const sim::DeviceSpec& dev, Precision prec,
                         std::size_t m, std::size_t n, std::size_t k,
                         const GemmOptions& opt) {
    return ProfileKey{dev.name,  prec,           algo,
                      m,         n,              k,
                      opt.warps, opt.smem_ratio, opt.slice_pref,
                      opt.charge_global_io,      opt.theta_r,
                      opt.theta_w};
  }
};

/// A cached simulation outcome: the profile plus the resolved tuning
/// parameters (the planner's answers for warps=0 / smem_ratio<0 requests).
struct CachedProfile {
  sim::KernelProfile profile;
  int warps = 0;
  double smem_ratio = 0.0;
};

class ProfileCache {
 public:
  explicit ProfileCache(std::size_t capacity = 4096);

  /// Lookup; counts a hit or miss, promotes hits to most-recently-used.
  /// The pointer is valid until the next insert()/clear().
  const CachedProfile* find(const ProfileKey& key);

  /// Insert (or overwrite) an entry, evicting the least-recently-used entry
  /// when at capacity.
  void insert(const ProfileKey& key, const CachedProfile& value);

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

  /// The process-wide cache the library-level consumers share.
  static ProfileCache& global();

 private:
  using Entry = std::pair<ProfileKey, CachedProfile>;

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<ProfileKey, std::list<Entry>::iterator> index_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Gauge& size_gauge_;
};

/// Cycle profile of (algo, dev, m, n, k, opt), served from `cache` or
/// produced by one TimingOnly simulation on zero-filled operands (values
/// cannot affect timing). Throws PreconditionError for infeasible
/// configurations, exactly as the Full kernel would.
template <Scalar T>
CachedProfile timing_profile(ProfileCache& cache, Algo algo, const sim::DeviceSpec& dev,
                             std::size_t m, std::size_t n, std::size_t k,
                             GemmOptions opt = {}) {
  opt.mode = sim::ExecMode::TimingOnly;
  opt.record_trace = false;
  opt.record_regions = false;
  const ProfileKey key =
      ProfileKey::make(algo, dev, num_traits<T>::precision, m, n, k, opt);
  if (const CachedProfile* hit = cache.find(key)) return *hit;
  const Matrix<T> A(m, k), B(k, n);
  const GemmResult<T> r = kami::gemm(algo, dev, A, B, opt);
  const CachedProfile entry{r.profile, r.warps, r.smem_ratio};
  cache.insert(key, entry);
  return entry;
}

}  // namespace kami::core
