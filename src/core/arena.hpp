// Batch-lifetime arena allocator for the numeric fast path.
//
// The NumericsOnly path needs four scratch buffers per call (decoded A/B,
// accumulators, 3D partials) and batched drivers call it once per entry —
// thousands of allocations per batch if each call hits the heap. The arena
// replaces that with bump allocation out of a small set of retained chunks:
//
//   * allocate() is a pointer bump (amortized: a new chunk doubles until the
//     request fits);
//   * ArenaScope marks on entry and rewinds on exit, so nested callers
//     (batched entry -> numeric path) reuse the same bytes entry after entry
//     with zero heap traffic after warm-up;
//   * when the outermost scope closes, capacity beyond `retain_bytes` is
//     returned to the heap. This is the fix for the old thread_local-vector
//     scratch, which grew to the high-water shape and pinned that memory for
//     the life of every serving thread.
//
// Thread model: one arena per thread (Arena::tls()); execution-engine
// workers therefore each keep an independent arena, exactly like the old
// thread_local vectors, and no locking is needed. Scope exits publish
// `arena.bytes_allocated` / `arena.high_water_bytes` / `arena.chunks_mapped`
// into the current MetricRegistry so arena behaviour shows up in every
// exported run report.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace kami::core {

class Arena {
 public:
  /// Capacity kept across reset(); anything above this is freed when the
  /// outermost scope closes (long-lived serving threads shed peak-shape
  /// memory instead of pinning it forever).
  static constexpr std::size_t kDefaultRetainBytes = 8u << 20;
  static constexpr std::size_t kMinChunkBytes = 64u << 10;

  explicit Arena(std::size_t retain_bytes = kDefaultRetainBytes)
      : retain_bytes_(retain_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (power of two). Never returns
  /// nullptr; zero-byte requests yield a valid unique pointer.
  void* allocate(std::size_t bytes, std::size_t align);

  template <typename T>
  T* alloc(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
    std::size_t live = 0;
  };
  Mark mark() const noexcept { return {active_, active_used(), live_bytes_}; }

  /// Rewind to a mark taken earlier on this arena. When the rewind empties
  /// the arena, capacity beyond retain_bytes is freed.
  void rewind(const Mark& m);

  std::size_t live_bytes() const noexcept { return live_bytes_; }
  std::size_t capacity_bytes() const noexcept;
  std::size_t high_water_bytes() const noexcept { return high_water_bytes_; }
  /// Total bytes handed out over the arena's lifetime (monotonic).
  std::size_t total_allocated_bytes() const noexcept { return total_allocated_; }
  /// Heap chunks mapped over the arena's lifetime (monotonic).
  std::size_t chunks_mapped() const noexcept { return chunks_mapped_; }

  void set_retain_bytes(std::size_t bytes) noexcept { retain_bytes_ = bytes; }
  std::size_t retain_bytes() const noexcept { return retain_bytes_; }

  /// The calling thread's arena (one per thread, engine workers included).
  static Arena& tls();

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t active_used() const noexcept {
    return chunks_.empty() ? 0 : chunks_[active_].used;
  }
  void trim();

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::size_t total_allocated_ = 0;
  std::size_t chunks_mapped_ = 0;
  std::size_t retain_bytes_;
};

/// RAII scope over an arena: marks on construction, rewinds on destruction,
/// and publishes the scope's allocation stats to the current MetricRegistry.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena = Arena::tls())
      : arena_(arena), mark_(arena.mark()),
        allocated_before_(arena.total_allocated_bytes()) {}
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
  std::size_t allocated_before_;
};

}  // namespace kami::core
