#include "core/kami.hpp"

namespace kami {

const char* algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::OneD: return "KAMI-1D";
    case Algo::TwoD: return "KAMI-2D";
    case Algo::ThreeD: return "KAMI-3D";
  }
  return "?";
}

}  // namespace kami
