#include "core/profile_cache.hpp"

namespace kami::core {

ProfileCache::ProfileCache(std::size_t capacity)
    : capacity_(capacity),
      hits_(obs::MetricRegistry::global().counter("profile_cache.hits")),
      misses_(obs::MetricRegistry::global().counter("profile_cache.misses")),
      inserts_(obs::MetricRegistry::global().counter("profile_cache.inserts")),
      evictions_(obs::MetricRegistry::global().counter("profile_cache.evictions")),
      size_gauge_(obs::MetricRegistry::global().gauge("profile_cache.size")) {
  KAMI_REQUIRE(capacity_ >= 1, "cache capacity must be positive");
}

std::optional<CachedProfile> ProfileCache::find(const ProfileKey& key) {
  const std::scoped_lock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.increment();
    return std::nullopt;
  }
  hits_.increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->second;
}

void ProfileCache::insert(const ProfileKey& key, const CachedProfile& value) {
  const std::scoped_lock lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.increment();
  }
  lru_.emplace_front(key, value);
  index_.emplace(key, lru_.begin());
  inserts_.increment();
  size_gauge_.set(static_cast<double>(index_.size()));
}

std::optional<CachedProfile> ProfileCache::try_get(const ProfileKey& key) const {
  const std::scoped_lock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second->second;
}

std::vector<std::pair<ProfileKey, CachedProfile>> ProfileCache::snapshot() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<ProfileKey, CachedProfile>> out;
  out.reserve(index_.size());
  for (const auto& [key, it] : index_) out.emplace_back(key, it->second);
  return out;
}

std::size_t ProfileCache::size() const {
  const std::scoped_lock lock(mu_);
  return index_.size();
}

void ProfileCache::clear() {
  const std::scoped_lock lock(mu_);
  lru_.clear();
  index_.clear();
  size_gauge_.set(0.0);
}

ProfileCache& ProfileCache::global() {
  static ProfileCache cache;
  return cache;
}

}  // namespace kami::core
