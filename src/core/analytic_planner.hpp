// The calibrated analytic fast path for launch planning.
//
// Three ways to answer "how long will this block run?", fastest first:
//
//   1. Cache     — the exact planner-canonical key is in the ProfileCache:
//                  copy the simulated profile out (ns, exact).
//   2. Analytic  — the model::Predictor's bucket for (device, algo,
//                  precision, warp count, IO-charging) is calibrated and
//                  confident:
//                  corrected closed-form T_all (ns, within the bucket's
//                  calibrated band).
//   3. Simulated — neither holds: one TimingOnly simulation (ms), which both
//                  warms the cache and feeds the predictor, so the same
//                  question is answered by (1)/(2) from then on.
//
// estimate_plan() stops after (2) and never simulates — the serving hot
// path's contract. plan_cycles() falls through to (3) — the autotuner's and
// offline planners' contract. Every decision is recorded through
// obs::MetricRegistry: model.predictions / model.fallbacks / model.cache_hits
// counters and the model.prediction_error_pct histogram, so the
// analytic-vs-simulated split shows up in every kami.obs.run export.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>

#include "core/profile_cache.hpp"
#include "model/predictor.hpp"
#include "obs/metrics.hpp"

namespace kami::core {

enum class PlanSource {
  Cache,      ///< exact simulated profile from the ProfileCache
  Analytic,   ///< confident corrected closed form
  Simulated,  ///< TimingOnly fallback simulation ran
  Unplanned,  ///< estimate-only path with a cold/untrusted bucket
};

const char* plan_source_name(PlanSource s) noexcept;

/// One fast-path planning answer.
struct PlanEstimate {
  PlanSource source = PlanSource::Unplanned;
  double cycles = 0.0;           ///< block latency estimate (the raw corrected
                                 ///< formula when Unplanned — untrusted)
  model::Prediction prediction;  ///< always filled (raw analytic at minimum)
  Plan plan;                     ///< planner-resolved configuration
  std::optional<CachedProfile> profile;  ///< set for Cache / Simulated
};

/// The GemmOptions subset the closed forms see.
model::PredictOptions predict_options(const GemmOptions& opt);

/// Reinterpret one cache entry as a calibration observation.
model::Observation observation_from(const ProfileKey& key, const CachedProfile& value);

/// Harvest every cached TimingOnly profile into the predictor. Entries are
/// fed in key order (the fit is order-independent anyway). Returns the number
/// of observations fed.
std::size_t calibrate_from_cache(model::Predictor& pred, const ProfileCache& cache);

/// Cheap latency estimate that NEVER simulates: cache, then the calibrated
/// formula, else Unplanned. Throws exactly when plan_gemm does (infeasible
/// configurations). This is the serving hot path.
PlanEstimate estimate_plan(const ProfileCache& cache, const model::Predictor& pred,
                           Algo algo, const sim::DeviceSpec& dev, Precision prec,
                           std::size_t m, std::size_t n, std::size_t k,
                           const GemmOptions& opt);

/// Device-level throughput the analytic model predicts for a resolved plan
/// under `blocks` concurrent blocks: the closed-form latency and port terms
/// assembled into a synthetic KernelProfile and pushed through the same
/// occupancy/steady-state pipeline as simulated profiles, so analytic and
/// simulated candidates rank on the same scale. (The autotuner's prescreen
/// metric.)
double predicted_tflops(const sim::DeviceSpec& dev, Precision prec,
                        const Plan& plan, std::size_t m, std::size_t n,
                        std::size_t k, const model::Prediction& prediction,
                        const GemmOptions& opt, std::size_t blocks);

/// Latency estimate with a TimingOnly fallback: estimate_plan(), and when
/// that comes back Unplanned, simulate once, warm the cache, and feed the
/// outcome back into the predictor. The prediction-error histogram gets a
/// sample whenever a calibrated prediction meets a ground-truth latency.
template <Scalar T>
PlanEstimate plan_cycles(ProfileCache& cache, model::Predictor& pred, Algo algo,
                         const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                         std::size_t k, GemmOptions opt = {}) {
  PlanEstimate est = estimate_plan(cache, pred, algo, dev, num_traits<T>::precision,
                                   m, n, k, opt);
  if (est.source != PlanSource::Unplanned) return est;

  const CachedProfile prof = timing_profile<T>(cache, algo, dev, m, n, k, opt);
  est.source = PlanSource::Simulated;
  est.cycles = prof.profile.latency;
  est.profile = prof;
  obs::MetricRegistry::current().counter("model.fallbacks").increment();
  if (est.prediction.calibrated && prof.profile.latency > 0.0)
    obs::MetricRegistry::current()
        .histogram("model.prediction_error_pct")
        .observe(100.0 * std::abs(prof.profile.latency - est.prediction.cycles) /
                 prof.profile.latency);
  if (prof.profile.latency > 0.0) {
    model::Observation o;
    o.device = dev.name;
    o.algo = algo;
    o.precision = num_traits<T>::precision;
    o.m = m;
    o.n = n;
    o.k = k;
    o.p = est.plan.p;
    o.options = predict_options(opt);
    o.simulated_cycles = prof.profile.latency;
    pred.observe(o);
  }
  return est;
}

}  // namespace kami::core
