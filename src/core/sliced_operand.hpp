// Register/shared-memory cooperation (§4.7).
//
// Matrices larger than the register file are sliced along the k dimension in
// MMA-granularity slices (default width 16, "to align with the MMA unit
// granularity"); a tunable fraction of slices per stage chunk is spilled to a
// per-warp private shared-memory region. SlicedOperand owns one warp's
// resident fragment plus its spill tiles and serves slices to the kernels:
// resident slices as register views, spilled slices as charged shared-memory
// reads. The spill ratio is the Fig 10 tuning knob.
#pragma once

#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "sim/block.hpp"
#include "types/matrix.hpp"

namespace kami::core {

enum class SliceAxis : std::uint8_t { Cols, Rows };

/// Largest divisor of `chunk` that is <= `preferred` (16 by default): keeps
/// slices aligned to the MMA k granularity while handling chunks like 24.
std::size_t pick_slice_width(std::size_t chunk, std::size_t preferred = 16);

/// Static description of a sliced operand; also used by the demand planner
/// before any allocation happens.
struct SliceLayout {
  std::size_t rows = 0;
  std::size_t cols = 0;
  SliceAxis axis = SliceAxis::Cols;
  std::size_t slice_w = 0;       ///< extent of one slice along `axis`
  std::size_t n_slices = 0;
  std::size_t chunk_slices = 0;  ///< slices per stage chunk (spill pattern period)
  std::size_t resident_per_chunk = 0;

  static SliceLayout make(std::size_t rows, std::size_t cols, SliceAxis axis,
                          std::size_t slice_w, std::size_t chunk_slices, double smem_ratio);

  bool is_resident(std::size_t s) const;
  /// Index of slice `s` among resident slices (packing offset); only valid
  /// when is_resident(s).
  std::size_t resident_index(std::size_t s) const;

  std::size_t resident_slices_total() const;
  std::size_t spilled_slices_total() const { return n_slices - resident_slices_total(); }

  std::size_t slice_rows() const { return axis == SliceAxis::Rows ? slice_w : rows; }
  std::size_t slice_cols() const { return axis == SliceAxis::Cols ? slice_w : cols; }
  std::size_t slice_elems() const { return slice_rows() * slice_cols(); }

  std::size_t reg_bytes(std::size_t elem_bytes) const {
    return resident_slices_total() * slice_elems() * elem_bytes;
  }
  std::size_t smem_bytes(std::size_t elem_bytes) const {
    return spilled_slices_total() * slice_elems() * elem_bytes;
  }
};

template <Scalar T>
class SlicedOperand {
 public:
  /// Materialize one warp's operand from the host matrix window at (r0, c0).
  /// Placement costs follow the warp's gmem-charging mode: in the paper's
  /// block-level loop the data is already resident and placement is free;
  /// batched drivers charge the global loads and spill writes.
  SlicedOperand(sim::Warp& w, sim::SharedMemory& smem, const SliceLayout& lay,
                const Matrix<T>& src, std::size_t r0, std::size_t c0)
      : lay_(lay),
        frag_(w.regs(),
              lay.axis == SliceAxis::Rows ? lay.resident_slices_total() * lay.slice_w
                                          : lay.rows,
              lay.axis == SliceAxis::Cols ? lay.resident_slices_total() * lay.slice_w
                                          : lay.cols) {
    spill_.reserve(lay_.spilled_slices_total());
    const std::size_t slice_bytes = lay_.slice_elems() * sizeof(T);
    for (std::size_t s = 0; s < lay_.n_slices; ++s) {
      const auto [sr, sc] = slice_origin(s);
      if (lay_.is_resident(s)) {
        // Pack into the resident fragment at the resident index. Source and
        // destination rows are both contiguous, so each slice row is one
        // memcpy (the seed packed element by element).
        if (w.numerics_enabled() && lay_.slice_cols() > 0) {
          const std::size_t off = lay_.resident_index(s) * lay_.slice_w;
          for (std::size_t r = 0; r < lay_.slice_rows(); ++r) {
            const std::size_t fr = lay_.axis == SliceAxis::Rows ? off + r : r;
            const std::size_t fc = lay_.axis == SliceAxis::Cols ? off : 0;
            std::memcpy(frag_.row_data(fr) + fc, &src(r0 + sr + r, c0 + sc),
                        lay_.slice_cols() * sizeof(T));
          }
        }
        w.charge_global_traffic(slice_bytes);
      } else {
        // The tile is allocated in every mode so smem feasibility (and the
        // overflow error) is mode-independent; only the byte fill is skipped.
        // Rows stream from the source matrix straight into the tile — the
        // seed staged each slice through a per-call std::vector.
        auto tile = smem.alloc<T>(lay_.slice_rows(), lay_.slice_cols());
        if (w.numerics_enabled() && lay_.slice_cols() > 0)
          for (std::size_t r = 0; r < lay_.slice_rows(); ++r)
            smem.write_row(tile, r, &src(r0 + sr + r, c0 + sc), lay_.slice_cols());
        if (w.gmem_charging()) {
          w.charge_global_traffic(slice_bytes);
          w.charge_smem_write_traffic(slice_bytes);
        }
        spill_.push_back(tile);
      }
    }
  }

  const SliceLayout& layout() const noexcept { return lay_; }

  /// Register view of a resident slice.
  sim::FragView<T> resident_slice(std::size_t s) const {
    KAMI_REQUIRE(lay_.is_resident(s));
    const std::size_t off = lay_.resident_index(s) * lay_.slice_w;
    if (lay_.axis == SliceAxis::Cols)
      return frag_.view(0, off, lay_.rows, lay_.slice_w);
    return frag_.view(off, 0, lay_.slice_w, lay_.cols);
  }

  /// Shared-memory tile of a spilled slice (readable by any warp).
  const sim::SmemTile<T>& spilled_slice(std::size_t s) const {
    KAMI_REQUIRE(!lay_.is_resident(s));
    return spill_.at(spill_index(s));
  }

  /// Fetch slice `s` into `scratch` for compute: a register view copy for
  /// resident slices (cheap Reg2Reg) or a charged shared-memory read.
  void fetch_slice(sim::Warp& w, std::size_t s, sim::Fragment<T>& scratch,
                   double theta_r = 1.0) const {
    KAMI_REQUIRE(scratch.rows() == lay_.slice_rows() && scratch.cols() == lay_.slice_cols());
    if (lay_.is_resident(s)) {
      w.copy_reg(scratch, resident_slice(s));
    } else {
      w.load_smem(scratch, spilled_slice(s), theta_r);
    }
  }

 private:
  std::pair<std::size_t, std::size_t> slice_origin(std::size_t s) const {
    return lay_.axis == SliceAxis::Cols ? std::pair{std::size_t{0}, s * lay_.slice_w}
                                        : std::pair{s * lay_.slice_w, std::size_t{0}};
  }

  std::size_t spill_index(std::size_t s) const {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < s; ++i)
      if (!lay_.is_resident(i)) ++idx;
    return idx;
  }

  SliceLayout lay_;
  sim::Fragment<T> frag_;
  std::vector<sim::SmemTile<T>> spill_;
};

}  // namespace kami::core
