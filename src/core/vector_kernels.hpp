// Portable SIMD primitives shared by every numeric data plane: the
// NumericsOnly fast path (core/numeric_path.hpp) and the Full-mode simulator
// fragment ops (sim/warp.hpp) both compile against these kernels, so "Full is
// bit-identical to NumericsOnly" holds by construction — the two paths run
// the same multiply-add chains through the same functions.
//
// Bit-identity contract (the reason these loops look the way they do):
//   * accumulate_row_tile vectorizes over j — C columns — and each vector
//     lane carries exactly one (i, j) accumulator through the k extent in
//     ascending order. Lanes never exchange or re-associate values, so each
//     lane performs the same single-rounded multiply-add sequence the scalar
//     loop performs, and the j-tail that doesn't fill a vector runs the same
//     chain in scalar registers. Vector width, register blocking, and tail
//     handling therefore cannot change any bit of any C element (the
//     differential harness and the KAMI_NO_SIMD CI job pin this).
//   * add_span is element-wise (c[i] += p[i]): no reduction tree, no
//     re-association, so the SIMD and scalar forms agree bit-for-bit.
//   * simd_splat broadcasts by lane assignment (not `v + x`, which would
//     quietly turn -0.0 into +0.0 and flip downstream product signs).
#pragma once

#include <cstddef>
#include <cstring>

namespace kami::core {

/// k-tile width for the accumulate loops: a tile of B rows
/// (kNumericKTile x n accumulators) stays cache-resident while every row of
/// C sweeps it, instead of streaming the whole k extent per C row. Tiling
/// only regroups the i/k loop nest — each (i, j) element still accumulates
/// over ascending k, so results are bit-identical (differential-tested).
inline constexpr std::size_t kNumericKTile = 64;

namespace detail {

#if !defined(KAMI_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define KAMI_NUMERIC_SIMD 1

template <typename Acc>
struct SimdVec;
template <>
struct SimdVec<float> {
  typedef float type __attribute__((vector_size(32)));
};
template <>
struct SimdVec<double> {
  typedef double type __attribute__((vector_size(32)));
};

template <typename Acc>
inline constexpr std::size_t kSimdWidth =
    sizeof(typename SimdVec<Acc>::type) / sizeof(Acc);

/// Broadcast by lane assignment (not `v + x`, which would quietly turn -0.0
/// into +0.0 and flip downstream product signs).
template <typename Acc>
inline typename SimdVec<Acc>::type simd_splat(Acc x) noexcept {
  typename SimdVec<Acc>::type v{};
  for (std::size_t l = 0; l < kSimdWidth<Acc>; ++l) v[l] = x;
  return v;
}
#endif

/// crow[j] += sum_{kk in [kt, kend)} arow[kk] * bf[kk*n + j], accumulated in
/// ascending kk per element. The SIMD form register-blocks two vectors of C
/// columns across the whole k-tile (C is loaded/stored once per tile instead
/// of once per kk); every lane still runs the scalar chain.
template <typename Acc>
inline void accumulate_row_tile(Acc* __restrict__ crow, const Acc* __restrict__ arow,
                                const Acc* __restrict__ bf, std::size_t kt,
                                std::size_t kend, std::size_t n) {
#ifdef KAMI_NUMERIC_SIMD
  using V = typename SimdVec<Acc>::type;
  constexpr std::size_t W = kSimdWidth<Acc>;
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    V c0, c1;
    std::memcpy(&c0, crow + j, sizeof(V));
    std::memcpy(&c1, crow + j + W, sizeof(V));
    for (std::size_t kk = kt; kk < kend; ++kk) {
      const V av = simd_splat(arow[kk]);
      const Acc* brow = bf + kk * n + j;
      V b0, b1;
      std::memcpy(&b0, brow, sizeof(V));
      std::memcpy(&b1, brow + W, sizeof(V));
      c0 += av * b0;
      c1 += av * b1;
    }
    std::memcpy(crow + j, &c0, sizeof(V));
    std::memcpy(crow + j + W, &c1, sizeof(V));
  }
  if (j + W <= n) {
    V c0;
    std::memcpy(&c0, crow + j, sizeof(V));
    for (std::size_t kk = kt; kk < kend; ++kk) {
      const V av = simd_splat(arow[kk]);
      V b0;
      std::memcpy(&b0, bf + kk * n + j, sizeof(V));
      c0 += av * b0;
    }
    std::memcpy(crow + j, &c0, sizeof(V));
    j += W;
  }
  for (; j < n; ++j) {
    Acc cj = crow[j];
    for (std::size_t kk = kt; kk < kend; ++kk) cj += arow[kk] * bf[kk * n + j];
    crow[j] = cj;
  }
#else
  // Scalar fallback (KAMI_NO_SIMD or non-GNU compiler): the original loop
  // nest. The compiler may still auto-vectorize it — that is fine, because
  // the per-element chains above are what define the result bits.
  for (std::size_t kk = kt; kk < kend; ++kk) {
    const Acc av = arow[kk];
    const Acc* brow = bf + kk * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
  }
#endif
}

/// dst[i] += src[i] element-wise in accumulator precision. Used by the
/// Full-mode add_inplace/add_inplace_at vector ops. No re-association, so
/// SIMD and scalar builds agree bit-for-bit. dst and src must either be
/// disjoint or identical ranges (the in-order scalar loop and the blocked
/// SIMD loop agree for both).
template <typename Acc>
inline void add_span(Acc* dst, const Acc* src, std::size_t n) {
#ifdef KAMI_NUMERIC_SIMD
  using V = typename SimdVec<Acc>::type;
  constexpr std::size_t W = kSimdWidth<Acc>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    V d, s;
    std::memcpy(&d, dst + i, sizeof(V));
    std::memcpy(&s, src + i, sizeof(V));
    d += s;
    std::memcpy(dst + i, &d, sizeof(V));
  }
  for (; i < n; ++i) dst[i] += src[i];
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
#endif
}

}  // namespace detail

/// Width (in accumulator lanes) of the explicit SIMD kernel, 1 when the
/// scalar fallback is compiled in. Exported so benchmarks can stamp the
/// SIMD configuration into their run-report meta.
template <typename Acc>
inline constexpr std::size_t numeric_simd_lanes =
#ifdef KAMI_NUMERIC_SIMD
    detail::kSimdWidth<Acc>;
#else
    1;
#endif

inline const char* numeric_simd_name() noexcept {
#ifdef KAMI_NUMERIC_SIMD
  return "vector-ext-32B";
#else
  return "scalar";
#endif
}

}  // namespace kami::core
