// KAMI-3D.
//
// p warps form a cbrt(p)^3 cube indexed (i, j, l). A is partitioned into
// c x c blocks A(i, s) and B into B(s, j) with c = cbrt(p); warp (i, j, l)
// computes the single exact product A(i, l) x B(l, j) — layer l covers the
// l-th k-segment — and the per-(i, j) partials are reduced across layers.
//
// Communication, all through shared memory and sliced along k:
//   * A(i, l), held by warp (i, l, l), broadcasts to the other warps in the
//     same row and layer (j != l);
//   * B(l, j), held by warp (l, j, l), broadcasts to the same column/layer
//     (i != l);
//   * the inter-layer C reduction streams partial tiles in column chunks to
//     bound shared-memory footprint.
//
// When the per-warp C block exceeds the register file (e.g. FP64 at order
// 128, where a 64x64 FP64 accumulator alone needs 256 registers/thread),
// the planner selects an n-chunked plan: C is produced in column chunks,
// with A re-broadcast once per chunk — the §4.7 "fallback to shared memory"
// applied to the output operand.
//
// This is the mathematically exact classic 3D CA algorithm; the paper's
// Algorithm 3 as printed would recompute each product cbrt(p)-fold (see
// DESIGN.md). Aggregate A/B communication volume equals formula (9):
// (mk + kn) * s_e (times the chunk count for A when chunked).
#pragma once

#include <cstring>
#include <optional>
#include <vector>

#include "core/gemm.hpp"
#include "core/numeric_path.hpp"
#include "core/planner.hpp"
#include "core/sliced_operand.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::core {

template <Scalar T>
GemmResult<T> kami_3d_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                           const Matrix<T>& B, const GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");

  const Plan plan = plan_gemm(Algo::ThreeD, dev, num_traits<T>::precision, m, n, k, opt);

  // NumericsOnly: layer l is the exact partial over the l-th k-segment and
  // layers reduce in ascending order, which is precisely what the layered
  // numeric path computes.
  if (opt.mode == sim::ExecMode::NumericsOnly)
    return {numeric_gemm(A, B, static_cast<std::size_t>(plan.grid)), {}, plan.p,
            plan.smem_ratio, nullptr, nullptr};

  const auto p = static_cast<std::size_t>(plan.p);
  const auto c = static_cast<std::size_t>(plan.grid);
  const std::size_t mb = m / c, nb = n / c, kb = k / c;
  const std::size_t slices = kb / plan.slice_w;
  const std::size_t nc = plan.n_chunk == 0 ? nb : plan.n_chunk;  // C chunk width

  sim::ThreadBlock blk(dev, plan.p, opt.mode);
  blk.set_deadline(opt.deadline_cycles);
  if (opt.record_trace) blk.enable_trace();

  std::shared_ptr<obs::RegionProfiler> regions;
  if (opt.record_regions)
    regions = std::make_shared<obs::RegionProfiler>([&blk] { return blk.cycles(); });
  obs::RegionProfiler* rp = regions.get();

  const auto layer_of = [&](std::size_t id) { return id / (c * c); };
  const auto row_of = [&](std::size_t id) { return (id % (c * c)) / c; };
  const auto col_of = [&](std::size_t id) { return id % c; };
  const auto id_of = [&](std::size_t i, std::size_t j, std::size_t l) {
    return l * c * c + i * c + j;
  };

  // Only owner warps hold operands: warp (i, l, l) owns A(i, l) and warp
  // (l, j, l) owns B(l, j).
  std::vector<std::optional<SlicedOperand<T>>> Aop(p), Bop(p);
  std::vector<sim::Fragment<T>> ARecv;
  ARecv.reserve(p);

  obs::ScopedRegion r_kernel(rp, "kami_3d");
  {
    obs::ScopedRegion r_setup(rp, "setup");
    blk.phase([&](sim::Warp& w) {
      w.set_gmem_charging(opt.charge_global_io);
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
      if (j == l) Aop[id].emplace(w, blk.smem(), plan.a, A, i * mb, l * kb);
      if (i == l) Bop[id].emplace(w, blk.smem(), plan.b, B, l * kb, j * nb);
      ARecv.emplace_back(w.regs(), plan.a.slice_rows(), plan.a.slice_cols());
    });
    blk.sync();
  }

  // Broadcast buffers: one per (row, layer) for A, one per (col, layer) for
  // B (B buffers are chunk-width); plus the reduction staging tiles.
  std::vector<sim::SmemTile<T>> SmA, SmB;  // indexed [l * c + i] / [l * c + j]
  for (std::size_t g = 0; g < c * c; ++g) {
    SmA.push_back(blk.smem().alloc<T>(plan.a.slice_rows(), plan.a.slice_cols()));
    SmB.push_back(blk.smem().alloc<T>(plan.b.slice_rows(), nc));
  }
  const std::size_t red_cols = nc < 16 ? nc : 16;
  std::vector<sim::SmemTile<Acc>> SmP;  // one per (i, j)
  for (std::size_t g = 0; g < c * c; ++g)
    SmP.push_back(blk.smem().alloc<Acc>(mb, red_cols));

  GemmResult<T> out{Matrix<T>(m, n), {}, plan.p, plan.smem_ratio, nullptr, nullptr};

  for (std::size_t n0 = 0; n0 < nb; n0 += nc) {
    // Per-chunk accumulators and receive buffers.
    std::vector<sim::Fragment<Acc>> Ci;
    std::vector<sim::Fragment<T>> BRecv;
    Ci.reserve(p);
    BRecv.reserve(p);
    blk.phase([&](sim::Warp& w) {
      Ci.emplace_back(w.regs(), mb, nc);
      BRecv.emplace_back(w.regs(), plan.b.slice_rows(), nc);
    });

    for (std::size_t s = 0; s < slices; ++s) {
      const bool a_res = plan.a.is_resident(s);
      const bool b_res = plan.b.is_resident(s);

      // Write phase: owners publish slice s (A full-width; B only the
      // current column chunk).
      obs::ScopedRegion r_w(rp, "broadcast_write");
      blk.phase([&](sim::Warp& w) {
        const auto id = static_cast<std::size_t>(w.id());
        const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
        if (j == l) {
          if (a_res)
            w.store_smem(SmA[l * c + i], Aop[id]->resident_slice(s), opt.theta_w);
          Aop[id]->fetch_slice(w, s, ARecv[id], opt.theta_r);
        }
        if (i == l) {
          if (b_res) {
            w.store_smem(SmB[l * c + j],
                         Bop[id]->resident_slice(s).window(0, n0, plan.b.slice_rows(), nc),
                         opt.theta_w);
            w.copy_reg(BRecv[id],
                       Bop[id]->resident_slice(s).window(0, n0, plan.b.slice_rows(), nc));
          } else {
            // Spilled slice: pull the chunk columns from the spill region
            // (each chunk row is contiguous in B, so one memcpy per row).
            w.charge_smem_read_traffic(plan.b.slice_rows() * nc * sizeof(T), opt.theta_r);
            if (w.numerics_enabled())
              for (std::size_t rr = 0; rr < plan.b.slice_rows(); ++rr)
                std::memcpy(BRecv[id].row_data(rr),
                            &B(l * kb + s * plan.slice_w + rr, col_of(id) * nb + n0),
                            nc * sizeof(T));
          }
        }
      });
      blk.sync();
      r_w.close();

      // Read phase: same row+layer for A, same column+layer for B.
      obs::ScopedRegion r_r(rp, "broadcast_read");
      blk.phase([&](sim::Warp& w) {
        const auto id = static_cast<std::size_t>(w.id());
        const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
        if (j != l) {
          const std::size_t owner = id_of(i, l, l);
          if (a_res) {
            w.load_smem(ARecv[id], SmA[l * c + i], opt.theta_r);
          } else {
            w.load_smem(ARecv[id], Aop[owner]->spilled_slice(s), opt.theta_r);
          }
        }
        if (i != l) {
          if (b_res) {
            sim::SmemTile<T> tile = SmB[l * c + j];
            w.load_smem(BRecv[id], tile, opt.theta_r);
          } else {
            // Chunk columns straight from the owner's spill region.
            w.charge_smem_read_traffic(plan.b.slice_rows() * nc * sizeof(T), opt.theta_r);
            if (w.numerics_enabled())
              for (std::size_t rr = 0; rr < plan.b.slice_rows(); ++rr)
                std::memcpy(BRecv[id].row_data(rr),
                            &B(l * kb + s * plan.slice_w + rr, j * nb + n0),
                            nc * sizeof(T));
          }
        }
      });
      blk.sync();
      r_r.close();

      // Compute phase: one partial-product MMA per warp per slice.
      obs::ScopedRegion r_c(rp, "compute");
      blk.phase([&](sim::Warp& w) {
        const auto id = static_cast<std::size_t>(w.id());
        w.mma(Ci[id], ARecv[id].view(), BRecv[id].view());
      });
      blk.sync();
    }

    // Inter-layer reduction of this chunk: layer 0 accumulates layers
    // 1..c-1, streamed through shared memory in <=16-column pieces. The
    // ragged last piece (nc not a multiple of red_cols) gets its own
    // receive fragment, allocated once here rather than per reduce op —
    // the seed re-allocated it inside the piece loop, c-1 times per chunk.
    // Allocation order (Pscratch then Ptail, same phase) reproduces the
    // seed's peak register set exactly, so overflow behavior and the
    // profiled register high-water are unchanged.
    obs::ScopedRegion r_red(rp, "reduce");
    const std::size_t tail_cols = nc % red_cols;
    std::vector<std::optional<sim::Fragment<Acc>>> Pscratch(p), Ptail(p);
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      Pscratch[id].emplace(w.regs(), mb, red_cols);
      if (tail_cols != 0 && layer_of(id) == 0) Ptail[id].emplace(w.regs(), mb, tail_cols);
    });
    for (std::size_t l = 1; l < c; ++l) {
      for (std::size_t c0 = 0; c0 < nc; c0 += red_cols) {
        const std::size_t cw = (c0 + red_cols <= nc) ? red_cols : nc - c0;
        blk.phase([&](sim::Warp& w) {
          const auto id = static_cast<std::size_t>(w.id());
          if (layer_of(id) != l) return;
          const std::size_t i = row_of(id), j = col_of(id);
          auto tile = SmP[i * c + j];
          tile.cols = cw;
          w.store_smem(tile, Ci[id].view(0, c0, mb, cw), opt.theta_w);
        });
        blk.sync();
        blk.phase([&](sim::Warp& w) {
          const auto id = static_cast<std::size_t>(w.id());
          if (layer_of(id) != 0) return;
          const std::size_t i = row_of(id), j = col_of(id);
          auto tile = SmP[i * c + j];
          tile.cols = cw;
          auto& recv = cw == red_cols ? *Pscratch[id] : *Ptail[id];
          w.load_smem(recv, tile, opt.theta_r);
          w.add_inplace_at(Ci[id], 0, c0, recv.view());
        });
        blk.sync();
      }
    }

    r_red.close();

    // Store this chunk (layer 0 holds the reduced result).
    obs::ScopedRegion r_wb(rp, "writeback");
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      if (layer_of(id) != 0) return;
      w.store_global_narrowed(out.C, Ci[id], row_of(id) * mb, col_of(id) * nb + n0);
    });
    blk.sync();
  }
  r_kernel.close();

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  if (opt.record_trace) out.trace = blk.take_trace();
  if (regions) {
    regions->freeze();
    out.regions = regions;
  }
  return out;
}

}  // namespace kami::core
