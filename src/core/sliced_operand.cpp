#include "core/sliced_operand.hpp"

#include <cmath>

namespace kami::core {

std::size_t pick_slice_width(std::size_t chunk, std::size_t preferred) {
  KAMI_REQUIRE(chunk >= 1);
  if (chunk <= preferred) return chunk;
  for (std::size_t w = preferred; w >= 1; --w)
    if (chunk % w == 0) return w;
  return 1;  // unreachable: w == 1 always divides
}

SliceLayout SliceLayout::make(std::size_t rows, std::size_t cols, SliceAxis axis,
                              std::size_t slice_w, std::size_t chunk_slices,
                              double smem_ratio) {
  KAMI_REQUIRE(rows > 0 && cols > 0 && slice_w > 0);
  KAMI_REQUIRE(smem_ratio >= 0.0 && smem_ratio < 1.0, "smem ratio must be in [0,1)");
  const std::size_t extent = axis == SliceAxis::Cols ? cols : rows;
  KAMI_REQUIRE(extent % slice_w == 0, "slice width must divide the sliced extent");

  SliceLayout lay;
  lay.rows = rows;
  lay.cols = cols;
  lay.axis = axis;
  lay.slice_w = slice_w;
  lay.n_slices = extent / slice_w;
  lay.chunk_slices = chunk_slices == 0 ? lay.n_slices : chunk_slices;
  KAMI_REQUIRE(lay.n_slices % lay.chunk_slices == 0,
               "chunk size must divide the slice count");
  // Spill the trailing ceil(ratio * chunk) slices of every chunk; at least
  // one slice per chunk stays resident so compute can always stream.
  const auto spilled = static_cast<std::size_t>(
      std::ceil(smem_ratio * static_cast<double>(lay.chunk_slices)));
  lay.resident_per_chunk =
      lay.chunk_slices - (spilled >= lay.chunk_slices ? lay.chunk_slices - 1 : spilled);
  return lay;
}

bool SliceLayout::is_resident(std::size_t s) const {
  KAMI_ASSERT(s < n_slices);
  return (s % chunk_slices) < resident_per_chunk;
}

std::size_t SliceLayout::resident_index(std::size_t s) const {
  KAMI_ASSERT(is_resident(s));
  return (s / chunk_slices) * resident_per_chunk + (s % chunk_slices);
}

std::size_t SliceLayout::resident_slices_total() const {
  return (n_slices / chunk_slices) * resident_per_chunk;
}

}  // namespace kami::core
