#include "core/autotune.hpp"

namespace kami::core {

std::vector<TuneCandidate> default_candidates() {
  std::vector<TuneCandidate> out;
  for (int warps : {0, 2, 4, 8, 16}) out.push_back({Algo::OneD, warps, -1.0});
  for (int warps : {0, 4, 16}) out.push_back({Algo::TwoD, warps, -1.0});
  for (int warps : {0, 8, 27}) out.push_back({Algo::ThreeD, warps, -1.0});
  // The Fig 10 spill presets on the default warp counts.
  for (double ratio : {0.25, 0.5, 0.75}) out.push_back({Algo::OneD, 0, ratio});
  return out;
}

}  // namespace kami::core
