#include "core/autotune.hpp"

namespace kami::core {

int select_winner(const std::vector<TuneOutcome>& outcomes) {
  int winner = -1;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].feasible) continue;
    if (winner < 0 || outcomes[i].tflops > outcomes[static_cast<std::size_t>(winner)].tflops)
      winner = static_cast<int>(i);
  }
  return winner;
}

std::vector<TuneCandidate> default_candidates() {
  std::vector<TuneCandidate> out;
  for (int warps : {0, 2, 4, 8, 16}) out.push_back({Algo::OneD, warps, -1.0});
  for (int warps : {0, 4, 16}) out.push_back({Algo::TwoD, warps, -1.0});
  for (int warps : {0, 8, 27}) out.push_back({Algo::ThreeD, warps, -1.0});
  // The Fig 10 spill presets on the default warp counts.
  for (double ratio : {0.25, 0.5, 0.75}) out.push_back({Algo::OneD, 0, ratio});
  return out;
}

}  // namespace kami::core
