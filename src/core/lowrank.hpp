// Low-rank GEMM driver (§5.3, Fig 11).
//
// Low-rank multiplication C = U x V with U (m x k), V (k x n) and small k
// (16 or 32 in the paper) is exactly the workload KAMI's register-resident
// layout favors: shared-memory staging buys almost nothing when k is tiny,
// while KAMI loads operands straight into registers and uses shared memory
// only for the B broadcast.
#pragma once

#include "core/kami.hpp"

namespace kami::core {

/// C = U x V for thin inner dimension. KAMI-1D partitions the k dimension
/// across warps, so p is capped at k / slice granularity; the planner
/// handles that automatically, this wrapper only validates the shape.
template <Scalar T>
GemmResult<T> lowrank_gemm(const sim::DeviceSpec& dev, const Matrix<T>& U,
                           const Matrix<T>& V, Algo algo = Algo::OneD,
                           const GemmOptions& opt = {}) {
  KAMI_REQUIRE(U.cols() == V.rows(), "inner dimensions must agree");
  KAMI_REQUIRE(U.cols() <= 64, "low-rank driver expects a thin inner dimension");
  return gemm(algo, dev, U, V, opt);
}

/// Rank-k approximation helper: given dense D (m x n), build the best
/// rank-k factors by a deterministic truncated projection (first k columns
/// of D scaled — a stand-in for an SVD factorization pipeline) and multiply
/// them. Used by the low-rank example application.
template <Scalar T>
struct LowRankFactors {
  Matrix<T> U;  ///< m x k
  Matrix<T> V;  ///< k x n
};

}  // namespace kami::core
