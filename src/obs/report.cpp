#include "obs/report.hpp"

#include <cmath>
#include <ostream>

#include "util/table.hpp"

namespace kami::obs {

double UtilizationTimeline::busy_cycles(std::size_t resource) const {
  KAMI_REQUIRE(resource < busy.size());
  double acc = 0.0;
  for (const double frac : busy[resource]) acc += frac * bucket_cycles;
  return acc;
}

void RunReport::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

void RunReport::add_table(const std::string& title, const TablePrinter& table) {
  tables_.push_back(ReportTable{title, table.headers(), table.rows_data()});
}

const Breakdown* RunReport::find_breakdown(std::string_view name) const noexcept {
  for (const auto& b : breakdowns_)
    if (b.name == name) return &b;
  return nullptr;
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kRunSchemaName);
  doc.set("schema_version", kRunSchemaVersion);
  doc.set("name", name_);

  if (!meta_.empty()) {
    Json meta = Json::object();
    for (const auto& [k, v] : meta_) meta.set(k, v);
    doc.set("meta", std::move(meta));
  }

  if (!tables_.empty()) {
    Json tables = Json::array();
    for (const auto& t : tables_) {
      Json jt = Json::object();
      jt.set("title", t.title);
      Json headers = Json::array();
      for (const auto& h : t.headers) headers.push_back(h);
      jt.set("headers", std::move(headers));
      Json rows = Json::array();
      for (const auto& row : t.rows) {
        Json jrow = Json::array();
        for (const auto& cell : row) jrow.push_back(cell);
        rows.push_back(std::move(jrow));
      }
      jt.set("rows", std::move(rows));
      tables.push_back(std::move(jt));
    }
    doc.set("tables", std::move(tables));
  }

  if (!breakdowns_.empty()) {
    Json breakdowns = Json::array();
    for (const auto& b : breakdowns_) {
      Json jb = Json::object();
      jb.set("name", b.name);
      Json cats = Json::array();
      for (const auto& [cname, cycles] : b.categories) {
        Json jc = Json::object();
        jc.set("name", cname);
        jc.set("cycles", cycles);
        cats.push_back(std::move(jc));
      }
      jb.set("categories", std::move(cats));
      breakdowns.push_back(std::move(jb));
    }
    doc.set("breakdowns", std::move(breakdowns));
  }

  if (!metrics_.is_null()) doc.set("metrics", metrics_);
  if (!regions_.is_null()) doc.set("regions", regions_);
  if (!slo_.is_null()) doc.set("slo", slo_);

  if (utilization_) {
    Json ju = Json::object();
    ju.set("bucket_cycles", utilization_->bucket_cycles);
    ju.set("wall_cycles", utilization_->wall_cycles);
    Json resources = Json::array();
    for (std::size_t r = 0; r < utilization_->resources.size(); ++r) {
      Json jr = Json::object();
      jr.set("name", utilization_->resources[r]);
      Json busy = Json::array();
      for (const double frac : utilization_->busy[r]) busy.push_back(frac);
      jr.set("busy", std::move(busy));
      resources.push_back(std::move(jr));
    }
    ju.set("resources", std::move(resources));
    doc.set("utilization", std::move(ju));
  }
  return doc;
}

RunReport RunReport::from_json(const Json& doc) {
  if (!doc.is_object()) throw SchemaError("run document must be a JSON object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kRunSchemaName)
    throw SchemaError(std::string("not a ") + kRunSchemaName + " document");
  const Json* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number())
    throw SchemaError("missing schema_version");
  const int ver = static_cast<int>(version->as_number());
  if (ver < kRunSchemaMinVersion || ver > kRunSchemaVersion)
    throw SchemaError("unsupported schema_version " + json_number(version->as_number()) +
                      " (this build reads versions " +
                      std::to_string(kRunSchemaMinVersion) + ".." +
                      std::to_string(kRunSchemaVersion) + ")");

  RunReport report(doc.at("name").as_string());

  if (const Json* meta = doc.find("meta")) {
    for (const auto& [k, v] : meta->as_object()) report.set_meta(k, v.as_string());
  }

  if (const Json* tables = doc.find("tables")) {
    for (const auto& jt : tables->as_array()) {
      ReportTable t;
      t.title = jt.at("title").as_string();
      for (const auto& h : jt.at("headers").as_array()) t.headers.push_back(h.as_string());
      for (const auto& jrow : jt.at("rows").as_array()) {
        std::vector<std::string> row;
        for (const auto& cell : jrow.as_array()) row.push_back(cell.as_string());
        if (row.size() != t.headers.size())
          throw SchemaError("table \"" + t.title + "\" has a row of width " +
                            std::to_string(row.size()) + ", headers have " +
                            std::to_string(t.headers.size()));
        t.rows.push_back(std::move(row));
      }
      report.add_table(std::move(t));
    }
  }

  if (const Json* breakdowns = doc.find("breakdowns")) {
    for (const auto& jb : breakdowns->as_array()) {
      Breakdown b;
      b.name = jb.at("name").as_string();
      for (const auto& jc : jb.at("categories").as_array())
        b.categories.emplace_back(jc.at("name").as_string(), jc.at("cycles").as_number());
      report.add_breakdown(std::move(b));
    }
  }

  if (const Json* metrics = doc.find("metrics")) report.metrics_ = *metrics;
  if (const Json* regions = doc.find("regions")) report.regions_ = *regions;
  if (const Json* slo = doc.find("slo")) report.slo_ = *slo;

  if (const Json* ju = doc.find("utilization")) {
    UtilizationTimeline u;
    u.bucket_cycles = ju->at("bucket_cycles").as_number();
    u.wall_cycles = ju->at("wall_cycles").as_number();
    for (const auto& jr : ju->at("resources").as_array()) {
      u.resources.push_back(jr.at("name").as_string());
      std::vector<double> busy;
      for (const auto& frac : jr.at("busy").as_array()) busy.push_back(frac.as_number());
      u.busy.push_back(std::move(busy));
    }
    report.set_utilization(std::move(u));
  }
  return report;
}

void RunReport::write_json(std::ostream& os) const {
  to_json().dump(os, 2);
  os << '\n';
}

namespace {

std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void RunReport::write_csv(std::ostream& os) const {
  for (const auto& t : tables_) {
    os << "# " << t.title << '\n';
    for (std::size_t c = 0; c < t.headers.size(); ++c)
      os << (c ? "," : "") << csv_cell(t.headers[c]);
    os << '\n';
    for (const auto& row : t.rows) {
      for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << csv_cell(row[c]);
      os << '\n';
    }
    os << '\n';
  }
  for (const auto& b : breakdowns_) {
    os << "# breakdown: " << b.name << '\n';
    os << "category,cycles\n";
    for (const auto& [cname, cycles] : b.categories)
      os << csv_cell(cname) << ',' << json_number(cycles) << '\n';
    os << '\n';
  }
}

}  // namespace kami::obs
