// ScopedRegion / RegionProfiler: a hierarchical phase profiler keyed to
// *simulated* cycles.
//
// A kernel binds the profiler to its block clock (`[&blk]{ return
// blk.cycles(); }`) and brackets phases with ScopedRegion. Re-entering a
// name under the same parent aggregates (total += dt, count += 1), so a
// per-stripe loop collapses into one "broadcast_write" node with the loop's
// trip count. The result is a self-time/total-time tree (kernel -> phase),
// and a flat interval log that exporters correlate with the op-level trace
// to get the kernel -> phase -> op-kind level.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/require.hpp"

namespace kami::obs {

struct RegionNode {
  std::string name;
  double total_cycles = 0.0;  ///< summed inclusive time across entries
  std::size_t count = 0;      ///< times this region was entered
  std::vector<std::unique_ptr<RegionNode>> children;  // in first-entry order

  /// Inclusive time minus the children's inclusive time.
  double self_cycles() const noexcept {
    double c = total_cycles;
    for (const auto& ch : children) c -= ch->total_cycles;
    return c;
  }

  const RegionNode* find(std::string_view child_name) const noexcept {
    for (const auto& ch : children)
      if (ch->name == child_name) return ch.get();
    return nullptr;
  }
};

class RegionProfiler {
 public:
  using ClockFn = std::function<double()>;

  /// `clock` supplies the current simulated time; it is only called during
  /// enter()/leave(), never after freeze().
  explicit RegionProfiler(ClockFn clock) : clock_(std::move(clock)) {
    KAMI_REQUIRE(clock_ != nullptr, "region profiler needs a clock");
  }

  void enter(std::string_view name);
  void leave();

  /// Unbind the clock once the instrumented run is over, so the profiler
  /// can safely outlive the ThreadBlock its clock captured. All regions
  /// must be closed; enter()/leave() afterwards throw.
  void freeze();

  int depth() const noexcept { return static_cast<int>(stack_.size()); }

  /// Synthetic root ("" name) holding the top-level regions.
  const RegionNode& root() const noexcept { return root_; }

  /// One closed region occurrence, for timeline exporters.
  struct Interval {
    std::string path;  ///< slash-joined, e.g. "kami_1d/broadcast_write"
    int depth = 0;     ///< 1 = top level
    double start = 0.0;
    double end = 0.0;
  };
  const std::vector<Interval>& intervals() const noexcept { return intervals_; }

  /// Nested {name, count, total_cycles, self_cycles, children:[...]}.
  Json to_json() const;

 private:
  struct Open {
    RegionNode* node;
    double start;
    std::string path;
  };

  RegionNode root_{"", 0.0, 0, {}};
  std::vector<Open> stack_;
  std::vector<Interval> intervals_;
  ClockFn clock_;
  bool frozen_ = false;
};

/// RAII region bracket. The pointer form is a no-op on nullptr so kernels
/// can instrument unconditionally and pay nothing when profiling is off.
class ScopedRegion {
 public:
  ScopedRegion(RegionProfiler& prof, std::string_view name) : prof_(&prof) {
    prof_->enter(name);
  }
  ScopedRegion(RegionProfiler* prof, std::string_view name) : prof_(prof) {
    if (prof_ != nullptr) prof_->enter(name);
  }
  /// Leave the region early; the destructor then does nothing. Lets a
  /// kernel close its outermost region and freeze() the profiler before
  /// the ScopedRegion's scope ends.
  void close() {
    if (prof_ != nullptr) prof_->leave();
    prof_ = nullptr;
  }
  ~ScopedRegion() { close(); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  RegionProfiler* prof_;
};

}  // namespace kami::obs
