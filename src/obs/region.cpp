#include "obs/region.hpp"

namespace kami::obs {

void RegionProfiler::enter(std::string_view name) {
  KAMI_REQUIRE(!frozen_, "region profiler is frozen");
  KAMI_REQUIRE(!name.empty(), "region name must be non-empty");
  RegionNode* parent = stack_.empty() ? &root_ : stack_.back().node;
  RegionNode* node = nullptr;
  for (const auto& ch : parent->children) {
    if (ch->name == name) {
      node = ch.get();
      break;
    }
  }
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<RegionNode>());
    node = parent->children.back().get();
    node->name = std::string(name);
  }
  std::string path = stack_.empty() ? std::string(name)
                                    : stack_.back().path + "/" + std::string(name);
  stack_.push_back(Open{node, clock_(), std::move(path)});
}

void RegionProfiler::leave() {
  KAMI_REQUIRE(!frozen_, "region profiler is frozen");
  KAMI_REQUIRE(!stack_.empty(), "leave() without a matching enter()");
  const Open open = std::move(stack_.back());
  stack_.pop_back();
  const double now = clock_();
  KAMI_REQUIRE(now >= open.start, "region clock went backwards");
  open.node->total_cycles += now - open.start;
  open.node->count += 1;
  intervals_.push_back(
      Interval{open.path, static_cast<int>(stack_.size()) + 1, open.start, now});
}

void RegionProfiler::freeze() {
  KAMI_REQUIRE(stack_.empty(), "cannot freeze with open regions");
  frozen_ = true;
  clock_ = nullptr;
}

namespace {

Json node_json(const RegionNode& node) {
  Json j = Json::object();
  j.set("name", node.name);
  j.set("count", static_cast<double>(node.count));
  j.set("total_cycles", node.total_cycles);
  j.set("self_cycles", node.self_cycles());
  if (!node.children.empty()) {
    Json children = Json::array();
    for (const auto& ch : node.children) children.push_back(node_json(*ch));
    j.set("children", std::move(children));
  }
  return j;
}

}  // namespace

Json RegionProfiler::to_json() const {
  Json regions = Json::array();
  for (const auto& ch : root_.children) regions.push_back(node_json(*ch));
  return regions;
}

}  // namespace kami::obs
