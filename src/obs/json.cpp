#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace kami::obs {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw JsonError(std::string("JSON type mismatch: wanted ") + want + ", value is " +
                  names[static_cast<int>(got)]);
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (!is_number()) type_error("number", type_);
  return num_;
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string", type_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("array", type_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("object", type_);
  return obj_;
}

void Json::push_back(Json v) {
  if (!is_array()) type_error("array", type_);
  arr_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (!is_object()) type_error("object", type_);
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("JSON object has no key \"" + std::string(key) + "\"");
  return *v;
}

const Json& Json::at(std::size_t index) const {
  if (!is_array()) type_error("array", type_);
  if (index >= arr_.size())
    throw JsonError("JSON array index " + std::to_string(index) + " out of range (size " +
                    std::to_string(arr_.size()) + ")");
  return arr_[index];
}

std::size_t Json::size() const noexcept {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  return 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  // Integral doubles print exactly, without an exponent or decimal point,
  // so cycle counts stay human-readable in the export.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips through strtod.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (type_) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (bool_ ? "true" : "false"); break;
    case Type::Number: os << json_number(num_); break;
    case Type::String: os << '"' << json_escape(str_) << '"'; break;
    case Type::Array: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) os << ',';
        newline(depth + 1);
        arr_[i].dump_impl(os, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      os << ']';
      break;
    }
    case Type::Object: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) os << ',';
        newline(depth + 1);
        os << '"' << json_escape(obj_[i].first) << "\":";
        if (indent >= 0) os << ' ';
        obj_[i].second.dump_impl(os, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const { dump_impl(os, indent, 0); }

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', found '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // surrogate pair
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = parse_hex4();
              if (lo >= 0xdc00 && lo <= 0xdfff)
                cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
              else
                fail("invalid low surrogate");
            } else {
              fail("unpaired surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(std::string("bad escape \\") + e);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace kami::obs
