#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kami::obs {

double Histogram::sum() const noexcept {
  std::lock_guard lock(mu_);
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::mean() const {
  std::lock_guard lock(mu_);
  if (samples_.empty()) return 0.0;
  const double s = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return s / static_cast<double>(samples_.size());
}

void Histogram::ensure_sorted_locked() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  std::lock_guard lock(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  return samples_.front();
}

double Histogram::max() const {
  std::lock_guard lock(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  return samples_.back();
}

double Histogram::percentile(double p) const {
  std::lock_guard lock(mu_);
  KAMI_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  // try_emplace: Counter holds an atomic and is not movable.
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

const Counter* MetricRegistry::find_counter(std::string_view name) const noexcept {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricRegistry::find_gauge(std::string_view name) const noexcept {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::find_histogram(std::string_view name) const noexcept {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::map<std::string, double> MetricRegistry::counter_values() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

std::map<std::string, double> MetricRegistry::gauge_values() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g.value());
  return out;
}

void MetricRegistry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  // Snapshot the other side's values first so we never hold two registry
  // locks at once (merge order is engine-controlled; shards are quiescent
  // by the time they're merged, but stay safe regardless).
  const auto counters = other.counter_values();
  const auto gauges = other.gauge_values();
  std::vector<std::pair<std::string, std::vector<double>>> hists;
  {
    std::lock_guard lock(other.mu_);
    hists.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_)
      hists.emplace_back(name, h.samples());
  }
  for (const auto& [name, v] : counters) counter(name).add(v);
  for (const auto& [name, v] : gauges) gauge(name).set_max(v);
  for (const auto& [name, samples] : hists) {
    Histogram& h = histogram(name);
    for (double s : samples) h.observe(s);
  }
}

Json MetricRegistry::to_json() const {
  std::lock_guard lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g.value());
  Json hists = Json::object();
  for (const auto& [name, h] : histograms_) {
    // Every stat is emitted for every histogram, including empty ones (a
    // reset or admitted-but-never-completed distribution): NaN-free zeros
    // with count 0, so report consumers never have to branch on presence.
    Json entry = Json::object();
    entry.set("count", static_cast<double>(h.count()));
    entry.set("sum", h.sum());
    entry.set("min", h.min());
    entry.set("max", h.max());
    entry.set("p50", h.percentile(50.0));
    entry.set("p90", h.percentile(90.0));
    entry.set("p99", h.percentile(99.0));
    hists.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(hists));
  return out;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry*& MetricRegistry::current_slot() {
  thread_local MetricRegistry* slot = nullptr;
  return slot;
}

MetricRegistry& MetricRegistry::current() {
  MetricRegistry* slot = current_slot();
  return slot ? *slot : global();
}

}  // namespace kami::obs
