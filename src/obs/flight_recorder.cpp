#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "obs/report.hpp"  // SchemaError

namespace kami::obs {

void FlightRecorder::record(RequestTrace trace) {
  const bool error = trace.is_error();
  std::lock_guard lock(mu_);
  std::deque<Entry>& store = error ? errors_ : completed_;
  const std::size_t capacity = error ? cfg_.error_capacity : cfg_.completed_capacity;
  store.emplace_back(next_seq_++, std::move(trace));
  while (store.size() > capacity) store.pop_front();
}

std::size_t FlightRecorder::completed_count() const {
  std::lock_guard lock(mu_);
  return completed_.size();
}

std::size_t FlightRecorder::error_count() const {
  std::lock_guard lock(mu_);
  return errors_.size();
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lock(mu_);
  return completed_.size() + errors_.size();
}

std::vector<RequestTrace> FlightRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<const Entry*> merged;
  merged.reserve(completed_.size() + errors_.size());
  for (const Entry& e : completed_) merged.push_back(&e);
  for (const Entry& e : errors_) merged.push_back(&e);
  std::sort(merged.begin(), merged.end(),
            [](const Entry* a, const Entry* b) { return a->first < b->first; });
  std::vector<RequestTrace> out;
  out.reserve(merged.size());
  for (const Entry* e : merged) out.push_back(e->second);
  return out;
}

Json FlightRecorder::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kFlightSchemaName);
  doc.set("schema_version", kFlightSchemaVersion);
  {
    std::lock_guard lock(mu_);
    doc.set("completed_capacity", static_cast<double>(cfg_.completed_capacity));
    doc.set("error_capacity", static_cast<double>(cfg_.error_capacity));
    doc.set("recorded", static_cast<double>(next_seq_));
  }
  Json traces = Json::array();
  for (const RequestTrace& t : snapshot()) traces.push_back(t.to_json());
  doc.set("traces", std::move(traces));
  return doc;
}

void FlightRecorder::dump(std::ostream& os) const {
  to_json().dump(os, 2);
  os << '\n';
}

std::vector<RequestTrace> FlightRecorder::traces_from_json(const Json& doc) {
  if (!doc.is_object()) throw SchemaError("flight dump must be a JSON object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kFlightSchemaName)
    throw SchemaError(std::string("not a ") + kFlightSchemaName + " document");
  const Json* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kFlightSchemaVersion)
    throw SchemaError("unsupported flight schema_version");
  std::vector<RequestTrace> out;
  for (const Json& jt : doc.at("traces").as_array())
    out.push_back(RequestTrace::from_json(jt));
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mu_);
  completed_.clear();
  errors_.clear();
  next_seq_ = 0;
}

}  // namespace kami::obs
