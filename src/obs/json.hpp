// A minimal JSON value — writer and parser — for the observability layer.
//
// Exported run reports must be machine-readable (stable schema, versioned)
// and `tools/kami_prof` must load them back, so the repo needs a JSON round
// trip without external dependencies. Objects keep insertion order so the
// emitted schema reads in the order it was built; numbers are written with
// enough digits that doubles survive the round trip exactly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace kami::obs {

/// Thrown on malformed JSON text or on type-mismatched access.
class JsonError : public kami::PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs; keys are unique (set replaces).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), num_(v) {}
  Json(int v) : type_(Type::Number), num_(v) {}
  Json(unsigned v) : type_(Type::Number), num_(v) {}
  Json(long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(long long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(unsigned long long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Array append.
  void push_back(Json v);

  /// Object set (replaces an existing key, keeps its position).
  void set(std::string key, Json v);

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const noexcept;

  /// Object lookup that throws JsonError when the key is missing.
  const Json& at(std::string_view key) const;

  /// Array element access (bounds-checked).
  const Json& at(std::size_t index) const;

  std::size_t size() const noexcept;

  /// Serialize. indent < 0 emits compact one-line JSON; indent >= 0 pretty
  /// prints with that many spaces per level.
  void dump(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonError with position info.
  static Json parse(std::string_view text);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// JSON string escaping (quotes not included): control characters, quote,
/// and backslash become escape sequences; everything else passes through.
std::string json_escape(std::string_view s);

/// Format a double the way the JSON writer does (shortest round-trippable
/// form; integral values print without a decimal point).
std::string json_number(double v);

}  // namespace kami::obs
