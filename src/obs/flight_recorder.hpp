// FlightRecorder: a bounded in-memory ring of recent request traces, plus a
// separately bounded store of every trace that ended in a typed error.
//
// A serving process cannot afford to keep every trace, but the traces worth
// keeping are exactly the ones that are gone by the time someone asks: the
// last few requests before an incident, and every request that failed. The
// recorder therefore keeps two bounded stores:
//
//   * completed ring — the most recent `completed_capacity` ok traces;
//     recording past capacity evicts the oldest ok trace;
//   * error store — traces whose root carries a non-ok "code" attribute,
//     bounded by `error_capacity` (its own ring, so an error storm cannot
//     grow without bound either) — ok-trace churn never evicts an error.
//
// All methods are thread-safe. snapshot()/to_json() return traces in record
// order (a monotone sequence number stamped under the lock), so a recorder
// fed deterministically — the chaos campaign folds per-point traces in seed
// order — dumps byte-identical JSON at every worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace_span.hpp"

namespace kami::obs {

class FlightRecorder {
 public:
  struct Config {
    std::size_t completed_capacity = 64;  ///< last-K ring of ok traces
    std::size_t error_capacity = 256;     ///< typed-error traces retained
  };

  FlightRecorder() = default;
  explicit FlightRecorder(Config cfg) : cfg_(cfg) {}

  /// Record one finished trace; routes on RequestTrace::is_error().
  void record(RequestTrace trace);

  std::size_t completed_count() const;
  std::size_t error_count() const;
  std::size_t size() const;
  const Config& config() const noexcept { return cfg_; }

  /// All retained traces in record order (errors and completions
  /// interleaved as they happened).
  std::vector<RequestTrace> snapshot() const;

  /// {"schema": "kami.obs.flight", "schema_version": 1, "completed_capacity",
  ///  "error_capacity", "recorded", "traces": [...]}
  Json to_json() const;
  /// Pretty-printed to_json() plus a trailing newline.
  void dump(std::ostream& os) const;

  /// Validating load of a dump's traces (throws obs::SchemaError).
  static std::vector<RequestTrace> traces_from_json(const Json& doc);

  void clear();

 private:
  using Entry = std::pair<std::uint64_t, RequestTrace>;  ///< (sequence, trace)

  Config cfg_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;  ///< total traces ever recorded
  std::deque<Entry> completed_;
  std::deque<Entry> errors_;
};

}  // namespace kami::obs
