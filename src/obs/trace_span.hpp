// Request-scoped span traces: the per-request observability primitive the
// serving layer builds on.
//
// A RequestTrace is a tree of named, attributed spans on a *simulated-cycle*
// timeline: admit -> queue_wait -> per-rung plan/attempt spans ->
// complete. Nothing in a trace comes from a wall clock — span begin/end
// are driven by a logical cycle clock the instrumented code advances with
// deterministic quantities (a kernel attempt advances by its simulated
// latency, a retry backoff by its configured penalty) — so the same request
// produces the byte-identical trace on every run, every thread count, and
// every machine. That is what lets the chaos campaign diff flight-recorder
// dumps across worker counts and what makes every recorded failure exactly
// replayable.
//
// TraceBuilder is the write side: a stack of open spans plus the logical
// clock. It is deliberately single-threaded (one request is built by one
// thread at a time); cross-thread fan-out goes through the execution
// engine, which snapshots the submitting thread's builder via
// current_tracer(), gives each task a shard builder rooted at a "task[i]"
// span, and grafts the shards back in task-index order — the same
// determinism contract metric shards already follow (DESIGN §10/§11).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/require.hpp"

namespace kami::obs {

inline constexpr const char* kFlightSchemaName = "kami.obs.flight";
inline constexpr int kFlightSchemaVersion = 1;

/// One node of a span tree. Spans are stored flat in their trace, indexed
/// by id, with parents always preceding children (id order is open order).
struct Span {
  std::uint32_t id = 0;
  std::int32_t parent = -1;  ///< -1 = root (only span 0)
  std::string name;
  double begin_cycles = 0.0;
  double end_cycles = 0.0;
  /// Insertion-ordered key/value attributes; values are strings (numbers go
  /// through json_number so they round-trip exactly).
  std::vector<std::pair<std::string, std::string>> attrs;

  double duration_cycles() const noexcept { return end_cycles - begin_cycles; }
  const std::string* find_attr(std::string_view key) const noexcept;
};

/// A finished request trace: id, free-form metadata, and the span tree.
class RequestTrace {
 public:
  std::string request_id;
  /// Insertion-ordered metadata (e.g. the chaos seed that generated the
  /// request); not part of the span tree.
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<Span> spans;  ///< spans[i].id == i; spans[0] is the root

  void set_meta(std::string key, std::string value);
  const std::string* find_meta(std::string_view key) const noexcept;

  const Span* root() const noexcept { return spans.empty() ? nullptr : &spans[0]; }
  /// First span with this name in id (open) order; nullptr when absent.
  const Span* find_span(std::string_view name) const noexcept;
  std::vector<const Span*> find_all(std::string_view name) const;
  /// Child span ids of `id` in open order.
  std::vector<std::uint32_t> children_of(std::uint32_t id) const;

  /// True when the root carries a "code" attribute other than "ok" — the
  /// flight recorder's keep-errors policy routes on this.
  bool is_error() const noexcept;

  /// {"request_id", "meta"?, "spans": [{id, parent, name, begin_cycles,
  ///  end_cycles, attrs}]}
  Json to_json() const;
  /// Validating load (throws obs::SchemaError on malformed trees: ids out
  /// of order, a parent after its child, end before begin).
  static RequestTrace from_json(const Json& doc);

  /// Deterministic text form — one indented line per span with its interval
  /// and attributes. Tests bit-compare this across worker counts, and
  /// kami_trace prints it.
  std::string canonical_text() const;
};

/// Chrome trace-event JSON for a set of traces: one tid per trace (named by
/// request id), spans as "X" events under the 1 cycle = 1 us mapping the
/// simulator's op traces also use.
void dump_chrome_traces(std::ostream& os, const std::vector<RequestTrace>& traces);

/// Write side of a RequestTrace: an open-span stack plus the logical cycle
/// clock. Single-threaded by design; see the header comment for how the
/// execution engine fans a builder out across workers.
class TraceBuilder {
 public:
  /// Starts with one open root span named `root_name` at `start_cycles`.
  explicit TraceBuilder(std::string request_id, std::string root_name = "request",
                        double start_cycles = 0.0);
  TraceBuilder(TraceBuilder&&) = default;
  TraceBuilder& operator=(TraceBuilder&&) = default;
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  /// Open a child of the innermost open span at the current clock.
  std::uint32_t open(std::string_view name);
  /// Close the innermost open span at the current clock (the root can only
  /// be closed by finish()).
  void close();
  /// Close spans until only `depth` remain open (1 = just the root).
  void close_to(int depth);
  int depth() const noexcept { return static_cast<int>(stack_.size()); }

  /// Attribute on the innermost open span.
  void attr(std::string_view key, std::string_view value);
  void attr_num(std::string_view key, double v);
  /// Attribute on the root span (outcome fields stamped at completion).
  void root_attr(std::string_view key, std::string_view value);
  void root_attr_num(std::string_view key, double v);
  void set_meta(std::string key, std::string value);

  /// Advance the logical clock by a non-negative number of cycles.
  void advance(double cycles);
  double clock() const noexcept { return clock_; }

  /// Append a finished trace's spans under the innermost open span,
  /// re-basing ids and parents (the child's root becomes a child here).
  /// The clock is not advanced — concurrent shards advance the parent by
  /// the max shard clock once, at the call site.
  void graft(RequestTrace child);

  /// Close every open span (root included) at the current clock and move
  /// the trace out. The builder must not be used afterwards.
  RequestTrace finish();

 private:
  RequestTrace trace_;
  std::vector<std::uint32_t> stack_;  ///< open span ids, root first
  double clock_ = 0.0;
  bool finished_ = false;
};

/// The builder the current thread's instrumented code should append spans
/// to, or nullptr when no trace is being built. The execution engine
/// snapshots this to propagate span context into its workers.
TraceBuilder* current_tracer() noexcept;

/// RAII install of a builder (or nullptr) as this thread's current tracer.
class ScopedTracer {
 public:
  explicit ScopedTracer(TraceBuilder* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  TraceBuilder* prev_;
};

}  // namespace kami::obs
