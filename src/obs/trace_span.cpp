#include "obs/trace_span.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/report.hpp"  // SchemaError

namespace kami::obs {

const std::string* Span::find_attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs)
    if (k == key) return &v;
  return nullptr;
}

void RequestTrace::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta.emplace_back(std::move(key), std::move(value));
}

const std::string* RequestTrace::find_meta(std::string_view key) const noexcept {
  for (const auto& [k, v] : meta)
    if (k == key) return &v;
  return nullptr;
}

const Span* RequestTrace::find_span(std::string_view name) const noexcept {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const Span*> RequestTrace::find_all(std::string_view name) const {
  std::vector<const Span*> out;
  for (const auto& s : spans)
    if (s.name == name) out.push_back(&s);
  return out;
}

std::vector<std::uint32_t> RequestTrace::children_of(std::uint32_t id) const {
  std::vector<std::uint32_t> out;
  for (const auto& s : spans)
    if (s.parent == static_cast<std::int32_t>(id)) out.push_back(s.id);
  return out;
}

bool RequestTrace::is_error() const noexcept {
  const Span* r = root();
  if (r == nullptr) return false;
  const std::string* code = r->find_attr("code");
  return code != nullptr && *code != "ok";
}

Json RequestTrace::to_json() const {
  Json doc = Json::object();
  doc.set("request_id", request_id);
  if (!meta.empty()) {
    Json jm = Json::object();
    for (const auto& [k, v] : meta) jm.set(k, v);
    doc.set("meta", std::move(jm));
  }
  Json jspans = Json::array();
  for (const auto& s : spans) {
    Json js = Json::object();
    js.set("id", static_cast<double>(s.id));
    js.set("parent", static_cast<double>(s.parent));
    js.set("name", s.name);
    js.set("begin_cycles", s.begin_cycles);
    js.set("end_cycles", s.end_cycles);
    if (!s.attrs.empty()) {
      Json ja = Json::object();
      for (const auto& [k, v] : s.attrs) ja.set(k, v);
      js.set("attrs", std::move(ja));
    }
    jspans.push_back(std::move(js));
  }
  doc.set("spans", std::move(jspans));
  return doc;
}

RequestTrace RequestTrace::from_json(const Json& doc) {
  if (!doc.is_object()) throw SchemaError("trace must be a JSON object");
  RequestTrace t;
  t.request_id = doc.at("request_id").as_string();
  if (t.request_id.empty()) throw SchemaError("trace has an empty request_id");
  if (const Json* jm = doc.find("meta")) {
    for (const auto& [k, v] : jm->as_object()) t.set_meta(k, v.as_string());
  }
  const Json& jspans = doc.at("spans");
  if (jspans.size() == 0)
    throw SchemaError("trace " + t.request_id + " has no spans");
  for (std::size_t i = 0; i < jspans.size(); ++i) {
    const Json& js = jspans.at(i);
    Span s;
    s.id = static_cast<std::uint32_t>(js.at("id").as_number());
    s.parent = static_cast<std::int32_t>(js.at("parent").as_number());
    s.name = js.at("name").as_string();
    s.begin_cycles = js.at("begin_cycles").as_number();
    s.end_cycles = js.at("end_cycles").as_number();
    if (const Json* ja = js.find("attrs")) {
      for (const auto& [k, v] : ja->as_object()) s.attrs.emplace_back(k, v.as_string());
    }
    if (s.id != i)
      throw SchemaError("trace " + t.request_id + ": span ids must be 0..n-1 in order");
    if (i == 0 ? s.parent != -1
               : (s.parent < 0 || s.parent >= static_cast<std::int32_t>(i)))
      throw SchemaError("trace " + t.request_id + ": span " + std::to_string(i) +
                        " has invalid parent " + std::to_string(s.parent));
    if (!(s.begin_cycles <= s.end_cycles))
      throw SchemaError("trace " + t.request_id + ": span " + std::to_string(i) +
                        " ends before it begins");
    t.spans.push_back(std::move(s));
  }
  return t;
}

std::string RequestTrace::canonical_text() const {
  std::ostringstream os;
  os << "trace " << request_id << "\n";
  for (const auto& [k, v] : meta) os << "meta " << k << "=" << v << "\n";
  std::vector<int> depth(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent >= 0)
      depth[i] = depth[static_cast<std::size_t>(spans[i].parent)] + 1;
    os << std::string(static_cast<std::size_t>(depth[i] + 1) * 2, ' ') << spans[i].name
       << " [" << json_number(spans[i].begin_cycles) << ", "
       << json_number(spans[i].end_cycles) << ")";
    for (const auto& [k, v] : spans[i].attrs) os << " " << k << "=" << v;
    os << "\n";
  }
  return os.str();
}

void dump_chrome_traces(std::ostream& os, const std::vector<RequestTrace>& traces) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"kami serve\"}}";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t + 1
       << ",\"args\":{\"name\":\"" << json_escape(traces[t].request_id) << "\"}}";
    for (const auto& s : traces[t].spans) {
      sep();
      os << "{\"name\":\"" << json_escape(s.name) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
         << t + 1 << ",\"ts\":" << json_number(s.begin_cycles)
         << ",\"dur\":" << json_number(s.duration_cycles()) << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : s.attrs) {
        if (!afirst) os << ",";
        afirst = false;
        os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
      }
      os << "}}";
    }
  }
  os << "]}";
}

TraceBuilder::TraceBuilder(std::string request_id, std::string root_name,
                           double start_cycles)
    : clock_(start_cycles) {
  trace_.request_id = std::move(request_id);
  Span root;
  root.id = 0;
  root.parent = -1;
  root.name = std::move(root_name);
  root.begin_cycles = clock_;
  root.end_cycles = clock_;
  trace_.spans.push_back(std::move(root));
  stack_.push_back(0);
}

std::uint32_t TraceBuilder::open(std::string_view name) {
  KAMI_REQUIRE(!finished_ && !stack_.empty(), "open() on a finished trace");
  Span s;
  s.id = static_cast<std::uint32_t>(trace_.spans.size());
  s.parent = static_cast<std::int32_t>(stack_.back());
  s.name = std::string(name);
  s.begin_cycles = clock_;
  s.end_cycles = clock_;
  trace_.spans.push_back(std::move(s));
  stack_.push_back(trace_.spans.back().id);
  return stack_.back();
}

void TraceBuilder::close() {
  KAMI_REQUIRE(stack_.size() > 1, "close() with no open child span");
  trace_.spans[stack_.back()].end_cycles = clock_;
  stack_.pop_back();
}

void TraceBuilder::close_to(int depth) {
  KAMI_REQUIRE(depth >= 1, "close_to() cannot close the root");
  while (static_cast<int>(stack_.size()) > depth) close();
}

void TraceBuilder::attr(std::string_view key, std::string_view value) {
  KAMI_REQUIRE(!stack_.empty(), "attr() with no open span");
  trace_.spans[stack_.back()].attrs.emplace_back(std::string(key), std::string(value));
}

void TraceBuilder::attr_num(std::string_view key, double v) {
  attr(key, json_number(v));
}

void TraceBuilder::root_attr(std::string_view key, std::string_view value) {
  KAMI_REQUIRE(!trace_.spans.empty(), "root_attr() on an empty trace");
  trace_.spans[0].attrs.emplace_back(std::string(key), std::string(value));
}

void TraceBuilder::root_attr_num(std::string_view key, double v) {
  root_attr(key, json_number(v));
}

void TraceBuilder::set_meta(std::string key, std::string value) {
  trace_.set_meta(std::move(key), std::move(value));
}

void TraceBuilder::advance(double cycles) {
  KAMI_REQUIRE(cycles >= 0.0, "the trace clock only moves forward");
  clock_ += cycles;
}

void TraceBuilder::graft(RequestTrace child) {
  KAMI_REQUIRE(!finished_ && !stack_.empty(), "graft() on a finished trace");
  const std::uint32_t base = static_cast<std::uint32_t>(trace_.spans.size());
  const std::int32_t anchor = static_cast<std::int32_t>(stack_.back());
  for (Span& s : child.spans) {
    s.id += base;
    s.parent = s.parent < 0 ? anchor : s.parent + static_cast<std::int32_t>(base);
    trace_.spans.push_back(std::move(s));
  }
}

RequestTrace TraceBuilder::finish() {
  KAMI_REQUIRE(!finished_, "finish() called twice");
  while (stack_.size() > 1) close();
  trace_.spans[0].end_cycles = clock_;
  stack_.clear();
  finished_ = true;
  return std::move(trace_);
}

namespace {
TraceBuilder*& tracer_slot() {
  thread_local TraceBuilder* slot = nullptr;
  return slot;
}
}  // namespace

TraceBuilder* current_tracer() noexcept { return tracer_slot(); }

ScopedTracer::ScopedTracer(TraceBuilder* tracer) : prev_(tracer_slot()) {
  tracer_slot() = tracer;
}

ScopedTracer::~ScopedTracer() { tracer_slot() = prev_; }

}  // namespace kami::obs
