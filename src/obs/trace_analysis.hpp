// Analysis passes over the simulator's op-level Trace: per-resource
// utilization timelines, critical-warp identification, bank-conflict
// heatmaps, per-region op-kind attribution, and a Chrome/Perfetto trace
// export enriched with phase metadata.
//
// These passes reconstruct *resource* busy intervals from the recorded
// events using the device's latency constants (an SmemLoad's port occupancy
// ends L_sm before the warp's clock does; a tensor-core unit is booked at
// the ideal rate while the warp experiences the issue-efficiency-scaled
// time), so the utilization numbers agree with the PortTimeline/UnitPool
// accounting the throughput model uses.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/region.hpp"
#include "obs/report.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"

namespace kami::obs {

/// Resource order used by utilization_timeline(); index with this enum.
enum class Resource : std::size_t { TensorCore = 0, SmemPort, GmemPort, VectorPipe };
inline constexpr std::size_t kNumResources = 4;
const char* resource_name(Resource r) noexcept;

/// Busy fraction per resource per time bucket over the traced run.
/// `buckets` divides the wall time; tensor-core busy is normalized by the
/// device's unit count so a fraction of 1.0 always means saturated.
UtilizationTimeline utilization_timeline(const sim::Trace& trace,
                                         const sim::DeviceSpec& dev,
                                         std::size_t buckets = 64);

/// Per-warp activity totals reconstructed from the trace.
struct WarpActivity {
  int warp = 0;
  double busy_cycles = 0.0;       ///< warp time in non-sync operations
  double sync_wait_cycles = 0.0;  ///< time parked at barriers
  double finish_cycles = 0.0;     ///< the warp's last event end
};

struct CriticalWarpReport {
  std::vector<WarpActivity> warps;  ///< by warp id
  /// The warp with the most busy (non-sync) cycles — the one every barrier
  /// waits on; ties break to the lowest id.
  int critical_warp = -1;
};

CriticalWarpReport critical_warp_analysis(const sim::Trace& trace);

/// Lane-to-bank collision counts for a family of strided access patterns —
/// the data behind a stride x bank heatmap of shared-memory conflicts.
struct BankConflictHeatmap {
  std::size_t banks = 0;
  std::size_t element_bytes = 0;
  std::vector<std::size_t> strides;                 ///< row per stride
  std::vector<std::vector<std::size_t>> word_hits;  ///< [stride][bank]
  std::vector<double> theta;                        ///< attained BW fraction
};

BankConflictHeatmap bank_conflict_heatmap(const sim::DeviceSpec& dev,
                                          std::size_t element_bytes,
                                          const std::vector<std::size_t>& strides);

/// Warp-cycles per op-kind attributed to the innermost profiler region whose
/// interval contains the event's issue time — the kernel -> phase -> op-kind
/// level of the breakdown. Events outside every region land in "(outside)".
struct RegionOpBreakdown {
  std::string path;  ///< slash-joined region path
  std::vector<std::pair<std::string, double>> op_cycles;  ///< kind -> cycles
};

std::vector<RegionOpBreakdown> region_op_breakdown(const sim::Trace& trace,
                                                   const RegionProfiler& regions);

/// Chrome trace-event JSON enriched with phase/region rows: op events per
/// warp (as Trace::dump_chrome_trace) plus process/thread metadata and one
/// X event per closed region interval on a dedicated "phases" track.
void dump_chrome_trace_with_regions(std::ostream& os, const sim::Trace& trace,
                                    const RegionProfiler* regions,
                                    std::string_view process_name = "kami");

}  // namespace kami::obs
