// RunReport: the machine-readable artifact of one benchmark or profiling
// run — the tables a binary printed, structured cycle breakdowns, a metric
// snapshot, the region tree, and an optional utilization timeline — with a
// stable, versioned JSON schema ("kami.obs.run", version 2) so exported
// runs can be reloaded, reprinted, and diffed by `tools/kami_prof` long
// after the code that produced them has changed.
//
// Schema v2 (all sections except schema/schema_version/name are optional):
//   {
//     "schema": "kami.obs.run",
//     "schema_version": 2,
//     "name": "<binary or experiment name>",
//     "meta": {"key": "value", ...},
//     "tables": [{"title": str, "headers": [str], "rows": [[str]]}],
//     "breakdowns": [{"name": str,
//                     "categories": [{"name": str, "cycles": num}]}],
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "regions": [{name, count, total_cycles, self_cycles, children}],
//     "utilization": {"bucket_cycles": num, "wall_cycles": num,
//                     "resources": [{"name": str, "busy": [num]}]},
//     "slo": {"classes": [{"class": str, "requests": num, ...,
//                          "latency_cycles": {count, mean, p50, p90, p99,
//                          max}}]}   (v2; serve::SloTracker::to_json)
//   }
// v2 adds the optional "slo" section (per-shape-class SLO attainment from
// the serving layer); v1 documents, which simply lack it, still load.
// Table cells are stored as the exact strings the text table printed, so a
// reload reproduces the human output byte for byte.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/region.hpp"

namespace kami {
class TablePrinter;  // util/table.hpp
}

namespace kami::obs {

inline constexpr const char* kRunSchemaName = "kami.obs.run";
inline constexpr int kRunSchemaVersion = 2;
/// Oldest schema_version from_json still accepts (v1 = everything but slo).
inline constexpr int kRunSchemaMinVersion = 1;

/// Thrown when a loaded document is not a valid kami.obs.run of a known
/// version.
class SchemaError : public kami::PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

struct ReportTable {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

/// One named cycle breakdown (e.g. "GH200/FP16/n=64/KAMI-2D"); category
/// order is preserved so Fig 15's column order survives the round trip.
struct Breakdown {
  std::string name;
  std::vector<std::pair<std::string, double>> categories;

  const double* find(std::string_view category) const noexcept {
    for (const auto& [k, v] : categories)
      if (k == category) return &v;
    return nullptr;
  }
};

/// Per-resource busy fraction per time bucket; plain data so the report
/// layer stays independent of the simulator (trace_analysis.hpp fills it
/// from a sim::Trace).
struct UtilizationTimeline {
  double bucket_cycles = 0.0;
  double wall_cycles = 0.0;
  std::vector<std::string> resources;
  std::vector<std::vector<double>> busy;  ///< [resource][bucket], in [0, 1]

  /// Busy cycles of one resource (sum over buckets x bucket width).
  double busy_cycles(std::size_t resource) const;
};

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void set_meta(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& meta() const noexcept {
    return meta_;
  }

  void add_table(ReportTable table) { tables_.push_back(std::move(table)); }
  /// Capture a printed table verbatim (title + the exact cell strings).
  void add_table(const std::string& title, const TablePrinter& table);
  const std::vector<ReportTable>& tables() const noexcept { return tables_; }

  void add_breakdown(Breakdown b) { breakdowns_.push_back(std::move(b)); }
  const std::vector<Breakdown>& breakdowns() const noexcept { return breakdowns_; }
  const Breakdown* find_breakdown(std::string_view name) const noexcept;

  void set_metrics(const MetricRegistry& registry) { metrics_ = registry.to_json(); }
  const Json& metrics() const noexcept { return metrics_; }

  void set_regions(const RegionProfiler& profiler) { regions_ = profiler.to_json(); }
  const Json& regions() const noexcept { return regions_; }

  void set_utilization(UtilizationTimeline u) { utilization_ = std::move(u); }
  const std::optional<UtilizationTimeline>& utilization() const noexcept {
    return utilization_;
  }

  /// Per-shape-class SLO accounting (v2); pass serve::SloTracker::to_json().
  void set_slo(Json slo) { slo_ = std::move(slo); }
  const Json& slo() const noexcept { return slo_; }

  Json to_json() const;
  static RunReport from_json(const Json& doc);

  void write_json(std::ostream& os) const;
  /// All tables and breakdowns as CSV, sections separated by `# <title>`.
  void write_csv(std::ostream& os) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<ReportTable> tables_;
  std::vector<Breakdown> breakdowns_;
  Json metrics_;  // null when never set
  Json regions_;  // null when never set
  Json slo_;      // null when never set (v2 section)
  std::optional<UtilizationTimeline> utilization_;
};

}  // namespace kami::obs
