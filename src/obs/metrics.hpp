// MetricRegistry: named counters, gauges, and histograms that instrumented
// code (the simulator's Warp/ThreadBlock/SharedMemory, the planner, the
// autotuner) publishes into.
//
// Design constraints, in order:
//   * hot-path cheap — instrumented code resolves a metric by name once and
//     then holds a stable reference; an update is one relaxed atomic add on
//     a double;
//   * deterministic export — iteration and JSON output are name-sorted;
//   * resettable without invalidating handles — `reset_values()` zeroes
//     every metric in place, so a Warp constructed before the reset keeps
//     publishing into the same (now zeroed) counters.
//
// Threading model. A single ThreadBlock simulation is single-threaded by
// construction (warps are round-robin scheduled on one OS thread), but the
// execution engine in src/exec runs many independent simulations
// concurrently. Counter and Gauge are therefore lock-free atomics with
// relaxed ordering (values are statistics, not synchronization), Histogram
// serializes observations behind a small mutex, and metric *creation* in a
// registry is mutex-guarded. For bit-deterministic aggregation across
// worker counts, parallel work should publish into per-task shard
// registries (ScopedMetricShard + MetricRegistry::current()) that the
// engine merges back in task-index order — see DESIGN §10.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/require.hpp"

namespace kami::obs {

/// A monotonically increasing sum (bytes moved, ops issued, cycles waited).
/// Concurrent add() calls are safe; ordering is relaxed because the value
/// is a statistic, never a synchronization point.
class Counter {
 public:
  /// Increase by `v`; negative deltas are rejected (counters only go up).
  void add(double v) {
    KAMI_REQUIRE(v >= 0.0, "counter increments must be non-negative");
    // fetch_add on atomic<double> requires C++20; relaxed is enough since
    // readers only ever see a (possibly slightly stale) running total.
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  void increment() { add(1.0); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A point-in-time level (high-water bytes, resident blocks).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Keep the maximum of the current and the observed value (CAS loop so
  /// concurrent maxima never regress).
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A sample distribution with exact percentiles (the sample counts here are
/// small — planner candidates, autotune evaluations — so keeping every
/// observation is cheaper than maintaining approximate sketches).
/// Observations are serialized behind a mutex; percentile queries sort a
/// snapshot under the same lock.
class Histogram {
 public:
  void observe(double v) {
    std::lock_guard lock(mu_);
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const noexcept {
    std::lock_guard lock(mu_);
    return samples_.size();
  }
  double sum() const noexcept;

  /// Empty-distribution contract: mean/min/max/percentile on a histogram
  /// with no samples are well-defined NaN-free zeros (count() == 0 tells a
  /// consumer the distribution is empty). A distribution can legitimately be
  /// empty at export time — a reset registry, or a shape class that was
  /// admitted but never completed a request.
  double mean() const;
  double min() const;
  double max() const;

  /// Exact percentile by linear interpolation between order statistics;
  /// p in [0, 100] (enforced), 0.0 when there are no samples.
  double percentile(double p) const;

  /// All samples in observation order (used by shard merging).
  std::vector<double> samples() const {
    std::lock_guard lock(mu_);
    return samples_;
  }

  void reset() noexcept {
    std::lock_guard lock(mu_);
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted_locked() const;

  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

class MetricRegistry {
 public:
  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime (std::map nodes are stable) and across reset_values().
  /// Creation is mutex-guarded; subsequent updates through the reference
  /// need no lock.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(std::string_view name) const noexcept;
  const Gauge* find_gauge(std::string_view name) const noexcept;
  const Histogram* find_histogram(std::string_view name) const noexcept;

  /// Name-sorted snapshots for reports.
  std::map<std::string, double> counter_values() const;
  std::map<std::string, double> gauge_values() const;

  /// Zero every metric in place; existing references keep working.
  void reset_values();

  /// Fold another registry into this one: counters add, gauges take the
  /// max (both are "how much happened" / "high-water" semantics), histogram
  /// samples append in their original observation order. Used by the
  /// execution engine to merge per-task shards deterministically.
  void merge_from(const MetricRegistry& other);

  std::size_t size() const noexcept {
    std::lock_guard lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, p50, p90, p99}}} — name-sorted, deterministic.
  Json to_json() const;

  /// The process-wide registry the simulator publishes into by default.
  static MetricRegistry& global();

  /// The registry instrumented code should publish into on *this* thread:
  /// the installed shard if a ScopedMetricShard is active, else global().
  static MetricRegistry& current();

 private:
  friend class ScopedMetricShard;
  static MetricRegistry*& current_slot();

  // std::map (not unordered) for deterministic iteration; transparent
  // comparator so string_view lookups don't allocate. Guarded by mu_ for
  // node creation/iteration; the nodes themselves are internally
  // synchronized.
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// RAII redirect of this thread's MetricRegistry::current() into a shard.
/// The execution engine installs one per task so concurrent simulations
/// never contend on (or nondeterministically interleave into) the parent's
/// registry; shards are merged back in task-index order at join.
class ScopedMetricShard {
 public:
  explicit ScopedMetricShard(MetricRegistry& shard)
      : prev_(MetricRegistry::current_slot()) {
    MetricRegistry::current_slot() = &shard;
  }
  ~ScopedMetricShard() { MetricRegistry::current_slot() = prev_; }
  ScopedMetricShard(const ScopedMetricShard&) = delete;
  ScopedMetricShard& operator=(const ScopedMetricShard&) = delete;

 private:
  MetricRegistry* prev_;
};

/// RAII reset of the global registry's values — tests and bench binaries
/// wrap a measured run so previously accumulated totals don't leak in.
class ScopedMetricsReset {
 public:
  ScopedMetricsReset() { MetricRegistry::global().reset_values(); }
  ~ScopedMetricsReset() = default;
  ScopedMetricsReset(const ScopedMetricsReset&) = delete;
  ScopedMetricsReset& operator=(const ScopedMetricsReset&) = delete;
};

}  // namespace kami::obs
