// MetricRegistry: named counters, gauges, and histograms that instrumented
// code (the simulator's Warp/ThreadBlock/SharedMemory, the planner, the
// autotuner) publishes into.
//
// Design constraints, in order:
//   * hot-path cheap — instrumented code resolves a metric by name once and
//     then holds a stable reference; an update is one add on a double;
//   * deterministic export — iteration and JSON output are name-sorted;
//   * resettable without invalidating handles — `reset_values()` zeroes
//     every metric in place, so a Warp constructed before the reset keeps
//     publishing into the same (now zeroed) counters.
//
// The simulator is single-threaded by construction (warps are round-robin
// scheduled on one OS thread), so metrics carry no synchronization.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/require.hpp"

namespace kami::obs {

/// A monotonically increasing sum (bytes moved, ops issued, cycles waited).
class Counter {
 public:
  /// Increase by `v`; negative deltas are rejected (counters only go up).
  void add(double v) {
    KAMI_REQUIRE(v >= 0.0, "counter increments must be non-negative");
    value_ += v;
  }
  void increment() { add(1.0); }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// A point-in-time level (high-water bytes, resident blocks).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  /// Keep the maximum of the current and the observed value.
  void set_max(double v) noexcept {
    if (v > value_) value_ = v;
  }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// A sample distribution with exact percentiles (the sample counts here are
/// small — planner candidates, autotune evaluations — so keeping every
/// observation is cheaper than maintaining approximate sketches).
class Histogram {
 public:
  void observe(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept;
  double mean() const;
  double min() const;
  double max() const;

  /// Exact percentile by linear interpolation between order statistics;
  /// p in [0, 100]. Requires at least one sample.
  double percentile(double p) const;

  void reset() noexcept {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

class MetricRegistry {
 public:
  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime (std::map nodes are stable) and across reset_values().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(std::string_view name) const noexcept;
  const Gauge* find_gauge(std::string_view name) const noexcept;
  const Histogram* find_histogram(std::string_view name) const noexcept;

  /// Name-sorted snapshots for reports.
  std::map<std::string, double> counter_values() const;
  std::map<std::string, double> gauge_values() const;

  /// Zero every metric in place; existing references keep working.
  void reset_values();

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, p50, p90, p99}}} — name-sorted, deterministic.
  Json to_json() const;

  /// The process-wide registry the simulator publishes into.
  static MetricRegistry& global();

 private:
  // std::map (not unordered) for deterministic iteration; transparent
  // comparator so string_view lookups don't allocate.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// RAII reset of the global registry's values — tests and bench binaries
/// wrap a measured run so previously accumulated totals don't leak in.
class ScopedMetricsReset {
 public:
  ScopedMetricsReset() { MetricRegistry::global().reset_values(); }
  ~ScopedMetricsReset() = default;
  ScopedMetricsReset(const ScopedMetricsReset&) = delete;
  ScopedMetricsReset& operator=(const ScopedMetricsReset&) = delete;
};

}  // namespace kami::obs
