#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "sim/bank_conflicts.hpp"

namespace kami::obs {

const char* resource_name(Resource r) noexcept {
  switch (r) {
    case Resource::TensorCore: return "tensor_core";
    case Resource::SmemPort: return "smem_port";
    case Resource::GmemPort: return "gmem_port";
    case Resource::VectorPipe: return "vector_pipe";
  }
  return "?";
}

namespace {

struct BusyInterval {
  Resource resource;
  double start;
  double end;
};

/// Reconstruct the resource-occupancy interval of one event. The warp-side
/// end includes latency for loads, and MMA time is dilated by the issue
/// efficiency; both are undone here so the interval matches what the
/// PortTimeline/UnitPool booked.
bool busy_interval_of(const sim::TraceEvent& ev, const sim::DeviceSpec& dev,
                      BusyInterval& out) {
  switch (ev.kind) {
    case sim::OpKind::SmemStore:
      out = {Resource::SmemPort, ev.start, ev.end};
      return true;
    case sim::OpKind::SmemLoad:
      out = {Resource::SmemPort, ev.start, ev.end - dev.smem_latency_cycles};
      return true;
    case sim::OpKind::GmemLoad:
    case sim::OpKind::GmemStore:
      out = {Resource::GmemPort, ev.start, ev.end - dev.gmem_latency_cycles};
      return true;
    case sim::OpKind::Mma:
      out = {Resource::TensorCore, ev.start,
             ev.start + (ev.end - ev.start) * dev.mma_efficiency};
      return true;
    case sim::OpKind::VectorOp:
      out = {Resource::VectorPipe, ev.start, ev.end};
      return true;
    case sim::OpKind::RegCopy:
    case sim::OpKind::SyncWait:
    case sim::OpKind::Overhead: return false;  // private to the warp
  }
  return false;
}

}  // namespace

UtilizationTimeline utilization_timeline(const sim::Trace& trace,
                                         const sim::DeviceSpec& dev,
                                         std::size_t buckets) {
  KAMI_REQUIRE(buckets >= 1, "need at least one bucket");
  UtilizationTimeline out;
  for (std::size_t r = 0; r < kNumResources; ++r)
    out.resources.emplace_back(resource_name(static_cast<Resource>(r)));
  out.busy.assign(kNumResources, std::vector<double>(buckets, 0.0));

  double wall = 0.0;
  for (const auto& ev : trace.events()) wall = std::max(wall, ev.end);
  out.wall_cycles = wall;
  if (wall <= 0.0) {
    out.bucket_cycles = 0.0;
    return out;
  }
  out.bucket_cycles = wall / static_cast<double>(buckets);

  const double units[kNumResources] = {
      static_cast<double>(dev.tensor_cores_per_sm), 1.0, 1.0, 1.0};

  for (const auto& ev : trace.events()) {
    BusyInterval bi{};
    if (!busy_interval_of(ev, dev, bi)) continue;
    if (bi.end <= bi.start) continue;
    const auto res = static_cast<std::size_t>(bi.resource);
    // Spread the interval's occupancy over the buckets it overlaps.
    const auto first =
        static_cast<std::size_t>(std::min(bi.start / out.bucket_cycles,
                                          static_cast<double>(buckets - 1)));
    for (std::size_t b = first; b < buckets; ++b) {
      const double b0 = static_cast<double>(b) * out.bucket_cycles;
      const double b1 = b0 + out.bucket_cycles;
      if (bi.start >= b1) continue;
      if (bi.end <= b0) break;
      const double overlap = std::min(bi.end, b1) - std::max(bi.start, b0);
      out.busy[res][b] += overlap / out.bucket_cycles / units[res];
    }
  }
  // Guard against floating-point spill past 1.0 on saturated buckets.
  for (auto& series : out.busy)
    for (double& frac : series) frac = std::min(frac, 1.0);
  return out;
}

CriticalWarpReport critical_warp_analysis(const sim::Trace& trace) {
  std::map<int, WarpActivity> by_warp;
  for (const auto& ev : trace.events()) {
    auto& w = by_warp[ev.warp];
    w.warp = ev.warp;
    const double dt = ev.end - ev.issue;
    if (ev.kind == sim::OpKind::SyncWait)
      w.sync_wait_cycles += ev.amount;
    else
      w.busy_cycles += dt;
    w.finish_cycles = std::max(w.finish_cycles, ev.end);
  }
  CriticalWarpReport out;
  for (const auto& [id, w] : by_warp) out.warps.push_back(w);
  std::size_t best = 0;
  for (std::size_t i = 1; i < out.warps.size(); ++i)
    if (out.warps[i].busy_cycles > out.warps[best].busy_cycles) best = i;
  if (!out.warps.empty()) out.critical_warp = out.warps[best].warp;
  return out;
}

BankConflictHeatmap bank_conflict_heatmap(const sim::DeviceSpec& dev,
                                          std::size_t element_bytes,
                                          const std::vector<std::size_t>& strides) {
  KAMI_REQUIRE(element_bytes > 0);
  BankConflictHeatmap out;
  out.banks = static_cast<std::size_t>(dev.smem_banks);
  out.element_bytes = element_bytes;
  const auto width = static_cast<std::size_t>(dev.bank_width_bytes);
  KAMI_REQUIRE(out.banks > 0 && width > 0);

  for (const std::size_t stride : strides) {
    // Same word-coalescing rule as sim::strided_access_theta: lanes hitting
    // the same bank word broadcast; wide elements touch several words.
    std::set<std::size_t> words;
    for (std::size_t lane = 0; lane < 32; ++lane) {
      const std::size_t first = lane * stride * element_bytes;
      for (std::size_t b = first / width; b <= (first + element_bytes - 1) / width; ++b)
        words.insert(b);
    }
    std::vector<std::size_t> per_bank(out.banks, 0);
    for (const std::size_t wordi : words) per_bank[wordi % out.banks] += 1;
    out.strides.push_back(stride);
    out.theta.push_back(sim::strided_access_theta(dev, element_bytes, stride));
    out.word_hits.push_back(std::move(per_bank));
  }
  return out;
}

std::vector<RegionOpBreakdown> region_op_breakdown(const sim::Trace& trace,
                                                   const RegionProfiler& regions) {
  // Innermost-first: deeper intervals win; among equal depths, later ones
  // (loop iterations are disjoint in time, so at most one matches).
  const auto& intervals = regions.intervals();
  std::map<std::string, std::map<std::string, double>> acc;  // path -> kind -> cycles
  for (const auto& ev : trace.events()) {
    const RegionProfiler::Interval* best = nullptr;
    for (const auto& iv : intervals) {
      if (ev.issue < iv.start || ev.issue >= iv.end) continue;
      if (best == nullptr || iv.depth > best->depth) best = &iv;
    }
    const std::string path = best != nullptr ? best->path : std::string("(outside)");
    acc[path][sim::op_kind_name(ev.kind)] += ev.end - ev.issue;
  }
  std::vector<RegionOpBreakdown> out;
  for (auto& [path, kinds] : acc) {
    RegionOpBreakdown rb;
    rb.path = path;
    for (auto& [kind, cycles] : kinds) rb.op_cycles.emplace_back(kind, cycles);
    out.push_back(std::move(rb));
  }
  return out;
}

void dump_chrome_trace_with_regions(std::ostream& os, const sim::Trace& trace,
                                    const RegionProfiler* regions,
                                    std::string_view process_name) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) os << ",";
    first = false;
    os << event_json;
  };

  // Process / thread naming metadata so Perfetto labels the tracks.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"" +
       json_escape(process_name) + "\"}}");
  std::set<int> warps;
  for (const auto& ev : trace.events()) warps.insert(ev.warp);
  for (const int w : warps)
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(w) +
         ",\"args\":{\"name\":\"warp " + std::to_string(w) + "\"}}");

  for (const auto& ev : trace.events())
    emit("{\"name\":\"" + json_escape(sim::op_kind_name(ev.kind)) +
         "\",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(ev.warp) +
         ",\"ts\":" + json_number(ev.start) + ",\"dur\":" + json_number(ev.end - ev.start) +
         ",\"args\":{\"amount\":" + json_number(ev.amount) +
         ",\"issue\":" + json_number(ev.issue) + "}}");

  if (regions != nullptr && !regions->intervals().empty()) {
    // One track per nesting depth so overlapping parent/child phases render
    // as a flame-graph-style stack under the warps.
    std::set<int> depths;
    for (const auto& iv : regions->intervals()) depths.insert(iv.depth);
    for (const int d : depths)
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(1000 + d) + ",\"args\":{\"name\":\"phases (depth " +
           std::to_string(d) + ")\"}}");
    for (const auto& iv : regions->intervals()) {
      const std::size_t slash = iv.path.rfind('/');
      const std::string leaf =
          slash == std::string::npos ? iv.path : iv.path.substr(slash + 1);
      emit("{\"name\":\"" + json_escape(leaf) +
           "\",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(1000 + iv.depth) +
           ",\"ts\":" + json_number(iv.start) + ",\"dur\":" +
           json_number(iv.end - iv.start) + ",\"args\":{\"path\":\"" +
           json_escape(iv.path) + "\"}}");
    }
  }
  os << "]}";
}

}  // namespace kami::obs
