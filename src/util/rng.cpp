#include "util/rng.hpp"

namespace kami {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: expands a single seed into well-distributed initial state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t bound) noexcept {
  // Floating-point index mapping: bounds in this codebase are far below 2^53,
  // so uniform() * bound is exact enough (bias < 2^-40) and stays portable.
  const auto idx = static_cast<std::uint64_t>(uniform() * static_cast<double>(bound));
  return idx < bound ? idx : bound - 1;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace kami
