// Precondition checking used throughout the library.
//
// KAMI_REQUIRE throws kami::PreconditionError on failure regardless of build
// type: the library is a research artifact and silent precondition violations
// (e.g. a warp count that is not a perfect square for the 2D algorithm) would
// invalidate experiments. Hot inner loops use KAMI_ASSERT, which compiles out
// in release builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace kami {

/// Thrown when a public-API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void require_failed(const char* expr, const std::string& msg,
                                        const std::source_location loc) {
  std::string what = std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                     ": requirement failed: " + expr;
  if (!msg.empty()) what += " (" + msg + ")";
  throw PreconditionError(what);
}

}  // namespace detail

}  // namespace kami

#define KAMI_REQUIRE(expr, ...)                                                       \
  do {                                                                                \
    if (!(expr)) [[unlikely]] {                                                       \
      ::kami::detail::require_failed(#expr, ::std::string{__VA_ARGS__},               \
                                     ::std::source_location::current());              \
    }                                                                                 \
  } while (false)

#ifdef NDEBUG
#define KAMI_ASSERT(expr) ((void)0)
#else
#define KAMI_ASSERT(expr) KAMI_REQUIRE(expr)
#endif
