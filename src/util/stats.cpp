#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"

namespace kami {

double mean(std::span<const double> xs) {
  KAMI_REQUIRE(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  KAMI_REQUIRE(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    KAMI_REQUIRE(x > 0.0, "geomean requires positive inputs");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  KAMI_REQUIRE(xs.size() >= 2);
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  KAMI_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  KAMI_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  KAMI_REQUIRE(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double relative_error(double a, double b) {
  const double denom = std::max(std::abs(b), 1e-300);
  return std::abs(a - b) / denom;
}

}  // namespace kami
