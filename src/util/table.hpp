// Console table and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series of one paper figure or table;
// TablePrinter keeps that output aligned and also mirrors it to CSV so the
// series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kami {

class TablePrinter {
 public:
  /// Column headers define the table width; every row must match.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, header rule, and a title line.
  void print(std::ostream& os, const std::string& title) const;

  /// Comma-separated form of the same data (headers first).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

  // Raw cell access, used by the observability layer to capture a printed
  // table verbatim into a machine-readable run report.
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows_data() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34"); avoids locale surprises.
std::string fmt_double(double v, int precision = 2);

/// Human-oriented count like "16384".
std::string fmt_count(std::uint64_t v);

}  // namespace kami
