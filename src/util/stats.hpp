// Summary statistics used by the benchmark harness when reporting the
// average / peak speedups the paper quotes in Section 5.
#pragma once

#include <span>

namespace kami {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< All inputs must be > 0.
double stddev(std::span<const double> xs);   ///< Sample standard deviation.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::span<const double> xs);

/// Relative error |a - b| / max(|b|, eps); used by model-vs-measured checks.
double relative_error(double a, double b);

}  // namespace kami
