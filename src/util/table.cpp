#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace kami {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  KAMI_REQUIRE(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  KAMI_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

}  // namespace kami
