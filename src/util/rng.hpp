// Deterministic random number generation for reproducible experiments.
//
// All workload generators in the repository draw from Xoshiro256** seeded
// explicitly, so a bench or test rerun produces bit-identical matrices.
#pragma once

#include <cstdint>
#include <limits>

namespace kami {

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
/// std::mt19937 — guaranteed to produce the same stream on every platform
/// and standard-library implementation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t uniform_index(std::uint64_t bound) noexcept;

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept;

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace kami
