#include "types/decode_tables.hpp"

#include <cstring>

namespace kami::types {

const std::array<float, 1u << 16>& fp16_decode_table() {
  static const auto table = [] {
    std::array<float, 1u << 16> t{};
    for (std::uint32_t b = 0; b < (1u << 16); ++b)
      t[b] = fp16_t::decode(static_cast<std::uint16_t>(b));
    return t;
  }();
  return table;
}

const std::array<float, 1u << 16>& bf16_decode_table() {
  static const auto table = [] {
    std::array<float, 1u << 16> t{};
    for (std::uint32_t b = 0; b < (1u << 16); ++b)
      t[b] = bf16_t::decode(static_cast<std::uint16_t>(b));
    return t;
  }();
  return table;
}

const std::array<float, 1u << 8>& fp8_e4m3_decode_table() {
  static const auto table = [] {
    std::array<float, 1u << 8> t{};
    for (std::uint32_t b = 0; b < (1u << 8); ++b)
      t[b] = fp8_e4m3_t::decode(static_cast<std::uint8_t>(b));
    return t;
  }();
  return table;
}

#if !defined(KAMI_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))

namespace {
typedef std::uint32_t vu32 __attribute__((vector_size(32)));

inline vu32 splat_u32(std::uint32_t x) noexcept {
  vu32 v{};
  for (int l = 0; l < 8; ++l) v[l] = x;
  return v;
}
}  // namespace

void round_to_tf32_span(const float* src, float* dst, std::size_t n) noexcept {
  // Lane-wise transcription of the scalar round_to_tf32: RNE on the low 13
  // mantissa bits for finite lanes, inf/NaN lanes pass through untouched
  // (payload preserved). Integer arithmetic only, so every lane is exact.
  const vu32 exp_mask = splat_u32(0x7F800000u);
  const vu32 round_bias = splat_u32(0x0FFFu);
  const vu32 ones = splat_u32(1u);
  const vu32 keep_mask = splat_u32(~0x1FFFu);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vu32 bits;
    std::memcpy(&bits, src + i, sizeof(bits));
    const vu32 lsb = (bits >> 13) & ones;
    const vu32 rounded = (bits + round_bias + lsb) & keep_mask;
    // Comparison lanes are all-ones (finite) / all-zeros (inf or NaN).
    const vu32 fmask = vu32((bits & exp_mask) != exp_mask);
    const vu32 out = (rounded & fmask) | (bits & ~fmask);
    std::memcpy(dst + i, &out, sizeof(out));
  }
  for (; i < n; ++i) dst[i] = round_to_tf32(src[i]);
}

#else  // KAMI_NO_SIMD

void round_to_tf32_span(const float* src, float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = round_to_tf32(src[i]);
}

#endif

}  // namespace kami::types
