// Uniform compile-time interface over the storage scalar types used by the
// simulated tensor cores. Each trait exposes:
//   acc_t       — the accumulator type the MMA instruction uses (Table 4),
//   precision   — the runtime Precision tag,
//   to_acc/from_acc — lossless widening / correctly-rounded narrowing.
#pragma once

#include "types/float_formats.hpp"

namespace kami {

/// TF32 storage: a float that has already been rounded to 10 mantissa bits.
/// Modelled as a distinct type so GEMM code paths can be generic over the
/// storage format while TF32's input rounding stays explicit.
class tf32_t {
 public:
  tf32_t() = default;
  explicit tf32_t(float v) noexcept : value_(round_to_tf32(v)) {}
  explicit operator float() const noexcept { return value_; }

  /// Wrap a float that has ALREADY been through round_to_tf32 without
  /// re-rounding it — the bulk writeback path rounds whole spans through the
  /// vectorized round_to_tf32_span first. Rounding is idempotent, so passing
  /// an unrounded value here would be a bug, not a different rounding.
  static tf32_t from_rounded(float v) noexcept {
    tf32_t t;
    t.value_ = v;
    return t;
  }

 private:
  float value_ = 0.0f;
};

template <typename T>
struct num_traits;

template <>
struct num_traits<double> {
  using acc_t = double;
  static constexpr Precision precision = Precision::FP64;
  static double to_acc(double v) noexcept { return v; }
  static double from_acc(double v) noexcept { return v; }
};

template <>
struct num_traits<float> {
  using acc_t = float;
  static constexpr Precision precision = Precision::FP32;
  static float to_acc(float v) noexcept { return v; }
  static float from_acc(float v) noexcept { return v; }
};

template <>
struct num_traits<tf32_t> {
  using acc_t = float;
  static constexpr Precision precision = Precision::TF32;
  static float to_acc(tf32_t v) noexcept { return static_cast<float>(v); }
  static tf32_t from_acc(float v) noexcept { return tf32_t{v}; }
};

template <>
struct num_traits<fp16_t> {
  using acc_t = float;
  static constexpr Precision precision = Precision::FP16;
  static float to_acc(fp16_t v) noexcept { return static_cast<float>(v); }
  static fp16_t from_acc(float v) noexcept { return fp16_t{v}; }
};

template <>
struct num_traits<bf16_t> {
  using acc_t = float;
  static constexpr Precision precision = Precision::BF16;
  static float to_acc(bf16_t v) noexcept { return static_cast<float>(v); }
  static bf16_t from_acc(float v) noexcept { return bf16_t{v}; }
};

template <>
struct num_traits<fp8_e4m3_t> {
  using acc_t = float;
  static constexpr Precision precision = Precision::FP8E4M3;
  static float to_acc(fp8_e4m3_t v) noexcept { return static_cast<float>(v); }
  static fp8_e4m3_t from_acc(float v) noexcept { return fp8_e4m3_t{v}; }
};

/// Concept: any scalar with a num_traits specialization.
template <typename T>
concept Scalar = requires(T v, typename num_traits<T>::acc_t a) {
  { num_traits<T>::to_acc(v) } -> std::same_as<typename num_traits<T>::acc_t>;
  { num_traits<T>::from_acc(a) } -> std::same_as<T>;
};

}  // namespace kami
