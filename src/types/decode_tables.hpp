// Precomputed decode tables for the emulated storage formats, plus bulk
// (span) conversion entry points for the numeric fast path.
//
// The scalar conversions in float_formats.{hpp,cpp} are the reference
// rounding model; they stay authoritative. The tables here are *derived*
// from them at first use — fp16/bf16 enumerate all 2^16 bit patterns, E4M3
// all 2^8 — so a table lookup is bit-identical to the scalar decode by
// construction (exhaustively asserted in tests/types/decode_tables_test.cpp).
// That bit-identity is what lets the NumericsOnly path decode m*k + k*n
// operand elements through one indexed load each instead of the branchy
// ldexp-based scalar routine, without perturbing a single result bit.
//
// round_to_tf32_span is the vectorized form of round_to_tf32: the same
// integer round-to-nearest-even on the low 13 mantissa bits, applied a
// vector register at a time with non-finite lanes passed through unchanged.
#pragma once

#include <array>
#include <cstddef>

#include "types/numeric_traits.hpp"

namespace kami::types {

/// bits -> float tables, built lazily from the scalar reference decoders.
const std::array<float, 1u << 16>& fp16_decode_table();
const std::array<float, 1u << 16>& bf16_decode_table();
const std::array<float, 1u << 8>& fp8_e4m3_decode_table();

/// Vectorized round_to_tf32 over a span; src and dst may alias exactly
/// (in-place) but must not partially overlap. Bit-identical to calling the
/// scalar round_to_tf32 per element.
void round_to_tf32_span(const float* src, float* dst, std::size_t n) noexcept;

/// Bulk storage -> accumulator decode. The generic form is the plain scalar
/// loop (float/double/tf32 widenings are identity loads the compiler
/// vectorizes); the LUT formats specialize below.
template <Scalar T>
inline void decode_span(const T* src, typename num_traits<T>::acc_t* dst,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = num_traits<T>::to_acc(src[i]);
}

template <>
inline void decode_span<fp16_t>(const fp16_t* src, float* dst, std::size_t n) {
  const auto& tab = fp16_decode_table();
  for (std::size_t i = 0; i < n; ++i) dst[i] = tab[src[i].bits()];
}

template <>
inline void decode_span<bf16_t>(const bf16_t* src, float* dst, std::size_t n) {
  const auto& tab = bf16_decode_table();
  for (std::size_t i = 0; i < n; ++i) dst[i] = tab[src[i].bits()];
}

template <>
inline void decode_span<fp8_e4m3_t>(const fp8_e4m3_t* src, float* dst,
                                    std::size_t n) {
  const auto& tab = fp8_e4m3_decode_table();
  for (std::size_t i = 0; i < n; ++i) dst[i] = tab[src[i].bits()];
}

/// Bulk accumulator -> storage narrowing (the writeback phase). Generic form
/// defers to the scalar from_acc; TF32 narrows through the vectorized
/// rounding kernel in chunks.
template <Scalar T>
inline void encode_span(const typename num_traits<T>::acc_t* src, T* dst,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = num_traits<T>::from_acc(src[i]);
}

template <>
inline void encode_span<tf32_t>(const float* src, tf32_t* dst, std::size_t n) {
  float chunk[256];
  for (std::size_t base = 0; base < n; base += 256) {
    const std::size_t w = n - base < 256 ? n - base : 256;
    round_to_tf32_span(src + base, chunk, w);
    for (std::size_t i = 0; i < w; ++i) dst[base + i] = tf32_t::from_rounded(chunk[i]);
  }
}

}  // namespace kami::types
