// Software emulation of the reduced-precision formats KAMI's tensor cores
// consume: IEEE binary16 (FP16), bfloat16, FP8 E4M3, and the TF32 input
// rounding mode. All conversions use round-to-nearest-even and are exact bit
// models of the hardware behaviour (saturating E4M3, as NVIDIA converts).
//
// The MMA units accumulate in a wider type (float for FP16/BF16/FP8/TF32,
// double for FP64), matching Table 4's instruction variants.
#pragma once

#include <cstdint>
#include <limits>

namespace kami {

namespace detail {

/// Round |x| to a float format with `mant_bits` explicit mantissa bits,
/// minimum normal exponent `min_exp` (value 2^min_exp), largest finite
/// magnitude `max_norm`, using round-to-nearest-even. Magnitudes that round
/// above max_norm saturate to max_norm (hardware-convert behaviour for E4M3)
/// or become infinity when `has_inf` is true.
double quantize_magnitude(double x, int mant_bits, int min_exp, double max_norm,
                          bool has_inf) noexcept;

/// The original quantize_magnitude-based fp16 encoder, kept as the reference
/// rounding model for the fast integer encoder in fp16_t::encode. The two
/// must agree bit-for-bit on every float input (exhaustively sampled in
/// tests/types/decode_tables_test.cpp).
std::uint16_t fp16_encode_reference(float v) noexcept;

}  // namespace detail

/// IEEE 754 binary16. Storage is the exact bit pattern; arithmetic promotes
/// to float (the accumulate width of fp16 tensor-core MMA).
class fp16_t {
 public:
  fp16_t() = default;
  explicit fp16_t(float v) noexcept : bits_(encode(v)) {}
  explicit operator float() const noexcept { return decode(bits_); }

  static fp16_t from_bits(std::uint16_t b) noexcept {
    fp16_t h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const noexcept { return bits_; }

  static std::uint16_t encode(float v) noexcept;
  static float decode(std::uint16_t b) noexcept;

 private:
  std::uint16_t bits_ = 0;
};

/// bfloat16: float with the mantissa truncated to 7 bits (RNE).
class bf16_t {
 public:
  bf16_t() = default;
  explicit bf16_t(float v) noexcept : bits_(encode(v)) {}
  explicit operator float() const noexcept { return decode(bits_); }

  static bf16_t from_bits(std::uint16_t b) noexcept {
    bf16_t h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const noexcept { return bits_; }

  static std::uint16_t encode(float v) noexcept;
  static float decode(std::uint16_t b) noexcept;

 private:
  std::uint16_t bits_ = 0;
};

/// FP8 E4M3 (OCP / NVIDIA): 1 sign, 4 exponent (bias 7), 3 mantissa.
/// No infinities; S.1111.111 is NaN; max finite = 448. Conversions saturate.
class fp8_e4m3_t {
 public:
  fp8_e4m3_t() = default;
  explicit fp8_e4m3_t(float v) noexcept : bits_(encode(v)) {}
  explicit operator float() const noexcept { return decode(bits_); }

  static fp8_e4m3_t from_bits(std::uint8_t b) noexcept {
    fp8_e4m3_t h;
    h.bits_ = b;
    return h;
  }
  std::uint8_t bits() const noexcept { return bits_; }

  static std::uint8_t encode(float v) noexcept;
  static float decode(std::uint8_t b) noexcept;

  static constexpr float max_finite() noexcept { return 448.0f; }

 private:
  std::uint8_t bits_ = 0;
};

/// TF32 input rounding: a float whose mantissa is rounded (RNE) to 10 bits.
/// TF32 tensor-core MMA reads A/B through this rounding and accumulates in
/// full float precision.
float round_to_tf32(float v) noexcept;

/// Runtime tag for the precisions KAMI supports (Section 5.1 evaluates
/// FP64, TF32, FP16 and FP8; BF16 is included for completeness).
enum class Precision : std::uint8_t { FP64, FP32, TF32, FP16, BF16, FP8E4M3 };

/// Size in bytes of one stored element (the paper's s_e).
constexpr std::size_t element_bytes(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 8;
    case Precision::FP32:
    case Precision::TF32: return 4;
    case Precision::FP16:
    case Precision::BF16: return 2;
    case Precision::FP8E4M3: return 1;
  }
  return 0;  // unreachable
}

const char* precision_name(Precision p) noexcept;

}  // namespace kami
