#include "types/float_formats.hpp"

#include <bit>
#include <cmath>

namespace kami {

namespace detail {

double quantize_magnitude(double x, int mant_bits, int min_exp, double max_norm,
                          bool has_inf) noexcept {
  if (x == 0.0) return 0.0;
  int e = std::ilogb(x);
  if (e < min_exp) e = min_exp;  // subnormal range: fixed quantum 2^(min_exp - mant_bits)
  const double quantum = std::ldexp(1.0, e - mant_bits);
  double q = std::nearbyint(x / quantum) * quantum;  // RNE under default rounding mode
  // Rounding can push into the next binade (e.g. 1.111..1 -> 10.0); that is a
  // representable value in the wider binade, so no fixup is needed — only the
  // overflow check below matters.
  if (q > max_norm) {
    return has_inf ? std::numeric_limits<double>::infinity() : max_norm;
  }
  return q;
}

std::uint16_t fp16_encode_reference(float v) noexcept {
  const std::uint32_t fbits = std::bit_cast<std::uint32_t>(v);
  const std::uint16_t sign = static_cast<std::uint16_t>((fbits >> 16) & 0x8000u);
  if (std::isnan(v)) return static_cast<std::uint16_t>(sign | 0x7E00u);
  // Infinite inputs must bypass quantize_magnitude: ilogb(inf) is INT_MAX,
  // which drives the quantum through ldexp overflow into inf/inf = NaN and
  // then an out-of-range float->int cast (UB). Encode the infinity directly.
  if (std::isinf(v)) return static_cast<std::uint16_t>(sign | 0x7C00u);
  const double mag = std::fabs(static_cast<double>(v));
  const double q = detail::quantize_magnitude(mag, 10, -14, 65504.0, /*has_inf=*/true);
  if (std::isinf(q)) return static_cast<std::uint16_t>(sign | 0x7C00u);
  if (q == 0.0) return sign;
  int e = std::ilogb(q);
  if (e < -14) {
    // Subnormal: value = m * 2^-24, 0 < m < 1024.
    const auto m = static_cast<std::uint16_t>(std::ldexp(q, 24));
    return static_cast<std::uint16_t>(sign | m);
  }
  const auto mant =
      static_cast<std::uint16_t>(std::ldexp(q, 10 - e) - 1024.0);  // strip implicit 1
  const auto biased = static_cast<std::uint16_t>(e + 15);
  return static_cast<std::uint16_t>(sign | static_cast<std::uint16_t>(biased << 10) | mant);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// fp16
// ---------------------------------------------------------------------------

// Pure integer float->binary16 conversion, round-to-nearest-even. The
// narrowing is a single rounding from the float significand, so the result
// equals detail::fp16_encode_reference on every input (no double rounding is
// possible). ~20x faster than the ilogb/nearbyint/ldexp reference, which
// matters because the numeric fast path pays one encode per C element.
std::uint16_t fp16_t::encode(float v) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(v);
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t abs = f & 0x7FFFFFFFu;
  if (abs > 0x7F800000u) return static_cast<std::uint16_t>(sign | 0x7E00u);  // NaN
  // |v| >= 65536 always rounds past the 65504 max finite -> infinity. Values
  // in [65520, 65536) overflow through the rounding carry in the normal
  // branch below, which lands exactly on the 0x7C00 infinity pattern.
  if (abs >= 0x47800000u) return static_cast<std::uint16_t>(sign | 0x7C00u);
  if (abs >= 0x38800000u) {
    // Normal half range [2^-14, 65536): the target ulp sits at float bit 13;
    // rebias the exponent (127-15 = 112) and apply RNE on the low 13 bits.
    const std::uint32_t lsb = (abs >> 13) & 1u;
    const std::uint32_t rounded = abs + 0x0FFFu + lsb;
    return static_cast<std::uint16_t>(sign | ((rounded >> 13) - (112u << 10)));
  }
  // Subnormal-or-zero result: |v| < 2^-14 quantizes to m * 2^-24. A carry to
  // m = 1024 spills into the 0x0400 exponent field, which is exactly the
  // encoding of 2^-14 — no fixup needed.
  const std::uint32_t e = abs >> 23;
  if (e < 102) return sign;  // |v| <= 2^-25 rounds to (signed) zero under RNE
  const std::uint32_t sig = (abs & 0x007FFFFFu) | 0x00800000u;
  const std::uint32_t shift = 126u - e;  // in [14, 24]
  const std::uint32_t m0 = sig >> shift;
  const std::uint32_t low = sig & ((1u << shift) - 1u);
  const std::uint32_t half = 1u << (shift - 1u);
  const std::uint32_t m = m0 + ((low > half || (low == half && (m0 & 1u))) ? 1u : 0u);
  return static_cast<std::uint16_t>(sign | m);
}

float fp16_t::decode(std::uint16_t b) noexcept {
  const float sign = (b & 0x8000u) ? -1.0f : 1.0f;
  const int biased = (b >> 10) & 0x1F;
  const int mant = b & 0x3FF;
  if (biased == 0x1F) {
    if (mant != 0) return std::numeric_limits<float>::quiet_NaN();
    return sign * std::numeric_limits<float>::infinity();
  }
  if (biased == 0) return sign * std::ldexp(static_cast<float>(mant), -24);
  return sign * std::ldexp(static_cast<float>(1024 + mant), biased - 15 - 10);
}

// ---------------------------------------------------------------------------
// bf16
// ---------------------------------------------------------------------------

std::uint16_t bf16_t::encode(float v) noexcept {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  if (std::isnan(v)) return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  // Round-to-nearest-even on the 16 discarded bits.
  const std::uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7FFFu + lsb;
  return static_cast<std::uint16_t>(bits >> 16);
}

float bf16_t::decode(std::uint16_t b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

// ---------------------------------------------------------------------------
// fp8 e4m3
// ---------------------------------------------------------------------------

std::uint8_t fp8_e4m3_t::encode(float v) noexcept {
  const std::uint32_t fbits = std::bit_cast<std::uint32_t>(v);
  const std::uint8_t sign = static_cast<std::uint8_t>((fbits >> 24) & 0x80u);
  if (std::isnan(v)) return static_cast<std::uint8_t>(sign | 0x7Fu);
  // E4M3 has no infinity and hardware convert saturates, so an infinite
  // input becomes the max finite (448). It must not reach quantize_magnitude
  // (ilogb(inf) = INT_MAX leads to a NaN and an out-of-range cast).
  if (std::isinf(v)) return static_cast<std::uint8_t>(sign | 0x7Eu);
  const double mag = std::fabs(static_cast<double>(v));
  // E4M3 has no infinity: conversions saturate to the max finite value.
  const double q = detail::quantize_magnitude(mag, 3, -6, 448.0, /*has_inf=*/false);
  if (q == 0.0) return sign;
  int e = std::ilogb(q);
  if (e < -6) {
    // Subnormal: value = m * 2^-9, 0 < m < 8.
    const auto m = static_cast<std::uint8_t>(std::ldexp(q, 9));
    return static_cast<std::uint8_t>(sign | m);
  }
  const auto mant = static_cast<std::uint8_t>(std::ldexp(q, 3 - e) - 8.0);
  const auto biased = static_cast<std::uint8_t>(e + 7);
  return static_cast<std::uint8_t>(sign | static_cast<std::uint8_t>(biased << 3) | mant);
}

float fp8_e4m3_t::decode(std::uint8_t b) noexcept {
  const float sign = (b & 0x80u) ? -1.0f : 1.0f;
  const int biased = (b >> 3) & 0xF;
  const int mant = b & 0x7;
  if (biased == 0xF && mant == 0x7) return std::numeric_limits<float>::quiet_NaN();
  if (biased == 0) return sign * std::ldexp(static_cast<float>(mant), -9);
  return sign * std::ldexp(static_cast<float>(8 + mant), biased - 7 - 3);
}

// ---------------------------------------------------------------------------
// tf32
// ---------------------------------------------------------------------------

float round_to_tf32(float v) noexcept {
  if (!std::isfinite(v)) return v;
  std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  // Keep 10 mantissa bits: RNE on the 13 discarded bits.
  const std::uint32_t lsb = (bits >> 13) & 1u;
  bits += 0x0FFFu + lsb;
  bits &= ~0x1FFFu;
  return std::bit_cast<float>(bits);
}

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return "FP64";
    case Precision::FP32: return "FP32";
    case Precision::TF32: return "TF32";
    case Precision::FP16: return "FP16";
    case Precision::BF16: return "BF16";
    case Precision::FP8E4M3: return "FP8";
  }
  return "?";
}

}  // namespace kami
