// Row-major host matrix container used for kernel inputs/outputs and for
// reference results. This is deliberately simple: the interesting data
// structures (register fragments, shared-memory layouts, block-sparse tiles)
// live in src/sim and src/sparse.
#pragma once

#include <cstddef>
#include <vector>

#include "types/numeric_traits.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace kami {

template <Scalar T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  T& operator()(std::size_t r, std::size_t c) {
    KAMI_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    KAMI_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T v) {
    for (auto& x : data_) x = v;
  }

  /// Widen every element to double (for error measurement).
  Matrix<double> to_double() const {
    Matrix<double> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out(r, c) = static_cast<double>(num_traits<T>::to_acc((*this)(r, c)));
    return out;
  }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Uniform random matrix in [lo, hi), rounded into T's precision.
template <Scalar T>
Matrix<T> random_matrix(std::size_t rows, std::size_t cols, Rng& rng, double lo = -1.0,
                        double hi = 1.0) {
  Matrix<T> m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = num_traits<T>::from_acc(
          static_cast<typename num_traits<T>::acc_t>(rng.uniform(lo, hi)));
  return m;
}

/// Largest absolute element-wise difference, computed in double.
template <Scalar T, Scalar U>
double max_abs_diff(const Matrix<T>& a, const Matrix<U>& b) {
  KAMI_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double da = static_cast<double>(num_traits<T>::to_acc(a(r, c)));
      const double db = static_cast<double>(num_traits<U>::to_acc(b(r, c)));
      const double diff = da > db ? da - db : db - da;
      if (diff > worst) worst = diff;
    }
  return worst;
}

}  // namespace kami
