// Z-Morton order utilities (Fig 7(b)).
//
// The 2D/3D sparse kernels index sub-grids of blocks; storing blocks in
// Morton order keeps every quadrant (and recursively every sub-quadrant)
// contiguous, which is what makes the "multi-level Z-Morton order ...
// similar to the sparse formats proposed by Buluc et al. and Yzelman et al."
// efficient for submatrix extraction.
#pragma once

#include <cstdint>

namespace kami::sparse {

/// Interleave the low 16 bits of x into even bit positions.
constexpr std::uint32_t part1by1(std::uint32_t x) noexcept {
  x &= 0x0000FFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

constexpr std::uint32_t compact1by1(std::uint32_t x) noexcept {
  x &= 0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0F0F0F0Fu;
  x = (x | (x >> 4)) & 0x00FF00FFu;
  x = (x | (x >> 8)) & 0x0000FFFFu;
  return x;
}

/// Morton code of block coordinate (row, col): row bits odd, col bits even.
constexpr std::uint32_t morton_encode(std::uint32_t row, std::uint32_t col) noexcept {
  return (part1by1(row) << 1) | part1by1(col);
}

constexpr std::uint32_t morton_row(std::uint32_t code) noexcept {
  return compact1by1(code >> 1);
}

constexpr std::uint32_t morton_col(std::uint32_t code) noexcept {
  return compact1by1(code);
}

}  // namespace kami::sparse
