// SpGEMM on KAMI's 2D CA pattern (§4.6: in the 2D algorithm "both A and B
// are copied in the sparse warp grid").
//
// sqrt(p) x sqrt(p) warp grid over block coordinates. Warp (r, c) owns the
// A and B sub-grids (r, c) — contiguous Val ranges under Z-Morton physical
// order — and accumulates the sparse C tile-set (r, c) whose structure the
// shared symbolic phase provides. SUMMA stages: at stage z, column-z warps
// broadcast sparse A(r, z) sub-grids along rows and row-z warps broadcast
// sparse B(z, c) sub-grids along columns (Val + RowPtr/ColBlkIdx for both);
// each warp then joins the received index sets and MMA-accumulates matched
// tile pairs into register-resident C tiles.
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include "sparse/spgemm.hpp"

namespace kami::sparse {

template <Scalar T>
SpgemmResult<T> spgemm_2d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                          const BlockSparseMatrix<T>& B,
                          const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(A.cols() == B.rows(), "inner dimensions must agree");
  KAMI_REQUIRE(A.tile() == B.tile(), "operand tile sizes must match");
  const std::size_t tile = A.tile();

  const auto p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 4);
  const auto q = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(p))));
  KAMI_REQUIRE(q * q == p, "2D SpGEMM requires a perfect-square warp count");
  KAMI_REQUIRE(A.block_rows() % q == 0 && A.block_cols() % q == 0 &&
                   B.block_cols() % q == 0,
               "warp grid must divide both block grids");
  const std::size_t abr = A.block_rows() / q;  // A block rows per grid cell
  const std::size_t abc = A.block_cols() / q;  // A block cols (= B block rows) per cell
  const std::size_t bbc = B.block_cols() / q;  // B block cols per cell

  SpgemmResult<T> out;
  out.symbolic = spgemm_symbolic(dev, A, B, static_cast<int>(p));

  sim::ThreadBlock blk(dev, static_cast<int>(p));
  const auto row_of = [&](std::size_t id) { return id / q; };
  const auto col_of = [&](std::size_t id) { return id % q; };

  struct WarpState {
    std::optional<sim::Fragment<T>> a_scratch, b_scratch;
    // C accumulators keyed by (global block row, global block col), limited
    // to this warp's (r, c) output window.
    std::map<std::pair<std::size_t, std::size_t>, sim::Fragment<Acc>> c_tiles;
  };
  std::vector<WarpState> st(p);

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t r = row_of(id), c = col_of(id);
    auto& s = st[id];
    s.a_scratch.emplace(w.regs(), tile, tile);
    s.b_scratch.emplace(w.regs(), tile, tile);
    // Resident loads for the owned sub-grids (Val + indices).
    const auto a_mine = A.blocks_in_window(r * abr, c * abc, abr, abc);
    const auto b_mine = B.blocks_in_window(r * abc, c * bbc, abc, bbc);
    w.charge_global_traffic((a_mine.size() + b_mine.size()) * tile * tile * sizeof(T) +
                            A.index_bytes() / p + B.index_bytes() / p);
    // C accumulators for this warp's output window, from the symbolic set.
    for (std::size_t br = r * abr; br < (r + 1) * abr; ++br)
      for (std::size_t bj : out.symbolic.c_cols_per_row[br])
        if (bj >= c * bbc && bj < (c + 1) * bbc)
          s.c_tiles.emplace(std::pair{br, bj}, sim::Fragment<Acc>(w.regs(), tile, tile));
  });
  blk.sync();

  double useful_flops = 0.0;
  for (std::size_t z = 0; z < q; ++z) {
    // Stage-z windows: A(r, z) per grid row, B(z, c) per grid column.
    std::vector<std::vector<BlockRef>> a_win(q), b_win(q);
    for (std::size_t r = 0; r < q; ++r)
      a_win[r] = A.blocks_in_window(r * abr, z * abc, abr, abc);
    for (std::size_t c = 0; c < q; ++c)
      b_win[c] = B.blocks_in_window(z * abc, c * bbc, abc, bbc);
    const auto win_bytes = [&](const std::vector<BlockRef>& win, std::size_t rows) {
      return win.size() * tile * tile * sizeof(T) + 4 * (win.size() + rows + 1);
    };

    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id), c = col_of(id);
      if (c == z) w.charge_smem_write_traffic(win_bytes(a_win[r], abr), opt.theta_w);
      if (r == z) w.charge_smem_write_traffic(win_bytes(b_win[c], abc), opt.theta_w);
    });
    blk.sync();

    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id), c = col_of(id);
      if (c != z) w.charge_smem_read_traffic(win_bytes(a_win[r], abr), opt.theta_r);
      if (r != z) w.charge_smem_read_traffic(win_bytes(b_win[c], abc), opt.theta_r);
    });
    blk.sync();

    // Join: for each received A tile (br, bk), match B tiles (bk, bj).
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id), c = col_of(id);
      auto& s = st[id];
      for (const auto& aref : a_win[r]) {
        for (const auto& bref : b_win[c]) {
          if (bref.block_row != aref.block_col) continue;
          w.charge_overhead(kSpgemmIndexingCycles);
          const auto avals = A.block_values(aref);
          const auto bvals = B.block_values(bref);
          for (std::size_t rr = 0; rr < tile; ++rr)
            for (std::size_t cc = 0; cc < tile; ++cc) {
              (*s.a_scratch)(rr, cc) = avals[rr * tile + cc];
              (*s.b_scratch)(rr, cc) = bvals[rr * tile + cc];
            }
          auto& ctile = s.c_tiles.at({aref.block_row, bref.block_col});
          w.mma(ctile, s.a_scratch->view(), s.b_scratch->view());
          useful_flops += 2.0 * static_cast<double>(tile * tile * tile);
        }
      }
    });
    blk.sync();
  }
  out.useful_flops = useful_flops;

  // Assemble C from the accumulators.
  Matrix<T> dense(A.rows(), B.cols());
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    for (const auto& [key, frag] : st[id].c_tiles) {
      const auto [br, bj] = key;
      w.store_global_narrowed(dense, frag, br * tile, bj * tile);
    }
  });
  blk.sync();

  out.profile = sim::profile_block(blk, useful_flops);
  out.C = BlockSparseMatrix<T>::from_dense(dense, tile, A.order());
  return out;
}

}  // namespace kami::sparse
