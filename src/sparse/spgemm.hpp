// SpGEMM: C (block-sparse) = A (block-sparse) x B (block-sparse), §4.6.
//
// Two phases, as in the paper:
//   * a symbolic kernel — a classic Gilbert sparse accumulator over block
//     coordinates that sizes C's structure before any numerics run; its
//     cost is modeled per SPA operation and reported separately;
//   * the CA numeric kernel — the 1D compute-communication pattern: warp i
//     holds a block-row stripe of A and of C, stages broadcast the z-th
//     block-row stripe of B (Val + RowPtr/ColBlkIdx index arrays, both
//     charged on the shared-memory port), and received tiles are matched
//     against A's ColBlkIdx and accumulated into register-resident C tiles
//     (the Hong-Buluc-style indexed accumulation).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/gemm.hpp"
#include "sim/block.hpp"
#include "sparse/block_sparse.hpp"

namespace kami::sparse {

/// Per-(A-tile, B-tile) indexing overhead in the numeric kernel: the
/// Hong-Buluc-style accumulation must match ColBlkIdx against the received
/// stripe's RowPtr and resolve the output tile's accumulator address —
/// irregular, data-dependent work that §5.5 identifies as the reason
/// SpGEMM's throughput sits below SpMM's.
inline constexpr double kSpgemmIndexingCycles = 24.0;

/// Symbolic-phase output: C's block structure plus the modeled cost.
struct SymbolicResult {
  std::vector<std::set<std::size_t>> c_cols_per_row;  ///< block cols per block row
  std::size_t nnz_blocks = 0;
  std::size_t spa_ops = 0;       ///< accumulator insertions examined
  double cycles = 0.0;           ///< modeled symbolic-kernel cycles
};

/// Gilbert-style sparse accumulator over block coordinates.
template <Scalar T>
SymbolicResult spgemm_symbolic(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                               const BlockSparseMatrix<T>& B, int warps = 4) {
  KAMI_REQUIRE(A.cols() == B.rows() && A.tile() == B.tile());
  SymbolicResult sym;
  sym.c_cols_per_row.resize(A.block_rows());
  for (std::size_t br = 0; br < A.block_rows(); ++br) {
    auto& spa = sym.c_cols_per_row[br];
    for (const auto& aref : A.row_blocks(br)) {
      for (const auto& bref : B.row_blocks(aref.block_col)) {
        spa.insert(bref.block_col);
        ++sym.spa_ops;
      }
    }
    sym.nnz_blocks += spa.size();
  }
  // Cost model: each SPA op is a flag test+set (~3 cycles) and each output
  // block a gather/write (~2 cycles), spread over the launched warps.
  const double serial =
      3.0 * static_cast<double>(sym.spa_ops) + 2.0 * static_cast<double>(sym.nnz_blocks);
  sym.cycles = serial / static_cast<double>(warps) + dev.gmem_latency_cycles;
  return sym;
}

template <Scalar T>
struct SpgemmResult {
  BlockSparseMatrix<T> C;
  sim::KernelProfile profile;     ///< numeric CA kernel
  SymbolicResult symbolic;
  double useful_flops = 0.0;      ///< 2 * tile^3 per matched tile pair
};

template <Scalar T>
SpgemmResult<T> spgemm_1d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                          const BlockSparseMatrix<T>& B,
                          const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(A.cols() == B.rows(), "inner dimensions must agree");
  KAMI_REQUIRE(A.tile() == B.tile(), "operand tile sizes must match");
  const std::size_t tile = A.tile();

  // Auto warp count: the largest p <= 4 dividing both block-row counts.
  std::size_t p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 4);
  if (opt.warps <= 0) {
    while (p > 1 && (A.block_rows() % p != 0 || B.block_rows() % p != 0)) --p;
  }
  KAMI_REQUIRE(A.block_rows() % p == 0, "warps must divide A's block-row count");
  KAMI_REQUIRE(B.block_rows() % p == 0, "warps must divide B's block-row count");
  const std::size_t a_stripe = A.block_rows() / p;
  const std::size_t b_stripe = B.block_rows() / p;

  SpgemmResult<T> out;
  out.symbolic = spgemm_symbolic(dev, A, B, static_cast<int>(p));

  sim::ThreadBlock blk(dev, static_cast<int>(p));

  struct WarpState {
    std::vector<sim::Fragment<T>> a_tiles;
    std::vector<BlockRef> a_refs;
    // C accumulators keyed by (local block row, block col).
    std::map<std::pair<std::size_t, std::size_t>, sim::Fragment<Acc>> c_tiles;
  };
  std::vector<WarpState> st(p);

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto i = static_cast<std::size_t>(w.id());
    auto& s = st[i];
    for (std::size_t br = i * a_stripe; br < (i + 1) * a_stripe; ++br) {
      for (const auto& ref : A.row_blocks(br)) {
        auto frag = w.alloc_fragment<T>(tile, tile);
        const auto vals = A.block_values(ref);
        for (std::size_t r = 0; r < tile; ++r)
          for (std::size_t c = 0; c < tile; ++c) frag(r, c) = vals[r * tile + c];
        w.charge_global_traffic(frag.bytes());
        s.a_tiles.push_back(std::move(frag));
        s.a_refs.push_back(ref);
      }
      // C accumulators from the symbolic structure.
      for (std::size_t bj : out.symbolic.c_cols_per_row[br]) {
        s.c_tiles.emplace(std::pair{br - i * a_stripe, bj},
                          sim::Fragment<Acc>(w.regs(), tile, tile));
      }
    }
    w.charge_global_traffic(A.index_bytes() / p);
  });
  blk.sync();

  // One receive scratch per warp for incoming B tiles.
  std::vector<std::optional<sim::Fragment<T>>> brecv(p);
  blk.phase([&](sim::Warp& w) {
    brecv[static_cast<std::size_t>(w.id())].emplace(w.regs(), tile, tile);
  });

  double useful_flops = 0.0;
  for (std::size_t z = 0; z < p; ++z) {
    // Gather the broadcast stripe's blocks (block rows [z*b_stripe, ...)).
    std::vector<BlockRef> stripe;
    std::size_t stripe_bytes = 0;
    for (std::size_t br = z * b_stripe; br < (z + 1) * b_stripe; ++br)
      for (const auto& ref : B.row_blocks(br)) {
        stripe.push_back(ref);
        stripe_bytes += tile * tile * sizeof(T);
      }
    const std::size_t stripe_index_bytes = 4 * (stripe.size() + b_stripe + 1);

    // Owner publishes Val + index arrays for its stripe.
    blk.phase([&](sim::Warp& w) {
      if (static_cast<std::size_t>(w.id()) != z) return;
      w.charge_global_traffic(stripe_bytes + stripe_index_bytes);
      w.charge_smem_write_traffic(stripe_bytes + stripe_index_bytes, opt.theta_w);
    });
    blk.sync();

    // Readers pull the stripe (everyone needs all of it: any of their A
    // columns may hit any of its rows).
    blk.phase([&](sim::Warp& w) {
      if (static_cast<std::size_t>(w.id()) == z) return;
      w.charge_smem_read_traffic(stripe_bytes + stripe_index_bytes, opt.theta_r);
    });
    blk.sync();

    // Numeric accumulation: match A tiles against the received stripe.
    blk.phase([&](sim::Warp& w) {
      const auto i = static_cast<std::size_t>(w.id());
      auto& s = st[i];
      auto& recv = *brecv[i];
      for (std::size_t t = 0; t < s.a_refs.size(); ++t) {
        const std::size_t bc = s.a_refs[t].block_col;
        if (bc < z * b_stripe || bc >= (z + 1) * b_stripe) continue;
        for (const auto& bref : B.row_blocks(bc)) {
          // Materialize the received tile into the scratch fragment.
          const auto vals = B.block_values(bref);
          for (std::size_t r = 0; r < tile; ++r)
            for (std::size_t c = 0; c < tile; ++c) recv(r, c) = vals[r * tile + c];
          auto& ctile = s.c_tiles.at(
              {s.a_refs[t].block_row - i * a_stripe, bref.block_col});
          w.charge_overhead(kSpgemmIndexingCycles);
          w.mma(ctile, s.a_tiles[t].view(), recv.view());
          useful_flops += 2.0 * static_cast<double>(tile * tile * tile);
        }
      }
    });
    blk.sync();
  }
  out.useful_flops = useful_flops;

  // Assemble C: narrowed accumulators into the symbolic structure.
  Matrix<T> dense(A.rows(), B.cols());
  blk.phase([&](sim::Warp& w) {
    const auto i = static_cast<std::size_t>(w.id());
    for (const auto& [key, frag] : st[i].c_tiles) {
      const auto [lbr, bj] = key;
      w.store_global_narrowed(dense, frag, (i * a_stripe + lbr) * tile, bj * tile);
    }
  });
  blk.sync();

  out.profile = sim::profile_block(blk, useful_flops);
  out.C = BlockSparseMatrix<T>::from_dense(dense, tile, A.order());
  return out;
}

}  // namespace kami::sparse
