// SpMM: C (dense) = A (block-sparse) x B (dense), on KAMI's 1D CA pattern
// (§4.6). Warp i holds a block-row stripe of A's nonzero tiles in registers
// and accumulates the matching dense stripe of C; the dense B is broadcast
// through shared memory stage by stage exactly as in the dense 1D
// algorithm. After each broadcast slice arrives, every warp scans its
// RowPtr/ColBlkIdx arrays for tiles in the slice's k-range and multiplies
// only those (the Koanantakool-style block-matching compute pattern).
#pragma once

#include <optional>
#include <vector>

#include "core/gemm.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"
#include "sparse/block_sparse.hpp"

namespace kami::sparse {

template <Scalar T>
struct SpmmResult {
  Matrix<T> C;
  sim::KernelProfile profile;
  double useful_flops = 0.0;  ///< 2 * tile^2 * n per stored A tile
};

template <Scalar T>
SpmmResult<T> spmm_1d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                      const Matrix<T>& B, const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  const std::size_t tile = A.tile();

  // Auto warp count: the largest p <= 4 dividing the block-row count.
  std::size_t p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 4);
  if (opt.warps <= 0) {
    while (p > 1 && A.block_rows() % p != 0) --p;
  }
  KAMI_REQUIRE(A.block_rows() % p == 0, "warps must divide the block-row count");
  KAMI_REQUIRE((k / p) % tile == 0, "stage k-chunk must be a whole number of tiles");
  const std::size_t stripe_brs = A.block_rows() / p;  // block rows per warp
  const std::size_t k_chunk = k / p;
  const std::size_t cols_per_stage = k_chunk / tile;  // B slices per stage

  sim::ThreadBlock blk(dev, static_cast<int>(p));

  // Per-warp register state: the stripe's nonzero A tiles plus the dense C
  // stripe accumulator and one B-slice receive buffer.
  struct WarpState {
    std::vector<sim::Fragment<T>> a_tiles;   // one fragment per stored tile
    std::vector<BlockRef> a_refs;            // matching refs (logical index)
    std::optional<sim::Fragment<Acc>> c;
    std::optional<sim::Fragment<T>> brecv;
  };
  std::vector<WarpState> st(p);

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto i = static_cast<std::size_t>(w.id());
    auto& s = st[i];
    for (std::size_t br = i * stripe_brs; br < (i + 1) * stripe_brs; ++br) {
      for (const auto& ref : A.row_blocks(br)) {
        auto frag = w.alloc_fragment<T>(tile, tile);
        const auto vals = A.block_values(ref);
        for (std::size_t r = 0; r < tile; ++r)
          for (std::size_t c = 0; c < tile; ++c) frag(r, c) = vals[r * tile + c];
        w.charge_global_traffic(frag.bytes());
        s.a_tiles.push_back(std::move(frag));
        s.a_refs.push_back(ref);
      }
    }
    // The index arrays ride along with the values (§4.6).
    w.charge_global_traffic(A.index_bytes() / p);
    s.c.emplace(w.regs(), stripe_brs * tile, n);
    s.brecv.emplace(w.regs(), tile, n);
  });
  blk.sync();

  auto SmB = blk.smem().alloc<T>(tile, n);

  double useful_flops = 0.0;
  for (std::size_t z = 0; z < p; ++z) {
    for (std::size_t s_idx = 0; s_idx < cols_per_stage; ++s_idx) {
      const std::size_t bc = z * cols_per_stage + s_idx;  // global block-col

      // Owner broadcasts this B row-slice (dense rows [bc*tile, ...)).
      blk.phase([&](sim::Warp& w) {
        if (static_cast<std::size_t>(w.id()) != z) return;
        auto& s = st[z];
        for (std::size_t r = 0; r < tile; ++r)
          for (std::size_t c = 0; c < n; ++c) (*s.brecv)(r, c) = B(bc * tile + r, c);
        w.charge_global_traffic(s.brecv->bytes());  // owner's resident load
        w.store_smem(SmB, s.brecv->view(), opt.theta_w);
      });
      blk.sync();

      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        if (i == z) return;
        w.load_smem(*st[i].brecv, SmB, opt.theta_r);
      });
      blk.sync();

      // Compute: every warp multiplies its tiles whose ColBlkIdx == bc.
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        auto& s = st[i];
        for (std::size_t t = 0; t < s.a_refs.size(); ++t) {
          if (s.a_refs[t].block_col != bc) continue;
          const std::size_t local_br = s.a_refs[t].block_row - i * stripe_brs;
          w.mma(*s.c, local_br * tile, 0, s.a_tiles[t].view(), s.brecv->view());
          useful_flops += 2.0 * static_cast<double>(tile * tile * n);
        }
      });
      blk.sync();
    }
  }

  SpmmResult<T> out{Matrix<T>(m, n), {}, useful_flops};
  blk.phase([&](sim::Warp& w) {
    const auto i = static_cast<std::size_t>(w.id());
    w.store_global_narrowed(out.C, *st[i].c, i * stripe_brs * tile, 0);
  });
  blk.sync();

  out.profile = sim::profile_block(blk, useful_flops);
  return out;
}

}  // namespace kami::sparse
