// Block-sparse storage (Fig 7).
//
// Sparse matrices are stored as dense tiles of user-configurable size
// (default 16x16, "selected to align with various tensor core shapes",
// §4.6) with CSR-style index arrays over block coordinates — the paper's
// RowPtr / ColBlkIdx / Val naming. Two physical orderings of the Val array:
//   RowMajor — blocks laid out row by row (the 1D algorithm, Fig 7(a));
//   ZMorton  — blocks sorted by the Morton code of their coordinates so
//              every quadrant is contiguous (the 2D/3D algorithms, Fig 7(b)).
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "sparse/morton.hpp"
#include "types/matrix.hpp"

namespace kami::sparse {

enum class BlockOrder : std::uint8_t { RowMajor, ZMorton };

/// One stored block: coordinates plus the offset of its tile in Val.
struct BlockRef {
  std::size_t block_row = 0;
  std::size_t block_col = 0;
  std::size_t val_offset = 0;  ///< element offset into the Val array
};

template <Scalar T>
class BlockSparseMatrix {
 public:
  static constexpr std::size_t kDefaultTile = 16;  // §4.6 default

  BlockSparseMatrix() = default;

  /// Build from dense, dropping all-zero tiles.
  static BlockSparseMatrix from_dense(const Matrix<T>& dense,
                                      std::size_t tile = kDefaultTile,
                                      BlockOrder order = BlockOrder::RowMajor) {
    KAMI_REQUIRE(tile >= 1);
    KAMI_REQUIRE(dense.rows() % tile == 0 && dense.cols() % tile == 0,
                 "matrix dimensions must be multiples of the tile size");
    std::vector<std::pair<std::size_t, std::size_t>> coords;
    const std::size_t brs = dense.rows() / tile, bcs = dense.cols() / tile;
    for (std::size_t br = 0; br < brs; ++br)
      for (std::size_t bc = 0; bc < bcs; ++bc) {
        bool nonzero = false;
        for (std::size_t r = 0; r < tile && !nonzero; ++r)
          for (std::size_t c = 0; c < tile && !nonzero; ++c)
            nonzero = num_traits<T>::to_acc(dense(br * tile + r, bc * tile + c)) !=
                      typename num_traits<T>::acc_t{};
        if (nonzero) coords.emplace_back(br, bc);
      }
    return build(dense, tile, order, coords);
  }

  /// Random block sparsity: each tile present with probability `density`,
  /// filled with uniform values (the paper's "50% random sparsity" setup).
  static BlockSparseMatrix random(std::size_t rows, std::size_t cols, double density,
                                  Rng& rng, std::size_t tile = kDefaultTile,
                                  BlockOrder order = BlockOrder::RowMajor) {
    KAMI_REQUIRE(density >= 0.0 && density <= 1.0);
    Matrix<T> dense(rows, cols);
    KAMI_REQUIRE(rows % tile == 0 && cols % tile == 0);
    std::vector<std::pair<std::size_t, std::size_t>> coords;
    for (std::size_t br = 0; br < rows / tile; ++br)
      for (std::size_t bc = 0; bc < cols / tile; ++bc) {
        if (!rng.bernoulli(density)) continue;
        coords.emplace_back(br, bc);
        for (std::size_t r = 0; r < tile; ++r)
          for (std::size_t c = 0; c < tile; ++c)
            dense(br * tile + r, bc * tile + c) = num_traits<T>::from_acc(
                static_cast<typename num_traits<T>::acc_t>(rng.uniform(-1.0, 1.0)));
      }
    return build(dense, tile, order, coords);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t tile() const noexcept { return tile_; }
  std::size_t block_rows() const noexcept { return rows_ / tile_; }
  std::size_t block_cols() const noexcept { return cols_ / tile_; }
  std::size_t nnz_blocks() const noexcept { return blocks_.size(); }
  BlockOrder order() const noexcept { return order_; }

  double block_density() const noexcept {
    const double total = static_cast<double>(block_rows() * block_cols());
    return total == 0.0 ? 0.0 : static_cast<double>(blocks_.size()) / total;
  }

  /// CSR over blocks: RowPtr has block_rows()+1 entries indexing into the
  /// row-sorted block list.
  std::span<const std::size_t> row_ptr() const noexcept { return row_ptr_; }
  /// Blocks of block-row br, sorted by column.
  std::span<const BlockRef> row_blocks(std::size_t br) const {
    KAMI_REQUIRE(br < block_rows());
    return std::span<const BlockRef>(blocks_).subspan(row_ptr_[br],
                                                      row_ptr_[br + 1] - row_ptr_[br]);
  }
  std::span<const BlockRef> all_blocks() const noexcept { return blocks_; }

  /// Tile values (tile x tile, row-major) of a stored block.
  std::span<const T> block_values(const BlockRef& ref) const {
    return std::span<const T>(val_).subspan(ref.val_offset, tile_ * tile_);
  }

  /// Look up block (br, bc); nullopt when structurally zero.
  std::optional<BlockRef> find(std::size_t br, std::size_t bc) const {
    const auto row = row_blocks(br);
    const auto it = std::lower_bound(
        row.begin(), row.end(), bc,
        [](const BlockRef& b, std::size_t col) { return b.block_col < col; });
    if (it == row.end() || it->block_col != bc) return std::nullopt;
    return *it;
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows_, cols_);
    for (const auto& ref : blocks_) {
      const auto vals = block_values(ref);
      for (std::size_t r = 0; r < tile_; ++r)
        for (std::size_t c = 0; c < tile_; ++c)
          out(ref.block_row * tile_ + r, ref.block_col * tile_ + c) =
              vals[r * tile_ + c];
    }
    return out;
  }

  /// Index-array bytes (RowPtr + ColBlkIdx) — the extra communication the
  /// sparse kernels must transfer alongside Val (§4.6). 4-byte indices.
  std::size_t index_bytes() const noexcept {
    return (row_ptr_.size() + blocks_.size()) * 4;
  }

  /// All stored blocks inside the block-coordinate window
  /// [br0, br0+nbr) x [bc0, bc0+nbc), in (row, col) order. With ZMorton
  /// physical ordering and power-of-two aligned windows the returned blocks'
  /// val_offsets are contiguous (Fig 7(b)'s sub-matrix extraction property,
  /// verified in tests).
  std::vector<BlockRef> blocks_in_window(std::size_t br0, std::size_t bc0,
                                         std::size_t nbr, std::size_t nbc) const {
    KAMI_REQUIRE(br0 + nbr <= block_rows() && bc0 + nbc <= block_cols());
    std::vector<BlockRef> out;
    for (std::size_t br = br0; br < br0 + nbr; ++br)
      for (const auto& ref : row_blocks(br))
        if (ref.block_col >= bc0 && ref.block_col < bc0 + nbc) out.push_back(ref);
    return out;
  }

 private:
  static BlockSparseMatrix build(
      const Matrix<T>& dense, std::size_t tile, BlockOrder order,
      std::vector<std::pair<std::size_t, std::size_t>>& coords) {
    BlockSparseMatrix m;
    m.rows_ = dense.rows();
    m.cols_ = dense.cols();
    m.tile_ = tile;
    m.order_ = order;

    // Physical Val layout: row-major or Morton-sorted.
    auto physical = coords;
    if (order == BlockOrder::ZMorton) {
      std::sort(physical.begin(), physical.end(), [](const auto& a, const auto& b) {
        return morton_encode(static_cast<std::uint32_t>(a.first),
                             static_cast<std::uint32_t>(a.second)) <
               morton_encode(static_cast<std::uint32_t>(b.first),
                             static_cast<std::uint32_t>(b.second));
      });
    } else {
      std::sort(physical.begin(), physical.end());
    }
    m.val_.resize(physical.size() * tile * tile);
    std::vector<std::vector<BlockRef>> per_row(dense.rows() / tile);
    for (std::size_t i = 0; i < physical.size(); ++i) {
      const auto [br, bc] = physical[i];
      const std::size_t off = i * tile * tile;
      for (std::size_t r = 0; r < tile; ++r)
        for (std::size_t c = 0; c < tile; ++c)
          m.val_[off + r * tile + c] = dense(br * tile + r, bc * tile + c);
      per_row[br].push_back(BlockRef{br, bc, off});
    }
    // Logical CSR index (row-sorted, column-sorted within a row) over the
    // physical layout.
    m.row_ptr_.assign(per_row.size() + 1, 0);
    for (std::size_t br = 0; br < per_row.size(); ++br) {
      auto& row = per_row[br];
      std::sort(row.begin(), row.end(),
                [](const BlockRef& a, const BlockRef& b) { return a.block_col < b.block_col; });
      m.row_ptr_[br + 1] = m.row_ptr_[br] + row.size();
      m.blocks_.insert(m.blocks_.end(), row.begin(), row.end());
    }
    return m;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t tile_ = kDefaultTile;
  BlockOrder order_ = BlockOrder::RowMajor;
  std::vector<BlockRef> blocks_;       ///< row-sorted logical index
  std::vector<std::size_t> row_ptr_;   ///< RowPtr
  std::vector<T> val_;                 ///< tile data in physical order
};

}  // namespace kami::sparse
