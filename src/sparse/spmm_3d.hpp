// SpMM on KAMI's 3D CA pattern (§4.6: "In the 2D and 3D algorithms, both A
// and B are copied in the sparse warp grid or cube").
//
// cbrt(p)^3 warp cube. Layer l covers the l-th k-segment: warp (i, j, l)
// computes the partial dense C tile (i, j) from A's sparse sub-grid (row
// stripe i, column stripe l) and B's dense tile (k-segment l, column stripe
// j). Ownership and broadcasts mirror the dense 3D kernel — A sub-grids
// (Val + index arrays) travel along the j dimension from warp (i, l, l),
// dense B tiles along the i dimension from warp (l, j, l) — followed by the
// inter-layer reduction of the dense partials through shared memory.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "core/gemm.hpp"
#include "sim/block.hpp"
#include "sparse/block_sparse.hpp"
#include "sparse/spmm.hpp"

namespace kami::sparse {

template <Scalar T>
SpmmResult<T> spmm_3d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                      const Matrix<T>& B, const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  const std::size_t tile = A.tile();

  const auto p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 8);
  const auto c = static_cast<std::size_t>(std::lround(std::cbrt(static_cast<double>(p))));
  KAMI_REQUIRE(c * c * c == p, "3D SpMM requires a perfect-cube warp count");
  KAMI_REQUIRE(A.block_rows() % c == 0 && A.block_cols() % c == 0 && n % c == 0,
               "warp cube must divide the block grid and n");
  const std::size_t gbr = A.block_rows() / c;  // A block rows per cube cell
  const std::size_t gbc = A.block_cols() / c;  // A block cols per cube cell
  const std::size_t nb = n / c;                // dense columns per warp
  const std::size_t kb = k / c;                // k extent per layer

  sim::ThreadBlock blk(dev, static_cast<int>(p));
  const auto layer_of = [&](std::size_t id) { return id / (c * c); };
  const auto row_of = [&](std::size_t id) { return (id % (c * c)) / c; };
  const auto col_of = [&](std::size_t id) { return id % c; };

  struct WarpState {
    std::optional<sim::Fragment<Acc>> cpart;  // partial dense C tile (mb x nb)
    std::optional<sim::Fragment<T>> brecv;    // dense B tile (kb x nb)
    std::optional<sim::Fragment<T>> ablock;   // received A tile scratch
  };
  std::vector<WarpState> st(p);

  // Stage windows: A(i, l) owned by warp (i, l, l).
  std::vector<std::vector<BlockRef>> windows(c * c);  // [i * c + l]
  for (std::size_t i = 0; i < c; ++i)
    for (std::size_t l = 0; l < c; ++l)
      windows[i * c + l] = A.blocks_in_window(i * gbr, l * gbc, gbr, gbc);
  const auto win_bytes = [&](const std::vector<BlockRef>& win) {
    return win.size() * tile * tile * sizeof(T) + 4 * (win.size() + gbr + 1);
  };

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto id = static_cast<std::size_t>(w.id());
    auto& s = st[id];
    s.cpart.emplace(w.regs(), gbr * tile, nb);
    s.brecv.emplace(w.regs(), kb, nb);
    s.ablock.emplace(w.regs(), tile, tile);
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (j == l) w.charge_global_traffic(win_bytes(windows[i * c + l]));
    if (i == l) w.charge_global_traffic(kb * nb * sizeof(T));
  });
  blk.sync();

  // Broadcast round: owners publish; readers pull (one round — the cube
  // assigns each warp exactly one A window and one B tile).
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (j == l) w.charge_smem_write_traffic(win_bytes(windows[i * c + l]), opt.theta_w);
    if (i == l) w.charge_smem_write_traffic(kb * nb * sizeof(T), opt.theta_w);
  });
  blk.sync();

  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (j != l) w.charge_smem_read_traffic(win_bytes(windows[i * c + l]), opt.theta_r);
    if (i != l) w.charge_smem_read_traffic(kb * nb * sizeof(T), opt.theta_r);
    // Materialize the dense B tile for this (l, j) cell.
    auto& s = st[id];
    for (std::size_t rr = 0; rr < kb; ++rr)
      for (std::size_t cc = 0; cc < nb; ++cc)
        (*s.brecv)(rr, cc) = B(l * kb + rr, j * nb + cc);
  });
  blk.sync();

  // Compute: each warp's single sparse-dense partial product.
  double useful_flops = 0.0;
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), l = layer_of(id);
    auto& s = st[id];
    for (const auto& ref : windows[i * c + l]) {
      const auto vals = A.block_values(ref);
      for (std::size_t rr = 0; rr < tile; ++rr)
        for (std::size_t cc = 0; cc < tile; ++cc)
          (*s.ablock)(rr, cc) = vals[rr * tile + cc];
      const std::size_t local_br = ref.block_row - i * gbr;
      const std::size_t b_row0 = ref.block_col * tile - l * kb;
      w.mma(*s.cpart, local_br * tile, 0, s.ablock->view(),
            s.brecv->view(b_row0, 0, tile, nb));
      useful_flops += 2.0 * static_cast<double>(tile * tile * nb);
    }
  });
  blk.sync();

  // Inter-layer reduction: layer 0 accumulates the dense partials, streamed
  // in <=16-column chunks (as in the dense 3D kernel).
  const std::size_t red_cols = nb < 16 ? nb : 16;
  std::vector<sim::SmemTile<Acc>> SmP;
  for (std::size_t g = 0; g < c * c; ++g)
    SmP.push_back(blk.smem().alloc<Acc>(gbr * tile, red_cols));
  std::vector<std::optional<sim::Fragment<Acc>>> scratch(p);
  blk.phase([&](sim::Warp& w) {
    scratch[static_cast<std::size_t>(w.id())].emplace(w.regs(), gbr * tile, red_cols);
  });

  for (std::size_t l = 1; l < c; ++l) {
    for (std::size_t c0 = 0; c0 < nb; c0 += red_cols) {
      const std::size_t cw = (c0 + red_cols <= nb) ? red_cols : nb - c0;
      blk.phase([&](sim::Warp& w) {
        const auto id = static_cast<std::size_t>(w.id());
        if (layer_of(id) != l) return;
        auto tile2 = SmP[row_of(id) * c + col_of(id)];
        tile2.cols = cw;
        w.store_smem(tile2, st[id].cpart->view(0, c0, gbr * tile, cw), opt.theta_w);
      });
      blk.sync();
      blk.phase([&](sim::Warp& w) {
        const auto id = static_cast<std::size_t>(w.id());
        if (layer_of(id) != 0) return;
        auto tile2 = SmP[row_of(id) * c + col_of(id)];
        tile2.cols = cw;
        if (cw == scratch[id]->cols()) {
          w.load_smem(*scratch[id], tile2, opt.theta_r);
          w.add_inplace_at(*st[id].cpart, 0, c0, scratch[id]->view());
        } else {
          auto tail = w.alloc_fragment<Acc>(gbr * tile, cw);
          w.load_smem(tail, tile2, opt.theta_r);
          w.add_inplace_at(*st[id].cpart, 0, c0, tail.view());
        }
      });
      blk.sync();
    }
  }

  SpmmResult<T> out{Matrix<T>(m, n), {}, useful_flops};
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    if (layer_of(id) != 0) return;
    w.store_global_narrowed(out.C, *st[id].cpart, row_of(id) * gbr * tile,
                            col_of(id) * nb);
  });
  blk.sync();

  out.profile = sim::profile_block(blk, useful_flops);
  return out;
}

}  // namespace kami::sparse
