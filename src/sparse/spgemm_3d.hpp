// SpGEMM on KAMI's 3D CA pattern — the last of §4.6's scheme x operation
// grid (SpMM and SpGEMM each on the 1D/2D/3D compute-communication
// patterns).
//
// cbrt(p)^3 warp cube; layer l covers the l-th k-segment of the contraction.
// Warp (i, j, l) joins A's sparse sub-grid (i, l) against B's sparse
// sub-grid (l, j) — both broadcast as Val + RowPtr/ColBlkIdx through shared
// memory from their diagonal owners — accumulating *sparse partial* C tiles
// whose structure is the layer-restricted symbolic set. The inter-layer
// reduction then merges the layers' sparse partials tile by tile (layers
// may contribute different structures; the union is the symbolic result).
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include "sparse/spgemm.hpp"

namespace kami::sparse {

template <Scalar T>
SpgemmResult<T> spgemm_3d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                          const BlockSparseMatrix<T>& B,
                          const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(A.cols() == B.rows(), "inner dimensions must agree");
  KAMI_REQUIRE(A.tile() == B.tile(), "operand tile sizes must match");
  const std::size_t tile = A.tile();

  const auto p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 8);
  const auto c = static_cast<std::size_t>(std::lround(std::cbrt(static_cast<double>(p))));
  KAMI_REQUIRE(c * c * c == p, "3D SpGEMM requires a perfect-cube warp count");
  KAMI_REQUIRE(A.block_rows() % c == 0 && A.block_cols() % c == 0 &&
                   B.block_cols() % c == 0,
               "warp cube must divide both block grids");
  const std::size_t abr = A.block_rows() / c;
  const std::size_t abc = A.block_cols() / c;  // = B block rows per cell
  const std::size_t bbc = B.block_cols() / c;

  SpgemmResult<T> out;
  out.symbolic = spgemm_symbolic(dev, A, B, static_cast<int>(p));

  sim::ThreadBlock blk(dev, static_cast<int>(p));
  const auto layer_of = [&](std::size_t id) { return id / (c * c); };
  const auto row_of = [&](std::size_t id) { return (id % (c * c)) / c; };
  const auto col_of = [&](std::size_t id) { return id % c; };

  struct WarpState {
    std::optional<sim::Fragment<T>> a_scratch, b_scratch;
    // Partial C tiles for this warp's (i, j) window, layer-local structure.
    std::map<std::pair<std::size_t, std::size_t>, sim::Fragment<Acc>> c_tiles;
  };
  std::vector<WarpState> st(p);

  // Ownership windows: A(i, l) from warp (i, l, l); B(l, j) from (l, j, l).
  std::vector<std::vector<BlockRef>> a_win(c * c), b_win(c * c);  // [i*c+l], [l*c+j]
  for (std::size_t i = 0; i < c; ++i)
    for (std::size_t l = 0; l < c; ++l)
      a_win[i * c + l] = A.blocks_in_window(i * abr, l * abc, abr, abc);
  for (std::size_t l = 0; l < c; ++l)
    for (std::size_t j = 0; j < c; ++j)
      b_win[l * c + j] = B.blocks_in_window(l * abc, j * bbc, abc, bbc);
  const auto win_bytes = [&](const std::vector<BlockRef>& win, std::size_t rows) {
    return win.size() * tile * tile * sizeof(T) + 4 * (win.size() + rows + 1);
  };

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    auto& s = st[id];
    s.a_scratch.emplace(w.regs(), tile, tile);
    s.b_scratch.emplace(w.regs(), tile, tile);
    if (j == l) w.charge_global_traffic(win_bytes(a_win[i * c + l], abr));
    if (i == l) w.charge_global_traffic(win_bytes(b_win[l * c + j], abc));
    // Layer-local partial structure: pairs whose bridge column is in
    // segment l — allocate those accumulators.
    for (const auto& aref : a_win[i * c + l])
      for (const auto& bref : b_win[l * c + j])
        if (bref.block_row == aref.block_col)
          s.c_tiles.try_emplace({aref.block_row, bref.block_col},
                                sim::Fragment<Acc>(w.regs(), tile, tile));
  });
  blk.sync();

  // Single broadcast round (ownership covers every window once).
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (j == l) w.charge_smem_write_traffic(win_bytes(a_win[i * c + l], abr), opt.theta_w);
    if (i == l) w.charge_smem_write_traffic(win_bytes(b_win[l * c + j], abc), opt.theta_w);
  });
  blk.sync();
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (j != l) w.charge_smem_read_traffic(win_bytes(a_win[i * c + l], abr), opt.theta_r);
    if (i != l) w.charge_smem_read_traffic(win_bytes(b_win[l * c + j], abc), opt.theta_r);
  });
  blk.sync();

  // Join within the layer.
  double useful_flops = 0.0;
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    auto& s = st[id];
    for (const auto& aref : a_win[i * c + l]) {
      for (const auto& bref : b_win[l * c + j]) {
        if (bref.block_row != aref.block_col) continue;
        w.charge_overhead(kSpgemmIndexingCycles);
        const auto avals = A.block_values(aref);
        const auto bvals = B.block_values(bref);
        for (std::size_t rr = 0; rr < tile; ++rr)
          for (std::size_t cc = 0; cc < tile; ++cc) {
            (*s.a_scratch)(rr, cc) = avals[rr * tile + cc];
            (*s.b_scratch)(rr, cc) = bvals[rr * tile + cc];
          }
        auto& ctile = s.c_tiles.at({aref.block_row, bref.block_col});
        w.mma(ctile, s.a_scratch->view(), s.b_scratch->view());
        useful_flops += 2.0 * static_cast<double>(tile * tile * tile);
      }
    }
  });
  blk.sync();
  out.useful_flops = useful_flops;

  // Inter-layer reduction: layers 1..c-1 stream their sparse partial tiles
  // (Val + coordinates) through shared memory; layer 0 merges — a sparse
  // accumulation, so the union structure is built tile by tile.
  Matrix<Acc> dense_acc(A.rows(), B.cols());
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    if (layer_of(id) == 0) return;
    const std::size_t bytes =
        st[id].c_tiles.size() * (tile * tile * sizeof(Acc) + 8);
    if (bytes > 0) w.charge_smem_write_traffic(bytes, opt.theta_w);
  });
  blk.sync();
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    const std::size_t i = row_of(id), j = col_of(id), l = layer_of(id);
    if (l != 0) return;
    // Pull every upper layer's partials for this (i, j) window and merge.
    std::size_t incoming = 0;
    for (std::size_t l2 = 1; l2 < c; ++l2)
      incoming += st[l2 * c * c + i * c + j].c_tiles.size();
    if (incoming > 0)
      w.charge_smem_read_traffic(incoming * (tile * tile * sizeof(Acc) + 8), opt.theta_r);
    w.charge_overhead(static_cast<double>(incoming) * 4.0);  // merge bookkeeping
  });
  blk.sync();

  // Assemble C (data path: all layers' accumulators summed per coordinate).
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    for (const auto& [key, frag] : st[id].c_tiles) {
      const auto [br, bj] = key;
      for (std::size_t rr = 0; rr < tile; ++rr)
        for (std::size_t cc = 0; cc < tile; ++cc)
          dense_acc(br * tile + rr, bj * tile + cc) += frag(rr, cc);
      if (layer_of(id) == 0) w.charge_global_traffic(tile * tile * sizeof(T));
    }
  });
  blk.sync();

  Matrix<T> dense(A.rows(), B.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t cc = 0; cc < dense.cols(); ++cc)
      dense(r, cc) = num_traits<T>::from_acc(dense_acc(r, cc));

  out.profile = sim::profile_block(blk, useful_flops);
  out.C = BlockSparseMatrix<T>::from_dense(dense, tile, A.order());
  return out;
}

}  // namespace kami::sparse
