// SpMM on KAMI's 2D CA pattern (§4.6: "In the 2D and 3D algorithms, both A
// and B are copied in the sparse warp grid or cube").
//
// sqrt(p) x sqrt(p) warp grid. Warp (r, c) owns the A sub-grid (block rows
// r, block cols c) — with Z-Morton physical storage each sub-grid is a
// contiguous Val range (Fig 7(b)) — plus the dense B tile (r, c) and
// accumulates the dense C tile (r, c). SUMMA-style stages: at stage z,
// column-z warps broadcast their sparse A sub-grids (Val *and* the
// RowPtr/ColBlkIdx index arrays, both charged) along their row, and row-z
// warps broadcast dense B tiles along their column; each warp then
// multiplies the received nonzero A tiles against the matching B tile rows.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "core/gemm.hpp"
#include "sim/block.hpp"
#include "sparse/block_sparse.hpp"
#include "sparse/spmm.hpp"

namespace kami::sparse {

template <Scalar T>
SpmmResult<T> spmm_2d(const sim::DeviceSpec& dev, const BlockSparseMatrix<T>& A,
                      const Matrix<T>& B, const core::GemmOptions& opt = {}) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  const std::size_t tile = A.tile();

  const auto p = static_cast<std::size_t>(opt.warps > 0 ? opt.warps : 4);
  const auto q = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(p))));
  KAMI_REQUIRE(q * q == p, "2D SpMM requires a perfect-square warp count");
  KAMI_REQUIRE(A.block_rows() % q == 0 && A.block_cols() % q == 0,
               "warp grid must divide the block grid");
  KAMI_REQUIRE(n % q == 0, "warp grid must divide n");
  const std::size_t gbr = A.block_rows() / q;  // block rows per grid cell
  const std::size_t gbc = A.block_cols() / q;  // block cols per grid cell
  const std::size_t nb = n / q;                // dense columns per warp
  const std::size_t kb = k / q;                // k extent per grid cell

  sim::ThreadBlock blk(dev, static_cast<int>(p));
  const auto row_of = [&](std::size_t id) { return id / q; };
  const auto col_of = [&](std::size_t id) { return id % q; };

  struct WarpState {
    std::optional<sim::Fragment<Acc>> c;      // dense C tile (mb x nb)
    std::optional<sim::Fragment<T>> brecv;    // dense B tile (kb x nb)
    std::optional<sim::Fragment<T>> ablock;   // one received A tile scratch
  };
  std::vector<WarpState> st(p);

  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(opt.charge_global_io);
    const auto id = static_cast<std::size_t>(w.id());
    auto& s = st[id];
    s.c.emplace(w.regs(), gbr * tile, nb);
    s.brecv.emplace(w.regs(), kb, nb);
    s.ablock.emplace(w.regs(), tile, tile);
    // Owned operands: the A sub-grid's tiles and the dense B tile are
    // charged as resident loads (Val + index arrays for A).
    const auto mine =
        A.blocks_in_window(row_of(id) * gbr, col_of(id) * gbc, gbr, gbc);
    w.charge_global_traffic(mine.size() * tile * tile * sizeof(T) +
                            A.index_bytes() / p);
    w.charge_global_traffic(kb * nb * sizeof(T));
  });
  blk.sync();

  double useful_flops = 0.0;
  for (std::size_t z = 0; z < q; ++z) {
    // Stage-z windows per grid row: A(r, z), owned by warp (r, z).
    std::vector<std::vector<BlockRef>> windows(q);
    for (std::size_t r = 0; r < q; ++r)
      windows[r] = A.blocks_in_window(r * gbr, z * gbc, gbr, gbc);

    // Write phase: column-z warps publish their sparse sub-grid (Val +
    // indices); row-z warps publish their dense B tile.
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id), c = col_of(id);
      if (c == z) {
        const std::size_t bytes =
            windows[r].size() * tile * tile * sizeof(T) + 4 * (windows[r].size() + gbr + 1);
        w.charge_smem_write_traffic(bytes, opt.theta_w);
      }
      if (r == z) w.charge_smem_write_traffic(kb * nb * sizeof(T), opt.theta_w);
    });
    blk.sync();

    // Read phase: A sub-grids travel along rows, B tiles along columns.
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id), c = col_of(id);
      if (c != z) {
        const std::size_t bytes =
            windows[r].size() * tile * tile * sizeof(T) + 4 * (windows[r].size() + gbr + 1);
        w.charge_smem_read_traffic(bytes, opt.theta_r);
      }
      if (r != z) w.charge_smem_read_traffic(kb * nb * sizeof(T), opt.theta_r);
      // Materialize the received dense tile (values from the host matrix;
      // the traffic above carries the cost).
      auto& s = st[id];
      for (std::size_t rr = 0; rr < kb; ++rr)
        for (std::size_t cc = 0; cc < nb; ++cc)
          (*s.brecv)(rr, cc) = B(z * kb + rr, c * nb + cc);
    });
    blk.sync();

    // Compute: received A tiles matched against the B tile's rows.
    blk.phase([&](sim::Warp& w) {
      const auto id = static_cast<std::size_t>(w.id());
      const std::size_t r = row_of(id);
      auto& s = st[id];
      for (const auto& ref : windows[r]) {
        const auto vals = A.block_values(ref);
        for (std::size_t rr = 0; rr < tile; ++rr)
          for (std::size_t cc = 0; cc < tile; ++cc)
            (*s.ablock)(rr, cc) = vals[rr * tile + cc];
        const std::size_t local_br = ref.block_row - r * gbr;
        const std::size_t b_row0 = ref.block_col * tile - z * kb;
        w.mma(*s.c, local_br * tile, 0, s.ablock->view(),
              s.brecv->view(b_row0, 0, tile, nb));
        useful_flops += 2.0 * static_cast<double>(tile * tile * nb);
      }
    });
    blk.sync();
  }

  SpmmResult<T> out{Matrix<T>(m, n), {}, useful_flops};
  blk.phase([&](sim::Warp& w) {
    const auto id = static_cast<std::size_t>(w.id());
    w.store_global_narrowed(out.C, *st[id].c, row_of(id) * gbr * tile,
                            col_of(id) * nb);
  });
  blk.sync();

  out.profile = sim::profile_block(blk, useful_flops);
  return out;
}

}  // namespace kami::sparse
