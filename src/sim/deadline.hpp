// Simulated-cycle deadline watchdog.
//
// A runaway simulation (a pathological plan, an injected fault that distorts
// cycle accounting, a shape far larger than intended) used to hang its caller
// until the host gave up. GemmOptions::deadline_cycles arms a per-warp budget:
// the moment any warp's clock passes the budget, the op that crossed it throws
// DeadlineExceeded. Because warp clocks advance deterministically, the abort
// happens at exactly the same op — and with exactly the same message — on
// every run of the same configuration (tested in tests/serve/serve_test.cpp).
//
// DeadlineExceeded is deliberately neither a PreconditionError (the request
// was not malformed, it just ran out of budget) nor an InvariantViolation
// (the simulator is healthy); the serving layer maps it to
// serve::ErrorCode::DeadlineExceeded.
#pragma once

#include <stdexcept>
#include <string>

namespace kami::sim {

/// Thrown by Warp when its clock passes GemmOptions::deadline_cycles.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace kami::sim
