#include "sim/device.hpp"

#include "util/require.hpp"

namespace kami::sim {

bool DeviceSpec::supports(Precision p) const noexcept {
  switch (p) {
    case Precision::FP64: return peak_fp64_tflops > 0.0;
    case Precision::FP32:
    case Precision::TF32: return peak_fp32_tflops > 0.0;
    case Precision::FP16:
    case Precision::BF16: return peak_fp16_tflops > 0.0;
    case Precision::FP8E4M3: return peak_fp8_tflops > 0.0;
  }
  return false;
}

double DeviceSpec::peak_tflops(Precision p) const {
  switch (p) {
    case Precision::FP64: return peak_fp64_tflops;
    case Precision::FP32:
    case Precision::TF32: return peak_fp32_tflops;
    case Precision::FP16:
    case Precision::BF16: return peak_fp16_tflops;
    case Precision::FP8E4M3: return peak_fp8_tflops;
  }
  return 0.0;
}

double DeviceSpec::ops_per_cycle_per_tc(Precision p) const {
  const double peak = peak_tflops(p);
  KAMI_REQUIRE(peak > 0.0, std::string("precision not supported on ") + name);
  return peak * 1e12 /
         (static_cast<double>(num_sms) * static_cast<double>(tensor_cores_per_sm) *
          boost_clock_ghz * 1e9);
}

double DeviceSpec::vector_flops_per_cycle(Precision p) const {
  switch (p) {
    case Precision::FP64: return vector_fp64_flops_per_cycle;
    case Precision::FP32:
    case Precision::TF32: return vector_fp32_flops_per_cycle;
    case Precision::FP16:
    case Precision::BF16:
    case Precision::FP8E4M3: return vector_fp16_flops_per_cycle;
  }
  return 0.0;
}

MmaShape DeviceSpec::mma_shape(Precision p) const {
  if (vendor == "NVIDIA") {
    switch (p) {
      case Precision::FP64: return {16, 8, 8};    // mma m16n8k8 (Table 4)
      case Precision::FP32:
      case Precision::TF32: return {16, 8, 8};    // mma.tf32 m16n8k8
      case Precision::FP16:
      case Precision::BF16: return {16, 8, 16};   // mma m16n8k16 (Table 4)
      case Precision::FP8E4M3: return {16, 8, 32};
    }
  }
  // AMD mma_sync and Intel joint_matrix_mad both expose m16n16k16 (Table 4).
  return {16, 16, 16};
}

namespace {

DeviceSpec make_gh200() {
  DeviceSpec d;
  d.name = "GH200";
  d.vendor = "NVIDIA";
  d.api = "CUDA";
  d.boost_clock_ghz = 1.980;  // Table 3
  d.num_sms = 132;            // Table 3: 132 x 4
  d.tensor_cores_per_sm = 4;
  d.smem_banks = 32;          // Table 3: 32 x 4 B
  d.bank_width_bytes = 4;
  d.smem_latency_cycles = 22.0;  // worked examples, §4.3; Fig 4(b) shows ~20
  d.smem_transaction_overhead_cycles = 12.0;
  d.sync_latency_cycles = 15.0;
  d.gmem_latency_cycles = 478.0;         // Hopper measured LD latency [Luo et al.]
  d.gmem_bytes_per_cycle_per_sm = 15.3;  // 4 TB/s HBM3 / 132 SM / 1.98 GHz
  d.reg_bytes_per_cycle = 512.0;         // Fig 4(b): ~1013.6 GB/s per warp
  d.smem_bytes_per_block = 227 * 1024;   // Hopper max dynamic smem per block
  d.peak_fp64_tflops = 67.0;   // Table 3
  d.peak_fp32_tflops = 494.0;  // TF32 = FP16/2 on Hopper
  d.peak_fp16_tflops = 990.0;  // Table 3
  d.peak_fp8_tflops = 1979.0;  // 2x FP16 on Hopper
  d.mma_efficiency = 0.62;     // §5.6.2: measured max MMA issue efficiency
  d.vector_fp64_flops_per_cycle = 128.0;   // 64 FP64 FMA/cycle/SM
  d.vector_fp32_flops_per_cycle = 256.0;   // 128 CUDA cores x FMA
  d.vector_fp16_flops_per_cycle = 256.0;
  return d;
}

DeviceSpec make_rtx5090() {
  DeviceSpec d;
  d.name = "RTX 5090";
  d.vendor = "NVIDIA";
  d.api = "CUDA";
  d.boost_clock_ghz = 2.655;  // Table 3
  d.num_sms = 170;            // Table 3: 170 x 4
  d.tensor_cores_per_sm = 4;
  d.smem_banks = 32;
  d.bank_width_bytes = 4;
  d.smem_latency_cycles = 22.0;
  d.smem_transaction_overhead_cycles = 12.0;
  d.sync_latency_cycles = 15.0;
  d.gmem_latency_cycles = 430.0;
  d.gmem_bytes_per_cycle_per_sm = 4.0;  // 1.79 TB/s GDDR7 / 170 SM / 2.655 GHz
  d.reg_bytes_per_cycle = 512.0;
  d.smem_bytes_per_block = 99 * 1024;
  d.peak_fp64_tflops = 0.0;    // Table 3: N/A (no FP64 tensor path)
  d.peak_fp32_tflops = 231.0;  // TF32 = FP16/2
  d.peak_fp16_tflops = 462.0;  // Table 3
  d.peak_fp8_tflops = 924.0;   // 2x FP16
  d.mma_efficiency = 0.80;     // consumer Blackwell sustains a higher fraction
  d.vector_fp64_flops_per_cycle = 4.0;     // 1/64-rate FP64 on consumer parts
  d.vector_fp32_flops_per_cycle = 256.0;
  d.vector_fp16_flops_per_cycle = 256.0;
  return d;
}

DeviceSpec make_amd7900xtx() {
  DeviceSpec d;
  d.name = "7900 XTX";
  d.vendor = "AMD";
  d.api = "HIP";
  d.boost_clock_ghz = 2.498;  // Table 3
  d.num_sms = 96;             // Table 3: 96 x 2 (WMMA units per CU)
  d.tensor_cores_per_sm = 2;
  d.smem_banks = 32;
  d.bank_width_bytes = 4;
  d.smem_latency_cycles = 25.0;  // RDNA3 LDS
  d.smem_transaction_overhead_cycles = 14.0;
  d.sync_latency_cycles = 18.0;
  d.gmem_latency_cycles = 500.0;
  d.gmem_bytes_per_cycle_per_sm = 4.0;  // 960 GB/s / 96 CU / 2.498 GHz
  d.reg_bytes_per_cycle = 512.0;
  d.smem_bytes_per_block = 64 * 1024;  // LDS size
  d.sm_register_bytes = 192 * 1024;     // RDNA3 VGPR budget per CU
  d.peak_fp16_tflops = 123.0;          // Table 3
  d.mma_efficiency = 0.75;
  d.vector_fp64_flops_per_cycle = 16.0;
  d.vector_fp32_flops_per_cycle = 256.0;   // 2x SIMD32 VALUs, dual-issue FMA
  d.vector_fp16_flops_per_cycle = 512.0;   // packed v_pk_fma_f16
  return d;
}

DeviceSpec make_intel_max1100() {
  DeviceSpec d;
  d.name = "Max 1100";
  d.vendor = "Intel";
  d.api = "SYCL";
  d.boost_clock_ghz = 1.550;  // Table 3
  d.num_sms = 448;            // Table 3: 448 x 1 (XVEs with one XMX each)
  d.tensor_cores_per_sm = 1;
  d.smem_banks = 16;  // Table 3: 16 x 4 B
  d.bank_width_bytes = 4;
  d.smem_latency_cycles = 30.0;  // Xe SLM
  d.smem_transaction_overhead_cycles = 20.0;
  d.sync_latency_cycles = 25.0;
  d.gmem_latency_cycles = 520.0;
  d.gmem_bytes_per_cycle_per_sm = 1.8;  // 1.23 TB/s / 448 / 1.55 GHz
  d.reg_bytes_per_cycle = 512.0;
  d.smem_bytes_per_block = 128 * 1024;
  d.sm_register_bytes = 512 * 1024;  // 8 XVE threads x 64 KiB GRF
  d.peak_fp16_tflops = 22.0;  // Table 3
  d.mma_efficiency = 0.85;
  d.vector_fp64_flops_per_cycle = 16.0;
  d.vector_fp32_flops_per_cycle = 16.0;    // XVE SIMD8 FMA
  d.vector_fp16_flops_per_cycle = 8.0;     // scalar-path half on XVE
  return d;
}

}  // namespace

void validate_device(const DeviceSpec& d) {
  const auto fail = [&](const char* field, const std::string& detail) {
    throw PreconditionError("invalid DeviceSpec \"" + d.name + "\": field " + field +
                            " " + detail);
  };
  const auto positive = [&](const char* field, double v) {
    if (!(v > 0.0)) fail(field, "must be positive (got " + std::to_string(v) + ")");
  };
  const auto non_negative = [&](const char* field, double v) {
    if (!(v >= 0.0)) fail(field, "must be non-negative (got " + std::to_string(v) + ")");
  };
  if (d.name.empty())
    throw PreconditionError("invalid DeviceSpec: field name must be non-empty");
  positive("boost_clock_ghz", d.boost_clock_ghz);
  positive("num_sms", d.num_sms);
  positive("tensor_cores_per_sm", d.tensor_cores_per_sm);
  positive("smem_banks", d.smem_banks);
  positive("bank_width_bytes", d.bank_width_bytes);
  positive("threads_per_warp", d.threads_per_warp);
  positive("max_registers_per_thread", d.max_registers_per_thread);
  positive("sm_register_bytes", static_cast<double>(d.sm_register_bytes));
  positive("smem_bytes_per_block", static_cast<double>(d.smem_bytes_per_block));
  positive("gmem_bytes_per_cycle_per_sm", d.gmem_bytes_per_cycle_per_sm);
  positive("reg_bytes_per_cycle", d.reg_bytes_per_cycle);
  non_negative("smem_latency_cycles", d.smem_latency_cycles);
  non_negative("smem_transaction_overhead_cycles", d.smem_transaction_overhead_cycles);
  non_negative("sync_latency_cycles", d.sync_latency_cycles);
  non_negative("gmem_latency_cycles", d.gmem_latency_cycles);
  if (!(d.mma_efficiency > 0.0) || d.mma_efficiency > 1.0)
    fail("mma_efficiency", "must be in (0, 1] (got " + std::to_string(d.mma_efficiency) + ")");
  for (const double peak : {d.peak_fp64_tflops, d.peak_fp32_tflops, d.peak_fp16_tflops,
                            d.peak_fp8_tflops})
    if (peak < 0.0) fail("peak_*_tflops", "must be non-negative");
  if (!(d.peak_fp64_tflops > 0.0 || d.peak_fp32_tflops > 0.0 ||
        d.peak_fp16_tflops > 0.0 || d.peak_fp8_tflops > 0.0))
    fail("peak_*_tflops", "must expose at least one supported precision");
}

const DeviceSpec& gh200() {
  static const DeviceSpec d = make_gh200();
  return d;
}
const DeviceSpec& rtx5090() {
  static const DeviceSpec d = make_rtx5090();
  return d;
}
const DeviceSpec& amd7900xtx() {
  static const DeviceSpec d = make_amd7900xtx();
  return d;
}
const DeviceSpec& intel_max1100() {
  static const DeviceSpec d = make_intel_max1100();
  return d;
}

const DeviceSpec& device_by_name(const std::string& name) {
  if (name == "GH200") return gh200();
  if (name == "RTX 5090") return rtx5090();
  if (name == "7900 XTX") return amd7900xtx();
  if (name == "Max 1100") return intel_max1100();
  throw PreconditionError("unknown device: " + name);
}

}  // namespace kami::sim
