// Contended-resource timelines.
//
// The simulator's concurrency model: every warp carries its own clock; every
// shared hardware resource (the shared-memory data port, each tensor-core
// unit) is a timeline that serializes occupancy. A warp's operation begins at
// max(warp clock, resource availability) — which is exactly how the paper
// reasons about serialized inter-warp broadcasts ("broadcasts between warps
// are performed serially due to the limited number of shared memory banks").
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/require.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

/// Cycle timestamps are doubles so fractional-byte/B_sm occupancies keep
/// full precision; results are compared against analytic formulas.
using Cycles = double;

/// A single serially-shared resource (e.g. the shared-memory port).
class PortTimeline {
 public:
  /// Reserve the port for `occupancy` cycles at the earliest point >= t.
  /// Returns the start time of the reservation.
  Cycles acquire(Cycles t, Cycles occupancy) {
    KAMI_INVARIANT(occupancy >= 0.0, "port occupancy must be non-negative");
    KAMI_INVARIANT(t >= 0.0, "port acquired before cycle zero");
    const Cycles start = free_at_ > t ? free_at_ : t;
    free_at_ = start + occupancy;
    busy_ += KAMI_FAULT_SKEW(port_busy_skew, occupancy);
    // Conservation: reservations are serial, so the cycles ever charged to
    // busy_ can never exceed the end of the reserved timeline. Holds exactly
    // in floating point (both sides accumulate the same occupancies and
    // rounding is monotone), so a violation is real double-charging.
    KAMI_INVARIANT(busy_ <= free_at_,
                   "port busy accounting exceeds the reserved timeline");
    return start;
  }

  Cycles free_at() const noexcept { return free_at_; }

  /// Total cycles the port has been occupied — the steady-state throughput
  /// model uses this as the communication resource demand per block.
  Cycles busy_cycles() const noexcept { return busy_; }

  void reset() noexcept {
    free_at_ = 0.0;
    busy_ = 0.0;
  }

 private:
  Cycles free_at_ = 0.0;
  Cycles busy_ = 0.0;
};

/// n_tc identical units; an MMA grabs the earliest-available one.
///
/// The pool keeps its units in a binary min-heap ordered by
/// (free_at, unit index), so acquire() is O(log n_tc) instead of the seed's
/// O(n_tc) linear min-scan. The lexicographic key reproduces the scan's
/// tie-break exactly: among units free at the same cycle, the lowest index
/// wins (pinned by UnitPoolTieBreak / UnitPoolMatchesLinearScan tests), so
/// reservation schedules — and therefore every cycle profile — are unchanged.
class UnitPool {
 public:
  explicit UnitPool(std::size_t units) {
    KAMI_REQUIRE(units >= 1);
    units_ = units;
    fill_idle();
  }

  /// Reserve the earliest-available unit at >= t for `occupancy` cycles;
  /// ties break to the lowest unit index (deterministic).
  Cycles acquire(Cycles t, Cycles occupancy) {
    KAMI_INVARIANT(occupancy >= 0.0, "unit occupancy must be non-negative");
    KAMI_INVARIANT(t >= 0.0, "unit acquired before cycle zero");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry& e = heap_.back();
    const Cycles start = e.free_at > t ? e.free_at : t;
    KAMI_INVARIANT(start >= t, "unit reservation cannot start before request");
    e.free_at = start + occupancy;
    last_unit_ = e.unit;
    std::push_heap(heap_.begin(), heap_.end(), later);
    busy_ += occupancy;
    return start;
  }

  std::size_t units() const noexcept { return units_; }
  Cycles busy_cycles() const noexcept { return busy_; }

  /// The unit index the most recent acquire() reserved (units() when none
  /// yet). Exposed so determinism tests can pin the tie-break order.
  std::size_t last_acquired_unit() const noexcept { return last_unit_; }

  void reset() noexcept {
    fill_idle();
    busy_ = 0.0;
  }

 private:
  struct Entry {
    Cycles free_at = 0.0;
    std::size_t unit = 0;
  };
  /// Heap comparator: `a` is served after `b`. Lexicographic on
  /// (free_at, unit) makes the heap top the earliest-free, lowest-index unit.
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.free_at != b.free_at ? a.free_at > b.free_at : a.unit > b.unit;
  }

  void fill_idle() {
    heap_.clear();
    heap_.reserve(units_);
    // All-idle entries in index order already satisfy the heap property.
    for (std::size_t u = 0; u < units_; ++u) heap_.push_back(Entry{0.0, u});
    last_unit_ = units_;
  }

  std::size_t units_ = 0;
  std::vector<Entry> heap_;
  std::size_t last_unit_ = 0;
  Cycles busy_ = 0.0;
};

/// Where a warp spent its cycles; drives the Fig 15 breakdown.
struct CycleBreakdown {
  Cycles smem_comm = 0.0;   ///< Reg2SMem + SMem2Reg (latency + occupancy + stall)
  Cycles gmem = 0.0;        ///< global loads/stores
  Cycles reg_copy = 0.0;    ///< intra-warp Reg2Reg
  Cycles compute = 0.0;     ///< tensor-core MMA (incl. unit contention stall)
  Cycles sync_wait = 0.0;   ///< waiting at __syncthreads

  Cycles total() const noexcept { return smem_comm + gmem + reg_copy + compute + sync_wait; }

  CycleBreakdown& operator+=(const CycleBreakdown& o) noexcept {
    smem_comm += o.smem_comm;
    gmem += o.gmem;
    reg_copy += o.reg_copy;
    compute += o.compute;
    sync_wait += o.sync_wait;
    return *this;
  }
};

}  // namespace kami::sim
