#include "sim/bank_conflicts.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "util/require.hpp"

namespace kami::sim {

double strided_access_theta(const DeviceSpec& dev, std::size_t element_bytes,
                            std::size_t element_stride) {
  KAMI_REQUIRE(element_bytes > 0);
  const auto banks = static_cast<std::size_t>(dev.smem_banks);
  const auto width = static_cast<std::size_t>(dev.bank_width_bytes);
  KAMI_REQUIRE(banks > 0 && width > 0);

  // Enumerate the distinct bank words the warp touches: accesses to the
  // same word by several lanes broadcast (one transaction); an element
  // wider than a bank word touches several words.
  std::set<std::size_t> words;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    const std::size_t first = lane * element_stride * element_bytes;
    for (std::size_t b = first / width; b <= (first + element_bytes - 1) / width; ++b)
      words.insert(b);
  }
  std::vector<std::size_t> per_bank(banks, 0);
  for (std::size_t wordi : words) per_bank[wordi % banks] += 1;

  const std::size_t actual_cycles = *std::max_element(per_bank.begin(), per_bank.end());
  const std::size_t ideal_cycles = (words.size() + banks - 1) / banks;
  return static_cast<double>(ideal_cycles) / static_cast<double>(actual_cycles);
}

double column_access_theta(const DeviceSpec& dev, std::size_t element_bytes,
                           std::size_t cols) {
  return strided_access_theta(dev, element_bytes, cols);
}

std::size_t conflict_free_padding(const DeviceSpec& dev, std::size_t element_bytes,
                                  std::size_t cols) {
  for (std::size_t pad = 0; pad < static_cast<std::size_t>(dev.smem_banks); ++pad) {
    if (strided_access_theta(dev, element_bytes, cols + pad) == 1.0) return pad;
  }
  return 0;  // no padding within one bank cycle helps (should not happen)
}

}  // namespace kami::sim
