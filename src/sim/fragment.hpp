// Register fragments: warp-owned matrix tiles living in the register file.
//
// A Fragment allocates its bytes from the owning warp's RegisterFile (RAII),
// so register pressure is enforced by construction: a kernel that keeps too
// much data warp-local throws RegisterOverflow exactly where real code would
// spill, and the §4.7 cooperation layer handles it.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/register_file.hpp"
#include "types/numeric_traits.hpp"
#include "util/require.hpp"

namespace kami::sim {

template <Scalar T>
class Fragment;

/// Lightweight rectangular view into a fragment (e.g. the paper's
/// A_i[:][z*k/p : (z+1)*k/p] column slice fed to the tensor core).
template <Scalar T>
class FragView {
 public:
  FragView(const Fragment<T>& frag, std::size_t r0, std::size_t c0, std::size_t rows,
           std::size_t cols)
      : frag_(&frag), r0_(r0), c0_(c0), rows_(rows), cols_(cols) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  const T& operator()(std::size_t r, std::size_t c) const {
    KAMI_ASSERT(r < rows_ && c < cols_);
    return (*frag_)(r0_ + r, c0_ + c);
  }

  /// Pointer to this view's row `r` (cols() contiguous elements): fragment
  /// storage is row-major, so a view row is a contiguous slice of the
  /// underlying fragment row. This is what lets the Full-mode data plane
  /// decode/copy whole rows through the span kernels instead of walking
  /// operator() element by element.
  const T* row(std::size_t r) const noexcept {
    return frag_->data() + (r0_ + r) * frag_->cols() + c0_;
  }

  /// A sub-window of this view (same underlying fragment).
  FragView window(std::size_t r0, std::size_t c0, std::size_t rows, std::size_t cols) const {
    KAMI_REQUIRE(r0 + rows <= rows_ && c0 + cols <= cols_);
    return FragView(*frag_, r0_ + r0, c0_ + c0, rows, cols);
  }

  std::size_t bytes() const noexcept { return rows_ * cols_ * sizeof(T); }

 private:
  const Fragment<T>* frag_;
  std::size_t r0_, c0_, rows_, cols_;
};

template <Scalar T>
class Fragment {
 public:
  Fragment(RegisterFile& regs, std::size_t rows, std::size_t cols)
      : regs_(&regs), rows_(rows), cols_(cols), data_(rows * cols, T{}) {
    regs_->allocate(bytes());
  }

  ~Fragment() {
    if (regs_ != nullptr) regs_->release(bytes());
  }

  Fragment(Fragment&& o) noexcept
      : regs_(std::exchange(o.regs_, nullptr)),
        rows_(o.rows_),
        cols_(o.cols_),
        data_(std::move(o.data_)) {}
  Fragment& operator=(Fragment&&) = delete;
  Fragment(const Fragment&) = delete;
  Fragment& operator=(const Fragment&) = delete;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t bytes() const noexcept { return rows_ * cols_ * sizeof(T); }

  T& operator()(std::size_t r, std::size_t c) {
    KAMI_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    KAMI_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Pointer to row `r` (cols() contiguous elements, row-major storage).
  T* row_data(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const T* row_data(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  FragView<T> view() const { return FragView<T>(*this, 0, 0, rows_, cols_); }
  FragView<T> view(std::size_t r0, std::size_t c0, std::size_t rows, std::size_t cols) const {
    KAMI_REQUIRE(r0 + rows <= rows_ && c0 + cols <= cols_);
    return FragView<T>(*this, r0, c0, rows, cols);
  }

  void fill(T v) {
    for (auto& x : data_) x = v;
  }

 private:
  RegisterFile* regs_;
  std::size_t rows_, cols_;
  std::vector<T> data_;
};

}  // namespace kami::sim
