// Execution tracing: an optional per-block event recorder.
//
// When enabled on a ThreadBlock, every cycle-charged operation appends a
// TraceEvent (warp, kind, start/end cycle, bytes or flops). Uses:
//   * invariant checking — tests assert that no two occupancy intervals on
//     a serial resource overlap and that every warp's events are ordered;
//   * debugging and teaching — `dump_chrome_trace` emits the Chrome
//     about://tracing JSON format so a kernel's phase structure can be
//     inspected visually;
//   * profiling — per-kind aggregation independent of the CycleBreakdown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/resources.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

enum class OpKind : std::uint8_t {
  SmemStore,
  SmemLoad,
  RegCopy,
  Mma,
  VectorOp,
  GmemLoad,
  GmemStore,
  SyncWait,
  Overhead,
};

const char* op_kind_name(OpKind k) noexcept;

struct TraceEvent {
  int warp = 0;
  OpKind kind = OpKind::SmemStore;
  Cycles issue = 0.0;   ///< warp clock when the op was issued
  Cycles start = 0.0;   ///< when the resource began serving it
  Cycles end = 0.0;     ///< when the warp's clock advanced to
  double amount = 0.0;  ///< bytes moved or flops executed
};

class Trace {
 public:
  void record(TraceEvent ev) {
#if KAMI_CHECK_INVARIANTS
    KAMI_INVARIANT(ev.warp >= 0, "trace event warp id must be non-negative");
    KAMI_INVARIANT(ev.amount >= 0.0, "trace event amount must be non-negative");
    KAMI_INVARIANT(0.0 <= ev.issue && ev.issue <= ev.start && ev.start <= ev.end,
                   "trace event must satisfy 0 <= issue <= start <= end");
    const auto w = static_cast<std::size_t>(ev.warp);
    if (w >= last_issue_.size()) last_issue_.resize(w + 1, 0.0);
    KAMI_INVARIANT(ev.issue >= last_issue_[w],
                   "a warp's trace events must be issued in non-decreasing order");
    last_issue_[w] = ev.issue;
#endif
    events_.push_back(ev);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept {
    events_.clear();
#if KAMI_CHECK_INVARIANTS
    last_issue_.clear();
#endif
  }

  /// Total `amount` across events of one kind.
  double total_amount(OpKind kind) const;

  /// Events of one warp, in issue order.
  std::vector<TraceEvent> warp_events(int warp) const;

  /// Chrome trace-event JSON ("traceEvents" array, microsecond timestamps
  /// with 1 cycle = 1 us so the viewer's zoom is usable).
  void dump_chrome_trace(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
#if KAMI_CHECK_INVARIANTS
  std::vector<Cycles> last_issue_;  ///< per-warp issue-ordering watermark
#endif
};

}  // namespace kami::sim
