// The warp execution context: a clock plus typed, cycle-charged operations
// over the block's memory spaces and compute units.
//
// Operation cost model (matches Section 4's formulas):
//   Reg2SMem   — port occupancy bytes/(theta_w * B_sm); the writing warp does
//                not stall on L_sm (stores retire through the store path and
//                visibility is established by the following __syncthreads).
//   SMem2Reg   — L_sm latency + port occupancy bytes/(theta_r * B_sm); reads
//                from concurrent warps serialize on the port, giving the
//                (p-1)/p read terms of formulas (2), (6), (10).
//   Reg2Reg    — 1 cycle + bytes / register-move bandwidth (the paper treats
//                intra-warp transfer as negligible; it is, but it is modelled).
//   MMA        — ceil-padded to the device's instruction shape; occupies the
//                earliest-free of n_tc units for flops/O_tc cycles. The warp
//                itself experiences flops/O_tc/mma_efficiency (the §5.6.2
//                issue-efficiency gap), while the unit is booked at the ideal
//                rate so multi-block steady state can still reach peak.
//   Global     — gmem latency + bytes/bandwidth on the per-SM gmem port.
//
// Data plane (numerics half of each op). Since PR 10 the fragment ops run on
// the same vector kernels as the NumericsOnly fast path
// (core/vector_kernels.hpp): mma/fma_scalar decode operand rows through the
// types/decode_tables LUT spans into arena scratch and accumulate with
// accumulate_row_tile; add_inplace uses the element-wise add_span;
// fragment<->smem/global copies are row-granular memcpys. Each C element is
// still one ascending-k sequential chain in accumulator precision, narrowed
// once — so results are bit-identical to the scalar seed loops and to
// NumericsOnly (differential-tested, in SIMD and KAMI_NO_SIMD builds).
// Scratch comes from the per-thread core::Arena, marked and rewound per op:
// steady-state simulation performs zero heap allocations in the data plane.
//
// The timing half of every op is untouched: clock advances, port/unit
// acquires, and trace record() calls are exactly the seed model, so cycle
// profiles are bit-identical too. Hot-path metric counters are batched in
// PendingWarpMetrics (plain doubles) and flushed to the atomic registry
// handles at block-profile/destruction time instead of per op.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>

#include "core/arena.hpp"
#include "core/vector_kernels.hpp"
#include "obs/metrics.hpp"
#include "sim/deadline.hpp"
#include "sim/device.hpp"
#include "sim/exec_mode.hpp"
#include "sim/fragment.hpp"
#include "sim/register_file.hpp"
#include "sim/resources.hpp"
#include "sim/shared_memory.hpp"
#include "sim/trace.hpp"
#include "types/decode_tables.hpp"
#include "types/matrix.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

/// Handles into the process-global obs::MetricRegistry for the warp's
/// hot-path counters, resolved by name once per warp so an update is one
/// add on a double. Metric names are part of the observability contract
/// documented in README.md ("Observability").
struct WarpMetricHandles {
  obs::Counter& smem_bytes_written;
  obs::Counter& smem_bytes_read;
  obs::Counter& smem_conflicted_transfers;
  obs::Counter& smem_conflict_excess_cycles;
  obs::Counter& gmem_bytes_loaded;
  obs::Counter& gmem_bytes_stored;
  obs::Counter& reg_bytes_copied;
  obs::Counter& mma_instructions;
  obs::Counter& mma_flops;
  obs::Counter& vector_flops;
  obs::Counter& sync_wait_cycles;

  static WarpMetricHandles acquire() {
    auto& r = obs::MetricRegistry::current();
    return WarpMetricHandles{r.counter("sim.smem.bytes_written"),
                             r.counter("sim.smem.bytes_read"),
                             r.counter("sim.smem.conflicted_transfers"),
                             r.counter("sim.smem.conflict_excess_cycles"),
                             r.counter("sim.gmem.bytes_loaded"),
                             r.counter("sim.gmem.bytes_stored"),
                             r.counter("sim.reg.bytes_copied"),
                             r.counter("sim.mma.instructions"),
                             r.counter("sim.mma.flops"),
                             r.counter("sim.vector.flops"),
                             r.counter("sim.sync.wait_cycles")};
  }
};

/// Per-warp metric accumulator: ops bump plain (non-atomic) doubles and the
/// totals are published to the WarpMetricHandles atomics in one batch by
/// flush_metrics() — at block profiling and at warp destruction. A block
/// simulation is single-threaded, so nothing observes the counters mid-op;
/// batching removes eleven potential atomic RMWs from the per-op path.
struct PendingWarpMetrics {
  double smem_bytes_written = 0.0;
  double smem_bytes_read = 0.0;
  double smem_conflicted_transfers = 0.0;
  double smem_conflict_excess_cycles = 0.0;
  double gmem_bytes_loaded = 0.0;
  double gmem_bytes_stored = 0.0;
  double reg_bytes_copied = 0.0;
  double mma_instructions = 0.0;
  double mma_flops = 0.0;
  double vector_flops = 0.0;
  double sync_wait_cycles = 0.0;
};

class Warp {
 public:
  Warp(int id, const DeviceSpec& dev, SharedMemory& smem, UnitPool& tensor_cores,
       PortTimeline& gmem_port, PortTimeline& vector_pipe)
      : id_(id),
        dev_(&dev),
        smem_(&smem),
        tc_(&tensor_cores),
        gmem_port_(&gmem_port),
        vector_pipe_(&vector_pipe),
        regs_(dev.reg_bytes_per_warp()) {}

  ~Warp() { flush_metrics(); }
  Warp(const Warp&) = delete;
  Warp& operator=(const Warp&) = delete;

  int id() const noexcept { return id_; }

  /// Select which halves of each op run (see sim/exec_mode.hpp). Shape
  /// checks and fragment/smem allocations stay active in every mode so
  /// feasibility errors are mode-independent.
  void set_mode(ExecMode mode) noexcept {
    numerics_ = mode_computes(mode);
    timing_ = mode_times(mode);
  }
  bool numerics_enabled() const noexcept { return numerics_; }
  bool timing_enabled() const noexcept { return timing_; }

  /// Arm the cycle-budget watchdog: once this warp's clock passes `cycles`,
  /// the op that crossed it throws sim::DeadlineExceeded. 0 disarms. Clock
  /// advances are deterministic, so the abort point (and message) is too.
  void set_deadline(Cycles cycles) noexcept { deadline_ = cycles; }
  Cycles deadline() const noexcept { return deadline_; }

  Cycles clock() const noexcept { return clock_; }
  RegisterFile& regs() noexcept { return regs_; }
  const RegisterFile& regs() const noexcept { return regs_; }
  const CycleBreakdown& breakdown() const noexcept { return bd_; }
  const DeviceSpec& device() const noexcept { return *dev_; }

  /// Publish the batched per-warp counter totals into the registry handles.
  /// Idempotent; called by ThreadBlock profiling and by the destructor, and
  /// safe to call from const contexts (the pending block is a cache, not
  /// observable state).
  void flush_metrics() const {
    PendingWarpMetrics& p = pending_;
    if (p.smem_bytes_written != 0.0) metrics_.smem_bytes_written.add(p.smem_bytes_written);
    if (p.smem_bytes_read != 0.0) metrics_.smem_bytes_read.add(p.smem_bytes_read);
    if (p.smem_conflicted_transfers != 0.0)
      metrics_.smem_conflicted_transfers.add(p.smem_conflicted_transfers);
    if (p.smem_conflict_excess_cycles != 0.0)
      metrics_.smem_conflict_excess_cycles.add(p.smem_conflict_excess_cycles);
    if (p.gmem_bytes_loaded != 0.0) metrics_.gmem_bytes_loaded.add(p.gmem_bytes_loaded);
    if (p.gmem_bytes_stored != 0.0) metrics_.gmem_bytes_stored.add(p.gmem_bytes_stored);
    if (p.reg_bytes_copied != 0.0) metrics_.reg_bytes_copied.add(p.reg_bytes_copied);
    if (p.mma_instructions != 0.0) metrics_.mma_instructions.add(p.mma_instructions);
    if (p.mma_flops != 0.0) metrics_.mma_flops.add(p.mma_flops);
    if (p.vector_flops != 0.0) metrics_.vector_flops.add(p.vector_flops);
    if (p.sync_wait_cycles != 0.0) metrics_.sync_wait_cycles.add(p.sync_wait_cycles);
    p = PendingWarpMetrics{};
  }

  /// Allocate a fragment in this warp's register file.
  template <Scalar T>
  Fragment<T> alloc_fragment(std::size_t rows, std::size_t cols) {
    return Fragment<T>(regs_, rows, cols);
  }

  // -- shared memory ---------------------------------------------------------

  /// Reg2SMem: write a register tile into shared memory.
  template <Scalar T>
  void store_smem(const SmemTile<T>& dst, const FragView<T>& src, double theta_w = 1.0) {
    KAMI_REQUIRE(src.rows() == dst.rows && src.cols() == dst.cols,
                 "smem tile shape mismatch");
    if (numerics_) copy_view_to_smem(dst, src);
    if (!timing_) return;
    const Cycles occ = smem_->transfer_occupancy(src.bytes(), theta_w) +
                       dev_->smem_transaction_overhead_cycles;
    const Cycles issue = clock_;
    const Cycles start = smem_->port().acquire(clock_, occ);
    advance(start + occ, bd_.smem_comm);
    pending_.smem_bytes_written += static_cast<double>(src.bytes());
    note_smem_conflict(src.bytes(), theta_w);
    record(OpKind::SmemStore, issue, start, static_cast<double>(src.bytes()));
  }

  /// SMem2Reg: read a shared-memory tile into registers.
  template <Scalar T>
  void load_smem(Fragment<T>& dst, const SmemTile<T>& src, double theta_r = 1.0) {
    KAMI_REQUIRE(dst.rows() == src.rows && dst.cols() == src.cols,
                 "smem tile shape mismatch");
    if (numerics_) smem_->read(src, dst.data(), dst.rows() * dst.cols());
    if (!timing_) return;
    const Cycles occ = smem_->transfer_occupancy(dst.bytes(), theta_r) +
                       dev_->smem_transaction_overhead_cycles;
    const Cycles issue = clock_;
    const Cycles start = smem_->port().acquire(clock_, occ);
    advance(start + occ + smem_->latency(), bd_.smem_comm);
    pending_.smem_bytes_read += static_cast<double>(dst.bytes());
    note_smem_conflict(dst.bytes(), theta_r);
    record(OpKind::SmemLoad, issue, start, static_cast<double>(dst.bytes()));
  }

  // -- registers --------------------------------------------------------------

  /// Reg2Reg: intra-warp copy (the owner warp's BSend -> BRecv, §4.3).
  template <Scalar T>
  void copy_reg(Fragment<T>& dst, const FragView<T>& src) {
    KAMI_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols());
    if (numerics_ && src.cols() > 0)
      // memmove: fragment rows are contiguous; source and destination may be
      // views of the same fragment.
      for (std::size_t r = 0; r < src.rows(); ++r)
        std::memmove(dst.row_data(r), src.row(r), src.cols() * sizeof(T));
    if (!timing_) return;
    const Cycles issue = clock_;
    advance(clock_ + 1.0 + static_cast<double>(src.bytes()) / dev_->reg_bytes_per_cycle,
            bd_.reg_copy);
    pending_.reg_bytes_copied += static_cast<double>(src.bytes());
    record(OpKind::RegCopy, issue, issue, static_cast<double>(src.bytes()));
  }

  // -- compute ----------------------------------------------------------------

  /// Tensor-core MMA: C[cr0.., cc0..] += A x B, accumulated in AccT.
  template <Scalar T>
  void mma(Fragment<typename num_traits<T>::acc_t>& C, std::size_t cr0, std::size_t cc0,
           const FragView<T>& A, const FragView<T>& B) {
    KAMI_REQUIRE(A.cols() == B.rows(), "mma inner dimensions must agree");
    KAMI_REQUIRE(cr0 + A.rows() <= C.rows() && cc0 + B.cols() <= C.cols());
    if (numerics_) mma_accumulate(C, cr0, cc0, A, B);
    charge_mma(num_traits<T>::precision, A.rows(), B.cols(), A.cols());
  }

  template <Scalar T>
  void mma(Fragment<typename num_traits<T>::acc_t>& C, const FragView<T>& A,
           const FragView<T>& B) {
    mma(C, 0, 0, A, B);
  }

  /// Element-wise accumulate C += P (used by the 3D inter-layer reduction);
  /// runs on the vector pipe, not the tensor cores.
  template <Scalar T>
  void add_inplace(Fragment<T>& C, const FragView<T>& P) {
    KAMI_REQUIRE(C.rows() == P.rows() && C.cols() == P.cols());
    if (numerics_) add_rows(C, 0, 0, P);
    charge_vector_flops(static_cast<double>(C.rows() * C.cols()), num_traits<T>::precision);
  }

  /// Element-wise accumulate into a window of C: C[r0.., c0..] += P.
  /// Used by the 3D algorithm's chunked inter-layer reduction.
  template <Scalar T>
  void add_inplace_at(Fragment<T>& C, std::size_t r0, std::size_t c0,
                      const FragView<T>& P) {
    KAMI_REQUIRE(r0 + P.rows() <= C.rows() && c0 + P.cols() <= C.cols());
    if (numerics_) add_rows(C, r0, c0, P);
    charge_vector_flops(static_cast<double>(P.rows() * P.cols()), num_traits<T>::precision);
  }

  /// Scalar (non-tensor-core) FMA GEMM: C += A x B on the CUDA-core/XVE
  /// vector pipeline. Used by the SYCL-Bench-like baseline.
  template <Scalar T>
  void fma_scalar(Fragment<typename num_traits<T>::acc_t>& C, const FragView<T>& A,
                  const FragView<T>& B) {
    KAMI_REQUIRE(A.cols() == B.rows());
    KAMI_REQUIRE(A.rows() <= C.rows() && B.cols() <= C.cols());
    if (numerics_) mma_accumulate(C, 0, 0, A, B);
    charge_vector_flops(2.0 * static_cast<double>(A.rows() * B.cols() * A.cols()),
                        num_traits<T>::precision);
  }

  // -- global memory ----------------------------------------------------------

  /// GMem2Reg: load a rows x cols window of `src` at (r0, c0).
  template <Scalar T>
  void load_global(Fragment<T>& dst, const Matrix<T>& src, std::size_t r0, std::size_t c0) {
    KAMI_REQUIRE(r0 + dst.rows() <= src.rows() && c0 + dst.cols() <= src.cols());
    if (numerics_ && dst.cols() > 0)
      for (std::size_t r = 0; r < dst.rows(); ++r)
        std::memcpy(dst.row_data(r), &src(r0 + r, c0), dst.cols() * sizeof(T));
    charge_gmem(dst.bytes(), OpKind::GmemLoad);
  }

  /// Reg2GMem: store a fragment into a window of `dst`.
  template <Scalar T>
  void store_global(Matrix<T>& dst, const FragView<T>& src, std::size_t r0, std::size_t c0) {
    KAMI_REQUIRE(r0 + src.rows() <= dst.rows() && c0 + src.cols() <= dst.cols());
    if (numerics_ && src.cols() > 0)
      for (std::size_t r = 0; r < src.rows(); ++r)
        std::memcpy(&dst(r0 + r, c0), src.row(r), src.cols() * sizeof(T));
    charge_gmem(src.bytes(), OpKind::GmemStore);
  }

  /// Store an accumulator fragment narrowed back to the storage precision.
  template <Scalar T>
  void store_global_narrowed(Matrix<T>& dst,
                             const Fragment<typename num_traits<T>::acc_t>& src,
                             std::size_t r0, std::size_t c0) {
    store_global_narrowed(dst, src, r0, c0, 0, 0, src.rows(), src.cols());
  }

  /// Sub-window variant: write src[sr0.., sc0..] (rows x cols) to dst at
  /// (r0, c0) — lets padded kernels store only the valid region without a
  /// second full-size staging fragment.
  template <Scalar T>
  void store_global_narrowed(Matrix<T>& dst,
                             const Fragment<typename num_traits<T>::acc_t>& src,
                             std::size_t r0, std::size_t c0, std::size_t sr0,
                             std::size_t sc0, std::size_t rows, std::size_t cols) {
    KAMI_REQUIRE(sr0 + rows <= src.rows() && sc0 + cols <= src.cols());
    KAMI_REQUIRE(r0 + rows <= dst.rows() && c0 + cols <= dst.cols());
    if (numerics_ && cols > 0)
      // Row-granular narrowing through the same encode path as NumericsOnly
      // writeback (per-element from_acc, TF32 via the vectorized rounder).
      for (std::size_t r = 0; r < rows; ++r)
        types::encode_span(src.row_data(sr0 + r) + sc0, &dst(r0 + r, c0), cols);
    charge_gmem(rows * cols * sizeof(T), OpKind::GmemStore);
  }

  /// Fixed ALU/control overhead on this warp (index matching, accumulator
  /// addressing in sparse kernels); accounted under compute.
  void charge_overhead(Cycles cycles) {
    KAMI_ASSERT(cycles >= 0.0);
    if (!timing_) return;
    const Cycles issue = clock_;
    advance(clock_ + cycles, bd_.compute);
    record(OpKind::Overhead, issue, issue, cycles);
  }

  // -- explicit cost charging ---------------------------------------------------
  //
  // Block-level workloads in the paper keep data resident across in-kernel
  // iterations ("each looping 1000 times inside the CUDA kernel to ignore
  // global I/O costs", Fig 3); kernels model that by disabling gmem charging.

  void set_gmem_charging(bool on) noexcept { gmem_charging_ = on; }
  bool gmem_charging() const noexcept { return gmem_charging_; }

  /// Account global traffic without a data-moving op (used by setup paths
  /// that place data directly). Honors the gmem-charging flag.
  void charge_global_traffic(std::size_t bytes) { charge_gmem(bytes, OpKind::GmemLoad); }

  /// Pipelined (cp.async-style) global traffic: occupies the memory port
  /// but hides the access latency behind the software pipeline, as
  /// multi-stage mainloops do. Honors the gmem-charging flag.
  void charge_global_traffic_async(std::size_t bytes) {
    if (!timing_ || !gmem_charging_) return;
    const Cycles occ = static_cast<double>(bytes) / dev_->gmem_bytes_per_cycle_per_sm;
    const Cycles start = gmem_port_->acquire(clock_, occ);
    advance(start + occ, bd_.gmem);
    pending_.gmem_bytes_loaded += static_cast<double>(bytes);
  }

  /// Account a shared-memory write without a fragment source.
  void charge_smem_write_traffic(std::size_t bytes, double theta_w = 1.0) {
    if (!timing_) return;
    const Cycles occ = smem_->transfer_occupancy(bytes, theta_w) +
                       dev_->smem_transaction_overhead_cycles;
    const Cycles start = smem_->port().acquire(clock_, occ);
    advance(start + occ, bd_.smem_comm);
    pending_.smem_bytes_written += static_cast<double>(bytes);
    note_smem_conflict(bytes, theta_w);
  }

  /// Account a shared-memory read (latency + occupancy) without a typed
  /// tile — used by baseline kernels whose strided smem views the tile
  /// abstraction does not model.
  void charge_smem_read_traffic(std::size_t bytes, double theta_r = 1.0) {
    if (!timing_) return;
    const Cycles occ = smem_->transfer_occupancy(bytes, theta_r) +
                       dev_->smem_transaction_overhead_cycles;
    const Cycles start = smem_->port().acquire(clock_, occ);
    advance(start + occ + smem_->latency(), bd_.smem_comm);
    pending_.smem_bytes_read += static_cast<double>(bytes);
    note_smem_conflict(bytes, theta_r);
  }

  // -- used by ThreadBlock ------------------------------------------------------

  void wait_until(Cycles t) {
    if (!timing_) return;
    if (t > clock_) {
      const Cycles issue = clock_;
      bd_.sync_wait += t - clock_;
      clock_ = t;
      pending_.sync_wait_cycles += t - issue;
      record(OpKind::SyncWait, issue, issue, t - issue);
      check_deadline();
    }
  }
  void reset_clock() noexcept {
    clock_ = 0.0;
    bd_ = CycleBreakdown{};
  }

  /// Attach an event recorder (nullptr disables tracing).
  void set_trace(Trace* trace) noexcept { trace_ = trace; }

 private:
  void advance(Cycles end, Cycles& bucket) {
    end = KAMI_FAULT_SKEW(warp_advance_skew, end);
    KAMI_INVARIANT(end >= clock_, "warp clock must advance monotonically");
    bucket += end - clock_;
    clock_ = end;
    check_deadline();
  }

  void check_deadline() const {
    if (deadline_ > 0.0 && clock_ > deadline_) [[unlikely]] {
      throw DeadlineExceeded("simulated-cycle deadline exceeded: warp " +
                             std::to_string(id_) + " reached cycle " +
                             std::to_string(clock_) + " with a budget of " +
                             std::to_string(deadline_) + " cycles");
    }
  }

  void record(OpKind kind, Cycles issue, Cycles start, double amount) {
    if (trace_ == nullptr) return;
    trace_->record(TraceEvent{id_, kind, issue, start, clock_, amount});
  }

  void charge_mma(Precision p, std::size_t fm, std::size_t fn, std::size_t fk) {
    if (!timing_) return;
    const MmaShape s = dev_->mma_shape(p);
    const auto ceil_div = [](std::size_t a, std::size_t b) { return (a + b - 1) / b; };
    const double instrs = static_cast<double>(ceil_div(fm, static_cast<std::size_t>(s.m)) *
                                              ceil_div(fn, static_cast<std::size_t>(s.n)) *
                                              ceil_div(fk, static_cast<std::size_t>(s.k)));
    const double issued_flops = instrs * 2.0 * s.m * s.n * s.k;
    const double ideal = issued_flops / dev_->ops_per_cycle_per_tc(p);
    const Cycles issue = clock_;
    const Cycles start = tc_->acquire(clock_, ideal);
    advance(start + ideal / dev_->mma_efficiency, bd_.compute);
    pending_.mma_instructions += instrs;
    pending_.mma_flops += issued_flops;
    record(OpKind::Mma, issue, start, issued_flops);
  }

  void charge_vector_flops(double flops, Precision p = Precision::FP32) {
    if (!timing_) return;
    // The vector pipe is one shared timeline at the per-SM aggregate rate.
    const double rate = dev_->vector_flops_per_cycle(p);
    KAMI_REQUIRE(rate > 0.0, "device has no vector pipe for this precision");
    const Cycles occ = flops / rate;
    const Cycles issue = clock_;
    const Cycles start = vector_pipe_->acquire(clock_, occ);
    advance(start + occ, bd_.compute);
    pending_.vector_flops += flops;
    record(OpKind::VectorOp, issue, start, flops);
  }

  void charge_gmem(std::size_t bytes, OpKind kind) {
    if (!timing_ || !gmem_charging_) return;
    const Cycles occ = static_cast<double>(bytes) / dev_->gmem_bytes_per_cycle_per_sm;
    const Cycles issue = clock_;
    const Cycles start = gmem_port_->acquire(clock_, occ);
    advance(start + occ + dev_->gmem_latency_cycles, bd_.gmem);
    (kind == OpKind::GmemStore ? pending_.gmem_bytes_stored : pending_.gmem_bytes_loaded) +=
        static_cast<double>(bytes);
    record(kind, issue, start, static_cast<double>(bytes));
  }

  /// Publish the cost of a conflicted shared-memory transfer: the extra
  /// port cycles relative to the same transfer at theta = 1.
  void note_smem_conflict(std::size_t bytes, double theta) {
    if (theta >= 1.0) return;
    pending_.smem_conflicted_transfers += 1.0;
    pending_.smem_conflict_excess_cycles += smem_->transfer_occupancy(bytes, theta) -
                                            smem_->transfer_occupancy(bytes, 1.0);
  }

  /// Row-granular fragment -> smem copy; no staging buffer (the seed version
  /// linearized the view into a per-call std::vector).
  template <Scalar T>
  void copy_view_to_smem(const SmemTile<T>& dst, const FragView<T>& src) {
    if (src.cols() == 0) return;
    for (std::size_t r = 0; r < src.rows(); ++r)
      smem_->write_row(dst, r, src.row(r), src.cols());
  }

  /// Shared numerics for mma and fma_scalar: C[cr0.., cc0..] += A x B with
  /// one ascending-k sequential chain per output element in accumulator
  /// precision. Operand rows are decoded through the LUT spans into arena
  /// scratch once (hoisting the num_traits conversions out of the O(m*n*k)
  /// loop), then the k-tiled accumulate_row_tile — the exact kernel the
  /// NumericsOnly path runs — updates C rows in place. Bit-identical to the
  /// scalar seed triple loop by the argument in core/vector_kernels.hpp.
  template <Scalar T>
  void mma_accumulate(Fragment<typename num_traits<T>::acc_t>& C, std::size_t cr0,
                      std::size_t cc0, const FragView<T>& A, const FragView<T>& B) {
    using Acc = typename num_traits<T>::acc_t;
    const std::size_t fm = A.rows(), fn = B.cols(), fk = A.cols();
    if (fm == 0 || fn == 0 || fk == 0) return;
    core::Arena& arena = core::Arena::tls();
    core::ArenaScope scope(arena);
    Acc* Af = arena.alloc<Acc>(fm * fk);
    Acc* Bf = arena.alloc<Acc>(fk * fn);
    for (std::size_t r = 0; r < fm; ++r) types::decode_span(A.row(r), Af + r * fk, fk);
    for (std::size_t r = 0; r < fk; ++r) types::decode_span(B.row(r), Bf + r * fn, fn);
    Acc* cbase = C.data() + cr0 * C.cols() + cc0;
    for (std::size_t kt = 0; kt < fk; kt += core::kNumericKTile) {
      const std::size_t kend = std::min(kt + core::kNumericKTile, fk);
      for (std::size_t i = 0; i < fm; ++i)
        core::detail::accumulate_row_tile(cbase + i * C.cols(), Af + i * fk, Bf, kt, kend,
                                          fn);
    }
  }

  /// Shared numerics for add_inplace/add_inplace_at: C[r0.., c0..] += P,
  /// element-wise in accumulator precision with one narrowing per element —
  /// the same from_acc(to_acc(c) + to_acc(p)) value the seed loop produced.
  /// Identity-codec types (fp32/fp64 accumulate in themselves) skip the
  /// decode/encode round-trip and add in place.
  template <Scalar T>
  void add_rows(Fragment<T>& C, std::size_t r0, std::size_t c0, const FragView<T>& P) {
    using Acc = typename num_traits<T>::acc_t;
    const std::size_t rows = P.rows(), cols = P.cols();
    if (rows == 0 || cols == 0) return;
    if constexpr (std::is_same_v<T, Acc>) {
      for (std::size_t r = 0; r < rows; ++r)
        core::detail::add_span(C.row_data(r0 + r) + c0, P.row(r), cols);
    } else {
      core::Arena& arena = core::Arena::tls();
      core::ArenaScope scope(arena);
      Acc* ca = arena.alloc<Acc>(cols);
      Acc* pa = arena.alloc<Acc>(cols);
      for (std::size_t r = 0; r < rows; ++r) {
        T* crow = C.row_data(r0 + r) + c0;
        types::decode_span(crow, ca, cols);
        types::decode_span(P.row(r), pa, cols);
        core::detail::add_span(ca, pa, cols);
        types::encode_span(ca, crow, cols);
      }
    }
  }

  int id_;
  const DeviceSpec* dev_;
  SharedMemory* smem_;
  UnitPool* tc_;
  PortTimeline* gmem_port_;
  PortTimeline* vector_pipe_;
  RegisterFile regs_;
  WarpMetricHandles metrics_ = WarpMetricHandles::acquire();
  mutable PendingWarpMetrics pending_;
  Cycles clock_ = 0.0;
  Cycles deadline_ = 0.0;  ///< 0 = no cycle budget
  CycleBreakdown bd_;
  bool numerics_ = true;
  bool timing_ = true;
  bool gmem_charging_ = true;
  Trace* trace_ = nullptr;
};

}  // namespace kami::sim
