#include "sim/throughput.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace kami::sim {

KernelProfile profile_block(const ThreadBlock& blk, double useful_flops) {
  // Warps batch their hot-path counter adds; make the totals visible in the
  // registry before anyone snapshots it alongside this profile.
  blk.flush_metrics();
  KernelProfile p;
  p.latency = blk.cycles();
  p.tc_busy = blk.tc_busy_cycles();
  p.smem_busy = blk.smem_busy_cycles();
  p.gmem_busy = blk.gmem_busy_cycles();
  p.vector_busy = blk.vector_busy_cycles();
  p.useful_flops = useful_flops;
  p.reg_bytes_per_warp = blk.max_reg_high_water();
  p.smem_bytes = blk.smem_high_water();
  p.num_warps = blk.num_warps();
  p.mean_breakdown = blk.mean_breakdown();

  // Every profiled block feeds the observability layer: peak footprints as
  // high-water gauges, block latency as a distribution.
  auto& reg = obs::MetricRegistry::current();
  reg.gauge("sim.block.smem_high_water_bytes").set_max(static_cast<double>(p.smem_bytes));
  reg.gauge("sim.block.reg_high_water_bytes")
      .set_max(static_cast<double>(p.reg_bytes_per_warp));
  reg.histogram("sim.block.latency_cycles").observe(p.latency);
  return p;
}

int resident_blocks_per_sm(const DeviceSpec& dev, const KernelProfile& prof) {
  KAMI_REQUIRE(prof.num_warps > 0);
  const std::size_t block_regs =
      prof.reg_bytes_per_warp * static_cast<std::size_t>(prof.num_warps);
  std::size_t by_regs = block_regs == 0 ? 16 : dev.sm_register_bytes / block_regs;
  std::size_t by_smem =
      prof.smem_bytes == 0 ? 16 : dev.smem_bytes_per_block / prof.smem_bytes;
  // Warp-slot limit: 64 warps per SM on NVIDIA-class hardware.
  const std::size_t by_warps = 64u / static_cast<std::size_t>(prof.num_warps);
  const std::size_t resident = std::min({by_regs, by_smem, by_warps, std::size_t{16}});
  return static_cast<int>(std::max<std::size_t>(resident, 1));
}

Cycles steady_interval_cycles(const DeviceSpec& dev, const KernelProfile& prof) {
  const double resident = static_cast<double>(resident_blocks_per_sm(dev, prof));
  const Cycles by_tc = prof.tc_busy / static_cast<double>(dev.tensor_cores_per_sm);
  const Cycles by_latency = prof.latency / resident;
  return std::max({by_tc, prof.smem_busy, prof.gmem_busy, prof.vector_busy, by_latency});
}

double throughput_tflops(const DeviceSpec& dev, const KernelProfile& prof,
                         std::size_t blocks) {
  KAMI_REQUIRE(blocks >= 1);
  const Cycles interval = steady_interval_cycles(dev, prof);
  KAMI_REQUIRE(interval > 0.0);
  // Blocks are distributed round-robin over SMs; the device finishes when the
  // most-loaded SM drains its queue.
  const double per_sm = std::ceil(static_cast<double>(blocks) /
                                  static_cast<double>(dev.num_sms));
  const double cycles_total = per_sm * interval;
  const double seconds = cycles_total / (dev.boost_clock_ghz * 1e9);
  return prof.useful_flops * static_cast<double>(blocks) / seconds / 1e12;
}

double latency_tflops(const DeviceSpec& dev, const KernelProfile& prof) {
  KAMI_REQUIRE(prof.latency > 0.0);
  const double seconds = prof.latency / (dev.boost_clock_ghz * 1e9);
  return prof.useful_flops / seconds / 1e12;
}

}  // namespace kami::sim
