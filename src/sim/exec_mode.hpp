// Execution modes decouple the two jobs every simulated op performs: moving
// real element data (numerics) and charging cycles on the block's resource
// timelines (timing).
//
//   Full        — both, today's behavior.
//   TimingOnly  — cycle accounting on shape metadata only; element loops and
//                 smem/fragment byte movement are skipped. Profiles are
//                 bit-identical to Full because every charge depends only on
//                 shapes, byte counts, and phase structure — never on values.
//   NumericsOnly— arithmetic only; clocks, port arbitration, metrics, and
//                 trace recording are all skipped, so results are
//                 bit-identical to Full at a fraction of the host cost.
#pragma once

#include <cstdint>

namespace kami::sim {

enum class ExecMode : std::uint8_t { Full, TimingOnly, NumericsOnly };

/// Does this mode execute element arithmetic and data movement?
constexpr bool mode_computes(ExecMode m) noexcept { return m != ExecMode::TimingOnly; }

/// Does this mode charge cycles / record traces / publish sim metrics?
constexpr bool mode_times(ExecMode m) noexcept { return m != ExecMode::NumericsOnly; }

constexpr const char* exec_mode_name(ExecMode m) noexcept {
  switch (m) {
    case ExecMode::Full: return "full";
    case ExecMode::TimingOnly: return "timing_only";
    case ExecMode::NumericsOnly: return "numerics_only";
  }
  return "?";
}

}  // namespace kami::sim
