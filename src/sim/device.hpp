// Device model database.
//
// One DeviceSpec per GPU in the paper's Table 3 (NVIDIA GH200 and RTX 5090,
// AMD 7900 XTX, Intel Data Center GPU Max 1100), carrying every constant the
// cycle model needs: clock, shared-memory banks/latency/bandwidth (Fig 4(b)),
// tensor-core counts and per-precision throughput (Table 3), MMA instruction
// shapes (Table 4), register-file and shared-memory capacities, and global
// memory characteristics used by the batched and roofline experiments.
#pragma once

#include <cstddef>
#include <string>

#include "types/float_formats.hpp"

namespace kami::sim {

/// Shape of one MMA instruction (Table 4: m16n8k8 FP64, m16n8k16 FP16 on
/// NVIDIA; m16n16k16 on AMD matrix cores and Intel XMX).
struct MmaShape {
  int m = 0;
  int n = 0;
  int k = 0;
};

struct DeviceSpec {
  std::string name;
  std::string vendor;
  std::string api;  ///< CUDA / HIP / SYCL (Table 4)

  double boost_clock_ghz = 0.0;
  int num_sms = 0;               ///< SMs / CUs / Xe-cores
  int tensor_cores_per_sm = 0;   ///< the paper's n_tc
  int smem_banks = 0;            ///< Table 3 "#Banks"
  int bank_width_bytes = 0;      ///< Table 3 "bank width"
  double smem_latency_cycles = 0.0;  ///< the paper's L_sm (GH200: 22, §4.3)

  /// Fixed port occupancy per shared-memory transfer *instructionally*:
  /// address setup, predication and issue of the ld/st.shared loop around a
  /// tile copy. This is the physical mechanism behind §5.2.1's observation
  /// that KAMI-2D/3D execute 45%/152% more nop instructions than KAMI-1D —
  /// the same bytes moved in more, smaller transfers cost more issue slots.
  /// Zero in idealized test devices.
  double smem_transaction_overhead_cycles = 0.0;

  /// Latency of __syncthreads with all warps already aligned.
  double sync_latency_cycles = 0.0;
  double gmem_latency_cycles = 0.0;
  double gmem_bytes_per_cycle_per_sm = 0.0;
  double reg_bytes_per_cycle = 0.0;  ///< intra-warp register move bandwidth

  int threads_per_warp = 32;
  int max_registers_per_thread = 255;  ///< 32-bit registers (§4.7)
  /// Whole-SM register file capacity, which caps how many blocks can be
  /// resident at once (occupancy). RDNA3's smaller per-CU VGPR budget is
  /// what makes KAMI-1D's performance drop past order 48 on the 7900 XTX
  /// (§5.2.2) — fewer resident blocks, less latency hiding.
  std::size_t sm_register_bytes = 256 * 1024;
  std::size_t smem_bytes_per_block = 0;

  /// Non-tensor (CUDA-core / SIMD / XVE) flops per cycle per SM, used by the
  /// scalar-pipeline baseline (SYCL-Bench-like) and element-wise reductions.
  double vector_fp64_flops_per_cycle = 0.0;
  double vector_fp32_flops_per_cycle = 0.0;
  double vector_fp16_flops_per_cycle = 0.0;

  double vector_flops_per_cycle(Precision p) const;

  /// Peak tensor TFLOPS for the precisions the device supports; 0 = N/A
  /// (Table 3 quotes FP16 everywhere and FP64 only on GH200; TF32/FP8
  /// follow the vendor's 1/2x and 2x FP16 ratios).
  double peak_fp64_tflops = 0.0;
  double peak_fp32_tflops = 0.0;  ///< TF32 path on NVIDIA
  double peak_fp16_tflops = 0.0;
  double peak_fp8_tflops = 0.0;

  /// Fraction of theoretical MMA issue rate a warp can sustain; the paper
  /// cites a measured 62 % maximum on Hopper (§5.6.2) which is why measured
  /// compute cycles exceed the model's. 1.0 = ideal.
  double mma_efficiency = 1.0;

  /// Shared-memory data-port bandwidth in bytes/cycle (the paper's B_sm);
  /// equals banks x bank width: 128 B on NVIDIA/AMD, 64 B on Intel.
  double smem_bytes_per_cycle() const noexcept {
    return static_cast<double>(smem_banks) * static_cast<double>(bank_width_bytes);
  }

  /// Register bytes available to one warp.
  std::size_t reg_bytes_per_warp() const noexcept {
    return static_cast<std::size_t>(max_registers_per_thread) * 4u *
           static_cast<std::size_t>(threads_per_warp);
  }

  bool supports(Precision p) const noexcept;

  /// The paper's O_tc: arithmetic operations per cycle per tensor core,
  /// derived from the quoted peak so Table 3 reproduces exactly:
  /// peak = num_sms * n_tc * O_tc * clock.
  double ops_per_cycle_per_tc(Precision p) const;

  double peak_tflops(Precision p) const;

  MmaShape mma_shape(Precision p) const;
};

/// Reject a structurally broken DeviceSpec with a typed PreconditionError
/// naming the offending field. The cycle model divides by clock rate, SM
/// count, bank width, and the bandwidth fields; a hand-built spec with (say)
/// num_sms == 0 would otherwise surface as a divide-by-zero (or an inf/NaN
/// latency) deep inside the throughput conversion instead of at admission.
/// The serving layer calls this on every request's device; FleetServer
/// validates its whole fleet at construction.
void validate_device(const DeviceSpec& d);

/// The four evaluation devices (Table 3).
const DeviceSpec& gh200();
const DeviceSpec& rtx5090();
const DeviceSpec& amd7900xtx();
const DeviceSpec& intel_max1100();

/// Lookup by name ("GH200", "RTX 5090", "7900 XTX", "Max 1100").
const DeviceSpec& device_by_name(const std::string& name);

}  // namespace kami::sim
