// Bank-conflict analysis (Table 2's theta_r / theta_w, derived instead of
// assumed).
//
// A warp's 32 lanes issue one shared-memory access each; the banked memory
// serves one word per bank per cycle, so lanes hitting the same bank
// serialize. theta = 1 / (worst per-bank multiplicity), the fraction of
// peak bandwidth the pattern attains. KAMI's contiguous tile copies are
// conflict-free (theta = 1); column-strided accesses of power-of-two pitch
// are the classic pathological case (theta = 1/banks).
#pragma once

#include <cstddef>

#include "sim/device.hpp"

namespace kami::sim {

/// theta for 32 lanes accessing element_bytes-sized words with a fixed
/// element stride (in elements) from a common base.
double strided_access_theta(const DeviceSpec& dev, std::size_t element_bytes,
                            std::size_t element_stride);

/// theta for a row-major (rows x cols) tile accessed column-by-column —
/// the access pattern of an untransposed operand read. Equivalent to a
/// stride of `cols` elements.
double column_access_theta(const DeviceSpec& dev, std::size_t element_bytes,
                           std::size_t cols);

/// Smallest pad (in elements) to add per row so column accesses of the
/// padded tile are conflict-free — the classic "+1 padding" trick.
std::size_t conflict_free_padding(const DeviceSpec& dev, std::size_t element_bytes,
                                  std::size_t cols);

}  // namespace kami::sim
