// ThreadBlock: the SPMD execution container.
//
// A kernel is a sequence of phases separated by __syncthreads barriers.
// `phase(f)` runs f once per warp in warp-id order — the deterministic stand-in
// for the hardware's round-robin warp scheduler — with each warp advancing its
// own clock and contending for the block's shared resources. `sync()` aligns
// all warp clocks to the maximum (barrier). Identical programs produce
// identical cycle counts on every run (tested).
#pragma once

#include <memory>
#include <vector>

#include "sim/device.hpp"
#include "sim/exec_mode.hpp"
#include "sim/resources.hpp"
#include "sim/shared_memory.hpp"
#include "sim/trace.hpp"
#include "sim/warp.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

class ThreadBlock {
 public:
  ThreadBlock(const DeviceSpec& dev, int num_warps, ExecMode mode = ExecMode::Full)
      : dev_(&dev),
        mode_(mode),
        smem_(dev.smem_bytes_per_block, dev.smem_bytes_per_cycle(), dev.smem_latency_cycles),
        tc_(static_cast<std::size_t>(dev.tensor_cores_per_sm)) {
    KAMI_REQUIRE(num_warps >= 1 && num_warps <= 64, "warp count out of range");
    warps_.reserve(static_cast<std::size_t>(num_warps));
    for (int w = 0; w < num_warps; ++w) {
      warps_.push_back(
          std::make_unique<Warp>(w, dev, smem_, tc_, gmem_port_, vector_pipe_));
      warps_.back()->set_mode(mode);
    }
  }

  const DeviceSpec& device() const noexcept { return *dev_; }
  ExecMode mode() const noexcept { return mode_; }

  /// Arm every warp's cycle-budget watchdog (GemmOptions::deadline_cycles);
  /// 0 disarms. See sim/deadline.hpp.
  void set_deadline(Cycles cycles) noexcept {
    for (auto& w : warps_) w->set_deadline(cycles);
  }
  int num_warps() const noexcept { return static_cast<int>(warps_.size()); }
  SharedMemory& smem() noexcept { return smem_; }
  Warp& warp(int i) { return *warps_.at(static_cast<std::size_t>(i)); }

  /// Run one SPMD phase: the body executes once per warp, in warp-id order.
  /// Templated on the body (rather than std::function) so the per-phase
  /// type-erasure allocation and indirect call stay out of the innermost
  /// simulator loop.
  template <class Body>
  void phase(Body&& body) {
    for (auto& w : warps_) body(*w);
  }

  /// __syncthreads: advance every warp to the block-wide maximum clock plus
  /// the barrier's own latency.
  void sync() {
    if (!mode_times(mode_)) return;
    Cycles t = 0.0;
    for (const auto& w : warps_)
      if (w->clock() > t) t = w->clock();
    t += dev_->sync_latency_cycles;
    for (auto& w : warps_) w->wait_until(t);
#if KAMI_CHECK_INVARIANTS
    for (const auto& w : warps_)
      KAMI_INVARIANT(w->clock() == t, "sync barrier must align every warp clock");
#endif
    syncs_.increment();
  }

  /// Wall cycles so far (max over warps).
  Cycles cycles() const {
    Cycles t = 0.0;
    for (const auto& w : warps_)
      if (w->clock() > t) t = w->clock();
    return t;
  }

  /// Per-category cycles averaged over warps — the Fig 15 breakdown.
  CycleBreakdown mean_breakdown() const {
    CycleBreakdown sum;
    for (const auto& w : warps_) sum += w->breakdown();
    const double n = static_cast<double>(warps_.size());
    return {sum.smem_comm / n, sum.gmem / n, sum.reg_copy / n, sum.compute / n,
            sum.sync_wait / n};
  }

  // Resource demand per kernel execution; drives the steady-state
  // throughput model in sim/throughput.hpp.
  Cycles tc_busy_cycles() const noexcept { return tc_.busy_cycles(); }
  Cycles smem_busy_cycles() const noexcept { return smem_.port().busy_cycles(); }
  Cycles gmem_busy_cycles() const noexcept { return gmem_port_.busy_cycles(); }
  Cycles vector_busy_cycles() const noexcept { return vector_pipe_.busy_cycles(); }

  /// Start recording an op-level timeline for all warps; returns the trace.
  /// Idempotent while a trace is attached; after take_trace() it starts a
  /// fresh recorder and re-attaches every warp, so enable -> run -> take can
  /// be repeated on the same block.
  Trace& enable_trace() {
    if (!trace_) trace_ = std::make_unique<Trace>();
    for (auto& w : warps_) w->set_trace(trace_.get());
    return *trace_;
  }
  const Trace* trace() const noexcept { return trace_.get(); }

  /// Detach the recorded trace (warps stop recording).
  std::unique_ptr<Trace> take_trace() {
    for (auto& w : warps_) w->set_trace(nullptr);
    return std::move(trace_);
  }

  /// Publish every warp's batched counter totals into the metric registry.
  /// Warps also flush on destruction; this exists so code that profiles a
  /// live block (sim/throughput.cpp) sees up-to-date registry counters.
  void flush_metrics() const {
    for (const auto& w : warps_) w->flush_metrics();
  }

  /// Peak register bytes across warps (Fig 14) and peak smem bytes (§5.6.1).
  std::size_t max_reg_high_water() const {
    std::size_t hw = 0;
    for (const auto& w : warps_)
      if (w->regs().high_water() > hw) hw = w->regs().high_water();
    return hw;
  }
  std::size_t smem_high_water() const noexcept { return smem_.high_water_bytes(); }

 private:
  const DeviceSpec* dev_;
  ExecMode mode_;
  SharedMemory smem_;
  UnitPool tc_;
  PortTimeline gmem_port_;
  PortTimeline vector_pipe_;
  // unique_ptr: Warp is neither copyable nor movable (it owns a RegisterFile
  // referenced by live fragments).
  std::vector<std::unique_ptr<Warp>> warps_;
  std::unique_ptr<Trace> trace_;
  obs::Counter& syncs_ = obs::MetricRegistry::current().counter("sim.block.syncs");
};

}  // namespace kami::sim
