#include "sim/trace.hpp"

#include <ostream>

namespace kami::sim {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::SmemStore: return "smem_store";
    case OpKind::SmemLoad: return "smem_load";
    case OpKind::RegCopy: return "reg_copy";
    case OpKind::Mma: return "mma";
    case OpKind::VectorOp: return "vector";
    case OpKind::GmemLoad: return "gmem_load";
    case OpKind::GmemStore: return "gmem_store";
    case OpKind::SyncWait: return "sync";
    case OpKind::Overhead: return "overhead";
  }
  return "?";
}

double Trace::total_amount(OpKind kind) const {
  double acc = 0.0;
  for (const auto& ev : events_)
    if (ev.kind == kind) acc += ev.amount;
  return acc;
}

std::vector<TraceEvent> Trace::warp_events(int warp) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_)
    if (ev.warp == warp) out.push_back(ev);
  return out;
}

void Trace::dump_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << op_kind_name(ev.kind) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << ev.warp << ",\"ts\":" << ev.start << ",\"dur\":" << (ev.end - ev.start)
       << ",\"args\":{\"amount\":" << ev.amount << ",\"issue\":" << ev.issue << "}}";
  }
  os << "]}";
}

}  // namespace kami::sim
