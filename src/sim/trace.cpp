#include "sim/trace.hpp"

#include <ostream>
#include <set>

#include "obs/json.hpp"

namespace kami::sim {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::SmemStore: return "smem_store";
    case OpKind::SmemLoad: return "smem_load";
    case OpKind::RegCopy: return "reg_copy";
    case OpKind::Mma: return "mma";
    case OpKind::VectorOp: return "vector";
    case OpKind::GmemLoad: return "gmem_load";
    case OpKind::GmemStore: return "gmem_store";
    case OpKind::SyncWait: return "sync";
    case OpKind::Overhead: return "overhead";
  }
  return "?";
}

double Trace::total_amount(OpKind kind) const {
  double acc = 0.0;
  for (const auto& ev : events_)
    if (ev.kind == kind) acc += ev.amount;
  return acc;
}

std::vector<TraceEvent> Trace::warp_events(int warp) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_)
    if (ev.warp == warp) out.push_back(ev);
  return out;
}

void Trace::dump_chrome_trace(std::ostream& os) const {
  // displayTimeUnit keeps Perfetto/chrome://tracing zoom sane under the
  // 1 cycle = 1 us mapping; metadata events label the process and name each
  // warp's track; all strings go through the shared JSON escaper.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"kami block\"}}";
  std::set<int> warps;
  for (const auto& ev : events_) warps.insert(ev.warp);
  for (const int w : warps) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << w
       << ",\"args\":{\"name\":\"warp " << w << "\"}}";
  }

  for (const auto& ev : events_) {
    sep();
    os << "{\"name\":\"" << obs::json_escape(op_kind_name(ev.kind))
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.warp
       << ",\"ts\":" << obs::json_number(ev.start)
       << ",\"dur\":" << obs::json_number(ev.end - ev.start)
       << ",\"args\":{\"amount\":" << obs::json_number(ev.amount)
       << ",\"issue\":" << obs::json_number(ev.issue) << "}}";
  }
  os << "]}";
}

}  // namespace kami::sim
