// Per-warp register file with the hardware capacity limit (§4.7: 255
// 32-bit registers per thread). Fragments allocate from here; exceeding the
// limit throws RegisterOverflow, which the algorithm layer converts into the
// paper's k-slice register/shared-memory cooperation.
#pragma once

#include <cstddef>
#include <string>

#include "util/require.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

class RegisterOverflow : public kami::PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

class RegisterFile {
 public:
  explicit RegisterFile(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  void allocate(std::size_t bytes) {
#if KAMI_CHECK_INVARIANTS
    // Chaos/test hook: the countdown-th allocation fails as if the register
    // file were exhausted, then the hook disarms (one-shot transient fault).
    if (auto& hooks = verify::fault_hooks(); hooks.alloc_fail_countdown >= 0) {
      if (hooks.alloc_fail_countdown == 0) {
        hooks.alloc_fail_countdown = -1;
        throw RegisterOverflow("injected allocation failure (verify::FaultHooks): " +
                               std::to_string(bytes) + " B request denied");
      }
      --hooks.alloc_fail_countdown;
    }
#endif
    if (used_ + bytes > capacity_) {
      throw RegisterOverflow("register file exhausted: need " + std::to_string(bytes) +
                             " B, used " + std::to_string(used_) + " of " +
                             std::to_string(capacity_) + " B");
    }
    used_ += bytes;
    if (used_ > high_water_) high_water_ = used_;
    KAMI_INVARIANT(used_ <= capacity_ && high_water_ <= capacity_,
                   "register allocation exceeded file capacity");
  }

  void release(std::size_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

  std::size_t used() const noexcept { return used_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Peak bytes ever resident — drives the Fig 14 register-usage comparison.
  std::size_t high_water() const noexcept { return high_water_; }

  /// Peak usage expressed as 32-bit registers per thread.
  double high_water_regs_per_thread(int threads_per_warp) const noexcept {
    return static_cast<double>(high_water_) / 4.0 / static_cast<double>(threads_per_warp);
  }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace kami::sim
