// On-chip shared memory: a capacity-limited byte arena with a bump allocator
// and a single data port whose occupancy models banked bandwidth B_sm with
// bank-conflict factors theta_r / theta_w (Table 2).
//
// Data written here is real bytes — a kernel that reads a tile before any
// warp wrote it gets zeros and fails the numerical checks, so communication
// bugs are caught by correctness tests, not just by cycle counts.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/resources.hpp"
#include "util/require.hpp"
#include "verify/invariants.hpp"

namespace kami::sim {

/// Thrown when a kernel's shared-memory footprint exceeds the device limit.
class SharedMemoryOverflow : public kami::PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// A typed rectangular region inside shared memory, in elements of T.
template <typename T>
struct SmemTile {
  std::size_t byte_offset = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::size_t bytes() const noexcept { return rows * cols * sizeof(T); }
};

class SharedMemory {
 public:
  SharedMemory(std::size_t capacity_bytes, double bytes_per_cycle, Cycles latency)
      : bytes_(capacity_bytes, std::byte{0}),
        bytes_per_cycle_(bytes_per_cycle),
        latency_(latency) {
    KAMI_REQUIRE(bytes_per_cycle > 0.0);
  }

  /// Allocate a rows x cols tile of T (16-byte aligned).
  template <typename T>
  SmemTile<T> alloc(std::size_t rows, std::size_t cols) {
    const std::size_t want = rows * cols * sizeof(T);
    top_ = (top_ + 15u) & ~std::size_t{15};
    if (top_ + want > bytes_.size()) {
      throw SharedMemoryOverflow("shared memory exhausted: need " + std::to_string(want) +
                                 " B at offset " + std::to_string(top_) + ", capacity " +
                                 std::to_string(bytes_.size()) + " B");
    }
    SmemTile<T> tile{top_, rows, cols};
    top_ += want;
    if (top_ > high_water_) high_water_ = top_;
    KAMI_INVARIANT(top_ <= bytes_.size() && high_water_ <= bytes_.size(),
                   "shared-memory allocator exceeded capacity");
    auto& reg = obs::MetricRegistry::current();
    reg.counter("sim.smem.tile_allocs").increment();
    reg.gauge("sim.smem.high_water_bytes").set_max(static_cast<double>(high_water_));
    return tile;
  }

  /// Free everything (kernels allocate per launch).
  void reset_allocations() noexcept { top_ = 0; }

  std::size_t bytes_allocated() const noexcept { return top_; }
  std::size_t high_water_bytes() const noexcept { return high_water_; }
  std::size_t capacity() const noexcept { return bytes_.size(); }

  /// Port occupancy for moving `n` bytes with conflict factor theta.
  Cycles transfer_occupancy(std::size_t n, double theta) const {
    KAMI_REQUIRE(theta > 0.0 && theta <= 1.0, "bank conflict factor must be in (0,1]");
    const Cycles occ = static_cast<double>(n) / (theta * bytes_per_cycle_);
    KAMI_INVARIANT(occ >= 0.0, "smem transfer occupancy must be non-negative");
    return occ;
  }

  Cycles latency() const noexcept { return latency_; }
  PortTimeline& port() noexcept { return port_; }
  const PortTimeline& port() const noexcept { return port_; }

  // Raw data plumbing used by Warp's typed copy helpers.
  template <typename T>
  void write(const SmemTile<T>& tile, const T* src, std::size_t count) {
    KAMI_ASSERT(count <= tile.rows * tile.cols);
    std::memcpy(bytes_.data() + tile.byte_offset, src, count * sizeof(T));
  }
  template <typename T>
  void read(const SmemTile<T>& tile, T* dst, std::size_t count) const {
    KAMI_ASSERT(count <= tile.rows * tile.cols);
    std::memcpy(dst, bytes_.data() + tile.byte_offset, count * sizeof(T));
  }

  /// Write one row of a tile directly from a contiguous source row. Lets
  /// fragment views copy into shared memory row by row with no linearized
  /// staging buffer (the old per-call std::vector in copy_view_to_smem).
  template <typename T>
  void write_row(const SmemTile<T>& tile, std::size_t row, const T* src,
                 std::size_t count) {
    KAMI_ASSERT(row < tile.rows && count <= tile.cols);
    std::memcpy(bytes_.data() + tile.byte_offset + row * tile.cols * sizeof(T), src,
                count * sizeof(T));
  }

 private:
  std::vector<std::byte> bytes_;
  std::size_t top_ = 0;
  std::size_t high_water_ = 0;
  double bytes_per_cycle_;
  Cycles latency_;
  PortTimeline port_;
};

}  // namespace kami::sim
