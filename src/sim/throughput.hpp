// Converting per-block cycle counts into device-level throughput.
//
// The paper evaluates block-level kernels by launching 16 384 concurrent
// blocks, each looping 1000 times (Fig 3 caption, §5.1): enough independent
// work that every SM pipelines blocks back-to-back and latency hides behind
// occupancy. Steady-state throughput is therefore bounded by whichever
// *resource* a block saturates, not by a single block's latency:
//
//   interval = max(tc_busy / n_tc, smem_busy, gmem_busy, vector_busy,
//                  latency / resident_blocks)
//
// where `busy` values are one block's total demand on each resource and
// `resident_blocks` is how many blocks fit concurrently on one SM (limited
// by registers and shared memory). A single resident block (batched
// workloads with no occupancy) degenerates to interval = latency.
#pragma once

#include <cstddef>

#include "sim/block.hpp"
#include "sim/device.hpp"

namespace kami::sim {

/// Everything the throughput model needs from one simulated kernel launch.
struct KernelProfile {
  Cycles latency = 0.0;       ///< wall cycles of one block, start to finish
  Cycles tc_busy = 0.0;       ///< summed tensor-core unit occupancy
  Cycles smem_busy = 0.0;     ///< shared-memory port occupancy
  Cycles gmem_busy = 0.0;     ///< global-memory port occupancy
  Cycles vector_busy = 0.0;   ///< vector-pipe occupancy
  double useful_flops = 0.0;  ///< 2*m*n*k (not counting padding waste)
  std::size_t reg_bytes_per_warp = 0;
  std::size_t smem_bytes = 0;
  int num_warps = 0;

  CycleBreakdown mean_breakdown;  ///< per-warp averaged categories (Fig 15)
};

/// Snapshot a finished block into a profile.
KernelProfile profile_block(const ThreadBlock& blk, double useful_flops);

/// How many copies of this block fit on one SM at once.
int resident_blocks_per_sm(const DeviceSpec& dev, const KernelProfile& prof);

/// Steady-state cycles between block completions on one SM.
Cycles steady_interval_cycles(const DeviceSpec& dev, const KernelProfile& prof);

/// Device-wide TFLOPS when `blocks` independent blocks are launched
/// (16 384 in the paper's setup). Small launches that underfill the device
/// are penalized by partial-wave occupancy.
double throughput_tflops(const DeviceSpec& dev, const KernelProfile& prof,
                         std::size_t blocks);

/// TFLOPS of a single block executed once: useful_flops / latency.
double latency_tflops(const DeviceSpec& dev, const KernelProfile& prof);

}  // namespace kami::sim
