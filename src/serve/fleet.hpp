// FleetServer: sharded multi-device serving with health-aware, cost-model
// routing.
//
// KAMI's cost model picks the communication-optimal algorithm per device; at
// fleet scale the same decision happens *across* devices. A FleetServer
// shards requests over N simulated devices (by default the heterogeneous
// four-device Table-3 mix), each shard carrying its own GemmServer (ladder,
// retries, breakers), its own bounded MPMC request queue
// (exec::BoundedTaskQueue), and its own health state. On top of the
// per-device resilience the fleet adds:
//
//   * cost-model routing — per eligible device, core::estimate_plan's
//     cache -> formula -> Unplanned tiers predict the request's cycles
//     (never simulating); predictions are normalized to seconds at each
//     device's clock, scaled by (1 + queue_depth_penalty x queue depth), and
//     discounted by shape affinity (the device that last served this exact
//     (precision, algo, shape) keeps it, so warm ProfileCache/Predictor
//     state stays warm). Devices whose plan is infeasible as requested stay
//     routable on a peak-throughput heuristic: their ladder may still
//     degrade. Routing is deterministic: stable sort by (score, index).
//   * admission control — a request no healthy device can take (precision
//     unsupported, every queue full, fleet fully blacked out) is refused
//     with a typed ResourceExhausted before any rung, breaker, or retry is
//     touched.
//   * failover — a dispatch that comes back DeviceUnavailable (blackout),
//     ResourceExhausted, InfeasiblePlan, or TransientFault moves to the
//     next-best healthy device. InvalidRequest, DeadlineExceeded, and
//     InternalInvariant are terminal: another device cannot help, or must
//     not mask the bug. Failover never changes results: the operands are
//     device-independent, so the eventual ServeResult is bit-identical to
//     serving directly on the device that answered.
//   * health state machine — a device discovered blacked out at dispatch is
//     marked Down and leaves the routing set. The fleet's request counter is
//     its probe clock: after probe_cooldown_requests further fleet requests
//     the shard moves to Probing, and the next request's health tick pings
//     it (an out-of-band probe against the blackout flag): cleared -> back
//     to Healthy, still dark -> Down again with a fresh cooldown.
//   * hedged retries — optionally (hedge_deadline_requests), a
//     deadline-carrying request is dispatched to the two best-ranked devices
//     (sequentially, so the outcome is deterministic) and the faster success
//     wins; the fleet clock advances by the slower arm, modelling the
//     parallel hedge.
//
// Everything observable lands in the fleet.* metric namespace (pre-registered
// at zero on construction) and, when a SloTracker is attached, in per-shape-
// class SLO accounting where one fleet request — including its whole
// failover chain — is exactly one record.
//
// Determinism contract (the fleet chaos campaign's ground): with manual
// drain (async_workers_per_device == 0) and a private ProfileCache/Predictor,
// identical request sequences against identical fleet state produce
// identical routing decisions, health transitions, results, and typed
// errors.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/analytic_planner.hpp"
#include "exec/task_queue.hpp"
#include "serve/serve.hpp"
#include "sim/device.hpp"

namespace kami::serve {

enum class DeviceHealth { Healthy, Probing, Down };

const char* device_health_name(DeviceHealth h) noexcept;

/// One device shard's static configuration.
struct FleetDeviceConfig {
  sim::DeviceSpec spec;
  /// Capacity of this shard's bounded async request queue.
  std::size_t queue_depth = 64;
  /// Per-device ladder/retry/breaker policy. The async fields and
  /// request_id_prefix are overridden by the fleet (shard queues replace
  /// GemmServer's own async machinery; ids become "<prefix>-d<i>-<n>"); the
  /// SLO tracker is detached so one fleet request is one SLO record.
  ServeConfig serve;
};

struct FleetConfig {
  /// Empty = the four Table-3 devices with default shard settings.
  std::vector<FleetDeviceConfig> devices;

  /// Async worker threads per device shard (started lazily on the first
  /// submit_async). 0 = manual drain: no threads are ever created; queued
  /// requests run inline on drain(), in deterministic device order, and
  /// observe a queue wait of 0 cycles — the chaos campaign's mode.
  int async_workers_per_device = 1;

  // -- routing policy.
  bool shape_affinity = true;
  /// Score multiplier (< 1 favors) for the device that last served the
  /// request's exact (precision, algo, m, n, k).
  double affinity_bonus = 0.85;
  /// Predicted seconds are scaled by (1 + penalty * queued_requests).
  double queue_depth_penalty = 1.0;
  /// Max devices tried per request (failover chain length). 0 = all
  /// eligible devices.
  int max_route_attempts = 0;

  // -- health policy.
  /// Blackout refusals before a device is marked Down (1 = first refusal).
  int blackout_failure_threshold = 1;
  /// Fleet requests a Down device waits before it becomes Probing.
  int probe_cooldown_requests = 8;

  /// Hedge deadline-carrying requests across the two best-ranked devices.
  bool hedge_deadline_requests = false;

  /// Router misprediction injection (chaos): per-device multiplicative skew
  /// on the predicted score. Empty = no skew; shorter than the fleet = 1.0
  /// for the remainder.
  std::vector<double> route_skew;

  /// Planning state the router consults. nullptr = the process-wide
  /// ProfileCache::global() / Predictor::global(). The chaos campaign
  /// injects private instances so routing replays hermetically.
  std::shared_ptr<core::ProfileCache> profile_cache;
  std::shared_ptr<model::Predictor> predictor;

  std::string request_id_prefix = "fleet";
  std::shared_ptr<obs::FlightRecorder> flight;  ///< propagated to every shard
  std::shared_ptr<SloTracker> slo;              ///< fleet-level (one record/request)
};

/// The paper's heterogeneous evaluation fleet: GH200, RTX 5090, 7900 XTX,
/// Max 1100, default shard settings.
FleetConfig table3_fleet();

/// A ServeResult plus where (and how) the fleet produced it.
template <Scalar T>
struct FleetResult {
  ServeResult<T> result;
  int device_index = -1;  ///< shard that answered; -1 = fleet-level refusal
  std::string device;     ///< its DeviceSpec name ("" on refusal)
  int failovers = 0;      ///< failed dispatches before the one that answered
  bool hedged = false;    ///< served by a hedged dispatch pair
  /// Fleet end-to-end logical cycles: queue wait + every dispatch attempt's
  /// end_to_end_cycles along the chain (hedges cost their slower arm).
  double end_to_end_cycles = 0.0;

  bool ok() const noexcept { return result.ok(); }
};

class FleetServer {
 public:
  /// Validates every device spec (sim::validate_device — typed
  /// PreconditionError naming the offending field) and pre-registers the
  /// fleet.* metrics at zero. No threads are created here; shard workers
  /// start lazily on the first submit_async (never in manual-drain mode), so
  /// construction + destruction with no requests is a strict no-op.
  explicit FleetServer(FleetConfig cfg = table3_fleet());

  /// Closes every shard queue, joins the workers, then drains anything still
  /// queued inline — a future returned by submit_async is always eventually
  /// ready.
  ~FleetServer();
  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Synchronous fleet serving: health tick, route, (optionally hedged)
  /// dispatch with failover. Never throws; every failure is typed.
  template <Scalar T>
  FleetResult<T> serve(core::Algo algo, const Matrix<T>& A, const Matrix<T>& B,
                       core::GemmOptions opt = {});

  /// Async fleet serving: route, then enqueue on the best-ranked device
  /// whose bounded queue has room (full queues fail over to the next
  /// candidate at submission — fleet.overflow_reroutes). When no eligible
  /// queue accepts, the returned future is already ready with a typed
  /// ResourceExhausted. The worker replays the submitting thread's
  /// FaultHooks and runs the full failover chain starting at the queue's
  /// device.
  template <Scalar T>
  std::future<FleetResult<T>> submit_async(core::Algo algo, Matrix<T> A, Matrix<T> B,
                                           core::GemmOptions opt = {});

  /// Manual-drain mode: run every queued request inline, shard by shard in
  /// device order, until all queues are empty. Deterministic. No-op when
  /// worker threads are draining the queues.
  void drain();

  std::size_t device_count() const noexcept { return shards_.size(); }
  const sim::DeviceSpec& device(std::size_t i) const { return shards_.at(i)->cfg.spec; }
  DeviceHealth health(std::size_t i) const;
  /// Queued-but-unclaimed requests on one shard.
  std::size_t queue_size(std::size_t i) const { return shards_.at(i)->queue->size(); }

  /// Simulated device blackout: while set, every dispatch to the shard is
  /// refused with a typed DeviceUnavailable (and counts toward marking it
  /// Down). Clearing it lets the next health probe recover the device.
  void set_blackout(std::size_t i, bool down);
  bool blackout(std::size_t i) const { return shards_.at(i)->blackout.load(); }

  /// The candidate dispatch order the router would produce right now
  /// (eligible devices, best first). Exposed for tests and dashboards.
  std::vector<int> route_order(core::Algo algo, Precision prec, std::size_t m,
                               std::size_t n, std::size_t k,
                               const core::GemmOptions& opt) const;

  /// Direct access to one shard's GemmServer (tests: breaker state).
  GemmServer& shard_server(std::size_t i) { return *shards_.at(i)->server; }

  const FleetConfig& config() const noexcept { return cfg_; }

 private:
  struct Shard {
    FleetDeviceConfig cfg;
    std::unique_ptr<GemmServer> server;
    std::unique_ptr<exec::BoundedTaskQueue> queue;
    std::vector<std::thread> workers;
    std::atomic<bool> blackout{false};
    // Health fields are guarded by the fleet's mu_.
    DeviceHealth health = DeviceHealth::Healthy;
    int consecutive_refusals = 0;
    int probe_cooldown = 0;
  };

  struct AffinityKey {
    Precision prec = Precision::FP16;
    core::Algo algo = core::Algo::OneD;
    std::size_t m = 0, n = 0, k = 0;
    friend auto operator<=>(const AffinityKey&, const AffinityKey&) = default;
  };

  std::string next_request_id() {
    return cfg_.request_id_prefix + "-" +
           std::to_string(request_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  core::ProfileCache& route_cache() const;
  model::Predictor& route_predictor() const;

  /// Advance the health clock by one fleet request: Down shards count down
  /// toward Probing; Probing shards are pinged against their blackout flag.
  void tick_health();
  /// One blackout refusal: bump the shard's failure count, possibly mark it
  /// Down. Returns the typed error for the dispatch loop.
  ServeError note_blackout_refusal(int idx, std::size_t m, std::size_t n, std::size_t k);
  void note_success(int idx, const AffinityKey& key);
  void update_healthy_gauge();  ///< caller holds mu_

  static bool failover_eligible(ErrorCode code) noexcept {
    return code == ErrorCode::DeviceUnavailable || code == ErrorCode::ResourceExhausted ||
           code == ErrorCode::InfeasiblePlan || code == ErrorCode::TransientFault;
  }

  void ensure_workers_started();

  /// Dispatch one request to shard `idx`. Returns false (with *err set) on a
  /// blackout refusal — the device never saw the request; true otherwise
  /// with *res the shard's typed result.
  template <Scalar T>
  bool dispatch_one(int idx, core::Algo algo, const Matrix<T>& A, const Matrix<T>& B,
                    const core::GemmOptions& opt, ServeResult<T>* res, ServeError* err);

  /// The routed, failover-capable ladder shared by serve() and the async
  /// workers. `primary` >= 0 pins that shard to the front of the dispatch
  /// order (the queue the async request was accepted on).
  template <Scalar T>
  FleetResult<T> serve_fleet_request(const std::string& id, double queue_wait_cycles,
                                     int primary, core::Algo algo, const Matrix<T>& A,
                                     const Matrix<T>& B, core::GemmOptions opt);

  FleetConfig cfg_;
  bool manual_drain_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> request_counter_{0};

  mutable std::mutex mu_;  ///< health, affinity
  std::map<AffinityKey, int> affinity_;

  std::mutex start_mu_;
  bool workers_started_ = false;
};

// ---------------------------------------------------------------------------
// implementation

template <Scalar T>
bool FleetServer::dispatch_one(int idx, core::Algo algo, const Matrix<T>& A,
                               const Matrix<T>& B, const core::GemmOptions& opt,
                               ServeResult<T>* res, ServeError* err) {
  Shard& s = *shards_[static_cast<std::size_t>(idx)];
  if (s.blackout.load(std::memory_order_relaxed)) {
    *err = note_blackout_refusal(idx, A.rows(), B.cols(), A.cols());
    return false;
  }
  *res = s.server->serve<T>(algo, s.cfg.spec, A, B, opt);
  return true;
}

template <Scalar T>
FleetResult<T> FleetServer::serve(core::Algo algo, const Matrix<T>& A,
                                  const Matrix<T>& B, core::GemmOptions opt) {
  return serve_fleet_request<T>(next_request_id(), 0.0, -1, algo, A, B, opt);
}

template <Scalar T>
FleetResult<T> FleetServer::serve_fleet_request(const std::string& id,
                                                double queue_wait_cycles, int primary,
                                                core::Algo algo, const Matrix<T>& A,
                                                const Matrix<T>& B,
                                                core::GemmOptions opt) {
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("fleet.requests").increment();
  tick_health();

  const Precision prec = num_traits<T>::precision;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();

  FleetResult<T> out;
  out.result.requested = algo;
  out.end_to_end_cycles = queue_wait_cycles;
  metrics.histogram("fleet.queue_wait_cycles").observe(queue_wait_cycles);

  std::vector<int> order = route_order(algo, prec, m, n, k, opt);
  if (primary >= 0) {
    // The async request was admitted onto `primary`'s queue; it dispatches
    // there first, then fails over along the current ranking.
    std::erase(order, primary);
    order.insert(order.begin(), primary);
  }

  const auto complete = [&](ErrorCode code) {
    metrics.histogram("fleet.end_to_end_cycles").observe(out.end_to_end_cycles);
    if (code == ErrorCode::Ok) {
      metrics.counter("fleet.ok").increment();
    } else {
      metrics.counter("fleet.errors").increment();
      metrics.counter(std::string("fleet.error.") + error_code_name(code)).increment();
    }
    if (cfg_.slo)
      cfg_.slo->record(m, n, k, code, out.result.rung_label, out.end_to_end_cycles,
                       opt.deadline_cycles);
  };

  if (order.empty()) {
    out.result.code = ErrorCode::ResourceExhausted;
    out.result.message = "fleet has no healthy device for precision " +
                         std::string(precision_name(prec)) + " (" + id + ")";
    metrics.counter("fleet.no_device").increment();
    complete(out.result.code);
    return out;
  }

  const std::size_t limit =
      cfg_.max_route_attempts > 0
          ? std::min(order.size(), static_cast<std::size_t>(cfg_.max_route_attempts))
          : order.size();

  ServeError last{ErrorCode::ResourceExhausted, "no device dispatched the request"};
  int tried = 0;
  std::size_t pos = 0;

  const auto finish_with = [&](ServeResult<T>&& r, int idx, bool hedged) {
    out.result = std::move(r);
    out.device_index = idx;
    out.device = shards_[static_cast<std::size_t>(idx)]->cfg.spec.name;
    out.failovers = tried - 1;
    out.hedged = hedged;
    metrics.histogram("fleet.route_position").observe(static_cast<double>(pos));
    if (out.failovers > 0)
      metrics.counter("fleet.failovers").add(static_cast<double>(out.failovers));
    std::string dev_metric = out.device;
    for (char& c : dev_metric)
      if (c == ' ') c = '_';
    metrics.counter("fleet.device." + dev_metric + ".served").increment();
    if (out.result.ok())
      note_success(idx, AffinityKey{prec, algo, m, n, k});
    complete(out.result.code);
    return std::move(out);
  };

  // Hedged dispatch: the two best-ranked devices, sequentially (so the
  // outcome is deterministic); the faster success wins and the fleet clock
  // pays the slower arm — the cost of a real parallel hedge.
  if (cfg_.hedge_deadline_requests && opt.deadline_cycles > 0.0 && order.size() >= 2) {
    metrics.counter("fleet.hedges").increment();
    ServeResult<T> arm[2];
    ServeError arm_err[2];
    bool responded[2] = {false, false};
    for (int h = 0; h < 2; ++h) {
      ++tried;
      responded[h] = dispatch_one<T>(order[static_cast<std::size_t>(h)], algo, A, B, opt,
                                     &arm[h], &arm_err[h]);
      if (!responded[h]) arm[h].code = arm_err[h].code;
    }
    out.end_to_end_cycles +=
        std::max(arm[0].end_to_end_cycles, arm[1].end_to_end_cycles);
    const bool ok0 = responded[0] && arm[0].ok();
    const bool ok1 = responded[1] && arm[1].ok();
    if (ok0 || ok1) {
      int win = 0;
      if (ok0 && ok1)
        win = arm[1].end_to_end_cycles < arm[0].end_to_end_cycles ? 1 : 0;
      else if (ok1)
        win = 1;
      if (win == 1) metrics.counter("fleet.hedge_wins_secondary").increment();
      pos = static_cast<std::size_t>(win);
      tried = win + 1;  // failovers counts the arms ranked ahead of the winner
      return finish_with(std::move(arm[win]), order[static_cast<std::size_t>(win)],
                         /*hedged=*/true);
    }
    // Both arms failed: terminal codes end the request, otherwise keep
    // failing over past the hedged pair.
    for (int h = 0; h < 2; ++h) {
      const ErrorCode code = responded[h] ? arm[h].code : arm_err[h].code;
      if (responded[h] && !failover_eligible(code)) {
        pos = static_cast<std::size_t>(h);
        return finish_with(std::move(arm[h]), order[static_cast<std::size_t>(h)],
                           /*hedged=*/true);
      }
      last = responded[h] ? ServeError{arm[h].code, arm[h].message} : arm_err[h];
    }
    pos = 2;
  }

  for (; pos < limit; ++pos) {
    const int idx = order[pos];
    ++tried;
    ServeResult<T> res;
    ServeError err;
    if (!dispatch_one<T>(idx, algo, A, B, opt, &res, &err)) {
      last = err;  // blackout refusal: costs no cycles, on to the next device
      continue;
    }
    out.end_to_end_cycles += res.end_to_end_cycles;
    if (res.ok() || !failover_eligible(res.code))
      return finish_with(std::move(res), idx, /*hedged=*/false);
    last = ServeError{res.code, res.message};
  }

  out.result.code = last.code;
  out.result.message = last.message + " (fleet exhausted " + std::to_string(tried) +
                       " of " + std::to_string(order.size()) + " candidate devices)";
  out.failovers = tried > 0 ? tried - 1 : 0;
  if (out.failovers > 0)
    metrics.counter("fleet.failovers").add(static_cast<double>(out.failovers));
  complete(out.result.code);
  return out;
}

template <Scalar T>
std::future<FleetResult<T>> FleetServer::submit_async(core::Algo algo, Matrix<T> A,
                                                      Matrix<T> B,
                                                      core::GemmOptions opt) {
  ensure_workers_started();
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("fleet.async.submitted").increment();

  auto promise = std::make_shared<std::promise<FleetResult<T>>>();
  std::future<FleetResult<T>> future = promise->get_future();

  const std::string id = next_request_id();
  const std::size_t rm = A.rows(), rk = A.cols(), rn = B.cols();
  const Precision prec = num_traits<T>::precision;
  const std::vector<int> order = route_order(algo, prec, rm, rn, rk, opt);

  // Shared (not moved-into-one-lambda) operands: a full queue passes them to
  // the next candidate's task untouched.
  auto a = std::make_shared<Matrix<T>>(std::move(A));
  auto b = std::make_shared<Matrix<T>>(std::move(B));
  const auto submitted = std::chrono::steady_clock::now();
  const verify::FaultHooks hooks = verify::fault_hooks();
  const bool manual = manual_drain_;

  std::size_t full_queues = 0;
  for (const int idx : order) {
    Shard& s = *shards_[static_cast<std::size_t>(idx)];
    auto task = [this, promise, idx, algo, a, b, opt, hooks, id, submitted, manual,
                 clock_ghz = s.cfg.spec.boost_clock_ghz] {
      // Queue wait in simulated cycles at the queue's device clock
      // (1 GHz = 1 cycle/ns); manual drain observes a deterministic 0.
      double wait_cycles = 0.0;
      if (!manual) {
        const double wait_ns = std::chrono::duration<double, std::nano>(
                                   std::chrono::steady_clock::now() - submitted)
                                   .count();
        wait_cycles = wait_ns * clock_ghz;
      }
      verify::ScopedFault fault(hooks);
      try {
        promise->set_value(
            serve_fleet_request<T>(id, wait_cycles, idx, algo, *a, *b, opt));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    };
    if (s.queue->try_push(std::move(task))) {
      metrics.counter("fleet.async.accepted").increment();
      if (full_queues > 0)
        metrics.counter("fleet.overflow_reroutes").add(static_cast<double>(full_queues));
      return future;
    }
    ++full_queues;
  }

  // Admission control: every eligible queue is full (or no device is
  // eligible at all). Typed refusal before any rung, breaker, or retry.
  metrics.counter("fleet.async.rejected").increment();
  metrics.counter("fleet.rejected").increment();
  if (cfg_.slo) cfg_.slo->record_rejected(rm, rn, rk);
  FleetResult<T> refused;
  refused.result.requested = algo;
  refused.result.code = ErrorCode::ResourceExhausted;
  refused.result.message =
      order.empty()
          ? "fleet has no healthy device for precision " +
                std::string(precision_name(prec)) + " (" + id + ")"
          : "every eligible fleet queue is full (" + std::to_string(order.size()) +
                " candidates); retry after in-flight requests drain (" + id + ")";
  promise->set_value(std::move(refused));
  return future;
}

}  // namespace kami::serve
