// GemmServer: the resilient execution layer around the KAMI kernels.
//
// A production caller cannot afford throw-on-first-error semantics: an
// infeasible plan, an injected fault, or a runaway simulation must degrade,
// retry, or fail *typed* — never crash, hang, or silently corrupt. serve()
// wraps kami::gemm with four policies, generalizing the paper's §4.7
// register -> shared-memory fallback into a system-wide discipline:
//
//   * degradation ladder — on infeasible or resource-exhausted plans the
//     request walks KAMI-3D -> KAMI-2D -> KAMI-1D -> host reference GEMM
//     (starting at the requested algorithm; tuning overrides are relaxed to
//     planner-auto on degraded rungs). The rung that served is recorded in
//     the returned ServeResult and in serve.served.* counters.
//   * retry with bounded exponential backoff — transient faults (injected
//     through verify::FaultHooks, the chaos campaign's fault source) are
//     retried up to max_attempts_per_rung times per rung.
//   * cycle-budget watchdog — GemmOptions::deadline_cycles aborts runaway
//     simulations deterministically; deadline errors are terminal (the
//     budget is spent — degrading would spend more) and surface as
//     ErrorCode::DeadlineExceeded.
//   * circuit breaker — per (device, precision, shape, algorithm) rung:
//     after breaker_failure_threshold consecutive failures the rung is
//     skipped outright (straight to the next rung) for
//     breaker_cooldown_requests requests, then a half-open probe decides
//     whether to close it again.
//
// Everything is deterministic: same request + same fault state => same
// result, same rung, same error message.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "core/kami.hpp"
#include "exec/task_queue.hpp"
#include "obs/metrics.hpp"
#include "serve/error.hpp"
#include "sim/device.hpp"
#include "verify/invariants.hpp"

namespace kami::serve {

struct ServeConfig {
  bool allow_degradation = true;        ///< walk lower rungs on plan failures
  bool allow_reference_fallback = true; ///< host reference GEMM as the last rung
  int max_attempts_per_rung = 3;        ///< 1 initial try + 2 transient-fault retries
  /// Host-side exponential backoff between transient-fault retries:
  /// min(backoff_base_ms * 2^(attempt-1), backoff_max_ms), published to the
  /// serve.backoff_ms counter. 0 (the default — simulated faults clear
  /// instantly) disables the wait entirely.
  double backoff_base_ms = 0.0;
  double backoff_max_ms = 8.0;
  int breaker_failure_threshold = 3;    ///< consecutive failures that trip a rung
  int breaker_cooldown_requests = 8;    ///< open requests before a half-open probe

  /// Async serving (submit_async): worker threads draining the bounded
  /// request queue. 0 = defer to the KAMI_THREADS environment variable
  /// (default 1). Workers start lazily on the first submit_async.
  int async_workers = 0;
  /// Capacity of the async request queue. A submit_async against a full
  /// queue is refused with a ready ResourceExhausted future — backpressure
  /// is typed, never blocking, and never touches breakers or retries.
  std::size_t async_queue_depth = 64;
};

enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s) noexcept;

template <Scalar T>
struct ServeResult {
  ErrorCode code = ErrorCode::InternalInvariant;
  std::string message;       ///< empty on success, failure detail otherwise
  Matrix<T> C;               ///< valid when ok()
  sim::KernelProfile profile;  ///< zero when served by reference or degenerate
  core::Algo requested = core::Algo::OneD;
  core::Algo served = core::Algo::OneD;  ///< meaningful when ok() && !from_reference
  std::string rung_label;    ///< "kami_3d" / "kami_2d" / "kami_1d" / "reference" / "degenerate"
  bool from_reference = false;
  bool degenerate = false;   ///< zero-dimension request served trivially
  bool degraded = false;     ///< served below the requested rung
  int rung = -1;             ///< ladder index that served (0 = requested algo)
  int attempts = 0;          ///< kernel attempts across all rungs
  int warps = 0;
  double smem_ratio = 0.0;

  bool ok() const noexcept { return code == ErrorCode::Ok; }
};

class GemmServer {
 public:
  explicit GemmServer(ServeConfig cfg = {}) : cfg_(cfg) {}

  /// Drains and completes every queued async request, then joins the
  /// workers: a future returned by submit_async is always eventually ready.
  ~GemmServer();
  GemmServer(const GemmServer&) = delete;
  GemmServer& operator=(const GemmServer&) = delete;

  template <Scalar T>
  ServeResult<T> serve(core::Algo algo, const sim::DeviceSpec& dev, const Matrix<T>& A,
                       const Matrix<T>& B, core::GemmOptions opt = {});

  /// Bounded-concurrency async request path: enqueue the request for the
  /// worker pool (ServeConfig::async_workers, lazily started) and return a
  /// future for its ServeResult. Operands are taken by value — the server
  /// owns them for the request's lifetime. When the queue
  /// (ServeConfig::async_queue_depth) is full, the future is already ready
  /// with ErrorCode::ResourceExhausted; the refusal happens before any
  /// ladder rung runs, so overload never trips breakers or burns retries.
  /// The worker replays the submitting thread's FaultHooks, so an armed
  /// fault applies to the request exactly as in a synchronous serve().
  template <Scalar T>
  std::future<ServeResult<T>> submit_async(core::Algo algo, const sim::DeviceSpec& dev,
                                           Matrix<T> A, Matrix<T> B,
                                           core::GemmOptions opt = {});

  /// Queued-but-not-yet-claimed async requests (tests and dashboards).
  std::size_t async_queue_size() const {
    std::lock_guard lock(async_mu_);
    return queue_ ? queue_->size() : 0;
  }

  const ServeConfig& config() const noexcept { return cfg_; }

  /// Breaker state for one rung key (for tests and dashboards).
  BreakerState breaker_state(const std::string& device, core::Algo algo, Precision prec,
                             std::size_t m, std::size_t n, std::size_t k) const;

  /// Drop all breaker state (e.g. between chaos campaign phases).
  void reset_breakers();

  /// The process-wide server library-level callers share.
  static GemmServer& global();

 private:
  struct RungKey {
    std::string device;
    core::Algo algo = core::Algo::OneD;
    Precision prec = Precision::FP16;
    std::size_t m = 0, n = 0, k = 0;
    friend auto operator<=>(const RungKey&, const RungKey&) = default;
  };
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    int cooldown_remaining = 0;
    ErrorCode last_code = ErrorCode::InfeasiblePlan;  ///< reported on short-circuit
    std::string last_message;
  };

  /// One rung of the degradation ladder.
  struct Rung {
    bool reference = false;
    core::Algo algo = core::Algo::OneD;
    const char* label = "";
  };

  static std::vector<Rung> build_ladder(core::Algo requested, const ServeConfig& cfg);

  /// Admission decision: true = run the rung (Closed, or Open whose cooldown
  /// just expired — the half-open probe). False = short-circuit; *out gets
  /// the breaker's stored failure for the typed error.
  bool breaker_admit(const RungKey& key, ServeError* out);
  void breaker_record(const RungKey& key, bool success, ErrorCode code,
                      const std::string& message);

  /// Sleep (when configured) and publish the bounded exponential backoff for
  /// retry number `attempt` (1-based count of the attempt that just failed).
  void backoff(int attempt) const;

  /// Create the queue and start the async workers on first use.
  void ensure_async_started();

  ServeConfig cfg_;
  mutable std::mutex mu_;
  std::map<RungKey, Breaker> breakers_;

  // Async serving. queue_ is created once under async_mu_ and never
  // reassigned, so workers use it without further locking.
  mutable std::mutex async_mu_;
  std::unique_ptr<exec::BoundedTaskQueue> queue_;
  std::vector<std::thread> async_threads_;
};

// ---------------------------------------------------------------------------
// implementation

template <Scalar T>
ServeResult<T> GemmServer::serve(core::Algo algo, const sim::DeviceSpec& dev,
                                 const Matrix<T>& A, const Matrix<T>& B,
                                 core::GemmOptions opt) {
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("serve.requests").increment();

  ServeResult<T> out;
  out.requested = algo;

  const auto fail = [&](ErrorCode code, const std::string& message) {
    out.code = code;
    out.message = message;
    metrics.counter("serve.errors").increment();
    metrics.counter(std::string("serve.error.") + error_code_name(code)).increment();
    return out;
  };

  // -- request validation: typed errors, never exceptions.
  if (algo != core::Algo::OneD && algo != core::Algo::TwoD && algo != core::Algo::ThreeD)
    return fail(ErrorCode::InvalidRequest,
                "unknown algorithm: " + std::to_string(static_cast<int>(algo)));
  if (A.cols() != B.rows())
    return fail(ErrorCode::InvalidRequest,
                "inner dimensions disagree: A is " + std::to_string(A.rows()) + "x" +
                    std::to_string(A.cols()) + " but B is " + std::to_string(B.rows()) +
                    "x" + std::to_string(B.cols()));

  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();

  // -- degenerate shapes are well-defined, mode-independent no-ops: an empty
  // product (m or n zero) or an empty reduction (k zero, C = 0).
  if (m == 0 || n == 0 || k == 0) {
    out.code = ErrorCode::Ok;
    out.C = Matrix<T>(m, n);  // zero-filled
    out.degenerate = true;
    out.rung_label = "degenerate";
    out.rung = 0;
    metrics.counter("serve.ok").increment();
    metrics.counter("serve.served.degenerate").increment();
    return out;
  }

  const std::vector<Rung> ladder = build_ladder(algo, cfg_);
  ServeError last{ErrorCode::InfeasiblePlan, "no rung admitted the request"};

  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const Rung& rung = ladder[r];
    const RungKey key{dev.name, rung.algo, num_traits<T>::precision, m, n, k};

    if (!rung.reference) {
      ServeError short_circuit;
      if (!breaker_admit(key, &short_circuit)) {
        last = short_circuit;
        continue;  // breaker open: route straight to the next rung
      }
    }

    // Tuning overrides were chosen for the requested configuration; degraded
    // rungs fall back to the planner's auto selection.
    core::GemmOptions ropt = opt;
    if (r > 0) {
      ropt.warps = 0;
      ropt.smem_ratio = -1.0;
    }

    if (rung.reference) {
      ++out.attempts;
      out.code = ErrorCode::Ok;
      out.C = baselines::reference_gemm(A, B);
      out.from_reference = true;
      out.degraded = true;
      out.rung = static_cast<int>(r);
      out.rung_label = rung.label;
      metrics.counter("serve.ok").increment();
      metrics.counter("serve.degraded").increment();
      metrics.counter("serve.served.reference").increment();
      metrics.histogram("serve.rung").observe(static_cast<double>(r));
      return out;
    }

    for (int attempt = 1; attempt <= cfg_.max_attempts_per_rung; ++attempt) {
      ++out.attempts;
      try {
        core::GemmResult<T> res = kami::gemm(rung.algo, dev, A, B, ropt);
        breaker_record(key, true, ErrorCode::Ok, "");
        out.code = ErrorCode::Ok;
        out.C = std::move(res.C);
        out.profile = res.profile;
        out.served = rung.algo;
        out.degraded = r > 0;
        out.rung = static_cast<int>(r);
        out.rung_label = rung.label;
        out.warps = res.warps;
        out.smem_ratio = res.smem_ratio;
        metrics.counter("serve.ok").increment();
        if (out.degraded) metrics.counter("serve.degraded").increment();
        metrics.counter(std::string("serve.served.") + rung.label).increment();
        metrics.histogram("serve.rung").observe(static_cast<double>(r));
        return out;
      } catch (...) {
        const ErrorCode code = classify_exception(std::current_exception());
        std::string message = "(unknown failure)";
        try {
          throw;
        } catch (const std::exception& e) {
          message = e.what();
        } catch (...) {
        }

        if (code == ErrorCode::DeadlineExceeded) {
          // The cycle budget is spent; a lower rung would spend more. Typed,
          // terminal, and deterministic (same request => same abort point).
          return fail(code, message);
        }
        if (code == ErrorCode::InternalInvariant) {
          // A simulator bug with no fault source must never be masked by
          // degradation — surface it immediately.
          breaker_record(key, false, code, message);
          return fail(code, message);
        }
        if (code == ErrorCode::TransientFault && attempt < cfg_.max_attempts_per_rung) {
          // The injected fault cleared if its armed_runs budget ran out; a
          // positive budget models "goes away when retried".
          if (auto& hooks = verify::fault_hooks(); hooks.armed_runs > 0)
            --hooks.armed_runs;
          metrics.counter("serve.retries").increment();
          backoff(attempt);
          continue;
        }
        // Infeasible plan, exhausted resources, or a transient fault that
        // outlived its retries: count it against the breaker, degrade.
        breaker_record(key, false, code, message);
        last = ServeError{code, message};
        break;
      }
    }
  }
  return fail(last.code, last.message);
}

template <Scalar T>
std::future<ServeResult<T>> GemmServer::submit_async(core::Algo algo,
                                                     const sim::DeviceSpec& dev,
                                                     Matrix<T> A, Matrix<T> B,
                                                     core::GemmOptions opt) {
  ensure_async_started();
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("serve.async.submitted").increment();

  // shared_ptr: std::function requires a copyable callable, std::promise is
  // move-only.
  auto promise = std::make_shared<std::promise<ServeResult<T>>>();
  std::future<ServeResult<T>> future = promise->get_future();

  const verify::FaultHooks hooks = verify::fault_hooks();
  auto task = [this, promise, algo, spec = dev, a = std::move(A), b = std::move(B),
               opt, hooks]() {
    verify::ScopedFault fault(hooks);
    try {
      promise->set_value(serve(algo, spec, a, b, opt));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };

  if (!queue_->try_push(std::move(task))) {
    // Backpressure: typed refusal before any rung, breaker, or retry is
    // touched — overload must not poison the resilience machinery.
    metrics.counter("serve.async.rejected").increment();
    ServeResult<T> refused;
    refused.requested = algo;
    refused.code = ErrorCode::ResourceExhausted;
    refused.message = "async request queue full (depth " +
                      std::to_string(queue_->capacity()) +
                      "); retry after in-flight requests drain";
    promise->set_value(std::move(refused));
    return future;
  }
  metrics.counter("serve.async.accepted").increment();
  return future;
}

}  // namespace kami::serve
