// GemmServer: the resilient execution layer around the KAMI kernels.
//
// A production caller cannot afford throw-on-first-error semantics: an
// infeasible plan, an injected fault, or a runaway simulation must degrade,
// retry, or fail *typed* — never crash, hang, or silently corrupt. serve()
// wraps kami::gemm with four policies, generalizing the paper's §4.7
// register -> shared-memory fallback into a system-wide discipline:
//
//   * degradation ladder — on infeasible or resource-exhausted plans the
//     request walks KAMI-3D -> KAMI-2D -> KAMI-1D -> host reference GEMM
//     (starting at the requested algorithm; tuning overrides are relaxed to
//     planner-auto on degraded rungs). The rung that served is recorded in
//     the returned ServeResult and in serve.served.* counters.
//   * retry with bounded exponential backoff — transient faults (injected
//     through verify::FaultHooks, the chaos campaign's fault source) are
//     retried up to max_attempts_per_rung times per rung.
//   * cycle-budget watchdog — GemmOptions::deadline_cycles aborts runaway
//     simulations deterministically; deadline errors are terminal (the
//     budget is spent — degrading would spend more) and surface as
//     ErrorCode::DeadlineExceeded.
//   * circuit breaker — per (device, precision, shape, algorithm) rung:
//     after breaker_failure_threshold consecutive failures the rung is
//     skipped outright (straight to the next rung) for
//     breaker_cooldown_requests requests, then a half-open probe decides
//     whether to close it again.
//
// Every request is additionally observable: it gets a request id, its
// end-to-end and queue-wait latencies land in serve.* histograms and the
// attached SloTracker, and — when a FlightRecorder is attached — a full
// span trace (admit -> queue_wait -> per-rung plan/attempt/backoff ->
// typed completion) on the deterministic logical-cycle timeline
// obs::TraceBuilder defines.
//
// Everything is deterministic: same request + same fault state => same
// result, same rung, same error message, same trace bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "core/analytic_planner.hpp"
#include "core/kami.hpp"
#include "core/profile_cache.hpp"
#include "exec/task_queue.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "serve/error.hpp"
#include "serve/slo.hpp"
#include "sim/device.hpp"
#include "sim/exec_mode.hpp"
#include "verify/invariants.hpp"

namespace kami::serve {

struct ServeConfig {
  bool allow_degradation = true;        ///< walk lower rungs on plan failures
  bool allow_reference_fallback = true; ///< host reference GEMM as the last rung
  int max_attempts_per_rung = 3;        ///< 1 initial try + 2 transient-fault retries
  /// Host-side exponential backoff between transient-fault retries:
  /// min(backoff_base_ms * 2^(attempt-1), backoff_max_ms), published to the
  /// serve.backoff_ms counter. 0 (the default — simulated faults clear
  /// instantly) disables the wait entirely.
  double backoff_base_ms = 0.0;
  double backoff_max_ms = 8.0;
  int breaker_failure_threshold = 3;    ///< consecutive failures that trip a rung
  int breaker_cooldown_requests = 8;    ///< open requests before a half-open probe

  /// Async serving (submit_async): worker threads draining the bounded
  /// request queue. 0 = defer to the KAMI_THREADS environment variable
  /// (default 1). Workers start lazily on the first submit_async.
  int async_workers = 0;
  /// Capacity of the async request queue. A submit_async against a full
  /// queue is refused with a ready ResourceExhausted future — backpressure
  /// is typed, never blocking, and never touches breakers or retries.
  std::size_t async_queue_depth = 64;

  /// Build a span trace per request. Traces are only materialized when a
  /// flight recorder is attached, so the default configuration pays nothing.
  bool tracing = true;
  /// Request ids are "<prefix>-<n>" with n counting from 1 per server; the
  /// chaos campaign stamps a per-seed prefix so ids stay unique (and
  /// deterministic) across its per-point servers.
  std::string request_id_prefix = "req";
  /// Destination for finished request traces (shared so dashboards and the
  /// server can outlive each other); nullptr disables tracing entirely.
  std::shared_ptr<obs::FlightRecorder> flight;
  /// Per-shape-class SLO accounting; works with or without tracing.
  std::shared_ptr<SloTracker> slo;
};

enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s) noexcept;

template <Scalar T>
struct ServeResult {
  ErrorCode code = ErrorCode::InternalInvariant;
  std::string message;       ///< empty on success, failure detail otherwise
  Matrix<T> C;               ///< valid when ok()
  sim::KernelProfile profile;  ///< zero when served by reference or degenerate
  core::Algo requested = core::Algo::OneD;
  core::Algo served = core::Algo::OneD;  ///< meaningful when ok() && !from_reference
  std::string rung_label;    ///< "kami_3d" / "kami_2d" / "kami_1d" / "reference" / "degenerate"
  bool from_reference = false;
  bool degenerate = false;   ///< zero-dimension request served trivially
  bool degraded = false;     ///< served below the requested rung
  int rung = -1;             ///< ladder index that served (0 = requested algo)
  int attempts = 0;          ///< kernel attempts across all rungs
  int warps = 0;
  double smem_ratio = 0.0;
  /// The request's final logical clock: queue wait + per-attempt kernel
  /// latency + configured backoff (+ the spent budget on a deadline abort),
  /// in simulated cycles. This is the quantity the serve.end_to_end_cycles
  /// histogram and the SLO tracker observe; FleetServer reads it to account
  /// a whole failover chain as one fleet request.
  double end_to_end_cycles = 0.0;

  bool ok() const noexcept { return code == ErrorCode::Ok; }
};

class GemmServer {
 public:
  /// Construction is passive — no queue, no worker threads (those start
  /// lazily on the first submit_async) — but it does pre-register the
  /// serve.* metrics at zero, so a server that is constructed and destroyed
  /// without ever serving exports zero-valued (not absent) counters.
  explicit GemmServer(ServeConfig cfg = {});

  /// Drains and completes every queued async request, then joins the
  /// workers: a future returned by submit_async is always eventually ready.
  ~GemmServer();
  GemmServer(const GemmServer&) = delete;
  GemmServer& operator=(const GemmServer&) = delete;

  template <Scalar T>
  ServeResult<T> serve(core::Algo algo, const sim::DeviceSpec& dev, const Matrix<T>& A,
                       const Matrix<T>& B, core::GemmOptions opt = {});

  /// Bounded-concurrency async request path: enqueue the request for the
  /// worker pool (ServeConfig::async_workers, lazily started) and return a
  /// future for its ServeResult. Operands are taken by value — the server
  /// owns them for the request's lifetime. When the queue
  /// (ServeConfig::async_queue_depth) is full, the future is already ready
  /// with ErrorCode::ResourceExhausted; the refusal happens before any
  /// ladder rung runs, so overload never trips breakers or burns retries.
  /// The worker replays the submitting thread's FaultHooks, so an armed
  /// fault applies to the request exactly as in a synchronous serve().
  template <Scalar T>
  std::future<ServeResult<T>> submit_async(core::Algo algo, const sim::DeviceSpec& dev,
                                           Matrix<T> A, Matrix<T> B,
                                           core::GemmOptions opt = {});

  /// Queued-but-not-yet-claimed async requests (tests and dashboards).
  std::size_t async_queue_size() const {
    std::lock_guard lock(async_mu_);
    return queue_ ? queue_->size() : 0;
  }

  const ServeConfig& config() const noexcept { return cfg_; }

  /// Breaker state for one rung key (for tests and dashboards).
  BreakerState breaker_state(const std::string& device, core::Algo algo, Precision prec,
                             std::size_t m, std::size_t n, std::size_t k) const;

  /// Drop all breaker state (e.g. between chaos campaign phases).
  void reset_breakers();

  /// The process-wide server library-level callers share.
  static GemmServer& global();

 private:
  struct RungKey {
    std::string device;
    core::Algo algo = core::Algo::OneD;
    Precision prec = Precision::FP16;
    std::size_t m = 0, n = 0, k = 0;
    friend auto operator<=>(const RungKey&, const RungKey&) = default;
  };
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    int cooldown_remaining = 0;
    ErrorCode last_code = ErrorCode::InfeasiblePlan;  ///< reported on short-circuit
    std::string last_message;
  };

  /// One rung of the degradation ladder.
  struct Rung {
    bool reference = false;
    core::Algo algo = core::Algo::OneD;
    const char* label = "";
  };

  static std::vector<Rung> build_ladder(core::Algo requested, const ServeConfig& cfg);

  /// Per-request carry-through from the submission site into the ladder:
  /// the request id and how long the request sat in the async queue
  /// (0 for synchronous serves, which never queue).
  struct RequestContext {
    std::string id;
    double queue_wait_cycles = 0.0;
  };

  std::string next_request_id() {
    return cfg_.request_id_prefix + "-" +
           std::to_string(request_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  /// The instrumented ladder shared by serve() and the async workers.
  template <Scalar T>
  ServeResult<T> serve_request(const RequestContext& ctx, core::Algo algo,
                               const sim::DeviceSpec& dev, const Matrix<T>& A,
                               const Matrix<T>& B, core::GemmOptions opt);

  /// Admission decision: true = run the rung (Closed, or Open whose cooldown
  /// just expired — the half-open probe). False = short-circuit; *out gets
  /// the breaker's stored failure for the typed error. `observed` (optional)
  /// receives the state the decision saw — Open for a short-circuit,
  /// HalfOpen for the probe — for the rung span's breaker attribute.
  bool breaker_admit(const RungKey& key, ServeError* out,
                     BreakerState* observed = nullptr);
  void breaker_record(const RungKey& key, bool success, ErrorCode code,
                      const std::string& message);

  /// Sleep (when configured) and publish the bounded exponential backoff for
  /// retry number `attempt` (1-based count of the attempt that just failed).
  /// Returns the applied delay in milliseconds (0 when disabled) so the
  /// request trace can advance its logical clock by the same quantity.
  double backoff(int attempt) const;

  /// Create the queue and start the async workers on first use.
  void ensure_async_started();

  ServeConfig cfg_;
  std::atomic<std::uint64_t> request_counter_{0};
  mutable std::mutex mu_;
  std::map<RungKey, Breaker> breakers_;

  // Async serving. queue_ is created once under async_mu_ and never
  // reassigned, so workers use it without further locking.
  mutable std::mutex async_mu_;
  std::unique_ptr<exec::BoundedTaskQueue> queue_;
  std::vector<std::thread> async_threads_;
};

// ---------------------------------------------------------------------------
// implementation

template <Scalar T>
ServeResult<T> GemmServer::serve(core::Algo algo, const sim::DeviceSpec& dev,
                                 const Matrix<T>& A, const Matrix<T>& B,
                                 core::GemmOptions opt) {
  return serve_request(RequestContext{next_request_id(), 0.0}, algo, dev, A, B, opt);
}

template <Scalar T>
ServeResult<T> GemmServer::serve_request(const RequestContext& ctx, core::Algo algo,
                                         const sim::DeviceSpec& dev, const Matrix<T>& A,
                                         const Matrix<T>& B, core::GemmOptions opt) {
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("serve.requests").increment();

  ServeResult<T> out;
  out.requested = algo;

  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();

  // The request's logical clock: begins at 0, advances only by deterministic
  // simulated quantities (queue wait, kernel latency, deadline budget,
  // configured backoff). It exists whether or not a trace is built — the
  // serve.end_to_end_cycles histogram and the SLO tracker read it.
  double clock = 0.0;
  std::optional<obs::TraceBuilder> trace;
  if (cfg_.tracing && cfg_.flight) {
    trace.emplace(ctx.id);
    trace->set_meta("algo", algo_name(algo));
    trace->set_meta("device", dev.name);
    trace->set_meta("precision", precision_name(num_traits<T>::precision));
    trace->set_meta("m", std::to_string(m));
    trace->set_meta("n", std::to_string(n));
    trace->set_meta("k", std::to_string(k));
  }
  const auto advance = [&](double cycles) {
    clock += cycles;
    if (trace) trace->advance(cycles);
  };

  // Completion funnel: every exit path lands here exactly once to publish
  // the latency histograms, the SLO record, and the finished trace
  // (TraceBuilder::finish closes any still-open spans at the final clock).
  const auto complete = [&] {
    out.end_to_end_cycles = clock;
    metrics.histogram("serve.queue_wait_cycles").observe(ctx.queue_wait_cycles);
    metrics.histogram("serve.end_to_end_cycles").observe(clock);
    if (cfg_.slo)
      cfg_.slo->record(m, n, k, out.code, out.rung_label, clock, opt.deadline_cycles);
    if (trace) {
      trace->root_attr("code", error_code_name(out.code));
      if (!out.message.empty()) trace->root_attr("error", out.message);
      if (!out.rung_label.empty()) trace->root_attr("rung_label", out.rung_label);
      trace->root_attr_num("rung", static_cast<double>(out.rung));
      trace->root_attr_num("attempts", static_cast<double>(out.attempts));
      trace->root_attr("degraded", out.degraded ? "true" : "false");
      cfg_.flight->record(trace->finish());
    }
  };

  const auto fail = [&](ErrorCode code, const std::string& message) {
    out.code = code;
    out.message = message;
    metrics.counter("serve.errors").increment();
    metrics.counter(std::string("serve.error.") + error_code_name(code)).increment();
    complete();
    return out;
  };

  // -- admission: typed validation errors, never exceptions.
  if (trace) trace->open("admit");
  try {
    sim::validate_device(dev);
  } catch (const std::exception& e) {
    return fail(ErrorCode::InvalidRequest, e.what());
  }
  if (algo != core::Algo::OneD && algo != core::Algo::TwoD && algo != core::Algo::ThreeD)
    return fail(ErrorCode::InvalidRequest,
                "unknown algorithm: " + std::to_string(static_cast<int>(algo)));
  if (A.cols() != B.rows())
    return fail(ErrorCode::InvalidRequest,
                "inner dimensions disagree: A is " + std::to_string(A.rows()) + "x" +
                    std::to_string(A.cols()) + " but B is " + std::to_string(B.rows()) +
                    "x" + std::to_string(B.cols()));
  if (trace) {
    trace->attr("result", "admitted");
    trace->close();
    trace->open("queue_wait");
    trace->attr_num("cycles", ctx.queue_wait_cycles);
  }
  advance(ctx.queue_wait_cycles);
  if (trace) trace->close();

  // -- degenerate shapes are well-defined, mode-independent no-ops: an empty
  // product (m or n zero) or an empty reduction (k zero, C = 0).
  if (m == 0 || n == 0 || k == 0) {
    out.code = ErrorCode::Ok;
    out.C = Matrix<T>(m, n);  // zero-filled
    out.degenerate = true;
    out.rung_label = "degenerate";
    out.rung = 0;
    metrics.counter("serve.ok").increment();
    metrics.counter("serve.served.degenerate").increment();
    complete();
    return out;
  }

  const std::vector<Rung> ladder = build_ladder(algo, cfg_);
  ServeError last{ErrorCode::InfeasiblePlan, "no rung admitted the request"};

  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const Rung& rung = ladder[r];
    const RungKey key{dev.name, rung.algo, num_traits<T>::precision, m, n, k};

    if (trace) {
      trace->open("rung[" + std::to_string(r) + "]");
      trace->attr("label", rung.label);
      trace->attr("algo", rung.reference ? "reference" : algo_name(rung.algo));
    }

    if (!rung.reference) {
      ServeError short_circuit;
      BreakerState observed = BreakerState::Closed;
      const bool admitted = breaker_admit(key, &short_circuit, &observed);
      if (trace) trace->attr("breaker", breaker_state_name(observed));
      if (!admitted) {
        if (trace) {
          trace->attr("skipped", "breaker_open");
          trace->close_to(1);
        }
        last = short_circuit;
        continue;  // breaker open: route straight to the next rung
      }
    }

    // Tuning overrides were chosen for the requested configuration; degraded
    // rungs fall back to the planner's auto selection.
    core::GemmOptions ropt = opt;
    if (r > 0) {
      ropt.warps = 0;
      ropt.smem_ratio = -1.0;
    }

    if (rung.reference) {
      ++out.attempts;
      out.code = ErrorCode::Ok;
      out.C = baselines::reference_gemm(A, B);
      out.from_reference = true;
      out.degraded = true;
      out.rung = static_cast<int>(r);
      out.rung_label = rung.label;
      metrics.counter("serve.ok").increment();
      metrics.counter("serve.degraded").increment();
      metrics.counter("serve.served.reference").increment();
      metrics.histogram("serve.rung").observe(static_cast<double>(r));
      if (trace) {
        trace->attr("result", "ok");
        trace->close_to(1);
      }
      complete();
      return out;
    }

    // The plan estimate is an observation, not a decision: the analytic fast
    // path answers from the ProfileCache (one race-free try_get copy-out) or
    // the calibrated closed form and NEVER simulates — the serving hot
    // path's contract. A cold/untrusted calibration bucket is simply
    // recorded as unplanned. The trace reports only request-determined
    // quantities (cache state, raw analytic cycles, resolved plan) so
    // campaign trace dumps stay worker-count invariant; the calibrated
    // split lands in the serve.plan.* counters instead.
    std::optional<core::PlanEstimate> estimate;
    if (trace) trace->open("plan");
    try {
      estimate = core::estimate_plan(core::ProfileCache::global(),
                                     model::Predictor::global(), rung.algo, dev,
                                     num_traits<T>::precision, m, n, k, ropt);
      metrics
          .counter(std::string("serve.plan.") +
                   core::plan_source_name(estimate->source))
          .increment();
      if (trace) {
        trace->attr("profile_cache",
                    estimate->source == core::PlanSource::Cache ? "hit" : "miss");
        trace->attr_num("analytic_cycles", estimate->prediction.analytic_cycles);
        trace->attr_num("warps", static_cast<double>(estimate->plan.p));
        trace->attr_num("smem_ratio", estimate->plan.smem_ratio);
      }
    } catch (const std::exception& e) {
      if (trace) trace->attr("plan_error", e.what());
    }
    if (trace) trace->close();

    for (int attempt = 1; attempt <= cfg_.max_attempts_per_rung; ++attempt) {
      ++out.attempts;
      if (trace) {
        trace->open("attempt[" + std::to_string(attempt) + "]");
        trace->attr("exec_mode", sim::exec_mode_name(ropt.mode));
      }
      try {
        core::GemmResult<T> res = kami::gemm(rung.algo, dev, A, B, ropt);
        breaker_record(key, true, ErrorCode::Ok, "");
        out.code = ErrorCode::Ok;
        out.C = std::move(res.C);
        out.profile = res.profile;
        out.served = rung.algo;
        out.degraded = r > 0;
        out.rung = static_cast<int>(r);
        out.rung_label = rung.label;
        out.warps = res.warps;
        out.smem_ratio = res.smem_ratio;
        metrics.counter("serve.ok").increment();
        if (out.degraded) metrics.counter("serve.degraded").increment();
        metrics.counter(std::string("serve.served.") + rung.label).increment();
        metrics.histogram("serve.rung").observe(static_cast<double>(r));
        if (res.profile.latency > 0.0) {
          // Every timed completion is ground truth: it calibrates the
          // predictor (so later estimates for this bucket turn analytic) and
          // scores the estimate this request was served under.
          model::Observation ob;
          ob.device = dev.name;
          ob.algo = rung.algo;
          ob.precision = num_traits<T>::precision;
          ob.m = m;
          ob.n = n;
          ob.k = k;
          ob.p = res.warps;
          ob.options = core::predict_options(ropt);
          ob.simulated_cycles = res.profile.latency;
          model::Predictor::global().observe(ob);
          if (estimate && estimate->source != core::PlanSource::Unplanned)
            metrics.histogram("model.prediction_error_pct")
                .observe(100.0 * std::abs(res.profile.latency - estimate->cycles) /
                         res.profile.latency);
        }
        advance(res.profile.latency);
        if (trace) {
          trace->attr("result", "ok");
          trace->attr_num("latency_cycles", res.profile.latency);
          trace->close_to(1);
        }
        complete();
        return out;
      } catch (...) {
        const ErrorCode code = classify_exception(std::current_exception());
        std::string message = "(unknown failure)";
        try {
          throw;
        } catch (const std::exception& e) {
          message = e.what();
        } catch (...) {
        }
        if (trace) {
          trace->attr("result", error_code_name(code));
          trace->attr("error", message);
        }

        if (code == ErrorCode::DeadlineExceeded) {
          // The cycle budget is spent; a lower rung would spend more. Typed,
          // terminal, and deterministic (same request => same abort point).
          advance(opt.deadline_cycles > 0.0 ? opt.deadline_cycles : 0.0);
          return fail(code, message);
        }
        if (code == ErrorCode::InternalInvariant) {
          // A simulator bug with no fault source must never be masked by
          // degradation — surface it immediately.
          breaker_record(key, false, code, message);
          return fail(code, message);
        }
        if (code == ErrorCode::TransientFault && attempt < cfg_.max_attempts_per_rung) {
          // The injected fault cleared if its armed_runs budget ran out; a
          // positive budget models "goes away when retried".
          if (auto& hooks = verify::fault_hooks(); hooks.armed_runs > 0)
            --hooks.armed_runs;
          metrics.counter("serve.retries").increment();
          if (trace) trace->close_to(2);  // close the attempt, keep the rung
          const double delay_ms = backoff(attempt);
          if (delay_ms > 0.0) {
            if (trace) {
              trace->open("backoff");
              trace->attr_num("delay_ms", delay_ms);
            }
            // 1 GHz = 1 cycle/ns, so ms * GHz * 1e6 = simulated cycles.
            advance(delay_ms * dev.boost_clock_ghz * 1e6);
            if (trace) trace->close();
          }
          continue;
        }
        // Infeasible plan, exhausted resources, or a transient fault that
        // outlived its retries: count it against the breaker, degrade.
        breaker_record(key, false, code, message);
        last = ServeError{code, message};
        if (trace) trace->close_to(1);
        break;
      }
    }
  }
  return fail(last.code, last.message);
}

template <Scalar T>
std::future<ServeResult<T>> GemmServer::submit_async(core::Algo algo,
                                                     const sim::DeviceSpec& dev,
                                                     Matrix<T> A, Matrix<T> B,
                                                     core::GemmOptions opt) {
  ensure_async_started();
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("serve.async.submitted").increment();

  // shared_ptr: std::function requires a copyable callable, std::promise is
  // move-only.
  auto promise = std::make_shared<std::promise<ServeResult<T>>>();
  std::future<ServeResult<T>> future = promise->get_future();

  // The id is assigned at submission (so ids reflect arrival order), but the
  // queue wait is measured by the claiming worker: wall nanoseconds spent in
  // the queue, converted to simulated cycles at the device's boost clock
  // (1 GHz = 1 cycle/ns). Synchronous serves never queue and observe 0.
  const std::string id = next_request_id();
  const auto submitted = std::chrono::steady_clock::now();
  const verify::FaultHooks hooks = verify::fault_hooks();
  // Captured before A/B are moved into the task: a refusal still needs the
  // request's shape for SLO accounting.
  const std::size_t rm = A.rows();
  const std::size_t rk = A.cols();
  const std::size_t rn = B.cols();
  auto task = [this, promise, algo, spec = dev, a = std::move(A), b = std::move(B),
               opt, hooks, id, submitted]() {
    const double wait_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - submitted)
                               .count();
    RequestContext ctx{id, wait_ns * spec.boost_clock_ghz};
    verify::ScopedFault fault(hooks);
    try {
      promise->set_value(serve_request(ctx, algo, spec, a, b, opt));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };

  if (!queue_->try_push(std::move(task))) {
    // Backpressure: typed refusal before any rung, breaker, or retry is
    // touched — overload must not poison the resilience machinery. The
    // refusal still lands in SLO accounting (requests/errors/by_code), but
    // observes no latency: the request never ran.
    metrics.counter("serve.async.rejected").increment();
    if (cfg_.slo) cfg_.slo->record_rejected(rm, rn, rk);
    ServeResult<T> refused;
    refused.requested = algo;
    refused.code = ErrorCode::ResourceExhausted;
    refused.message = "async request queue full (depth " +
                      std::to_string(queue_->capacity()) +
                      "); retry after in-flight requests drain";
    promise->set_value(std::move(refused));
    return future;
  }
  metrics.counter("serve.async.accepted").increment();
  return future;
}

}  // namespace kami::serve
