// Fleet chaos campaign: randomized resilience fuzzing of the FleetServer.
//
// Each fleet chaos point wraps a single-server chaos scenario (shape,
// precision, algorithm, injected fault, deadline, execution mode — the same
// generator family as serve/chaos.hpp) in fleet-level adversity:
//
//   * seeded blackouts — a random subset of the four devices (possibly all
//     of them) is dark before the request arrives, so dispatch refusals,
//     mark-down, and failover all fire;
//   * router misprediction — per-device multiplicative skew on the routing
//     score, so the request is deliberately sent to the "wrong" device
//     first and correctness must survive bad placement;
//   * queue-overflow storms — a burst of async submissions against
//     deliberately tiny shard queues in manual-drain mode, so overflow
//     reroute and typed admission refusals exercise deterministically;
//   * mid-request faults — the usual verify::FaultHooks injections, now
//     interacting with failover (a fault consumed on one device changes
//     what the next device sees).
//
// The campaign asserts the fleet contract on every point:
//
//   * bit-correct-or-typed — exactly serve/chaos.hpp's contract
//     (chaos_detail::contract_violation), applied to the fleet result AND to
//     every storm request's future;
//   * no request lost or double-completed — every submitted future is ready
//     after drain() and carries a ServeResult (a promise broken or set twice
//     would surface as an exception);
//   * failover bit-identity — for fault-free points, the fleet's answer is
//     bit-identical to serving the same operands directly on the device the
//     fleet reports it used: failover may change *where*, never *what*;
//   * recovery — once blackouts clear, the probe state machine returns
//     every marked-down device to Healthy within cooldown + 2 requests;
//   * deterministic replay — the entire scenario rerun from scratch (fresh
//     fleet, fresh hermetic planner state) reproduces the same code,
//     message, serving device, failover count, and end-to-end cycles.
//
// Points are generated from a seed, so every violation is replayable:
// `kami_chaos --fleet --seed <s> --points 1`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/chaos.hpp"
#include "serve/fleet.hpp"

namespace kami::serve {

struct FleetChaosPoint {
  verify::CheckPoint base;  ///< the requested shape/precision/algo/tuning
  ChaosFault fault = ChaosFault::None;
  long long alloc_countdown = -1;
  double deadline_cycles = 0.0;
  sim::ExecMode mode = sim::ExecMode::Full;

  std::uint32_t blackout_mask = 0;  ///< bit i: device i dark at arrival
  std::vector<double> route_skew;   ///< empty = honest router
  bool hedge = false;               ///< hedge deadline-carrying requests
  int storm_requests = 0;           ///< async burst size (0 = no storm)
  std::size_t queue_depth = 4;      ///< shard queue capacity for this point
  int probe_cooldown = 2;           ///< fleet requests before a Down shard probes
};

/// Deterministic seed -> point generation (replays exactly).
FleetChaosPoint fleet_chaos_point(std::uint64_t seed);

/// One-line human-readable spec.
std::string to_string(const FleetChaosPoint& p);

struct FleetChaosOutcome {
  bool violation = false;
  std::string detail;
  ErrorCode code = ErrorCode::Ok;
  std::string message;
  std::string rung_label;  ///< rung that served, or "error"
  std::string device;      ///< device that answered ("" on fleet refusal)
  int failovers = 0;
  bool hedged = false;
  int storm_ok = 0;        ///< storm futures that served
  int storm_rejected = 0;  ///< storm futures typed-refused at admission
  /// Per-point fleet-level SLO accounting in campaign mode.
  std::shared_ptr<SloTracker> slo;
  std::vector<obs::RequestTrace> traces;
};

/// Run one fleet chaos point: build the point's fleet (manual drain,
/// hermetic planner state), apply blackouts/skew, run the storm, serve the
/// main request under its fault, check recovery, then replay the scenario
/// from scratch and check determinism. `flight`/`slo` attach per-point
/// observability (campaign mode folds them in seed order).
FleetChaosOutcome run_fleet_chaos_point(
    const FleetChaosPoint& p, const std::shared_ptr<obs::FlightRecorder>& flight = nullptr,
    const std::shared_ptr<SloTracker>& slo = nullptr,
    const std::string& request_id_prefix = "fleet");

struct FleetChaosReport {
  std::size_t ran = 0;
  std::size_t served_ok = 0;
  std::size_t typed_errors = 0;
  std::size_t failovers = 0;       ///< total failed dispatches before success
  std::size_t hedged = 0;          ///< points served by a hedged pair
  std::size_t storm_requests = 0;  ///< total storm submissions checked
  std::size_t storm_rejected = 0;  ///< typed admission refusals among them
  std::map<std::string, std::size_t> by_code;
  std::map<std::string, std::size_t> by_rung;
  std::map<std::string, std::size_t> by_fault;
  std::map<std::string, std::size_t> by_device;  ///< device that answered
  std::vector<ChaosViolation> violations;

  bool clean() const noexcept { return violations.empty(); }
};

/// Replication-parallel fleet campaign: points seeded base_seed,
/// base_seed+1, ... each against a fresh fleet, fanned out across the
/// execution engine (`workers` 0 = defer to KAMI_THREADS, 1 = serial).
/// Outcomes fold in seed order, so the report — and the `flight`/`slo`
/// contents when attached — is bit-identical at every worker count.
FleetChaosReport run_fleet_campaign(
    std::uint64_t base_seed, std::size_t points, int workers = 1,
    const std::shared_ptr<obs::FlightRecorder>& flight = nullptr,
    const std::shared_ptr<SloTracker>& slo = nullptr);

}  // namespace kami::serve
