#include "serve/chaos.hpp"

#include <cmath>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "baselines/reference.hpp"
#include "exec/engine.hpp"
#include "util/rng.hpp"

namespace kami::serve {

namespace chaos_detail {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

double reference_tolerance(Precision p) {
  switch (p) {
    case Precision::FP64: return 1e-12;
    case Precision::FP32: return 1e-5;
    case Precision::TF32: return 1e-2;
    case Precision::FP16: return 1e-2;
    case Precision::BF16: return 1e-1;
    case Precision::FP8E4M3: return 8e-2;
  }
  return 1e-2;
}

verify::FaultHooks hooks_for(ChaosFault f, long long alloc_countdown) {
  verify::FaultHooks hooks;
  hooks.armed_runs = 0;  // start disarmed; each case arms exactly its fault
  switch (f) {
    case ChaosFault::None:
      break;
    case ChaosFault::TransientWarpSkew:
      hooks.warp_advance_skew = -1e9;
      hooks.armed_runs = 1;
      break;
    case ChaosFault::TransientPortSkew:
      hooks.port_busy_skew = 1.0;
      hooks.armed_runs = 1;
      break;
    case ChaosFault::PermanentWarpSkew:
      hooks.warp_advance_skew = -1e9;
      hooks.armed_runs = -1;
      break;
    case ChaosFault::AllocFailure:
      hooks.alloc_fail_countdown = alloc_countdown;
      break;
  }
  return hooks;
}

}  // namespace chaos_detail

namespace {

template <Scalar T>
ChaosOutcome run_impl(GemmServer& server, const ChaosPoint& p) {
  ChaosOutcome out;
  const sim::DeviceSpec& dev = sim::device_by_name(p.base.device);
  if (!dev.supports(num_traits<T>::precision)) {
    out.rung_label = "skipped_unsupported";
    return out;  // random_point never produces these; belt and braces
  }

  Rng rng(p.base.data_seed);
  const Matrix<T> A = random_matrix<T>(p.base.m, p.base.k, rng);
  const Matrix<T> B = random_matrix<T>(p.base.k, p.base.n, rng);

  core::GemmOptions opt = p.base.options;
  opt.mode = p.mode;
  opt.record_trace = false;
  opt.record_regions = false;
  opt.deadline_cycles = p.deadline_cycles;

  ServeResult<T> res;
  {
    const verify::ScopedFault guard(chaos_detail::hooks_for(p.fault, p.alloc_countdown));
    try {
      res = server.serve<T>(p.base.algo, dev, A, B, opt);
    } catch (const std::exception& e) {
      out.violation = true;
      out.detail = std::string("exception escaped serve(): ") + e.what();
      out.rung_label = "crash";
      return out;
    } catch (...) {
      out.violation = true;
      out.detail = "non-std exception escaped serve()";
      out.rung_label = "crash";
      return out;
    }
  }
  out.code = res.code;
  out.message = res.message;
  out.rung_label = res.ok() ? res.rung_label : "error";

  // Bit-correct-or-typed: a degraded or fault-retried result must be exactly
  // what a clean run would have produced; a failure must be well-typed.
  const std::string detail =
      chaos_detail::contract_violation(res, A, B, p.mode, p.deadline_cycles);
  if (!detail.empty()) {
    out.violation = true;
    out.detail = detail;
  }
  return out;
}

ChaosOutcome dispatch(GemmServer& server, const ChaosPoint& p) {
  switch (p.base.precision) {
    case Precision::FP64: return run_impl<double>(server, p);
    case Precision::FP32: return run_impl<float>(server, p);
    case Precision::TF32: return run_impl<tf32_t>(server, p);
    case Precision::FP16: return run_impl<fp16_t>(server, p);
    case Precision::BF16: return run_impl<bf16_t>(server, p);
    case Precision::FP8E4M3: return run_impl<fp8_e4m3_t>(server, p);
  }
  ChaosOutcome out;
  out.violation = true;
  out.detail = "unknown precision in chaos point";
  out.rung_label = "crash";
  return out;
}

}  // namespace

const char* chaos_fault_name(ChaosFault f) noexcept {
  switch (f) {
    case ChaosFault::None: return "none";
    case ChaosFault::TransientWarpSkew: return "transient_warp_skew";
    case ChaosFault::TransientPortSkew: return "transient_port_skew";
    case ChaosFault::PermanentWarpSkew: return "permanent_warp_skew";
    case ChaosFault::AllocFailure: return "alloc_failure";
  }
  return "unknown";
}

ChaosPoint chaos_point(std::uint64_t seed) {
  ChaosPoint p;
  p.base = verify::random_point(seed);
  // Independent stream for the chaos conditions so the underlying verify
  // point is exactly the one `kami_verify repro <seed>` rebuilds.
  Rng rng(seed ^ 0xC4A05C4A05ull);

  const double fault_roll = rng.uniform();
  if (fault_roll < 0.45) {
    p.fault = ChaosFault::None;
  } else if (fault_roll < 0.60) {
    p.fault = ChaosFault::TransientWarpSkew;
  } else if (fault_roll < 0.70) {
    p.fault = ChaosFault::TransientPortSkew;
  } else if (fault_roll < 0.82) {
    p.fault = ChaosFault::PermanentWarpSkew;
  } else {
    p.fault = ChaosFault::AllocFailure;
    p.alloc_countdown = static_cast<long long>(rng.uniform_index(4));
  }

  // Log-uniform deadlines straddle typical kernel latencies, so the campaign
  // sees both deadline aborts and under-budget completions.
  if (rng.bernoulli(0.3))
    p.deadline_cycles = std::exp(rng.uniform(std::log(100.0), std::log(1e6)));

  const double mode_roll = rng.uniform();
  p.mode = mode_roll < 0.70  ? sim::ExecMode::Full
           : mode_roll < 0.85 ? sim::ExecMode::TimingOnly
                               : sim::ExecMode::NumericsOnly;
  return p;
}

std::string to_string(const ChaosPoint& p) {
  std::ostringstream os;
  os << verify::to_string(p.base) << " fault=" << chaos_fault_name(p.fault);
  if (p.fault == ChaosFault::AllocFailure) os << " alloc_countdown=" << p.alloc_countdown;
  os << " deadline=" << chaos_detail::fmt(p.deadline_cycles)
     << " exec=" << sim::exec_mode_name(p.mode);
  return os.str();
}

ChaosOutcome run_chaos_point(GemmServer& server, const ChaosPoint& p) {
  ChaosOutcome out = dispatch(server, p);
  if (out.violation || out.code != ErrorCode::DeadlineExceeded) return out;

  // Deadline determinism: two fresh-server replays (no breaker state carried
  // in from the campaign) must abort identically — same code, same abort
  // point, byte-identical message.
  ChaosOutcome replays[2];
  for (int i = 0; i < 2; ++i) {
    GemmServer fresh;
    replays[i] = dispatch(fresh, p);
  }
  if (replays[0].code != replays[1].code || replays[0].message != replays[1].message) {
    out.violation = true;
    out.detail = "nondeterministic deadline abort: replays differ (" +
                 std::string(error_code_name(replays[0].code)) + " \"" +
                 replays[0].message + "\" vs " +
                 std::string(error_code_name(replays[1].code)) + " \"" +
                 replays[1].message + "\")";
  }
  return out;
}

namespace {

void fold_outcome(ChaosReport& report, std::uint64_t seed, const ChaosPoint& p,
                  const ChaosOutcome& o) {
  ++report.ran;
  ++report.by_fault[chaos_fault_name(p.fault)];
  ++report.by_rung[o.rung_label];
  if (o.code == ErrorCode::Ok && !o.violation) ++report.served_ok;
  if (o.code != ErrorCode::Ok) {
    ++report.typed_errors;
    ++report.by_code[error_code_name(o.code)];
    if (o.code == ErrorCode::DeadlineExceeded) ++report.deadline_replays;
  }
  if (o.violation)
    report.violations.push_back(ChaosViolation{seed, to_string(p), o.detail});
}

}  // namespace

ChaosReport run_chaos(std::uint64_t base_seed, std::size_t points,
                      const std::shared_ptr<obs::FlightRecorder>& flight,
                      const std::shared_ptr<SloTracker>& slo) {
  ChaosReport report;
  ServeConfig cfg;
  cfg.flight = flight;
  cfg.slo = slo;
  GemmServer server(cfg);
  for (std::size_t i = 0; i < points; ++i) {
    const std::uint64_t seed = base_seed + i;
    const ChaosPoint p = chaos_point(seed);
    const ChaosOutcome o = run_chaos_point(server, p);
    fold_outcome(report, seed, p, o);
  }
  return report;
}

ChaosReport run_campaign(std::uint64_t base_seed, std::size_t points, int workers,
                         const std::shared_ptr<obs::FlightRecorder>& flight,
                         const std::shared_ptr<SloTracker>& slo) {
  // Replication-parallel variant of run_chaos: every point gets a fresh
  // server, so points never interact through breaker state and the campaign
  // is order-independent. Outcomes land in seed-indexed slots and the
  // report is folded serially in seed order — bit-identical (counts, map
  // contents, violation order) for every worker count. Observability rides
  // the same mechanism: each point traces into its own recorder/tracker
  // (request ids prefixed by the seed, so they stay globally unique), and
  // the per-point contents are folded into `flight`/`slo` in seed order —
  // the dump bytes never depend on the worker count.
  const exec::ExecutionEngine engine(workers);
  struct PointOutcome {
    ChaosPoint point;
    ChaosOutcome outcome;
  };
  const auto outcomes =
      engine.parallel_map<PointOutcome>(points, [&](std::size_t i) {
        PointOutcome po;
        const std::uint64_t seed = base_seed + i;
        po.point = chaos_point(seed);
        ServeConfig cfg;
        if (flight) {
          cfg.flight = std::make_shared<obs::FlightRecorder>(flight->config());
          cfg.request_id_prefix = "seed" + std::to_string(seed);
        }
        if (slo) cfg.slo = std::make_shared<SloTracker>();
        GemmServer server(cfg);
        po.outcome = run_chaos_point(server, po.point);
        if (cfg.flight) po.outcome.traces = cfg.flight->snapshot();
        po.outcome.slo = cfg.slo;
        return po;
      });

  ChaosReport report;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const PointOutcome& po = outcomes[i];
    fold_outcome(report, base_seed + i, po.point, po.outcome);
    if (flight)
      for (const obs::RequestTrace& t : po.outcome.traces) flight->record(t);
    if (slo && po.outcome.slo) slo->merge_from(*po.outcome.slo);
  }
  return report;
}

}  // namespace kami::serve
