// Chaos campaign: randomized resilience fuzzing of the serving layer.
//
// Each chaos point is a verify::CheckPoint (device, precision, algorithm,
// shape, tuning, data seed) plus adversarial conditions: an injected fault
// (transient or permanent cycle-accounting skew, a one-shot register
// allocation failure), a randomized cycle deadline, and a randomized
// execution mode. run_chaos_point() serves the point through a GemmServer
// and checks the campaign's contract:
//
//   * no exception ever escapes serve() — typed ServeResult or nothing;
//   * a successful result is bit-correct (KAMI-1D/2D and the reference rung
//     match the reference rounding model bit-for-bit; KAMI-3D stays inside
//     the precision tolerance vs the FP64 reference) — faults may slow or
//     degrade a request but can never corrupt it;
//   * a failed result carries a non-Ok code with a non-empty message, is
//     never InternalInvariant (chaos injects faults only through armed
//     sources, which classify as transient), and is DeadlineExceeded only
//     when the point actually set a deadline;
//   * deadline aborts are deterministic: two fresh-server replays of the
//     same point abort at the same point with byte-identical messages.
//
// Points are generated from a seed (chaos_point), so every violation is
// replayable: `kami_chaos --seed <s> --points 1`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/serve.hpp"
#include "verify/differential.hpp"

namespace kami::serve {

enum class ChaosFault {
  None,               ///< no injection: the point must serve on its merits
  TransientWarpSkew,  ///< clock-rewind skew that clears after one failing run
  TransientPortSkew,  ///< port double-charge skew that clears after one run
  PermanentWarpSkew,  ///< clock-rewind skew on every run: only reference serves
  AllocFailure,       ///< one-shot injected register-allocation failure
};

const char* chaos_fault_name(ChaosFault f) noexcept;

struct ChaosPoint {
  verify::CheckPoint base;
  ChaosFault fault = ChaosFault::None;
  long long alloc_countdown = -1;  ///< AllocFailure: which allocation fails
  double deadline_cycles = 0.0;    ///< 0 = no deadline
  sim::ExecMode mode = sim::ExecMode::Full;
};

/// Deterministic seed -> point generation (replays exactly).
ChaosPoint chaos_point(std::uint64_t seed);

/// One-line human-readable spec (verify spec + chaos fields).
std::string to_string(const ChaosPoint& p);

struct ChaosOutcome {
  bool violation = false;  ///< contract broken (crash, corruption, bad typing)
  std::string detail;      ///< violation description when violation
  ErrorCode code = ErrorCode::Ok;
  std::string message;     ///< the ServeResult's error message (typed failures)
  std::string rung_label;  ///< rung that served, or "error"
  /// Request traces the point's server recorded (campaign mode harvests
  /// per-point recorders here, then folds them in seed order).
  std::vector<obs::RequestTrace> traces;
  /// Per-point SLO accounting in campaign mode (shared_ptr: SloTracker is
  /// immovable, outcomes must be move-assignable for parallel_map).
  std::shared_ptr<SloTracker> slo;
};

/// Serve one point under its chaos conditions and check the contract.
ChaosOutcome run_chaos_point(GemmServer& server, const ChaosPoint& p);

struct ChaosViolation {
  std::uint64_t seed = 0;
  std::string point;   ///< to_string of the generated point
  std::string detail;
};

struct ChaosReport {
  std::size_t ran = 0;
  std::size_t served_ok = 0;
  std::size_t typed_errors = 0;
  std::size_t deadline_replays = 0;  ///< determinism re-checks performed
  std::map<std::string, std::size_t> by_code;   ///< error_code_name -> count
  std::map<std::string, std::size_t> by_rung;   ///< rung label -> count
  std::map<std::string, std::size_t> by_fault;  ///< injected fault -> count
  std::vector<ChaosViolation> violations;

  bool clean() const noexcept { return violations.empty(); }
};

/// Run points seeded base_seed, base_seed+1, ... through one shared server
/// (so points interact through its circuit breakers, exactly like a real
/// serving process under sustained faults). Inherently sequential: point i
/// observes breaker state left by point i-1. When `flight`/`slo` are set
/// they are attached to the shared server, so every request (including
/// every typed failure) is traced and accounted.
ChaosReport run_chaos(std::uint64_t base_seed, std::size_t points,
                      const std::shared_ptr<obs::FlightRecorder>& flight = nullptr,
                      const std::shared_ptr<SloTracker>& slo = nullptr);

/// Replication-parallel campaign: the same seeded points, each served by a
/// fresh GemmServer (no cross-point breaker coupling), fanned out across
/// the execution engine. `workers` 0 = defer to KAMI_THREADS, 1 = serial.
/// The report is bit-identical for every worker count; it differs from
/// run_chaos only where run_chaos's shared breakers short-circuited points.
/// When `flight`/`slo` are set, each point serves through a fresh per-point
/// recorder/tracker (request ids prefixed "seed<n>") whose contents are
/// folded into `flight`/`slo` serially in seed order — the dump is
/// byte-identical at every worker count.
ChaosReport run_campaign(std::uint64_t base_seed, std::size_t points, int workers = 1,
                         const std::shared_ptr<obs::FlightRecorder>& flight = nullptr,
                         const std::shared_ptr<SloTracker>& slo = nullptr);

// ---------------------------------------------------------------------------
// Shared contract machinery: the single-server campaign above and the fleet
// campaign (serve/fleet_chaos.hpp) enforce the same bit-correct-or-typed
// contract on every ServeResult, from the same fault-arming table.

namespace chaos_detail {

/// Shortest round-trip-exact decimal rendering (violation messages compare
/// byte-for-byte across replays).
std::string fmt(double v);

/// KAMI-3D's tolerance vs the FP64 reference, per element, scaled by k at
/// the call site (same table as verify::check_point).
double reference_tolerance(Precision p);

/// The fault-injection hooks one ChaosFault arms (AllocFailure consumes
/// `alloc_countdown`; the other faults ignore it).
verify::FaultHooks hooks_for(ChaosFault f, long long alloc_countdown);

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

/// The bit-correct-or-typed contract on one finished ServeResult: a success
/// must match the reference rounding model bit-for-bit (KAMI-3D: stay inside
/// the precision tolerance vs the FP64 reference); a failure must carry a
/// non-empty message, must not claim InternalInvariant (campaigns inject
/// faults only through armed sources, which classify as transient), and may
/// be DeadlineExceeded only when the request actually set a deadline.
/// Returns "" when the contract holds, else the violation detail.
template <Scalar T>
std::string contract_violation(const ServeResult<T>& res, const Matrix<T>& A,
                               const Matrix<T>& B, sim::ExecMode mode,
                               double deadline_cycles) {
  if (res.ok()) {
    // TimingOnly KAMI rungs carry no numerics to check; the reference rung
    // and degenerate shapes always compute.
    const bool computed =
        res.from_reference || res.degenerate || sim::mode_computes(mode);
    if (!computed) return "";
    if (res.from_reference || res.degenerate || res.served != core::Algo::ThreeD) {
      const Matrix<T> ref = baselines::reference_gemm(A, B);
      if (!bits_equal(res.C, ref))
        return "silent corruption: " + res.rung_label +
               " result does not match the reference rounding model bit-for-bit";
    } else {
      const Matrix<double> ref = baselines::reference_gemm_fp64(A, B);
      const double bound = reference_tolerance(num_traits<T>::precision) *
                           static_cast<double>(A.cols());
      const double err = max_abs_diff(res.C, ref);
      if (!(err <= bound))
        return "silent corruption: kami_3d deviates from the FP64 reference "
               "(max |delta| = " + fmt(err) + " > " + fmt(bound) + ")";
    }
    return "";
  }
  if (res.message.empty())
    return std::string("typed error ") + error_code_name(res.code) +
           " carries an empty message";
  if (res.code == ErrorCode::InternalInvariant)
    return "injected fault misclassified as a simulator bug: " + res.message;
  if (res.code == ErrorCode::DeadlineExceeded && deadline_cycles <= 0.0)
    return "deadline error without a deadline: " + res.message;
  return "";
}

}  // namespace chaos_detail

}  // namespace kami::serve
