#include "serve/serve.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "exec/engine.hpp"

#include "sim/deadline.hpp"
#include "sim/register_file.hpp"

namespace kami::serve {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::InvalidRequest: return "invalid_request";
    case ErrorCode::InfeasiblePlan: return "infeasible_plan";
    case ErrorCode::ResourceExhausted: return "resource_exhausted";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::TransientFault: return "transient_fault";
    case ErrorCode::DeviceUnavailable: return "device_unavailable";
    case ErrorCode::InternalInvariant: return "internal_invariant";
  }
  return "unknown";
}

const char* breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "unknown";
}

ErrorCode classify_exception(const std::exception_ptr& ep) noexcept {
  if (!ep) return ErrorCode::Ok;
  try {
    std::rethrow_exception(ep);
  } catch (const sim::DeadlineExceeded&) {
    return ErrorCode::DeadlineExceeded;
  } catch (const sim::RegisterOverflow&) {
    // Most derived first: RegisterOverflow is a PreconditionError, but means
    // a concrete resource ran out (register file, or the planner exhausting
    // every spill ratio) rather than a structurally illegal request.
    return ErrorCode::ResourceExhausted;
  } catch (const verify::InvariantViolation&) {
    // An invariant trip is only "transient" while a fault source is armed;
    // with no injected fault it can only be a simulator bug.
    return verify::faults_armed() ? ErrorCode::TransientFault
                                  : ErrorCode::InternalInvariant;
  } catch (const PreconditionError&) {
    return ErrorCode::InfeasiblePlan;
  } catch (const std::bad_alloc&) {
    return ErrorCode::ResourceExhausted;
  } catch (...) {
    return ErrorCode::InternalInvariant;
  }
}

GemmServer::GemmServer(ServeConfig cfg) : cfg_(std::move(cfg)) {
  // Pre-register the serving metrics at zero. A server that is constructed
  // and torn down without a single request must still export the whole
  // serve.* namespace (dashboards distinguish "served nothing" from "metric
  // missing"), and the lazily-started async machinery must stay untouched.
  auto& metrics = obs::MetricRegistry::current();
  for (const char* name :
       {"serve.requests", "serve.ok", "serve.errors", "serve.retries",
        "serve.degraded", "serve.backoff_ms", "serve.async.submitted",
        "serve.async.accepted", "serve.async.rejected", "serve.breaker.trips",
        "serve.breaker.closes", "serve.breaker.short_circuits",
        "serve.breaker.half_open_probes"})
    metrics.counter(name);
  for (const char* name :
       {"serve.queue_wait_cycles", "serve.end_to_end_cycles", "serve.rung"})
    metrics.histogram(name);
  metrics.gauge("serve.async.workers");
}

std::vector<GemmServer::Rung> GemmServer::build_ladder(core::Algo requested,
                                                       const ServeConfig& cfg) {
  std::vector<Rung> ladder;
  const auto push = [&](core::Algo a, const char* label) {
    ladder.push_back(Rung{false, a, label});
  };
  switch (requested) {
    case core::Algo::ThreeD:
      push(core::Algo::ThreeD, "kami_3d");
      if (cfg.allow_degradation) {
        push(core::Algo::TwoD, "kami_2d");
        push(core::Algo::OneD, "kami_1d");
      }
      break;
    case core::Algo::TwoD:
      push(core::Algo::TwoD, "kami_2d");
      if (cfg.allow_degradation) push(core::Algo::OneD, "kami_1d");
      break;
    case core::Algo::OneD:
    default:
      push(core::Algo::OneD, "kami_1d");
      break;
  }
  if (cfg.allow_degradation && cfg.allow_reference_fallback)
    ladder.push_back(Rung{true, core::Algo::OneD, "reference"});
  return ladder;
}

bool GemmServer::breaker_admit(const RungKey& key, ServeError* out,
                               BreakerState* observed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (observed != nullptr) *observed = BreakerState::Closed;
  auto it = breakers_.find(key);
  if (it == breakers_.end()) return true;
  Breaker& b = it->second;
  if (observed != nullptr) *observed = b.state;
  switch (b.state) {
    case BreakerState::Closed:
    case BreakerState::HalfOpen:
      return true;
    case BreakerState::Open:
      if (b.cooldown_remaining > 0) {
        --b.cooldown_remaining;
        obs::MetricRegistry::current().counter("serve.breaker.short_circuits").increment();
        *out = ServeError{
            b.last_code,
            std::string(algo_name(key.algo)) + " rung short-circuited by open circuit "
                "breaker on " + key.device + " (" + precision_name(key.prec) + " m=" +
                std::to_string(key.m) + " n=" + std::to_string(key.n) + " k=" +
                std::to_string(key.k) + "); last failure: " + b.last_message};
        return false;
      }
      // Cooldown expired: this request is the half-open probe.
      b.state = BreakerState::HalfOpen;
      if (observed != nullptr) *observed = BreakerState::HalfOpen;
      obs::MetricRegistry::current().counter("serve.breaker.half_open_probes").increment();
      return true;
  }
  return true;
}

void GemmServer::breaker_record(const RungKey& key, bool success, ErrorCode code,
                                const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[key];
  if (success) {
    if (b.state != BreakerState::Closed)
      obs::MetricRegistry::current().counter("serve.breaker.closes").increment();
    b = Breaker{};  // closed, zero failures
    return;
  }
  b.last_code = code;
  b.last_message = message;
  ++b.consecutive_failures;
  const bool reopen = b.state == BreakerState::HalfOpen;  // failed probe
  if (reopen || b.consecutive_failures >= cfg_.breaker_failure_threshold) {
    if (b.state != BreakerState::Open)
      obs::MetricRegistry::current().counter("serve.breaker.trips").increment();
    b.state = BreakerState::Open;
    b.cooldown_remaining = cfg_.breaker_cooldown_requests;
  }
}

BreakerState GemmServer::breaker_state(const std::string& device, core::Algo algo,
                                       Precision prec, std::size_t m, std::size_t n,
                                       std::size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(RungKey{device, algo, prec, m, n, k});
  return it == breakers_.end() ? BreakerState::Closed : it->second.state;
}

void GemmServer::reset_breakers() {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.clear();
}

double GemmServer::backoff(int attempt) const {
  if (cfg_.backoff_base_ms <= 0.0) return 0.0;
  const double ms =
      std::min(cfg_.backoff_base_ms * std::ldexp(1.0, attempt - 1), cfg_.backoff_max_ms);
  obs::MetricRegistry::current().counter("serve.backoff_ms").add(ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  return ms;
}

void GemmServer::ensure_async_started() {
  std::lock_guard lock(async_mu_);
  if (queue_) return;
  queue_ = std::make_unique<exec::BoundedTaskQueue>(cfg_.async_queue_depth);
  const int workers = exec::resolve_workers(cfg_.async_workers);
  obs::MetricRegistry::current().gauge("serve.async.workers").set(workers);
  async_threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    async_threads_.emplace_back([this] {
      std::function<void()> task;
      // pop_blocking keeps returning queued tasks after close() until the
      // queue is drained, so shutdown completes every accepted request.
      while (queue_->pop_blocking(task)) task();
    });
  }
}

GemmServer::~GemmServer() {
  if (queue_) queue_->close();
  for (std::thread& t : async_threads_) t.join();
}

GemmServer& GemmServer::global() {
  static GemmServer server;
  return server;
}

}  // namespace kami::serve
