#include "serve/fleet_chaos.hpp"

#include <cmath>
#include <future>
#include <sstream>
#include <utility>

#include "exec/engine.hpp"
#include "util/rng.hpp"

namespace kami::serve {
namespace {

FleetConfig fleet_config_for(const FleetChaosPoint& p,
                             const std::shared_ptr<obs::FlightRecorder>& flight,
                             const std::shared_ptr<SloTracker>& slo,
                             const std::string& prefix) {
  FleetConfig cfg = table3_fleet();
  for (FleetDeviceConfig& dev : cfg.devices) dev.queue_depth = p.queue_depth;
  // Manual drain: no worker threads, so queue fill order, overflow reroutes,
  // and execution order are functions of the point alone.
  cfg.async_workers_per_device = 0;
  cfg.probe_cooldown_requests = p.probe_cooldown;
  cfg.blackout_failure_threshold = 1;
  cfg.hedge_deadline_requests = p.hedge;
  cfg.route_skew = p.route_skew;
  // Hermetic planner state: routing must not read (or warm) the process-wide
  // ProfileCache/Predictor, or a replay would route differently.
  cfg.profile_cache = std::make_shared<core::ProfileCache>();
  cfg.predictor = std::make_shared<model::Predictor>();
  cfg.flight = flight;
  cfg.slo = slo;
  cfg.request_id_prefix = prefix;
  return cfg;
}

/// One storm request's operands (kept so its result can be bit-checked).
struct StormRequest {
  Matrix<fp16_t> A;
  Matrix<fp16_t> B;
  std::future<FleetResult<fp16_t>> future;
};

template <Scalar T>
FleetChaosOutcome run_scenario(const FleetChaosPoint& p,
                               const std::shared_ptr<obs::FlightRecorder>& flight,
                               const std::shared_ptr<SloTracker>& slo,
                               const std::string& prefix, std::string* digest) {
  FleetChaosOutcome out;
  FleetServer fleet(fleet_config_for(p, flight, slo, prefix));
  for (std::size_t i = 0; i < fleet.device_count(); ++i)
    if (p.blackout_mask & (1u << i)) fleet.set_blackout(i, true);

  Rng rng(p.base.data_seed);
  const Matrix<T> A = random_matrix<T>(p.base.m, p.base.k, rng);
  const Matrix<T> B = random_matrix<T>(p.base.k, p.base.n, rng);

  core::GemmOptions opt = p.base.options;
  opt.mode = p.mode;
  opt.record_trace = false;
  opt.record_regions = false;
  opt.deadline_cycles = p.deadline_cycles;

  // -- queue-overflow storm: a burst of tiny async requests against the
  // point's deliberately small shard queues, then one deterministic drain.
  std::vector<StormRequest> storm;
  storm.reserve(static_cast<std::size_t>(p.storm_requests));
  Rng storm_rng(p.base.data_seed ^ 0x5702A11B5ull);
  for (int i = 0; i < p.storm_requests; ++i) {
    const std::size_t dims[] = {16, 32};
    const std::size_t m = dims[storm_rng.uniform_index(2)];
    const std::size_t n = dims[storm_rng.uniform_index(2)];
    const std::size_t k = dims[storm_rng.uniform_index(2)];
    StormRequest req{random_matrix<fp16_t>(m, k, storm_rng),
                     random_matrix<fp16_t>(k, n, storm_rng), {}};
    req.future = fleet.submit_async<fp16_t>(core::Algo::OneD, req.A, req.B);
    storm.push_back(std::move(req));
  }
  fleet.drain();
  for (std::size_t i = 0; i < storm.size(); ++i) {
    StormRequest& req = storm[i];
    if (!req.future.valid() ||
        req.future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      out.violation = true;
      out.detail = "request lost: storm future " + std::to_string(i) +
                   " not ready after drain()";
      out.rung_label = "crash";
      return out;
    }
    const FleetResult<fp16_t> r = req.future.get();
    if (r.ok())
      ++out.storm_ok;
    else if (r.result.code == ErrorCode::ResourceExhausted)
      ++out.storm_rejected;
    const std::string detail = chaos_detail::contract_violation(
        r.result, req.A, req.B, sim::ExecMode::Full, 0.0);
    if (!detail.empty()) {
      out.violation = true;
      out.detail = "storm request " + std::to_string(i) + ": " + detail;
      out.rung_label = "error";
      return out;
    }
  }

  // -- the main request, under the point's injected fault.
  FleetResult<T> res;
  {
    const verify::ScopedFault guard(chaos_detail::hooks_for(p.fault, p.alloc_countdown));
    try {
      res = fleet.serve<T>(p.base.algo, A, B, opt);
    } catch (const std::exception& e) {
      out.violation = true;
      out.detail = std::string("exception escaped FleetServer::serve(): ") + e.what();
      out.rung_label = "crash";
      return out;
    } catch (...) {
      out.violation = true;
      out.detail = "non-std exception escaped FleetServer::serve()";
      out.rung_label = "crash";
      return out;
    }
  }
  out.code = res.result.code;
  out.message = res.result.message;
  out.rung_label = res.ok() ? res.result.rung_label : "error";
  out.device = res.device;
  out.failovers = res.failovers;
  out.hedged = res.hedged;

  std::string detail =
      chaos_detail::contract_violation(res.result, A, B, p.mode, p.deadline_cycles);
  if (detail.empty() && res.result.code == ErrorCode::DeviceUnavailable &&
      p.blackout_mask == 0)
    detail = "device_unavailable error with no blacked-out device: " + res.result.message;
  if (!detail.empty()) {
    out.violation = true;
    out.detail = detail;
    return out;
  }

  // -- failover bit-identity: fault-free success must be bit-identical to a
  // direct serve on the device the fleet says it used — failover and hedging
  // may change *where* a request ran, never *what* it produced.
  if (p.fault == ChaosFault::None && res.ok() && res.device_index >= 0 &&
      !res.result.degenerate &&
      (res.result.from_reference || sim::mode_computes(p.mode))) {
    GemmServer direct;
    const ServeResult<T> d = direct.serve<T>(
        p.base.algo, fleet.device(static_cast<std::size_t>(res.device_index)), A, B, opt);
    if (!d.ok()) {
      out.violation = true;
      out.detail = "failover identity: direct serve on \"" + res.device +
                   "\" failed (" + error_code_name(d.code) + ") where the fleet served ok";
      return out;
    }
    if (!chaos_detail::bits_equal(res.result.C, d.C)) {
      out.violation = true;
      out.detail = "failover identity: fleet result on \"" + res.device +
                   "\" is not bit-identical to a direct serve on the same device";
      return out;
    }
  }

  // -- recovery: with the blackout cleared, the probe state machine must
  // return every marked-down device to Healthy within cooldown + 2 requests.
  if (p.blackout_mask != 0) {
    for (std::size_t i = 0; i < fleet.device_count(); ++i) fleet.set_blackout(i, false);
    Rng pump_rng(p.base.data_seed ^ 0x9ECB0EEull);
    const Matrix<fp16_t> pa = random_matrix<fp16_t>(16, 16, pump_rng);
    const Matrix<fp16_t> pb = random_matrix<fp16_t>(16, 16, pump_rng);
    for (int i = 0; i < p.probe_cooldown + 2; ++i)
      fleet.serve<fp16_t>(core::Algo::OneD, pa, pb);
    for (std::size_t i = 0; i < fleet.device_count(); ++i) {
      if (fleet.health(i) != DeviceHealth::Healthy) {
        out.violation = true;
        out.detail = "device \"" + fleet.device(i).name + "\" stuck " +
                     device_health_name(fleet.health(i)) + " after the blackout cleared "
                     "and " + std::to_string(p.probe_cooldown + 2) + " probe requests";
        return out;
      }
    }
  }

  if (digest != nullptr) {
    std::ostringstream os;
    os << error_code_name(out.code) << '|' << out.message << '|' << out.device << '|'
       << out.failovers << '|' << out.rung_label << '|'
       << chaos_detail::fmt(res.end_to_end_cycles) << '|' << out.storm_ok << '|'
       << out.storm_rejected;
    *digest = os.str();
  }
  return out;
}

template <Scalar T>
FleetChaosOutcome run_point_impl(const FleetChaosPoint& p,
                                 const std::shared_ptr<obs::FlightRecorder>& flight,
                                 const std::shared_ptr<SloTracker>& slo,
                                 const std::string& prefix) {
  std::string first_digest;
  FleetChaosOutcome out = run_scenario<T>(p, flight, slo, prefix, &first_digest);
  if (out.violation) return out;

  // Deterministic replay: the whole scenario again from scratch — fresh
  // fleet, fresh hermetic planner state, same ids — must reproduce the same
  // outcome byte-for-byte. (Observability detached: it must not matter.)
  std::string replay_digest;
  const FleetChaosOutcome replay =
      run_scenario<T>(p, nullptr, nullptr, prefix, &replay_digest);
  if (replay.violation) return replay;
  if (first_digest != replay_digest) {
    out.violation = true;
    out.detail = "nondeterministic fleet replay: \"" + first_digest + "\" vs \"" +
                 replay_digest + "\"";
  }
  return out;
}

FleetChaosOutcome dispatch(const FleetChaosPoint& p,
                           const std::shared_ptr<obs::FlightRecorder>& flight,
                           const std::shared_ptr<SloTracker>& slo,
                           const std::string& prefix) {
  switch (p.base.precision) {
    case Precision::FP64: return run_point_impl<double>(p, flight, slo, prefix);
    case Precision::FP32: return run_point_impl<float>(p, flight, slo, prefix);
    case Precision::TF32: return run_point_impl<tf32_t>(p, flight, slo, prefix);
    case Precision::FP16: return run_point_impl<fp16_t>(p, flight, slo, prefix);
    case Precision::BF16: return run_point_impl<bf16_t>(p, flight, slo, prefix);
    case Precision::FP8E4M3: return run_point_impl<fp8_e4m3_t>(p, flight, slo, prefix);
  }
  FleetChaosOutcome out;
  out.violation = true;
  out.detail = "unknown precision in fleet chaos point";
  out.rung_label = "crash";
  return out;
}

}  // namespace

FleetChaosPoint fleet_chaos_point(std::uint64_t seed) {
  FleetChaosPoint p;
  p.base = verify::random_point(seed);
  // Independent stream for the fleet conditions so the underlying verify
  // point is exactly the one `kami_verify repro <seed>` rebuilds.
  Rng rng(seed ^ 0xF1EE7CA0501ull);

  const double fault_roll = rng.uniform();
  if (fault_roll < 0.45) {
    p.fault = ChaosFault::None;
  } else if (fault_roll < 0.60) {
    p.fault = ChaosFault::TransientWarpSkew;
  } else if (fault_roll < 0.70) {
    p.fault = ChaosFault::TransientPortSkew;
  } else if (fault_roll < 0.82) {
    p.fault = ChaosFault::PermanentWarpSkew;
  } else {
    p.fault = ChaosFault::AllocFailure;
    p.alloc_countdown = static_cast<long long>(rng.uniform_index(4));
  }

  if (rng.bernoulli(0.3))
    p.deadline_cycles = std::exp(rng.uniform(std::log(100.0), std::log(1e6)));

  const double mode_roll = rng.uniform();
  p.mode = mode_roll < 0.70  ? sim::ExecMode::Full
           : mode_roll < 0.85 ? sim::ExecMode::TimingOnly
                               : sim::ExecMode::NumericsOnly;

  // Fleet adversity. The blackout mask may cover all four devices — a full
  // fleet outage must still come back as a typed error, never a crash.
  if (rng.bernoulli(0.55))
    p.blackout_mask = 1u + static_cast<std::uint32_t>(rng.uniform_index(15));
  if (rng.bernoulli(0.4)) {
    p.route_skew.resize(4);
    for (double& s : p.route_skew)
      s = std::exp(rng.uniform(std::log(0.25), std::log(4.0)));
  }
  p.hedge = rng.bernoulli(0.25);
  if (rng.bernoulli(0.35)) {
    p.storm_requests = 4 + static_cast<int>(rng.uniform_index(13));
    p.queue_depth = 1 + rng.uniform_index(3);
  }
  p.probe_cooldown = 1 + static_cast<int>(rng.uniform_index(3));
  return p;
}

std::string to_string(const FleetChaosPoint& p) {
  std::ostringstream os;
  os << verify::to_string(p.base) << " fault=" << chaos_fault_name(p.fault);
  if (p.fault == ChaosFault::AllocFailure) os << " alloc_countdown=" << p.alloc_countdown;
  os << " deadline=" << chaos_detail::fmt(p.deadline_cycles)
     << " exec=" << sim::exec_mode_name(p.mode) << " blackout=0x" << std::hex
     << p.blackout_mask << std::dec;
  if (!p.route_skew.empty()) {
    os << " skew=[";
    for (std::size_t i = 0; i < p.route_skew.size(); ++i)
      os << (i ? "," : "") << chaos_detail::fmt(p.route_skew[i]);
    os << "]";
  }
  os << " hedge=" << (p.hedge ? "true" : "false") << " storm=" << p.storm_requests
     << " qdepth=" << p.queue_depth << " cooldown=" << p.probe_cooldown;
  return os.str();
}

FleetChaosOutcome run_fleet_chaos_point(
    const FleetChaosPoint& p, const std::shared_ptr<obs::FlightRecorder>& flight,
    const std::shared_ptr<SloTracker>& slo, const std::string& request_id_prefix) {
  return dispatch(p, flight, slo, request_id_prefix);
}

namespace {

void fold_outcome(FleetChaosReport& report, std::uint64_t seed, const FleetChaosPoint& p,
                  const FleetChaosOutcome& o) {
  ++report.ran;
  ++report.by_fault[chaos_fault_name(p.fault)];
  ++report.by_rung[o.rung_label];
  if (o.code == ErrorCode::Ok && !o.violation) ++report.served_ok;
  if (o.code != ErrorCode::Ok) {
    ++report.typed_errors;
    ++report.by_code[error_code_name(o.code)];
  }
  if (o.failovers > 0) report.failovers += static_cast<std::size_t>(o.failovers);
  if (o.hedged) ++report.hedged;
  report.storm_requests += static_cast<std::size_t>(p.storm_requests);
  report.storm_rejected += static_cast<std::size_t>(o.storm_rejected);
  if (!o.device.empty()) ++report.by_device[o.device];
  if (o.violation)
    report.violations.push_back(ChaosViolation{seed, to_string(p), o.detail});
}

}  // namespace

FleetChaosReport run_fleet_campaign(std::uint64_t base_seed, std::size_t points,
                                    int workers,
                                    const std::shared_ptr<obs::FlightRecorder>& flight,
                                    const std::shared_ptr<SloTracker>& slo) {
  // Replication-parallel, exactly like run_campaign: every point gets a
  // fresh fleet (hermetic planner state included), per-point observability,
  // and the report folds serially in seed order — bit-identical at every
  // worker count.
  const exec::ExecutionEngine engine(workers);
  struct PointOutcome {
    FleetChaosPoint point;
    FleetChaosOutcome outcome;
  };
  const auto outcomes = engine.parallel_map<PointOutcome>(points, [&](std::size_t i) {
    PointOutcome po;
    const std::uint64_t seed = base_seed + i;
    po.point = fleet_chaos_point(seed);
    std::shared_ptr<obs::FlightRecorder> point_flight;
    std::shared_ptr<SloTracker> point_slo;
    if (flight) point_flight = std::make_shared<obs::FlightRecorder>(flight->config());
    if (slo) point_slo = std::make_shared<SloTracker>();
    po.outcome = run_fleet_chaos_point(po.point, point_flight, point_slo,
                                       "fseed" + std::to_string(seed));
    if (point_flight) po.outcome.traces = point_flight->snapshot();
    po.outcome.slo = point_slo;
    return po;
  });

  FleetChaosReport report;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const PointOutcome& po = outcomes[i];
    fold_outcome(report, base_seed + i, po.point, po.outcome);
    if (flight)
      for (const obs::RequestTrace& t : po.outcome.traces) flight->record(t);
    if (slo && po.outcome.slo) slo->merge_from(*po.outcome.slo);
  }
  return report;
}

}  // namespace kami::serve
