// SloTracker: per-shape-class service-level accounting for the serving path.
//
// Latency objectives are meaningless averaged across a 16x16x16 probe and a
// 4096^3 batch job, so every request is first bucketed into a shape class by
// its flop count (2mnk) and all accounting — end-to-end latency percentiles,
// deadline attainment, which rung served, which error codes occurred — is
// kept per class:
//
//   degenerate  m, n, or k is zero (served trivially)
//   tiny        2mnk <  2^18
//   small       2mnk <  2^22
//   medium      2mnk <  2^26
//   large       everything above
//
// Latencies are *simulated* end-to-end cycles (the request trace's final
// logical clock), so the numbers are deterministic and machine-independent.
// Deadline attainment counts only requests that carried a deadline: a
// request with deadline_cycles == 0 has no objective to attain.
//
// All methods are thread-safe; merge_from() appends the other tracker's
// histogram samples in observation order, so folding per-point trackers in
// seed order (the chaos campaign) yields the same export at every worker
// count. to_json() is the versioned `slo` section of kami.obs.run v2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/error.hpp"

namespace kami::serve {

/// The SLO shape class of an m x k times k x n product (by flops = 2mnk).
std::string_view shape_class(std::size_t m, std::size_t n, std::size_t k) noexcept;

class SloTracker {
 public:
  /// Account one finished request. `rung_label` is ServeResult::rung_label
  /// ("kami_2d", "reference", "degenerate", ... — empty for requests that
  /// failed before any rung). `deadline_cycles` <= 0 means no deadline.
  void record(std::size_t m, std::size_t n, std::size_t k, ErrorCode code,
              const std::string& rung_label, double end_to_end_cycles,
              double deadline_cycles);

  /// Account a request refused before it ever ran (admission control, e.g.
  /// the async queue was full). Counts toward requests/errors/by_code for the
  /// shape class but observes no latency: the class's latency_cycles export
  /// then legitimately carries count 0 (see to_json()).
  void record_rejected(std::size_t m, std::size_t n, std::size_t k,
                       ErrorCode code = ErrorCode::ResourceExhausted);

  /// Fold another tracker in: counts add, histogram samples append in their
  /// original observation order (deterministic campaign aggregation).
  void merge_from(const SloTracker& other);

  std::uint64_t total_requests() const;

  /// {"classes": [{"class", "requests", "ok", "errors", "by_rung",
  ///   "by_code", "deadline": {"with_deadline", "met", "attainment"},
  ///   "latency_cycles": {"count", "mean", "p50", "p90", "p99", "max"}}]}
  /// in the fixed class order degenerate, tiny, small, medium, large
  /// (absent classes omitted). latency_cycles is always present — a class
  /// whose every request was rejected at admission exports NaN-free zeros
  /// with count 0. This is RunReport's v2 `slo` section.
  obs::Json to_json() const;

  void clear();

 private:
  struct ClassStats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t with_deadline = 0;
    std::uint64_t deadline_met = 0;
    std::map<std::string, std::uint64_t> by_rung;  ///< ok requests per rung
    std::map<std::string, std::uint64_t> by_code;  ///< failed requests per code
    obs::Histogram latency;                        ///< end-to-end cycles
  };

  mutable std::mutex mu_;
  std::map<std::string, ClassStats> classes_;  ///< node-stable (Histogram is pinned)
};

}  // namespace kami::serve
