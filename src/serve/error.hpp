// Structured error taxonomy for the resilient serving layer.
//
// Every failure the library can produce collapses into one of these codes,
// so callers route on an enum instead of string-matching exception text.
// classify_exception() is the single mapping point from the exception
// hierarchy (PreconditionError, sim::RegisterOverflow, sim::DeadlineExceeded,
// verify::InvariantViolation, std::bad_alloc) into the taxonomy; the
// GemmServer in serve/serve.hpp is the only component that should need it.
#pragma once

#include <exception>
#include <string>

namespace kami::serve {

enum class ErrorCode {
  Ok,                 ///< request served (possibly on a degraded rung)
  InvalidRequest,     ///< malformed call: mismatched inner dimensions, unknown algo
  InfeasiblePlan,     ///< no legal launch plan (divisibility / grid constraints)
  ResourceExhausted,  ///< register file, shared memory, or host allocation failed
  DeadlineExceeded,   ///< GemmOptions::deadline_cycles budget blown
  TransientFault,     ///< injected/transient simulator fault; retryable
  DeviceUnavailable,  ///< fleet device blacked out; request eligible for failover
  InternalInvariant,  ///< invariant violated with no fault source: a simulator bug
};

const char* error_code_name(ErrorCode code) noexcept;

/// Map an in-flight exception to the taxonomy. Order matters: the most
/// derived types are tested first (RegisterOverflow is a PreconditionError;
/// an InvariantViolation only counts as transient while verify::FaultHooks
/// has an armed fault source — otherwise it is a simulator bug).
ErrorCode classify_exception(const std::exception_ptr& ep) noexcept;

/// A typed error: the code plus the originating exception's message.
struct ServeError {
  ErrorCode code = ErrorCode::Ok;
  std::string message;
};

}  // namespace kami::serve
