#include "serve/fleet.hpp"

#include <algorithm>
#include <functional>

namespace kami::serve {

const char* device_health_name(DeviceHealth h) noexcept {
  switch (h) {
    case DeviceHealth::Healthy: return "healthy";
    case DeviceHealth::Probing: return "probing";
    case DeviceHealth::Down: return "down";
  }
  return "unknown";
}

FleetConfig table3_fleet() {
  FleetConfig cfg;
  for (const sim::DeviceSpec* spec :
       {&sim::gh200(), &sim::rtx5090(), &sim::amd7900xtx(), &sim::intel_max1100()}) {
    FleetDeviceConfig dev;
    dev.spec = *spec;
    cfg.devices.push_back(std::move(dev));
  }
  return cfg;
}

FleetServer::FleetServer(FleetConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.devices.empty()) cfg_.devices = table3_fleet().devices;
  manual_drain_ = cfg_.async_workers_per_device == 0;

  shards_.reserve(cfg_.devices.size());
  for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
    const FleetDeviceConfig& dev = cfg_.devices[i];
    sim::validate_device(dev.spec);
    auto shard = std::make_unique<Shard>();
    shard->cfg = dev;
    ServeConfig serve_cfg = dev.serve;
    serve_cfg.flight = cfg_.flight;
    // One fleet request is exactly one SLO record, accounted at fleet level
    // over the whole failover chain — shard servers must not double-count.
    serve_cfg.slo = nullptr;
    serve_cfg.request_id_prefix = cfg_.request_id_prefix + "-d" + std::to_string(i);
    shard->server = std::make_unique<GemmServer>(serve_cfg);
    shard->queue = std::make_unique<exec::BoundedTaskQueue>(dev.queue_depth);
    shards_.push_back(std::move(shard));
  }

  // Pre-register the fleet.* namespace at zero: a fleet constructed and torn
  // down without a single request still exports every metric, and dashboards
  // can tell "served nothing" from "metric missing".
  auto& metrics = obs::MetricRegistry::current();
  for (const char* name :
       {"fleet.requests", "fleet.ok", "fleet.errors", "fleet.rejected",
        "fleet.no_device", "fleet.failovers", "fleet.hedges",
        "fleet.hedge_wins_secondary", "fleet.blackout_refusals", "fleet.marked_down",
        "fleet.probes", "fleet.probes.recovered", "fleet.probes.failed",
        "fleet.overflow_reroutes", "fleet.async.submitted", "fleet.async.accepted",
        "fleet.async.rejected", "fleet.route.cache", "fleet.route.analytic",
        "fleet.route.unplanned", "fleet.route.heuristic"})
    metrics.counter(name);
  for (const char* name :
       {"fleet.queue_wait_cycles", "fleet.end_to_end_cycles", "fleet.route_position"})
    metrics.histogram(name);
  metrics.gauge("fleet.devices").set(static_cast<double>(shards_.size()));
  metrics.gauge("fleet.devices_healthy").set(static_cast<double>(shards_.size()));
  metrics.gauge("fleet.async.workers").set(0.0);
}

FleetServer::~FleetServer() {
  for (auto& s : shards_) s->queue->close();
  for (auto& s : shards_)
    for (std::thread& t : s->workers) t.join();
  // Anything still queued (manual-drain mode, or pushed after the workers
  // left) runs inline now so every returned future resolves.
  drain();
}

DeviceHealth FleetServer::health(std::size_t i) const {
  std::lock_guard lock(mu_);
  return shards_.at(i)->health;
}

void FleetServer::set_blackout(std::size_t i, bool down) {
  shards_.at(i)->blackout.store(down, std::memory_order_relaxed);
}

core::ProfileCache& FleetServer::route_cache() const {
  return cfg_.profile_cache ? *cfg_.profile_cache : core::ProfileCache::global();
}

model::Predictor& FleetServer::route_predictor() const {
  return cfg_.predictor ? *cfg_.predictor : model::Predictor::global();
}

void FleetServer::update_healthy_gauge() {
  double healthy = 0.0;
  for (const auto& s : shards_)
    if (s->health == DeviceHealth::Healthy) healthy += 1.0;
  obs::MetricRegistry::current().gauge("fleet.devices_healthy").set(healthy);
}

void FleetServer::tick_health() {
  std::lock_guard lock(mu_);
  auto& metrics = obs::MetricRegistry::current();
  for (auto& sp : shards_) {
    Shard& s = *sp;
    switch (s.health) {
      case DeviceHealth::Healthy:
        break;
      case DeviceHealth::Down:
        // The fleet request counter is the probe clock: after the cooldown
        // the shard earns a probe on the next tick.
        if (--s.probe_cooldown <= 0) {
          s.health = DeviceHealth::Probing;
          metrics.counter("fleet.probes").increment();
        }
        break;
      case DeviceHealth::Probing:
        // Out-of-band ping: the probe checks the device directly instead of
        // waiting for the router to gamble a live request on it.
        if (s.blackout.load(std::memory_order_relaxed)) {
          s.health = DeviceHealth::Down;
          s.probe_cooldown = cfg_.probe_cooldown_requests;
          metrics.counter("fleet.probes.failed").increment();
        } else {
          s.health = DeviceHealth::Healthy;
          s.consecutive_refusals = 0;
          metrics.counter("fleet.probes.recovered").increment();
        }
        break;
    }
  }
  update_healthy_gauge();
}

ServeError FleetServer::note_blackout_refusal(int idx, std::size_t m, std::size_t n,
                                              std::size_t k) {
  auto& metrics = obs::MetricRegistry::current();
  metrics.counter("fleet.blackout_refusals").increment();
  Shard& s = *shards_[static_cast<std::size_t>(idx)];
  {
    std::lock_guard lock(mu_);
    ++s.consecutive_refusals;
    if (s.health != DeviceHealth::Down &&
        s.consecutive_refusals >= cfg_.blackout_failure_threshold) {
      s.health = DeviceHealth::Down;
      s.probe_cooldown = cfg_.probe_cooldown_requests;
      metrics.counter("fleet.marked_down").increment();
      update_healthy_gauge();
    }
  }
  return ServeError{ErrorCode::DeviceUnavailable,
                    "device \"" + s.cfg.spec.name + "\" is blacked out (refused " +
                        std::to_string(m) + "x" + std::to_string(k) + "x" +
                        std::to_string(n) + " at dispatch)"};
}

void FleetServer::note_success(int idx, const AffinityKey& key) {
  std::lock_guard lock(mu_);
  shards_[static_cast<std::size_t>(idx)]->consecutive_refusals = 0;
  if (cfg_.shape_affinity) affinity_[key] = idx;
}

std::vector<int> FleetServer::route_order(core::Algo algo, Precision prec,
                                          std::size_t m, std::size_t n, std::size_t k,
                                          const core::GemmOptions& opt) const {
  struct Candidate {
    double score = 0.0;
    int idx = 0;
  };
  std::vector<Candidate> candidates;
  auto& metrics = obs::MetricRegistry::current();

  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    if (s.health != DeviceHealth::Healthy) continue;
    const sim::DeviceSpec& spec = s.cfg.spec;
    if (!spec.supports(prec)) continue;

    // Predicted seconds for this request on this device: the analytic fast
    // path (cache -> calibrated formula, never simulating), normalized at the
    // device's clock so heterogeneous devices rank on one scale. Devices the
    // planner rejects as-requested stay routable on the peak-throughput
    // heuristic — their ladder may still degrade and serve.
    double seconds = 0.0;
    const char* source = "heuristic";
    try {
      const core::PlanEstimate est = core::estimate_plan(
          route_cache(), route_predictor(), algo, spec, prec, m, n, k, opt);
      if (est.cycles > 0.0 && est.source != core::PlanSource::Unplanned) {
        seconds = est.cycles / (spec.boost_clock_ghz * 1e9);
        source = core::plan_source_name(est.source);
      }
    } catch (const std::exception&) {
      // Infeasible as requested: heuristic ranking below.
    }
    if (seconds <= 0.0) {
      const double peak_flops =
          spec.peak_tflops(prec) * 1e12 *
          (spec.mma_efficiency > 0.0 ? spec.mma_efficiency : 1.0);
      const double flops =
          2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
      seconds = peak_flops > 0.0 ? flops / peak_flops : flops;
    }
    metrics.counter(std::string("fleet.route.") + source).increment();

    double score =
        seconds * (1.0 + cfg_.queue_depth_penalty * static_cast<double>(s.queue->size()));
    if (cfg_.shape_affinity) {
      const auto it = affinity_.find(AffinityKey{prec, algo, m, n, k});
      if (it != affinity_.end() && it->second == static_cast<int>(i))
        score *= cfg_.affinity_bonus;
    }
    if (i < cfg_.route_skew.size()) score *= cfg_.route_skew[i];
    candidates.push_back(Candidate{score, static_cast<int>(i)});
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.score != b.score) return a.score < b.score;
                     return a.idx < b.idx;
                   });
  std::vector<int> order;
  order.reserve(candidates.size());
  for (const Candidate& c : candidates) order.push_back(c.idx);
  return order;
}

void FleetServer::ensure_workers_started() {
  if (manual_drain_) return;
  std::lock_guard lock(start_mu_);
  if (workers_started_) return;
  workers_started_ = true;
  const int per_device = std::max(1, cfg_.async_workers_per_device);
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.workers.reserve(static_cast<std::size_t>(per_device));
    for (int w = 0; w < per_device; ++w)
      s.workers.emplace_back([q = s.queue.get()] {
        std::function<void()> task;
        // pop_blocking keeps returning queued tasks after close() until the
        // queue drains, so shutdown completes every accepted request.
        while (q->pop_blocking(task)) task();
      });
  }
  obs::MetricRegistry::current()
      .gauge("fleet.async.workers")
      .set(static_cast<double>(per_device) * static_cast<double>(shards_.size()));
}

void FleetServer::drain() {
  bool popped = true;
  while (popped) {
    popped = false;
    for (auto& sp : shards_) {
      std::function<void()> task;
      while (sp->queue->try_pop(task)) {
        popped = true;
        task();
      }
    }
  }
}

}  // namespace kami::serve
