#include "serve/slo.hpp"

namespace kami::serve {

namespace {

constexpr const char* kClassOrder[] = {"degenerate", "tiny", "small", "medium",
                                       "large"};

}  // namespace

std::string_view shape_class(std::size_t m, std::size_t n, std::size_t k) noexcept {
  if (m == 0 || n == 0 || k == 0) return "degenerate";
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  if (flops < 262144.0) return "tiny";        // 2^18
  if (flops < 4194304.0) return "small";      // 2^22
  if (flops < 67108864.0) return "medium";    // 2^26
  return "large";
}

void SloTracker::record(std::size_t m, std::size_t n, std::size_t k, ErrorCode code,
                        const std::string& rung_label, double end_to_end_cycles,
                        double deadline_cycles) {
  const std::string cls(shape_class(m, n, k));
  std::lock_guard lock(mu_);
  ClassStats& s = classes_[cls];
  ++s.requests;
  if (code == ErrorCode::Ok) {
    ++s.ok;
    ++s.by_rung[rung_label.empty() ? "(none)" : rung_label];
  } else {
    ++s.errors;
    ++s.by_code[error_code_name(code)];
  }
  if (deadline_cycles > 0.0) {
    ++s.with_deadline;
    if (code != ErrorCode::DeadlineExceeded && end_to_end_cycles <= deadline_cycles)
      ++s.deadline_met;
  }
  s.latency.observe(end_to_end_cycles);
}

void SloTracker::record_rejected(std::size_t m, std::size_t n, std::size_t k,
                                 ErrorCode code) {
  const std::string cls(shape_class(m, n, k));
  std::lock_guard lock(mu_);
  ClassStats& s = classes_[cls];
  ++s.requests;
  ++s.errors;
  ++s.by_code[error_code_name(code)];
  // Deliberately no latency observation: the request never ran, so its class
  // can legitimately export latency_cycles with count 0.
}

void SloTracker::merge_from(const SloTracker& other) {
  // Snapshot under the other tracker's lock, fold under ours (never both at
  // once — merge targets are never merged from concurrently in practice, and
  // taking them in sequence cannot deadlock).
  std::map<std::string, const ClassStats*> theirs;
  {
    std::lock_guard lock(other.mu_);
    for (const auto& [cls, stats] : other.classes_) theirs.emplace(cls, &stats);
    std::lock_guard mine(mu_);
    for (const auto& [cls, stats] : theirs) {
      ClassStats& s = classes_[cls];
      s.requests += stats->requests;
      s.ok += stats->ok;
      s.errors += stats->errors;
      s.with_deadline += stats->with_deadline;
      s.deadline_met += stats->deadline_met;
      for (const auto& [rung, count] : stats->by_rung) s.by_rung[rung] += count;
      for (const auto& [codename, count] : stats->by_code) s.by_code[codename] += count;
      for (const double v : stats->latency.samples()) s.latency.observe(v);
    }
  }
}

std::uint64_t SloTracker::total_requests() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [cls, stats] : classes_) total += stats.requests;
  return total;
}

obs::Json SloTracker::to_json() const {
  std::lock_guard lock(mu_);
  obs::Json doc = obs::Json::object();
  obs::Json jclasses = obs::Json::array();
  for (const char* cls : kClassOrder) {
    const auto it = classes_.find(cls);
    if (it == classes_.end()) continue;
    const ClassStats& s = it->second;
    obs::Json jc = obs::Json::object();
    jc.set("class", cls);
    jc.set("requests", static_cast<double>(s.requests));
    jc.set("ok", static_cast<double>(s.ok));
    jc.set("errors", static_cast<double>(s.errors));
    if (!s.by_rung.empty()) {
      obs::Json jr = obs::Json::object();
      for (const auto& [rung, count] : s.by_rung)
        jr.set(rung, static_cast<double>(count));
      jc.set("by_rung", std::move(jr));
    }
    if (!s.by_code.empty()) {
      obs::Json je = obs::Json::object();
      for (const auto& [codename, count] : s.by_code)
        je.set(codename, static_cast<double>(count));
      jc.set("by_code", std::move(je));
    }
    obs::Json jd = obs::Json::object();
    jd.set("with_deadline", static_cast<double>(s.with_deadline));
    jd.set("met", static_cast<double>(s.deadline_met));
    jd.set("attainment", s.with_deadline == 0
                             ? 1.0
                             : static_cast<double>(s.deadline_met) /
                                   static_cast<double>(s.with_deadline));
    jc.set("deadline", std::move(jd));
    // Always emitted, even for a class that was admitted but never completed
    // a request (e.g. every submission rejected at the queue): count 0 with
    // NaN-free zero percentiles, never garbage from an empty sort.
    obs::Json jl = obs::Json::object();
    jl.set("count", static_cast<double>(s.latency.count()));
    jl.set("mean", s.latency.mean());
    jl.set("p50", s.latency.percentile(50.0));
    jl.set("p90", s.latency.percentile(90.0));
    jl.set("p99", s.latency.percentile(99.0));
    jl.set("max", s.latency.max());
    jc.set("latency_cycles", std::move(jl));
    jclasses.push_back(std::move(jc));
  }
  doc.set("classes", std::move(jclasses));
  return doc;
}

void SloTracker::clear() {
  std::lock_guard lock(mu_);
  classes_.clear();
}

}  // namespace kami::serve
