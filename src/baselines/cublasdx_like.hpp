// cuBLASDx-like block-level GEMM.
//
// Reimplements the strategy of NVIDIA's device-side cuBLASDx (the paper's
// primary block-level comparator): the entire A, B and C live in shared
// memory for the duration of the kernel, and every k-step each warp loads
// its A slice and the full B panel from shared memory into registers before
// the MMA (§5.3: "Traditional kernels, as in cuBLASDx/CUTLASS, load data
// into shared memory and then into registers").
//
// Compared to KAMI this costs (a) an extra full staging round of A and B
// into shared memory, (b) p redundant reads of each B panel (one per warp,
// where KAMI-1D reads it p-1 times total across the whole run), and (c) a
// ~3x shared-memory footprint (the paper measures 27 KB vs KAMI's 2-8 KB),
// which caps the matrix order well below KAMI's (§5.2.1: "KAMI supports
// larger matrices with lightweight shared memory use compared with
// cuBLASDx", and Fig 3's order-98 ceiling).
#pragma once

#include <vector>

#include "baselines/baseline_result.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::baselines {

/// cuBLASDx-like k-step: the MMA granularity.
inline std::size_t cublasdx_kstep(std::size_t k) { return k < 16 ? k : 16; }

template <Scalar T>
BaselineResult<T> cublasdx_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                                const Matrix<T>& B, int warps = 4,
                                bool charge_global_io = false,
                                sim::ExecMode mode = sim::ExecMode::Full) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  KAMI_REQUIRE(warps >= 1);
  // Escalate the warp count until the per-warp C accumulator (plus its
  // streaming slices) fits the register file, as the library's launcher does.
  auto p = static_cast<std::size_t>(warps);
  while (p < 16 && (m / p) * n * sizeof(Acc) + (m / p) * 16 * sizeof(T) +
                           16 * 32 * sizeof(T) >
                       dev.reg_bytes_per_warp()) {
    p *= 2;
  }
  KAMI_REQUIRE(m % p == 0, "cuBLASDx-like kernel needs warps to divide m");

  BaselineResult<T> out{Matrix<T>(m, n), {}, true, ""};

  // Whole-problem shared-memory residency is the defining constraint:
  // A, B and C all live in shared memory at element width. On GH200 FP64
  // this caps the order at 98 (3 * 98^2 * 8 B = 227 KB), exactly the limit
  // Fig 3's caption reports for cuBLASDx.
  const std::size_t smem_need = (m * k + k * n + m * n) * sizeof(T);
  if (smem_need > dev.smem_bytes_per_block) {
    out.feasible = false;
    out.note = "shared memory demand " + std::to_string(smem_need) + " B exceeds " +
               std::to_string(dev.smem_bytes_per_block) + " B";
    return out;
  }

  sim::ThreadBlock blk(dev, warps, mode);
  auto SmA = blk.smem().alloc<T>(m, k);
  auto SmB = blk.smem().alloc<T>(k, n);
  auto SmC = blk.smem().alloc<T>(m, n);
  (void)SmC;

  const std::size_t row_chunk = m / p;
  const std::size_t kt = cublasdx_kstep(k);

  // Staging: warps cooperatively copy A and B into shared memory, one
  // stripe fragment at a time (real kernels stream this copy; holding both
  // stripes at once would blow the register file at large orders).
  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(charge_global_io);
    const auto i = static_cast<std::size_t>(w.id());
    {
      auto a_stripe = w.alloc_fragment<T>(row_chunk, k);
      w.load_global(a_stripe, A, i * row_chunk, 0);
      sim::SmemTile<T> a_dst{SmA.byte_offset + i * row_chunk * k * sizeof(T), row_chunk,
                             k};
      w.store_smem(a_dst, a_stripe.view());
    }
    if (k % p == 0) {
      const std::size_t kb = k / p;
      auto b_stripe = w.alloc_fragment<T>(kb, n);
      w.load_global(b_stripe, B, i * kb, 0);
      sim::SmemTile<T> b_dst{SmB.byte_offset + i * kb * n * sizeof(T), kb, n};
      w.store_smem(b_dst, b_stripe.view());
    } else if (w.id() == 0) {
      auto b_all = w.alloc_fragment<T>(k, n);
      w.load_global(b_all, B, 0, 0);
      w.store_smem(SmB, b_all.view());
    }
  });
  blk.sync();

  // Main loop: every k-step, every warp re-reads its operands from shared
  // memory (the staged-pipeline pattern KAMI avoids). The B panel streams
  // in column chunks to bound register pressure.
  std::vector<sim::Fragment<Acc>> Ci;
  Ci.reserve(p);
  blk.phase([&](sim::Warp& w) { Ci.emplace_back(w.regs(), row_chunk, n); });
  const std::size_t nt = n < 32 ? n : 32;

  for (std::size_t k0 = 0; k0 < k; k0 += kt) {
    const std::size_t kw = (k0 + kt <= k) ? kt : k - k0;
    blk.phase([&](sim::Warp& w) {
      const auto i = static_cast<std::size_t>(w.id());
      auto a_slice = w.alloc_fragment<T>(row_chunk, kw);
      // The A column slice is k-strided inside SmA, so the cost is charged
      // explicitly while the values come from the staged copy's source.
      w.charge_smem_read_traffic(a_slice.bytes());
      if (w.numerics_enabled())
        for (std::size_t r = 0; r < row_chunk; ++r)
          for (std::size_t c = 0; c < kw; ++c)
            a_slice(r, c) = A(i * row_chunk + r, k0 + c);
      for (std::size_t c0 = 0; c0 < n; c0 += nt) {
        const std::size_t cw = (c0 + nt <= n) ? nt : n - c0;
        auto b_chunk = w.alloc_fragment<T>(kw, cw);
        w.charge_smem_read_traffic(b_chunk.bytes());
        if (w.numerics_enabled())
          for (std::size_t r = 0; r < kw; ++r)
            for (std::size_t c = 0; c < cw; ++c) b_chunk(r, c) = B(k0 + r, c0 + c);
        w.mma(Ci[i], 0, c0, a_slice.view(), b_chunk.view());
      }
    });
    blk.sync();
  }

  // Epilogue: C narrowed back through shared memory (and to global when
  // charged).
  blk.phase([&](sim::Warp& w) {
    const auto i = static_cast<std::size_t>(w.id());
    w.charge_smem_write_traffic(row_chunk * n * sizeof(T));
    w.store_global_narrowed(out.C, Ci[i], i * row_chunk, 0);
  });
  blk.sync();

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  out.note = "smem " + std::to_string(smem_need / 1024) + " KiB";
  return out;
}

}  // namespace kami::baselines
