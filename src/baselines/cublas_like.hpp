// cuBLAS-like host-level GEMM performance models.
//
// Two comparators from the paper's evaluation:
//
// 1. The Fig 3 roofline driver: large square GEMM launched as a grid of
//    CUTLASS-style tile blocks, with per-block global-memory traffic, wave
//    quantization across SMs, and a fixed kernel-launch overhead. Large n
//    approaches the compute roofline; small n collapses under launch
//    overhead, padding waste and partial waves — reproducing the "28 GFLOPS
//    at m = 64" cliff the paper motivates with.
//
// 2. The Fig 12 batched comparator: cublasDgemmBatched-style execution.
//    Each matrix becomes one padded-tile block with charged global I/O and
//    device-side pointer indirection; host-side setup (pointer-array upload
//    and validation) costs tens of microseconds and scales with the batch.
//    These are the documented modeling constants behind the paper's very
//    large batched speedups (§5.4 attributes them to "the limited
//    optimization of small-scale GEMM operations in both MAGMA and cuBLAS").
#pragma once

#include <cmath>

#include "baselines/cutlass_like.hpp"

namespace kami::baselines {

struct HostPerf {
  double seconds = 0.0;
  double tflops = 0.0;
  bool feasible = true;
  std::string note;
};

/// Fixed kernel-launch overhead (CUDA launch + driver validation).
inline constexpr double kLaunchSeconds = 4e-6;

/// Host setup for pointer-array batched APIs: base + per-pointer upload.
inline constexpr double kBatchedSetupBase = 50e-6;
inline constexpr double kBatchedSetupPerMatrix = 15e-9;

namespace detail {

/// Waves-of-blocks completion time at a given per-block issue interval.
inline double grid_seconds(const sim::DeviceSpec& dev, double interval_cycles,
                           std::size_t blocks) {
  const double waves = std::ceil(static_cast<double>(blocks) /
                                 static_cast<double>(dev.num_sms));
  return waves * interval_cycles / (dev.boost_clock_ghz * 1e9);
}

}  // namespace detail

/// Fig 3: cuBLAS-like square FP64/FP16 GEMM of order n. Simulates one
/// representative tile block (k clamped and linearly rescaled — the main
/// loop is a steady pipeline) and extrapolates across the tile grid.
template <Scalar T>
HostPerf cublas_square_gemm_perf(const sim::DeviceSpec& dev, std::size_t n) {
  HostPerf out;
  const CutlassTile tile = cutlass_tile(num_traits<T>::precision);
  const std::size_t sim_k = n < 8 * tile.k ? n : 8 * tile.k;

  // Only the cycle profile is consumed: TimingOnly on zero-filled operands.
  const std::size_t bm = n < tile.m ? n : tile.m;
  const std::size_t bn = n < tile.n ? n : tile.n;
  const Matrix<T> A(bm, sim_k);
  const Matrix<T> B(sim_k, bn);
  auto r = cutlass_gemm(dev, A, B, /*charge_global_io=*/true, nullptr,
                        sim::ExecMode::TimingOnly);
  if (!r.feasible) {
    out.feasible = false;
    out.note = r.note;
    return out;
  }

  // Rescale the k loop from sim_k to the full n.
  const auto steps = [&](std::size_t kk) {
    return std::max<std::size_t>(1, (kk + tile.k - 1) / tile.k);
  };
  const double scale =
      static_cast<double>(steps(n)) / static_cast<double>(steps(sim_k));
  sim::KernelProfile prof = r.profile;
  prof.latency *= scale;
  prof.tc_busy *= scale;
  prof.smem_busy *= scale;
  prof.gmem_busy *= scale;
  prof.vector_busy *= scale;

  // L2 tile rasterization: concurrent blocks in a wave walk the grid in a
  // locality-preserving order, so A row-panels and B column-panels hit the
  // L2 instead of DRAM for most of a wave (cuBLAS/CUTLASS threadblock
  // swizzling). Without this reuse the driver saturates at the no-cache
  // roofline instead of approaching peak.
  constexpr double kL2ReuseFactor = 4.0;
  prof.gmem_busy /= kL2ReuseFactor;

  const std::size_t blocks = ((n + tile.m - 1) / tile.m) * ((n + tile.n - 1) / tile.n);
  prof.useful_flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                      static_cast<double>(n) / static_cast<double>(blocks);

  const double interval = sim::steady_interval_cycles(dev, prof);
  out.seconds = detail::grid_seconds(dev, interval, blocks) + kLaunchSeconds;
  out.tflops = prof.useful_flops * static_cast<double>(blocks) / out.seconds / 1e12;
  return out;
}

/// Fig 12: cuBLAS-like batched FP64. One block per matrix, padded generic
/// tile, no inter-block residency (the generic kernel reserves the full
/// staging buffers), pointer-chase latency on every operand.
inline HostPerf cublas_batched_fp64_perf(const sim::DeviceSpec& dev, std::size_t n,
                                         std::size_t batch) {
  HostPerf out;
  const Matrix<double> A(n, n);
  const Matrix<double> B(n, n);
  auto r = cutlass_gemm(dev, A, B, /*charge_global_io=*/true, nullptr,
                        sim::ExecMode::TimingOnly);
  if (!r.feasible) {
    out.feasible = false;
    out.note = r.note;
    return out;
  }
  // Device-side pointer indirection: three dependent global loads before any
  // data can stream.
  const double pointer_chase = 3.0 * dev.gmem_latency_cycles;
  const double interval = r.profile.latency + pointer_chase;  // resident = 1
  const double setup = kBatchedSetupBase +
                       kBatchedSetupPerMatrix * 3.0 * static_cast<double>(batch);
  out.seconds = detail::grid_seconds(dev, interval, batch) + setup + kLaunchSeconds;
  out.tflops = 2.0 * std::pow(static_cast<double>(n), 3) * static_cast<double>(batch) /
               out.seconds / 1e12;
  out.note = "generic padded tile, resident=1";
  return out;
}

}  // namespace kami::baselines
