// Host reference GEMM in the exact rounding model of the simulated tensor
// cores: inputs widen to the accumulator type, the k-reduction runs
// sequentially in accumulator precision, and the result narrows once at the
// end. KAMI-1D/2D cover k in sequential stage order and therefore match this
// reference bit-for-bit; KAMI-3D re-associates across layers and is compared
// with a tolerance.
#pragma once

#include "types/matrix.hpp"

namespace kami::baselines {

/// C = A x B with accumulator-width arithmetic, narrowed to T.
template <Scalar T>
Matrix<T> reference_gemm(const Matrix<T>& A, const Matrix<T>& B) {
  using Acc = typename num_traits<T>::acc_t;
  KAMI_REQUIRE(A.cols() == B.rows(), "inner dimensions must agree");
  Matrix<T> C(A.rows(), B.cols());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < B.cols(); ++j) {
      Acc acc{};
      for (std::size_t k = 0; k < A.cols(); ++k)
        acc += num_traits<T>::to_acc(A(i, k)) * num_traits<T>::to_acc(B(k, j));
      C(i, j) = num_traits<T>::from_acc(acc);
    }
  }
  return C;
}

/// Reference in full double precision (for error-bound property tests).
template <Scalar T>
Matrix<double> reference_gemm_fp64(const Matrix<T>& A, const Matrix<T>& B) {
  KAMI_REQUIRE(A.cols() == B.rows());
  Matrix<double> C(A.rows(), B.cols());
  for (std::size_t i = 0; i < A.rows(); ++i)
    for (std::size_t j = 0; j < B.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < A.cols(); ++k)
        acc += static_cast<double>(num_traits<T>::to_acc(A(i, k))) *
               static_cast<double>(num_traits<T>::to_acc(B(k, j)));
      C(i, j) = acc;
    }
  return C;
}

}  // namespace kami::baselines
