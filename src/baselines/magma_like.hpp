// MAGMA-like batched GEMM (the Fig 12 comparator).
//
// MAGMA's batched kernels are specialized for small matrices: a 32x32x8
// tile (far less padding waste than cuBLAS's generic tile), lighter host
// setup, and enough residency to overlap several matrices per SM. It still
// stages operands through shared memory every k-step, which is the gap
// KAMI's register-resident formulation closes (§5.4).
#pragma once

#include <cmath>

#include "baselines/cublas_like.hpp"

namespace kami::baselines {

inline constexpr double kMagmaSetupBase = 20e-6;
inline constexpr double kMagmaSetupPerMatrix = 5e-9;

inline HostPerf magma_batched_fp64_perf(const sim::DeviceSpec& dev, std::size_t n,
                                        std::size_t batch) {
  HostPerf out;
  const Matrix<double> A(n, n);
  const Matrix<double> B(n, n);
  const CutlassTile magma_tile{32, 32, 8, 1};
  auto r = cutlass_gemm(dev, A, B, /*charge_global_io=*/true, &magma_tile,
                        sim::ExecMode::TimingOnly);
  if (!r.feasible) {
    out.feasible = false;
    out.note = r.note;
    return out;
  }
  const double interval = sim::steady_interval_cycles(dev, r.profile);
  const double setup = kMagmaSetupBase +
                       kMagmaSetupPerMatrix * 3.0 * static_cast<double>(batch);
  out.seconds = detail::grid_seconds(dev, interval, batch) + setup + kLaunchSeconds;
  out.tflops = 2.0 * std::pow(static_cast<double>(n), 3) * static_cast<double>(batch) /
               out.seconds / 1e12;
  out.note = "32x32x8 batched tile";
  return out;
}

}  // namespace kami::baselines
