// SYCL-Bench-like GEMM (the paper's Intel Max 1100 comparator, §5.2.3).
//
// SYCL-Bench's GEMM kernel is a classic local-memory-tiled work-group GEMM
// executed on the vector (XVE) pipeline — it does not use joint_matrix, so
// it never touches the XMX units. The cost structure is therefore scalar
// FMA throughput plus per-k-step local-memory traffic, which is why KAMI's
// tensor-core formulation is ~5x faster on the same device (Fig 8(g)).
#pragma once

#include <vector>

#include "baselines/baseline_result.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::baselines {

template <Scalar T>
BaselineResult<T> syclbench_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                                 const Matrix<T>& B, int warps = 4,
                                 bool charge_global_io = false,
                                 sim::ExecMode mode = sim::ExecMode::Full) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");
  const auto p = static_cast<std::size_t>(warps);
  KAMI_REQUIRE(warps >= 1 && m % p == 0, "work-group shape must divide m");

  BaselineResult<T> out{Matrix<T>(m, n), {}, true, "vector-pipeline GEMM"};
  const std::size_t smem_need = (m * k + k * n) * sizeof(T);
  if (smem_need > dev.smem_bytes_per_block) {
    out.feasible = false;
    out.note = "local-memory tiles exceed SLM capacity";
    return out;
  }

  sim::ThreadBlock blk(dev, warps, mode);
  auto SmA = blk.smem().alloc<T>(m, k);
  auto SmB = blk.smem().alloc<T>(k, n);
  const std::size_t row_chunk = m / p;
  const std::size_t kt = k < 16 ? k : 16;

  // Stage A and B into local memory, streaming stripes so the staging
  // buffers never exceed the register file.
  blk.phase([&](sim::Warp& w) {
    w.set_gmem_charging(charge_global_io);
    const auto i = static_cast<std::size_t>(w.id());
    {
      auto stripe = w.alloc_fragment<T>(row_chunk, k);
      w.load_global(stripe, A, i * row_chunk, 0);
      sim::SmemTile<T> dst{SmA.byte_offset + i * row_chunk * k * sizeof(T), row_chunk, k};
      w.store_smem(dst, stripe.view());
    }
    // B row stripes round-robin over warps; 16-row chunks bound registers.
    for (std::size_t r0 = i * 16; r0 < k; r0 += p * 16) {
      const std::size_t rows = (r0 + 16 <= k) ? 16 : k - r0;
      auto bchunk = w.alloc_fragment<T>(rows, n);
      w.load_global(bchunk, B, r0, 0);
      sim::SmemTile<T> dst{SmB.byte_offset + r0 * n * sizeof(T), rows, n};
      w.store_smem(dst, bchunk.view());
    }
  });
  blk.sync();

  std::vector<sim::Fragment<Acc>> Ci;
  Ci.reserve(p);
  blk.phase([&](sim::Warp& w) { Ci.emplace_back(w.regs(), row_chunk, n); });

  for (std::size_t k0 = 0; k0 < k; k0 += kt) {
    const std::size_t kw = (k0 + kt <= k) ? kt : k - k0;
    blk.phase([&](sim::Warp& w) {
      const auto i = static_cast<std::size_t>(w.id());
      auto a_slice = w.alloc_fragment<T>(row_chunk, kw);
      auto b_panel = w.alloc_fragment<T>(kw, n);
      w.charge_smem_read_traffic(a_slice.bytes());
      w.charge_smem_read_traffic(b_panel.bytes());
      if (w.numerics_enabled()) {
        for (std::size_t r = 0; r < row_chunk; ++r)
          for (std::size_t c = 0; c < kw; ++c)
            a_slice(r, c) = A(i * row_chunk + r, k0 + c);
        for (std::size_t r = 0; r < kw; ++r)
          for (std::size_t c = 0; c < n; ++c) b_panel(r, c) = B(k0 + r, c);
      }
      // The defining difference: scalar FMAs on the vector pipe, no MMA.
      w.fma_scalar(Ci[i], a_slice.view(), b_panel.view());
    });
    blk.sync();
  }

  blk.phase([&](sim::Warp& w) {
    const auto i = static_cast<std::size_t>(w.id());
    w.store_global_narrowed(out.C, Ci[i], i * row_chunk, 0);
  });
  blk.sync();

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  return out;
}

}  // namespace kami::baselines
