// Common result type for the comparator kernels.
#pragma once

#include <string>

#include "sim/throughput.hpp"
#include "types/matrix.hpp"

namespace kami::baselines {

template <Scalar T>
struct BaselineResult {
  Matrix<T> C;
  sim::KernelProfile profile;
  bool feasible = true;   ///< false when the kernel cannot run (e.g. shared
                          ///< memory exceeds the device limit)
  std::string note;       ///< why it was infeasible / configuration used
};

}  // namespace kami::baselines
