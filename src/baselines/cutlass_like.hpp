// CUTLASS-like fixed-tile GEMM.
//
// CUTLASS's block-level building blocks are tuned for large tiles (§3.1:
// "size m=128, n=128 and k=32 ... used as the building block for large GEMM
// in CUTLASS"). When the problem is smaller than the tile, the kernel still
// stages and multiplies the full (zero-padded) tile — wasted tensor-core
// issue and shared-memory traffic that grows as the cube of the padding
// factor. This is the mechanism behind the paper's very large small-size
// speedups (up to 74x at FP16 on the 5090) and CUTLASS's ~65 KB
// shared-memory footprint (§5.6.1) from multi-stage double buffering.
// Problems larger than one tile sweep the tile grid sequentially within the
// block.
#pragma once

#include <algorithm>
#include <vector>

#include "baselines/baseline_result.hpp"
#include "model/cost_model.hpp"
#include "sim/block.hpp"

namespace kami::baselines {

struct CutlassTile {
  std::size_t m = 128, n = 128, k = 32;
  int stages = 2;  ///< smem pipeline depth
};

/// The default tile CUTLASS instantiates per precision.
inline CutlassTile cutlass_tile(Precision prec) {
  switch (prec) {
    case Precision::FP64: return {64, 64, 16, 2};
    case Precision::FP32:
    case Precision::TF32: return {128, 128, 16, 3};
    default: return {128, 128, 32, 3};  // FP16 / BF16 / FP8
  }
}

template <Scalar T>
BaselineResult<T> cutlass_gemm(const sim::DeviceSpec& dev, const Matrix<T>& A,
                               const Matrix<T>& B, bool charge_global_io = false,
                               const CutlassTile* tile_override = nullptr,
                               sim::ExecMode mode = sim::ExecMode::Full) {
  using Acc = typename num_traits<T>::acc_t;
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  KAMI_REQUIRE(B.rows() == k, "inner dimensions must agree");

  const CutlassTile tile =
      tile_override ? *tile_override : cutlass_tile(num_traits<T>::precision);
  BaselineResult<T> out{Matrix<T>(m, n), {}, true, ""};

  const std::size_t smem_need = static_cast<std::size_t>(tile.stages) *
                                (tile.m * tile.k + tile.k * tile.n) * sizeof(T);
  if (smem_need > dev.smem_bytes_per_block) {
    out.feasible = false;
    out.note = "tile staging needs " + std::to_string(smem_need) + " B of shared memory";
    return out;
  }

  // 2x2 warp grid over the tile, each warp owning a (tile.m/2 x tile.n/2)
  // accumulator — CUTLASS's 96 regs/thread at FP16 (§5.6.1).
  constexpr int kWarps = 4;
  sim::ThreadBlock blk(dev, kWarps, mode);
  const std::size_t wm = tile.m / 2, wn = tile.n / 2;

  auto SmA = blk.smem().alloc<T>(tile.m, tile.k);
  auto SmB = blk.smem().alloc<T>(tile.k, tile.n);
  if (tile.stages > 1) {  // second pipeline stage buffer
    (void)blk.smem().alloc<T>(tile.m, tile.k);
    (void)blk.smem().alloc<T>(tile.k, tile.n);
  }

  blk.phase([&](sim::Warp& w) { w.set_gmem_charging(charge_global_io); });

  const std::size_t tiles_m = (m + tile.m - 1) / tile.m;
  const std::size_t tiles_n = (n + tile.n - 1) / tile.n;
  const std::size_t ksteps = std::max<std::size_t>(1, (k + tile.k - 1) / tile.k);

  for (std::size_t tr = 0; tr < tiles_m; ++tr) {
    for (std::size_t tc = 0; tc < tiles_n; ++tc) {
      const std::size_t rbase = tr * tile.m, cbase = tc * tile.n;
      std::vector<sim::Fragment<Acc>> Cw;
      Cw.reserve(kWarps);
      blk.phase([&](sim::Warp& w) { Cw.emplace_back(w.regs(), wm, wn); });

      for (std::size_t step = 0; step < ksteps; ++step) {
        const std::size_t k0 = step * tile.k;
        // Stage the full (padded) tile: warps split the copy.
        blk.phase([&](sim::Warp& w) {
          const auto i = static_cast<std::size_t>(w.id());
          const std::size_t a_rows = tile.m / kWarps;
          auto a_part = w.alloc_fragment<T>(a_rows, tile.k);
          if (w.numerics_enabled())
            for (std::size_t r = 0; r < a_rows; ++r)
              for (std::size_t c = 0; c < tile.k; ++c) {
                const std::size_t gr = rbase + i * a_rows + r, gc = k0 + c;
                a_part(r, c) = (gr < m && gc < k) ? A(gr, gc) : T{};
              }
          w.charge_global_traffic_async(a_part.bytes());
          sim::SmemTile<T> a_dst{SmA.byte_offset + i * a_rows * tile.k * sizeof(T),
                                 a_rows, tile.k};
          w.store_smem(a_dst, a_part.view());

          const std::size_t b_rows = tile.k / kWarps;
          auto b_part = w.alloc_fragment<T>(b_rows, tile.n);
          if (w.numerics_enabled())
            for (std::size_t r = 0; r < b_rows; ++r)
              for (std::size_t c = 0; c < tile.n; ++c) {
                const std::size_t gr = k0 + i * b_rows + r, gc = cbase + c;
                b_part(r, c) = (gr < k && gc < n) ? B(gr, gc) : T{};
              }
          w.charge_global_traffic_async(b_part.bytes());
          sim::SmemTile<T> b_dst{SmB.byte_offset + i * b_rows * tile.n * sizeof(T),
                                 b_rows, tile.n};
          w.store_smem(b_dst, b_part.view());
        });
        blk.sync();

        // Each warp pulls its operand halves from shared memory and
        // multiplies the full padded warp tile.
        blk.phase([&](sim::Warp& w) {
          const auto i = static_cast<std::size_t>(w.id());
          const std::size_t wr = i / 2, wc = i % 2;
          auto a_half = w.alloc_fragment<T>(wm, tile.k);
          auto b_half = w.alloc_fragment<T>(tile.k, wn);
          w.charge_smem_read_traffic(a_half.bytes());
          w.charge_smem_read_traffic(b_half.bytes());
          if (w.numerics_enabled()) {
            for (std::size_t r = 0; r < wm; ++r)
              for (std::size_t c = 0; c < tile.k; ++c) {
                const std::size_t gr = rbase + wr * wm + r, gc = k0 + c;
                a_half(r, c) = (gr < m && gc < k) ? A(gr, gc) : T{};
              }
            for (std::size_t r = 0; r < tile.k; ++r)
              for (std::size_t c = 0; c < wn; ++c) {
                const std::size_t gr = k0 + r, gc = cbase + wc * wn + c;
                b_half(r, c) = (gr < k && gc < n) ? B(gr, gc) : T{};
              }
          }
          w.mma(Cw[i], a_half.view(), b_half.view());
        });
        blk.sync();
      }

      // Epilogue: CUTLASS stages the (padded) accumulator tile through
      // shared memory to produce coalesced stores, then writes the valid
      // region to the output.
      blk.phase([&](sim::Warp& w) {
        const auto i = static_cast<std::size_t>(w.id());
        w.charge_smem_write_traffic(wm * wn * sizeof(T));
        w.charge_smem_read_traffic(wm * wn * sizeof(T));
        const std::size_t wr = i / 2, wc = i % 2;
        const std::size_t r0 = rbase + wr * wm, c0 = cbase + wc * wn;
        if (r0 >= m || c0 >= n) return;
        const std::size_t rows = std::min(wm, m - r0), cols = std::min(wn, n - c0);
        w.store_global_narrowed(out.C, Cw[i], r0, c0, 0, 0, rows, cols);
      });
      blk.sync();
    }
  }

  out.profile = sim::profile_block(blk, model::gemm_flops(m, n, k));
  out.note = "tile " + std::to_string(tile.m) + "x" + std::to_string(tile.n) + "x" +
             std::to_string(tile.k);
  return out;
}

}  // namespace kami::baselines
