#include "model/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace kami::model {
namespace {

// The paper's worked examples (§4.3-§4.5): L_sm = 22, theta = 1, B_sm = 128,
// O_tc = 32, n_tc = 4, FP64 8x8 matrices.
Params paper_example(int p) {
  Params q;
  q.m = q.n = q.k = 8;
  q.p = p;
  q.se = 8.0;
  q.L_sm = 22.0;
  q.B_sm = 128.0;
  q.O_tc = 32.0;
  q.n_tc = 4;
  return q;
}

TEST(CostModel, Paper1dWorkedExample) {
  const auto c = cost_1d(paper_example(2));
  EXPECT_DOUBLE_EQ(c.V_cm, 512.0);   // formula (1)
  EXPECT_DOUBLE_EQ(c.T_cm, 26.0);    // formula (2)
  EXPECT_DOUBLE_EQ(c.T_cp, 8.0);     // formula (3)
  EXPECT_DOUBLE_EQ(c.T_all, 60.0);   // formula (4)
  EXPECT_EQ(c.stages, 2);
}

TEST(CostModel, Paper2dWorkedExample) {
  const auto c = cost_2d(paper_example(4));
  EXPECT_DOUBLE_EQ(c.V_cm, 1024.0);  // formula (5)
  EXPECT_DOUBLE_EQ(c.T_cm, 30.0);    // formula (6)
  EXPECT_DOUBLE_EQ(c.T_cp, 4.0);     // formula (7), corrected form
  EXPECT_DOUBLE_EQ(c.T_all, 68.0);   // formula (8)
  EXPECT_EQ(c.stages, 2);
}

TEST(CostModel, Paper3dWorkedExample) {
  const auto c = cost_3d(paper_example(8));
  EXPECT_DOUBLE_EQ(c.V_cm, 1024.0);  // formula (9)
  EXPECT_DOUBLE_EQ(c.T_cm, 30.0);    // formula (10)
  EXPECT_DOUBLE_EQ(c.T_all, 68.0);   // formula (12)
  EXPECT_EQ(c.stages, 2);
}

// Erratum pins (DESIGN "Known internal inconsistencies in the paper").
// Formula (7) as printed reads 2mnk/(cbrt(p)*O_tc); the worked example and
// the expanded total (8) require T_cp = 2mnk/(p^{3/2}*O_tc). These tests
// lock the implementation to the corrected form: accidentally "fixing" the
// code back to the printed formula flips both expectations.
TEST(CostModel, Formula7ErratumCorrectedExponent) {
  const auto q = paper_example(4);
  const auto c = cost_2d(q);
  const double mnk = static_cast<double>(q.m * q.n * q.k);
  const double corrected = 2.0 * mnk / (std::pow(4.0, 1.5) * q.O_tc);
  const double printed = 2.0 * mnk / (std::cbrt(4.0) * q.O_tc);
  EXPECT_DOUBLE_EQ(c.T_cp, corrected);  // = 4 cycles for the worked example
  EXPECT_NE(c.T_cp, printed);           // ~20.2 — inconsistent with (8)
}

// The compact 3D total cbrt(p)*(T_cm + (p/n_tc)*T_cp) with (11) gives 76
// cycles for the worked example; the expanded (12) gives the printed 68.
// The implementation follows (12).
TEST(CostModel, Expanded3dTotalNotCompactForm) {
  const auto c = cost_3d(paper_example(8));
  EXPECT_DOUBLE_EQ(c.T_all, 68.0);
  EXPECT_NE(c.T_all, 76.0);
}

TEST(CostModel, CommPlusComputeEqualsTotal) {
  const auto q = paper_example(4);
  for (const auto& c : {cost_1d(q), cost_2d(q)}) {
    EXPECT_DOUBLE_EQ(c.comm_cycles + c.compute_cycles, c.T_all);
  }
}

TEST(CostModel, VolumeIndependentOfWarpCount1d) {
  // Formula (1): V_cm = k*n*s_e regardless of p.
  auto q = paper_example(2);
  const double v2 = cost_1d(q).V_cm;
  q.p = 4;
  EXPECT_DOUBLE_EQ(cost_1d(q).V_cm, v2);
}

TEST(CostModel, BankConflictsInflateCommunication) {
  auto q = paper_example(2);
  q.theta_r = 0.5;
  const auto conflicted = cost_1d(q);
  q.theta_r = 1.0;
  const auto clean = cost_1d(q);
  EXPECT_GT(conflicted.T_cm, clean.T_cm);
  EXPECT_GT(conflicted.T_all, clean.T_all);
  EXPECT_DOUBLE_EQ(conflicted.compute_cycles, clean.compute_cycles);
}

TEST(CostModel, ComputeTermScalesWithProblemVolume) {
  auto q = paper_example(4);
  const auto small = cost_2d(q);
  q.m = q.n = q.k = 16;
  const auto big = cost_2d(q);
  EXPECT_DOUBLE_EQ(big.compute_cycles, small.compute_cycles * 8.0);
}

TEST(CostModel, TwoDRequiresPerfectSquare) {
  EXPECT_THROW((void)cost_2d(paper_example(6)), PreconditionError);
}

TEST(CostModel, ThreeDRequiresPerfectCube) {
  EXPECT_THROW((void)cost_3d(paper_example(9)), PreconditionError);
}

TEST(CostModel, RejectsInvalidInputs) {
  auto q = paper_example(2);
  q.theta_w = 0.0;
  EXPECT_THROW((void)cost_1d(q), PreconditionError);
  q = paper_example(2);
  q.m = 0;
  EXPECT_THROW((void)cost_1d(q), PreconditionError);
}

TEST(CostModel, FromDevicePullsHardwareConstants) {
  const auto& dev = sim::gh200();
  const auto q = Params::from_device(dev, Precision::FP16, 64, 64, 64, 4);
  EXPECT_DOUBLE_EQ(q.se, 2.0);
  EXPECT_DOUBLE_EQ(q.L_sm, 22.0);
  EXPECT_DOUBLE_EQ(q.B_sm, 128.0);
  EXPECT_EQ(q.n_tc, 4);
  EXPECT_GT(q.O_tc, 0.0);
}

TEST(CostModel, GemmFlops) { EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0); }

// 2D moves (mk + kn) bytes vs 1D's kn: for square shapes the 1D scheme has
// strictly lower communication volume (formulas (1) vs (5)). Note the cycle
// totals do not follow automatically — 2D amortizes reads over sqrt(p)
// broadcasters — which is why the paper attributes 1D's measured wins to
// control-flow overhead rather than the volume term (§5.2.1).
TEST(CostModel, OneDVolumeLessThan2dForSquare) {
  auto q = paper_example(4);
  q.m = q.n = q.k = 64;
  EXPECT_LT(cost_1d(q).V_cm, cost_2d(q).V_cm);
}

}  // namespace
}  // namespace kami::model
