#include "model/roofline.hpp"

#include <gtest/gtest.h>

namespace kami::model {
namespace {

TEST(Roofline, SquareGemmIntensity) {
  // n = 64 FP64: AI = 2*64^3 / (3*64^2*8) = 64/12 flops/byte.
  EXPECT_NEAR(gemm_arithmetic_intensity(64, 64, 64, Precision::FP64), 64.0 / 12.0, 1e-12);
}

TEST(Roofline, IntensityGrowsWithN) {
  const double small = gemm_arithmetic_intensity(16, 16, 16, Precision::FP64);
  const double big = gemm_arithmetic_intensity(4096, 4096, 4096, Precision::FP64);
  EXPECT_GT(big, small);
}

TEST(Roofline, SmallSizesAreMemoryBound) {
  const auto& dev = sim::gh200();
  const double ai = gemm_arithmetic_intensity(16, 16, 16, Precision::FP64);
  EXPECT_LT(roofline_tflops(dev, Precision::FP64, ai), dev.peak_fp64_tflops);
}

TEST(Roofline, LargeSizesHitComputePeak) {
  const auto& dev = sim::gh200();
  const double ai = gemm_arithmetic_intensity(8192, 8192, 8192, Precision::FP64);
  EXPECT_DOUBLE_EQ(roofline_tflops(dev, Precision::FP64, ai), dev.peak_fp64_tflops);
}

TEST(Roofline, BandwidthAggregatesOverSms) {
  const auto& dev = sim::gh200();
  // 15.3 B/cyc/SM x 132 SMs x 1.98 GHz = ~4 TB/s.
  EXPECT_NEAR(device_gmem_bytes_per_second(dev) / 1e12, 4.0, 0.05);
}

TEST(Roofline, RidgePointSeparatesRegimes) {
  const auto& dev = sim::gh200();
  const double bw = device_gmem_bytes_per_second(dev);
  const double ridge = dev.peak_fp64_tflops * 1e12 / bw;
  EXPECT_LT(roofline_tflops(dev, Precision::FP64, ridge * 0.5),
            dev.peak_fp64_tflops * 0.51);
  EXPECT_DOUBLE_EQ(roofline_tflops(dev, Precision::FP64, ridge * 2.0),
                   dev.peak_fp64_tflops);
}

}  // namespace
}  // namespace kami::model
