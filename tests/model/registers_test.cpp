#include "model/registers.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace kami::model {
namespace {

TEST(Registers, AccumulatorWidths) {
  EXPECT_EQ(accumulator_bytes(Precision::FP64), 8u);
  EXPECT_EQ(accumulator_bytes(Precision::FP16), 4u);
  EXPECT_EQ(accumulator_bytes(Precision::FP8E4M3), 4u);
}

// §5.6.1's configuration: 64x64 FP16 with 4 warps. The paper reports 62
// measured registers/thread for KAMI-1D against a higher theoretical value;
// the theory here gives 80 regs/thread (A 2 KB + B 2 KB + C-acc 4 KB +
// BRecv 2 KB = 10 KB/warp = 80 regs/thread), consistent with the paper's
// measured/theory ratio of 76.9 %.
TEST(Registers, OneD64x64Fp16MatchesHandComputation) {
  const auto u = register_usage(Algo::OneD, Precision::FP16, 64, 64, 64, 4);
  EXPECT_DOUBLE_EQ(u.bytes_a, 2048.0);
  EXPECT_DOUBLE_EQ(u.bytes_b, 2048.0);
  EXPECT_DOUBLE_EQ(u.bytes_c, 4096.0);
  EXPECT_DOUBLE_EQ(u.bytes_recv, 2048.0);
  EXPECT_DOUBLE_EQ(u.regs_per_thread(), 80.0);
}

TEST(Registers, TwoDUsesSmallerTilesButTwoRecvBuffers) {
  const auto u = register_usage(Algo::TwoD, Precision::FP16, 64, 64, 64, 4);
  // Tiles 32x32: A 2 KB, B 2 KB, C 4 KB, Recv = A + B = 4 KB.
  EXPECT_DOUBLE_EQ(u.bytes_a, 2048.0);
  EXPECT_DOUBLE_EQ(u.bytes_recv, 4096.0);
  EXPECT_DOUBLE_EQ(u.regs_per_thread(), 96.0);
}

TEST(Registers, ThreeDPartitionsByCbrt) {
  const auto u = register_usage(Algo::ThreeD, Precision::FP16, 64, 64, 64, 8);
  // c = 2 -> tiles 32x32, same per-warp footprint as 2D with p = 4.
  EXPECT_DOUBLE_EQ(u.bytes_a, 2048.0);
  EXPECT_DOUBLE_EQ(u.bytes_c, 4096.0);
}

TEST(Registers, Fp64DoublesElementAndAccumulatorSize) {
  const auto h = register_usage(Algo::OneD, Precision::FP16, 64, 64, 64, 4);
  const auto d = register_usage(Algo::OneD, Precision::FP64, 64, 64, 64, 4);
  EXPECT_DOUBLE_EQ(d.bytes_a, 4.0 * h.bytes_a);  // 8 B vs 2 B elements
  EXPECT_DOUBLE_EQ(d.bytes_c, 2.0 * h.bytes_c);  // 8 B vs 4 B accumulator
}

TEST(Registers, GrowsLinearlyWithK) {
  // Fig 14's sweep: C fixed (64x32), A/B grow with k.
  const auto k32 = register_usage(Algo::OneD, Precision::FP16, 64, 32, 32, 4);
  const auto k64 = register_usage(Algo::OneD, Precision::FP16, 64, 32, 64, 4);
  EXPECT_DOUBLE_EQ(k64.bytes_a, 2.0 * k32.bytes_a);
  EXPECT_DOUBLE_EQ(k64.bytes_c, k32.bytes_c);  // C does not depend on k
}

TEST(Registers, RejectsBadGrids) {
  EXPECT_THROW((void)register_usage(Algo::TwoD, Precision::FP16, 64, 64, 64, 6),
               PreconditionError);
  EXPECT_THROW((void)register_usage(Algo::ThreeD, Precision::FP16, 64, 64, 64, 9),
               PreconditionError);
}

}  // namespace
}  // namespace kami::model
