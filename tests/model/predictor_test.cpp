#include "model/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.hpp"
#include "util/require.hpp"

namespace kami::model {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

Observation obs_for(std::size_t s, double simulated, Algo algo = Algo::OneD,
                    int p = 4) {
  Observation o;
  o.device = dev().name;
  o.algo = algo;
  o.precision = Precision::FP16;
  o.m = o.n = o.k = s;
  o.p = p;
  o.simulated_cycles = simulated;
  return o;
}

double raw(std::size_t s, Algo algo = Algo::OneD, int p = 4) {
  return Predictor::analytic_cycles(dev(), algo, Precision::FP16, s, s, s, p);
}

TEST(Predictor, AnalyticCyclesMatchesClosedForms) {
  // The static entry point is exactly the expanded totals (4)/(8)/(12) on
  // Params::from_device — no correction, no hidden terms.
  for (const Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    const int p = algo == Algo::OneD ? 2 : (algo == Algo::TwoD ? 4 : 8);
    const Params q = Params::from_device(dev(), Precision::FP16, 64, 64, 64, p);
    const Cost c = algo == Algo::OneD ? cost_1d(q)
                   : algo == Algo::TwoD ? cost_2d(q)
                                        : cost_3d(q);
    EXPECT_DOUBLE_EQ(
        Predictor::analytic_cycles(dev(), algo, Precision::FP16, 64, 64, 64, p),
        c.T_all);
  }
}

TEST(Predictor, UncalibratedPredictionIsRawFormula) {
  const Predictor pred;
  const Prediction p = pred.predict(dev(), Algo::OneD, Precision::FP16, 64, 64, 64, 4);
  EXPECT_FALSE(p.calibrated);
  EXPECT_FALSE(p.confident);
  EXPECT_DOUBLE_EQ(p.scale, 1.0);
  EXPECT_DOUBLE_EQ(p.cycles, p.analytic_cycles);
  EXPECT_DOUBLE_EQ(p.analytic_cycles, raw(64));
}

TEST(Predictor, CalibrationLearnsSystematicScale) {
  Predictor pred;
  // A perfectly systematic simulator: always 1.2x the formula.
  for (const std::size_t s : {32u, 64u, 96u}) pred.observe(obs_for(s, 1.2 * raw(s)));
  const Prediction p = pred.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  EXPECT_TRUE(p.calibrated);
  EXPECT_TRUE(p.confident);
  EXPECT_EQ(p.samples, 3u);
  EXPECT_NEAR(p.scale, 1.2, 1e-9);
  EXPECT_NEAR(p.cycles, 1.2 * raw(48), 1e-6);
  // Identical residuals: the band collapses to its floor, not to zero.
  EXPECT_DOUBLE_EQ(p.rel_band, pred.config().band_floor);
}

TEST(Predictor, FitIsOrderIndependent) {
  const double sims[] = {1.15, 1.3, 1.2};
  const std::size_t dims[] = {32, 64, 96};
  Predictor fwd, rev;
  for (int i = 0; i < 3; ++i) fwd.observe(obs_for(dims[i], sims[i] * raw(dims[i])));
  for (int i = 2; i >= 0; --i) rev.observe(obs_for(dims[i], sims[i] * raw(dims[i])));
  const auto a = fwd.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  const auto b = rev.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.scale, b.scale);
  EXPECT_DOUBLE_EQ(a.rel_band, b.rel_band);
}

TEST(Predictor, DispersionWidensBandAndBreaksConfidence) {
  Predictor pred;
  // Ratios 1.0 and 2.0: no single scale explains both, so the padded band
  // must exceed trust_rel_error and the bucket must not be trusted.
  pred.observe(obs_for(32, 1.0 * raw(32)));
  pred.observe(obs_for(64, 2.0 * raw(64)));
  pred.observe(obs_for(96, 1.0 * raw(96)));
  const Prediction p = pred.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  EXPECT_TRUE(p.calibrated);
  EXPECT_GT(p.rel_band, pred.config().trust_rel_error);
  EXPECT_FALSE(p.confident);
}

TEST(Predictor, BucketsSplitByAlgoWarpsAndIoCharging) {
  Predictor pred;
  pred.observe(obs_for(64, 1.2 * raw(64)));
  Observation io = obs_for(64, 1.9 * raw(64));
  io.options.charge_global_io = true;
  pred.observe(io);
  Observation two = obs_for(64, 1.1 * raw(64, Algo::TwoD), Algo::TwoD);
  pred.observe(two);
  // Same algo, different warp count: its residual is fit separately (the
  // overheads the formula ignores scale with the warp grid).
  pred.observe(obs_for(64, 1.5 * raw(64, Algo::OneD, 8), Algo::OneD, 8));
  EXPECT_EQ(pred.bucket_count(), 4u);
  EXPECT_EQ(pred.observation_count(), 4u);
  const auto stats = pred.bucket_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& b : stats) EXPECT_EQ(b.samples, 1u);
}

TEST(Predictor, MinSamplesGateCalibration) {
  Predictor pred;
  pred.observe(obs_for(32, 1.2 * raw(32)));
  pred.observe(obs_for(64, 1.2 * raw(64)));
  const Prediction two =
      pred.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  EXPECT_FALSE(two.calibrated);
  EXPECT_DOUBLE_EQ(two.scale, 1.0);  // an unfit bucket never corrects
  pred.observe(obs_for(96, 1.2 * raw(96)));
  EXPECT_TRUE(
      pred.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4).calibrated);
}

TEST(Predictor, RejectsLatencyFreeObservations) {
  Predictor pred;
  EXPECT_THROW(pred.observe(obs_for(64, 0.0)), PreconditionError);
  EXPECT_THROW(pred.observe(obs_for(64, -5.0)), PreconditionError);
  EXPECT_EQ(pred.observation_count(), 0u);
}

TEST(Predictor, RequireWithinBandThrowsTypedDivergence) {
  Predictor pred;
  for (const std::size_t s : {32u, 64u, 96u}) pred.observe(obs_for(s, 1.2 * raw(s)));
  const Prediction p = pred.predict(dev(), Algo::OneD, Precision::FP16, 48, 48, 48, 4);
  // Inside the band: the prediction itself, trivially.
  EXPECT_NO_THROW(
      Predictor::require_within_band(p, p.cycles, pred.config(), "selftest"));
  // Far outside: a typed ModelDivergence (catchable as such, not just as
  // runtime_error) carrying the context string.
  try {
    Predictor::require_within_band(p, 10.0 * p.cycles, pred.config(), "selftest");
    FAIL() << "expected ModelDivergence";
  } catch (const ModelDivergence& e) {
    EXPECT_NE(std::string(e.what()).find("selftest"), std::string::npos);
  }
}

TEST(Predictor, ResetClearsCalibration) {
  Predictor pred;
  for (const std::size_t s : {32u, 64u, 96u}) pred.observe(obs_for(s, 1.2 * raw(s)));
  pred.reset();
  EXPECT_EQ(pred.bucket_count(), 0u);
  EXPECT_EQ(pred.observation_count(), 0u);
  EXPECT_FALSE(
      pred.predict(dev(), Algo::OneD, Precision::FP16, 64, 64, 64, 4).calibrated);
}

TEST(Predictor, GlobalIsSingleton) {
  EXPECT_EQ(&Predictor::global(), &Predictor::global());
}

}  // namespace
}  // namespace kami::model
