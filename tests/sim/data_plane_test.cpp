// Full-mode data-plane tests (PR 10): the warp fragment ops run on the
// shared vector kernels + decode LUT spans + arena scratch, and must stay
// bit-identical to the scalar seed semantics on every shape — including
// ragged tiles that exercise the SIMD j-tail and partial k-tiles. These
// tests compare each op against the seed's element-by-element loop written
// out locally, so they pin the contract in both SIMD and KAMI_NO_SIMD
// builds (the no-simd CI job runs this suite).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "../testing/test_device.hpp"
#include "core/arena.hpp"
#include "obs/metrics.hpp"
#include "sim/block.hpp"
#include "types/numeric_traits.hpp"
#include "util/rng.hpp"

namespace kami::sim {
namespace {

using kami::testing::tiny_device;

template <Scalar T>
void fill_random(Fragment<T>& f, Rng& rng) {
  for (std::size_t r = 0; r < f.rows(); ++r)
    for (std::size_t c = 0; c < f.cols(); ++c)
      f(r, c) = num_traits<T>::from_acc(
          static_cast<typename num_traits<T>::acc_t>(rng.uniform(-1.0, 1.0)));
}

// The seed's scalar mma loop: one ascending-k chain per element.
template <Scalar T>
std::vector<typename num_traits<T>::acc_t> reference_mma(
    const Fragment<typename num_traits<T>::acc_t>& C, std::size_t cr0, std::size_t cc0,
    const FragView<T>& A, const FragView<T>& B) {
  using Acc = typename num_traits<T>::acc_t;
  std::vector<Acc> out(A.rows() * B.cols());
  for (std::size_t i = 0; i < A.rows(); ++i)
    for (std::size_t j = 0; j < B.cols(); ++j) {
      Acc acc = C(cr0 + i, cc0 + j);
      for (std::size_t k = 0; k < A.cols(); ++k)
        acc += num_traits<T>::to_acc(A(i, k)) * num_traits<T>::to_acc(B(k, j));
      out[i * B.cols() + j] = acc;
    }
  return out;
}

template <Scalar T>
void check_mma_ragged(std::size_t fm, std::size_t fn, std::size_t fk) {
  using Acc = typename num_traits<T>::acc_t;
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(42 + fm * 131 + fn * 17 + fk);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<T>(fm, fk);
    auto B = w.alloc_fragment<T>(fk, fn);
    auto C = w.alloc_fragment<Acc>(fm + 2, fn + 3);  // window offset (1, 2)
    fill_random(A, rng);
    fill_random(B, rng);
    fill_random(C, rng);
    const auto want = reference_mma(C, 1, 2, A.view(), B.view());
    w.mma(C, 1, 2, A.view(), B.view());
    for (std::size_t i = 0; i < fm; ++i)
      for (std::size_t j = 0; j < fn; ++j)
        EXPECT_EQ(C(1 + i, 2 + j), want[i * fn + j])
            << "shape " << fm << "x" << fn << "x" << fk << " at (" << i << "," << j << ")";
  });
}

TEST(DataPlane, MmaRaggedShapesMatchScalarReference) {
  // Shapes straddle the 8-lane vector width and the 64-wide k-tile:
  // j-tails of every size, k exactly at/over the tile boundary.
  for (const auto& [m, n, k] : {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
                               {3, 5, 7},
                               {5, 8, 16},
                               {4, 17, 64},
                               {2, 23, 65},
                               {7, 31, 130}}) {
    check_mma_ragged<float>(m, n, k);
    check_mma_ragged<fp16_t>(m, n, k);
    check_mma_ragged<fp8_e4m3_t>(m, n, k);
  }
  check_mma_ragged<double>(3, 9, 5);  // 4-lane double tails
}

TEST(DataPlane, FmaScalarMatchesScalarReference) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(7);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<bf16_t>(5, 13);
    auto B = w.alloc_fragment<bf16_t>(13, 11);
    auto C = w.alloc_fragment<float>(6, 12);  // larger than the product window
    fill_random(A, rng);
    fill_random(B, rng);
    fill_random(C, rng);
    const auto want = reference_mma(C, 0, 0, A.view(), B.view());
    w.fma_scalar(C, A.view(), B.view());
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 11; ++j) EXPECT_EQ(C(i, j), want[i * 11 + j]);
    EXPECT_EQ(C(5, 11), C(5, 11));  // untouched row/col stay valid
  });
}

TEST(DataPlane, AddInplaceAtMatchesScalarNarrowing) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(11);
  blk.phase([&](Warp& w) {
    // Narrowing type: every element round-trips to_acc -> add -> from_acc.
    auto C = w.alloc_fragment<fp16_t>(9, 21);
    auto P = w.alloc_fragment<fp16_t>(5, 13);
    fill_random(C, rng);
    fill_random(P, rng);
    std::vector<fp16_t> want(5 * 13);
    for (std::size_t r = 0; r < 5; ++r)
      for (std::size_t c = 0; c < 13; ++c)
        want[r * 13 + c] = num_traits<fp16_t>::from_acc(
            num_traits<fp16_t>::to_acc(C(3 + r, 7 + c)) + num_traits<fp16_t>::to_acc(P(r, c)));
    w.add_inplace_at(C, 3, 7, P.view());
    for (std::size_t r = 0; r < 5; ++r)
      for (std::size_t c = 0; c < 13; ++c)
        EXPECT_EQ(C(3 + r, 7 + c).bits(), want[r * 13 + c].bits());

    // Identity type (float accumulates in float): the in-place add path.
    auto Cf = w.alloc_fragment<float>(4, 19);
    auto Pf = w.alloc_fragment<float>(4, 19);
    fill_random(Cf, rng);
    fill_random(Pf, rng);
    std::vector<float> wantf(4 * 19);
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 19; ++c) wantf[r * 19 + c] = Cf(r, c) + Pf(r, c);
    w.add_inplace(Cf, Pf.view());
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 19; ++c) EXPECT_EQ(Cf(r, c), wantf[r * 19 + c]);
  });
}

TEST(DataPlane, StoreGlobalNarrowedWindowMatchesFromAcc) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(13);
  Matrix<tf32_t> dst(10, 12);  // tf32 exercises the vectorized encode_span
  blk.phase([&](Warp& w) {
    auto src = w.alloc_fragment<float>(8, 9);
    fill_random(src, rng);
    w.store_global_narrowed(dst, src, 2, 3, 1, 2, 5, 7);
    for (std::size_t r = 0; r < 5; ++r)
      for (std::size_t c = 0; c < 7; ++c)
        EXPECT_EQ(num_traits<tf32_t>::to_acc(dst(2 + r, 3 + c)),
                  num_traits<tf32_t>::to_acc(num_traits<tf32_t>::from_acc(src(1 + r, 2 + c))));
  });
}

TEST(DataPlane, SmemRoundTripPreservesBitsForRaggedViews) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(17);
  auto tile = blk.smem().alloc<fp16_t>(7, 11);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<fp16_t>(13, 23);
    fill_random(f, rng);
    // An interior (offset, ragged) view: rows are contiguous slices of the
    // fragment, not of the whole allocation.
    w.store_smem(tile, f.view(4, 9, 7, 11));
    auto back = w.alloc_fragment<fp16_t>(7, 11);
    w.load_smem(back, tile);
    for (std::size_t r = 0; r < 7; ++r)
      for (std::size_t c = 0; c < 11; ++c)
        EXPECT_EQ(back(r, c).bits(), f(4 + r, 9 + c).bits());
  });
}

TEST(DataPlane, CopyRegAndGlobalRoundTripRaggedViews) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Rng rng(19);
  Matrix<bf16_t> g(15, 17);
  for (std::size_t r = 0; r < g.rows(); ++r)
    for (std::size_t c = 0; c < g.cols(); ++c)
      g(r, c) = num_traits<bf16_t>::from_acc(static_cast<float>(rng.uniform(-1.0, 1.0)));
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<bf16_t>(6, 7);
    w.load_global(f, g, 3, 5);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 7; ++c) EXPECT_EQ(f(r, c).bits(), g(3 + r, 5 + c).bits());
    auto f2 = w.alloc_fragment<bf16_t>(4, 5);
    w.copy_reg(f2, f.view(1, 1, 4, 5));
    Matrix<bf16_t> out(9, 9);
    w.store_global(out, f2.view(), 2, 2);
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 5; ++c)
        EXPECT_EQ(out(2 + r, 2 + c).bits(), g(3 + 1 + r, 5 + 1 + c).bits());
  });
}

// The arena satellite: steady-state Full-mode simulation must not grow the
// thread's arena — every op marks and rewinds, so after one warm-up pass the
// retained capacity and mapped-chunk count are constant no matter how many
// more ops run (the seed allocated a fresh std::vector per smem store and
// per-op decode temporaries would have shown up here as chunk growth).
TEST(DataPlane, ArenaSteadyStateAcrossFullModeOps) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto tile = blk.smem().alloc<fp16_t>(16, 16);
  Rng rng(23);
  auto run_ops = [&](int reps) {
    blk.phase([&](Warp& w) {
      auto A = w.alloc_fragment<fp16_t>(16, 16);
      auto B = w.alloc_fragment<fp16_t>(16, 16);
      auto C = w.alloc_fragment<float>(16, 16);
      auto P = w.alloc_fragment<fp16_t>(16, 16);
      fill_random(A, rng);
      fill_random(B, rng);
      fill_random(P, rng);
      for (int i = 0; i < reps; ++i) {
        w.store_smem(tile, A.view());
        w.load_smem(B, tile);
        w.mma(C, A.view(), B.view());
        w.add_inplace(P, A.view());
      }
    });
  };
  run_ops(4);  // warm-up: the arena maps whatever steady state needs
  core::Arena& arena = core::Arena::tls();
  EXPECT_EQ(arena.live_bytes(), 0u);  // every op rewound its scope
  const std::size_t capacity = arena.capacity_bytes();
  const std::size_t chunks = arena.chunks_mapped();
  run_ops(200);
  EXPECT_EQ(arena.capacity_bytes(), capacity) << "per-op arena growth detected";
  EXPECT_EQ(arena.chunks_mapped(), chunks) << "per-op chunk mapping detected";
  EXPECT_EQ(arena.live_bytes(), 0u);
}

// Batched counters: per-op adds accumulate warp-locally and publish on
// flush_metrics()/profile/destruction — exactly once.
TEST(DataPlane, WarpCountersFlushOnceWithBatching) {
  obs::ScopedMetricsReset reset;
  const auto dev = tiny_device();
  auto& reg = obs::MetricRegistry::global();
  {
    ThreadBlock blk(dev, 1);
    auto tile = blk.smem().alloc<float>(16, 8);
    Matrix<float> g(16, 8);
    blk.phase([&](Warp& w) {
      auto f = w.alloc_fragment<float>(16, 8);  // 512 B
      w.load_global(f, g, 0, 0);
      w.store_smem(tile, f.view());
      w.load_smem(f, tile);
    });
    // Batched: nothing published yet.
    EXPECT_EQ(reg.counter("sim.smem.bytes_written").value(), 0.0);
    blk.flush_metrics();
    EXPECT_EQ(reg.counter("sim.smem.bytes_written").value(), 512.0);
    EXPECT_EQ(reg.counter("sim.smem.bytes_read").value(), 512.0);
    EXPECT_EQ(reg.counter("sim.gmem.bytes_loaded").value(), 512.0);
    // Idempotent: a second flush with no new ops adds nothing.
    blk.flush_metrics();
    EXPECT_EQ(reg.counter("sim.smem.bytes_written").value(), 512.0);
  }
  // Destruction must not double-publish the already-flushed totals.
  EXPECT_EQ(reg.counter("sim.smem.bytes_written").value(), 512.0);
  EXPECT_EQ(reg.counter("sim.gmem.bytes_loaded").value(), 512.0);
}

}  // namespace
}  // namespace kami::sim
