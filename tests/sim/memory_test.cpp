#include <gtest/gtest.h>

#include "sim/fragment.hpp"
#include "sim/register_file.hpp"
#include "sim/shared_memory.hpp"

namespace kami::sim {
namespace {

// ---------------------------------------------------------------------------
// SharedMemory
// ---------------------------------------------------------------------------

TEST(SharedMemory, AllocWithinCapacity) {
  SharedMemory sm(1024, 128.0, 22.0);
  auto t = sm.alloc<double>(8, 8);  // 512 B
  EXPECT_EQ(t.bytes(), 512u);
  EXPECT_GE(sm.bytes_allocated(), 512u);
}

TEST(SharedMemory, OverflowThrows) {
  SharedMemory sm(1024, 128.0, 22.0);
  (void)sm.alloc<double>(8, 8);
  EXPECT_THROW((void)sm.alloc<double>(10, 10), SharedMemoryOverflow);
}

TEST(SharedMemory, ResetAllowsReuseAndKeepsHighWater) {
  SharedMemory sm(1024, 128.0, 22.0);
  (void)sm.alloc<double>(8, 8);
  sm.reset_allocations();
  EXPECT_EQ(sm.bytes_allocated(), 0u);
  (void)sm.alloc<double>(8, 8);
  EXPECT_GE(sm.high_water_bytes(), 512u);
}

TEST(SharedMemory, DataRoundTrip) {
  SharedMemory sm(1024, 128.0, 22.0);
  auto t = sm.alloc<float>(2, 3);
  const float src[6] = {1, 2, 3, 4, 5, 6};
  sm.write(t, src, 6);
  float dst[6] = {};
  sm.read(t, dst, 6);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(dst[i], src[i]);
}

TEST(SharedMemory, UnwrittenRegionReadsZero) {
  SharedMemory sm(1024, 128.0, 22.0);
  auto t = sm.alloc<float>(1, 4);
  float dst[4] = {9, 9, 9, 9};
  sm.read(t, dst, 4);
  for (float v : dst) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SharedMemory, TransferOccupancyFollowsBandwidthAndTheta) {
  SharedMemory sm(1024, 128.0, 22.0);
  EXPECT_DOUBLE_EQ(sm.transfer_occupancy(256, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(sm.transfer_occupancy(256, 0.5), 4.0);  // conflicts halve B_sm
}

TEST(SharedMemory, RejectsInvalidTheta) {
  SharedMemory sm(1024, 128.0, 22.0);
  EXPECT_THROW((void)sm.transfer_occupancy(1, 0.0), kami::PreconditionError);
  EXPECT_THROW((void)sm.transfer_occupancy(1, 1.5), kami::PreconditionError);
}

// ---------------------------------------------------------------------------
// RegisterFile
// ---------------------------------------------------------------------------

TEST(RegisterFile, AllocateReleaseCycle) {
  RegisterFile rf(100);
  rf.allocate(60);
  EXPECT_EQ(rf.used(), 60u);
  rf.release(60);
  EXPECT_EQ(rf.used(), 0u);
  EXPECT_EQ(rf.high_water(), 60u);
}

TEST(RegisterFile, OverflowThrowsWithoutCorruptingState) {
  RegisterFile rf(100);
  rf.allocate(80);
  EXPECT_THROW(rf.allocate(30), RegisterOverflow);
  EXPECT_EQ(rf.used(), 80u);  // failed allocation does not leak
}

TEST(RegisterFile, HighWaterAsRegsPerThread) {
  RegisterFile rf(255 * 4 * 32);
  rf.allocate(4 * 32 * 10);  // 10 registers per thread worth
  EXPECT_DOUBLE_EQ(rf.high_water_regs_per_thread(32), 10.0);
}

// ---------------------------------------------------------------------------
// Fragment
// ---------------------------------------------------------------------------

TEST(Fragment, AllocatesAndReleasesRegisters) {
  RegisterFile rf(4096);
  {
    Fragment<float> f(rf, 8, 8);
    EXPECT_EQ(rf.used(), 256u);
    f(3, 4) = 1.5f;
    EXPECT_FLOAT_EQ(f(3, 4), 1.5f);
  }
  EXPECT_EQ(rf.used(), 0u);
}

TEST(Fragment, OverflowPropagates) {
  RegisterFile rf(100);
  EXPECT_THROW(Fragment<double> f(rf, 8, 8), RegisterOverflow);
}

TEST(Fragment, MoveTransfersOwnership) {
  RegisterFile rf(4096);
  Fragment<float> a(rf, 4, 4);
  a(0, 0) = 2.0f;
  Fragment<float> b(std::move(a));
  EXPECT_FLOAT_EQ(b(0, 0), 2.0f);
  EXPECT_EQ(rf.used(), 64u);  // exactly one live allocation
}

TEST(Fragment, ViewWindowsAreBoundsChecked) {
  RegisterFile rf(4096);
  Fragment<float> f(rf, 4, 8);
  auto v = f.view(1, 2, 2, 3);
  f(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(v(0, 0), 9.0f);
  EXPECT_THROW((void)f.view(3, 0, 2, 8), kami::PreconditionError);
}

}  // namespace
}  // namespace kami::sim
