#include "sim/bank_conflicts.hpp"

#include <gtest/gtest.h>

namespace kami::sim {
namespace {

const DeviceSpec& nv() { return gh200(); }  // 32 banks x 4 B

TEST(BankConflicts, UnitStrideIsConflictFree) {
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, 1), 1.0);
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 8, 1), 1.0);  // fp64 spans 2 banks
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 2, 1), 1.0);  // fp16 packs 2/bank
}

TEST(BankConflicts, PowerOfTwoStridesSerialize) {
  // 4 B words, stride 32: all 32 lanes hit bank 0 -> 32-way conflict.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, 32), 1.0 / 32.0);
  // Stride 16: lanes alternate between 2 banks -> 16-way.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, 16), 1.0 / 16.0);
  // Stride 2: 2-way.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, 2), 1.0 / 2.0);
}

TEST(BankConflicts, OddStridesAreConflictFree) {
  for (std::size_t stride : {3u, 5u, 7u, 17u, 33u})
    EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, stride), 1.0) << stride;
}

TEST(BankConflicts, ColumnAccessOfPowerOfTwoTileConflicts) {
  // Reading a column of a row-major 32-wide FP32 tile: stride 32 -> 1/32.
  EXPECT_DOUBLE_EQ(column_access_theta(nv(), 4, 32), 1.0 / 32.0);
  // FP16 tile 64 wide: stride 64 halves, two halves share bank words.
  EXPECT_LT(column_access_theta(nv(), 2, 64), 1.0);
}

TEST(BankConflicts, PaddingRestoresFullBandwidth) {
  const std::size_t pad = conflict_free_padding(nv(), 4, 32);
  EXPECT_GT(pad, 0u);
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 4, 32 + pad), 1.0);
  EXPECT_EQ(pad, 1u);  // the classic +1 trick
}

TEST(BankConflicts, IntelHasFewerBanks) {
  const auto& intel = intel_max1100();  // 16 banks
  EXPECT_DOUBLE_EQ(strided_access_theta(intel, 4, 16), 1.0 / 16.0);
  // Stride 32 on 16 banks: 32 distinct words in one bank, ideal 2 cycles.
  EXPECT_DOUBLE_EQ(strided_access_theta(intel, 4, 32), 2.0 / 32.0);
}

TEST(BankConflicts, SubWordTypesShareBankWords) {
  // FP16 at stride 2: consecutive lanes touch consecutive 4 B words -> free.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 2, 2), 1.0);
  // FP16 unit stride: lane pairs broadcast from a shared word -> free.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 2, 1), 1.0);
  // FP16 at stride 64: 32 distinct words all in bank 0 -> 32-way.
  EXPECT_DOUBLE_EQ(strided_access_theta(nv(), 2, 64), 1.0 / 32.0);
}

}  // namespace
}  // namespace kami::sim
