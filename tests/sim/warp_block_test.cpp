#include <gtest/gtest.h>

#include "../testing/test_device.hpp"
#include "sim/block.hpp"

namespace kami::sim {
namespace {

using kami::testing::tiny_device;

TEST(Warp, StoreSmemCostsOccupancyOnly) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);  // 512 B
    w.store_smem(tile, f.view());
  });
  // 512 B / 128 B/cyc = 4 cycles; stores do not stall on L_sm.
  EXPECT_DOUBLE_EQ(blk.cycles(), 4.0);
}

TEST(Warp, LoadSmemAddsLatency) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);
    w.load_smem(f, tile);
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 14.0);  // 4 occupancy + 10 latency
}

TEST(Warp, BankConflictsScaleOccupancy) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);
    w.load_smem(f, tile, /*theta_r=*/0.5);
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 18.0);  // 8 occupancy + 10 latency
}

TEST(Block, ConcurrentReadsSerializeOnThePort) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);
    w.load_smem(f, tile);
  });
  // warp0: port [0,4) -> done 14; warp1: port [4,8) -> done 18.
  EXPECT_DOUBLE_EQ(blk.warp(0).clock(), 14.0);
  EXPECT_DOUBLE_EQ(blk.warp(1).clock(), 18.0);
}

TEST(Block, SyncAlignsClocksAndRecordsWait) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    if (w.id() == 0) {
      auto f = w.alloc_fragment<float>(16, 8);
      w.load_smem(f, tile);  // 14 cycles
    }
  });
  blk.sync();
  EXPECT_DOUBLE_EQ(blk.warp(1).clock(), 14.0);
  EXPECT_DOUBLE_EQ(blk.warp(1).breakdown().sync_wait, 14.0);
}

TEST(Warp, MmaComputesExactProduct) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(2, 3);
    auto B = w.alloc_fragment<float>(3, 2);
    auto C = w.alloc_fragment<float>(2, 2);
    // A = [1 2 3; 4 5 6], B = [7 8; 9 10; 11 12].
    float av = 1.0f;
    for (std::size_t r = 0; r < 2; ++r)
      for (std::size_t c = 0; c < 3; ++c) A(r, c) = av++;
    float bv = 7.0f;
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 2; ++c) B(r, c) = bv++;
    C.fill(1.0f);  // MMA accumulates into C
    w.mma(C, A.view(), B.view());
    EXPECT_FLOAT_EQ(C(0, 0), 59.0f);   // 58 + 1
    EXPECT_FLOAT_EQ(C(0, 1), 65.0f);
    EXPECT_FLOAT_EQ(C(1, 0), 140.0f);  // 139 + 1
    EXPECT_FLOAT_EQ(C(1, 1), 155.0f);
  });
}

TEST(Warp, MmaCostPadsToInstructionShape) {
  const auto dev = tiny_device();  // fp32 shape m16n8k8, O_tc = 32
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(16, 8);
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(16, 8);
    w.mma(C, A.view(), B.view());  // exactly one instruction
  });
  // 2*16*8*8 / 32 = 64 cycles.
  EXPECT_DOUBLE_EQ(blk.cycles(), 64.0);

  ThreadBlock blk2(dev, 1);
  blk2.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(4, 4);
    auto B = w.alloc_fragment<float>(4, 4);
    auto C = w.alloc_fragment<float>(4, 4);
    w.mma(C, A.view(), B.view());  // tiny fragment still issues a full MMA
  });
  EXPECT_DOUBLE_EQ(blk2.cycles(), 64.0);
}

TEST(Block, TensorCoreUnitsShareAcrossWarps) {
  const auto dev = tiny_device();  // 2 tensor cores
  ThreadBlock blk(dev, 4);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(16, 8);
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(16, 8);
    w.mma(C, A.view(), B.view());
  });
  // Warps 0,1 run on the two units [0,64); warps 2,3 queue [64,128).
  EXPECT_DOUBLE_EQ(blk.warp(0).clock(), 64.0);
  EXPECT_DOUBLE_EQ(blk.warp(1).clock(), 64.0);
  EXPECT_DOUBLE_EQ(blk.warp(2).clock(), 128.0);
  EXPECT_DOUBLE_EQ(blk.warp(3).clock(), 128.0);
}

TEST(Warp, MmaEfficiencyStretchesWarpLatencyNotUnitOccupancy) {
  auto dev = tiny_device();
  dev.mma_efficiency = 0.5;
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(16, 8);
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(16, 8);
    w.mma(C, A.view(), B.view());
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 128.0);          // warp sees 64 / 0.5
  EXPECT_DOUBLE_EQ(blk.tc_busy_cycles(), 64.0);   // unit booked at ideal rate
}

TEST(Warp, CopyRegCost) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto a = w.alloc_fragment<float>(16, 8);  // 512 B
    auto b = w.alloc_fragment<float>(16, 8);
    a(5, 5) = 3.0f;
    w.copy_reg(b, a.view());
    EXPECT_FLOAT_EQ(b(5, 5), 3.0f);
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 2.0);  // 1 + 512/512
}

TEST(Warp, GlobalLoadChargesLatencyAndBandwidth) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Matrix<float> src(16, 8);
  src(3, 3) = 5.0f;
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);
    w.load_global(f, src, 0, 0);
    EXPECT_FLOAT_EQ(f(3, 3), 5.0f);
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 132.0);  // 512/16 + 100
}

TEST(Warp, GmemChargingFlagSilencesCost) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  Matrix<float> src(16, 8);
  src(0, 1) = 2.0f;
  blk.phase([&](Warp& w) {
    w.set_gmem_charging(false);
    auto f = w.alloc_fragment<float>(16, 8);
    w.load_global(f, src, 0, 0);
    EXPECT_FLOAT_EQ(f(0, 1), 2.0f);  // data still moves
  });
  EXPECT_DOUBLE_EQ(blk.cycles(), 0.0);
}

TEST(Block, BreakdownCategoriesSumToWarpClock) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto tile = blk.smem().alloc<float>(8, 8);
  Matrix<float> g(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.load_global(f, g, 0, 0);
    w.store_smem(tile, f.view());
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(8, 8);
    w.mma(C, f.view(), B.view());
  });
  blk.sync();
  for (int i = 0; i < 2; ++i) {
    const auto& bd = blk.warp(i).breakdown();
    EXPECT_NEAR(bd.total(), blk.warp(i).clock(), 1e-9);
  }
}

TEST(Block, DeterministicAcrossRuns) {
  const auto dev = tiny_device();
  auto run = [&]() {
    ThreadBlock blk(dev, 4);
    auto tile = blk.smem().alloc<float>(16, 16);
    blk.phase([&](Warp& w) {
      auto f = w.alloc_fragment<float>(16, 16);
      w.store_smem(tile, f.view());
      w.load_smem(f, tile);
      auto B = w.alloc_fragment<float>(16, 8);
      auto C = w.alloc_fragment<float>(16, 8);
      w.mma(C, f.view(0, 0, 16, 16), B.view());
    });
    blk.sync();
    return blk.cycles();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Warp, ScalarFmaUsesVectorPipe) {
  const auto dev = tiny_device();  // 64 vector flops/cycle
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(8, 8);
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(8, 8);
    w.fma_scalar(C, A.view(), B.view());
  });
  // 2*8*8*8 = 1024 flops / 64 = 16 cycles on the vector pipe.
  EXPECT_DOUBLE_EQ(blk.cycles(), 16.0);
  EXPECT_DOUBLE_EQ(blk.vector_busy_cycles(), 16.0);
  EXPECT_DOUBLE_EQ(blk.tc_busy_cycles(), 0.0);
}

TEST(Warp, MmaInnerDimensionMismatchRejected) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  blk.phase([&](Warp& w) {
    auto A = w.alloc_fragment<float>(4, 5);
    auto B = w.alloc_fragment<float>(4, 4);
    auto C = w.alloc_fragment<float>(4, 4);
    EXPECT_THROW(w.mma(C, A.view(), B.view()), kami::PreconditionError);
  });
}

}  // namespace
}  // namespace kami::sim
