#include "sim/resources.hpp"

#include <gtest/gtest.h>

namespace kami::sim {
namespace {

TEST(PortTimeline, SerializesOverlappingRequests) {
  PortTimeline port;
  // Two warps request at t=0: second starts when first finishes.
  EXPECT_DOUBLE_EQ(port.acquire(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(port.acquire(0.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(port.free_at(), 15.0);
}

TEST(PortTimeline, IdlePortStartsImmediately) {
  PortTimeline port;
  port.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(port.acquire(100.0, 1.0), 100.0);  // gap: port is free
}

TEST(PortTimeline, BusyAccountingSumsOccupancy) {
  PortTimeline port;
  port.acquire(0.0, 3.0);
  port.acquire(50.0, 4.0);
  EXPECT_DOUBLE_EQ(port.busy_cycles(), 7.0);
}

TEST(PortTimeline, ResetClears) {
  PortTimeline port;
  port.acquire(0.0, 3.0);
  port.reset();
  EXPECT_DOUBLE_EQ(port.free_at(), 0.0);
  EXPECT_DOUBLE_EQ(port.busy_cycles(), 0.0);
}

TEST(UnitPool, ParallelUnitsDoNotSerialize) {
  UnitPool pool(4);
  // Four simultaneous requests run concurrently on four units.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(pool.acquire(0.0, 8.0), 0.0);
  // The fifth waits for the earliest unit.
  EXPECT_DOUBLE_EQ(pool.acquire(0.0, 8.0), 8.0);
}

TEST(UnitPool, PicksEarliestAvailableUnit) {
  UnitPool pool(2);
  pool.acquire(0.0, 10.0);  // unit 0 busy till 10
  pool.acquire(0.0, 2.0);   // unit 1 busy till 2
  EXPECT_DOUBLE_EQ(pool.acquire(0.0, 1.0), 2.0);  // goes to unit 1
}

TEST(UnitPool, BusySumsAcrossUnits) {
  UnitPool pool(2);
  pool.acquire(0.0, 3.0);
  pool.acquire(0.0, 5.0);
  EXPECT_DOUBLE_EQ(pool.busy_cycles(), 8.0);
}

TEST(UnitPool, RequiresAtLeastOneUnit) {
  EXPECT_THROW(UnitPool pool(0), kami::PreconditionError);
}

TEST(CycleBreakdown, TotalsAndAccumulation) {
  CycleBreakdown a{1.0, 2.0, 3.0, 4.0, 5.0};
  CycleBreakdown b{10.0, 0.0, 0.0, 0.0, 0.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.smem_comm, 11.0);
  EXPECT_DOUBLE_EQ(a.total(), 25.0);
}

}  // namespace
}  // namespace kami::sim
