#include "sim/resources.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace kami::sim {
namespace {

TEST(PortTimeline, SerializesOverlappingRequests) {
  PortTimeline port;
  // Two warps request at t=0: second starts when first finishes.
  EXPECT_DOUBLE_EQ(port.acquire(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(port.acquire(0.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(port.free_at(), 15.0);
}

TEST(PortTimeline, IdlePortStartsImmediately) {
  PortTimeline port;
  port.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(port.acquire(100.0, 1.0), 100.0);  // gap: port is free
}

TEST(PortTimeline, BusyAccountingSumsOccupancy) {
  PortTimeline port;
  port.acquire(0.0, 3.0);
  port.acquire(50.0, 4.0);
  EXPECT_DOUBLE_EQ(port.busy_cycles(), 7.0);
}

TEST(PortTimeline, ResetClears) {
  PortTimeline port;
  port.acquire(0.0, 3.0);
  port.reset();
  EXPECT_DOUBLE_EQ(port.free_at(), 0.0);
  EXPECT_DOUBLE_EQ(port.busy_cycles(), 0.0);
}

TEST(UnitPool, ParallelUnitsDoNotSerialize) {
  UnitPool pool(4);
  // Four simultaneous requests run concurrently on four units.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(pool.acquire(0.0, 8.0), 0.0);
  // The fifth waits for the earliest unit.
  EXPECT_DOUBLE_EQ(pool.acquire(0.0, 8.0), 8.0);
}

TEST(UnitPool, PicksEarliestAvailableUnit) {
  UnitPool pool(2);
  pool.acquire(0.0, 10.0);  // unit 0 busy till 10
  pool.acquire(0.0, 2.0);   // unit 1 busy till 2
  EXPECT_DOUBLE_EQ(pool.acquire(0.0, 1.0), 2.0);  // goes to unit 1
}

TEST(UnitPool, BusySumsAcrossUnits) {
  UnitPool pool(2);
  pool.acquire(0.0, 3.0);
  pool.acquire(0.0, 5.0);
  EXPECT_DOUBLE_EQ(pool.busy_cycles(), 8.0);
}

TEST(UnitPool, RequiresAtLeastOneUnit) {
  EXPECT_THROW(UnitPool pool(0), kami::PreconditionError);
}

// The heap-based earliest-free selection must break ties to the lowest unit
// index, exactly like the seed's strict-< linear scan — profiles depend on
// the reservation order being deterministic and unchanged.
TEST(UnitPoolTieBreak, EqualFreeTimesGoToLowestIndexFirst) {
  UnitPool pool(4);
  EXPECT_EQ(pool.last_acquired_unit(), 4u);  // sentinel before any acquire
  // All units idle at t=0: acquires must walk units 0, 1, 2, 3 in order.
  for (std::size_t want = 0; want < 4; ++want) {
    EXPECT_DOUBLE_EQ(pool.acquire(0.0, 8.0), 0.0);
    EXPECT_EQ(pool.last_acquired_unit(), want);
  }
  // Now every unit frees at 8.0 — the tie repeats at the new time.
  for (std::size_t want = 0; want < 4; ++want) {
    EXPECT_DOUBLE_EQ(pool.acquire(0.0, 1.0), 8.0);
    EXPECT_EQ(pool.last_acquired_unit(), want);
  }
  pool.reset();
  EXPECT_EQ(pool.last_acquired_unit(), 4u);
  pool.acquire(5.0, 1.0);
  EXPECT_EQ(pool.last_acquired_unit(), 0u);
}

// Reference implementation of the seed's O(n) linear min-scan; the heap pool
// must reproduce its start times (and busy total) on arbitrary workloads.
class LinearScanPool {
 public:
  explicit LinearScanPool(std::size_t units) : free_at_(units, 0.0) {}
  Cycles acquire(Cycles t, Cycles occupancy) {
    std::size_t best = 0;
    for (std::size_t u = 1; u < free_at_.size(); ++u)
      if (free_at_[u] < free_at_[best]) best = u;
    const Cycles start = free_at_[best] > t ? free_at_[best] : t;
    free_at_[best] = start + occupancy;
    busy_ += occupancy;
    return start;
  }
  Cycles busy_cycles() const { return busy_; }

 private:
  std::vector<Cycles> free_at_;
  Cycles busy_ = 0.0;
};

TEST(UnitPoolMatchesLinearScan, RandomizedWorkloads) {
  kami::Rng rng(20260808);
  for (const std::size_t units : {1u, 2u, 4u, 7u}) {
    UnitPool pool(units);
    LinearScanPool ref(units);
    Cycles t = 0.0;
    for (int i = 0; i < 2000; ++i) {
      // Mix idle gaps, simultaneous bursts, and ties (integer-quantized
      // occupancies collide often, exercising the tie-break path).
      if (rng.uniform(0.0, 1.0) < 0.3) t += rng.uniform(0.0, 4.0);
      const Cycles occ = rng.uniform(0.0, 1.0) < 0.5
                             ? static_cast<double>(static_cast<int>(rng.uniform(0.0, 4.0)))
                             : rng.uniform(0.0, 6.0);
      ASSERT_DOUBLE_EQ(pool.acquire(t, occ), ref.acquire(t, occ))
          << "units=" << units << " op=" << i;
    }
    EXPECT_DOUBLE_EQ(pool.busy_cycles(), ref.busy_cycles());
  }
}

TEST(CycleBreakdown, TotalsAndAccumulation) {
  CycleBreakdown a{1.0, 2.0, 3.0, 4.0, 5.0};
  CycleBreakdown b{10.0, 0.0, 0.0, 0.0, 0.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.smem_comm, 11.0);
  EXPECT_DOUBLE_EQ(a.total(), 25.0);
}

}  // namespace
}  // namespace kami::sim
