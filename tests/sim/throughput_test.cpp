#include "sim/throughput.hpp"

#include <gtest/gtest.h>

#include "../testing/test_device.hpp"

namespace kami::sim {
namespace {

using kami::testing::tiny_device;

KernelProfile sample_profile() {
  KernelProfile p;
  p.latency = 1000.0;
  p.tc_busy = 400.0;     // over 2 units -> 200/unit
  p.smem_busy = 150.0;
  p.gmem_busy = 50.0;
  p.vector_busy = 10.0;
  p.useful_flops = 1e6;
  p.reg_bytes_per_warp = 8 * 1024;
  p.smem_bytes = 4 * 1024;
  p.num_warps = 4;
  return p;
}

TEST(Throughput, ProfileSnapshotsBlockState) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto tile = blk.smem().alloc<float>(16, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 8);
    w.store_smem(tile, f.view());
  });
  const auto prof = profile_block(blk, 123.0);
  EXPECT_DOUBLE_EQ(prof.useful_flops, 123.0);
  EXPECT_DOUBLE_EQ(prof.smem_busy, 8.0);  // 2 x 512 B / 128
  EXPECT_EQ(prof.num_warps, 2);
  EXPECT_GT(prof.reg_bytes_per_warp, 0u);
}

TEST(Throughput, ResidentBlocksLimitedByRegisters) {
  const auto dev = tiny_device();
  auto prof = sample_profile();
  // Block uses 4 warps x 8 KiB = 32 KiB of the 256 KiB SM file -> 8 blocks;
  // but the 64-warp slot limit with 4 warps also allows 16; regs win.
  EXPECT_EQ(resident_blocks_per_sm(dev, prof), 8);
}

TEST(Throughput, ResidentBlocksLimitedBySmem) {
  const auto dev = tiny_device();  // 64 KiB smem
  auto prof = sample_profile();
  prof.smem_bytes = 40 * 1024;  // only one block fits
  EXPECT_EQ(resident_blocks_per_sm(dev, prof), 1);
}

TEST(Throughput, SteadyIntervalTakesTheBottleneck) {
  const auto dev = tiny_device();
  auto prof = sample_profile();
  // tc: 400/2 = 200; smem 150; gmem 50; latency/resident = 1000/8 = 125.
  EXPECT_DOUBLE_EQ(steady_interval_cycles(dev, prof), 200.0);
  prof.smem_busy = 500.0;
  EXPECT_DOUBLE_EQ(steady_interval_cycles(dev, prof), 500.0);
}

TEST(Throughput, SingleResidentBlockIsLatencyBound) {
  const auto dev = tiny_device();
  auto prof = sample_profile();
  prof.smem_bytes = 40 * 1024;  // resident = 1
  EXPECT_DOUBLE_EQ(steady_interval_cycles(dev, prof), 1000.0);
}

TEST(Throughput, TflopsMatchesHandComputation) {
  const auto dev = tiny_device();  // 1 SM @ 1 GHz
  const auto prof = sample_profile();
  // interval 200 cycles -> per block 200 ns; 10 blocks -> 2000 ns.
  // 10 * 1e6 flops / 2e-6 s = 5e12 flops/s = 5 TFLOPS.
  EXPECT_NEAR(throughput_tflops(dev, prof, 10), 5.0, 1e-9);
}

TEST(Throughput, LatencyTflops) {
  const auto dev = tiny_device();
  const auto prof = sample_profile();
  // 1e6 flops in 1000 cycles @ 1 GHz = 1e6 / 1e-6 s = 1 TFLOPS.
  EXPECT_NEAR(latency_tflops(dev, prof), 1.0, 1e-9);
}

TEST(Throughput, MoreBlocksNeverReduceThroughput) {
  const auto dev = tiny_device();
  const auto prof = sample_profile();
  const double t1 = throughput_tflops(dev, prof, 16);
  const double t2 = throughput_tflops(dev, prof, 16384);
  EXPECT_GE(t2, t1 - 1e-12);
}

}  // namespace
}  // namespace kami::sim
