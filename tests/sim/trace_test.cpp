#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "../testing/test_device.hpp"
#include "sim/block.hpp"

namespace kami::sim {
namespace {

using kami::testing::tiny_device;

TEST(Trace, RecordsEveryChargedOperation) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
    w.load_smem(f, tile);
    auto B = w.alloc_fragment<float>(8, 8);
    auto C = w.alloc_fragment<float>(8, 8);
    w.mma(C, f.view(), B.view());
  });
  blk.sync();
  // 2 warps x (store + load + mma) plus the laggard's sync event.
  EXPECT_GE(trace.size(), 6u);
  EXPECT_EQ(trace.warp_events(0).size() + trace.warp_events(1).size(), trace.size());
}

TEST(Trace, EventTimesAreConsistent) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 4);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(16, 16);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(16, 16);
    w.store_smem(tile, f.view());
    w.load_smem(f, tile);
  });
  blk.sync();
  for (const auto& ev : trace.events()) {
    EXPECT_LE(ev.issue, ev.start) << op_kind_name(ev.kind);
    EXPECT_LE(ev.start, ev.end);
    EXPECT_GE(ev.amount, 0.0);
  }
}

TEST(Trace, SerialPortEventsNeverOverlap) {
  // The shared-memory port is a serial resource: occupancy intervals of
  // smem events must be pairwise disjoint across all warps.
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 4);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(16, 16);
  for (int round = 0; round < 3; ++round) {
    blk.phase([&](Warp& w) {
      auto f = w.alloc_fragment<float>(16, 16);
      w.load_smem(f, tile);
      w.store_smem(tile, f.view());
    });
    blk.sync();
  }
  std::vector<std::pair<Cycles, Cycles>> intervals;
  const double bw = dev.smem_bytes_per_cycle();
  for (const auto& ev : trace.events()) {
    if (ev.kind != OpKind::SmemLoad && ev.kind != OpKind::SmemStore) continue;
    intervals.emplace_back(ev.start, ev.start + ev.amount / bw);
  }
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i)
    EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-9);
}

TEST(Trace, WarpEventsAreIssueOrdered) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 2);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);
  for (int i = 0; i < 4; ++i) {
    blk.phase([&](Warp& w) {
      auto f = w.alloc_fragment<float>(8, 8);
      w.load_smem(f, tile);
    });
    blk.sync();
  }
  for (int wid = 0; wid < 2; ++wid) {
    const auto evs = trace.warp_events(wid);
    for (std::size_t i = 1; i < evs.size(); ++i)
      EXPECT_LE(evs[i - 1].end, evs[i].issue + 1e-9);
  }
}

TEST(Trace, AmountAggregation) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);  // 256 B
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
    w.store_smem(tile, f.view());
    w.load_smem(f, tile);
  });
  EXPECT_DOUBLE_EQ(trace.total_amount(OpKind::SmemStore), 512.0);
  EXPECT_DOUBLE_EQ(trace.total_amount(OpKind::SmemLoad), 256.0);
  EXPECT_DOUBLE_EQ(trace.total_amount(OpKind::Mma), 0.0);
}

TEST(Trace, ChromeJsonIsWellFormedIsh) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  auto& trace = blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
  });
  std::ostringstream os;
  trace.dump_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("smem_store"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, DisabledByDefault) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  EXPECT_EQ(blk.trace(), nullptr);
  auto tile = blk.smem().alloc<float>(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
  });
  EXPECT_EQ(blk.trace(), nullptr);  // no recorder was ever attached
}

TEST(Trace, TakeTraceDetachesRecorder) {
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
  });
  auto trace = blk.take_trace();
  ASSERT_NE(trace, nullptr);
  const auto count = trace->size();
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
  });
  EXPECT_EQ(trace->size(), count);  // detached: no further events
}

TEST(Trace, EnableTraceAfterTakeTraceStartsAFreshRecording) {
  // Regression: enable_trace() used to return the stale recorder after
  // take_trace() detached it, so a re-enabled trace silently saw nothing.
  const auto dev = tiny_device();
  ThreadBlock blk(dev, 1);
  blk.enable_trace();
  auto tile = blk.smem().alloc<float>(8, 8);
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
  });
  auto first = blk.take_trace();
  ASSERT_NE(first, nullptr);
  const auto first_count = first->size();
  EXPECT_GE(first_count, 1u);

  auto& second = blk.enable_trace();
  EXPECT_EQ(second.size(), 0u);  // fresh recorder, not the detached one
  blk.phase([&](Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    w.store_smem(tile, f.view());
    w.load_smem(f, tile);
  });
  EXPECT_GE(second.size(), 2u);              // new events land in the new trace
  EXPECT_EQ(first->size(), first_count);     // the taken trace stays frozen
  EXPECT_EQ(blk.trace(), &second);
}

}  // namespace
}  // namespace kami::sim
