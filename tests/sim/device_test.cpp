#include "sim/device.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace kami::sim {
namespace {

// Table 3 of the paper, row by row.
TEST(Device, Table3Gh200) {
  const auto& d = gh200();
  EXPECT_DOUBLE_EQ(d.boost_clock_ghz, 1.980);
  EXPECT_EQ(d.smem_banks, 32);
  EXPECT_EQ(d.bank_width_bytes, 4);
  EXPECT_EQ(d.num_sms, 132);
  EXPECT_EQ(d.tensor_cores_per_sm, 4);
  EXPECT_DOUBLE_EQ(d.peak_fp16_tflops, 990.0);
  EXPECT_DOUBLE_EQ(d.peak_fp64_tflops, 67.0);
}

TEST(Device, Table3Rtx5090) {
  const auto& d = rtx5090();
  EXPECT_DOUBLE_EQ(d.boost_clock_ghz, 2.655);
  EXPECT_EQ(d.num_sms, 170);
  EXPECT_DOUBLE_EQ(d.peak_fp16_tflops, 462.0);
  EXPECT_FALSE(d.supports(Precision::FP64));  // Table 3: N/A
}

TEST(Device, Table3Amd) {
  const auto& d = amd7900xtx();
  EXPECT_DOUBLE_EQ(d.boost_clock_ghz, 2.498);
  EXPECT_EQ(d.num_sms, 96);
  EXPECT_EQ(d.tensor_cores_per_sm, 2);
  EXPECT_DOUBLE_EQ(d.peak_fp16_tflops, 123.0);
  EXPECT_EQ(d.api, "HIP");
}

TEST(Device, Table3Intel) {
  const auto& d = intel_max1100();
  EXPECT_DOUBLE_EQ(d.boost_clock_ghz, 1.550);
  EXPECT_EQ(d.num_sms, 448);
  EXPECT_EQ(d.tensor_cores_per_sm, 1);
  EXPECT_EQ(d.smem_banks, 16);  // Table 3: 16 x 4 B
  EXPECT_DOUBLE_EQ(d.peak_fp16_tflops, 22.0);
  EXPECT_EQ(d.api, "SYCL");
}

TEST(Device, SmemBandwidthIsBanksTimesWidth) {
  EXPECT_DOUBLE_EQ(gh200().smem_bytes_per_cycle(), 128.0);       // 32 x 4
  EXPECT_DOUBLE_EQ(intel_max1100().smem_bytes_per_cycle(), 64.0);  // 16 x 4
}

TEST(Device, OtcDerivationReproducesPeak) {
  // peak = sms * n_tc * O_tc * clock must hold by construction.
  for (const DeviceSpec* d : {&gh200(), &rtx5090(), &amd7900xtx(), &intel_max1100()}) {
    const double otc = d->ops_per_cycle_per_tc(Precision::FP16);
    const double peak = static_cast<double>(d->num_sms) *
                        static_cast<double>(d->tensor_cores_per_sm) * otc *
                        d->boost_clock_ghz * 1e9 / 1e12;
    EXPECT_NEAR(peak, d->peak_fp16_tflops, 1e-9) << d->name;
  }
}

TEST(Device, UnsupportedPrecisionThrows) {
  EXPECT_THROW((void)rtx5090().ops_per_cycle_per_tc(Precision::FP64),
               kami::PreconditionError);
  EXPECT_THROW((void)amd7900xtx().ops_per_cycle_per_tc(Precision::FP8E4M3),
               kami::PreconditionError);
}

// Table 4: instruction shapes.
TEST(Device, MmaShapesMatchTable4) {
  const auto fp64 = gh200().mma_shape(Precision::FP64);
  EXPECT_EQ(fp64.m, 16);
  EXPECT_EQ(fp64.n, 8);
  EXPECT_EQ(fp64.k, 8);
  const auto fp16 = gh200().mma_shape(Precision::FP16);
  EXPECT_EQ(fp16.k, 16);
  const auto amd = amd7900xtx().mma_shape(Precision::FP16);
  EXPECT_EQ(amd.m, 16);
  EXPECT_EQ(amd.n, 16);
  EXPECT_EQ(amd.k, 16);
  const auto intel = intel_max1100().mma_shape(Precision::FP16);
  EXPECT_EQ(intel.n, 16);
}

TEST(Device, RegisterFilePerWarp) {
  // 255 regs x 4 B x 32 threads (§4.7's budget arithmetic).
  EXPECT_EQ(gh200().reg_bytes_per_warp(), 255u * 4u * 32u);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("GH200").name, "GH200");
  EXPECT_EQ(device_by_name("Max 1100").vendor, "Intel");
  EXPECT_THROW((void)device_by_name("H100"), kami::PreconditionError);
}

// validate_device: the admission gate FleetServer and the serving layer run
// every spec through. A zeroed or negative field must be refused with a
// typed PreconditionError naming the field — not surface later as a
// divide-by-zero or NaN latency deep inside the throughput conversion.
TEST(DeviceValidation, Table3SpecsAllPass) {
  for (const DeviceSpec* d : {&gh200(), &rtx5090(), &amd7900xtx(), &intel_max1100()})
    EXPECT_NO_THROW(validate_device(*d)) << d->name;
}

TEST(DeviceValidation, BadFieldsAreRefusedNamingTheField) {
  const auto expect_names = [](DeviceSpec d, const char* field) {
    try {
      validate_device(d);
      FAIL() << "expected PreconditionError naming " << field;
    } catch (const kami::PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  DeviceSpec d = gh200();
  d.num_sms = 0;
  expect_names(d, "num_sms");
  d = gh200();
  d.boost_clock_ghz = -1.0;
  expect_names(d, "boost_clock_ghz");
  d = gh200();
  d.bank_width_bytes = 0;
  expect_names(d, "bank_width_bytes");
  d = gh200();
  d.smem_latency_cycles = -22.0;  // latencies may be zero, never negative
  expect_names(d, "smem_latency_cycles");
  d = gh200();
  d.mma_efficiency = 1.5;  // an efficiency above 1 would "beat" peak
  expect_names(d, "mma_efficiency");
  d = gh200();
  d.peak_fp64_tflops = d.peak_fp32_tflops = d.peak_fp16_tflops = d.peak_fp8_tflops = 0.0;
  expect_names(d, "peak_*_tflops");  // a device must support something
  d = gh200();
  d.name.clear();
  EXPECT_THROW(validate_device(d), kami::PreconditionError);
}

TEST(Device, WorkedExampleConstants) {
  // §4.3's example assumes L_sm = 22 and B_sm = 128 on NVIDIA hardware.
  EXPECT_DOUBLE_EQ(gh200().smem_latency_cycles, 22.0);
  EXPECT_DOUBLE_EQ(gh200().smem_bytes_per_cycle(), 128.0);
}

}  // namespace
}  // namespace kami::sim
