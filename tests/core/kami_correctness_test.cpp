// Numerical correctness of KAMI-1D/2D/3D against the reference rounding
// model. 1D and 2D cover k in sequential stage order and must match the
// reference bit-for-bit; 3D re-associates the reduction across layers and is
// compared with a precision-dependent tolerance.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/reference.hpp"
#include "core/kami.hpp"

namespace kami {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

template <Scalar T>
void expect_bitwise(Algo algo, std::size_t m, std::size_t n, std::size_t k,
                    const GemmOptions& opt = {}) {
  Rng rng(m * 1000003 + n * 1009 + k);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  const auto r = gemm(algo, dev(), A, B, opt);
  const auto ref = baselines::reference_gemm(A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, ref), 0.0)
      << algo_name(algo) << " m=" << m << " n=" << n << " k=" << k;
}

template <Scalar T>
void expect_close(Algo algo, std::size_t m, std::size_t n, std::size_t k, double rel_tol,
                  const GemmOptions& opt = {}) {
  Rng rng(m * 7919 + n * 104729 + k);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  const auto r = gemm(algo, dev(), A, B, opt);
  const auto ref = baselines::reference_gemm_fp64(A, B);
  // Scale: |C(i,j)| <= k for inputs in [-1, 1).
  const double scale = static_cast<double>(k);
  EXPECT_LE(max_abs_diff(r.C, ref), rel_tol * scale)
      << algo_name(algo) << " m=" << m << " n=" << n << " k=" << k;
}

// ---------------------------------------------------------------------------
// Square sweeps (the paper's Fig 8 sizes)
// ---------------------------------------------------------------------------

class SquareSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SquareSizes, OneDFp16MatchesReferenceBitwise) {
  expect_bitwise<fp16_t>(Algo::OneD, GetParam(), GetParam(), GetParam());
}

TEST_P(SquareSizes, TwoDFp16MatchesReferenceBitwise) {
  expect_bitwise<fp16_t>(Algo::TwoD, GetParam(), GetParam(), GetParam());
}

TEST_P(SquareSizes, ThreeDFp16CloseToReference) {
  expect_close<fp16_t>(Algo::ThreeD, GetParam(), GetParam(), GetParam(), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Fig8Orders, SquareSizes,
                         ::testing::Values(16, 32, 48, 64, 96, 128, 192));

// FP64's Fig 8(a) sweep stops at order 128 (§5.1); at 128 the wide elements
// force heavy spilling (1D/2D) and KAMI-3D falls back to n-chunked output.
class SquareSizesFp64 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SquareSizesFp64, OneDFp64MatchesReferenceBitwise) {
  expect_bitwise<double>(Algo::OneD, GetParam(), GetParam(), GetParam());
}

TEST_P(SquareSizesFp64, TwoDFp64MatchesReferenceBitwise) {
  expect_bitwise<double>(Algo::TwoD, GetParam(), GetParam(), GetParam());
}

TEST_P(SquareSizesFp64, ThreeDFp64CloseToReference) {
  if (GetParam() >= 128) {
    // 3*128^2 FP64 operands exceed GH200's combined on-chip capacity in the
    // 3D layout (A + B spills alone are 256 KiB vs 227 KiB of shared
    // memory); the planner reports that honestly. See DESIGN.md.
    EXPECT_THROW(expect_close<double>(Algo::ThreeD, 128, 128, 128, 1e-12),
                 sim::RegisterOverflow);
    return;
  }
  expect_close<double>(Algo::ThreeD, GetParam(), GetParam(), GetParam(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fig8aOrders, SquareSizesFp64,
                         ::testing::Values(16, 32, 64, 128));

// ---------------------------------------------------------------------------
// Other precisions (TF32, FP8, BF16, FP32)
// ---------------------------------------------------------------------------

class PrecisionSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrecisionSizes, OneDTf32Bitwise) {
  expect_bitwise<tf32_t>(Algo::OneD, GetParam(), GetParam(), GetParam());
}

TEST_P(PrecisionSizes, OneDFp8Bitwise) {
  expect_bitwise<fp8_e4m3_t>(Algo::OneD, GetParam(), GetParam(), GetParam());
}

TEST_P(PrecisionSizes, OneDBf16Bitwise) {
  expect_bitwise<bf16_t>(Algo::OneD, GetParam(), GetParam(), GetParam());
}

TEST_P(PrecisionSizes, TwoDTf32Bitwise) {
  expect_bitwise<tf32_t>(Algo::TwoD, GetParam(), GetParam(), GetParam());
}

TEST_P(PrecisionSizes, ThreeDFp8Close) {
  expect_close<fp8_e4m3_t>(Algo::ThreeD, GetParam(), GetParam(), GetParam(), 0.08);
}

INSTANTIATE_TEST_SUITE_P(SmallOrders, PrecisionSizes, ::testing::Values(16, 32, 64));

// ---------------------------------------------------------------------------
// Rectangular and low-rank shapes
// ---------------------------------------------------------------------------

struct Shape {
  std::size_t m, n, k;
};

class RectShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(RectShapes, OneDFp16Bitwise) {
  const auto [m, n, k] = GetParam();
  expect_bitwise<fp16_t>(Algo::OneD, m, n, k);
}

TEST_P(RectShapes, TwoDFp16Bitwise) {
  const auto [m, n, k] = GetParam();
  expect_bitwise<fp16_t>(Algo::TwoD, m, n, k);
}

TEST_P(RectShapes, ThreeDFp16Close) {
  const auto [m, n, k] = GetParam();
  expect_close<fp16_t>(Algo::ThreeD, m, n, k, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(LowRankAndTall, RectShapes,
                         ::testing::Values(Shape{64, 64, 16},   // low-rank k=16
                                           Shape{128, 128, 32},  // low-rank k=32
                                           Shape{32, 128, 64},   // wide
                                           Shape{128, 32, 64},   // tall
                                           Shape{16, 192, 32},
                                           Shape{96, 48, 96}));

// ---------------------------------------------------------------------------
// Spilling configurations (§4.7) must not change results
// ---------------------------------------------------------------------------

class SpillRatios : public ::testing::TestWithParam<double> {};

TEST_P(SpillRatios, OneDResultsIndependentOfRatio) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = GetParam();
  expect_bitwise<fp16_t>(Algo::OneD, 64, 64, 64, opt);
}

TEST_P(SpillRatios, TwoDResultsIndependentOfRatio) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = GetParam();
  expect_bitwise<fp16_t>(Algo::TwoD, 64, 64, 64, opt);
}

TEST_P(SpillRatios, ThreeDResultsIndependentOfRatio) {
  GemmOptions opt;
  opt.warps = 8;
  opt.smem_ratio = GetParam();
  expect_close<fp16_t>(Algo::ThreeD, 64, 64, 64, 1e-2, opt);
}

INSTANTIATE_TEST_SUITE_P(Fig10Ratios, SpillRatios, ::testing::Values(0.0, 0.25, 0.5, 0.75));

// ---------------------------------------------------------------------------
// Warp-count variants
// ---------------------------------------------------------------------------

TEST(KamiWarpCounts, OneDWithMoreWarps) {
  for (int p : {2, 4, 8, 16}) {
    GemmOptions opt;
    opt.warps = p;
    expect_bitwise<fp16_t>(Algo::OneD, 64, 64, 64, opt);
  }
}

TEST(KamiWarpCounts, TwoDWithSixteenWarps) {
  GemmOptions opt;
  opt.warps = 16;
  expect_bitwise<fp16_t>(Algo::TwoD, 64, 64, 64, opt);
}

TEST(KamiChunked, ThreeDFp16Order192UsesNChunkFallback) {
  // Without chunking, the 96x96 FP32 accumulator block (36.8 KiB) exceeds
  // one warp's register file; the planner's n-chunked plan makes 3D at
  // order 192 feasible (Fig 8(b)'s largest FP16 size).
  expect_close<fp16_t>(Algo::ThreeD, 192, 192, 192, 1e-2);
}

TEST(KamiWarpCounts, ThreeDWithTwentySevenWarps) {
  GemmOptions opt;
  opt.warps = 27;
  expect_close<fp16_t>(Algo::ThreeD, 108, 108, 108, 1e-2, opt);
}

// ---------------------------------------------------------------------------
// Charged-global-I/O mode changes cost, never values
// ---------------------------------------------------------------------------

TEST(KamiIo, ChargedIoSameValuesMoreCycles) {
  Rng rng(77);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions resident;
  GemmOptions charged;
  charged.charge_global_io = true;
  const auto r0 = gemm(Algo::OneD, dev(), A, B, resident);
  const auto r1 = gemm(Algo::OneD, dev(), A, B, charged);
  EXPECT_DOUBLE_EQ(max_abs_diff(r0.C, r1.C), 0.0);
  EXPECT_GT(r1.profile.latency, r0.profile.latency);
  EXPECT_GT(r1.profile.gmem_busy, 0.0);
  EXPECT_DOUBLE_EQ(r0.profile.gmem_busy, 0.0);
}

// ---------------------------------------------------------------------------
// API validation
// ---------------------------------------------------------------------------

TEST(KamiApi, MismatchedInnerDimensionRejected) {
  Rng rng(1);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(16, 32, rng);
  EXPECT_THROW((void)gemm(Algo::OneD, dev(), A, B), PreconditionError);
}

TEST(KamiApi, ReportsChosenPlan) {
  Rng rng(2);
  const auto A = random_matrix<fp16_t>(128, 128, rng);
  const auto B = random_matrix<fp16_t>(128, 128, rng);
  const auto r = gemm(Algo::OneD, dev(), A, B);
  EXPECT_EQ(r.warps, 4);
  EXPECT_GT(r.smem_ratio, 0.0);  // order 128 must spill (§4.7)
  EXPECT_GT(r.profile.latency, 0.0);
  EXPECT_GT(r.profile.tc_busy, 0.0);
}

}  // namespace
}  // namespace kami
