// The three-tier fast path (cache -> calibrated formula -> simulate), its
// never-simulates contract for estimate_plan, and the model.* accounting.
#include "core/analytic_planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/profile_cache.hpp"
#include "obs/metrics.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

/// Warm predictor calibration from a few neighboring shapes.
void calibrate(ProfileCache& cache, model::Predictor& pred) {
  for (const std::size_t s : {32u, 48u, 64u})
    (void)timing_profile<fp16_t>(cache, Algo::OneD, dev(), s, s, s);
  ASSERT_GE(calibrate_from_cache(pred, cache), 3u);
}

TEST(AnalyticPlanner, ColdStateIsUnplannedAndNeverSimulates) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  const model::Predictor pred;
  const PlanEstimate est = estimate_plan(cache, pred, Algo::OneD, dev(),
                                         Precision::FP16, 64, 64, 64, {});
  EXPECT_EQ(est.source, PlanSource::Unplanned);
  EXPECT_FALSE(est.profile.has_value());
  EXPECT_EQ(cache.size(), 0u);  // the contract: estimate_plan never simulates
  EXPECT_FALSE(est.prediction.confident);
  // Even untrusted, the estimate is the raw closed form, not garbage.
  EXPECT_DOUBLE_EQ(est.cycles, est.prediction.analytic_cycles);
  EXPECT_GT(est.cycles, 0.0);
  EXPECT_GT(est.plan.p, 0);
}

TEST(AnalyticPlanner, CacheHitIsExactAndCounted) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  const model::Predictor pred;
  const CachedProfile truth =
      timing_profile<fp16_t>(cache, Algo::OneD, dev(), 64, 64, 64);
  const PlanEstimate est = estimate_plan(cache, pred, Algo::OneD, dev(),
                                         Precision::FP16, 64, 64, 64, {});
  EXPECT_EQ(est.source, PlanSource::Cache);
  ASSERT_TRUE(est.profile.has_value());
  EXPECT_DOUBLE_EQ(est.cycles, truth.profile.latency);
  EXPECT_EQ(counter("model.cache_hits"), 1.0);
}

TEST(AnalyticPlanner, CalibratedPredictionIsAnalyticAndWithinBand) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  model::Predictor pred;
  calibrate(cache, pred);

  // 96 was not simulated: the answer must come from the corrected formula.
  const PlanEstimate est = estimate_plan(cache, pred, Algo::OneD, dev(),
                                         Precision::FP16, 96, 96, 96, {});
  ASSERT_EQ(est.source, PlanSource::Analytic);
  EXPECT_EQ(counter("model.predictions"), 1.0);
  EXPECT_TRUE(est.prediction.confident);

  // The calibrated band is a real promise: the simulator must land inside it.
  ProfileCache fresh(16);
  const double actual =
      timing_profile<fp16_t>(fresh, Algo::OneD, dev(), 96, 96, 96).profile.latency;
  EXPECT_NO_THROW(model::Predictor::require_within_band(est.prediction, actual,
                                                        pred.config(), "planner test"));
  EXPECT_LE(std::abs(actual - est.cycles) / actual, est.prediction.rel_band);
}

TEST(AnalyticPlanner, PlanCyclesFallsBackOnceThenServesFromCache) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  model::Predictor pred;
  const PlanEstimate cold =
      plan_cycles<fp16_t>(cache, pred, Algo::OneD, dev(), 64, 64, 64);
  EXPECT_EQ(cold.source, PlanSource::Simulated);
  ASSERT_TRUE(cold.profile.has_value());
  EXPECT_EQ(counter("model.fallbacks"), 1.0);
  EXPECT_EQ(cache.size(), 1u);            // the fallback warmed the cache
  EXPECT_EQ(pred.observation_count(), 1u);  // ... and fed the predictor

  const PlanEstimate warm =
      plan_cycles<fp16_t>(cache, pred, Algo::OneD, dev(), 64, 64, 64);
  EXPECT_EQ(warm.source, PlanSource::Cache);
  EXPECT_DOUBLE_EQ(warm.cycles, cold.cycles);
  EXPECT_EQ(counter("model.fallbacks"), 1.0);  // no second simulation
}

TEST(AnalyticPlanner, PredictedTflopsRanksLikeSimulation) {
  ProfileCache cache(16);
  model::Predictor pred;
  calibrate(cache, pred);
  const GemmOptions opt;
  const auto predicted = [&](std::size_t s) {
    const Plan plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, s, s, s, opt);
    const model::Prediction pr =
        pred.predict(dev(), Algo::OneD, Precision::FP16, s, s, s, plan.p,
                     predict_options(opt));
    return predicted_tflops(dev(), Precision::FP16, plan, s, s, s, pr, opt, 16384);
  };
  const auto simulated = [&](std::size_t s) {
    ProfileCache fresh(16);
    return sim::throughput_tflops(
        dev(), timing_profile<fp16_t>(fresh, Algo::OneD, dev(), s, s, s).profile,
        16384);
  };
  // Absolute agreement is the predictor's band; what the autotuner needs is
  // the *ordering* on the shared scale.
  EXPECT_GT(predicted(96), 0.0);
  EXPECT_EQ(predicted(96) > predicted(32), simulated(96) > simulated(32));
}

TEST(AnalyticPlanner, ObservationRoundTripsThroughCacheKey) {
  ProfileCache cache(16);
  GemmOptions opt;
  opt.charge_global_io = true;
  opt.theta_r = 0.5;
  (void)timing_profile<fp16_t>(cache, Algo::TwoD, dev(), 64, 64, 64, opt);
  const auto snap = cache.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const model::Observation o = observation_from(snap[0].first, snap[0].second);
  EXPECT_EQ(o.device, dev().name);
  EXPECT_EQ(o.algo, Algo::TwoD);
  EXPECT_EQ(o.p, snap[0].second.warps);
  EXPECT_TRUE(o.options.charge_global_io);
  EXPECT_DOUBLE_EQ(o.options.theta_r, 0.5);
  EXPECT_DOUBLE_EQ(o.simulated_cycles, snap[0].second.profile.latency);
}

}  // namespace
}  // namespace kami::core
