// Cycle-accounting properties of the KAMI kernels: determinism, agreement
// with the Section 4 analytic model, and the Fig 10 spill trade-off.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "core/kami.hpp"
#include "model/cost_model.hpp"

namespace kami {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

template <Scalar T>
GemmResult<T> run(Algo algo, std::size_t n, const GemmOptions& opt = {}) {
  Rng rng(n * 31 + static_cast<std::size_t>(algo));
  const auto A = random_matrix<T>(n, n, rng);
  const auto B = random_matrix<T>(n, n, rng);
  return gemm(algo, dev(), A, B, opt);
}

TEST(KamiCost, DeterministicCycleCounts) {
  for (Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    const auto a = run<fp16_t>(algo, 64);
    const auto b = run<fp16_t>(algo, 64);
    EXPECT_DOUBLE_EQ(a.profile.latency, b.profile.latency) << algo_name(algo);
    EXPECT_DOUBLE_EQ(a.profile.smem_busy, b.profile.smem_busy);
    EXPECT_DOUBLE_EQ(a.profile.tc_busy, b.profile.tc_busy);
  }
}

// 1D, 64^3 FP16, p = 4, no spill: every stage is 1 write + 3 serialized
// reads of a 2 KiB B-slice. Port occupancy = V_cm aggregate / B_sm plus the
// per-transaction instruction overhead:
//   bytes: write 4 x 2 KiB + read 12 x 2 KiB = 32 KiB -> 256 cycles @128 B/c
//   transactions: 16 x 12 cycles = 192
TEST(KamiCost, OneDSmemOccupancyMatchesHandModel) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  const auto r = run<fp16_t>(Algo::OneD, 64, opt);
  EXPECT_NEAR(r.profile.smem_busy, 256.0 + 16.0 * 12.0, 1e-9);
}

// The aggregate data volume on the port equals the model's total:
// V_write + V_read = kn*se + (p-1)*kn*se. With the fixed 16-wide stripes,
// order 32 has 2 broadcast stages (8 transactions) and order 64 has 4 (16).
TEST(KamiCost, OneDVolumeScalesWithN) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  const auto r64 = run<fp16_t>(Algo::OneD, 64, opt);
  const auto r32 = run<fp16_t>(Algo::OneD, 32, opt);
  EXPECT_NEAR(r64.profile.smem_busy - 16.0 * 12.0,
              4.0 * (r32.profile.smem_busy - 8.0 * 12.0), 1e-9);
}

TEST(KamiCost, TensorCoreBusyMatchesFlops) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  const auto r = run<fp16_t>(Algo::OneD, 64, opt);
  // No padding at 64: issued flops = 2*64^3; units booked at the ideal rate.
  const double otc = dev().ops_per_cycle_per_tc(Precision::FP16);
  EXPECT_NEAR(r.profile.tc_busy, 2.0 * 64 * 64 * 64 / otc, 1e-9);
}

TEST(KamiCost, SpillingTradesRegistersForSmemTraffic) {
  GemmOptions none;
  none.warps = 4;
  none.smem_ratio = 0.0;
  GemmOptions heavy;
  heavy.warps = 4;
  heavy.smem_ratio = 0.75;
  const auto r0 = run<fp16_t>(Algo::OneD, 64, none);
  const auto r3 = run<fp16_t>(Algo::OneD, 64, heavy);
  EXPECT_LT(r3.profile.reg_bytes_per_warp, r0.profile.reg_bytes_per_warp);
  EXPECT_GT(r3.profile.smem_busy, r0.profile.smem_busy);
  EXPECT_GT(r3.profile.smem_bytes, r0.profile.smem_bytes);
}

TEST(KamiCost, LatencyEqualsBreakdownTotal) {
  for (Algo algo : {Algo::OneD, Algo::TwoD}) {
    const auto r = run<fp16_t>(algo, 64);
    const auto& bd = r.profile.mean_breakdown;
    // Per-warp category sums average to the block latency (every warp ends
    // at the same barrier).
    EXPECT_NEAR(bd.total(), r.profile.latency, 1e-6) << algo_name(algo);
  }
}

TEST(KamiCost, ChargedIoGmemTrafficMatchesFootprint) {
  GemmOptions opt;
  opt.warps = 4;  // FP64 at 64 slightly overflows at ratio 0; let it spill
  opt.charge_global_io = true;
  const auto r = run<double>(Algo::OneD, 64, opt);
  // A + B at 8 B plus the C writeback at 8 B: 3 * 64^2 * 8 bytes.
  const double bytes = 3.0 * 64 * 64 * 8;
  EXPECT_NEAR(r.profile.gmem_busy, bytes / dev().gmem_bytes_per_cycle_per_sm, 1e-6);
}

TEST(KamiCost, ModelTracksSimulatedCommunication) {
  // The analytic comm term and the simulated smem occupancy agree within
  // the transaction-overhead margin for all three algorithms (Fig 15).
  const std::size_t n = 64;
  auto params = model::Params::from_device(dev(), Precision::FP16, n, n, n, 4);
  GemmOptions opt;
  opt.smem_ratio = 0.0;

  opt.warps = 4;
  const auto r1 = run<fp16_t>(Algo::OneD, n, opt);
  const double m1 = model::cost_1d(params).comm_cycles - params.L_sm * 4;
  EXPECT_NEAR(r1.profile.smem_busy - m1, 192.0, 1e-6);  // 16 transactions

  const auto r2 = run<fp16_t>(Algo::TwoD, n, opt);
  const double m2 = model::cost_2d(params).comm_cycles - params.L_sm * 2;
  EXPECT_NEAR(r2.profile.smem_busy - m2, 32.0 * 12.0, 1e-6);  // 32 transactions

  params.p = 8;
  opt.warps = 8;
  const auto r3 = run<fp16_t>(Algo::ThreeD, n, opt);
  const double m3 = model::cost_3d(params).comm_cycles - params.L_sm * 2;
  // 3D adds the inter-layer reduction (mn * 4 B at c-1 = 1 round, written
  // and read once) on top of the A/B broadcast volume.
  const double reduction_bytes = 2.0 * 64 * 64 * 4;
  EXPECT_GT(r3.profile.smem_busy, m3);
  EXPECT_NEAR(r3.profile.smem_busy,
              m3 + reduction_bytes / 128.0 + 48.0 * 12.0, 1e-6);
}

TEST(KamiCost, ProfileReportsSmemFootprint) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  const auto r = run<fp16_t>(Algo::OneD, 64, opt);
  // §5.6.1: KAMI uses only a few KB of shared memory (the broadcast buffer).
  EXPECT_LE(r.profile.smem_bytes, 8u * 1024u);
  EXPECT_GT(r.profile.smem_bytes, 0u);
}

}  // namespace
}  // namespace kami
