#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "sim/register_file.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Planner, SmallSizesNeedNoSpill) {
  for (std::size_t n : {16u, 32u, 64u}) {
    const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, n, n, n, {});
    EXPECT_DOUBLE_EQ(plan.smem_ratio, 0.0) << n;
    EXPECT_EQ(plan.p, 4) << n;
  }
}

TEST(Planner, Order128Fp16RequiresSpilling) {
  // §4.7 / Fig 10: at order 128 registers alone cannot hold A, B, C.
  const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, 128, 128, 128, {});
  EXPECT_EQ(plan.p, 4);
  EXPECT_GT(plan.smem_ratio, 0.0);
  EXPECT_LE(plan.reg_demand_bytes, dev().reg_bytes_per_warp());
}

TEST(Planner, ExplicitInfeasibleRatioThrows) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;  // order 128 FP16 cannot fit registers alone
  EXPECT_THROW((void)plan_gemm(Algo::OneD, dev(), Precision::FP16, 128, 128, 128, opt),
               sim::RegisterOverflow);
}

TEST(Planner, Order192EscalatesWarpCount) {
  // C alone (48x192 FP32 accum) exceeds one warp's file at p = 4.
  const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, 192, 192, 192, {});
  EXPECT_GT(plan.p, 4);
}

TEST(Planner, Fp64UsesWiderElements) {
  const auto h = plan_gemm(Algo::OneD, dev(), Precision::FP16, 64, 64, 64, {});
  const auto d = plan_gemm(Algo::OneD, dev(), Precision::FP64, 64, 64, 64, {});
  EXPECT_GT(d.reg_demand_bytes, h.reg_demand_bytes);
}

TEST(Planner, TwoDChoosesPerfectSquare) {
  const auto plan = plan_gemm(Algo::TwoD, dev(), Precision::FP16, 64, 64, 64, {});
  EXPECT_EQ(plan.p, 4);
  EXPECT_EQ(plan.grid, 2);
}

TEST(Planner, ThreeDChoosesPerfectCube) {
  const auto plan = plan_gemm(Algo::ThreeD, dev(), Precision::FP16, 64, 64, 64, {});
  EXPECT_EQ(plan.p, 8);
  EXPECT_EQ(plan.grid, 2);
}

TEST(Planner, RespectsExplicitWarpCount) {
  GemmOptions opt;
  opt.warps = 8;
  const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, 64, 64, 64, opt);
  EXPECT_EQ(plan.p, 8);
}

TEST(Planner, IndivisibleShapeRejected) {
  GemmOptions opt;
  opt.warps = 4;
  EXPECT_THROW((void)plan_gemm(Algo::OneD, dev(), Precision::FP16, 30, 30, 30, opt),
               PreconditionError);
}

TEST(Planner, UnsupportedPrecisionRejected) {
  EXPECT_THROW(
      (void)plan_gemm(Algo::OneD, sim::rtx5090(), Precision::FP64, 64, 64, 64, {}),
      PreconditionError);
}

TEST(Planner, DemandIncludesAccumulatorAtWideWidth) {
  const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, 64, 64, 64, {});
  // A 2 KB + B 2 KB + C 4 KB + BRecv slice (16x64x2 = 2 KB) = 10 KB.
  EXPECT_EQ(plan.reg_demand_bytes, 10u * 1024u);
}

TEST(Planner, SliceWidthDividesK) {
  for (std::size_t n : {16u, 48u, 96u, 192u}) {
    const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, n, n, n, {});
    EXPECT_EQ(n % plan.slice_w, 0u) << n;
    EXPECT_LE(plan.slice_w, 16u);
  }
}

TEST(Planner, OneDSupportsThinK) {
  // Low-rank shapes (§5.3): k = 16 with any warp count that divides m.
  const auto plan = plan_gemm(Algo::OneD, dev(), Precision::FP16, 128, 128, 16, {});
  EXPECT_GE(plan.p, 4);
  EXPECT_EQ(plan.slice_w, 16u);
}

}  // namespace
}  // namespace kami::core
