// Degenerate-shape contract (m, n, or k = 0; empty batches): every execution
// mode must either throw the same typed error or return the same well-defined
// empty result — never crash, and never disagree across modes.
#include <gtest/gtest.h>

#include <string>

#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/kami.hpp"
#include "util/rng.hpp"

namespace kami {
namespace {

constexpr sim::ExecMode kModes[] = {sim::ExecMode::Full, sim::ExecMode::TimingOnly,
                                    sim::ExecMode::NumericsOnly};
constexpr Algo kAlgos[] = {Algo::OneD, Algo::TwoD, Algo::ThreeD};

TEST(DegenerateShapes, ZeroDimensionsRejectTypedInEveryModeAndAlgo) {
  const auto& dev = sim::gh200();
  const struct { std::size_t m, n, k; } shapes[] = {{0, 32, 32}, {32, 0, 32},
                                                    {32, 32, 0}, {0, 0, 0}};
  for (const auto& s : shapes) {
    const Matrix<fp16_t> A(s.m, s.k), B(s.k, s.n);
    for (const Algo algo : kAlgos) {
      std::string first_message;
      for (const sim::ExecMode mode : kModes) {
        GemmOptions opt;
        opt.mode = mode;
        try {
          (void)gemm(algo, dev, A, B, opt);
          FAIL() << "zero-dimension GEMM must throw (algo " << algo_name(algo)
                 << ", mode " << sim::exec_mode_name(mode) << ")";
        } catch (const PreconditionError& e) {
          // The typed error names the offending shape...
          const std::string what = e.what();
          EXPECT_NE(what.find("m=" + std::to_string(s.m)), std::string::npos) << what;
          // ...and is identical across execution modes (feasibility is
          // mode-independent).
          if (first_message.empty()) first_message = what;
          else EXPECT_EQ(what, first_message);
        }
      }
    }
  }
}

TEST(DegenerateShapes, EmptyBatchIsAWellDefinedNoOpInEveryMode) {
  const auto& dev = sim::gh200();
  for (const sim::ExecMode mode : kModes) {
    GemmOptions opt;
    opt.mode = mode;
    const std::vector<Matrix<fp16_t>> empty;
    const auto r = core::kami_batched_gemm<fp16_t>(dev, empty, empty, Algo::OneD, opt);
    EXPECT_TRUE(r.C.empty());
    EXPECT_EQ(r.tflops, 0.0);
    EXPECT_EQ(r.seconds, core::kKamiBatchSetupSeconds);  // setup cost only
  }
}

TEST(DegenerateShapes, StridedBatchedRejectsZeroBatchWithShapeContext) {
  const Matrix<fp16_t> Astack(64, 32), Bstack(64, 32);
  try {
    (void)core::kami_gemm_strided_batched<fp16_t>(sim::gh200(), Astack, Bstack, 0);
    FAIL() << "batch=0 must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("batch=0"), std::string::npos) << e.what();
  }
}

TEST(DegenerateShapes, MismatchedBatchListsRejectWithCounts) {
  Rng rng(3);
  const std::vector<Matrix<fp16_t>> As{random_matrix<fp16_t>(32, 32, rng)};
  const std::vector<Matrix<fp16_t>> Bs;
  try {
    (void)core::kami_batched_gemm<fp16_t>(sim::gh200(), As, Bs);
    FAIL() << "mismatched batch lists must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1"), std::string::npos) << what;
    EXPECT_NE(what.find("0"), std::string::npos) << what;
  }
}

TEST(DegenerateShapes, AutotuneRejectsZeroDimensionsWithShape) {
  try {
    (void)core::autotune_gemm<fp16_t>(sim::gh200(), 0, 32, 32);
    FAIL() << "autotune of a zero dimension must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("m=0"), std::string::npos) << e.what();
  }
}

TEST(DegenerateShapes, PerfExtrapolationRejectsZeroBatch) {
  EXPECT_THROW(
      (void)core::kami_batched_perf<fp16_t>(sim::gh200(), 32, 32, 32, /*batch=*/0),
      PreconditionError);
}

}  // namespace
}  // namespace kami
