#include "core/sliced_operand.hpp"

#include <gtest/gtest.h>

#include "../testing/test_device.hpp"

namespace kami::core {
namespace {

using kami::testing::tiny_device;

TEST(SliceWidth, PrefersSixteenAndDividesChunk) {
  EXPECT_EQ(pick_slice_width(64), 16u);
  EXPECT_EQ(pick_slice_width(48), 16u);
  EXPECT_EQ(pick_slice_width(24), 12u);  // largest divisor <= 16
  EXPECT_EQ(pick_slice_width(8), 8u);    // chunk smaller than preference
  EXPECT_EQ(pick_slice_width(7), 7u);
}

TEST(SliceLayout, NoSpillAtRatioZero) {
  const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 0, 0.0);
  EXPECT_EQ(lay.n_slices, 4u);
  EXPECT_EQ(lay.resident_slices_total(), 4u);
  EXPECT_EQ(lay.spilled_slices_total(), 0u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_TRUE(lay.is_resident(s));
}

TEST(SliceLayout, HalfRatioSpillsTrailingSlicesPerChunk) {
  // 8 slices in chunks of 4: ratio 0.5 spills the last 2 of each chunk.
  const auto lay = SliceLayout::make(32, 128, SliceAxis::Cols, 16, 4, 0.5);
  EXPECT_EQ(lay.n_slices, 8u);
  EXPECT_EQ(lay.resident_per_chunk, 2u);
  EXPECT_TRUE(lay.is_resident(0));
  EXPECT_TRUE(lay.is_resident(1));
  EXPECT_FALSE(lay.is_resident(2));
  EXPECT_FALSE(lay.is_resident(3));
  EXPECT_TRUE(lay.is_resident(4));
  EXPECT_FALSE(lay.is_resident(7));
  EXPECT_EQ(lay.resident_slices_total(), 4u);
}

TEST(SliceLayout, ResidentIndexPacksAcrossChunks) {
  const auto lay = SliceLayout::make(32, 128, SliceAxis::Cols, 16, 4, 0.5);
  EXPECT_EQ(lay.resident_index(0), 0u);
  EXPECT_EQ(lay.resident_index(1), 1u);
  EXPECT_EQ(lay.resident_index(4), 2u);  // first slice of chunk 1
  EXPECT_EQ(lay.resident_index(5), 3u);
}

TEST(SliceLayout, AtLeastOneResidentSlicePerChunk) {
  const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 4, 0.99);
  EXPECT_EQ(lay.resident_per_chunk, 1u);
}

TEST(SliceLayout, ByteAccounting) {
  const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 0, 0.5);
  // 4 slices of 32x16: 2 resident, 2 spilled.
  EXPECT_EQ(lay.reg_bytes(2), 2u * 32u * 16u * 2u);
  EXPECT_EQ(lay.smem_bytes(2), 2u * 32u * 16u * 2u);
}

TEST(SliceLayout, RowAxisSlicesRows) {
  const auto lay = SliceLayout::make(64, 32, SliceAxis::Rows, 16, 0, 0.0);
  EXPECT_EQ(lay.n_slices, 4u);
  EXPECT_EQ(lay.slice_rows(), 16u);
  EXPECT_EQ(lay.slice_cols(), 32u);
}

TEST(SliceLayout, RejectsNonDividingWidth) {
  EXPECT_THROW((void)SliceLayout::make(32, 60, SliceAxis::Cols, 16, 0, 0.0),
               PreconditionError);
}

TEST(SlicedOperand, ResidentSlicesServeCorrectData) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 1);
  Rng rng(5);
  const auto src = random_matrix<float>(32, 64, rng);
  blk.phase([&](sim::Warp& w) {
    const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 0, 0.0);
    SlicedOperand<float> op(w, blk.smem(), lay, src, 0, 0);
    for (std::size_t s = 0; s < lay.n_slices; ++s) {
      auto v = op.resident_slice(s);
      for (std::size_t r = 0; r < v.rows(); ++r)
        for (std::size_t c = 0; c < v.cols(); ++c)
          EXPECT_FLOAT_EQ(v(r, c), src(r, s * 16 + c));
    }
  });
}

TEST(SlicedOperand, SpilledSlicesRoundTripThroughSmem) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 1);
  Rng rng(6);
  const auto src = random_matrix<float>(32, 64, rng);
  blk.phase([&](sim::Warp& w) {
    const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 0, 0.5);
    SlicedOperand<float> op(w, blk.smem(), lay, src, 0, 0);
    auto scratch = w.alloc_fragment<float>(32, 16);
    op.fetch_slice(w, 3, scratch);  // slice 3 is spilled
    for (std::size_t r = 0; r < 32; ++r)
      for (std::size_t c = 0; c < 16; ++c)
        EXPECT_FLOAT_EQ(scratch(r, c), src(r, 48 + c));
  });
}

TEST(SlicedOperand, FetchingSpilledSliceCostsSmemRead) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 1);
  Rng rng(7);
  const auto src = random_matrix<float>(32, 64, rng);
  blk.phase([&](sim::Warp& w) {
    const auto lay = SliceLayout::make(32, 64, SliceAxis::Cols, 16, 0, 0.5);
    SlicedOperand<float> op(w, blk.smem(), lay, src, 0, 0);
    auto scratch = w.alloc_fragment<float>(32, 16);
    const auto before = w.breakdown().smem_comm;
    op.fetch_slice(w, 0, scratch);  // resident: register copy only
    EXPECT_DOUBLE_EQ(w.breakdown().smem_comm, before);
    op.fetch_slice(w, 2, scratch);  // spilled: charged shared-memory read
    EXPECT_GT(w.breakdown().smem_comm, before);
  });
}

TEST(SlicedOperand, WindowOffsetsAddressSubmatrices) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 1);
  Rng rng(8);
  const auto src = random_matrix<float>(64, 64, rng);
  blk.phase([&](sim::Warp& w) {
    const auto lay = SliceLayout::make(16, 32, SliceAxis::Cols, 16, 0, 0.0);
    SlicedOperand<float> op(w, blk.smem(), lay, src, 16, 32);  // window at (16,32)
    auto v = op.resident_slice(1);
    EXPECT_FLOAT_EQ(v(0, 0), src(16, 48));
  });
}

}  // namespace
}  // namespace kami::core
