// Failure injection: kernels on deliberately hostile device configurations.
// Every failure mode must surface as a typed exception (or a planner
// rejection), never as a wrong answer or a crash.
#include <gtest/gtest.h>

#include "../testing/test_device.hpp"
#include "baselines/reference.hpp"
#include "core/kami.hpp"
#include "core/planner.hpp"

namespace kami::core {
namespace {

sim::DeviceSpec hostile_base() {
  auto dev = kami::testing::tiny_device();
  // Give it a tensor path for every precision and realistic overheads.
  dev.smem_transaction_overhead_cycles = 12.0;
  dev.sync_latency_cycles = 15.0;
  return dev;
}

TEST(FailureInjection, TinySharedMemoryRejectsSpillPlans) {
  auto dev = hostile_base();
  dev.smem_bytes_per_block = 512;  // barely a broadcast buffer
  Rng rng(1);
  const auto A = random_matrix<fp16_t>(128, 128, rng);
  const auto B = random_matrix<fp16_t>(128, 128, rng);
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.5;  // spilling needs smem the device lacks
  EXPECT_THROW((void)gemm(Algo::OneD, dev, A, B, opt), PreconditionError);
}

TEST(FailureInjection, TinySharedMemoryStillRunsResidentPlans) {
  auto dev = hostile_base();
  dev.smem_bytes_per_block = 8 * 1024;
  Rng rng(2);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  const auto r = gemm(Algo::OneD, dev, A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A, B)), 0.0);
}

TEST(FailureInjection, BankConflictFactorsSlowButDontCorrupt) {
  const auto dev = hostile_base();
  Rng rng(3);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions clean;
  clean.warps = 4;
  clean.smem_ratio = 0.0;
  GemmOptions conflicted = clean;
  conflicted.theta_r = 0.25;  // 4-way read conflicts
  conflicted.theta_w = 0.5;
  const auto rc = gemm(Algo::OneD, dev, A, B, clean);
  const auto rx = gemm(Algo::OneD, dev, A, B, conflicted);
  EXPECT_DOUBLE_EQ(max_abs_diff(rc.C, rx.C), 0.0);
  EXPECT_GT(rx.profile.smem_busy, rc.profile.smem_busy);
  EXPECT_GT(rx.profile.latency, rc.profile.latency);
}

TEST(FailureInjection, InvalidThetaRejected) {
  const auto dev = hostile_base();
  Rng rng(4);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  GemmOptions opt;
  opt.theta_r = 0.0;
  EXPECT_THROW((void)gemm(Algo::OneD, dev, A, B, opt), PreconditionError);
  opt.theta_r = 1.5;
  EXPECT_THROW((void)gemm(Algo::OneD, dev, A, B, opt), PreconditionError);
}

TEST(FailureInjection, SingleTensorCoreSerializesWarps) {
  auto one_tc = hostile_base();
  one_tc.tensor_cores_per_sm = 1;
  // Re-derive O_tc: halve the peak so per-unit throughput stays 32.
  one_tc.peak_fp16_tflops /= 2.0;
  auto two_tc = hostile_base();
  Rng rng(5);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  const auto r1 = gemm(Algo::OneD, one_tc, A, B, opt);
  const auto r2 = gemm(Algo::OneD, two_tc, A, B, opt);
  EXPECT_GT(r1.profile.latency, r2.profile.latency);
  EXPECT_DOUBLE_EQ(max_abs_diff(r1.C, r2.C), 0.0);
}

TEST(FailureInjection, ZeroDimensionRejected) {
  const auto dev = hostile_base();
  Matrix<fp16_t> a0(0, 0), b0(0, 0);
  EXPECT_THROW((void)gemm(Algo::OneD, dev, a0, b0), PreconditionError);
}

TEST(FailureInjection, PlannerReportsSmemShortfallDistinctly) {
  auto dev = hostile_base();
  dev.smem_bytes_per_block = 256;
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.75;
  try {
    (void)plan_gemm(Algo::OneD, dev, Precision::FP16, 64, 64, 64, opt);
    FAIL() << "expected a planner rejection";
  } catch (const sim::RegisterOverflow& e) {
    EXPECT_NE(std::string(e.what()).find("shared memory"), std::string::npos);
  }
}

TEST(FailureInjection, ExtremeAspectRatios) {
  // 1-row and 1-column-block products exercise planner fallbacks.
  const auto& dev = sim::gh200();
  Rng rng(6);
  {
    const auto A = random_matrix<fp16_t>(16, 256, rng);  // short and fat k
    const auto B = random_matrix<fp16_t>(256, 16, rng);
    const auto r = gemm(Algo::OneD, dev, A, B);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A, B)), 0.0);
  }
  {
    const auto A = random_matrix<fp16_t>(256, 16, rng);  // tall and thin k
    const auto B = random_matrix<fp16_t>(16, 256, rng);
    const auto r = gemm(Algo::OneD, dev, A, B);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A, B)), 0.0);
  }
}

TEST(FailureInjection, FragViewWindowBoundsChecked) {
  const auto dev = hostile_base();
  sim::ThreadBlock blk(dev, 1);
  blk.phase([&](sim::Warp& w) {
    auto f = w.alloc_fragment<float>(8, 8);
    auto v = f.view();
    auto sub = v.window(2, 2, 4, 4);
    f(3, 3) = 7.0f;
    EXPECT_FLOAT_EQ(sub(1, 1), 7.0f);
    EXPECT_THROW((void)v.window(6, 6, 4, 4), PreconditionError);
  });
}

}  // namespace
}  // namespace kami::core
