// Regression tests for the batched completion-time model. The old model
// divided the summed steady intervals by the SM count, so a batch of one
// reported interval/132 — faster than the block itself can run. The model
// now spreads blocks round-robin over SMs and completes when the most
// loaded SM drains, never before the longest single block's interval.
#include <gtest/gtest.h>

#include <vector>

#include "core/batched.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

std::vector<Matrix<fp16_t>> random_batch(std::size_t count, std::size_t order,
                                         Rng& rng) {
  std::vector<Matrix<fp16_t>> ms;
  ms.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    ms.push_back(random_matrix<fp16_t>(order, order, rng));
  return ms;
}

TEST(BatchedTiming, BatchOfOneMatchesSingleBlockInterval) {
  // One block occupies one SM; its completion time is the block's own steady
  // interval — exactly what kami_batched_perf reports for batch=1. The
  // pre-fix model claimed interval/num_sms here.
  Rng rng(31);
  const std::vector<Matrix<fp16_t>> As = random_batch(1, 64, rng);
  const std::vector<Matrix<fp16_t>> Bs = random_batch(1, 64, rng);
  const auto batched = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  const auto single = kami_batched_perf<fp16_t>(dev(), 64, 64, 64, 1);
  EXPECT_DOUBLE_EQ(batched.seconds, single.seconds);
  EXPECT_DOUBLE_EQ(batched.tflops, single.tflops);
}

TEST(BatchedTiming, UniformBatchMatchesWaveExtrapolation) {
  // num_sms + 3 identical blocks = two waves on three SMs, one on the rest;
  // round-robin placement must reproduce kami_batched_perf's ceil-wave model
  // bit for bit for identical shapes.
  const std::size_t batch = static_cast<std::size_t>(dev().num_sms) + 3;
  Rng rng(32);
  std::vector<Matrix<fp16_t>> As, Bs;
  As.reserve(batch);
  Bs.reserve(batch);
  const Matrix<fp16_t> A = random_matrix<fp16_t>(16, 16, rng);
  const Matrix<fp16_t> B = random_matrix<fp16_t>(16, 16, rng);
  for (std::size_t i = 0; i < batch; ++i) {
    As.push_back(A);
    Bs.push_back(B);
  }
  const auto batched = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  const auto perf = kami_batched_perf<fp16_t>(dev(), 16, 16, 16, batch);
  EXPECT_DOUBLE_EQ(batched.seconds, perf.seconds);
}

TEST(BatchedTiming, MixedBatchNeverFinishesBeforeItsLongestBlock) {
  // Three cheap 16^3 blocks plus one 64^3 block on 132 SMs: every SM holds
  // at most one block, so completion is the 64^3 block's interval — the
  // small blocks cannot dilute it.
  Rng rng(33);
  std::vector<Matrix<fp16_t>> As = random_batch(3, 16, rng);
  std::vector<Matrix<fp16_t>> Bs = random_batch(3, 16, rng);
  As.push_back(random_matrix<fp16_t>(64, 64, rng));
  Bs.push_back(random_matrix<fp16_t>(64, 64, rng));
  const auto batched = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  const auto longest = kami_batched_perf<fp16_t>(dev(), 64, 64, 64, 1);
  EXPECT_DOUBLE_EQ(batched.seconds, longest.seconds);
}

TEST(BatchedTiming, MoreBlocksThanSmsTakesLongerThanOneWave) {
  Rng rng(34);
  const std::size_t batch = static_cast<std::size_t>(dev().num_sms) + 1;
  const Matrix<fp16_t> A = random_matrix<fp16_t>(16, 16, rng);
  const Matrix<fp16_t> B = random_matrix<fp16_t>(16, 16, rng);
  const std::vector<Matrix<fp16_t>> As(batch, A), Bs(batch, B);
  const auto two_waves = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  const auto one_wave = kami_batched_perf<fp16_t>(dev(), 16, 16, 16, 1);
  EXPECT_GT(two_waves.seconds, one_wave.seconds);
}

TEST(StridedBatched, RejectsIndivisibleAStack) {
  // 33 rows cannot split into 2 equal blocks.
  Matrix<fp16_t> Astack(33, 16), Bstack(32, 16);
  EXPECT_THROW((void)kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, 2),
               PreconditionError);
}

TEST(StridedBatched, RejectsIndivisibleBStack) {
  Matrix<fp16_t> Astack(32, 16), Bstack(33, 16);
  EXPECT_THROW((void)kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, 2),
               PreconditionError);
}

TEST(StridedBatched, RejectsInnerDimensionMismatch) {
  // A blocks are 16x16 (k=16) but B blocks are 8x16: divisible, yet k
  // disagrees.
  Matrix<fp16_t> Astack(32, 16), Bstack(16, 16);
  EXPECT_THROW((void)kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, 2),
               PreconditionError);
}

TEST(StridedBatched, RejectsZeroBatch) {
  Matrix<fp16_t> Astack(32, 16), Bstack(32, 16);
  EXPECT_THROW((void)kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, 0),
               PreconditionError);
}

}  // namespace
}  // namespace kami::core
