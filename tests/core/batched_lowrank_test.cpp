#include <gtest/gtest.h>

#include <vector>

#include "baselines/reference.hpp"
#include "core/batched.hpp"
#include "core/lowrank.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Batched, AllProductsMatchReference) {
  Rng rng(21);
  std::vector<Matrix<fp16_t>> As, Bs;
  for (int i = 0; i < 6; ++i) {
    As.push_back(random_matrix<fp16_t>(32, 32, rng));
    Bs.push_back(random_matrix<fp16_t>(32, 32, rng));
  }
  const auto r = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  ASSERT_EQ(r.C.size(), As.size());
  for (std::size_t i = 0; i < As.size(); ++i)
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C[i], baselines::reference_gemm(As[i], Bs[i])), 0.0);
}

TEST(Batched, SupportsMixedShapes) {
  // §5.4: "supports various matrix orders in a batch".
  Rng rng(22);
  std::vector<Matrix<fp16_t>> As, Bs;
  for (std::size_t n : {16u, 32u, 64u}) {
    As.push_back(random_matrix<fp16_t>(n, n, rng));
    Bs.push_back(random_matrix<fp16_t>(n, n, rng));
  }
  const auto r = kami_batched_gemm<fp16_t>(dev(), As, Bs);
  ASSERT_EQ(r.C.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.C[i].rows(), As[i].rows());
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C[i], baselines::reference_gemm(As[i], Bs[i])), 0.0);
  }
}

TEST(Batched, MismatchedBatchListsRejected) {
  Rng rng(23);
  std::vector<Matrix<fp16_t>> As{random_matrix<fp16_t>(16, 16, rng)};
  std::vector<Matrix<fp16_t>> Bs;
  EXPECT_THROW((void)kami_batched_gemm<fp16_t>(dev(), As, Bs), PreconditionError);
}

TEST(Batched, PerfScalesWithBatchSize) {
  const auto b1k = kami_batched_perf<double>(dev(), 64, 64, 64, 1000);
  const auto b10k = kami_batched_perf<double>(dev(), 64, 64, 64, 10000);
  EXPECT_GT(b10k.seconds, b1k.seconds);
  // Throughput improves (setup amortizes) but is bounded by bandwidth.
  EXPECT_GE(b10k.tflops, b1k.tflops * 0.99);
}

TEST(Batched, ChargesGlobalTraffic) {
  const auto perf = kami_batched_perf<double>(dev(), 32, 32, 32, 100);
  EXPECT_GT(perf.per_block.gmem_busy, 0.0);
}

TEST(Batched, BatchedSlowerThanBlockLevelPerProblem) {
  // §5.4: "absolute performance in batched GEMM is lower than the
  // standalone GEMM case ... each small matrix is loaded separately from
  // global memory".
  const auto batched = kami_batched_perf<fp16_t>(dev(), 64, 64, 64, 16384);
  Rng rng(24);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto block = gemm(Algo::OneD, dev(), A, B);
  const double block_tflops = sim::throughput_tflops(dev(), block.profile, 16384);
  EXPECT_LT(batched.tflops, block_tflops);
}

TEST(Batched, StridedBatchedMatchesPerMatrixResults) {
  Rng rng(28);
  constexpr std::size_t kBatch = 3, kN = 32;
  Matrix<fp16_t> Astack(kBatch * kN, kN), Bstack(kBatch * kN, kN);
  for (std::size_t r = 0; r < Astack.rows(); ++r)
    for (std::size_t c = 0; c < kN; ++c) {
      Astack(r, c) = num_traits<fp16_t>::from_acc(static_cast<float>(rng.uniform(-1, 1)));
      Bstack(r, c) = num_traits<fp16_t>::from_acc(static_cast<float>(rng.uniform(-1, 1)));
    }
  const auto Cstack = kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, kBatch);
  ASSERT_EQ(Cstack.rows(), kBatch * kN);
  for (std::size_t b = 0; b < kBatch; ++b) {
    Matrix<fp16_t> a(kN, kN), bb(kN, kN);
    for (std::size_t r = 0; r < kN; ++r)
      for (std::size_t c = 0; c < kN; ++c) {
        a(r, c) = Astack(b * kN + r, c);
        bb(r, c) = Bstack(b * kN + r, c);
      }
    const auto ref = baselines::reference_gemm(a, bb);
    for (std::size_t r = 0; r < kN; ++r)
      for (std::size_t c = 0; c < kN; ++c)
        EXPECT_EQ(Cstack(b * kN + r, c).bits(), ref(r, c).bits());
  }
}

TEST(Batched, StridedBatchedRejectsRaggedStacks) {
  Matrix<fp16_t> Astack(33, 16), Bstack(32, 16);
  EXPECT_THROW((void)kami_gemm_strided_batched<fp16_t>(dev(), Astack, Bstack, 2),
               PreconditionError);
}

TEST(LowRank, ThinKMatchesReference) {
  Rng rng(25);
  for (std::size_t k : {16u, 32u}) {
    const auto U = random_matrix<fp16_t>(128, k, rng);
    const auto V = random_matrix<fp16_t>(k, 128, rng);
    const auto r = lowrank_gemm(dev(), U, V);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(U, V)), 0.0) << k;
  }
}

TEST(LowRank, RejectsFatInnerDimension) {
  Rng rng(26);
  const auto U = random_matrix<fp16_t>(64, 128, rng);
  const auto V = random_matrix<fp16_t>(128, 64, rng);
  EXPECT_THROW((void)lowrank_gemm(dev(), U, V), PreconditionError);
}

TEST(LowRank, CheaperThanSquareOfSameOutput) {
  // The point of low-rank approximation: fewer flops, fewer cycles.
  Rng rng(27);
  const auto U = random_matrix<fp16_t>(128, 16, rng);
  const auto V = random_matrix<fp16_t>(16, 128, rng);
  const auto thin = lowrank_gemm(dev(), U, V);
  const auto A = random_matrix<fp16_t>(128, 128, rng);
  const auto B = random_matrix<fp16_t>(128, 128, rng);
  const auto square = gemm(Algo::OneD, dev(), A, B);
  EXPECT_LT(thin.profile.latency, square.profile.latency);
}

}  // namespace
}  // namespace kami::core
