#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include "baselines/reference.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Autotune, FindsAFeasibleWinner) {
  const auto r = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  EXPECT_GT(r.tflops, 0.0);
  EXPECT_GT(r.evaluated, 5);  // most of the candidate grid is feasible at 64
}

TEST(Autotune, WinnerIsNoWorseThanDefaults) {
  const auto tuned = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  for (Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    Rng rng(64 * 131 + 64 * 17 + 64);
    const auto A = random_matrix<fp16_t>(64, 64, rng);
    const auto B = random_matrix<fp16_t>(64, 64, rng);
    const auto r = gemm(algo, dev(), A, B);
    EXPECT_GE(tuned.tflops + 1e-9, sim::throughput_tflops(dev(), r.profile, 16384))
        << algo_name(algo);
  }
}

TEST(Autotune, PrefersOneDAtBlockLevel) {
  // §5.2.1: "KAMI-1D more suitable for current single-GPU use".
  const auto r = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  EXPECT_EQ(r.config.algo, Algo::OneD);
}

TEST(Autotune, SkipsInfeasibleCandidatesSilently) {
  // At order 16, 27-warp 3D (needs 16 % 3 == 0) and others drop out; the
  // tuner still returns a winner.
  const auto r = autotune_gemm<fp16_t>(dev(), 16, 16, 16);
  EXPECT_GT(r.tflops, 0.0);
  EXPECT_LT(r.evaluated, static_cast<int>(default_candidates().size()));
}

TEST(Autotune, BestGemmProducesCorrectValues) {
  Rng rng(71);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = best_gemm(dev(), A, B);
  // The winner may be 3D (tolerance) but must be numerically sound.
  const auto ref = baselines::reference_gemm_fp64(A, B);
  EXPECT_LE(max_abs_diff(r.C, ref), 1e-2 * 64);
}

TEST(Autotune, ThinKShapesTunable) {
  const auto r = autotune_gemm<fp16_t>(dev(), 128, 128, 16);
  EXPECT_EQ(r.config.algo, Algo::OneD);  // low-rank favors 1D (§5.3)
  EXPECT_GT(r.tflops, 0.0);
}

TEST(Autotune, RejectsImpossibleShapes) {
  std::vector<TuneCandidate> only_3d{{Algo::ThreeD, 8, -1.0}};
  // 17 is not divisible by the 3D grid of 2.
  EXPECT_THROW((void)autotune_gemm<fp16_t>(dev(), 17, 17, 17, 16384, only_3d),
               PreconditionError);
}

TEST(Autotune, DeviceSpecificWinners) {
  // The tuner runs per device; Intel's single XMX per XVE changes the
  // trade-offs but must still produce a feasible plan.
  const auto r = autotune_gemm<fp16_t>(sim::intel_max1100(), 64, 64, 64);
  EXPECT_GT(r.tflops, 0.0);
}

}  // namespace
}  // namespace kami::core
