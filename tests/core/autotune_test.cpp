#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include "baselines/reference.hpp"

namespace kami::core {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Autotune, FindsAFeasibleWinner) {
  const auto r = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  EXPECT_GT(r.tflops, 0.0);
  EXPECT_GT(r.evaluated, 5);  // most of the candidate grid is feasible at 64
}

TEST(Autotune, WinnerIsNoWorseThanDefaults) {
  const auto tuned = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  for (Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    Rng rng(64 * 131 + 64 * 17 + 64);
    const auto A = random_matrix<fp16_t>(64, 64, rng);
    const auto B = random_matrix<fp16_t>(64, 64, rng);
    const auto r = gemm(algo, dev(), A, B);
    EXPECT_GE(tuned.tflops + 1e-9, sim::throughput_tflops(dev(), r.profile, 16384))
        << algo_name(algo);
  }
}

TEST(Autotune, PrefersOneDAtBlockLevel) {
  // §5.2.1: "KAMI-1D more suitable for current single-GPU use".
  const auto r = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  EXPECT_EQ(r.config.algo, Algo::OneD);
}

TEST(Autotune, SkipsInfeasibleCandidatesSilently) {
  // At order 16, 27-warp 3D (needs 16 % 3 == 0) and others drop out; the
  // tuner still returns a winner.
  const auto r = autotune_gemm<fp16_t>(dev(), 16, 16, 16);
  EXPECT_GT(r.tflops, 0.0);
  EXPECT_LT(r.evaluated, static_cast<int>(default_candidates().size()));
}

TEST(Autotune, BestGemmProducesCorrectValues) {
  Rng rng(71);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = best_gemm(dev(), A, B);
  // The winner may be 3D (tolerance) but must be numerically sound.
  const auto ref = baselines::reference_gemm_fp64(A, B);
  EXPECT_LE(max_abs_diff(r.C, ref), 1e-2 * 64);
}

TEST(Autotune, ThinKShapesTunable) {
  const auto r = autotune_gemm<fp16_t>(dev(), 128, 128, 16);
  EXPECT_EQ(r.config.algo, Algo::OneD);  // low-rank favors 1D (§5.3)
  EXPECT_GT(r.tflops, 0.0);
}

TEST(Autotune, RejectsImpossibleShapes) {
  std::vector<TuneCandidate> only_3d{{Algo::ThreeD, 8, -1.0}};
  // 17 is not divisible by the 3D grid of 2.
  EXPECT_THROW((void)autotune_gemm<fp16_t>(dev(), 17, 17, 17, 16384, only_3d),
               PreconditionError);
}

TEST(Autotune, DeviceSpecificWinners) {
  // The tuner runs per device; Intel's single XMX per XVE changes the
  // trade-offs but must still produce a feasible plan.
  const auto r = autotune_gemm<fp16_t>(sim::intel_max1100(), 64, 64, 64);
  EXPECT_GT(r.tflops, 0.0);
}

// Regression for the winner-selection bug: the old loop compared each
// outcome with strict `>` against a default `best.tflops = 0.0`, so a
// feasible candidate whose reported throughput was exactly 0 could never
// become the winner — the tuner passed its evaluated-count guard and then
// returned a default-constructed (infeasible-looking) result. This test
// fails against that implementation and pins the by-index selection.
TEST(SelectWinner, FeasibleZeroThroughputCandidateWins) {
  std::vector<TuneOutcome> outcomes(3);
  outcomes[1].feasible = true;  // tflops stays 0.0
  outcomes[1].warps = 4;
  EXPECT_EQ(select_winner(outcomes), 1);
}

TEST(SelectWinner, FirstFeasibleWinsTies) {
  std::vector<TuneOutcome> outcomes(4);
  outcomes[1].feasible = true;
  outcomes[1].tflops = 5.0;
  outcomes[3].feasible = true;
  outcomes[3].tflops = 5.0;  // exact tie: earlier candidate order wins
  EXPECT_EQ(select_winner(outcomes), 1);

  outcomes[3].tflops = 6.0;  // strictly better: later candidate takes over
  EXPECT_EQ(select_winner(outcomes), 3);
}

TEST(SelectWinner, NoFeasibleOutcomeIsNegative) {
  EXPECT_EQ(select_winner({}), -1);
  std::vector<TuneOutcome> outcomes(2);  // all infeasible
  EXPECT_EQ(select_winner(outcomes), -1);
}

TEST(Autotune, ColdPredictorPrunesNothing) {
  // With an empty predictor no bucket is confident, so the prescreen must
  // degrade to the historical exhaustive sweep.
  ProfileCache::global().clear();
  model::Predictor::global().reset();
  const auto r = autotune_gemm<fp16_t>(dev(), 64, 64, 64);
  EXPECT_EQ(r.pruned, 0);
  EXPECT_GT(r.evaluated, 5);
}

TEST(Autotune, WarmPredictorPrunesAndAgreesWithExhaustive) {
  ProfileCache::global().clear();
  model::Predictor::global().reset();
  // Warm the calibration buckets on neighboring shapes (distinct cache keys).
  for (std::size_t s : {32u, 48u, 64u}) (void)autotune_gemm<fp16_t>(dev(), s, s, s);

  TunePolicy exhaustive;
  exhaustive.prescreen = false;
  const auto full = autotune_gemm<fp16_t>(dev(), 96, 96, 96, 16384,
                                          default_candidates(), 0, exhaustive);
  EXPECT_EQ(full.pruned, 0);

  ProfileCache::global().clear();  // force the pruned run to predict, not hit
  TunePolicy tight;
  tight.top_k = 2;
  const auto pruned = autotune_gemm<fp16_t>(dev(), 96, 96, 96, 16384,
                                            default_candidates(), 0, tight);
  EXPECT_GT(pruned.pruned, 0);
  EXPECT_LT(pruned.evaluated, full.evaluated);
  // The analytic ranking must not cost throughput: same winner quality.
  EXPECT_GE(pruned.tflops + 1e-9, full.tflops);
}

}  // namespace
}  // namespace kami::core
