// Execution-mode equivalence (the contract behind the profile cache and the
// batched/autotune fast paths):
//   * TimingOnly must reproduce the Full cycle profile bit-for-bit — timing
//     depends only on shapes and bytes, never on operand values;
//   * NumericsOnly must reproduce the Full result matrix bit-for-bit — the
//     fast path replays the same per-element accumulation chains in the same
//     order and precision.
// Checked across the 1D/2D/3D x device x precision grid, spill ratios,
// charged global I/O, and the block-level baselines.
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/cublasdx_like.hpp"
#include "baselines/cutlass_like.hpp"
#include "baselines/syclbench_like.hpp"
#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/kami.hpp"

namespace kami {
namespace {

void expect_profile_identical(const sim::KernelProfile& a,
                              const sim::KernelProfile& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.tc_busy, b.tc_busy);
  EXPECT_EQ(a.smem_busy, b.smem_busy);
  EXPECT_EQ(a.gmem_busy, b.gmem_busy);
  EXPECT_EQ(a.vector_busy, b.vector_busy);
  EXPECT_EQ(a.useful_flops, b.useful_flops);
  EXPECT_EQ(a.reg_bytes_per_warp, b.reg_bytes_per_warp);
  EXPECT_EQ(a.smem_bytes, b.smem_bytes);
  EXPECT_EQ(a.num_warps, b.num_warps);
  EXPECT_EQ(a.mean_breakdown.smem_comm, b.mean_breakdown.smem_comm);
  EXPECT_EQ(a.mean_breakdown.gmem, b.mean_breakdown.gmem);
  EXPECT_EQ(a.mean_breakdown.reg_copy, b.mean_breakdown.reg_copy);
  EXPECT_EQ(a.mean_breakdown.compute, b.mean_breakdown.compute);
  EXPECT_EQ(a.mean_breakdown.sync_wait, b.mean_breakdown.sync_wait);
}

template <Scalar T>
::testing::AssertionResult bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return ::testing::AssertionFailure() << "shape mismatch";
  if (std::memcmp(a.data(), b.data(), a.rows() * a.cols() * sizeof(T)) != 0)
    return ::testing::AssertionFailure() << "element bit patterns differ";
  return ::testing::AssertionSuccess();
}

/// Run (algo, dev, m, n, k, opt) in all three modes on the same random
/// operands and cross-check the mode contract.
template <Scalar T>
void check_modes(Algo algo, const sim::DeviceSpec& dev, std::size_t m, std::size_t n,
                 std::size_t k, GemmOptions opt = {}) {
  SCOPED_TRACE(std::string(algo_name(algo)) + " " + dev.name + " m=" +
               std::to_string(m) + " n=" + std::to_string(n) + " k=" +
               std::to_string(k));
  Rng rng(m * 92821 + n * 1009 + k * 13);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);

  opt.mode = sim::ExecMode::Full;
  const auto full = gemm(algo, dev, A, B, opt);

  GemmOptions topt = opt;
  topt.mode = sim::ExecMode::TimingOnly;
  const auto timing = gemm(algo, dev, A, B, topt);
  expect_profile_identical(timing.profile, full.profile);
  EXPECT_EQ(timing.warps, full.warps);
  EXPECT_EQ(timing.smem_ratio, full.smem_ratio);
  // No arithmetic ran: the TimingOnly output stays zero-initialized.
  EXPECT_TRUE(bits_equal(timing.C, Matrix<T>(m, n)));

  GemmOptions nopt = opt;
  nopt.mode = sim::ExecMode::NumericsOnly;
  const auto numer = gemm(algo, dev, A, B, nopt);
  EXPECT_TRUE(bits_equal(numer.C, full.C));
  // No cycles charged: the NumericsOnly profile stays empty.
  EXPECT_EQ(numer.profile.latency, 0.0);
  EXPECT_EQ(numer.profile.tc_busy, 0.0);
}

// ---------------------------------------------------------------------------
// Square sweeps across all algorithms and the paper's devices
// ---------------------------------------------------------------------------

class ModeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModeSizes, OneDFp16Gh200) {
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, TwoDFp16Gh200) {
  check_modes<fp16_t>(Algo::TwoD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, ThreeDFp16Gh200) {
  check_modes<fp16_t>(Algo::ThreeD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, OneDFp64Gh200) {
  check_modes<double>(Algo::OneD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, TwoDFp64Gh200) {
  check_modes<double>(Algo::TwoD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, ThreeDFp64Gh200) {
  check_modes<double>(Algo::ThreeD, sim::gh200(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, OneDFp16Rtx5090) {
  check_modes<fp16_t>(Algo::OneD, sim::rtx5090(), GetParam(), GetParam(), GetParam());
}

TEST_P(ModeSizes, TwoDFp16IntelMax1100) {
  check_modes<fp16_t>(Algo::TwoD, sim::intel_max1100(), GetParam(), GetParam(),
                      GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, ModeSizes, ::testing::Values(16, 32, 64));

// ---------------------------------------------------------------------------
// Other precisions, rectangular shapes, and the 3D n-chunk fallback
// ---------------------------------------------------------------------------

TEST(ExecModes, OtherPrecisions) {
  check_modes<bf16_t>(Algo::OneD, sim::gh200(), 32, 32, 32);
  check_modes<tf32_t>(Algo::TwoD, sim::gh200(), 32, 32, 32);
  check_modes<fp8_e4m3_t>(Algo::ThreeD, sim::gh200(), 32, 32, 32);
}

TEST(ExecModes, RectangularShapes) {
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), 64, 32, 48);
  check_modes<fp16_t>(Algo::TwoD, sim::gh200(), 64, 32, 48);
  check_modes<fp16_t>(Algo::ThreeD, sim::gh200(), 64, 32, 48);
}

TEST(ExecModes, ThreeDNChunkFallback) {
  // Order 192 FP16 forces the planner's n-chunked 3D plan.
  check_modes<fp16_t>(Algo::ThreeD, sim::gh200(), 192, 192, 192);
}

// SIMD tail shapes: n and k that are neither multiples of the numeric-path
// vector width (8 floats / 4 doubles) nor of kNumericKTile, so the vectorized
// kernel exercises its scalar j-tail and partial k-tile alongside the main
// body. Primes (17, 67, 127) leave remainders under every blocking choice.
TEST(ExecModes, SimdTailShapes) {
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), 64, 17, 67);
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), 32, 67, 127);
  check_modes<double>(Algo::OneD, sim::gh200(), 64, 17, 67);
  // 2D/3D feasibility needs m, n, k divisible by the warp grid (2), so 34 is
  // the smallest even non-multiple of both vector widths with an odd k chunk.
  check_modes<fp16_t>(Algo::TwoD, sim::gh200(), 34, 34, 34);
  check_modes<fp16_t>(Algo::ThreeD, sim::gh200(), 34, 34, 34);
}

// ---------------------------------------------------------------------------
// Spilled configurations and charged global I/O
// ---------------------------------------------------------------------------

TEST(ExecModes, SpilledOneDAndTwoD) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.5;
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), 64, 64, 64, opt);
  check_modes<fp16_t>(Algo::TwoD, sim::gh200(), 64, 64, 64, opt);
}

TEST(ExecModes, SpilledThreeD) {
  GemmOptions opt;
  opt.warps = 8;
  opt.smem_ratio = 0.5;
  check_modes<fp16_t>(Algo::ThreeD, sim::gh200(), 64, 64, 64, opt);
}

TEST(ExecModes, ChargedGlobalIo) {
  GemmOptions opt;
  opt.charge_global_io = true;
  check_modes<fp16_t>(Algo::OneD, sim::gh200(), 64, 64, 64, opt);
  check_modes<double>(Algo::TwoD, sim::gh200(), 32, 32, 32, opt);
}

// Infeasible configurations must fail identically in every mode: the shape
// checks and allocations run unconditionally, so TimingOnly and the timed
// part of the pipeline report the same feasibility errors as Full.
TEST(ExecModes, TimingOnlyThrowsSameAsFull) {
  Rng rng(5);
  const auto A = random_matrix<double>(128, 128, rng);
  const auto B = random_matrix<double>(128, 128, rng);
  for (const auto mode : {sim::ExecMode::Full, sim::ExecMode::TimingOnly}) {
    GemmOptions opt;
    opt.mode = mode;
    EXPECT_THROW((void)gemm(Algo::ThreeD, sim::gh200(), A, B, opt),
                 sim::RegisterOverflow);
  }
}

// ---------------------------------------------------------------------------
// Baselines honour the modes too
// ---------------------------------------------------------------------------

TEST(ExecModes, CublasdxBaseline) {
  Rng rng(11);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  const auto full = baselines::cublasdx_gemm(sim::gh200(), A, B);
  const auto timing = baselines::cublasdx_gemm(sim::gh200(), A, B, 4, false,
                                               sim::ExecMode::TimingOnly);
  const auto numer = baselines::cublasdx_gemm(sim::gh200(), A, B, 4, false,
                                              sim::ExecMode::NumericsOnly);
  expect_profile_identical(timing.profile, full.profile);
  EXPECT_TRUE(bits_equal(numer.C, full.C));
}

TEST(ExecModes, CutlassBaseline) {
  Rng rng(13);
  const auto A = random_matrix<fp16_t>(48, 48, rng);
  const auto B = random_matrix<fp16_t>(48, 48, rng);
  const auto full = baselines::cutlass_gemm(sim::gh200(), A, B, true);
  const auto timing =
      baselines::cutlass_gemm(sim::gh200(), A, B, true, nullptr,
                              sim::ExecMode::TimingOnly);
  const auto numer =
      baselines::cutlass_gemm(sim::gh200(), A, B, true, nullptr,
                              sim::ExecMode::NumericsOnly);
  expect_profile_identical(timing.profile, full.profile);
  EXPECT_TRUE(bits_equal(numer.C, full.C));
}

TEST(ExecModes, SyclbenchBaseline) {
  Rng rng(17);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  const auto& dev = sim::intel_max1100();
  const auto full = baselines::syclbench_gemm(dev, A, B);
  const auto timing =
      baselines::syclbench_gemm(dev, A, B, 4, false, sim::ExecMode::TimingOnly);
  const auto numer =
      baselines::syclbench_gemm(dev, A, B, 4, false, sim::ExecMode::NumericsOnly);
  expect_profile_identical(timing.profile, full.profile);
  EXPECT_TRUE(bits_equal(numer.C, full.C));
}

// ---------------------------------------------------------------------------
// Consumers of the fast paths
// ---------------------------------------------------------------------------

// The batched fast path (TimingOnly per distinct shape + NumericsOnly per
// entry) must be indistinguishable from the legacy per-entry Full loop.
TEST(ExecModes, BatchedFastPathMatchesPerEntryFull) {
  Rng rng(23);
  std::vector<Matrix<fp16_t>> As, Bs;
  const std::size_t shapes[][3] = {{16, 16, 16}, {32, 32, 32}, {16, 16, 16},
                                   {32, 16, 16}, {32, 32, 32}, {16, 16, 16}};
  for (const auto& s : shapes) {
    As.push_back(random_matrix<fp16_t>(s[0], s[2], rng));
    Bs.push_back(random_matrix<fp16_t>(s[2], s[1], rng));
  }
  const auto batched = core::kami_batched_gemm<fp16_t>(sim::gh200(), As, Bs);
  ASSERT_EQ(batched.C.size(), As.size());
  GemmOptions per_entry;
  per_entry.charge_global_io = true;
  for (std::size_t i = 0; i < As.size(); ++i) {
    const auto r = gemm(Algo::OneD, sim::gh200(), As[i], Bs[i], per_entry);
    EXPECT_TRUE(bits_equal(batched.C[i], r.C)) << "entry " << i;
  }
  EXPECT_GT(batched.seconds, 0.0);
  EXPECT_GT(batched.tflops, 0.0);
}

// best_gemm runs numerics once and grafts the tuned profile back on: the
// values match a plain Full run of the winning configuration and the profile
// is the tuned one (non-empty).
TEST(ExecModes, BestGemmKeepsValuesAndProfile) {
  Rng rng(29);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  const auto best = core::best_gemm<fp16_t>(sim::gh200(), A, B);
  EXPECT_GT(best.profile.latency, 0.0);
  EXPECT_GT(best.profile.useful_flops, 0.0);
  const auto tuned = core::autotune_gemm<fp16_t>(sim::gh200(), 32, 32, 32);
  GemmOptions opt;
  opt.warps = tuned.config.warps;
  opt.smem_ratio = tuned.config.smem_ratio;
  const auto full = gemm(tuned.config.algo, sim::gh200(), A, B, opt);
  EXPECT_TRUE(bits_equal(best.C, full.C));
  expect_profile_identical(best.profile, full.profile);
}

}  // namespace
}  // namespace kami
