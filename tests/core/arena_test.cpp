// The batch-lifetime arena: bump allocation, mark/rewind nesting, and the
// retain-cap trim that fixes the old unbounded thread_local scratch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/arena.hpp"
#include "obs/metrics.hpp"

namespace kami::core {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.alloc<std::uint8_t>(3);
  auto* b = arena.alloc<double>(4);
  auto* c = arena.alloc<float>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(float), 0u);
  // Writes through one pointer must not be visible through another.
  std::memset(a, 0xAB, 3);
  for (int i = 0; i < 4; ++i) b[i] = 1.0;
  for (int i = 0; i < 7; ++i) c[i] = 2.0f;
  EXPECT_EQ(a[0], 0xAB);
  EXPECT_EQ(b[3], 1.0);
  EXPECT_EQ(c[0], 2.0f);
  EXPECT_GE(arena.live_bytes(), 3 + 4 * sizeof(double) + 7 * sizeof(float));
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 1), nullptr);
}

TEST(Arena, GrowsAcrossChunksForLargeRequests) {
  Arena arena;
  // Far beyond the minimum chunk: forces the doubling path repeatedly.
  auto* big = arena.alloc<double>((1u << 20));
  big[0] = 1.0;
  big[(1u << 20) - 1] = 2.0;
  EXPECT_GE(arena.capacity_bytes(), (1u << 20) * sizeof(double));
  EXPECT_GE(arena.chunks_mapped(), 1u);
  EXPECT_EQ(big[0], 1.0);
}

TEST(Arena, MarkRewindNestsAndReusesBytes) {
  Arena arena;
  const auto outer = arena.mark();
  void* first = arena.allocate(1024, 16);
  const auto inner = arena.mark();
  void* second = arena.allocate(4096, 16);
  arena.rewind(inner);
  // Rewinding the inner scope frees `second`'s bytes: the next same-shape
  // allocation lands on the same address, and `first` stays live.
  void* second_again = arena.allocate(4096, 16);
  EXPECT_EQ(second, second_again);
  arena.rewind(inner);
  arena.rewind(outer);
  EXPECT_EQ(arena.live_bytes(), 0u);
  void* first_again = arena.allocate(1024, 16);
  EXPECT_EQ(first, first_again);
}

TEST(Arena, HighWaterAndTotalsAreMonotonic) {
  Arena arena;
  const auto m = arena.mark();
  arena.allocate(1000, 8);
  arena.rewind(m);
  arena.allocate(200, 8);
  EXPECT_GE(arena.high_water_bytes(), 1000u);
  EXPECT_GE(arena.total_allocated_bytes(), 1200u);
  EXPECT_EQ(arena.live_bytes(), 200u);
}

TEST(Arena, TrimsCapacityBeyondRetainCapWhenEmpty) {
  Arena arena(/*retain_bytes=*/1u << 20);
  const auto m = arena.mark();
  arena.allocate(16u << 20, 64);  // peak far above the cap
  const std::size_t peak_capacity = arena.capacity_bytes();
  EXPECT_GE(peak_capacity, 16u << 20);
  arena.rewind(m);
  // Outermost rewind: capacity must drop to the retain cap, not stay pinned
  // at the peak shape (the old thread_local-vector failure mode).
  EXPECT_LE(arena.capacity_bytes(), 1u << 20);
  // The arena remains fully usable after the trim.
  auto* p = arena.alloc<std::uint64_t>(100);
  p[99] = 7;
  EXPECT_EQ(p[99], 7u);
}

TEST(Arena, RetainedCapacityIsKeptAcrossScopes) {
  Arena arena(/*retain_bytes=*/1u << 20);
  const auto m = arena.mark();
  arena.allocate(64u << 10, 64);
  arena.rewind(m);
  const std::size_t kept = arena.capacity_bytes();
  EXPECT_GT(kept, 0u);
  // A second same-shape scope must not map new chunks.
  const std::size_t mapped_before = arena.chunks_mapped();
  const auto m2 = arena.mark();
  arena.allocate(64u << 10, 64);
  arena.rewind(m2);
  EXPECT_EQ(arena.chunks_mapped(), mapped_before);
  EXPECT_EQ(arena.capacity_bytes(), kept);
}

TEST(ArenaScope, RewindsOnDestructionAndPublishesMetrics) {
  obs::MetricRegistry shard;
  Arena arena;
  {
    const obs::ScopedMetricShard ms(shard);
    ArenaScope scope(arena);
    arena.allocate(12345, 8);
    EXPECT_GE(arena.live_bytes(), 12345u);
  }
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_GE(shard.counter_values().at("arena.bytes_allocated"), 12345.0);
  EXPECT_GE(shard.gauge_values().at("arena.high_water_bytes"), 12345.0);
}

TEST(ArenaScope, TlsArenaIsReusedAcrossCalls) {
  Arena& arena = Arena::tls();
  void* p1;
  {
    ArenaScope scope(arena);
    p1 = arena.allocate(2048, 32);
  }
  void* p2;
  {
    ArenaScope scope(arena);
    p2 = arena.allocate(2048, 32);
  }
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace kami::core
