// ProfileCache semantics: a hit must return exactly what a fresh simulation
// would produce, keys must distinguish every option that can change a
// profile (and canonicalize the ones that cannot — an auto request and an
// explicit request resolving to the same plan share one entry), and the LRU
// bookkeeping (promotion, eviction, counters) must be observable through the
// obs registry.
#include <gtest/gtest.h>

#include <optional>

#include "core/profile_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/deadline.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using core::CachedProfile;
using core::ProfileCache;
using core::ProfileKey;
using core::timing_profile;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

void expect_profile_identical(const sim::KernelProfile& a,
                              const sim::KernelProfile& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.tc_busy, b.tc_busy);
  EXPECT_EQ(a.smem_busy, b.smem_busy);
  EXPECT_EQ(a.gmem_busy, b.gmem_busy);
  EXPECT_EQ(a.vector_busy, b.vector_busy);
  EXPECT_EQ(a.useful_flops, b.useful_flops);
  EXPECT_EQ(a.num_warps, b.num_warps);
}

/// A synthetic key for LRU-mechanics tests (no planner involved).
ProfileKey synthetic_key(std::size_t m) {
  ProfileKey k;
  k.device = "GH200";
  k.m = m;
  k.n = 32;
  k.k = 32;
  k.warps = 4;
  k.slice_w = 16;
  return k;
}

CachedProfile synthetic_entry(double latency) {
  CachedProfile p;
  p.profile.latency = latency;
  return p;
}

TEST(ProfileCache, HitReturnsFreshSimulationBitForBit) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  const auto cold = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.misses"), 1.0);
  EXPECT_EQ(counter("profile_cache.inserts"), 1.0);
  EXPECT_EQ(counter("profile_cache.hits"), 0.0);

  const auto warm = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.hits"), 1.0);
  expect_profile_identical(warm.profile, cold.profile);
  EXPECT_EQ(warm.warps, cold.warps);
  EXPECT_EQ(warm.smem_ratio, cold.smem_ratio);

  // The cached profile is the one a Full run of the same config produces.
  const Matrix<fp16_t> A(32, 32), B(32, 32);
  const auto full = gemm(Algo::OneD, sim::gh200(), A, B);
  expect_profile_identical(warm.profile, full.profile);
  EXPECT_EQ(warm.warps, full.warps);
}

TEST(ProfileCache, KeysDistinguishGemmOptions) {
  const auto& dev = sim::gh200();
  GemmOptions base;
  const auto key = [&](const GemmOptions& o, Algo a = Algo::OneD,
                       Precision p = Precision::FP16, std::size_t m = 32) {
    return ProfileKey::make(a, dev, p, m, 32, 32, o,
                            core::plan_gemm(a, dev, p, m, 32, 32, o));
  };

  EXPECT_EQ(key(base), key(base));

  GemmOptions warps = base;
  warps.warps = 8;
  EXPECT_NE(key(base), key(warps));

  GemmOptions ratio = base;
  ratio.smem_ratio = 0.5;
  EXPECT_NE(key(base), key(ratio));

  GemmOptions io = base;
  io.charge_global_io = true;
  EXPECT_NE(key(base), key(io));

  GemmOptions theta = base;
  theta.theta_r = 0.5;
  EXPECT_NE(key(base), key(theta));

  GemmOptions slice = base;
  slice.slice_pref = 8;
  EXPECT_NE(key(base), key(slice));

  EXPECT_NE(key(base), key(base, Algo::TwoD));
  EXPECT_NE(key(base), key(base, Algo::OneD, Precision::BF16));
  EXPECT_NE(key(base), key(base, Algo::OneD, Precision::FP16, 64));
  const core::Plan gh = core::plan_gemm(Algo::OneD, sim::gh200(), Precision::FP16, 32,
                                        32, 32, base);
  const core::Plan rtx = core::plan_gemm(Algo::OneD, sim::rtx5090(), Precision::FP16,
                                         32, 32, 32, base);
  EXPECT_NE(
      ProfileKey::make(Algo::OneD, sim::gh200(), Precision::FP16, 32, 32, 32, base, gh),
      ProfileKey::make(Algo::OneD, sim::rtx5090(), Precision::FP16, 32, 32, 32, base,
                       rtx));

  // Reporting-only options are deliberately NOT part of the key: the same
  // entry serves Full, TimingOnly and trace-recording callers.
  GemmOptions traced = base;
  traced.record_trace = true;
  traced.mode = sim::ExecMode::TimingOnly;
  EXPECT_EQ(key(base), key(traced));

  // Canonicalization: spelling out the planner's own resolution explicitly
  // must produce the auto request's key.
  const core::Plan resolved =
      core::plan_gemm(Algo::OneD, dev, Precision::FP16, 32, 32, 32, base);
  GemmOptions spelled = base;
  spelled.warps = resolved.p;
  spelled.smem_ratio = resolved.smem_ratio;
  EXPECT_EQ(key(base), key(spelled));
}

TEST(ProfileCache, AutoAndExplicitRequestsShareOneEntry) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  GemmOptions auto_opt;  // warps=0, smem_ratio<0: planner resolves both
  const auto a =
      timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32, auto_opt);

  GemmOptions explicit_opt;
  explicit_opt.warps = a.warps;
  explicit_opt.smem_ratio = a.smem_ratio;
  const auto b =
      timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32, explicit_opt);

  // The dedup shows up in the counters: one insert, one hit, one entry.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.inserts"), 1.0);
  EXPECT_EQ(counter("profile_cache.hits"), 1.0);
  expect_profile_identical(a.profile, b.profile);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.smem_ratio, b.smem_ratio);
}

TEST(ProfileCache, DistinctOptionsProduceDistinctEntries) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  GemmOptions four, eight;
  four.warps = 4;
  eight.warps = 8;
  const auto p4 = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64,
                                         four);
  const auto p8 = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64,
                                         eight);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.misses"), 2.0);
  EXPECT_EQ(p4.profile.num_warps, 4);
  EXPECT_EQ(p8.profile.num_warps, 8);
  EXPECT_NE(p4.profile.latency, p8.profile.latency);
}

TEST(ProfileCache, LruEvictionWithPromotion) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(2);

  cache.insert(synthetic_key(1), synthetic_entry(1.0));
  cache.insert(synthetic_key(2), synthetic_entry(2.0));
  EXPECT_EQ(cache.size(), 2u);

  // Touch key 1 so key 2 becomes least-recently-used, then overflow.
  ASSERT_TRUE(cache.find(synthetic_key(1)).has_value());
  cache.insert(synthetic_key(3), synthetic_entry(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.evictions"), 1.0);
  EXPECT_FALSE(cache.find(synthetic_key(2)).has_value());  // evicted
  EXPECT_TRUE(cache.find(synthetic_key(1)).has_value());   // survived via promotion
  ASSERT_TRUE(cache.find(synthetic_key(3)).has_value());
  EXPECT_EQ(cache.find(synthetic_key(3))->profile.latency, 3.0);

  // Overwriting an existing key neither grows nor evicts.
  cache.insert(synthetic_key(3), synthetic_entry(30.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.evictions"), 1.0);
  EXPECT_EQ(cache.find(synthetic_key(3))->profile.latency, 30.0);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(synthetic_key(1)).has_value());
}

TEST(ProfileCache, FindCopySurvivesInsertAndClear) {
  ProfileCache cache(2);
  cache.insert(synthetic_key(1), synthetic_entry(1.0));
  const std::optional<CachedProfile> hit = cache.find(synthetic_key(1));
  ASSERT_TRUE(hit.has_value());

  // Force eviction and a full clear; the copied-out value must be unaffected
  // (the old pointer-returning API dangled here).
  cache.insert(synthetic_key(2), synthetic_entry(2.0));
  cache.insert(synthetic_key(3), synthetic_entry(3.0));
  cache.clear();
  EXPECT_EQ(hit->profile.latency, 1.0);
}

// Regression for the contains()/find() TOCTOU: the old API answered "is this
// key present?" as a bool, and any later lookup could miss after a racing
// insert evicted the entry. try_get() is the replacement — one locked
// copy-out that either returns the value or nothing, with no counters and no
// LRU promotion, so observers can probe without perturbing find() semantics.
TEST(ProfileCache, TryGetIsCounterAndPromotionNeutral) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(2);
  cache.insert(synthetic_key(1), synthetic_entry(1.0));
  cache.insert(synthetic_key(2), synthetic_entry(2.0));

  // Probe key 1 repeatedly: no hit/miss counters, and — unlike find() — no
  // promotion, so key 1 is still the LRU victim afterwards.
  for (int i = 0; i < 3; ++i) {
    const auto hit = cache.try_get(synthetic_key(1));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->profile.latency, 1.0);
  }
  EXPECT_FALSE(cache.try_get(synthetic_key(9)).has_value());
  EXPECT_EQ(counter("profile_cache.hits"), 0.0);
  EXPECT_EQ(counter("profile_cache.misses"), 0.0);

  cache.insert(synthetic_key(3), synthetic_entry(3.0));
  EXPECT_FALSE(cache.try_get(synthetic_key(1)).has_value());  // evicted: no promotion
  EXPECT_TRUE(cache.try_get(synthetic_key(2)).has_value());
}

TEST(ProfileCache, TryGetCopySurvivesEvictionAndClear) {
  ProfileCache cache(1);
  cache.insert(synthetic_key(1), synthetic_entry(1.0));
  const std::optional<CachedProfile> hit = cache.try_get(synthetic_key(1));
  ASSERT_TRUE(hit.has_value());
  cache.insert(synthetic_key(2), synthetic_entry(2.0));  // evicts key 1
  cache.clear();
  EXPECT_EQ(hit->profile.latency, 1.0);
}

TEST(ProfileCache, SnapshotIsKeyOrderedCopy) {
  ProfileCache cache(8);
  cache.insert(synthetic_key(3), synthetic_entry(3.0));
  cache.insert(synthetic_key(1), synthetic_entry(1.0));
  cache.insert(synthetic_key(2), synthetic_entry(2.0));
  const auto snap = cache.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(snap[i].first.m, i + 1);  // key order, not insertion order
    EXPECT_EQ(snap[i].second.profile.latency, static_cast<double>(i + 1));
  }
  cache.clear();
  EXPECT_EQ(snap.size(), 3u);  // copy-out, like every other accessor
}

TEST(ProfileCache, InfeasibleConfigurationsThrowAndAreNotCached) {
  ProfileCache cache(16);
  // 3D FP64 at order 128 exceeds GH200's register file (see DESIGN.md).
  EXPECT_THROW((void)timing_profile<double>(cache, Algo::ThreeD, sim::gh200(), 128, 128,
                                            128),
               PreconditionError);
  EXPECT_EQ(cache.size(), 0u);
}

// Exception-safety audit: a simulation that dies mid-run — after the planner
// accepted the key, while cycles are being charged — must leave the cache
// byte-for-byte as it was: no partial entry, no poisoned profile, and a clean
// rerun must produce exactly what an undisturbed cache would have.
TEST(ProfileCache, MidRunFaultLeavesCacheUntouched) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  {
    verify::FaultHooks fault;
    fault.warp_advance_skew = -1e9;  // every warp op violates clock monotonicity
    const verify::ScopedFault guard(fault);
    EXPECT_THROW(
        (void)timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64),
        verify::InvariantViolation);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(counter("profile_cache.inserts"), 0.0);

  // The fault is gone; the same key must now miss, simulate cleanly, and
  // match a fresh cache's answer bit for bit.
  const auto after =
      timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64);
  EXPECT_EQ(cache.size(), 1u);
  ProfileCache fresh(16);
  const auto clean =
      timing_profile<fp16_t>(fresh, Algo::OneD, sim::gh200(), 64, 64, 64);
  expect_profile_identical(after.profile, clean.profile);
  EXPECT_EQ(after.warps, clean.warps);
  EXPECT_EQ(after.smem_ratio, clean.smem_ratio);
}

TEST(ProfileCache, InjectedAllocationFailureLeavesCacheUntouched) {
  ProfileCache cache(16);
  {
    verify::FaultHooks fault;
    fault.alloc_fail_countdown = 0;  // first register allocation throws
    const verify::ScopedFault guard(fault);
    EXPECT_THROW(
        (void)timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64),
        sim::RegisterOverflow);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(
      timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64).profile
          .latency > 0.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProfileCache, DeadlineAbortLeavesCacheUntouched) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  GemmOptions opt;
  opt.deadline_cycles = 10.0;  // far below the 64^3 kernel latency
  EXPECT_THROW(
      (void)timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64, opt),
      sim::DeadlineExceeded);
  EXPECT_EQ(cache.size(), 0u);

  // deadline_cycles is excluded from the key: an under-budget run and an
  // unbounded run share one entry.
  GemmOptions generous;
  generous.deadline_cycles = 1e9;
  (void)timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64, generous);
  EXPECT_EQ(cache.size(), 1u);
  (void)timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.hits"), 1.0);
}

}  // namespace
}  // namespace kami
