// ProfileCache semantics: a hit must return exactly what a fresh simulation
// would produce, keys must distinguish every option that can change a
// profile, and the LRU bookkeeping (promotion, eviction, counters) must be
// observable through the obs registry.
#include <gtest/gtest.h>

#include "core/profile_cache.hpp"
#include "obs/metrics.hpp"

namespace kami {
namespace {

using core::CachedProfile;
using core::ProfileCache;
using core::ProfileKey;
using core::timing_profile;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

void expect_profile_identical(const sim::KernelProfile& a,
                              const sim::KernelProfile& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.tc_busy, b.tc_busy);
  EXPECT_EQ(a.smem_busy, b.smem_busy);
  EXPECT_EQ(a.gmem_busy, b.gmem_busy);
  EXPECT_EQ(a.vector_busy, b.vector_busy);
  EXPECT_EQ(a.useful_flops, b.useful_flops);
  EXPECT_EQ(a.num_warps, b.num_warps);
}

TEST(ProfileCache, HitReturnsFreshSimulationBitForBit) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  const auto cold = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.misses"), 1.0);
  EXPECT_EQ(counter("profile_cache.inserts"), 1.0);
  EXPECT_EQ(counter("profile_cache.hits"), 0.0);

  const auto warm = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 32, 32, 32);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter("profile_cache.hits"), 1.0);
  expect_profile_identical(warm.profile, cold.profile);
  EXPECT_EQ(warm.warps, cold.warps);
  EXPECT_EQ(warm.smem_ratio, cold.smem_ratio);

  // The cached profile is the one a Full run of the same config produces.
  const Matrix<fp16_t> A(32, 32), B(32, 32);
  const auto full = gemm(Algo::OneD, sim::gh200(), A, B);
  expect_profile_identical(warm.profile, full.profile);
  EXPECT_EQ(warm.warps, full.warps);
}

TEST(ProfileCache, KeysDistinguishGemmOptions) {
  const auto& dev = sim::gh200();
  GemmOptions base;
  const auto key = [&](const GemmOptions& o, Algo a = Algo::OneD,
                       Precision p = Precision::FP16, std::size_t m = 32) {
    return ProfileKey::make(a, dev, p, m, 32, 32, o);
  };

  EXPECT_EQ(key(base), key(base));

  GemmOptions warps = base;
  warps.warps = 8;
  EXPECT_NE(key(base), key(warps));

  GemmOptions ratio = base;
  ratio.smem_ratio = 0.5;
  EXPECT_NE(key(base), key(ratio));

  GemmOptions io = base;
  io.charge_global_io = true;
  EXPECT_NE(key(base), key(io));

  GemmOptions theta = base;
  theta.theta_r = 0.5;
  EXPECT_NE(key(base), key(theta));

  GemmOptions slice = base;
  slice.slice_pref = 8;
  EXPECT_NE(key(base), key(slice));

  EXPECT_NE(key(base), key(base, Algo::TwoD));
  EXPECT_NE(key(base), key(base, Algo::OneD, Precision::BF16));
  EXPECT_NE(key(base), key(base, Algo::OneD, Precision::FP16, 64));
  EXPECT_NE(ProfileKey::make(Algo::OneD, sim::gh200(), Precision::FP16, 32, 32, 32, base),
            ProfileKey::make(Algo::OneD, sim::rtx5090(), Precision::FP16, 32, 32, 32,
                             base));

  // Reporting-only options are deliberately NOT part of the key: the same
  // entry serves Full, TimingOnly and trace-recording callers.
  GemmOptions traced = base;
  traced.record_trace = true;
  traced.mode = sim::ExecMode::TimingOnly;
  EXPECT_EQ(key(base), key(traced));
}

TEST(ProfileCache, DistinctOptionsProduceDistinctEntries) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(16);
  GemmOptions four, eight;
  four.warps = 4;
  eight.warps = 8;
  const auto p4 = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64,
                                         four);
  const auto p8 = timing_profile<fp16_t>(cache, Algo::OneD, sim::gh200(), 64, 64, 64,
                                         eight);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.misses"), 2.0);
  EXPECT_EQ(p4.profile.num_warps, 4);
  EXPECT_EQ(p8.profile.num_warps, 8);
  EXPECT_NE(p4.profile.latency, p8.profile.latency);
}

TEST(ProfileCache, LruEvictionWithPromotion) {
  obs::ScopedMetricsReset reset;
  ProfileCache cache(2);
  const auto key = [](std::size_t m) {
    GemmOptions opt;
    return ProfileKey::make(Algo::OneD, sim::gh200(), Precision::FP16, m, 32, 32, opt);
  };
  const auto entry = [](double latency) {
    CachedProfile p;
    p.profile.latency = latency;
    return p;
  };

  cache.insert(key(1), entry(1.0));
  cache.insert(key(2), entry(2.0));
  EXPECT_EQ(cache.size(), 2u);

  // Touch key 1 so key 2 becomes least-recently-used, then overflow.
  ASSERT_NE(cache.find(key(1)), nullptr);
  cache.insert(key(3), entry(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.evictions"), 1.0);
  EXPECT_EQ(cache.find(key(2)), nullptr);  // evicted
  ASSERT_NE(cache.find(key(1)), nullptr);  // survived via promotion
  ASSERT_NE(cache.find(key(3)), nullptr);
  EXPECT_EQ(cache.find(key(3))->profile.latency, 3.0);

  // Overwriting an existing key neither grows nor evicts.
  cache.insert(key(3), entry(30.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("profile_cache.evictions"), 1.0);
  EXPECT_EQ(cache.find(key(3))->profile.latency, 30.0);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key(1)), nullptr);
}

TEST(ProfileCache, InfeasibleConfigurationsThrowAndAreNotCached) {
  ProfileCache cache(16);
  // 3D FP64 at order 128 exceeds GH200's register file (see DESIGN.md).
  EXPECT_THROW((void)timing_profile<double>(cache, Algo::ThreeD, sim::gh200(), 128, 128,
                                            128),
               PreconditionError);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace kami
