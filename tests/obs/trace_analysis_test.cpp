#include "obs/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../testing/test_device.hpp"
#include "sim/bank_conflicts.hpp"
#include "sim/block.hpp"

namespace kami::obs {
namespace {

using kami::testing::tiny_device;

/// A small traced run: 2 warps do smem traffic and an MMA each.
std::shared_ptr<sim::Trace> traced_run(const sim::DeviceSpec& dev) {
  sim::ThreadBlock blk(dev, 2);
  blk.enable_trace();
  auto tile = blk.smem().alloc<float>(16, 16);
  blk.phase([&](sim::Warp& w) {
    auto f = w.alloc_fragment<float>(16, 16);
    w.store_smem(tile, f.view());
    w.load_smem(f, tile);
    auto B = w.alloc_fragment<float>(16, 16);
    auto C = w.alloc_fragment<float>(16, 16);
    w.mma(C, f.view(), B.view());
  });
  blk.sync();
  return blk.take_trace();
}

TEST(UtilizationTimeline, BusyNeverExceedsWallClock) {
  const auto dev = tiny_device();
  const auto trace = traced_run(dev);
  ASSERT_NE(trace, nullptr);
  const UtilizationTimeline u = utilization_timeline(*trace, dev, 16);

  ASSERT_EQ(u.resources.size(), kNumResources);
  ASSERT_EQ(u.busy.size(), kNumResources);
  EXPECT_GT(u.wall_cycles, 0.0);
  EXPECT_DOUBLE_EQ(u.bucket_cycles * 16.0, u.wall_cycles);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    ASSERT_EQ(u.busy[r].size(), 16u);
    for (double frac : u.busy[r]) {
      EXPECT_GE(frac, 0.0);
      EXPECT_LE(frac, 1.0);
    }
    EXPECT_LE(u.busy_cycles(r), u.wall_cycles + 1e-9);
  }
  // The run did smem traffic and MMAs, so those resources saw activity.
  EXPECT_GT(u.busy_cycles(static_cast<std::size_t>(Resource::SmemPort)), 0.0);
  EXPECT_GT(u.busy_cycles(static_cast<std::size_t>(Resource::TensorCore)), 0.0);
  // No global traffic was charged.
  EXPECT_DOUBLE_EQ(u.busy_cycles(static_cast<std::size_t>(Resource::GmemPort)), 0.0);
}

TEST(UtilizationTimeline, SmemBusyMatchesPortAccounting) {
  // Busy cycles reconstructed from the trace must equal bytes / B_sm, the
  // quantity PortTimeline booked (latency excluded).
  const auto dev = tiny_device();
  const auto trace = traced_run(dev);
  double bytes = trace->total_amount(sim::OpKind::SmemStore) +
                 trace->total_amount(sim::OpKind::SmemLoad);
  const UtilizationTimeline u = utilization_timeline(*trace, dev, 64);
  EXPECT_NEAR(u.busy_cycles(static_cast<std::size_t>(Resource::SmemPort)),
              bytes / dev.smem_bytes_per_cycle(), 1e-6);
}

TEST(CriticalWarp, PicksTheBusiestWarp) {
  sim::Trace tr;
  tr.record({0, sim::OpKind::Mma, 0.0, 0.0, 10.0, 100.0});
  tr.record({1, sim::OpKind::Mma, 0.0, 0.0, 25.0, 100.0});
  tr.record({1, sim::OpKind::SyncWait, 25.0, 25.0, 30.0, 5.0});
  const CriticalWarpReport rep = critical_warp_analysis(tr);
  EXPECT_EQ(rep.critical_warp, 1);
  ASSERT_EQ(rep.warps.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.warps[0].busy_cycles, 10.0);
  EXPECT_DOUBLE_EQ(rep.warps[1].busy_cycles, 25.0);
  EXPECT_DOUBLE_EQ(rep.warps[1].sync_wait_cycles, 5.0);
  EXPECT_DOUBLE_EQ(rep.warps[1].finish_cycles, 30.0);
}

TEST(CriticalWarp, TiesBreakToLowestId) {
  sim::Trace tr;
  tr.record({3, sim::OpKind::Mma, 0.0, 0.0, 10.0, 1.0});
  tr.record({1, sim::OpKind::Mma, 0.0, 0.0, 10.0, 1.0});
  EXPECT_EQ(critical_warp_analysis(tr).critical_warp, 1);
}

TEST(BankConflictHeatmap, MatchesStridedThetaModel) {
  const auto dev = tiny_device();  // 32 banks x 4 B
  const BankConflictHeatmap hm = bank_conflict_heatmap(dev, 4, {1, 2, 32});
  ASSERT_EQ(hm.strides.size(), 3u);
  ASSERT_EQ(hm.theta.size(), 3u);
  ASSERT_EQ(hm.word_hits.size(), 3u);

  // Unit stride: one word per bank, conflict free.
  EXPECT_DOUBLE_EQ(hm.theta[0], 1.0);
  for (std::size_t hits : hm.word_hits[0]) EXPECT_EQ(hits, 1u);

  // Stride 32 with 4 B elements on 32 banks: all 32 lanes pile onto bank 0.
  EXPECT_DOUBLE_EQ(hm.theta[2], 1.0 / 32.0);
  EXPECT_EQ(hm.word_hits[2][0], 32u);
  for (std::size_t b = 1; b < hm.banks; ++b) EXPECT_EQ(hm.word_hits[2][b], 0u);

  // theta column always equals the simulator's own conflict model.
  for (std::size_t i = 0; i < hm.strides.size(); ++i)
    EXPECT_DOUBLE_EQ(hm.theta[i], sim::strided_access_theta(dev, 4, hm.strides[i]));
}

TEST(RegionOpBreakdown, AttributesOpsToInnermostRegion) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 1);
  blk.enable_trace();
  RegionProfiler prof([&blk] { return blk.cycles(); });
  auto tile = blk.smem().alloc<float>(8, 8);
  {
    ScopedRegion r(prof, "copy_phase");
    blk.phase([&](sim::Warp& w) {
      auto f = w.alloc_fragment<float>(8, 8);
      w.store_smem(tile, f.view());
    });
    blk.sync();
  }
  {
    ScopedRegion r(prof, "compute_phase");
    blk.phase([&](sim::Warp& w) {
      auto A = w.alloc_fragment<float>(8, 8);
      auto B = w.alloc_fragment<float>(8, 8);
      auto C = w.alloc_fragment<float>(8, 8);
      w.mma(C, A.view(), B.view());
    });
    blk.sync();
  }
  prof.freeze();
  const auto trace = blk.take_trace();
  const auto breakdown = region_op_breakdown(*trace, prof);

  double store_in_copy = 0.0, mma_in_compute = 0.0, mma_elsewhere = 0.0;
  for (const auto& rb : breakdown) {
    for (const auto& [kind, cycles] : rb.op_cycles) {
      if (rb.path == "copy_phase" && kind == "smem_store") store_in_copy += cycles;
      if (rb.path == "compute_phase" && kind == "mma") mma_in_compute += cycles;
      if (rb.path != "compute_phase" && kind == "mma") mma_elsewhere += cycles;
    }
  }
  EXPECT_GT(store_in_copy, 0.0);
  EXPECT_GT(mma_in_compute, 0.0);
  EXPECT_DOUBLE_EQ(mma_elsewhere, 0.0);
}

TEST(ChromeTraceWithRegions, EmitsMetadataAndPhaseTracks) {
  const auto dev = tiny_device();
  sim::ThreadBlock blk(dev, 2);
  blk.enable_trace();
  RegionProfiler prof([&blk] { return blk.cycles(); });
  auto tile = blk.smem().alloc<float>(8, 8);
  {
    ScopedRegion r(prof, "phase \"quoted\"");  // must be escaped in the JSON
    blk.phase([&](sim::Warp& w) {
      auto f = w.alloc_fragment<float>(8, 8);
      w.store_smem(tile, f.view());
    });
    blk.sync();
  }
  prof.freeze();
  const auto trace = blk.take_trace();

  std::ostringstream os;
  dump_chrome_trace_with_regions(os, *trace, &prof, "unit test");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("warp 0"), std::string::npos);
  EXPECT_NE(json.find("warp 1"), std::string::npos);
  EXPECT_NE(json.find("phases (depth 1)"), std::string::npos);
  EXPECT_NE(json.find("phase \\\"quoted\\\""), std::string::npos);
  // The whole document must parse as JSON (escaping really worked).
  EXPECT_NO_THROW(Json::parse(json));
}

}  // namespace
}  // namespace kami::obs
