#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace kami::obs {
namespace {

RunReport sample_report() {
  RunReport report("unit");
  report.set_meta("device", "TinyGPU");
  report.set_meta("blocks", "16384");

  ReportTable table;
  table.title = "Fig X: sample";
  table.headers = {"n", "tflops"};
  table.rows = {{"64", "1.25"}, {"128", "2.50"}};
  report.add_table(std::move(table));

  Breakdown bd;
  bd.name = "TinyGPU/fp16/n=64/KAMI-1D";
  bd.categories = {{"smem_comm", 10.0}, {"compute", 40.0}, {"sync_wait", 2.5}};
  report.add_breakdown(std::move(bd));

  MetricRegistry metrics;
  metrics.counter("sim.mma.issued").add(12.0);
  metrics.gauge("sim.smem.high_water_bytes").set(4096.0);
  metrics.histogram("planner.reg_demand_bytes").observe(192.0);
  report.set_metrics(metrics);

  double now = 0.0;
  RegionProfiler prof([&now] { return now; });
  prof.enter("kernel");
  now = 8.0;
  prof.leave();
  prof.freeze();
  report.set_regions(prof);

  UtilizationTimeline u;
  u.bucket_cycles = 2.0;
  u.wall_cycles = 8.0;
  u.resources = {"smem_port", "tensor_core"};
  u.busy = {{1.0, 0.5, 0.0, 0.0}, {0.0, 0.25, 0.25, 0.0}};
  report.set_utilization(std::move(u));
  return report;
}

TEST(RunReport, JsonRoundTripPreservesEverything) {
  const RunReport report = sample_report();

  std::ostringstream os;
  report.write_json(os);
  const Json doc = Json::parse(os.str());
  const RunReport back = RunReport::from_json(doc);

  EXPECT_EQ(back.name(), "unit");
  ASSERT_EQ(back.meta().size(), 2u);
  EXPECT_EQ(back.meta()[0].first, "device");
  EXPECT_EQ(back.meta()[0].second, "TinyGPU");

  ASSERT_EQ(back.tables().size(), 1u);
  const ReportTable& t = back.tables()[0];
  EXPECT_EQ(t.title, "Fig X: sample");
  ASSERT_EQ(t.headers.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "2.50");  // cells survive as the exact strings

  const Breakdown* bd = back.find_breakdown("TinyGPU/fp16/n=64/KAMI-1D");
  ASSERT_NE(bd, nullptr);
  ASSERT_EQ(bd->categories.size(), 3u);
  EXPECT_EQ(bd->categories[0].first, "smem_comm");  // order preserved
  ASSERT_NE(bd->find("sync_wait"), nullptr);
  EXPECT_DOUBLE_EQ(*bd->find("sync_wait"), 2.5);

  EXPECT_DOUBLE_EQ(
      back.metrics().at("counters").at("sim.mma.issued").as_number(), 12.0);
  EXPECT_EQ(back.regions().at(std::size_t{0}).at("name").as_string(), "kernel");

  ASSERT_TRUE(back.utilization().has_value());
  const UtilizationTimeline& u = *back.utilization();
  EXPECT_DOUBLE_EQ(u.bucket_cycles, 2.0);
  EXPECT_DOUBLE_EQ(u.wall_cycles, 8.0);
  ASSERT_EQ(u.resources.size(), 2u);
  EXPECT_DOUBLE_EQ(u.busy_cycles(0), 3.0);  // (1.0 + 0.5) * 2 cycles
}

TEST(RunReport, GoldenSchemaShape) {
  // Lock the v1 envelope: field names here are the public contract that
  // tools/kami_prof and external consumers parse.
  const Json doc = sample_report().to_json();
  EXPECT_EQ(doc.at("schema").as_string(), kRunSchemaName);
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(), kRunSchemaVersion);
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  EXPECT_NE(doc.find("meta"), nullptr);
  EXPECT_NE(doc.find("tables"), nullptr);
  EXPECT_NE(doc.find("breakdowns"), nullptr);
  EXPECT_NE(doc.find("metrics"), nullptr);
  EXPECT_NE(doc.find("regions"), nullptr);
  EXPECT_NE(doc.find("utilization"), nullptr);

  const Json& table = doc.at("tables").at(std::size_t{0});
  EXPECT_NE(table.find("title"), nullptr);
  EXPECT_NE(table.find("headers"), nullptr);
  EXPECT_NE(table.find("rows"), nullptr);

  const Json& cat =
      doc.at("breakdowns").at(std::size_t{0}).at("categories").at(std::size_t{0});
  EXPECT_EQ(cat.at("name").as_string(), "smem_comm");
  EXPECT_DOUBLE_EQ(cat.at("cycles").as_number(), 10.0);
}

TEST(RunReport, FromJsonRejectsWrongSchema) {
  Json doc = sample_report().to_json();
  doc.set("schema", Json("not.kami"));
  EXPECT_THROW(RunReport::from_json(doc), SchemaError);

  Json doc2 = sample_report().to_json();
  doc2.set("schema_version", Json(999.0));
  EXPECT_THROW(RunReport::from_json(doc2), SchemaError);

  EXPECT_THROW(RunReport::from_json(Json::parse("{\"x\":1}")), SchemaError);
}

TEST(RunReport, FromJsonRejectsRaggedTableRows) {
  Json doc = sample_report().to_json();
  // Drop a cell from the second row so it no longer matches the header width.
  Json rows = doc.at("tables").at(std::size_t{0}).at("rows");
  Json bad_row = Json::array();
  bad_row.push_back(Json("64"));
  Json new_rows = Json::array();
  new_rows.push_back(bad_row);
  Json table = doc.at("tables").at(std::size_t{0});
  table.set("rows", new_rows);
  Json tables = Json::array();
  tables.push_back(table);
  doc.set("tables", tables);
  (void)rows;
  EXPECT_THROW(RunReport::from_json(doc), SchemaError);
}

TEST(RunReport, CapturesTablePrinterCellsVerbatim) {
  TablePrinter tp({"alg", "cycles"});
  tp.add_row({"kami_2d", "123.4"});
  RunReport report("t");
  report.add_table("Tbl", tp);
  ASSERT_EQ(report.tables().size(), 1u);
  EXPECT_EQ(report.tables()[0].headers[0], "alg");
  EXPECT_EQ(report.tables()[0].rows[0][1], "123.4");
}

TEST(RunReport, CsvContainsSectionsAndCells) {
  std::ostringstream os;
  sample_report().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("# Fig X: sample"), std::string::npos);
  EXPECT_NE(csv.find("n,tflops"), std::string::npos);
  EXPECT_NE(csv.find("128,2.50"), std::string::npos);
  EXPECT_NE(csv.find("smem_comm"), std::string::npos);
}

}  // namespace
}  // namespace kami::obs
