#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace kami::obs {
namespace {

TEST(Counter, AccumulatesAndRejectsNegative) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add(3.0);
  c.increment();
  EXPECT_DOUBLE_EQ(c.value(), 4.0);
  EXPECT_THROW(c.add(-1.0), kami::PreconditionError);
  EXPECT_DOUBLE_EQ(c.value(), 4.0);  // failed add leaves the value alone
}

TEST(Gauge, SetAndSetMax) {
  Gauge g;
  g.set(5.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set may go down
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Histogram, MomentsAndPercentiles) {
  Histogram h;
  for (double v : {40.0, 10.0, 30.0, 20.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 40.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 40.0);
  // Linear interpolation between order statistics: rank 1.5 of {10,20,30,40}.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 25.0);
  // Observing after a percentile query keeps working (lazy re-sort).
  h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 50.0);
}

TEST(Histogram, EmptyDistributionIsNanFreeZeros) {
  // The empty-distribution contract: an admitted-but-never-completed shape
  // class (or a freshly reset registry) must export well-defined zeros, not
  // throw and not produce NaN.
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
  // The percentile domain check still holds regardless of emptiness.
  EXPECT_THROW(h.percentile(-1.0), kami::PreconditionError);
  EXPECT_THROW(h.percentile(101.0), kami::PreconditionError);
}

TEST(MetricRegistry, ToJsonEmitsEmptyHistograms) {
  MetricRegistry reg;
  reg.histogram("never.observed");
  const Json snapshot = reg.to_json();
  const Json& entry = snapshot.at("histograms").at("never.observed");
  for (const char* stat : {"count", "sum", "min", "max", "p50", "p90", "p99"})
    EXPECT_DOUBLE_EQ(entry.at(stat).as_number(), 0.0) << stat;
}

TEST(MetricRegistry, FindOrCreateReturnsStableReferences) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.bytes");
  a.add(7.0);
  // Creating more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) reg.counter("other." + std::to_string(i));
  Counter& again = reg.counter("x.bytes");
  EXPECT_EQ(&a, &again);
  EXPECT_DOUBLE_EQ(again.value(), 7.0);
}

TEST(MetricRegistry, ResetValuesPreservesHandles) {
  MetricRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5.0);
  g.set(3.0);
  h.observe(1.0);
  reg.reset_values();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.add(2.0);  // the pre-reset handle still publishes into the registry
  EXPECT_DOUBLE_EQ(reg.counter_values().at("c"), 2.0);
}

TEST(MetricRegistry, FindDoesNotCreate) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, ToJsonIsNameSorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1.0);
  reg.counter("alpha").add(2.0);
  reg.histogram("lat").observe(4.0);
  const Json doc = reg.to_json();
  const auto& counters = doc.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
  const Json& lat = doc.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(lat.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(lat.at("p50").as_number(), 4.0);
}

TEST(MetricRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

}  // namespace
}  // namespace kami::obs
