// Request-span traces and the flight recorder: builder mechanics, the JSON
// and canonical-text forms, the recorder's bounded keep-errors retention,
// and the execution engine's span propagation (traces must be bit-identical
// at every worker count).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace_span.hpp"

namespace kami {
namespace {

using obs::FlightRecorder;
using obs::Json;
using obs::RequestTrace;
using obs::TraceBuilder;

RequestTrace ok_trace(const std::string& id) {
  TraceBuilder b(id);
  b.open("work");
  b.advance(10.0);
  b.close();
  b.root_attr("code", "ok");
  return b.finish();
}

RequestTrace error_trace(const std::string& id, const char* code = "transient_fault") {
  TraceBuilder b(id);
  b.open("work");
  b.advance(5.0);
  b.root_attr("code", code);
  return b.finish();  // also closes the still-open "work" span
}

TEST(TraceSpan, BuilderNestsSpansAndAdvancesTheClock) {
  TraceBuilder b("req-1");
  EXPECT_EQ(b.clock(), 0.0);
  b.open("outer");
  b.advance(100.0);
  b.open("inner");
  b.attr("key", "value");
  b.attr_num("cycles", 41.5);
  b.advance(41.5);
  b.close();  // inner
  b.advance(8.5);
  b.close();  // outer
  b.set_meta("shape", "64x64x64");
  const RequestTrace t = b.finish();

  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.request_id, "req-1");
  EXPECT_EQ(t.root()->name, "request");
  EXPECT_EQ(t.root()->begin_cycles, 0.0);
  EXPECT_EQ(t.root()->end_cycles, 150.0);

  const obs::Span* outer = t.find_span("outer");
  const obs::Span* inner = t.find_span("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0);
  EXPECT_EQ(inner->parent, static_cast<std::int32_t>(outer->id));
  EXPECT_EQ(inner->begin_cycles, 100.0);
  EXPECT_EQ(inner->end_cycles, 141.5);
  ASSERT_NE(inner->find_attr("key"), nullptr);
  EXPECT_EQ(*inner->find_attr("key"), "value");
  EXPECT_EQ(*inner->find_attr("cycles"), "41.5");
  ASSERT_NE(t.find_meta("shape"), nullptr);
  EXPECT_EQ(*t.find_meta("shape"), "64x64x64");
  EXPECT_EQ(t.children_of(0), std::vector<std::uint32_t>{outer->id});
}

TEST(TraceSpan, FinishClosesOpenSpansAtTheFinalClock) {
  TraceBuilder b("req-1");
  b.open("left-open");
  b.advance(7.0);
  const RequestTrace t = b.finish();
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[1].end_cycles, 7.0);
  EXPECT_EQ(t.root()->end_cycles, 7.0);
}

TEST(TraceSpan, IsErrorRoutesOnTheRootCodeAttribute) {
  EXPECT_FALSE(ok_trace("a").is_error());
  EXPECT_TRUE(error_trace("b").is_error());
  TraceBuilder no_code("c");
  EXPECT_FALSE(no_code.finish().is_error());
}

TEST(TraceSpan, JsonRoundTripIsExact) {
  TraceBuilder b("req-42");
  b.set_meta("device", "GH200");
  b.open("rung[0]");
  b.attr("label", "kami_2d");
  b.advance(123.456);
  b.close();
  b.root_attr("code", "ok");
  const RequestTrace t = b.finish();

  const RequestTrace back = RequestTrace::from_json(t.to_json());
  EXPECT_EQ(back.canonical_text(), t.canonical_text());
  EXPECT_EQ(back.request_id, t.request_id);
  ASSERT_EQ(back.spans.size(), t.spans.size());
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].begin_cycles, t.spans[i].begin_cycles);
    EXPECT_EQ(back.spans[i].end_cycles, t.spans[i].end_cycles);
    EXPECT_EQ(back.spans[i].attrs, t.spans[i].attrs);
  }
}

// Hand-build a trace document with one root plus one child span whose
// id/parent/interval are caller-controlled, for schema-rejection tests.
Json trace_doc(double child_id, double child_parent, double child_end) {
  const auto span = [](double id, double parent, double end) {
    Json s = Json::object();
    s.set("id", id);
    s.set("parent", parent);
    s.set("name", "s" + obs::json_number(id));
    s.set("begin_cycles", 0.0);
    s.set("end_cycles", end);
    return s;
  };
  Json spans = Json::array();
  spans.push_back(span(0.0, -1.0, 10.0));
  spans.push_back(span(child_id, child_parent, child_end));
  Json doc = Json::object();
  doc.set("request_id", "req-1");
  doc.set("spans", std::move(spans));
  return doc;
}

TEST(TraceSpan, FromJsonRejectsMalformedTrees) {
  // The well-formed control parses.
  EXPECT_EQ(RequestTrace::from_json(trace_doc(1.0, 0.0, 5.0)).spans.size(), 2u);
  // Span ids must be 0..n-1 in order.
  EXPECT_THROW(RequestTrace::from_json(trace_doc(5.0, 0.0, 5.0)), obs::SchemaError);
  // A parent must precede its child.
  EXPECT_THROW(RequestTrace::from_json(trace_doc(1.0, 1.0, 5.0)), obs::SchemaError);
  // An interval may not end before it begins.
  EXPECT_THROW(RequestTrace::from_json(trace_doc(1.0, 0.0, -5.0)), obs::SchemaError);
  // No spans at all.
  Json empty = Json::object();
  empty.set("request_id", "x");
  empty.set("spans", Json::array());
  EXPECT_THROW(RequestTrace::from_json(empty), obs::SchemaError);
}

TEST(TraceSpan, GraftRebasesChildSpansUnderTheOpenSpan) {
  TraceBuilder parent("req-1");
  parent.open("region");
  parent.advance(50.0);

  TraceBuilder child("shard", "task[0]", 50.0);
  child.open("step");
  child.advance(25.0);
  parent.graft(child.finish());

  parent.advance(25.0);
  const RequestTrace t = parent.finish();
  ASSERT_EQ(t.spans.size(), 4u);  // request, region, task[0], step
  const obs::Span* task = t.find_span("task[0]");
  const obs::Span* step = t.find_span("step");
  ASSERT_NE(task, nullptr);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(task->parent, static_cast<std::int32_t>(t.find_span("region")->id));
  EXPECT_EQ(step->parent, static_cast<std::int32_t>(task->id));
  EXPECT_EQ(task->begin_cycles, 50.0);
  EXPECT_EQ(step->end_cycles, 75.0);
}

TEST(FlightRecorder, EvictsOldestOkTracesPastCapacity) {
  FlightRecorder::Config cfg;
  cfg.completed_capacity = 3;
  FlightRecorder rec(cfg);
  for (int i = 0; i < 10; ++i) rec.record(ok_trace("req-" + std::to_string(i)));
  EXPECT_EQ(rec.completed_count(), 3u);
  const auto traces = rec.snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].request_id, "req-7");
  EXPECT_EQ(traces[2].request_id, "req-9");
}

TEST(FlightRecorder, OkChurnNeverEvictsErrorTraces) {
  FlightRecorder::Config cfg;
  cfg.completed_capacity = 2;
  cfg.error_capacity = 8;
  FlightRecorder rec(cfg);
  rec.record(error_trace("err-0"));
  for (int i = 0; i < 100; ++i) rec.record(ok_trace("req-" + std::to_string(i)));
  rec.record(error_trace("err-1"));
  EXPECT_EQ(rec.error_count(), 2u);
  EXPECT_EQ(rec.completed_count(), 2u);

  // Snapshot interleaves by record order: err-0 first, err-1 last.
  const auto traces = rec.snapshot();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().request_id, "err-0");
  EXPECT_EQ(traces.back().request_id, "err-1");
}

TEST(FlightRecorder, ErrorStoreIsItsOwnBoundedRing) {
  FlightRecorder::Config cfg;
  cfg.error_capacity = 4;
  FlightRecorder rec(cfg);
  for (int i = 0; i < 20; ++i) rec.record(error_trace("err-" + std::to_string(i)));
  EXPECT_EQ(rec.error_count(), 4u);
  EXPECT_EQ(rec.snapshot().front().request_id, "err-16");
}

TEST(FlightRecorder, DumpRoundTripsThroughTracesFromJson) {
  FlightRecorder rec;
  rec.record(ok_trace("req-1"));
  rec.record(error_trace("req-2", "deadline_exceeded"));
  const auto back = FlightRecorder::traces_from_json(rec.to_json());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].canonical_text(), ok_trace("req-1").canonical_text());
  EXPECT_TRUE(back[1].is_error());

  Json bad = rec.to_json();
  bad.set("schema", "something.else");
  EXPECT_THROW(FlightRecorder::traces_from_json(bad), obs::SchemaError);
  Json badver = rec.to_json();
  badver.set("schema_version", 999.0);
  EXPECT_THROW(FlightRecorder::traces_from_json(badver), obs::SchemaError);
}

// ThreadSanitizer CI target: concurrent recording and snapshotting must be
// race-free and never lose an error trace.
TEST(FlightRecorderConcurrency, ParallelRecordAndSnapshot) {
  FlightRecorder::Config cfg;
  cfg.completed_capacity = 16;
  cfg.error_capacity = 1024;
  FlightRecorder rec(cfg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id = std::to_string(t) + "-" + std::to_string(i);
        rec.record(i % 2 == 0 ? ok_trace("ok-" + id) : error_trace("err-" + id));
        if (i % 16 == 0) (void)rec.snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.error_count(), static_cast<std::size_t>(kThreads * kPerThread / 2));
  EXPECT_EQ(rec.completed_count(), 16u);

  // Every surviving trace is unique and sequence order is monotone.
  std::set<std::string> ids;
  for (const auto& t : rec.snapshot()) ids.insert(t.request_id);
  EXPECT_EQ(ids.size(), rec.size());
}

// The engine's span-propagation contract: a traced parallel_for produces the
// byte-identical trace at every worker count, including under exceptions.
std::string traced_region(int workers, std::size_t n, std::size_t throw_at = SIZE_MAX) {
  const exec::ExecutionEngine engine(workers);
  TraceBuilder b("req-1");
  b.open("fan_out");
  obs::ScopedTracer install(&b);
  try {
    engine.parallel_for(n, [&](std::size_t i) {
      TraceBuilder* t = obs::current_tracer();
      EXPECT_NE(t, nullptr);
      t->open("sim");
      t->attr_num("index", static_cast<double>(i));
      t->advance(static_cast<double>(i + 1) * 10.0);
      t->close();
      if (i == throw_at) throw std::runtime_error("task failed");
    });
  } catch (const std::runtime_error&) {
    b.root_attr("code", "task_failed");
  }
  return b.finish().canonical_text();
}

TEST(ParallelTraceDeterminism, TracesAreBitIdenticalAcrossWorkerCounts) {
  const std::string serial = traced_region(1, 12);
  for (const int workers : {2, 4, 8})
    EXPECT_EQ(traced_region(workers, 12), serial) << "workers=" << workers;

  // The region advances the parent clock by the slowest task, and every
  // task[i] shard span is present.
  EXPECT_NE(serial.find("task[11]"), std::string::npos);
  EXPECT_NE(serial.find("fan_out [0, 120)"), std::string::npos) << serial;
}

TEST(ParallelTraceDeterminism, LowestFailingIndexContractHoldsForTraces) {
  const std::string serial = traced_region(1, 8, /*throw_at=*/3);
  for (const int workers : {2, 4, 8})
    EXPECT_EQ(traced_region(workers, 8, 3), serial) << "workers=" << workers;
  // Shards up to and including the failing index are grafted; later ones
  // are discarded exactly like their metric shards.
  EXPECT_NE(serial.find("task[3]"), std::string::npos);
  EXPECT_EQ(serial.find("task[4]"), std::string::npos);
}

TEST(ParallelTraceDeterminism, UntracedRegionsStillRunSerialFastPath) {
  // No tracer installed: parallel_for must not fabricate spans.
  const exec::ExecutionEngine engine(4);
  std::vector<int> hits(16, 0);
  engine.parallel_for(16, [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(obs::current_tracer(), nullptr);
}

TEST(TraceSpan, ChromeExportIsWellFormedJson) {
  std::ostringstream os;
  obs::dump_chrome_traces(os, {ok_trace("req-1"), error_trace("req-2")});
  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  // 1 process_name + 2x (thread_name + 2 spans) = 7 events.
  EXPECT_EQ(doc.at("traceEvents").size(), 7u);
}

}  // namespace
}  // namespace kami
