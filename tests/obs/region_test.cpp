#include "obs/region.hpp"

#include <gtest/gtest.h>

namespace kami::obs {
namespace {

TEST(RegionProfiler, BuildsTreeAndAggregatesRepeats) {
  double now = 0.0;
  RegionProfiler prof([&now] { return now; });

  prof.enter("kernel");
  now = 10.0;
  prof.enter("stage");
  now = 30.0;
  prof.leave();  // stage: 20
  now = 35.0;
  prof.enter("stage");
  now = 40.0;
  prof.leave();  // stage again: +5 (same node)
  now = 50.0;
  prof.leave();  // kernel: 50
  prof.freeze();

  const RegionNode& root = prof.root();
  ASSERT_EQ(root.children.size(), 1u);
  const RegionNode* kernel = root.find("kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_DOUBLE_EQ(kernel->total_cycles, 50.0);
  EXPECT_EQ(kernel->count, 1u);
  ASSERT_EQ(kernel->children.size(), 1u);  // both entries folded into one node
  const RegionNode* stage = kernel->find("stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_DOUBLE_EQ(stage->total_cycles, 25.0);
  EXPECT_EQ(stage->count, 2u);
  EXPECT_DOUBLE_EQ(kernel->self_cycles(), 25.0);
}

TEST(RegionProfiler, NestingInvariants) {
  // A parent's inclusive time always covers its children's inclusive time.
  double now = 0.0;
  RegionProfiler prof([&now] { return now; });
  prof.enter("a");
  now = 1.0;
  prof.enter("b");
  now = 2.0;
  prof.enter("c");
  now = 5.0;
  prof.leave();
  now = 6.0;
  prof.leave();
  now = 9.0;
  prof.leave();
  prof.freeze();

  const RegionNode* a = prof.root().find("a");
  ASSERT_NE(a, nullptr);
  const RegionNode* b = a->find("b");
  ASSERT_NE(b, nullptr);
  const RegionNode* c = b->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(a->total_cycles, b->total_cycles);
  EXPECT_GE(b->total_cycles, c->total_cycles);
  EXPECT_GE(a->self_cycles(), 0.0);
  EXPECT_GE(b->self_cycles(), 0.0);

  // Intervals record the closed occurrences deepest-path included.
  ASSERT_EQ(prof.intervals().size(), 3u);
  bool saw_abc = false;
  for (const auto& iv : prof.intervals()) {
    EXPECT_LE(iv.start, iv.end);
    if (iv.path == "a/b/c") {
      saw_abc = true;
      EXPECT_EQ(iv.depth, 3);
      EXPECT_DOUBLE_EQ(iv.start, 2.0);
      EXPECT_DOUBLE_EQ(iv.end, 5.0);
    }
  }
  EXPECT_TRUE(saw_abc);
}

TEST(RegionProfiler, FreezeRequiresBalancedRegions) {
  double now = 0.0;
  RegionProfiler prof([&now] { return now; });
  prof.enter("open");
  EXPECT_THROW(prof.freeze(), kami::PreconditionError);
  prof.leave();
  prof.freeze();
  EXPECT_THROW(prof.enter("late"), kami::PreconditionError);
}

TEST(RegionProfiler, LeaveWithoutEnterThrows) {
  RegionProfiler prof([] { return 0.0; });
  EXPECT_THROW(prof.leave(), kami::PreconditionError);
}

TEST(ScopedRegion, NullProfilerIsNoOp) {
  RegionProfiler* none = nullptr;
  {
    ScopedRegion r(none, "anything");  // must not crash
  }
  SUCCEED();
}

TEST(ScopedRegion, CloseLeavesEarlyExactlyOnce) {
  double now = 0.0;
  RegionProfiler prof([&now] { return now; });
  {
    ScopedRegion r(prof, "outer");
    now = 4.0;
    r.close();  // destructor must not leave() a second time
    prof.freeze();
  }
  const RegionNode* outer = prof.root().find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->total_cycles, 4.0);
}

TEST(RegionProfiler, ToJsonShape) {
  double now = 0.0;
  RegionProfiler prof([&now] { return now; });
  prof.enter("k");
  now = 7.0;
  prof.leave();
  prof.freeze();
  // to_json() is the schema's "regions" section: an array of top-level nodes.
  const Json doc = prof.to_json();
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.at(std::size_t{0}).at("name").as_string(), "k");
  EXPECT_DOUBLE_EQ(doc.at(std::size_t{0}).at("total_cycles").as_number(), 7.0);
}

}  // namespace
}  // namespace kami::obs
