// A tiny synthetic device with round constants so simulator tests can be
// verified by hand arithmetic:
//   O_tc(FP32) = 32 ops/cycle, 2 tensor cores, L_sm = 10, B_sm = 128 B/cyc,
//   gmem latency 100 / 16 B per cycle, register moves 512 B/cycle.
#pragma once

#include "sim/device.hpp"

namespace kami::testing {

inline sim::DeviceSpec tiny_device() {
  sim::DeviceSpec d;
  d.name = "TinySim";
  d.vendor = "NVIDIA";  // NVIDIA-style MMA shapes: fp32 m16n8k8
  d.api = "CUDA";
  d.boost_clock_ghz = 1.0;
  d.num_sms = 1;
  d.tensor_cores_per_sm = 2;
  d.smem_banks = 32;
  d.bank_width_bytes = 4;
  d.smem_latency_cycles = 10.0;
  d.gmem_latency_cycles = 100.0;
  d.gmem_bytes_per_cycle_per_sm = 16.0;
  d.reg_bytes_per_cycle = 512.0;
  d.smem_bytes_per_block = 64 * 1024;
  // peak = sms * n_tc * O_tc * clock: choose O_tc = 32 for every precision.
  d.peak_fp64_tflops = 1 * 2 * 32 * 1.0e9 / 1e12;
  d.peak_fp32_tflops = d.peak_fp64_tflops;
  d.peak_fp16_tflops = d.peak_fp64_tflops;
  d.peak_fp8_tflops = d.peak_fp64_tflops;
  d.mma_efficiency = 1.0;
  d.vector_fp64_flops_per_cycle = 64.0;
  d.vector_fp32_flops_per_cycle = 64.0;
  d.vector_fp16_flops_per_cycle = 64.0;
  return d;
}

}  // namespace kami::testing
