#include "types/matrix.hpp"

#include <gtest/gtest.h>

#include "types/numeric_traits.hpp"

namespace kami {
namespace {

TEST(Matrix, ShapeAndIndexing) {
  Matrix<double> m(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 15u);
  m(2, 4) = 7.5;
  EXPECT_DOUBLE_EQ(m(2, 4), 7.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);  // zero-initialized
}

TEST(Matrix, Fill) {
  Matrix<float> m(2, 2);
  m.fill(3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 3.0f);
}

TEST(Matrix, RandomIsDeterministicPerSeed) {
  Rng r1(99), r2(99);
  const auto a = random_matrix<double>(4, 4, r1);
  const auto b = random_matrix<double>(4, 4, r2);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Matrix, RandomRespectsRange) {
  Rng r(1);
  const auto m = random_matrix<double>(16, 16, r, -0.25, 0.25);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), -0.25);
      EXPECT_LT(m(i, j), 0.25);
    }
}

TEST(Matrix, RandomRoundsIntoStoragePrecision) {
  Rng r(2);
  const auto m = random_matrix<fp16_t>(8, 8, r);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const float v = static_cast<float>(m(i, j));
      EXPECT_EQ(fp16_t::encode(v), m(i, j).bits());  // already quantized
    }
}

TEST(Matrix, MaxAbsDiffAcrossTypes) {
  Matrix<double> a(1, 2);
  Matrix<float> b(1, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 1.5f;
  a(0, 1) = -2.0;
  b(0, 1) = -2.25f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Matrix, MaxAbsDiffRejectsShapeMismatch) {
  Matrix<double> a(2, 2), b(2, 3);
  EXPECT_THROW((void)max_abs_diff(a, b), PreconditionError);
}

TEST(Matrix, ToDoubleWidens) {
  Matrix<fp16_t> h(1, 1);
  h(0, 0) = fp16_t{1.5f};
  const auto d = h.to_double();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.5);
}

}  // namespace
}  // namespace kami
