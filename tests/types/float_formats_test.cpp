#include "types/float_formats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace kami {
namespace {

// ---------------------------------------------------------------------------
// fp16 (IEEE binary16)
// ---------------------------------------------------------------------------

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(fp16_t::encode(0.0f), 0x0000u);
  EXPECT_EQ(fp16_t::encode(1.0f), 0x3C00u);
  EXPECT_EQ(fp16_t::encode(-2.0f), 0xC000u);
  EXPECT_EQ(fp16_t::encode(65504.0f), 0x7BFFu);  // max finite
  EXPECT_EQ(fp16_t::encode(0.5f), 0x3800u);
  EXPECT_EQ(fp16_t::encode(-0.0f), 0x8000u);
}

TEST(Fp16, OverflowBecomesInfinity) {
  EXPECT_EQ(fp16_t::encode(65520.0f), 0x7C00u);  // rounds above max -> inf
  EXPECT_EQ(fp16_t::encode(1e10f), 0x7C00u);
  EXPECT_EQ(fp16_t::encode(-1e10f), 0xFC00u);
}

TEST(Fp16, NanPreserved) {
  const std::uint16_t b = fp16_t::encode(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(b & 0x7C00u, 0x7C00u);
  EXPECT_NE(b & 0x03FFu, 0u);
  EXPECT_TRUE(std::isnan(fp16_t::decode(b)));
}

TEST(Fp16, SubnormalsRepresentable) {
  const float smallest = std::ldexp(1.0f, -24);  // 2^-24, least subnormal
  EXPECT_EQ(fp16_t::encode(smallest), 0x0001u);
  EXPECT_FLOAT_EQ(fp16_t::decode(0x0001u), smallest);
  const float largest_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(fp16_t::encode(largest_sub), 0x03FFu);
}

TEST(Fp16, RoundToNearestEvenTies) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 (1 + 2^-10);
  // RNE picks the even mantissa (1.0).
  EXPECT_EQ(fp16_t::encode(1.0f + std::ldexp(1.0f, -11)), 0x3C00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  EXPECT_EQ(fp16_t::encode(1.0f + 3.0f * std::ldexp(1.0f, -11)), 0x3C02u);
}

TEST(Fp16, RoundTripExactForAllFiniteBitPatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float v = fp16_t::decode(bits);
    if (!std::isfinite(v)) continue;
    EXPECT_EQ(fp16_t::encode(v), bits) << "bits=0x" << std::hex << b;
  }
}

// ---------------------------------------------------------------------------
// bfloat16
// ---------------------------------------------------------------------------

TEST(Bf16, KnownBitPatterns) {
  EXPECT_EQ(bf16_t::encode(1.0f), 0x3F80u);
  EXPECT_EQ(bf16_t::encode(-2.0f), 0xC000u);
  EXPECT_EQ(bf16_t::encode(0.0f), 0x0000u);
}

TEST(Bf16, TruncationRoundsNearestEven) {
  // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7: RNE -> 1.0.
  EXPECT_EQ(bf16_t::encode(1.0f + std::ldexp(1.0f, -8)), 0x3F80u);
  // slightly above the tie rounds up.
  EXPECT_EQ(bf16_t::encode(1.0f + std::ldexp(1.2f, -8)), 0x3F81u);
}

TEST(Bf16, RoundTripExactForFinitePatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float v = bf16_t::decode(bits);
    if (!std::isfinite(v)) continue;
    EXPECT_EQ(bf16_t::encode(v), bits);
  }
}

// ---------------------------------------------------------------------------
// fp8 e4m3
// ---------------------------------------------------------------------------

TEST(Fp8, KnownValues) {
  EXPECT_EQ(fp8_e4m3_t::encode(0.0f), 0x00u);
  EXPECT_EQ(fp8_e4m3_t::encode(1.0f), 0x38u);   // biased exp 7, mant 0
  EXPECT_EQ(fp8_e4m3_t::encode(-1.0f), 0xB8u);
  EXPECT_EQ(fp8_e4m3_t::encode(448.0f), 0x7Eu);  // max finite = S.1111.110
  EXPECT_FLOAT_EQ(fp8_e4m3_t::decode(0x7Eu), 448.0f);
}

TEST(Fp8, SaturatesInsteadOfInfinity) {
  EXPECT_EQ(fp8_e4m3_t::encode(1000.0f), 0x7Eu);
  EXPECT_EQ(fp8_e4m3_t::encode(-1000.0f), 0xFEu);
  EXPECT_FLOAT_EQ(fp8_e4m3_t::decode(fp8_e4m3_t::encode(1e30f)), 448.0f);
}

TEST(Fp8, NanEncoding) {
  EXPECT_EQ(fp8_e4m3_t::encode(std::numeric_limits<float>::quiet_NaN()) & 0x7Fu, 0x7Fu);
  EXPECT_TRUE(std::isnan(fp8_e4m3_t::decode(0x7Fu)));
  EXPECT_TRUE(std::isnan(fp8_e4m3_t::decode(0xFFu)));
}

TEST(Fp8, Subnormals) {
  const float least = std::ldexp(1.0f, -9);  // 2^-9
  EXPECT_EQ(fp8_e4m3_t::encode(least), 0x01u);
  EXPECT_FLOAT_EQ(fp8_e4m3_t::decode(0x01u), least);
  EXPECT_FLOAT_EQ(fp8_e4m3_t::decode(0x07u), 7.0f * least);  // largest subnormal
}

TEST(Fp8, RoundTripExactForFinitePatterns) {
  for (std::uint32_t b = 0; b <= 0xFFu; ++b) {
    const auto bits = static_cast<std::uint8_t>(b);
    const float v = fp8_e4m3_t::decode(bits);
    if (std::isnan(v)) continue;
    if (v == 0.0f && (bits & 0x7Fu) != 0) continue;  // impossible for e4m3
    // -0 encodes to 0x80 which decodes to -0: treat signs of zero equal.
    const std::uint8_t back = fp8_e4m3_t::encode(v);
    if (v == 0.0f) {
      EXPECT_EQ(back & 0x7Fu, 0u);
    } else {
      EXPECT_EQ(back, bits) << "bits=0x" << std::hex << b;
    }
  }
}

// ---------------------------------------------------------------------------
// tf32
// ---------------------------------------------------------------------------

TEST(Tf32, KeepsTenMantissaBits) {
  const float v = 1.0f + std::ldexp(1.0f, -10);  // representable in tf32
  EXPECT_FLOAT_EQ(round_to_tf32(v), v);
  const float fine = 1.0f + std::ldexp(1.0f, -12);  // below tf32 resolution
  EXPECT_FLOAT_EQ(round_to_tf32(fine), 1.0f);
}

TEST(Tf32, RoundsNearestEven) {
  // Tie at 1 + 2^-11: even -> 1.0. Just above the tie rounds up to 1 + 2^-10.
  EXPECT_FLOAT_EQ(round_to_tf32(1.0f + std::ldexp(1.0f, -11)), 1.0f);
  EXPECT_FLOAT_EQ(round_to_tf32(1.0f + std::ldexp(1.1f, -11)),
                  1.0f + std::ldexp(1.0f, -10));
}

TEST(Tf32, PassesThroughSpecials) {
  EXPECT_TRUE(std::isnan(round_to_tf32(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_EQ(round_to_tf32(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(round_to_tf32(0.0f), 0.0f);
}

// ---------------------------------------------------------------------------
// precision tags
// ---------------------------------------------------------------------------

TEST(Precision, ElementBytesMatchPaperSe) {
  EXPECT_EQ(element_bytes(Precision::FP64), 8u);
  EXPECT_EQ(element_bytes(Precision::FP32), 4u);
  EXPECT_EQ(element_bytes(Precision::TF32), 4u);
  EXPECT_EQ(element_bytes(Precision::FP16), 2u);
  EXPECT_EQ(element_bytes(Precision::BF16), 2u);
  EXPECT_EQ(element_bytes(Precision::FP8E4M3), 1u);
}

TEST(Precision, Names) {
  EXPECT_STREQ(precision_name(Precision::FP64), "FP64");
  EXPECT_STREQ(precision_name(Precision::FP8E4M3), "FP8");
}

}  // namespace
}  // namespace kami
