// Exhaustive bit-level checks for the precision-decode LUTs and the
// vectorized conversions backing the numeric fast path.
//
// Every assertion here is over *bit patterns*, not values: the LUTs and the
// fast fp16 encoder are only admissible if they are indistinguishable from
// the scalar reference conversions on every representable input, NaNs,
// infinities and saturation included. The input spaces are small enough to
// enumerate completely (2^16 for fp16/bf16, 2^8 for E4M3), so we do.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "types/decode_tables.hpp"
#include "util/rng.hpp"

namespace kami::types {
namespace {

std::uint32_t float_bits(float v) { return std::bit_cast<std::uint32_t>(v); }

// Decode comparisons must treat two NaNs with the same payload as equal and
// distinguish +0 from -0, so compare the float *bit patterns*.
void expect_same_float_bits(float a, float b, std::uint32_t input_bits) {
  EXPECT_EQ(float_bits(a), float_bits(b))
      << "input bit pattern 0x" << std::hex << input_bits;
}

TEST(DecodeTables, Fp16TableMatchesScalarDecodeExhaustively) {
  const auto& tab = fp16_decode_table();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    expect_same_float_bits(tab[b], fp16_t::decode(bits), b);
  }
}

TEST(DecodeTables, Bf16TableMatchesScalarDecodeExhaustively) {
  const auto& tab = bf16_decode_table();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    expect_same_float_bits(tab[b], bf16_t::decode(bits), b);
  }
}

TEST(DecodeTables, Fp8E4M3TableMatchesScalarDecodeExhaustively) {
  const auto& tab = fp8_e4m3_decode_table();
  for (std::uint32_t b = 0; b < (1u << 8); ++b) {
    const auto bits = static_cast<std::uint8_t>(b);
    expect_same_float_bits(tab[b], fp8_e4m3_t::decode(bits), b);
  }
}

// Decode -> encode must return the original bit pattern for every canonical
// stored value (NaN payloads may legitimately canonicalize, so NaNs are
// checked for NaN-ness rather than payload identity).
TEST(DecodeTables, Fp16TableRoundTripsThroughEncode) {
  const auto& tab = fp16_decode_table();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const float decoded = tab[b];
    if (std::isnan(decoded)) {
      EXPECT_TRUE(std::isnan(fp16_t::decode(fp16_t::encode(decoded))));
      continue;
    }
    EXPECT_EQ(fp16_t::encode(decoded), static_cast<std::uint16_t>(b))
        << "fp16 bits 0x" << std::hex << b;
  }
}

TEST(DecodeTables, Bf16TableRoundTripsThroughEncode) {
  const auto& tab = bf16_decode_table();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const float decoded = tab[b];
    if (std::isnan(decoded)) {
      EXPECT_TRUE(std::isnan(bf16_t::decode(bf16_t::encode(decoded))));
      continue;
    }
    EXPECT_EQ(bf16_t::encode(decoded), static_cast<std::uint16_t>(b))
        << "bf16 bits 0x" << std::hex << b;
  }
}

TEST(DecodeTables, Fp8E4M3TableRoundTripsThroughEncode) {
  const auto& tab = fp8_e4m3_decode_table();
  for (std::uint32_t b = 0; b < (1u << 8); ++b) {
    const float decoded = tab[b];
    if (std::isnan(decoded)) {
      EXPECT_TRUE(std::isnan(fp8_e4m3_t::decode(fp8_e4m3_t::encode(decoded))));
      continue;
    }
    EXPECT_EQ(fp8_e4m3_t::encode(decoded), static_cast<std::uint8_t>(b))
        << "e4m3 bits 0x" << std::hex << b;
  }
}

// The fast integer fp16 encoder against the quantize_magnitude reference it
// replaced. Directed coverage: every representable half value and its float
// neighbours (exercises all rounding boundaries), every rounding midpoint,
// the subnormal/normal and normal/overflow boundaries, then a large random
// sweep over raw float bit patterns (NaNs and denormals land in the sample).
void expect_encode_matches_reference(float v) {
  EXPECT_EQ(fp16_t::encode(v), detail::fp16_encode_reference(v))
      << "float bit pattern 0x" << std::hex << float_bits(v);
}

TEST(Fp16FastEncode, MatchesReferenceOnAllHalfValuesAndNeighbours) {
  const auto& tab = fp16_decode_table();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const float v = tab[b];
    if (std::isnan(v)) continue;
    expect_encode_matches_reference(v);
    if (std::isinf(v)) continue;
    expect_encode_matches_reference(std::nextafter(v, std::numeric_limits<float>::infinity()));
    expect_encode_matches_reference(std::nextafter(v, -std::numeric_limits<float>::infinity()));
  }
}

TEST(Fp16FastEncode, MatchesReferenceOnRoundingMidpoints) {
  const auto& tab = fp16_decode_table();
  // Midpoint between consecutive finite half values of one sign: exercises
  // the ties-to-even choice in both the normal and subnormal ranges.
  for (std::uint32_t b = 0; b + 1 < (1u << 15); ++b) {
    const float lo = tab[b], hi = tab[b + 1];
    if (!std::isfinite(lo) || !std::isfinite(hi)) continue;
    const float mid = lo + (hi - lo) / 2.0f;
    expect_encode_matches_reference(mid);
    expect_encode_matches_reference(-mid);
  }
  // The overflow midpoint: 65520 rounds to infinity, anything below to the
  // max finite half.
  expect_encode_matches_reference(65520.0f);
  expect_encode_matches_reference(std::nextafter(65520.0f, 0.0f));
  expect_encode_matches_reference(-65520.0f);
  // The underflow midpoint: 2^-25 is the tie between 0 and the smallest
  // subnormal; ties-to-even keeps 0.
  expect_encode_matches_reference(std::ldexp(1.0f, -25));
  expect_encode_matches_reference(std::nextafter(std::ldexp(1.0f, -25), 1.0f));
  expect_encode_matches_reference(-std::ldexp(1.0f, -25));
}

TEST(Fp16FastEncode, MatchesReferenceOnSpecialValues) {
  expect_encode_matches_reference(0.0f);
  expect_encode_matches_reference(-0.0f);
  expect_encode_matches_reference(std::numeric_limits<float>::infinity());
  expect_encode_matches_reference(-std::numeric_limits<float>::infinity());
  expect_encode_matches_reference(std::numeric_limits<float>::max());
  expect_encode_matches_reference(std::numeric_limits<float>::lowest());
  expect_encode_matches_reference(std::numeric_limits<float>::denorm_min());
  expect_encode_matches_reference(-std::numeric_limits<float>::denorm_min());
  // NaN: the reference canonicalizes payloads, so require NaN-ness + sign.
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(fp16_t::decode(fp16_t::encode(qnan))));
  EXPECT_EQ(fp16_t::encode(qnan) & 0x7C00u, 0x7C00u);
  EXPECT_NE(fp16_t::encode(qnan) & 0x03FFu, 0u);
  const float neg_nan = std::bit_cast<float>(0xFFC00001u);
  EXPECT_EQ(fp16_t::encode(neg_nan) & 0x8000u, 0x8000u);
  EXPECT_TRUE(std::isnan(fp16_t::decode(fp16_t::encode(neg_nan))));
  // E4M3 has no infinity: infinite inputs saturate to the max finite (448),
  // sign preserved (hardware-convert semantics).
  EXPECT_EQ(fp8_e4m3_t::encode(std::numeric_limits<float>::infinity()), 0x7Eu);
  EXPECT_EQ(fp8_e4m3_t::encode(-std::numeric_limits<float>::infinity()), 0xFEu);
}

TEST(Fp16FastEncode, MatchesReferenceOnRandomBitPatterns) {
  Rng rng(20260808);
  for (int i = 0; i < 2'000'000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng.next());
    const float v = std::bit_cast<float>(bits);
    if (std::isnan(v)) {
      // Reference and fast path must agree NaN -> NaN with the sign kept.
      const std::uint16_t fast = fp16_t::encode(v);
      const std::uint16_t ref = detail::fp16_encode_reference(v);
      EXPECT_TRUE(std::isnan(fp16_t::decode(fast)));
      EXPECT_TRUE(std::isnan(fp16_t::decode(ref)));
      EXPECT_EQ(fast & 0x8000u, ref & 0x8000u);
      continue;
    }
    expect_encode_matches_reference(v);
  }
}

// round_to_tf32_span vs the scalar round_to_tf32, over spans long enough to
// hit the vector body and every tail length, with NaN/inf lanes mixed in.
TEST(RoundToTf32Span, MatchesScalarIncludingNonFiniteLanes) {
  Rng rng(7);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{15},
                        std::size_t{64}, std::size_t{257}, std::size_t{1000}}) {
    std::vector<float> src(n), dst(n, -1.0f);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 5) {
        case 0: src[i] = static_cast<float>(rng.uniform(-1e6, 1e6)); break;
        case 1: src[i] = std::bit_cast<float>(static_cast<std::uint32_t>(rng.next())); break;
        case 2: src[i] = std::numeric_limits<float>::infinity(); break;
        case 3: src[i] = std::bit_cast<float>(static_cast<std::uint32_t>(0x7FC00000u | (i & 0xFFu))); break;
        default: src[i] = -std::ldexp(1.0f, -(static_cast<int>(i) % 140)); break;
      }
    }
    round_to_tf32_span(src.data(), dst.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      expect_same_float_bits(dst[i], round_to_tf32(src[i]), float_bits(src[i]));
    // In-place operation is part of the contract.
    std::vector<float> inplace = src;
    round_to_tf32_span(inplace.data(), inplace.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      expect_same_float_bits(inplace[i], round_to_tf32(src[i]), float_bits(src[i]));
  }
}

// decode_span / encode_span against their element-wise definitions for every
// storage type, across vector-unfriendly lengths.
template <Scalar T>
void check_spans(std::size_t n, std::uint64_t seed) {
  using Acc = typename num_traits<T>::acc_t;
  Rng rng(seed);
  std::vector<T> src(n);
  for (auto& v : src) v = T{static_cast<Acc>(rng.uniform(-100.0, 100.0))};
  std::vector<Acc> dec(n, Acc{-1});
  decode_span(src.data(), dec.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(static_cast<double>(dec[i])),
              std::bit_cast<std::uint64_t>(static_cast<double>(num_traits<T>::to_acc(src[i]))));
  std::vector<T> enc(n);
  encode_span(dec.data(), enc.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(static_cast<double>(num_traits<T>::to_acc(enc[i]))),
              std::bit_cast<std::uint64_t>(
                  static_cast<double>(num_traits<T>::to_acc(num_traits<T>::from_acc(dec[i])))));
}

TEST(SpanConversions, MatchElementwiseForEveryStorageType) {
  for (std::size_t n : {std::size_t{1}, std::size_t{17}, std::size_t{255},
                        std::size_t{256}, std::size_t{259}}) {
    check_spans<fp16_t>(n, 11);
    check_spans<bf16_t>(n, 12);
    check_spans<fp8_e4m3_t>(n, 13);
    check_spans<tf32_t>(n, 14);
    check_spans<float>(n, 15);
    check_spans<double>(n, 16);
  }
}

}  // namespace
}  // namespace kami::types
