#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"

namespace kami {
namespace {

TEST(Table, PrintsAlignedColumns) {
  TablePrinter t({"size", "TFLOPS"});
  t.add_row({"16", "1.23"});
  t.add_row({"128", "456.78"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("456.78"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, RowCount) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.005, 2), "1.00");  // fixed formatting, no locale
  EXPECT_EQ(fmt_double(12.5, 1), "12.5");
  EXPECT_EQ(fmt_double(-3.14159, 3), "-3.142");
}

TEST(Table, FmtCount) { EXPECT_EQ(fmt_count(16384), "16384"); }

}  // namespace
}  // namespace kami
