#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace kami {
namespace {

constexpr std::array<double, 4> kXs{1.0, 2.0, 3.0, 4.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(kXs), 2.5); }

TEST(Stats, Geomean) {
  const std::array<double, 2> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::array<double, 2> xs{1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), PreconditionError);
}

TEST(Stats, SampleStddev) {
  const std::array<double, 2> xs{1.0, 3.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of(kXs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(kXs), 4.0);
}

TEST(Stats, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(median(kXs), 2.5);
  const std::array<double, 3> odd{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(odd), 5.0);
}

TEST(Stats, EmptyInputRejected) {
  const std::array<double, 0> none{};
  EXPECT_THROW((void)mean(none), PreconditionError);
  EXPECT_THROW((void)median(none), PreconditionError);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(relative_error(101.0, 100.0), 0.01, 1e-12);
  EXPECT_NEAR(relative_error(0.0, 0.0), 0.0, 1e-12);
}

TEST(Stats, StddevRequiresTwoSamples) {
  // Sample standard deviation divides by n-1; a single observation has no
  // spread and must be rejected, not return 0/0.
  const std::array<double, 1> one{5.0};
  EXPECT_THROW((void)stddev(one), PreconditionError);
}

TEST(Stats, MedianIsPermutationInvariant) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(-100.0, 100.0);
    const double expected = median(xs);
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      for (std::size_t i = n; i > 1; --i)
        std::swap(xs[i - 1], xs[rng.uniform_index(i)]);
      EXPECT_DOUBLE_EQ(median(xs), expected) << "n=" << n;
    }
  }
}

TEST(Stats, MedianSplitsSortedOrder) {
  // Property over random inputs: odd n picks the middle order statistic,
  // even n averages the two middle ones.
  Rng rng(92);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(15);
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(-10.0, 10.0);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const double expected = (n % 2 == 1)
                                ? sorted[n / 2]
                                : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    EXPECT_DOUBLE_EQ(median(xs), expected) << "n=" << n;
  }
}

TEST(Stats, RelativeErrorClampsNearZeroDenominator) {
  // The denominator is max(|b|, 1e-300): errors against a (near-)zero
  // reference stay finite instead of dividing by zero.
  EXPECT_FALSE(std::isinf(relative_error(1.0, 0.0)));
  EXPECT_FALSE(std::isnan(relative_error(0.0, 0.0)));
  EXPECT_DOUBLE_EQ(relative_error(1e-300, 0.0), 1.0);
  // A subnormal reference clamps to the same 1e-300 denominator as zero.
  EXPECT_NEAR(relative_error(2.5e-300, 1e-310), 2.5, 1e-9);
  // Above the clamp the usual definition applies.
  EXPECT_DOUBLE_EQ(relative_error(2e-200, 1e-200), 1.0);
}

}  // namespace
}  // namespace kami
