#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/require.hpp"

namespace kami {
namespace {

constexpr std::array<double, 4> kXs{1.0, 2.0, 3.0, 4.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(kXs), 2.5); }

TEST(Stats, Geomean) {
  const std::array<double, 2> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::array<double, 2> xs{1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), PreconditionError);
}

TEST(Stats, SampleStddev) {
  const std::array<double, 2> xs{1.0, 3.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of(kXs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(kXs), 4.0);
}

TEST(Stats, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(median(kXs), 2.5);
  const std::array<double, 3> odd{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(odd), 5.0);
}

TEST(Stats, EmptyInputRejected) {
  const std::array<double, 0> none{};
  EXPECT_THROW((void)mean(none), PreconditionError);
  EXPECT_THROW((void)median(none), PreconditionError);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(relative_error(101.0, 100.0), 0.01, 1e-12);
  EXPECT_NEAR(relative_error(0.0, 0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace kami
