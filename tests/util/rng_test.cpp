#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kami {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t idx = r.uniform_index(17);
    EXPECT_LT(idx, 17u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 10k draws
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng r(1);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace kami
