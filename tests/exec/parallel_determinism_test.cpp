// The engine's determinism contract (DESIGN §10), tested end to end: every
// fan-out site — batched GEMM, autotune sweeps, the chaos campaign, the
// differential fuzzer — must produce bit-identical results for every worker
// count, in every execution mode, including under armed FaultHooks and
// cycle deadlines. Serial (workers=1) runs the historical inline loop;
// parallel runs shard metrics and merge in task-index order, so snapshots
// of integral counters match serial exactly and full snapshots match across
// any two parallel worker counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/kami.hpp"
#include "core/profile_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/chaos.hpp"
#include "sim/deadline.hpp"
#include "util/rng.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// A mixed-shape batch with repeated shapes (exercises the distinct-shape
/// profile phase) seeded deterministically.
template <Scalar T>
std::pair<std::vector<Matrix<T>>, std::vector<Matrix<T>>> mixed_batch(
    std::uint64_t seed = 7) {
  Rng rng(seed);
  const std::size_t shapes[][3] = {{32, 32, 32}, {64, 64, 64},  {32, 32, 32},
                                   {48, 16, 64}, {64, 64, 64},  {16, 48, 32},
                                   {32, 32, 32}, {64, 32, 128}, {48, 16, 64},
                                   {64, 64, 64}, {32, 64, 32},  {16, 48, 32}};
  std::vector<Matrix<T>> As, Bs;
  for (const auto& s : shapes) {
    As.push_back(random_matrix<T>(s[0], s[2], rng));
    Bs.push_back(random_matrix<T>(s[2], s[1], rng));
  }
  return {std::move(As), std::move(Bs)};
}

template <Scalar T>
void expect_batched_identical(const core::BatchedResult<T>& a,
                              const core::BatchedResult<T>& b,
                              const std::string& label) {
  ASSERT_EQ(a.C.size(), b.C.size()) << label;
  for (std::size_t i = 0; i < a.C.size(); ++i)
    EXPECT_TRUE(bits_equal(a.C[i], b.C[i])) << label << " entry " << i;
  EXPECT_EQ(a.seconds, b.seconds) << label;
  EXPECT_EQ(a.tflops, b.tflops) << label;
}

TEST(ParallelDeterminism, BatchedBitIdenticalAcrossWorkerCountsAndModes) {
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<fp16_t>();

  for (const sim::ExecMode mode : {sim::ExecMode::Full, sim::ExecMode::TimingOnly}) {
    const auto run = [&](int threads) {
      core::ProfileCache::global().clear();
      core::GemmOptions opt;
      opt.mode = mode;
      opt.threads = threads;
      return core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    };
    const auto serial = run(1);
    const std::string label = "mode " + std::to_string(static_cast<int>(mode));
    expect_batched_identical(serial, run(2), label + " workers=2");
    expect_batched_identical(serial, run(4), label + " workers=4");
    expect_batched_identical(serial, run(8), label + " workers=8");
  }

  // NumericsOnly produces no cycle profile, so the batched driver's
  // completion-time model rejects it — identically for every worker count.
  const auto numerics_message = [&](int threads) -> std::string {
    core::GemmOptions opt;
    opt.mode = sim::ExecMode::NumericsOnly;
    opt.threads = threads;
    try {
      core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    } catch (const std::exception& e) {
      return e.what();
    }
    return "(no exception)";
  };
  const std::string serial_numerics = numerics_message(1);
  ASSERT_NE(serial_numerics, "(no exception)");
  EXPECT_EQ(numerics_message(4), serial_numerics);
}

TEST(ParallelDeterminism, BatchedDoublePrecisionAndTwoD) {
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<double>(11);
  const auto run = [&](int threads) {
    core::ProfileCache::global().clear();
    core::GemmOptions opt;
    opt.threads = threads;
    return core::kami_batched_gemm<double>(dev, As, Bs, core::Algo::TwoD, opt);
  };
  const auto serial = run(1);
  expect_batched_identical(serial, run(4), "fp64 2d workers=4");
}

TEST(ParallelDeterminism, AutotuneIdenticalAcrossWorkerCounts) {
  const sim::DeviceSpec& dev = sim::gh200();
  const auto run = [&](int threads) {
    // Reset both fast-path stores: the predictor's calibration state decides
    // what the prescreen prunes, so every worker count must start equally
    // cold for the sweep (and the fold's feedback) to be comparable.
    core::ProfileCache::global().clear();
    model::Predictor::global().reset();
    return core::autotune_gemm<fp16_t>(dev, 128, 128, 128, 16384,
                                       core::default_candidates(), threads);
  };
  const core::TuneResult serial = run(1);
  for (const int threads : {2, 4, 8}) {
    const core::TuneResult parallel = run(threads);
    EXPECT_EQ(parallel.config.algo, serial.config.algo) << threads;
    EXPECT_EQ(parallel.config.warps, serial.config.warps) << threads;
    EXPECT_EQ(parallel.config.smem_ratio, serial.config.smem_ratio) << threads;
    EXPECT_EQ(parallel.tflops, serial.tflops) << threads;
    EXPECT_EQ(parallel.warps, serial.warps) << threads;
    EXPECT_EQ(parallel.smem_ratio, serial.smem_ratio) << threads;
    EXPECT_EQ(parallel.evaluated, serial.evaluated) << threads;
    EXPECT_EQ(parallel.pruned, serial.pruned) << threads;
    EXPECT_EQ(verify::profile_diff(parallel.profile, serial.profile), "") << threads;
  }
}

TEST(ParallelDeterminism, ChaosCampaignReportIdenticalAcrossWorkerCounts) {
  const serve::ChaosReport serial = serve::run_campaign(21, 40, 1);
  for (const int workers : {2, 4}) {
    const serve::ChaosReport parallel = serve::run_campaign(21, 40, workers);
    EXPECT_EQ(parallel.ran, serial.ran) << workers;
    EXPECT_EQ(parallel.served_ok, serial.served_ok) << workers;
    EXPECT_EQ(parallel.typed_errors, serial.typed_errors) << workers;
    EXPECT_EQ(parallel.deadline_replays, serial.deadline_replays) << workers;
    EXPECT_EQ(parallel.by_code, serial.by_code) << workers;
    EXPECT_EQ(parallel.by_rung, serial.by_rung) << workers;
    EXPECT_EQ(parallel.by_fault, serial.by_fault) << workers;
    ASSERT_EQ(parallel.violations.size(), serial.violations.size()) << workers;
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      EXPECT_EQ(parallel.violations[i].seed, serial.violations[i].seed);
      EXPECT_EQ(parallel.violations[i].point, serial.violations[i].point);
      EXPECT_EQ(parallel.violations[i].detail, serial.violations[i].detail);
    }
  }
  EXPECT_TRUE(serial.clean());
}

TEST(ParallelDeterminism, FuzzReportIdenticalAcrossWorkerCounts) {
  const verify::FuzzReport serial = verify::run_fuzz(33, 24, 1);
  for (const int workers : {2, 4}) {
    const verify::FuzzReport parallel = verify::run_fuzz(33, 24, workers);
    EXPECT_EQ(parallel.ran, serial.ran) << workers;
    EXPECT_EQ(parallel.passed, serial.passed) << workers;
    EXPECT_EQ(parallel.skipped, serial.skipped) << workers;
    ASSERT_EQ(parallel.failures.size(), serial.failures.size()) << workers;
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
      EXPECT_EQ(parallel.failures[i].seed, serial.failures[i].seed);
      EXPECT_EQ(parallel.failures[i].detail, serial.failures[i].detail);
    }
  }
}

TEST(ParallelDeterminism, ArmedFaultThrowsSameMessageSerialAndParallel) {
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<fp16_t>();
  verify::FaultHooks armed;
  armed.warp_advance_skew = -1e9;  // permanent clock-rewind: every run throws
  armed.armed_runs = -1;

  const auto message_at = [&](int threads) -> std::string {
    core::ProfileCache::global().clear();
    const verify::ScopedFault fault(armed);
    core::GemmOptions opt;
    opt.threads = threads;
    try {
      core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    } catch (const verify::InvariantViolation& e) {
      return e.what();
    }
    return "(no exception)";
  };

  const std::string serial = message_at(1);
  ASSERT_NE(serial, "(no exception)");
  EXPECT_EQ(message_at(4), serial);
  EXPECT_EQ(message_at(8), serial);
}

TEST(ParallelDeterminism, DeadlineAbortMessageSameSerialAndParallel) {
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<fp16_t>();

  const auto message_at = [&](int threads) -> std::string {
    core::ProfileCache::global().clear();
    core::GemmOptions opt;
    opt.threads = threads;
    opt.deadline_cycles = 10.0;  // aborts inside the first profile simulation
    try {
      core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    } catch (const sim::DeadlineExceeded& e) {
      return e.what();
    }
    return "(no exception)";
  };

  const std::string serial = message_at(1);
  ASSERT_NE(serial, "(no exception)");
  EXPECT_EQ(message_at(4), serial);
}

TEST(ParallelDeterminism, MetricSnapshotsIdenticalBetweenParallelWorkerCounts) {
  // Contract (DESIGN §10): any two worker counts >= 2 produce exactly the
  // same merged snapshot — counters, gauges, everything. (Serial vs parallel
  // fractional counters may differ in the last ulp; see the next test.)
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<fp16_t>();
  const auto snapshot = [&](int threads) {
    core::ProfileCache::global().clear();
    obs::MetricRegistry::global().reset_values();
    core::GemmOptions opt;
    opt.threads = threads;
    core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    return std::pair{obs::MetricRegistry::global().counter_values(),
                     obs::MetricRegistry::global().gauge_values()};
  };
  const auto two = snapshot(2);
  const auto four = snapshot(4);
  const auto eight = snapshot(8);
  EXPECT_EQ(two.first, four.first);
  EXPECT_EQ(two.second, four.second);
  EXPECT_EQ(four.first, eight.first);
  EXPECT_EQ(four.second, eight.second);
}

TEST(ParallelDeterminism, SerialAndParallelCountersAgree) {
  // Serial updates the global registry in place; parallel folds per-task
  // shards. Integral counters (event counts) must agree exactly; fractional
  // ones (cycle/byte totals) may differ only by reassociation ulps.
  const sim::DeviceSpec& dev = sim::gh200();
  const auto [As, Bs] = mixed_batch<fp16_t>();
  const auto snapshot = [&](int threads) {
    core::ProfileCache::global().clear();
    obs::MetricRegistry::global().reset_values();
    core::GemmOptions opt;
    opt.threads = threads;
    core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
    return obs::MetricRegistry::global().counter_values();
  };
  const auto serial = snapshot(1);
  const auto parallel = snapshot(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, value] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    if (value == std::rint(value))
      EXPECT_EQ(it->second, value) << name;
    else
      EXPECT_NEAR(it->second, value, std::abs(value) * 1e-12) << name;
  }
}

}  // namespace
}  // namespace kami
