// ExecutionEngine mechanics (coverage of every index, slot ordering,
// exception selection, nesting, metric-shard merging, fault-hook
// propagation), BoundedTaskQueue backpressure semantics, and the
// concurrency stress suites for MetricRegistry and ProfileCache. The
// stress suites are also the ThreadSanitizer CI job's targets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/profile_cache.hpp"
#include "exec/engine.hpp"
#include "exec/task_queue.hpp"
#include "obs/metrics.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using exec::BoundedTaskQueue;
using exec::ExecutionEngine;

TEST(ExecEngine, ResolveWorkersClampsAndDefers) {
  EXPECT_EQ(exec::resolve_workers(5), 5);
  EXPECT_EQ(exec::resolve_workers(exec::kMaxWorkers + 100), exec::kMaxWorkers);
  EXPECT_GE(exec::resolve_workers(0), 1);   // defers to KAMI_THREADS (>= 1)
  EXPECT_GE(exec::resolve_workers(-3), 1);
  EXPECT_GE(exec::default_workers(), 1);
  EXPECT_LE(exec::default_workers(), exec::kMaxWorkers);
}

TEST(ExecEngine, ParallelForRunsEveryIndexExactlyOnce) {
  const ExecutionEngine engine(8);
  EXPECT_EQ(engine.workers(), 8);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  engine.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ExecEngine, ParallelMapPreservesInputOrder) {
  const ExecutionEngine engine(4);
  const auto out = engine.parallel_map<std::size_t>(257, [](std::size_t i) {
    return i * i;
  });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ExecEngine, ZeroAndSingleTaskDegenerate) {
  const ExecutionEngine engine(4);
  engine.parallel_for(0, [](std::size_t) { FAIL() << "no task should run"; });
  int runs = 0;
  engine.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ExecEngine, WorkerCountOneStaysOnCallerThread) {
  const ExecutionEngine engine(1);
  const std::thread::id caller = std::this_thread::get_id();
  engine.parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ExecEngine, LowestIndexExceptionPropagates) {
  const ExecutionEngine engine(8);
  // Several indices throw; the serial loop would surface index 3 first.
  for (int round = 0; round < 10; ++round) {
    try {
      engine.parallel_for(100, [&](std::size_t i) {
        if (i == 3 || i == 50 || i == 97)
          throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(ExecEngine, NestedParallelForCompletes) {
  const ExecutionEngine outer(4), inner(4);
  std::vector<std::size_t> sums(8, 0);
  outer.parallel_for(sums.size(), [&](std::size_t i) {
    const auto parts = inner.parallel_map<std::size_t>(16, [&](std::size_t j) {
      return i * 100 + j;
    });
    sums[i] = std::accumulate(parts.begin(), parts.end(), std::size_t{0});
  });
  for (std::size_t i = 0; i < sums.size(); ++i)
    EXPECT_EQ(sums[i], i * 100 * 16 + 120);
}

TEST(ExecEngine, MetricShardsMergeIntoSubmitter) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("test.exec.work").reset();
  const ExecutionEngine engine(4);
  engine.parallel_for(100, [](std::size_t) {
    obs::MetricRegistry::current().counter("test.exec.work").add(2.0);
  });
  EXPECT_EQ(reg.counter("test.exec.work").value(), 200.0);
}

TEST(ExecEngine, ShardedHistogramSamplesArriveInTaskIndexOrder) {
  auto& reg = obs::MetricRegistry::global();
  reg.histogram("test.exec.hist").reset();
  const ExecutionEngine engine(8);
  engine.parallel_for(64, [](std::size_t i) {
    obs::MetricRegistry::current().histogram("test.exec.hist").observe(
        static_cast<double>(i));
  });
  const auto samples = reg.histogram("test.exec.hist").samples();
  ASSERT_EQ(samples.size(), 64u);
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_EQ(samples[i], static_cast<double>(i));
}

TEST(ExecEngine, FaultHooksReachEveryWorkerAndCallerStateSurvives) {
  verify::FaultHooks armed;
  armed.warp_advance_skew = -3.5;
  armed.armed_runs = -1;
  const verify::ScopedFault fault(armed);

  const ExecutionEngine engine(4);
  std::vector<std::atomic<int>> saw(64);
  engine.parallel_for(64, [&](std::size_t i) {
    const verify::FaultHooks& h = verify::fault_hooks();
    if (h.warp_advance_skew == -3.5 && h.armed_runs == -1)
      saw[i].store(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < saw.size(); ++i) EXPECT_EQ(saw[i].load(), 1);
  EXPECT_EQ(verify::fault_hooks().warp_advance_skew, -3.5);
  EXPECT_EQ(verify::fault_hooks().armed_runs, -1);
}

TEST(ExecEngine, RepeatedRegionsReusePoolWithoutLeakingState) {
  const ExecutionEngine engine(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    engine.parallel_for(200, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 200u * 199u / 2u);
  }
}

// ---------------------------------------------------------------------------

TEST(TaskQueue, FifoAndCapacity) {
  BoundedTaskQueue q(2);
  EXPECT_EQ(q.capacity(), 2u);
  std::vector<int> ran;
  EXPECT_TRUE(q.try_push([&] { ran.push_back(1); }));
  EXPECT_TRUE(q.try_push([&] { ran.push_back(2); }));
  EXPECT_FALSE(q.try_push([&] { ran.push_back(3); }));  // full: refused
  EXPECT_EQ(q.size(), 2u);

  std::function<void()> task;
  ASSERT_TRUE(q.pop_blocking(task));
  task();
  ASSERT_TRUE(q.pop_blocking(task));
  task();
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(TaskQueue, CloseRefusesPushesButDrainsQueued) {
  BoundedTaskQueue q(4);
  int ran = 0;
  EXPECT_TRUE(q.try_push([&] { ++ran; }));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push([&] { ++ran; }));

  std::function<void()> task;
  ASSERT_TRUE(q.pop_blocking(task));  // queued before close: still served
  task();
  EXPECT_FALSE(q.pop_blocking(task));  // closed and drained
  EXPECT_EQ(ran, 1);
}

TEST(TaskQueue, CloseWakesBlockedConsumer) {
  BoundedTaskQueue q(1);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::function<void()> task;
    EXPECT_FALSE(q.pop_blocking(task));  // wakes on close with nothing queued
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(TaskQueue, ConcurrentProducersNeverExceedCapacity) {
  BoundedTaskQueue q(8);
  std::atomic<int> accepted{0}, refused{0}, executed{0};
  std::thread consumer([&] {
    std::function<void()> task;
    while (q.pop_blocking(task)) task();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (q.try_push([&] { executed.fetch_add(1); }))
          accepted.fetch_add(1);
        else
          refused.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(accepted.load() + refused.load(), 800);
  EXPECT_EQ(executed.load(), accepted.load());
}

// ---------------------------------------------------------------------------
// MetricRegistry under real concurrency (the ThreadSanitizer CI targets).

TEST(MetricsConcurrency, CountersGaugesHistogramsUnderContention) {
  obs::MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kOps; ++i) {
        reg.counter("stress.counter").add(1.0);
        reg.gauge("stress.gauge").set_max(static_cast<double>(t * kOps + i));
        reg.histogram("stress.hist").observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("stress.counter").value(), kThreads * kOps);
  EXPECT_EQ(reg.gauge("stress.gauge").value(), kThreads * kOps - 1);
  EXPECT_EQ(reg.histogram("stress.hist").count(),
            static_cast<std::size_t>(kThreads) * kOps);
}

TEST(MetricsConcurrency, ConcurrentCreationYieldsOneNodePerName) {
  obs::MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i)
        reg.counter("create." + std::to_string(i)).increment();
    });
  }
  for (auto& t : threads) t.join();
  const auto values = reg.counter_values();
  EXPECT_EQ(values.size(), 200u);
  for (const auto& [name, v] : values) EXPECT_EQ(v, kThreads) << name;
}

TEST(MetricsConcurrency, MergeFromAddsCountersMaxesGaugesAppendsHistograms) {
  obs::MetricRegistry a, b;
  a.counter("c").add(3.0);
  a.gauge("g").set_max(5.0);
  a.histogram("h").observe(1.0);
  b.counter("c").add(4.0);
  b.counter("only_b").add(1.0);
  b.gauge("g").set_max(2.0);
  b.histogram("h").observe(2.0);
  b.histogram("h").observe(3.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 7.0);
  EXPECT_EQ(a.counter("only_b").value(), 1.0);
  EXPECT_EQ(a.gauge("g").value(), 5.0);
  EXPECT_EQ(a.histogram("h").samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MetricsConcurrency, ScopedShardRedirectsOnlyThisThread) {
  obs::MetricRegistry shard;
  EXPECT_EQ(&obs::MetricRegistry::current(), &obs::MetricRegistry::global());
  {
    const obs::ScopedMetricShard scoped(shard);
    EXPECT_EQ(&obs::MetricRegistry::current(), &shard);
    std::thread other([] {
      EXPECT_EQ(&obs::MetricRegistry::current(), &obs::MetricRegistry::global());
    });
    other.join();
  }
  EXPECT_EQ(&obs::MetricRegistry::current(), &obs::MetricRegistry::global());
}

// ---------------------------------------------------------------------------
// ProfileCache under real concurrency (the ThreadSanitizer CI targets).

TEST(ProfileCacheConcurrency, ConcurrentTimingProfilesAgreeWithSerial) {
  const sim::DeviceSpec& dev = sim::gh200();
  core::ProfileCache cache(64);

  // Serial reference profiles for a few shapes.
  std::vector<std::size_t> sizes{32, 64, 96, 128};
  std::vector<core::CachedProfile> want;
  {
    core::ProfileCache fresh(64);
    for (std::size_t s : sizes)
      want.push_back(
          core::timing_profile<fp16_t>(fresh, core::Algo::OneD, dev, s, s, s));
  }

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
          const std::size_t s = sizes[idx];
          const core::CachedProfile got =
              core::timing_profile<fp16_t>(cache, core::Algo::OneD, dev, s, s, s);
          if (got.profile.latency != want[idx].profile.latency ||
              got.profile.useful_flops != want[idx].profile.useful_flops ||
              got.warps != want[idx].warps)
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.size(), 64u);
}

// Regression for the contains()-then-lookup TOCTOU: under constant eviction
// churn, a try_get() that returns a value must return a *complete* value —
// the old presence-check API let the entry vanish between the two steps.
// Run under ThreadSanitizer in CI.
TEST(ProfileCacheConcurrency, TryGetUnderEvictionChurnNeverTearsValues) {
  core::ProfileCache cache(8);  // tiny capacity: every insert evicts
  constexpr int kThreads = 8;
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &torn, t] {
      for (int i = 0; i < 400; ++i) {
        core::ProfileKey key;
        key.device = "churn";
        key.m = static_cast<std::size_t>((t * 400 + i) % 24);
        key.n = key.m;
        key.k = 2;
        if (t % 2 == 0) {
          core::CachedProfile value;
          value.profile.latency = static_cast<double>(key.m) + 1.0;
          value.warps = static_cast<int>(key.m) + 1;
          cache.insert(key, value);
        } else if (const auto hit = cache.try_get(key)) {
          // The copy must be internally consistent (both fields from the
          // same insert), not a presence answer whose entry then vanished.
          if (hit->profile.latency != static_cast<double>(key.m) + 1.0 ||
              hit->warps != static_cast<int>(key.m) + 1)
            torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_LE(cache.size(), 8u);
  // snapshot() under the same churn must also be a consistent copy.
  for (const auto& [key, value] : cache.snapshot())
    EXPECT_EQ(value.profile.latency, static_cast<double>(key.m) + 1.0);
}

TEST(ProfileCacheConcurrency, InsertFindChurnStaysConsistent) {
  core::ProfileCache cache(16);  // small capacity: constant eviction churn
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 300; ++i) {
        core::ProfileKey key;
        key.device = "stress";
        key.m = static_cast<std::size_t>((t * 300 + i) % 40);
        key.n = key.m;
        key.k = 1;
        core::CachedProfile value;
        value.profile.useful_flops = static_cast<double>(key.m);
        cache.insert(key, value);
        if (const auto hit = cache.find(key)) {
          EXPECT_EQ(hit->profile.useful_flops, static_cast<double>(key.m));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace kami
