// The comparator kernels: numerical correctness (they are real simulated
// algorithms, not stubs) and the cost structure the paper attributes to each.
#include <gtest/gtest.h>

#include "baselines/cublas_like.hpp"
#include "core/batched.hpp"
#include "baselines/cublasdx_like.hpp"
#include "baselines/cutlass_like.hpp"
#include "baselines/magma_like.hpp"
#include "baselines/reference.hpp"
#include "baselines/syclbench_like.hpp"
#include "core/kami.hpp"
#include "sim/throughput.hpp"

namespace kami::baselines {
namespace {

const sim::DeviceSpec& nv() { return sim::gh200(); }

// ---------------------------------------------------------------------------
// cuBLASDx-like
// ---------------------------------------------------------------------------

TEST(CublasdxLike, MatchesReferenceBitwiseFp16) {
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    Rng rng(n);
    const auto A = random_matrix<fp16_t>(n, n, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto r = cublasdx_gemm(nv(), A, B);
    ASSERT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, reference_gemm(A, B)), 0.0) << n;
  }
}

TEST(CublasdxLike, MatchesReferenceBitwiseFp64) {
  Rng rng(9);
  const auto A = random_matrix<double>(64, 64, rng);
  const auto B = random_matrix<double>(64, 64, rng);
  const auto r = cublasdx_gemm(nv(), A, B);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, reference_gemm(A, B)), 0.0);
}

TEST(CublasdxLike, Fp64Order98IsTheSharedMemoryCeiling) {
  // Fig 3's caption: cuBLASDx "could not be larger [than 98] due to the
  // limitation of shared memory capacity" — 3 * n^2 * 8 B vs 227 KB.
  Rng rng(1);
  const auto a96 = random_matrix<double>(96, 96, rng);
  EXPECT_TRUE(cublasdx_gemm(nv(), a96, a96).feasible);
  const auto a104 = random_matrix<double>(104, 104, rng);
  EXPECT_FALSE(cublasdx_gemm(nv(), a104, a104).feasible);
}

TEST(CublasdxLike, Order192Fp16InfeasibleOn5090) {
  Rng rng(2);
  const auto a = random_matrix<fp16_t>(192, 192, rng);
  EXPECT_FALSE(cublasdx_gemm(sim::rtx5090(), a, a).feasible);
  EXPECT_TRUE(cublasdx_gemm(nv(), a, a).feasible);  // 221 KB < 227 KB
}

TEST(CublasdxLike, UsesFarMoreSharedMemoryThanKami) {
  Rng rng(3);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto base = cublasdx_gemm(nv(), A, B);
  const auto kami = kami::gemm(Algo::OneD, nv(), A, B);
  // §5.6.1: 27 KB (cuBLASDx) vs 2-8 KB (KAMI) at 64x64 FP16.
  EXPECT_GT(base.profile.smem_bytes, 20u * 1024u);
  EXPECT_LT(kami.profile.smem_bytes, 8u * 1024u);
}

TEST(CublasdxLike, KamiOutperformsAtBlockLevel) {
  // The paper's headline comparison (Fig 8): at block level KAMI-1D beats
  // the smem-staged pipeline.
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    Rng rng(n + 100);
    const auto A = random_matrix<fp16_t>(n, n, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto base = cublasdx_gemm(nv(), A, B);
    const auto kami = kami::gemm(Algo::OneD, nv(), A, B);
    const double t_base = sim::throughput_tflops(nv(), base.profile, 16384);
    const double t_kami = sim::throughput_tflops(nv(), kami.profile, 16384);
    EXPECT_GT(t_kami, t_base) << "order " << n;
  }
}

// ---------------------------------------------------------------------------
// CUTLASS-like
// ---------------------------------------------------------------------------

TEST(CutlassLike, MatchesReferenceBitwiseFp16) {
  for (std::size_t n : {16u, 64u, 128u}) {
    Rng rng(n + 7);
    const auto A = random_matrix<fp16_t>(n, n, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto r = cutlass_gemm(nv(), A, B);
    ASSERT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, reference_gemm(A, B)), 0.0) << n;
  }
}

TEST(CutlassLike, MultiTileProblemsSweepTiles) {
  Rng rng(11);
  const auto A = random_matrix<fp8_e4m3_t>(256, 256, rng);
  const auto B = random_matrix<fp8_e4m3_t>(256, 256, rng);
  const auto r = cutlass_gemm(nv(), A, B);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, reference_gemm(A, B)), 0.0);
}

TEST(CutlassLike, PaddingWasteDominatesSmallSizes) {
  Rng rng(12);
  const auto A = random_matrix<fp16_t>(16, 16, rng);
  const auto B = random_matrix<fp16_t>(16, 16, rng);
  const auto r = cutlass_gemm(nv(), A, B);
  // Issued tensor-core work is the full 128x128x32 tile: 1024x the useful
  // 2*16^3 flops.
  const double issued = r.profile.tc_busy * nv().ops_per_cycle_per_tc(Precision::FP16);
  EXPECT_NEAR(issued, 2.0 * 128 * 128 * 32, 1.0);
  // Padding factor (128/16)^2 * (32/16) = 128x wasted tensor-core work.
  EXPECT_NEAR(issued / r.profile.useful_flops, 128.0, 1.0);
}

TEST(CutlassLike, KamiSpeedupLargestAtSmallestSize) {
  // Fig 8's CUTLASS series: the speedup shrinks as the problem approaches
  // the native tile.
  auto ratio = [&](std::size_t n) {
    Rng rng(n + 200);
    const auto A = random_matrix<fp16_t>(n, n, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto base = cutlass_gemm(nv(), A, B);
    const auto kami = kami::gemm(Algo::OneD, nv(), A, B);
    return sim::throughput_tflops(nv(), kami.profile, 16384) /
           sim::throughput_tflops(nv(), base.profile, 16384);
  };
  const double r16 = ratio(16), r64 = ratio(64), r128 = ratio(128);
  EXPECT_GT(r16, r64);
  EXPECT_GT(r64, r128);
  // GH200-band speedups (§5.2.1: FP16 avg 4.5x, up to 10.3x); the paper's
  // 74x outlier is 5090-specific (see EXPERIMENTS.md).
  EXPECT_GT(r16, 4.0);
  EXPECT_GT(r128, 1.0);  // still ahead at the native tile size
}

// ---------------------------------------------------------------------------
// SYCL-Bench-like (Intel)
// ---------------------------------------------------------------------------

TEST(SyclBenchLike, MatchesReferenceBitwise) {
  Rng rng(13);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = syclbench_gemm(sim::intel_max1100(), A, B);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, reference_gemm(A, B)), 0.0);
}

TEST(SyclBenchLike, NeverTouchesTensorCores) {
  Rng rng(14);
  const auto A = random_matrix<fp16_t>(32, 32, rng);
  const auto B = random_matrix<fp16_t>(32, 32, rng);
  const auto r = syclbench_gemm(sim::intel_max1100(), A, B);
  EXPECT_DOUBLE_EQ(r.profile.tc_busy, 0.0);
  EXPECT_GT(r.profile.vector_busy, 0.0);
}

TEST(SyclBenchLike, KamiSeveralTimesFasterOnIntel) {
  // §5.2.3: KAMI-1D averages ~5x over SYCL-Bench on the Max 1100.
  Rng rng(15);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto& dev = sim::intel_max1100();
  const auto base = syclbench_gemm(dev, A, B);
  const auto kami = kami::gemm(Algo::OneD, dev, A, B);
  const double ratio = sim::throughput_tflops(dev, kami.profile, 16384) /
                       sim::throughput_tflops(dev, base.profile, 16384);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 20.0);
}

// ---------------------------------------------------------------------------
// cuBLAS-like host drivers
// ---------------------------------------------------------------------------

TEST(CublasLike, LargeGemmApproachesRoofline) {
  const auto perf = cublas_square_gemm_perf<double>(nv(), 8192);
  ASSERT_TRUE(perf.feasible);
  EXPECT_GT(perf.tflops, 0.55 * nv().peak_fp64_tflops);
}

TEST(CublasLike, SmallGemmCollapses) {
  // Fig 3: "when m = 64, the performance drops to only 28 GFLOPS".
  const auto perf = cublas_square_gemm_perf<double>(nv(), 64);
  ASSERT_TRUE(perf.feasible);
  EXPECT_LT(perf.tflops, 0.5);  // well under 1% of peak
}

TEST(CublasLike, MonotonePerformanceClimb) {
  double prev = 0.0;
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto perf = cublas_square_gemm_perf<double>(nv(), n);
    EXPECT_GT(perf.tflops, prev) << n;
    prev = perf.tflops;
  }
}

TEST(BatchedBaselines, KamiBeatsMagmaBeatsCublas) {
  // Fig 12's ordering at FP64, batch 1000.
  for (std::size_t n : {16u, 32u, 64u}) {
    const auto cublas = cublas_batched_fp64_perf(nv(), n, 1000);
    const auto magma = magma_batched_fp64_perf(nv(), n, 1000);
    const auto kami = core::kami_batched_perf<double>(nv(), n, n, n, 1000);
    ASSERT_TRUE(cublas.feasible && magma.feasible);
    EXPECT_GT(magma.tflops, cublas.tflops) << n;
    EXPECT_GT(kami.tflops, magma.tflops) << n;
  }
}

TEST(BatchedBaselines, LargerBatchesAmortizeSetup) {
  // §5.4: the speedups over both libraries shrink from batch 1000 to 10000
  // because their host setup amortizes.
  const auto small = cublas_batched_fp64_perf(nv(), 32, 1000);
  const auto large = cublas_batched_fp64_perf(nv(), 32, 10000);
  EXPECT_GT(large.tflops, small.tflops);
}

}  // namespace
}  // namespace kami::baselines
