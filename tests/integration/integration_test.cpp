// Cross-module integration: the analytic model against the simulator across
// a parameter sweep, trace-backed kernel verification, and end-to-end
// pipelines that exercise public API combinations the way applications do.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/reference.hpp"
#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/kami.hpp"
#include "model/cost_model.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/spmm.hpp"

namespace kami {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

// ---------------------------------------------------------------------------
// Model vs simulator across a sweep (the Fig 15 claim, as a regression test)
// ---------------------------------------------------------------------------

class ModelVsSim : public ::testing::TestWithParam<std::tuple<Algo, std::size_t>> {};

TEST_P(ModelVsSim, SimulatedCommStaysWithinModelBand) {
  const auto [algo, n] = GetParam();
  const int warps = algo == Algo::ThreeD ? 8 : 4;
  GemmOptions opt;
  opt.warps = warps;
  opt.smem_ratio = 0.0;
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  const auto r = gemm(algo, dev(), A, B, opt);

  auto params = model::Params::from_device(dev(), Precision::FP16, n, n, n, warps);
  model::Cost cost;
  switch (algo) {
    case Algo::OneD: cost = model::cost_1d(params); break;
    case Algo::TwoD: cost = model::cost_2d(params); break;
    case Algo::ThreeD: cost = model::cost_3d(params); break;
  }
  // Measured smem occupancy = model's data terms + bounded overheads
  // (transactions, 3D reduction). Assert a band of [0.5x, 4x].
  const double model_data = cost.comm_cycles - params.L_sm * cost.stages;
  EXPECT_GE(r.profile.smem_busy, 0.5 * model_data) << algo_name(algo) << " n=" << n;
  EXPECT_LE(r.profile.smem_busy, 4.0 * model_data + 1000.0)
      << algo_name(algo) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelVsSim,
    ::testing::Combine(::testing::Values(Algo::OneD, Algo::TwoD, Algo::ThreeD),
                       ::testing::Values(32, 64, 96)));

// ---------------------------------------------------------------------------
// Trace-backed verification of kernel structure
// ---------------------------------------------------------------------------

TEST(TracedKernels, OneDMovesExactlyTheModelVolume) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  opt.record_trace = true;
  Rng rng(1);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = gemm(Algo::OneD, dev(), A, B, opt);
  ASSERT_NE(r.trace, nullptr);
  // Formula (1): writes = k*n*s_e; reads = (p-1) * that.
  const double kn_bytes = 64.0 * 64.0 * 2.0;
  EXPECT_DOUBLE_EQ(r.trace->total_amount(sim::OpKind::SmemStore), kn_bytes);
  EXPECT_DOUBLE_EQ(r.trace->total_amount(sim::OpKind::SmemLoad), 3.0 * kn_bytes);
}

TEST(TracedKernels, TwoDMovesBothOperands) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  opt.record_trace = true;
  Rng rng(2);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = gemm(Algo::TwoD, dev(), A, B, opt);
  ASSERT_NE(r.trace, nullptr);
  // Formula (5): writes = (mk + kn)*s_e.
  EXPECT_DOUBLE_EQ(r.trace->total_amount(sim::OpKind::SmemStore), 2.0 * 64 * 64 * 2);
}

TEST(TracedKernels, MmaFlopsMatchIssuedWork) {
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  opt.record_trace = true;
  Rng rng(3);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = gemm(Algo::OneD, dev(), A, B, opt);
  // No padding at 64: the trace's MMA flops equal 2mnk.
  EXPECT_DOUBLE_EQ(r.trace->total_amount(sim::OpKind::Mma), 2.0 * 64 * 64 * 64);
}

// ---------------------------------------------------------------------------
// End-to-end pipelines
// ---------------------------------------------------------------------------

TEST(EndToEnd, TuneThenBatchedPipeline) {
  // Tune once, then run a small batch with the winner's configuration.
  const auto tuned = core::autotune_gemm<double>(dev(), 32, 32, 32, 1000);
  Rng rng(5);
  std::vector<Matrix<double>> As, Bs;
  for (int i = 0; i < 4; ++i) {
    As.push_back(random_matrix<double>(32, 32, rng));
    Bs.push_back(random_matrix<double>(32, 32, rng));
  }
  GemmOptions opt;
  opt.warps = tuned.config.warps;
  opt.smem_ratio = tuned.config.smem_ratio;
  const auto batch = core::kami_batched_gemm<double>(dev(), As, Bs, tuned.config.algo, opt);
  for (std::size_t i = 0; i < As.size(); ++i)
    EXPECT_LE(max_abs_diff(batch.C[i], baselines::reference_gemm(As[i], Bs[i])), 1e-12);
}

TEST(EndToEnd, SparseDenseChain) {
  // SpGEMM produces a sparse product that then feeds an SpMM — the kind of
  // chained kernel use a block-sparse solver performs.
  Rng rng(6);
  const auto A = sparse::BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = sparse::BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto X = random_matrix<fp16_t>(64, 32, rng);

  const auto AB = sparse::spgemm_1d(dev(), A, B);
  const auto Y = sparse::spmm_1d(dev(), AB.C, X);

  const auto dense_ab = baselines::reference_gemm(A.to_dense(), B.to_dense());
  const auto expect = baselines::reference_gemm(dense_ab, X);
  EXPECT_DOUBLE_EQ(max_abs_diff(Y.C, expect), 0.0);
}

TEST(EndToEnd, CrossDeviceConsistency) {
  // The same operands give the same numerics on every device model (cycle
  // costs differ; values must not).
  Rng rng(7);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.warps = 4;
  const auto nv = gemm(Algo::OneD, sim::gh200(), A, B, opt);
  const auto amd = gemm(Algo::OneD, sim::amd7900xtx(), A, B, opt);
  const auto intel = gemm(Algo::OneD, sim::intel_max1100(), A, B, opt);
  EXPECT_DOUBLE_EQ(max_abs_diff(nv.C, amd.C), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(nv.C, intel.C), 0.0);
  EXPECT_NE(nv.profile.latency, intel.profile.latency);  // costs do differ
}

TEST(EndToEnd, ThroughputOrderingStableAcrossSeeds) {
  // Cycle counts depend on shapes, not on data: two different random
  // matrices of the same shape must produce identical profiles.
  GemmOptions opt;
  opt.warps = 4;
  opt.smem_ratio = 0.0;
  Rng r1(100), r2(200);
  const auto A1 = random_matrix<fp16_t>(64, 64, r1);
  const auto B1 = random_matrix<fp16_t>(64, 64, r1);
  const auto A2 = random_matrix<fp16_t>(64, 64, r2);
  const auto B2 = random_matrix<fp16_t>(64, 64, r2);
  const auto p1 = gemm(Algo::OneD, dev(), A1, B1, opt).profile;
  const auto p2 = gemm(Algo::OneD, dev(), A2, B2, opt).profile;
  EXPECT_DOUBLE_EQ(p1.latency, p2.latency);
  EXPECT_DOUBLE_EQ(p1.smem_busy, p2.smem_busy);
  EXPECT_DOUBLE_EQ(p1.tc_busy, p2.tc_busy);
}

}  // namespace
}  // namespace kami
