#include "sparse/spmm_2d.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/reference.hpp"

namespace kami::sparse {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Spmm2d, MatchesDensifiedReference) {
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n + 60);
    const auto A =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto r = spmm_2d(dev(), A, B);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A.to_dense(), B)), 0.0)
        << n;
  }
}

TEST(Spmm2d, AgreesWithSpmm1dValues) {
  Rng rng(61);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r1 = spmm_1d(dev(), A, B);
  const auto r2 = spmm_2d(dev(), A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r1.C, r2.C), 0.0);
  EXPECT_DOUBLE_EQ(r1.useful_flops, r2.useful_flops);
}

TEST(Spmm2d, CommunicatesIndexArrays) {
  Rng rng(62);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = spmm_2d(dev(), A, B);
  // Write traffic must exceed Val bytes + dense B tiles alone.
  const double val_and_b =
      static_cast<double>(A.nnz_blocks() * 16 * 16 * 2 + 64 * 64 * 2) / 128.0;
  EXPECT_GT(r.profile.smem_busy, val_and_b);
}

TEST(Spmm2d, EmptyAndFullDensities) {
  Rng rng(63);
  const auto empty = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng, 16,
                                                       BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r0 = spmm_2d(dev(), empty, B);
  EXPECT_DOUBLE_EQ(r0.useful_flops, 0.0);
  const auto full = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng, 16,
                                                      BlockOrder::ZMorton);
  const auto r1 = spmm_2d(dev(), full, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r1.C, baselines::reference_gemm(full.to_dense(), B)),
                   0.0);
}

TEST(Spmm2d, RequiresSquareWarpGrid) {
  Rng rng(64);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  core::GemmOptions opt;
  opt.warps = 6;
  EXPECT_THROW((void)spmm_2d(dev(), A, B, opt), PreconditionError);
}

// The Fig 7(b) property the 2D kernel relies on: with Z-Morton physical
// storage and a power-of-two grid, every warp's sub-grid occupies one
// contiguous Val range.
TEST(Spmm2d, MortonWindowsArePhysicallyContiguous) {
  Rng rng(65);
  const auto A = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const std::size_t half = A.block_rows() / 2;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) {
      auto window = A.blocks_in_window(r * half, c * half, half, half);
      if (window.size() < 2) continue;
      std::vector<std::size_t> offs;
      for (const auto& ref : window) offs.push_back(ref.val_offset);
      std::sort(offs.begin(), offs.end());
      for (std::size_t i = 1; i < offs.size(); ++i)
        EXPECT_EQ(offs[i] - offs[i - 1], 16u * 16u) << "window (" << r << "," << c << ")";
    }
}

// Counter-property: row-major physical storage scatters a column window.
TEST(Spmm2d, RowMajorWindowsAreNotContiguous) {
  Rng rng(66);
  const auto A = BlockSparseMatrix<fp16_t>::random(128, 128, 1.0, rng, 16,
                                                   BlockOrder::RowMajor);
  const std::size_t half = A.block_rows() / 2;
  auto window = A.blocks_in_window(0, half, half, half);  // top-right quadrant
  ASSERT_GE(window.size(), 2u);
  std::vector<std::size_t> offs;
  for (const auto& ref : window) offs.push_back(ref.val_offset);
  std::sort(offs.begin(), offs.end());
  bool contiguous = true;
  for (std::size_t i = 1; i < offs.size(); ++i)
    if (offs[i] - offs[i - 1] != 16u * 16u) contiguous = false;
  EXPECT_FALSE(contiguous);
}

}  // namespace
}  // namespace kami::sparse
