#include "sparse/spmm_3d.hpp"

#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "sparse/spmm.hpp"

namespace kami::sparse {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Spmm3d, CloseToDensifiedReference) {
  // The inter-layer reduction re-associates the k sum (as in dense 3D);
  // compare against the double-precision reference with a tolerance.
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n + 80);
    const auto A =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto r = spmm_3d(dev(), A, B);
    const auto ref = baselines::reference_gemm_fp64(A.to_dense(), B);
    EXPECT_LE(max_abs_diff(r.C, ref), 1e-2 * static_cast<double>(n)) << n;
  }
}

TEST(Spmm3d, SameUsefulFlopsAs1d) {
  Rng rng(81);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r1 = spmm_1d(dev(), A, B);
  const auto r3 = spmm_3d(dev(), A, B);
  EXPECT_DOUBLE_EQ(r1.useful_flops, r3.useful_flops);  // no redundant compute
}

TEST(Spmm3d, FullDensityMatchesDense) {
  Rng rng(82);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = spmm_3d(dev(), A, B);
  const auto ref = baselines::reference_gemm_fp64(A.to_dense(), B);
  EXPECT_LE(max_abs_diff(r.C, ref), 1e-2 * 64.0);
}

TEST(Spmm3d, EmptyMatrixYieldsZero) {
  Rng rng(83);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = spmm_3d(dev(), A, B);
  Matrix<fp16_t> zero(64, 64);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, zero), 0.0);
  EXPECT_DOUBLE_EQ(r.useful_flops, 0.0);
}

TEST(Spmm3d, RequiresCubeWarpCount) {
  Rng rng(84);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  core::GemmOptions opt;
  opt.warps = 4;
  EXPECT_THROW((void)spmm_3d(dev(), A, B, opt), PreconditionError);
}

TEST(Spmm3d, TwentySevenWarps) {
  Rng rng(85);
  // 96 = 6 block rows, divisible by c = 3.
  const auto A = BlockSparseMatrix<fp16_t>::random(96, 96, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = random_matrix<fp16_t>(96, 96, rng);
  core::GemmOptions opt;
  opt.warps = 27;
  const auto r = spmm_3d(dev(), A, B, opt);
  const auto ref = baselines::reference_gemm_fp64(A.to_dense(), B);
  EXPECT_LE(max_abs_diff(r.C, ref), 1e-2 * 96.0);
}

}  // namespace
}  // namespace kami::sparse
