#include "sparse/block_sparse.hpp"

#include <gtest/gtest.h>

#include "sparse/morton.hpp"

namespace kami::sparse {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  for (std::uint32_t r = 0; r < 64; ++r)
    for (std::uint32_t c = 0; c < 64; ++c) {
      const auto code = morton_encode(r, c);
      EXPECT_EQ(morton_row(code), r);
      EXPECT_EQ(morton_col(code), c);
    }
}

TEST(Morton, KnownCodes) {
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(0, 1), 1u);
  EXPECT_EQ(morton_encode(1, 0), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 2), 12u);
}

TEST(Morton, QuadrantsAreContiguous) {
  // All codes of the top-left 2x2 quadrant precede any code of the
  // bottom-right quadrant — the property the 2D/3D extraction relies on.
  std::uint32_t max_tl = 0, min_br = ~0u;
  for (std::uint32_t r = 0; r < 2; ++r)
    for (std::uint32_t c = 0; c < 2; ++c) max_tl = std::max(max_tl, morton_encode(r, c));
  for (std::uint32_t r = 2; r < 4; ++r)
    for (std::uint32_t c = 2; c < 4; ++c) min_br = std::min(min_br, morton_encode(r, c));
  EXPECT_LT(max_tl, min_br);
}

Matrix<fp16_t> checkerboard(std::size_t n, std::size_t tile) {
  Matrix<fp16_t> d(n, n);
  for (std::size_t br = 0; br < n / tile; ++br)
    for (std::size_t bc = 0; bc < n / tile; ++bc) {
      if ((br + bc) % 2 != 0) continue;
      for (std::size_t r = 0; r < tile; ++r)
        for (std::size_t c = 0; c < tile; ++c)
          d(br * tile + r, bc * tile + c) =
              fp16_t{static_cast<float>(br + bc + 1) * 0.125f};
    }
  return d;
}

TEST(BlockSparse, FromDenseToDenseRoundTrip) {
  const auto dense = checkerboard(64, 16);
  for (BlockOrder order : {BlockOrder::RowMajor, BlockOrder::ZMorton}) {
    const auto sp = BlockSparseMatrix<fp16_t>::from_dense(dense, 16, order);
    EXPECT_EQ(sp.nnz_blocks(), 8u);  // half of the 16 tiles
    EXPECT_DOUBLE_EQ(max_abs_diff(sp.to_dense(), dense), 0.0);
  }
}

TEST(BlockSparse, FindLocatesBlocks) {
  const auto sp = BlockSparseMatrix<fp16_t>::from_dense(checkerboard(64, 16), 16);
  EXPECT_TRUE(sp.find(0, 0).has_value());
  EXPECT_FALSE(sp.find(0, 1).has_value());
  EXPECT_TRUE(sp.find(1, 1).has_value());
  EXPECT_THROW((void)sp.find(4, 0), PreconditionError);  // out of range
}

TEST(BlockSparse, RowBlocksSortedByColumn) {
  Rng rng(31);
  const auto sp = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng);
  for (std::size_t br = 0; br < sp.block_rows(); ++br) {
    const auto row = sp.row_blocks(br);
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_LT(row[i - 1].block_col, row[i].block_col);
  }
}

TEST(BlockSparse, ZMortonPhysicalLayoutFollowsMortonOrder) {
  const auto sp =
      BlockSparseMatrix<fp16_t>::from_dense(checkerboard(64, 16), 16, BlockOrder::ZMorton);
  // Reconstruct the physical order by sorting refs on val_offset; Morton
  // codes must be increasing along it.
  std::vector<BlockRef> phys(sp.all_blocks().begin(), sp.all_blocks().end());
  std::sort(phys.begin(), phys.end(),
            [](const BlockRef& a, const BlockRef& b) { return a.val_offset < b.val_offset; });
  for (std::size_t i = 1; i < phys.size(); ++i) {
    const auto prev = morton_encode(static_cast<std::uint32_t>(phys[i - 1].block_row),
                                    static_cast<std::uint32_t>(phys[i - 1].block_col));
    const auto cur = morton_encode(static_cast<std::uint32_t>(phys[i].block_row),
                                   static_cast<std::uint32_t>(phys[i].block_col));
    EXPECT_LT(prev, cur);
  }
}

TEST(BlockSparse, RandomDensityIsRespected) {
  Rng rng(32);
  const auto sp = BlockSparseMatrix<fp16_t>::random(256, 256, 0.5, rng);
  EXPECT_NEAR(sp.block_density(), 0.5, 0.15);
  EXPECT_EQ(sp.tile(), 16u);
}

TEST(BlockSparse, EmptyAndFullDensities) {
  Rng rng(33);
  const auto none = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng);
  EXPECT_EQ(none.nnz_blocks(), 0u);
  const auto full = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng);
  EXPECT_EQ(full.nnz_blocks(), 16u);
}

TEST(BlockSparse, IndexBytesCountRowPtrAndColIdx) {
  const auto sp = BlockSparseMatrix<fp16_t>::from_dense(checkerboard(64, 16), 16);
  // RowPtr: 5 entries; ColBlkIdx: 8 entries; 4 B each.
  EXPECT_EQ(sp.index_bytes(), (5u + 8u) * 4u);
}

TEST(BlockSparse, RejectsNonMultipleDimensions) {
  Matrix<fp16_t> d(60, 64);
  EXPECT_THROW((void)BlockSparseMatrix<fp16_t>::from_dense(d, 16), PreconditionError);
}

TEST(BlockSparse, CustomTileSizes) {
  const auto dense = checkerboard(64, 8);
  const auto sp = BlockSparseMatrix<fp16_t>::from_dense(dense, 8);
  EXPECT_EQ(sp.tile(), 8u);
  EXPECT_EQ(sp.block_rows(), 8u);
  EXPECT_DOUBLE_EQ(max_abs_diff(sp.to_dense(), dense), 0.0);
}

}  // namespace
}  // namespace kami::sparse
