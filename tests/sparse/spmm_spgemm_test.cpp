#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/spmm.hpp"

namespace kami::sparse {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

// ---------------------------------------------------------------------------
// SpMM
// ---------------------------------------------------------------------------

TEST(Spmm, MatchesDensifiedReference) {
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n);
    const auto A = BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    const auto r = spmm_1d(dev(), A, B);
    const auto ref = baselines::reference_gemm(A.to_dense(), B);
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C, ref), 0.0) << n;
  }
}

TEST(Spmm, FullDensityEqualsDenseGemm) {
  Rng rng(41);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = spmm_1d(dev(), A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A.to_dense(), B)), 0.0);
}

TEST(Spmm, EmptyMatrixYieldsZero) {
  Rng rng(42);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  const auto r = spmm_1d(dev(), A, B);
  Matrix<fp16_t> zero(64, 64);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, zero), 0.0);
  EXPECT_DOUBLE_EQ(r.useful_flops, 0.0);
}

TEST(Spmm, ComputeScalesWithDensityCommunicationDoesNot) {
  // §5.5: SpMM's performance tracks dense GEMM because B and C stay dense —
  // the broadcast volume is density-independent while the MMA work scales.
  Rng rng(43);
  const auto sparse = BlockSparseMatrix<fp16_t>::random(128, 128, 0.25, rng);
  const auto denseA = BlockSparseMatrix<fp16_t>::random(128, 128, 1.0, rng);
  const auto B = random_matrix<fp16_t>(128, 128, rng);
  const auto rs = spmm_1d(dev(), sparse, B);
  const auto rd = spmm_1d(dev(), denseA, B);
  EXPECT_LT(rs.profile.tc_busy, 0.5 * rd.profile.tc_busy);
  EXPECT_NEAR(rs.profile.smem_busy, rd.profile.smem_busy, 1e-9);
}

TEST(Spmm, RectangularShapes) {
  Rng rng(44);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 128, 0.5, rng);
  const auto B = random_matrix<fp16_t>(128, 32, rng);
  const auto r = spmm_1d(dev(), A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C, baselines::reference_gemm(A.to_dense(), B)), 0.0);
}

TEST(Spmm, RejectsMismatchedShapes) {
  Rng rng(45);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = random_matrix<fp16_t>(32, 64, rng);
  EXPECT_THROW((void)spmm_1d(dev(), A, B), PreconditionError);
}

// ---------------------------------------------------------------------------
// SpGEMM
// ---------------------------------------------------------------------------

TEST(SpgemmSymbolic, StructureIsTheSpaUnion) {
  Rng rng(46);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto sym = spgemm_symbolic(dev(), A, B);
  // Verify against a direct dense structural product.
  for (std::size_t br = 0; br < A.block_rows(); ++br)
    for (std::size_t bj = 0; bj < B.block_cols(); ++bj) {
      bool expected = false;
      for (std::size_t bc = 0; bc < A.block_cols() && !expected; ++bc)
        expected = A.find(br, bc).has_value() && B.find(bc, bj).has_value();
      EXPECT_EQ(sym.c_cols_per_row[br].count(bj) > 0, expected) << br << "," << bj;
    }
  EXPECT_GT(sym.cycles, 0.0);
}

TEST(Spgemm, MatchesDensifiedReference) {
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n + 50);
    const auto A = BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng);
    const auto B = BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng);
    const auto r = spgemm_1d(dev(), A, B);
    const auto ref = baselines::reference_gemm(A.to_dense(), B.to_dense());
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C.to_dense(), ref), 0.0) << n;
  }
}

TEST(Spgemm, FullDensityEqualsDenseGemm) {
  Rng rng(51);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 1.0, rng);
  const auto r = spgemm_1d(dev(), A, B);
  const auto ref = baselines::reference_gemm(A.to_dense(), B.to_dense());
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C.to_dense(), ref), 0.0);
}

TEST(Spgemm, EmptyOperandsGiveEmptyResult) {
  Rng rng(52);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto r = spgemm_1d(dev(), A, B);
  EXPECT_EQ(r.C.nnz_blocks(), 0u);
  EXPECT_EQ(r.symbolic.nnz_blocks, 0u);
}

TEST(Spgemm, Fp64Supported) {
  Rng rng(53);
  const auto A = BlockSparseMatrix<double>::random(64, 64, 0.5, rng);
  const auto B = BlockSparseMatrix<double>::random(64, 64, 0.5, rng);
  const auto r = spgemm_1d(dev(), A, B);
  const auto ref = baselines::reference_gemm(A.to_dense(), B.to_dense());
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C.to_dense(), ref), 0.0);
}

TEST(Spgemm, IndexArraysAreCommunicated) {
  // §4.6: "besides transferring the Val array, it is necessary to transmit
  // the index arrays" — the sparse kernel moves more than Val bytes.
  Rng rng(54);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto r = spgemm_1d(dev(), A, B);
  const double val_only_write =
      static_cast<double>(B.nnz_blocks() * 16 * 16 * sizeof(fp16_t)) /
      dev().smem_bytes_per_cycle();
  // Write traffic must exceed the pure-Val bound thanks to RowPtr/ColBlkIdx.
  EXPECT_GT(r.profile.smem_busy, val_only_write);
}

TEST(Spgemm, LessPredictableThanSpmm) {
  // §5.5: SpGEMM's irregular indexing reduces throughput relative to SpMM.
  Rng rng(55);
  const auto A = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng);
  const auto Bsp = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng);
  const auto Bd = random_matrix<fp16_t>(128, 128, rng);
  const auto rs = spgemm_1d(dev(), A, Bsp);
  const auto rm = spmm_1d(dev(), A, Bd);
  const double spgemm_rate = rs.useful_flops / rs.profile.latency;
  const double spmm_rate = rm.useful_flops / rm.profile.latency;
  EXPECT_LT(spgemm_rate, spmm_rate);
}

}  // namespace
}  // namespace kami::sparse
