#include "sparse/spgemm_2d.hpp"

#include <gtest/gtest.h>

#include "baselines/reference.hpp"

namespace kami::sparse {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Spgemm2d, MatchesDensifiedReference) {
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n + 70);
    const auto A =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto B =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto r = spgemm_2d(dev(), A, B);
    const auto ref = baselines::reference_gemm(A.to_dense(), B.to_dense());
    EXPECT_DOUBLE_EQ(max_abs_diff(r.C.to_dense(), ref), 0.0) << n;
  }
}

TEST(Spgemm2d, AgreesWith1dVariant) {
  Rng rng(71);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r1 = spgemm_1d(dev(), A, B);
  const auto r2 = spgemm_2d(dev(), A, B);
  EXPECT_DOUBLE_EQ(max_abs_diff(r1.C.to_dense(), r2.C.to_dense()), 0.0);
  EXPECT_EQ(r1.C.nnz_blocks(), r2.C.nnz_blocks());
  EXPECT_DOUBLE_EQ(r1.useful_flops, r2.useful_flops);
}

TEST(Spgemm2d, StructureMatchesSymbolicPhase) {
  Rng rng(72);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.4, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.4, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r = spgemm_2d(dev(), A, B);
  // Structural nnz can only shrink from symbolic (exact numeric zeros).
  EXPECT_LE(r.C.nnz_blocks(), r.symbolic.nnz_blocks);
}

TEST(Spgemm2d, BothOperandsCommunicated) {
  // §4.6: "both A and B are copied in the sparse warp grid" — smem traffic
  // must exceed the 1D variant's (which only broadcasts B stripes).
  Rng rng(73);
  const auto A = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(128, 128, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r2 = spgemm_2d(dev(), A, B);
  EXPECT_GT(r2.profile.smem_busy, 0.0);
  // A-window traffic exists: more write traffic than B windows alone.
  const double b_only =
      static_cast<double>(B.nnz_blocks() * 16 * 16 * 2) / dev().smem_bytes_per_cycle();
  EXPECT_GT(r2.profile.smem_busy, b_only);
}

TEST(Spgemm2d, EmptyOperands) {
  Rng rng(74);
  const auto empty = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng, 16,
                                                       BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r = spgemm_2d(dev(), empty, B);
  EXPECT_EQ(r.C.nnz_blocks(), 0u);
  EXPECT_DOUBLE_EQ(r.useful_flops, 0.0);
}

TEST(Spgemm2d, RectangularBlockGrids) {
  Rng rng(75);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 128, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(128, 32, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r = spgemm_2d(dev(), A, B);
  const auto ref = baselines::reference_gemm(A.to_dense(), B.to_dense());
  EXPECT_DOUBLE_EQ(max_abs_diff(r.C.to_dense(), ref), 0.0);
}

}  // namespace
}  // namespace kami::sparse
