#include "sparse/spgemm_3d.hpp"

#include <gtest/gtest.h>

#include "baselines/reference.hpp"

namespace kami::sparse {
namespace {

const sim::DeviceSpec& dev() { return sim::gh200(); }

TEST(Spgemm3d, CloseToDensifiedReference) {
  for (std::size_t n : {64u, 128u}) {
    Rng rng(n + 90);
    const auto A =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto B =
        BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16, BlockOrder::ZMorton);
    const auto r = spgemm_3d(dev(), A, B);
    const auto ref = baselines::reference_gemm_fp64(A.to_dense(), B.to_dense());
    EXPECT_LE(max_abs_diff(r.C.to_dense(), ref), 1e-2 * static_cast<double>(n)) << n;
  }
}

TEST(Spgemm3d, SameUsefulFlopsAs1d) {
  Rng rng(91);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r1 = spgemm_1d(dev(), A, B);
  const auto r3 = spgemm_3d(dev(), A, B);
  EXPECT_DOUBLE_EQ(r1.useful_flops, r3.useful_flops);  // no redundant work
  EXPECT_EQ(r1.C.nnz_blocks(), r3.C.nnz_blocks());
}

TEST(Spgemm3d, StructureBoundedBySymbolic) {
  Rng rng(92);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.4, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.4, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r = spgemm_3d(dev(), A, B);
  EXPECT_LE(r.C.nnz_blocks(), r.symbolic.nnz_blocks);
}

TEST(Spgemm3d, EmptyOperands) {
  Rng rng(93);
  const auto empty = BlockSparseMatrix<fp16_t>::random(64, 64, 0.0, rng, 16,
                                                       BlockOrder::ZMorton);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng, 16,
                                                   BlockOrder::ZMorton);
  const auto r = spgemm_3d(dev(), empty, B);
  EXPECT_EQ(r.C.nnz_blocks(), 0u);
}

TEST(Spgemm3d, RequiresCubeWarpCount) {
  Rng rng(94);
  const auto A = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  const auto B = BlockSparseMatrix<fp16_t>::random(64, 64, 0.5, rng);
  core::GemmOptions opt;
  opt.warps = 4;
  EXPECT_THROW((void)spgemm_3d(dev(), A, B, opt), PreconditionError);
}

}  // namespace
}  // namespace kami::sparse
