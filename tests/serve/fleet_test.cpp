// FleetServer contract: deterministic cost-model routing (skew, shape
// affinity, queue pressure), the blackout -> Down -> Probing -> Healthy
// state machine, failover that changes *where* but never *what*, hedged
// deadline dispatch, typed admission control, manual drain, construction-time
// device validation, and the construct/destroy-is-a-no-op lifecycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "baselines/reference.hpp"
#include "obs/metrics.hpp"
#include "serve/fleet.hpp"
#include "serve/slo.hpp"
#include "util/rng.hpp"

namespace kami {
namespace {

using serve::DeviceHealth;
using serve::ErrorCode;
using serve::FleetConfig;
using serve::FleetDeviceConfig;
using serve::FleetResult;
using serve::FleetServer;
using serve::GemmServer;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

template <Scalar T>
std::pair<Matrix<T>, Matrix<T>> operands(std::size_t m, std::size_t n, std::size_t k,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  Matrix<T> A = random_matrix<T>(m, k, rng);
  Matrix<T> B = random_matrix<T>(k, n, rng);
  return {std::move(A), std::move(B)};
}

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Manual drain + private planner state: routing decisions and execution
/// order are functions of the test alone, never of what other tests warmed
/// into the process-wide ProfileCache/Predictor.
FleetConfig hermetic(FleetConfig cfg = serve::table3_fleet()) {
  cfg.async_workers_per_device = 0;
  cfg.profile_cache = std::make_shared<core::ProfileCache>();
  cfg.predictor = std::make_shared<model::Predictor>();
  return cfg;
}

/// Two bit-identical GH200 shards: base routing scores tie exactly, so the
/// stable (score, index) sort makes every preference the test applies — skew,
/// queue depth, affinity — the only thing that can reorder them.
FleetConfig twins(std::size_t queue_depth = 8) {
  FleetConfig cfg;
  FleetDeviceConfig a;
  a.spec = sim::gh200();
  a.queue_depth = queue_depth;
  FleetDeviceConfig b = a;
  b.spec.name = "GH200 B";
  cfg.devices = {a, b};
  return hermetic(std::move(cfg));
}

TEST(FleetRouting, DeterministicAndTieBrokenByIndex) {
  FleetServer fleet(hermetic());
  const auto order = fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {});
  ASSERT_EQ(order.size(), 4u);  // every Table-3 device supports fp16
  EXPECT_EQ(order, fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {}));
  // GH200's peak fp16 throughput dwarfs the rest of Table 3.
  EXPECT_EQ(order[0], 0);

  FleetServer tied(twins());
  const auto tie = tied.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {});
  EXPECT_EQ(tie, (std::vector<int>{0, 1}));
}

TEST(FleetRouting, UnsupportedPrecisionLeavesTheRoutingSet) {
  FleetServer fleet(hermetic());
  // Table 3: only GH200 carries an FP64 tensor path, so the fp64 routing set
  // is exactly one device — the others never see the request.
  const auto order = fleet.route_order(Algo::OneD, Precision::FP64, 64, 64, 64, {});
  EXPECT_EQ(order, std::vector<int>{0});
  // FP8 adds the RTX 5090 but still excludes AMD and Intel.
  const auto fp8 = fleet.route_order(Algo::OneD, Precision::FP8E4M3, 64, 64, 64, {});
  EXPECT_EQ(fp8.size(), 2u);
  EXPECT_EQ(std::find(fp8.begin(), fp8.end(), 2), fp8.end());
  EXPECT_EQ(std::find(fp8.begin(), fp8.end(), 3), fp8.end());

  const auto [A, B] = operands<double>(64, 64, 64);
  const auto r = fleet.serve<double>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  EXPECT_EQ(r.device, "GH200");
  EXPECT_TRUE(bits_equal(r.result.C, baselines::reference_gemm(A, B)));
}

TEST(FleetRouting, SkewReordersButCorrectnessSurvivesBadPlacement) {
  FleetConfig cfg = hermetic();
  cfg.route_skew = {1e6, 1e6, 1e6, 1.0};  // misprediction: worst device first
  FleetServer fleet(std::move(cfg));
  const auto order = fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {});
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order[0], 3);

  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  EXPECT_EQ(r.device, "Max 1100");
  EXPECT_EQ(r.failovers, 0);
  EXPECT_TRUE(bits_equal(r.result.C, baselines::reference_gemm(A, B)));
}

TEST(FleetRouting, QueuePressurePenalizesTheBusyShard) {
  FleetServer fleet(twins(/*queue_depth=*/4));
  EXPECT_EQ(fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {}),
            (std::vector<int>{0, 1}));

  auto [A, B] = operands<fp16_t>(64, 64, 64);
  auto fut = fleet.submit_async<fp16_t>(Algo::OneD, std::move(A), std::move(B));
  EXPECT_EQ(fleet.queue_size(0), 1u);
  // One queued request doubles shard 0's score (penalty 1.0): the twin wins.
  EXPECT_EQ(fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {}),
            (std::vector<int>{1, 0}));

  fleet.drain();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const auto r = fut.get();
  ASSERT_TRUE(r.ok()) << r.result.message;
  EXPECT_EQ(r.device, "GH200");  // admitted onto shard 0's queue, served there
  EXPECT_EQ(fleet.queue_size(0), 0u);
}

TEST(FleetRouting, AffinityKeepsAShapeOnTheDeviceThatServedIt) {
  FleetConfig cfg = twins();
  cfg.probe_cooldown_requests = 1;
  FleetServer fleet(std::move(cfg));

  // Force 48^3 onto the twin: shard 0 is dark, so the first serve fails over.
  fleet.set_blackout(0, true);
  const auto [A, B] = operands<fp16_t>(48, 48, 48);
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  EXPECT_EQ(r.device, "GH200 B");

  // Recover shard 0 (cooldown 1: one tick to Probing, one to Healthy).
  fleet.set_blackout(0, false);
  const auto [P, Q] = operands<fp16_t>(32, 32, 32, 7);
  (void)fleet.serve<fp16_t>(Algo::OneD, P, Q);
  (void)fleet.serve<fp16_t>(Algo::OneD, P, Q);
  ASSERT_EQ(fleet.health(0), DeviceHealth::Healthy);

  // Both shards tie on score; the affinity bonus keeps 48^3 where it landed,
  // while a shape nobody has served still falls to the index tie-break.
  EXPECT_EQ(fleet.route_order(Algo::OneD, Precision::FP16, 48, 48, 48, {}),
            (std::vector<int>{1, 0}));
  EXPECT_EQ(fleet.route_order(Algo::OneD, Precision::FP16, 96, 96, 96, {})[0], 0);
}

TEST(FleetHealth, BlackoutWalksDownProbingHealthy) {
  obs::ScopedMetricsReset reset;
  FleetConfig cfg = twins();
  cfg.probe_cooldown_requests = 2;
  FleetServer fleet(std::move(cfg));
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto serve_once = [&] {
    const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
    ASSERT_TRUE(r.ok()) << r.result.message;
  };

  fleet.set_blackout(0, true);
  {
    const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
    ASSERT_TRUE(r.ok()) << r.result.message;
    EXPECT_EQ(r.device, "GH200 B");
    EXPECT_EQ(r.failovers, 1);
  }
  EXPECT_EQ(fleet.health(0), DeviceHealth::Down);  // threshold 1: first refusal
  EXPECT_EQ(counter("fleet.marked_down"), 1.0);
  EXPECT_EQ(counter("fleet.blackout_refusals"), 1.0);
  EXPECT_TRUE(fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {}) ==
              std::vector<int>{1});

  serve_once();  // cooldown 2 -> 1: still Down
  EXPECT_EQ(fleet.health(0), DeviceHealth::Down);
  serve_once();  // cooldown 1 -> 0: earns a probe
  EXPECT_EQ(fleet.health(0), DeviceHealth::Probing);
  serve_once();  // probe pings a still-dark device: Down again, fresh cooldown
  EXPECT_EQ(fleet.health(0), DeviceHealth::Down);
  EXPECT_EQ(counter("fleet.probes.failed"), 1.0);

  fleet.set_blackout(0, false);
  serve_once();  // cooldown 2 -> 1
  serve_once();  // cooldown 1 -> 0: Probing
  serve_once();  // probe pings a clear device: Healthy
  EXPECT_EQ(fleet.health(0), DeviceHealth::Healthy);
  EXPECT_EQ(counter("fleet.probes"), 2.0);
  EXPECT_EQ(counter("fleet.probes.recovered"), 1.0);
  EXPECT_EQ(fleet.route_order(Algo::OneD, Precision::FP16, 64, 64, 64, {}).size(), 2u);
}

TEST(FleetFailover, ResultIsBitIdenticalToDirectServeOnTheAnsweringDevice) {
  FleetServer fleet(hermetic());
  fleet.set_blackout(0, true);  // knock out the router's first choice
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  ASSERT_GE(r.device_index, 0);
  EXPECT_NE(r.device, "GH200");
  EXPECT_GE(r.failovers, 1);

  GemmServer direct;
  const auto d = direct.serve<fp16_t>(
      Algo::OneD, fleet.device(static_cast<std::size_t>(r.device_index)), A, B);
  ASSERT_TRUE(d.ok()) << d.message;
  EXPECT_TRUE(bits_equal(r.result.C, d.C));
  EXPECT_EQ(r.result.rung_label, d.rung_label);
}

TEST(FleetFailover, BlackoutRefusalsCostNoCycles) {
  FleetServer fleet(hermetic());
  fleet.set_blackout(0, true);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  ASSERT_GE(r.failovers, 1);
  // The refused dispatch never reached a device, so the fleet clock carries
  // exactly the serving attempt (queue wait is 0 on the synchronous path).
  EXPECT_GT(r.end_to_end_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.end_to_end_cycles, r.result.end_to_end_cycles);
}

TEST(FleetFailover, TerminalErrorsNeverFailOver) {
  obs::ScopedMetricsReset reset;
  FleetServer fleet(hermetic());
  const Matrix<fp16_t> A(32, 16), B(32, 32);  // inner dimensions disagree
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  EXPECT_EQ(r.result.code, ErrorCode::InvalidRequest);
  EXPECT_EQ(r.failovers, 0);  // a second device cannot fix a malformed request
  EXPECT_EQ(counter("fleet.failovers"), 0.0);
  EXPECT_EQ(counter("fleet.error.invalid_request"), 1.0);
}

TEST(FleetFailover, FullOutageIsTypedThenRoutingSetEmpties) {
  obs::ScopedMetricsReset reset;
  FleetServer fleet(hermetic());
  for (std::size_t i = 0; i < fleet.device_count(); ++i) fleet.set_blackout(i, true);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  // First request: every dispatch refuses, the chain exhausts typed.
  const auto r1 = fleet.serve<fp16_t>(Algo::OneD, A, B);
  EXPECT_EQ(r1.result.code, ErrorCode::DeviceUnavailable);
  EXPECT_NE(r1.result.message.find("fleet exhausted 4 of 4"), std::string::npos)
      << r1.result.message;
  EXPECT_EQ(r1.device_index, -1);
  EXPECT_EQ(r1.failovers, 3);
  for (std::size_t i = 0; i < fleet.device_count(); ++i)
    EXPECT_EQ(fleet.health(i), DeviceHealth::Down) << "device " << i;

  // Second request: everything is marked Down, so admission refuses before
  // any dispatch — and says so without a DeviceUnavailable masquerade.
  const auto r2 = fleet.serve<fp16_t>(Algo::OneD, A, B);
  EXPECT_EQ(r2.result.code, ErrorCode::ResourceExhausted);
  EXPECT_NE(r2.result.message.find("no healthy device"), std::string::npos)
      << r2.result.message;
  EXPECT_EQ(counter("fleet.no_device"), 1.0);
}

TEST(FleetHedge, DeadlineRequestsHedgeAndTheFasterArmWins) {
  obs::ScopedMetricsReset reset;
  FleetConfig cfg;
  FleetDeviceConfig slow;
  slow.spec = sim::intel_max1100();
  FleetDeviceConfig fast;
  fast.spec = sim::gh200();
  cfg.devices = {slow, fast};
  cfg.hedge_deadline_requests = true;
  cfg.route_skew = {1.0, 1e6};  // mispredict: the slow device ranks first
  FleetServer fleet(hermetic(std::move(cfg)));

  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  GemmOptions opt;
  opt.deadline_cycles = 1e15;
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B, opt);
  ASSERT_TRUE(r.ok()) << r.result.message;
  EXPECT_TRUE(r.hedged);
  EXPECT_EQ(r.device, "GH200");  // the secondary arm finished first
  EXPECT_EQ(counter("fleet.hedges"), 1.0);
  EXPECT_EQ(counter("fleet.hedge_wins_secondary"), 1.0);
  // The fleet clock pays the slower arm — the real cost of a parallel hedge.
  EXPECT_GT(r.end_to_end_cycles, r.result.end_to_end_cycles);
  EXPECT_TRUE(bits_equal(r.result.C, baselines::reference_gemm(A, B)));

  // No deadline, no hedge.
  const auto plain = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(plain.ok()) << plain.result.message;
  EXPECT_FALSE(plain.hedged);
  EXPECT_EQ(counter("fleet.hedges"), 1.0);
}

TEST(FleetAsync, OverflowReroutesThenRefusesTypedAndDrainCompletesAll) {
  obs::ScopedMetricsReset reset;
  FleetConfig cfg = twins(/*queue_depth=*/1);
  // With the queue-pressure penalty on, the router itself would steer the
  // second submission away from the full shard; disable it so the overflow
  // reroute path (queue full at try_push) is the thing under test.
  cfg.queue_depth_penalty = 0.0;
  FleetServer fleet(std::move(cfg));
  std::vector<Matrix<fp16_t>> as, bs;
  std::vector<std::future<FleetResult<fp16_t>>> futures;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto [A, B] = operands<fp16_t>(32, 32, 32, s + 1);
    as.push_back(A);
    bs.push_back(B);
    futures.push_back(fleet.submit_async<fp16_t>(Algo::OneD, std::move(A), std::move(B)));
  }
  // Depth-1 twin queues: the first submission fills shard 0, the second
  // reroutes to shard 1, the third finds every queue full and is refused
  // with an already-ready typed future — before any rung or breaker.
  ASSERT_EQ(futures[2].wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const auto refused = futures[2].get();
  EXPECT_EQ(refused.result.code, ErrorCode::ResourceExhausted);
  EXPECT_NE(refused.result.message.find("every eligible fleet queue is full (2"),
            std::string::npos)
      << refused.result.message;
  EXPECT_EQ(refused.device_index, -1);
  EXPECT_EQ(counter("fleet.async.submitted"), 3.0);
  EXPECT_EQ(counter("fleet.async.accepted"), 2.0);
  EXPECT_EQ(counter("fleet.async.rejected"), 1.0);
  EXPECT_EQ(counter("fleet.overflow_reroutes"), 1.0);

  fleet.drain();
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.result.message;
    EXPECT_TRUE(bits_equal(r.result.C, baselines::reference_gemm(as[i], bs[i])))
        << "entry " << i;
  }
}

TEST(FleetSlo, OneFleetRequestIsOneRecordAcrossItsFailoverChain) {
  FleetConfig cfg = twins();
  const auto slo = std::make_shared<serve::SloTracker>();
  cfg.slo = slo;
  FleetServer fleet(std::move(cfg));
  fleet.set_blackout(0, true);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = fleet.serve<fp16_t>(Algo::OneD, A, B);
  ASSERT_TRUE(r.ok()) << r.result.message;
  ASSERT_GE(r.failovers, 1);  // the chain touched two shards...
  EXPECT_EQ(slo->total_requests(), 1u);  // ...but accounts as one request
}

TEST(FleetLifecycle, ConstructDestroyIsANoOpWithZeroValuedMetrics) {
  obs::ScopedMetricsReset reset;
  { FleetServer fleet; }  // no requests: no threads, no queue activity
  { GemmServer server; }
  const auto& metrics = obs::MetricRegistry::global();
  // Dashboards must be able to tell "served nothing" from "metric missing":
  // the whole namespace exists, at zero.
  for (const char* name :
       {"fleet.requests", "fleet.ok", "fleet.errors", "fleet.failovers",
        "fleet.hedges", "fleet.blackout_refusals", "fleet.overflow_reroutes",
        "fleet.async.submitted", "fleet.async.rejected", "serve.requests",
        "serve.ok", "serve.errors", "serve.async.submitted"}) {
    const auto* c = metrics.find_counter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->value(), 0.0) << name;
  }
  const auto* fleet_workers = metrics.find_gauge("fleet.async.workers");
  ASSERT_NE(fleet_workers, nullptr);
  EXPECT_EQ(fleet_workers->value(), 0.0);  // lazy workers never started
  const auto* serve_workers = metrics.find_gauge("serve.async.workers");
  ASSERT_NE(serve_workers, nullptr);
  EXPECT_EQ(serve_workers->value(), 0.0);
  const auto* devices = metrics.find_gauge("fleet.devices");
  ASSERT_NE(devices, nullptr);
  EXPECT_EQ(devices->value(), 4.0);
}

TEST(FleetConstruction, InvalidDeviceSpecIsRefusedNamingTheField) {
  FleetConfig cfg = serve::table3_fleet();
  cfg.devices[2].spec.num_sms = 0;  // would divide-by-zero deep in the model
  try {
    FleetServer fleet(std::move(cfg));
    FAIL() << "constructing a fleet around an invalid DeviceSpec must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("num_sms"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("7900 XTX"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace kami
